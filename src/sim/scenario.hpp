#ifndef SOPS_SIM_SCENARIO_HPP
#define SOPS_SIM_SCENARIO_HPP

/// \file scenario.hpp
/// The type-erased scenario interface behind the registry.
///
/// A Scenario is a named factory: it declares its parameter schema and the
/// metric columns it samples, and start() builds a ScenarioRun — one
/// replica's live simulation — from a validated RunSpec and a replica
/// seed.  The chain scenarios wrap core::BiasedChainEngine instances
/// *exactly* as the direct call sites do (same constructor arguments, same
/// seed, same step loop), so a facade run is draw-for-draw identical to
/// the pre-facade code path; tests/sim_api_test.cpp pins this for all
/// three weight models.  The amoebot scenario wraps the sharded Poisson
/// runner, whose trajectory is deterministic per seed for every thread
/// count.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "sim/params.hpp"
#include "system/particle_system.hpp"
#include "system/snapshot.hpp"
#include "util/assert.hpp"

namespace sops::sim {

struct RunSpec;

/// One replica's live simulation.  Not thread-safe; owned and driven by a
/// single worker.
class ScenarioRun {
 public:
  virtual ~ScenarioRun() = default;

  /// Advances by (at least) `steps` chain iterations / activations.  The
  /// amoebot runner rounds up to whole epochs; stepsDone() reports the
  /// exact count.
  virtual void advance(std::uint64_t steps) = 0;

  /// Exact steps executed so far.
  [[nodiscard]] virtual std::uint64_t stepsDone() const = 0;

  /// Appends the current value of every metric the scenario declares, in
  /// metricNames() order.
  virtual void sampleMetrics(std::vector<double>& out) const = 0;

  /// A copy of the current configuration (amoebot: tail configuration) for
  /// snapshot sinks and final-state checks.  Not a hot-path call.
  [[nodiscard]] virtual system::ParticleSystem snapshot() const = 0;

  /// The occupancy regime the replica currently executes in —
  /// "dense-flat" (one flat bitboard window), "dense-tiled" (paged
  /// tile directory), or "sparse" (hash-index-only degraded mode) —
  /// or "" for scenarios that do not report one.  The runner copies
  /// this into ReplicaSummary::regime and warns on stderr the first
  /// time a run degrades to "sparse".
  [[nodiscard]] virtual std::string regime() const { return {}; }

  /// Installs a cooperative cancel token: once it trips, advance() returns
  /// early — possibly having made no progress — with the run in a
  /// consistent (sampleable, serializable) state.  Scenarios that ignore
  /// the token simply run each advance() to completion; the driver polls
  /// the token between advances either way.  nullptr uninstalls.
  virtual void setCancelToken(const core::CancelToken* /*cancel*/) {}

  /// Whether saveState()/restoreState() are implemented.  Scenarios that
  /// return false here cannot be used with snapshot-file=/resume=.
  [[nodiscard]] virtual bool supportsSnapshots() const { return false; }

  /// Serializes the run's complete evolving state (configuration, model
  /// aux state, RNG streams, stats) so that a fresh run started from the
  /// same spec and replica seed, after restoreState(), continues the
  /// identical trajectory.  Only legal when the run is quiescent (between
  /// advance() calls).
  virtual void saveState(system::SnapshotWriter& /*w*/) const {
    SOPS_REQUIRE(false, "scenario does not support snapshots");
  }

  /// Inverse of saveState() on a freshly started run with the same spec
  /// and replica seed.
  virtual void restoreState(system::SnapshotReader& /*r*/) {
    SOPS_REQUIRE(false, "scenario does not support snapshots");
  }
};

class Scenario {
 public:
  virtual ~Scenario() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::string description() const = 0;

  /// The scenario-specific parameters (RunSpec reserved keys excluded).
  [[nodiscard]] virtual ParamSchema schema() const = 0;

  /// Metric columns sampled at every checkpoint, e.g. {"edges",
  /// "perimeter", "alpha", ...}.
  [[nodiscard]] virtual std::vector<std::string> metricNames() const = 0;

  /// Builds one replica.  `replicaSeed` is the engine/runner seed;
  /// `workerThreads` is the thread budget *inside* the replica.  The
  /// runner passes the spec's thread budget verbatim for a single
  /// replica (0 = "all cores") and 1 when replicas themselves fan out
  /// across the pool.  The amoebot scenario spends any budget on its
  /// stripe workers; the chain scenarios run the sequential engine at
  /// ≤ 1 (the draw-for-draw historical path) and the sharded multi-core
  /// runner at > 1 — a new scenario with both execution shapes should
  /// follow that convention.  The spec's scenario params must already be
  /// validated.
  [[nodiscard]] virtual std::unique_ptr<ScenarioRun> start(
      const RunSpec& spec, std::uint64_t replicaSeed,
      unsigned workerThreads) const = 0;
};

}  // namespace sops::sim

#endif  // SOPS_SIM_SCENARIO_HPP
