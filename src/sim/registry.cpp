#include "sim/registry.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sops::sim {

Registry& Registry::instance() {
  static Registry* registry = [] {
    auto* r = new Registry();
    registerBuiltins(*r);
    return r;
  }();
  return *registry;
}

void Registry::add(std::unique_ptr<Scenario> scenario) {
  SOPS_REQUIRE(scenario != nullptr, "cannot register a null scenario");
  const std::string name = scenario->name();
  SOPS_REQUIRE(!name.empty(), "scenario name must be non-empty");
  SOPS_REQUIRE(find(name) == nullptr,
               "scenario '" + name + "' is already registered");
  scenarios_.push_back(std::move(scenario));
}

const Scenario* Registry::find(std::string_view name) const noexcept {
  for (const auto& scenario : scenarios_) {
    if (scenario->name() == name) return scenario.get();
  }
  return nullptr;
}

const Scenario& Registry::get(std::string_view name) const {
  const Scenario* scenario = find(name);
  if (scenario == nullptr) {
    throw ContractViolation("unknown scenario '" + std::string(name) +
                            "' (registered: " + knownNames() + ")");
  }
  return *scenario;
}

std::vector<const Scenario*> Registry::all() const {
  std::vector<const Scenario*> out;
  out.reserve(scenarios_.size());
  for (const auto& scenario : scenarios_) out.push_back(scenario.get());
  std::sort(out.begin(), out.end(), [](const Scenario* a, const Scenario* b) {
    return a->name() < b->name();
  });
  return out;
}

std::string Registry::knownNames() const {
  std::string names;
  for (const Scenario* scenario : all()) {
    if (!names.empty()) names += ", ";
    names += scenario->name();
  }
  return names;
}

ScenarioRegistrar::ScenarioRegistrar(std::unique_ptr<Scenario> scenario) {
  Registry::instance().add(std::move(scenario));
}

}  // namespace sops::sim
