#include "sim/run_spec.hpp"

#include <limits>

#include "rng/random.hpp"
#include "sim/registry.hpp"
#include "system/shapes.hpp"
#include "util/assert.hpp"

namespace sops::sim {

const ParamSchema& runSpecSchema() {
  static const ParamSchema schema = [] {
    ParamSchema s;
    s.add("scenario", ParamType::String, "", "registered scenario name");
    s.add("shape", ParamType::String, "line",
          "initial configuration: line | spiral | ring | random");
    s.add("n", ParamType::Int, "100", "particles (shape=ring: ring radius)");
    s.add("steps", ParamType::Int, "1000000",
          "chain iterations / amoebot activations per replica");
    s.add("checkpoint", ParamType::Int, "0",
          "sampling period; 0 samples only at the end");
    s.add("seed", ParamType::Int, "1603", "master seed");
    s.add("replicas", ParamType::Int, "1", "independent replicas");
    s.add("seed-stride", ParamType::Int, "7",
          "seed of replica r = seed + r*stride");
    s.add("threads", ParamType::Int, "0",
          "worker threads (max 1024); 0 = all cores (chain scenarios: "
          "0/1 = sequential engine, >1 = sharded multi-core runner)");
    s.add("csv", ParamType::String, "", "CSV sample sink path");
    s.add("jsonl", ParamType::String, "", "JSONL sample/summary sink path");
    s.add("svg", ParamType::String, "",
          "final-configuration SVG path (replica 0)");
    s.add("snapshots", ParamType::Bool, "false",
          "stream ASCII snapshots at checkpoints");
    s.add("snapshot-file", ParamType::String, "",
          "binary snapshot path, written atomically at every checkpoint "
          "and on cancellation (replicas=1 only)");
    s.add("resume", ParamType::String, "",
          "snapshot path to resume from (replicas=1 only)");
    s.add("deadline-ms", ParamType::Int, "0",
          "wall-clock budget in milliseconds; 0 = none (the run cancels "
          "cooperatively at the deadline)");
    return s;
  }();
  return schema;
}

RunSpec RunSpec::fromParams(const ParamMap& map) {
  RunSpec spec;
  const ParamSchema& reserved = runSpecSchema();
  for (const auto& [key, value] : map.entries()) {
    if (reserved.find(key) == nullptr) {
      spec.params.set(key, value);  // scenario parameter; validated later
    }
  }
  // Reserved keys parse strictly even when the scenario is unknown.
  ParamMap reservedOnly;
  for (const auto& [key, value] : map.entries()) {
    if (reserved.find(key) != nullptr) reservedOnly.set(key, value);
  }
  reservedOnly.validateAgainst(reserved, "run-spec");

  spec.scenario = reservedOnly.getString("scenario", "");
  SOPS_REQUIRE(!spec.scenario.empty(), "run spec needs scenario=<name>");
  spec.shape = reservedOnly.getString("shape", spec.shape);
  spec.n = reservedOnly.getInt("n", spec.n);
  SOPS_REQUIRE(spec.n > 0, "n must be positive");
  const std::int64_t steps =
      reservedOnly.getInt("steps", static_cast<std::int64_t>(spec.steps));
  SOPS_REQUIRE(steps >= 0, "steps must be non-negative");
  spec.steps = static_cast<std::uint64_t>(steps);
  const std::int64_t checkpoint = reservedOnly.getInt("checkpoint", 0);
  SOPS_REQUIRE(checkpoint >= 0, "checkpoint must be non-negative");
  spec.checkpointEvery = static_cast<std::uint64_t>(checkpoint);
  spec.seed = static_cast<std::uint64_t>(
      reservedOnly.getInt("seed", static_cast<std::int64_t>(spec.seed)));
  const std::int64_t replicas = reservedOnly.getInt("replicas", 1);
  SOPS_REQUIRE(replicas > 0 &&
                   replicas <= std::numeric_limits<std::uint32_t>::max(),
               "replicas must be in [1, 2^32)");
  spec.replicas = static_cast<std::uint32_t>(replicas);
  spec.seedStride = static_cast<std::uint64_t>(reservedOnly.getInt(
      "seed-stride", static_cast<std::int64_t>(spec.seedStride)));
  const std::int64_t threads = reservedOnly.getInt("threads", 0);
  // A negative count is a sign error and a five-digit one is a typo'd
  // seed or step count landing in the wrong key — both would silently
  // oversubscribe the pool (threads are spawned as asked, not clamped to
  // cores), so the spec rejects them up front.
  SOPS_REQUIRE(threads >= 0, "threads must be non-negative");
  SOPS_REQUIRE(threads <= 1024, "threads must be at most 1024");
  spec.threads = static_cast<unsigned>(threads);
  spec.csvPath = reservedOnly.getString("csv", "");
  spec.jsonlPath = reservedOnly.getString("jsonl", "");
  spec.svgPath = reservedOnly.getString("svg", "");
  spec.snapshots = reservedOnly.getBool("snapshots", false);
  spec.snapshotPath = reservedOnly.getString("snapshot-file", "");
  spec.resumePath = reservedOnly.getString("resume", "");
  spec.deadlineMs = reservedOnly.getInt("deadline-ms", 0);
  SOPS_REQUIRE(spec.deadlineMs >= 0, "deadline-ms must be non-negative");

  SOPS_REQUIRE(spec.shape == "line" || spec.shape == "spiral" ||
                   spec.shape == "ring" || spec.shape == "random",
               "shape must be line, spiral, ring, or random");
  return spec;
}

RunSpec RunSpec::parse(std::string_view text) {
  return fromParams(parseSpecText(text));
}

RunSpec RunSpec::parseArgv(int argc, const char* const* argv, int firstArg) {
  return fromParams(parseArgs(argc, argv, firstArg));
}

std::string RunSpec::toText() const {
  ParamMap map;
  map.set("scenario", scenario);
  map.set("shape", shape);
  map.set("n", std::to_string(n));
  map.set("steps", std::to_string(steps));
  map.set("checkpoint", std::to_string(checkpointEvery));
  map.set("seed", std::to_string(seed));
  map.set("replicas", std::to_string(replicas));
  map.set("seed-stride", std::to_string(seedStride));
  map.set("threads", std::to_string(threads));
  if (!csvPath.empty()) map.set("csv", csvPath);
  if (!jsonlPath.empty()) map.set("jsonl", jsonlPath);
  if (!svgPath.empty()) map.set("svg", svgPath);
  if (snapshots) map.set("snapshots", "true");
  if (!snapshotPath.empty()) map.set("snapshot-file", snapshotPath);
  if (!resumePath.empty()) map.set("resume", resumePath);
  if (deadlineMs != 0) map.set("deadline-ms", std::to_string(deadlineMs));
  for (const auto& [key, value] : params.entries()) map.set(key, value);
  return map.toText();
}

void RunSpec::validate() const {
  // Programmatically built specs (spec.threads = ...) skip fromParams'
  // parse-time range checks, and sim::run() trusts validate() — so the
  // same invariants are enforced here.
  SOPS_REQUIRE(n > 0, "n must be positive");
  SOPS_REQUIRE(replicas > 0, "replicas must be positive");
  SOPS_REQUIRE(threads <= 1024, "threads must be at most 1024");
  SOPS_REQUIRE(deadlineMs >= 0, "deadline-ms must be non-negative");
  // Snapshots capture ONE replica's trajectory; a multi-replica run has no
  // single resumable state, so the combination is rejected rather than
  // silently snapshotting replica 0.
  SOPS_REQUIRE(snapshotPath.empty() || replicas == 1,
               "snapshot-file requires replicas=1");
  SOPS_REQUIRE(resumePath.empty() || replicas == 1,
               "resume requires replicas=1");
  const Scenario& sc = Registry::instance().get(scenario);
  params.validateAgainst(sc.schema(), "scenario '" + scenario + "'");
}

system::ParticleSystem RunSpec::makeInitial(std::uint64_t shapeSeed) const {
  if (shape == "line") return system::lineConfiguration(n);
  if (shape == "spiral") return system::spiralConfiguration(n);
  if (shape == "ring") {
    SOPS_REQUIRE(n <= std::numeric_limits<std::int32_t>::max(),
                 "ring radius too large");
    return system::ringConfiguration(static_cast<std::int32_t>(n));
  }
  SOPS_REQUIRE(shape == "random", "unknown shape: " + shape);
  rng::Random rng(shapeSeed);
  return system::randomHoleFree(n, rng);
}

}  // namespace sops::sim
