#include "sim/observer.hpp"

#include <cmath>

#include "io/ascii_render.hpp"
#include "io/svg.hpp"
#include "sim/run_spec.hpp"
#include "util/assert.hpp"

namespace sops::sim {
namespace {

/// JSON string escaping for the JSONL sink (keys are identifiers; values
/// may carry arbitrary labels/paths).
[[nodiscard]] std::string jsonEscaped(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

[[nodiscard]] std::string jsonNumber(double value) {
  // JSON has no nan/inf literals; a non-finite metric becomes null so
  // every emitted line stays loadable by a strict parser
  // (tools/check_spps_smoke.py rejects the lenient literals in CI).
  if (!std::isfinite(value)) return "null";
  return analysis::formatDouble(value, 12);
}

}  // namespace

// -- ObserverList -----------------------------------------------------------

void ObserverList::attach(Observer* observer) {
  SOPS_REQUIRE(observer != nullptr, "cannot attach a null observer");
  observers_.push_back(observer);
}

void ObserverList::onRunBegin(const RunHeader& header) {
  for (Observer* o : observers_) o->onRunBegin(header);
}
void ObserverList::onSample(const Sample& sample) {
  for (Observer* o : observers_) o->onSample(sample);
}
void ObserverList::onSnapshot(std::size_t replica, std::uint64_t iteration,
                              const system::ParticleSystem& sys) {
  for (Observer* o : observers_) o->onSnapshot(replica, iteration, sys);
}
void ObserverList::onReplicaEnd(const ReplicaSummary& summary) {
  for (Observer* o : observers_) o->onReplicaEnd(summary);
}
void ObserverList::onRunEnd() {
  for (Observer* o : observers_) o->onRunEnd();
}

// -- CsvSink ----------------------------------------------------------------

void CsvSink::onRunBegin(const RunHeader& header) {
  std::vector<std::string> columns = {"replica", "iteration"};
  columns.insert(columns.end(), header.metricNames.begin(),
                 header.metricNames.end());
  writer_ = std::make_unique<analysis::CsvWriter>(path_, columns);
  SOPS_REQUIRE(writer_->ok(), "cannot open CSV sink: " + path_);
}

void CsvSink::onSample(const Sample& sample) {
  SOPS_REQUIRE(writer_ != nullptr, "CSV sink used before onRunBegin");
  std::vector<std::string> cells;
  cells.reserve(2 + sample.values.size());
  cells.push_back(std::to_string(sample.replica));
  cells.push_back(std::to_string(sample.iteration));
  for (const double value : sample.values) {
    cells.push_back(analysis::formatDouble(value, 10));
  }
  writer_->writeRow(cells);
}

// -- JsonlSink --------------------------------------------------------------

void JsonlSink::onRunBegin(const RunHeader& header) {
  out_.open(path_);
  SOPS_REQUIRE(out_.good(), "cannot open JSONL sink: " + path_);
  metricNames_ = header.metricNames;
  out_ << "{\"type\":\"run\",\"spec\":"
       << jsonEscaped(header.spec != nullptr ? header.spec->toText() : "")
       << ",\"metrics\":[";
  for (std::size_t i = 0; i < metricNames_.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << jsonEscaped(metricNames_[i]);
  }
  out_ << "]}\n";
}

void JsonlSink::onSample(const Sample& sample) {
  // A sample wider than the declared metric row would walk off
  // metricNames_; a narrower one would silently drop declared columns.
  // Either way the scenario lied about its metrics — fail loudly.
  SOPS_REQUIRE(sample.values.size() == metricNames_.size(),
               "JSONL sink: sample has " +
                   std::to_string(sample.values.size()) + " values but the "
                   "scenario declared " + std::to_string(metricNames_.size()) +
                   " metrics");
  out_ << "{\"type\":\"sample\",\"replica\":" << sample.replica
       << ",\"iteration\":" << sample.iteration;
  for (std::size_t i = 0; i < sample.values.size(); ++i) {
    out_ << ',' << jsonEscaped(metricNames_[i]) << ':'
         << jsonNumber(sample.values[i]);
  }
  out_ << "}\n";
}

void JsonlSink::onReplicaEnd(const ReplicaSummary& summary) {
  // Same fail-loud contract as onSample: a summary whose finalMetrics
  // width disagrees with the declared header would otherwise silently
  // drop or misalign columns in the replica record.
  SOPS_REQUIRE(summary.finalMetrics.size() == metricNames_.size(),
               "JSONL sink: replica summary has " +
                   std::to_string(summary.finalMetrics.size()) +
                   " final metrics but the scenario declared " +
                   std::to_string(metricNames_.size()) + " metrics");
  out_ << "{\"type\":\"replica\",\"replica\":" << summary.replica
       << ",\"label\":" << jsonEscaped(summary.label)
       << ",\"seed\":" << summary.seed << ",\"steps\":" << summary.steps
       << ",\"wall_seconds\":" << jsonNumber(summary.wallSeconds);
  if (!summary.regime.empty()) {
    out_ << ",\"regime\":" << jsonEscaped(summary.regime);
  }
  for (std::size_t i = 0; i < summary.finalMetrics.size(); ++i) {
    out_ << ',' << jsonEscaped(metricNames_[i]) << ':'
         << jsonNumber(summary.finalMetrics[i]);
  }
  out_ << "}\n";
}

void JsonlSink::onRunEnd() {
  out_ << "{\"type\":\"end\"}\n";
  out_.flush();
}

// -- AsciiSnapshotSink ------------------------------------------------------

void AsciiSnapshotSink::onSnapshot(std::size_t replica, std::uint64_t iteration,
                                   const system::ParticleSystem& sys) {
  std::fprintf(out_, "replica %zu after %llu steps:\n%s\n", replica,
               static_cast<unsigned long long>(iteration),
               io::renderAscii(sys).c_str());
}

void AsciiSnapshotSink::onReplicaEnd(const ReplicaSummary& summary) {
  if (summary.finalSystem == nullptr) return;
  std::fprintf(out_, "replica %zu final (%llu steps):\n%s\n", summary.replica,
               static_cast<unsigned long long>(summary.steps),
               io::renderAscii(*summary.finalSystem).c_str());
}

// -- SvgSink ----------------------------------------------------------------

void SvgSink::onReplicaEnd(const ReplicaSummary& summary) {
  if (summary.replica != 0 || summary.finalSystem == nullptr) return;
  SOPS_REQUIRE(io::writeSvg(*summary.finalSystem, path_),
               "cannot write SVG sink: " + path_);
}

// -- MemorySink -------------------------------------------------------------

void MemorySink::onRunBegin(const RunHeader& header) { header_ = header; }

void MemorySink::record(EventKind kind) {
  SOPS_REQUIRE(maxBufferedEvents_ == 0 || order_.size() < maxBufferedEvents_,
               "MemorySink: buffered event cap of " +
                   std::to_string(maxBufferedEvents_) +
                   " events exceeded — lower the steps/checkpoint ratio or "
                   "stream the run instead of buffering it");
  order_.push_back(kind);
}

void MemorySink::onSample(const Sample& sample) {
  record(EventKind::Sample);
  samples_.push_back(StoredSample{
      sample.replica, sample.iteration,
      std::vector<double>(sample.values.begin(), sample.values.end())});
}

void MemorySink::onSnapshot(std::size_t replica, std::uint64_t iteration,
                            const system::ParticleSystem& sys) {
  record(EventKind::Snapshot);
  snapshots_.push_back(StoredSnapshot{replica, iteration, sys});
}

void MemorySink::onReplicaEnd(const ReplicaSummary& summary) {
  record(EventKind::Summary);
  StoredSummary stored;
  stored.summary = summary;
  stored.hasSystem = summary.finalSystem != nullptr;
  if (stored.hasSystem) stored.system = *summary.finalSystem;
  summaries_.push_back(std::move(stored));
  // push_back may have relocated earlier elements; re-anchor every stored
  // summary's pointer at its own copy (null stays null — a summary
  // recorded without a final system must replay without one).
  for (StoredSummary& s : summaries_) {
    s.summary.finalSystem = s.hasSystem ? &s.system : nullptr;
  }
}

void MemorySink::replayInto(Observer& target, bool withRunBoundaries) const {
  if (withRunBoundaries) target.onRunBegin(header_);
  std::size_t sample = 0;
  std::size_t snapshot = 0;
  std::size_t summary = 0;
  for (const EventKind kind : order_) {
    switch (kind) {
      case EventKind::Sample: {
        const StoredSample& s = samples_[sample++];
        target.onSample(Sample{s.replica, s.iteration, s.values});
        break;
      }
      case EventKind::Snapshot: {
        const StoredSnapshot& s = snapshots_[snapshot++];
        target.onSnapshot(s.replica, s.iteration, s.system);
        break;
      }
      case EventKind::Summary:
        target.onReplicaEnd(summaries_[summary++].summary);
        break;
    }
  }
  if (withRunBoundaries) target.onRunEnd();
}

// -- preflight --------------------------------------------------------------

void preflightWritableSink(const std::string& path) {
  // Append mode probes writability (creating the file if missing) without
  // truncating anything already there — the sink itself decides later
  // whether to truncate or rotate.
  std::FILE* f = std::fopen(path.c_str(), "ab");
  SOPS_REQUIRE(f != nullptr, "sink path is not writable: " + path);
  std::fclose(f);
}

}  // namespace sops::sim
