#ifndef SOPS_SIM_RUN_SPEC_HPP
#define SOPS_SIM_RUN_SPEC_HPP

/// \file run_spec.hpp
/// The declarative run description of the scenario facade.
///
/// A RunSpec is everything one simulation run needs: which registered
/// scenario, its parameters, the initial shape, how many steps with what
/// checkpoint cadence, the seed, replica fan-out, thread budget, and where
/// to stream results.  It parses from `key=value` text (argv or a spec
/// file) or a flat JSON object, validates against the scenario's declared
/// ParamSchema (unknown keys are errors), and round-trips through
/// toText().  sim::run() executes one; tools/spps_main.cpp is the CLI that
/// does nothing else.
///
/// Reserved keys (everything else is a scenario parameter):
///
///   scenario   registered scenario name            (required)
///   shape      line | spiral | ring | random       (default line)
///   n          particles (ring: ring radius)       (default 100)
///   steps      chain iterations / activations      (default 1000000)
///   checkpoint sampling period; 0 = only at end    (default 0)
///   seed       master seed                         (default 1603)
///   replicas   independent replicas                (default 1)
///   seed-stride  seed of replica r = seed + r*stride  (default 7)
///   threads    worker threads, at most 1024; 0 = all cores  (default 0)
///              multi-replica runs spend them on the replica fan-out;
///              single-replica chain runs: 0/1 keeps the sequential
///              engine (draw-for-draw reproducible), >1 switches to the
///              sharded multi-core runner (deterministic per seed,
///              identical for every thread count > 1)
///   csv / jsonl / svg   sink paths                 (default off)
///   snapshots  stream ASCII snapshots to observers (default false)
///   snapshot-file  binary snapshot path, written atomically at every
///              checkpoint and on cancellation (default off; replicas=1)
///   resume     snapshot path to resume from        (default off; replicas=1)
///   deadline-ms  wall-clock budget; the run cancels cooperatively and —
///              with snapshot-file set — leaves a resumable snapshot
///              (default 0 = no deadline)

#include <cstdint>
#include <string>

#include "sim/params.hpp"
#include "system/particle_system.hpp"

namespace sops::sim {

struct RunSpec {
  std::string scenario;
  ParamMap params;  ///< scenario-specific keys only

  std::string shape = "line";
  std::int64_t n = 100;
  std::uint64_t steps = 1000000;
  std::uint64_t checkpointEvery = 0;
  std::uint64_t seed = 1603;
  std::uint32_t replicas = 1;
  std::uint64_t seedStride = 7;
  unsigned threads = 0;

  std::string csvPath;
  std::string jsonlPath;
  std::string svgPath;
  bool snapshots = false;
  std::string snapshotPath;  ///< snapshot-file=; empty = no snapshots
  std::string resumePath;    ///< resume=; empty = fresh run
  std::int64_t deadlineMs = 0;  ///< deadline-ms=; 0 = no deadline

  /// Splits a parsed ParamMap into reserved keys and scenario parameters
  /// and range-checks the reserved ones.  Scenario parameters are *not*
  /// validated here — sim::run() (and validate()) check them against the
  /// registry, so a spec can be built before the registry is consulted.
  [[nodiscard]] static RunSpec fromParams(const ParamMap& map);

  /// parseSpecText + fromParams.
  [[nodiscard]] static RunSpec parse(std::string_view text);

  /// parseArgs + fromParams.
  [[nodiscard]] static RunSpec parseArgv(int argc, const char* const* argv,
                                         int firstArg = 1);

  /// Canonical `key=value` form; RunSpec::parse(toText()) reproduces the
  /// spec field for field (defaults are included explicitly so a stored
  /// spec is self-describing).
  [[nodiscard]] std::string toText() const;

  /// Validates scenario existence and parameters against the registry's
  /// schema; throws ContractViolation with the offending key on failure.
  void validate() const;

  /// Seed of replica `r` under the spec's stride.
  [[nodiscard]] std::uint64_t replicaSeed(std::size_t r) const noexcept {
    return seed + seedStride * static_cast<std::uint64_t>(r);
  }

  /// Builds the initial configuration from (shape, n).  `random` shapes
  /// draw from `shapeSeed` so each replica can get its own start while
  /// deterministic shapes ignore it.
  [[nodiscard]] system::ParticleSystem makeInitial(
      std::uint64_t shapeSeed) const;
};

/// Schema of the reserved RunSpec keys (for --help output and the
/// spec-level unknown-key check shared with the scenario schemas).
[[nodiscard]] const ParamSchema& runSpecSchema();

}  // namespace sops::sim

#endif  // SOPS_SIM_RUN_SPEC_HPP
