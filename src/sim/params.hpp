#ifndef SOPS_SIM_PARAMS_HPP
#define SOPS_SIM_PARAMS_HPP

/// \file params.hpp
/// Typed key=value parameter maps and schemas for the scenario facade.
///
/// Every run description in the sim:: layer bottoms out in a ParamMap: an
/// ordered string→string map parsed from `key=value` tokens (argv, spec
/// files) or from a flat JSON object.  Typed getters parse strictly — a
/// malformed integer is a ContractViolation, not a silent zero — and a
/// ParamSchema lists the keys a consumer understands so that unknown keys
/// are an error instead of the silently-ignored flags the hand-rolled
/// argv parsers used to have.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sops::sim {

enum class ParamType { Int, Double, Bool, String };

[[nodiscard]] std::string_view toString(ParamType type) noexcept;

/// One declared parameter: name, type, textual default, one-line help.
struct ParamInfo {
  std::string name;
  ParamType type = ParamType::String;
  std::string defaultValue;
  std::string description;
};

/// An ordered set of declared parameters (a scenario's knobs, or the
/// reserved RunSpec keys).  Declaration order is preserved for --list/help
/// output.
class ParamSchema {
 public:
  ParamSchema& add(std::string name, ParamType type, std::string defaultValue,
                   std::string description);

  [[nodiscard]] const ParamInfo* find(std::string_view name) const noexcept;
  [[nodiscard]] const std::vector<ParamInfo>& params() const noexcept {
    return params_;
  }

 private:
  std::vector<ParamInfo> params_;
};

/// Ordered key→value map with strict typed getters.  Keys are unique; a
/// later set() overwrites in place (preserving first-set order).
class ParamMap {
 public:
  void set(std::string key, std::string value);

  [[nodiscard]] bool contains(std::string_view key) const noexcept;
  [[nodiscard]] std::optional<std::string> get(std::string_view key) const;

  /// Strict typed reads: the key's value must parse completely as the
  /// requested type (throws ContractViolation otherwise); a missing key
  /// yields the fallback.
  [[nodiscard]] std::int64_t getInt(std::string_view key,
                                    std::int64_t fallback) const;
  [[nodiscard]] double getDouble(std::string_view key, double fallback) const;
  /// Booleans accept 1/0/true/false/yes/no/on/off (case-insensitive).
  [[nodiscard]] bool getBool(std::string_view key, bool fallback) const;
  [[nodiscard]] std::string getString(std::string_view key,
                                      std::string fallback) const;

  /// Applies every entry of `other` over this map (later wins) — the
  /// defaults-then-env-then-argv layering every binary uses.  When
  /// `onlyKnownKeys` is true, a key absent from this map is a
  /// ContractViolation (for binaries whose defaults enumerate the full
  /// key set).
  void merge(const ParamMap& other, bool onlyKnownKeys = false);

  /// Removes the key if present (for binary-local pseudo-keys that must
  /// not reach RunSpec validation).
  void erase(std::string_view key);

  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// Throws ContractViolation naming the offending key (and listing the
  /// schema's keys) when the map holds a key the schema does not declare,
  /// or a value that does not parse as the declared type.
  void validateAgainst(const ParamSchema& schema,
                       std::string_view context) const;

  /// Canonical `key=value` text (entries in insertion order, space
  /// separated).  parseKeyValues(toText()) round-trips exactly.
  [[nodiscard]] std::string toText() const;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Parses whitespace-separated `key=value` tokens.  A token without '=' or
/// with an empty key is a ContractViolation (the fix for flags that the
/// old per-binary parsers silently ignored).  Values may be quoted with
/// double quotes to carry spaces.
[[nodiscard]] ParamMap parseKeyValues(std::string_view text);

/// Parses argv[firstArg..argc) as `key=value` tokens, one per argv
/// element (shell quoting is honored: everything after the first '=' is
/// the value, spaces and all).  Elements without '=' throw.
[[nodiscard]] ParamMap parseArgs(int argc, const char* const* argv,
                                 int firstArg = 1);

/// Parses a *flat* JSON object ({"key": value, ...}) into a ParamMap;
/// values may be strings, numbers, or booleans (nested objects/arrays are
/// rejected — run specs are flat by design).  Numbers keep their literal
/// spelling so integer-valued keys stay integers.
[[nodiscard]] ParamMap parseJsonObject(std::string_view text);

/// Dispatches on the first non-space character: '{' → JSON, else
/// key=value text.  Lines starting with '#' are comments in k=v mode.
[[nodiscard]] ParamMap parseSpecText(std::string_view text);

}  // namespace sops::sim

#endif  // SOPS_SIM_PARAMS_HPP
