/// \file scenarios.cpp
/// The four built-in scenarios behind sim::Registry.
///
/// Each chain scenario constructs its core::BiasedChainEngine exactly as
/// the direct call sites do — same initial system, same model options,
/// same seed, and advance() is engine.run() — so a facade run is
/// draw-for-draw identical to the pre-facade code path (pinned by
/// tests/sim_api_test.cpp against direct engine runs).  The amoebot
/// scenario drives Algorithm A through the sharded Poisson runner, whose
/// trajectory is a pure function of the seed for every thread count.
///
/// Thread budget (the workerThreads argument of Scenario::start): chain
/// scenarios run the sequential engine at threads ≤ 1 — preserving the
/// historical draw-for-draw trajectory, and the shape multi-replica runs
/// always use — and switch to core::ShardedChainRunner at threads > 1,
/// the multi-core Poissonized execution whose trajectory is a pure
/// function of the seed (identical for every thread count > 1, but *not*
/// draw-for-draw the sequential engine's; distributionally validated in
/// tests/sharded_chain_test.cpp).  The amoebot scenario, whose runner is
/// sharded either way, spends the whole budget (0 = all cores).
///
/// Adding a workload = one weight model (core/scenario_models.hpp style)
/// plus one Scenario subclass here (or anywhere, via ScenarioRegistrar).

#include <cmath>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "amoebot/amoebot_system.hpp"
#include "amoebot/faults.hpp"
#include "amoebot/local_compression.hpp"
#include "amoebot/parallel_scheduler.hpp"
#include "core/scenario_models.hpp"
#include "core/sharded_chain_runner.hpp"
#include "sim/registry.hpp"
#include "sim/run_spec.hpp"
#include "system/metrics.hpp"
#include "system/shapes.hpp"
#include "util/assert.hpp"

namespace sops::sim {
namespace {

[[nodiscard]] double alphaOf(const system::ParticleSystem& sys) {
  return static_cast<double>(system::perimeter(sys)) /
         static_cast<double>(
             system::pMin(static_cast<std::int64_t>(sys.size())));
}

/// Shared movement-chain knobs (the paper's ChainOptions, including the
/// ablation switches bench_ablation exercises).
void addChainKeys(ParamSchema& schema) {
  schema.add("lambda", ParamType::Double, "4.0",
             "compression bias on edges");
  schema.add("greedy", ParamType::Bool, "false",
             "zero-temperature filter (accept iff e' >= e)");
  schema.add("gap", ParamType::Bool, "true", "enforce condition (1), e != 5");
  schema.add("properties", ParamType::Bool, "true",
             "enforce condition (2), Property 1 or 2");
  schema.add("property2", ParamType::Bool, "true",
             "allow Property 2 moves (Fig 3 ablation)");
}

/// The sharded-runner epoch knob every chain scenario shares (consulted
/// only when threads > 1 routes the run through the sharded engine —
/// the amoebot scenario has the same key).
void addShardedKeys(ParamSchema& schema) {
  schema.add("epoch-events", ParamType::Int, "0",
             "sharded runner: target events per epoch; 0 derives "
             "min(max(2n, 1024), 2^28) and adapts");
  schema.add("epoch-adaptive", ParamType::Bool, "true",
             "sharded runner: adapt the derived epoch target from the "
             "deferred-event fraction (ignored when epoch-events is set)");
  schema.add("rate-spread", ParamType::Double, "0.0",
             "sharded runner: heterogeneous Poisson rates — particle i "
             "activates at rate 1 + spread*i/(n-1); 0 keeps the uniform "
             "chain");
}

[[nodiscard]] double rateSpreadFrom(const ParamMap& params) {
  const double spread = params.getDouble("rate-spread", 0.0);
  SOPS_REQUIRE(std::isfinite(spread) && spread >= 0.0,
               "rate-spread must be finite and non-negative");
  return spread;
}

/// Deterministic heterogeneous-rate ramp: particle i activates at rate
/// 1 + spread·i/(n−1).  The stationary distribution is unchanged (each
/// move's reverse is proposed by the same particle's clock — see the
/// sharded runner headers); only selection frequencies shift.  spread = 0
/// returns the empty vector, i.e. the bit-identical uniform default.
[[nodiscard]] std::vector<double> rampRates(double spread, std::size_t n) {
  if (spread == 0.0) return {};
  std::vector<double> rates(n);
  const double denom = n > 1 ? static_cast<double>(n - 1) : 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    rates[i] = 1.0 + spread * (static_cast<double>(i) / denom);
  }
  return rates;
}

[[nodiscard]] std::uint64_t epochEventsFrom(const ParamMap& params) {
  const std::int64_t epochEvents = params.getInt("epoch-events", 0);
  SOPS_REQUIRE(epochEvents >= 0, "epoch-events must be non-negative");
  // The runners materialize one epoch's whole event schedule in memory
  // (~16 bytes/event), so a steps-sized value landing in this key (1e9+)
  // would OOM before a single event runs — the same typo class the
  // threads cap rejects.  2^28 ≈ 2.7e8 is above any in-memory epoch that
  // makes sense (the 0 default derives 2n) and below typo'd step counts.
  SOPS_REQUIRE(epochEvents <= (std::int64_t{1} << 28),
               "epoch-events must be at most 2^28");
  return static_cast<std::uint64_t>(epochEvents);
}

[[nodiscard]] core::ChainOptions chainOptionsFrom(const ParamMap& params) {
  core::ChainOptions options;
  options.lambda = params.getDouble("lambda", options.lambda);
  options.greedy = params.getBool("greedy", options.greedy);
  options.enforceGapCondition =
      params.getBool("gap", options.enforceGapCondition);
  options.enforceProperties =
      params.getBool("properties", options.enforceProperties);
  options.allowProperty2 =
      params.getBool("property2", options.allowProperty2);
  return options;
}

/// One replica of any weight-model engine: advance() is engine.run(), and
/// a per-scenario sampler maps the engine onto the declared metrics.
template <typename Model>
  requires core::ChainWeightModel<Model>
class EngineRun : public ScenarioRun {
 public:
  using Engine = core::BiasedChainEngine<Model>;
  using Sampler = void (*)(const Engine&, std::vector<double>&);

  EngineRun(Engine engine, Sampler sampler)
      : engine_(std::move(engine)), sampler_(sampler) {}

  void advance(std::uint64_t steps) override {
    if (cancel_ == nullptr) {
      engine_.run(steps);
      return;
    }
    // Sub-bursting the sequential chain is draw-for-draw identical to one
    // run() call, so a deadline/cancel interruption leaves exactly the
    // prefix of the uninterrupted trajectory.
    engine_.runWithCheckpoints(steps, kCancelBurst, [](std::uint64_t) {},
                               cancel_);
  }
  [[nodiscard]] std::uint64_t stepsDone() const override {
    return engine_.stats().steps;
  }
  void sampleMetrics(std::vector<double>& out) const override {
    sampler_(engine_, out);
  }
  [[nodiscard]] system::ParticleSystem snapshot() const override {
    return engine_.system();
  }
  [[nodiscard]] std::string regime() const override {
    return engine_.system().regimeName();
  }
  void setCancelToken(const core::CancelToken* cancel) override {
    cancel_ = cancel;
  }
  [[nodiscard]] bool supportsSnapshots() const override { return true; }
  void saveState(system::SnapshotWriter& w) const override {
    engine_.saveState(w);
  }
  void restoreState(system::SnapshotReader& r) override {
    engine_.restoreState(r);
  }

 private:
  /// Cancel-poll granularity of the sequential engine, in chain steps.
  static constexpr std::uint64_t kCancelBurst = std::uint64_t{1} << 16;

  Engine engine_;
  Sampler sampler_;
  const core::CancelToken* cancel_ = nullptr;
};

/// One replica on the multi-core sharded runner: advance() rounds up to
/// whole epochs (stepsDone() reports the exact count, like the amoebot
/// run).  Samplers are shared with EngineRun via the Driver template
/// parameter — engine and runner expose the same system()/edges()/
/// stats()/model() surface, so a metric cannot drift between the two
/// execution disciplines.
template <typename Model>
  requires core::ChainWeightModel<Model>
class ShardedRun : public ScenarioRun {
 public:
  using Runner = core::ShardedChainRunner<Model>;
  using Sampler = void (*)(const Runner&, std::vector<double>&);

  ShardedRun(Runner runner, Sampler sampler)
      : runner_(std::move(runner)), sampler_(sampler) {}

  void advance(std::uint64_t steps) override { runner_.runAtLeast(steps); }
  [[nodiscard]] std::uint64_t stepsDone() const override {
    return runner_.stats().steps;
  }
  void sampleMetrics(std::vector<double>& out) const override {
    sampler_(runner_, out);
  }
  [[nodiscard]] system::ParticleSystem snapshot() const override {
    return runner_.system();
  }
  [[nodiscard]] std::string regime() const override {
    return runner_.system().regimeName();
  }
  void setCancelToken(const core::CancelToken* cancel) override {
    runner_.setCancelToken(cancel);
  }
  [[nodiscard]] bool supportsSnapshots() const override { return true; }
  void saveState(system::SnapshotWriter& w) const override {
    runner_.saveState(w);
  }
  void restoreState(system::SnapshotReader& r) override {
    runner_.restoreState(r);
  }

 private:
  Runner runner_;
  Sampler sampler_;
};

/// Builds the sequential-or-sharded run for one chain scenario: threads
/// ≤ 1 is the sequential engine (the draw-for-draw historical path),
/// threads > 1 the sharded runner with that stripe budget.
template <typename Model, typename EngineSampler, typename ShardedSampler>
  requires core::ChainWeightModel<Model>
std::unique_ptr<ScenarioRun> makeChainRun(system::ParticleSystem initial,
                                          Model model, const RunSpec& spec,
                                          std::uint64_t replicaSeed,
                                          unsigned workerThreads,
                                          EngineSampler engineSampler,
                                          ShardedSampler shardedSampler) {
  const double rateSpread = rateSpreadFrom(spec.params);
  if (workerThreads > 1) {
    core::ShardedChainOptions options;
    options.threads = workerThreads;
    options.targetEventsPerEpoch = epochEventsFrom(spec.params);
    options.adaptiveEpochs = spec.params.getBool("epoch-adaptive", true);
    options.rates = rampRates(rateSpread, initial.size());
    return std::make_unique<ShardedRun<Model>>(
        core::ShardedChainRunner<Model>(std::move(initial), std::move(model),
                                        replicaSeed, options),
        shardedSampler);
  }
  SOPS_REQUIRE(rateSpread == 0.0,
               "rate-spread requires threads > 1 (the sequential chain "
               "activates uniformly)");
  return std::make_unique<EngineRun<Model>>(
      core::BiasedChainEngine<Model>(std::move(initial), std::move(model),
                                     replicaSeed),
      engineSampler);
}

// -- compression ------------------------------------------------------------

template <typename Driver>
void sampleCompression(const Driver& engine, std::vector<double>& out) {
  const system::ParticleSystem& sys = engine.system();
  // One complement analysis serves holes AND the exact perimeter
  // (p = 3n − e − 3 + 3·holes with the tracked edge count) — the
  // boundary-walk recount system::perimeter would redo is skipped.
  const std::int64_t holes = system::countHoles(sys);
  const std::int64_t perimeter = system::perimeterFromCounts(
      static_cast<std::int64_t>(sys.size()), engine.edges(), holes);
  out.push_back(static_cast<double>(engine.edges()));
  out.push_back(static_cast<double>(perimeter));
  out.push_back(static_cast<double>(perimeter) /
                static_cast<double>(
                    system::pMin(static_cast<std::int64_t>(sys.size()))));
  out.push_back(engine.stats().movement.acceptanceRate());
  out.push_back(static_cast<double>(holes));
}

class CompressionScenario : public Scenario {
 public:
  [[nodiscard]] std::string name() const override { return "compression"; }
  [[nodiscard]] std::string description() const override {
    return "the paper's chain M: w = lambda^e";
  }
  [[nodiscard]] ParamSchema schema() const override {
    ParamSchema schema;
    addChainKeys(schema);
    addShardedKeys(schema);
    return schema;
  }
  [[nodiscard]] std::vector<std::string> metricNames() const override {
    return {"edges", "perimeter", "alpha", "acceptance", "holes"};
  }
  [[nodiscard]] std::unique_ptr<ScenarioRun> start(
      const RunSpec& spec, std::uint64_t replicaSeed,
      unsigned workerThreads) const override {
    return makeChainRun(
        spec.makeInitial(replicaSeed),
        core::CompressionModel(chainOptionsFrom(spec.params)), spec,
        replicaSeed, workerThreads, &sampleCompression<core::CompressionEngine>,
        &sampleCompression<core::ShardedChainRunner<core::CompressionModel>>);
  }
};

// -- separation -------------------------------------------------------------

template <typename Driver>
void sampleSeparation(const Driver& engine, std::vector<double>& out) {
  const system::ParticleSystem& sys = engine.system();
  out.push_back(static_cast<double>(engine.edges()));
  out.push_back(static_cast<double>(system::perimeter(sys)));
  out.push_back(alphaOf(sys));
  // engine.edges() is the incrementally tracked e(σ) — no recount, and 0
  // edges (n = 1) reads as fraction 0 rather than NaN.
  out.push_back(engine.edges() == 0
                    ? 0.0
                    : static_cast<double>(
                          engine.model().homogeneousEdges(sys)) /
                          static_cast<double>(engine.edges()));
}

class SeparationScenario : public Scenario {
 public:
  [[nodiscard]] std::string name() const override { return "separation"; }
  [[nodiscard]] std::string description() const override {
    return "two colors, w = lambda^e gamma^hom (Cannon et al. [9])";
  }
  [[nodiscard]] ParamSchema schema() const override {
    ParamSchema schema;
    schema.add("lambda", ParamType::Double, "4.0",
               "compression bias on edges");
    schema.add("gamma", ParamType::Double, "4.0",
               "homogeneity bias on monochromatic edges");
    schema.add("swaps", ParamType::Bool, "true", "enable color-swap moves");
    schema.add("swap-prob", ParamType::Double, "0.5",
               "mixture weight of the swap move");
    addShardedKeys(schema);
    return schema;
  }
  [[nodiscard]] std::vector<std::string> metricNames() const override {
    return {"edges", "perimeter", "alpha", "hom_fraction"};
  }
  [[nodiscard]] std::unique_ptr<ScenarioRun> start(
      const RunSpec& spec, std::uint64_t replicaSeed,
      unsigned workerThreads) const override {
    core::SeparationModel::Options options;
    options.lambda = spec.params.getDouble("lambda", options.lambda);
    options.gamma = spec.params.getDouble("gamma", options.gamma);
    options.enableSwaps = spec.params.getBool("swaps", options.enableSwaps);
    options.swapProbability =
        spec.params.getDouble("swap-prob", options.swapProbability);
    system::ParticleSystem initial = spec.makeInitial(replicaSeed);
    auto colors = system::alternatingClasses(initial.size(), 2);
    return makeChainRun(
        std::move(initial), core::SeparationModel(options, std::move(colors)),
        spec, replicaSeed, workerThreads,
        &sampleSeparation<core::SeparationEngine>,
        &sampleSeparation<core::ShardedChainRunner<core::SeparationModel>>);
  }
};

// -- alignment --------------------------------------------------------------

template <typename Driver>
void sampleAlignment(const Driver& engine, std::vector<double>& out) {
  const system::ParticleSystem& sys = engine.system();
  out.push_back(static_cast<double>(engine.edges()));
  out.push_back(static_cast<double>(system::perimeter(sys)));
  out.push_back(alphaOf(sys));
  out.push_back(engine.edges() == 0
                    ? 0.0
                    : static_cast<double>(engine.model().alignedEdges(sys)) /
                          static_cast<double>(engine.edges()));
}

class AlignmentScenario : public Scenario {
 public:
  [[nodiscard]] std::string name() const override { return "alignment"; }
  [[nodiscard]] std::string description() const override {
    return "6-state orientations, w = lambda^e kappa^ali "
           "(Kedia-Oh-Randall style)";
  }
  [[nodiscard]] ParamSchema schema() const override {
    ParamSchema schema;
    schema.add("lambda", ParamType::Double, "4.0",
               "compression bias on edges");
    schema.add("kappa", ParamType::Double, "4.0",
               "alignment bias on equal-orientation edges");
    schema.add("rotations", ParamType::Bool, "true",
               "enable orientation re-sampling moves");
    schema.add("rotation-prob", ParamType::Double, "0.5",
               "mixture weight of the rotation move");
    addShardedKeys(schema);
    return schema;
  }
  [[nodiscard]] std::vector<std::string> metricNames() const override {
    return {"edges", "perimeter", "alpha", "aligned_fraction"};
  }
  [[nodiscard]] std::unique_ptr<ScenarioRun> start(
      const RunSpec& spec, std::uint64_t replicaSeed,
      unsigned workerThreads) const override {
    core::AlignmentModel::Options options;
    options.lambda = spec.params.getDouble("lambda", options.lambda);
    options.kappa = spec.params.getDouble("kappa", options.kappa);
    options.enableRotations =
        spec.params.getBool("rotations", options.enableRotations);
    options.rotationProbability =
        spec.params.getDouble("rotation-prob", options.rotationProbability);
    system::ParticleSystem initial = spec.makeInitial(replicaSeed);
    auto orientations = system::alternatingClasses(
        initial.size(), core::AlignmentModel::kOrientations);
    return makeChainRun(
        std::move(initial),
        core::AlignmentModel(options, std::move(orientations)), spec,
        replicaSeed, workerThreads, &sampleAlignment<core::AlignmentEngine>,
        &sampleAlignment<core::ShardedChainRunner<core::AlignmentModel>>);
  }
};

// -- amoebot (Algorithm A on the sharded Poisson runner) --------------------

class AmoebotRun : public ScenarioRun {
 public:
  AmoebotRun(const system::ParticleSystem& initial, double lambda,
             double crashFraction, std::uint64_t seed,
             amoebot::ShardedOptions options)
      : sysRng_(seed), sys_(initial, sysRng_), algo_({lambda}) {
    if (crashFraction > 0.0) {
      rng::Random faultRng(seed + 1);
      amoebot::applyFaults(
          sys_, amoebot::randomCrashes(sys_.size(), crashFraction, faultRng));
    }
    runner_.emplace(sys_, algo_, seed + 2, std::move(options));
  }

  void advance(std::uint64_t steps) override { runner_->runAtLeast(steps); }
  [[nodiscard]] std::uint64_t stepsDone() const override {
    return runner_->activations();
  }
  void sampleMetrics(std::vector<double>& out) const override {
    const system::ParticleSystem tails = sys_.tailConfiguration();
    out.push_back(static_cast<double>(system::perimeter(tails)));
    out.push_back(alphaOf(tails));
    out.push_back(runner_->activations() == 0
                      ? 0.0
                      : static_cast<double>(runner_->sweepActivations()) /
                            static_cast<double>(runner_->activations()));
    out.push_back(runner_->now());
  }
  [[nodiscard]] system::ParticleSystem snapshot() const override {
    return sys_.tailConfiguration();
  }
  [[nodiscard]] std::string regime() const override {
    return sys_.regimeName();
  }
  void setCancelToken(const core::CancelToken* cancel) override {
    runner_->setCancelToken(cancel);
  }
  [[nodiscard]] bool supportsSnapshots() const override { return true; }
  // The system (particle structs, fault flags, window geometry) and the
  // runner (clock, per-particle streams) serialize back to back; the
  // constructor's random orientation/fault draws are overwritten wholesale
  // on restore, so a resumed run needs only the same spec and seed.
  void saveState(system::SnapshotWriter& w) const override {
    sys_.saveState(w);
    runner_->saveState(w);
  }
  void restoreState(system::SnapshotReader& r) override {
    sys_.restoreState(r);
    runner_->restoreState(r);
  }

 private:
  rng::Random sysRng_;
  amoebot::AmoebotSystem sys_;
  amoebot::LocalCompressionAlgorithm algo_;
  std::optional<amoebot::ShardedPoissonRunner> runner_;
};

class AmoebotScenario : public Scenario {
 public:
  [[nodiscard]] std::string name() const override { return "amoebot"; }
  [[nodiscard]] std::string description() const override {
    return "Algorithm A on the sharded Poisson runner (steps = activations; "
           "deterministic per seed for every thread count)";
  }
  [[nodiscard]] ParamSchema schema() const override {
    ParamSchema schema;
    schema.add("lambda", ParamType::Double, "4.0",
               "compression bias on edges");
    schema.add("crash-fraction", ParamType::Double, "0.0",
               "fraction of particles crashed at start (section 3.3)");
    addShardedKeys(schema);
    return schema;
  }
  [[nodiscard]] std::vector<std::string> metricNames() const override {
    return {"perimeter", "alpha", "sweep_fraction", "sim_time"};
  }
  [[nodiscard]] std::unique_ptr<ScenarioRun> start(
      const RunSpec& spec, std::uint64_t replicaSeed,
      unsigned workerThreads) const override {
    const double crashFraction =
        spec.params.getDouble("crash-fraction", 0.0);
    SOPS_REQUIRE(crashFraction >= 0.0 && crashFraction < 1.0,
                 "crash-fraction must be in [0, 1)");
    system::ParticleSystem initial = spec.makeInitial(replicaSeed);
    amoebot::ShardedOptions options;
    options.threads = workerThreads;
    options.targetEventsPerEpoch = epochEventsFrom(spec.params);
    options.adaptiveEpochs = spec.params.getBool("epoch-adaptive", true);
    options.rates = rampRates(rateSpreadFrom(spec.params), initial.size());
    return std::make_unique<AmoebotRun>(
        std::move(initial), spec.params.getDouble("lambda", 4.0),
        crashFraction, replicaSeed, std::move(options));
  }
};

}  // namespace

void registerBuiltins(Registry& registry) {
  registry.add(std::make_unique<CompressionScenario>());
  registry.add(std::make_unique<SeparationScenario>());
  registry.add(std::make_unique<AlignmentScenario>());
  registry.add(std::make_unique<AmoebotScenario>());
}

}  // namespace sops::sim
