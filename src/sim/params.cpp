#include "sim/params.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

#include "util/assert.hpp"

namespace sops::sim {
namespace {

[[nodiscard]] std::string lowered(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

[[noreturn]] void badValue(std::string_view key, std::string_view value,
                           std::string_view wanted) {
  throw ContractViolation("parameter '" + std::string(key) + "': value '" +
                          std::string(value) + "' is not a valid " +
                          std::string(wanted));
}

[[nodiscard]] bool parsesAs(ParamType type, std::string_view value) {
  switch (type) {
    case ParamType::Int: {
      std::int64_t out = 0;
      const auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), out);
      return ec == std::errc() && ptr == value.data() + value.size();
    }
    case ParamType::Double: {
      if (value.empty()) return false;
      const std::string buffer(value);
      char* end = nullptr;
      (void)std::strtod(buffer.c_str(), &end);
      return end == buffer.c_str() + buffer.size();
    }
    case ParamType::Bool: {
      const std::string v = lowered(value);
      return v == "1" || v == "0" || v == "true" || v == "false" ||
             v == "yes" || v == "no" || v == "on" || v == "off";
    }
    case ParamType::String:
      return true;
  }
  return false;
}

}  // namespace

std::string_view toString(ParamType type) noexcept {
  switch (type) {
    case ParamType::Int: return "int";
    case ParamType::Double: return "double";
    case ParamType::Bool: return "bool";
    case ParamType::String: return "string";
  }
  return "?";
}

ParamSchema& ParamSchema::add(std::string name, ParamType type,
                              std::string defaultValue,
                              std::string description) {
  SOPS_REQUIRE(find(name) == nullptr, "duplicate schema key: " + name);
  params_.push_back(ParamInfo{std::move(name), type, std::move(defaultValue),
                              std::move(description)});
  return *this;
}

const ParamInfo* ParamSchema::find(std::string_view name) const noexcept {
  for (const ParamInfo& info : params_) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

void ParamMap::set(std::string key, std::string value) {
  SOPS_REQUIRE(!key.empty(), "parameter key must be non-empty");
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  entries_.emplace_back(std::move(key), std::move(value));
}

void ParamMap::merge(const ParamMap& other, bool onlyKnownKeys) {
  for (const auto& [key, value] : other.entries_) {
    if (onlyKnownKeys && !contains(key)) {
      std::string known;
      for (const auto& [k, v] : entries_) {
        if (!known.empty()) known += ", ";
        known += k;
      }
      throw ContractViolation("unknown parameter '" + key +
                              "' (known: " + known + ")");
    }
    set(key, value);
  }
}

void ParamMap::erase(std::string_view key) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->first == key) {
      entries_.erase(it);
      return;
    }
  }
}

bool ParamMap::contains(std::string_view key) const noexcept {
  for (const auto& [k, v] : entries_) {
    if (k == key) return true;
  }
  return false;
}

std::optional<std::string> ParamMap::get(std::string_view key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::int64_t ParamMap::getInt(std::string_view key,
                              std::int64_t fallback) const {
  const auto value = get(key);
  if (!value.has_value()) return fallback;
  if (!parsesAs(ParamType::Int, *value)) badValue(key, *value, "integer");
  return std::strtoll(value->c_str(), nullptr, 10);
}

double ParamMap::getDouble(std::string_view key, double fallback) const {
  const auto value = get(key);
  if (!value.has_value()) return fallback;
  if (!parsesAs(ParamType::Double, *value)) badValue(key, *value, "number");
  return std::strtod(value->c_str(), nullptr);
}

bool ParamMap::getBool(std::string_view key, bool fallback) const {
  const auto value = get(key);
  if (!value.has_value()) return fallback;
  if (!parsesAs(ParamType::Bool, *value)) badValue(key, *value, "boolean");
  const std::string v = lowered(*value);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::string ParamMap::getString(std::string_view key,
                                std::string fallback) const {
  return get(key).value_or(std::move(fallback));
}

void ParamMap::validateAgainst(const ParamSchema& schema,
                               std::string_view context) const {
  for (const auto& [key, value] : entries_) {
    const ParamInfo* info = schema.find(key);
    if (info == nullptr) {
      std::string known;
      for (const ParamInfo& p : schema.params()) {
        if (!known.empty()) known += ", ";
        known += p.name;
      }
      throw ContractViolation("unknown " + std::string(context) +
                              " parameter '" + key + "' (known: " + known +
                              ")");
    }
    if (!parsesAs(info->type, value)) {
      badValue(key, value, toString(info->type));
    }
  }
}

std::string ParamMap::toText() const {
  std::string out;
  for (const auto& [key, value] : entries_) {
    if (!out.empty()) out += ' ';
    out += key;
    out += '=';
    // Quote on any whitespace/quote/backslash/comment character so that
    // parseKeyValues(toText()) round-trips exactly; quotes and
    // backslashes are backslash-escaped inside.
    const bool needsQuotes =
        value.empty() ||
        value.find_first_of(" \t\n\r\"\\#") != std::string::npos;
    if (needsQuotes) {
      out += '"';
      for (const char c : value) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
      }
      out += '"';
    } else {
      out += value;
    }
  }
  return out;
}

ParamMap parseKeyValues(std::string_view text) {
  ParamMap map;
  std::size_t i = 0;
  const auto isSpace = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (i < text.size()) {
    while (i < text.size() && isSpace(text[i])) ++i;
    if (i >= text.size()) break;
    if (text[i] == '#') {  // comment to end of line
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    const std::size_t tokenStart = i;
    const std::size_t eq = text.find('=', i);
    std::size_t tokenEnd = i;
    while (tokenEnd < text.size() && !isSpace(text[tokenEnd])) ++tokenEnd;
    if (eq == std::string_view::npos || eq >= tokenEnd || eq == tokenStart) {
      throw ContractViolation(
          "malformed spec token '" +
          std::string(text.substr(tokenStart, tokenEnd - tokenStart)) +
          "': expected key=value");
    }
    const std::string key(text.substr(tokenStart, eq - tokenStart));
    std::string value;
    i = eq + 1;
    if (i < text.size() && text[i] == '"') {
      ++i;
      bool closed = false;
      while (i < text.size()) {
        const char c = text[i++];
        if (c == '"') {
          closed = true;
          break;
        }
        if (c == '\\' && i < text.size() &&
            (text[i] == '"' || text[i] == '\\')) {
          value += text[i++];
        } else {
          value += c;
        }
      }
      SOPS_REQUIRE(closed, "unterminated quote in value of '" + key + "'");
    } else {
      // An unquoted value ends at whitespace OR a comment marker, the
      // mirror of toText() quoting any value that contains '#': without
      // the '#' stop, `mode=fast#quick` would parse as value
      // "fast#quick" while toText() would have written it quoted.
      const std::size_t valueStart = i;
      while (i < text.size() && !isSpace(text[i]) && text[i] != '#') ++i;
      value.assign(text.substr(valueStart, i - valueStart));
    }
    map.set(key, value);
  }
  return map;
}

ParamMap parseArgs(int argc, const char* const* argv, int firstArg) {
  // Each argv element is one token — the shell already delimited them, so
  // a quoted value may contain spaces (or `k=v` text) without being
  // re-split.  Everything after the first '=' is the value, verbatim.
  ParamMap map;
  for (int i = firstArg; i < argc; ++i) {
    const std::string_view token(argv[i]);
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw ContractViolation("malformed argument '" + std::string(token) +
                              "': expected key=value");
    }
    map.set(std::string(token.substr(0, eq)),
            std::string(token.substr(eq + 1)));
  }
  return map;
}

namespace {

/// Minimal strict parser for one flat JSON object.  Run specs need exactly
/// this much JSON: {"key": "string" | number | true | false, ...}.
class FlatJsonParser {
 public:
  explicit FlatJsonParser(std::string_view text) : text_(text) {}

  ParamMap parse() {
    ParamMap map;
    skipSpace();
    expect('{');
    skipSpace();
    if (peek() == '}') {
      ++pos_;
      ensureTrailingSpaceOnly();
      return map;
    }
    while (true) {
      skipSpace();
      const std::string key = parseString("object key");
      skipSpace();
      expect(':');
      skipSpace();
      map.set(key, parseValue(key));
      skipSpace();
      const char c = next("',' or '}'");
      if (c == '}') break;
      SOPS_REQUIRE(c == ',', "JSON spec: expected ',' or '}'");
    }
    ensureTrailingSpaceOnly();
    return map;
  }

 private:
  [[nodiscard]] char peek() const {
    SOPS_REQUIRE(pos_ < text_.size(), "JSON spec: unexpected end of input");
    return text_[pos_];
  }
  char next(const char* wanted) {
    SOPS_REQUIRE(pos_ < text_.size(),
                 std::string("JSON spec: expected ") + wanted +
                     " but input ended");
    return text_[pos_++];
  }
  void expect(char c) {
    SOPS_REQUIRE(next("a token") == c,
                 std::string("JSON spec: expected '") + c + "'");
  }
  void skipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  void ensureTrailingSpaceOnly() {
    skipSpace();
    SOPS_REQUIRE(pos_ == text_.size(),
                 "JSON spec: trailing characters after closing '}'");
  }

  std::string parseString(const char* what) {
    SOPS_REQUIRE(next(what) == '"',
                 std::string("JSON spec: expected quoted ") + what);
    std::string out;
    while (true) {
      const char c = next("closing quote");
      if (c == '"') return out;
      if (c == '\\') {
        const char escaped = next("escape character");
        switch (escaped) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default:
            throw ContractViolation(
                std::string("JSON spec: unsupported escape '\\") + escaped +
                "'");
        }
        continue;
      }
      out += c;
    }
  }

  std::string parseValue(const std::string& key) {
    const char c = peek();
    if (c == '"') return parseString("value");
    if (c == '{' || c == '[') {
      throw ContractViolation("JSON spec: value of '" + key +
                              "' is nested; run specs are flat objects");
    }
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != '}' &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    const std::string literal(text_.substr(start, pos_ - start));
    if (literal == "true" || literal == "false") return literal;
    SOPS_REQUIRE(!literal.empty() && literal != "null",
                 "JSON spec: value of '" + key + "' must be a string, "
                 "number, or boolean");
    // Numbers keep their literal spelling; reject anything non-numeric.
    char* end = nullptr;
    (void)std::strtod(literal.c_str(), &end);
    SOPS_REQUIRE(end == literal.c_str() + literal.size(),
                 "JSON spec: value of '" + key + "' is not a valid number");
    return literal;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

ParamMap parseJsonObject(std::string_view text) {
  return FlatJsonParser(text).parse();
}

ParamMap parseSpecText(std::string_view text) {
  for (const char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    if (c == '{') return parseJsonObject(text);
    break;
  }
  return parseKeyValues(text);
}

}  // namespace sops::sim
