#include "sim/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <utility>

#include "core/ensemble.hpp"
#include "sim/registry.hpp"
#include "system/snapshot.hpp"
#include "util/assert.hpp"

namespace sops::sim {
namespace {

/// Per-replica MemorySink event budget for the multi-replica fan-out.  A
/// steps/checkpoint ratio that buffers millions of rows per replica is a
/// spec mistake (stream single-replica runs instead); the cap turns the
/// slow OOM into an immediate, named error.
constexpr std::size_t kMaxBufferedEventsPerReplica = std::size_t{1} << 22;

/// The canonical trajectory-identity key of a spec: the fields a snapshot
/// is only valid under.  Steps, checkpoint cadence, sinks, deadline, and
/// the exact thread *count* may change between save and resume; scenario,
/// shape, n, seed, the scenario parameters, and the execution regime
/// (sequential engine at threads <= 1 vs sharded runner at threads > 1 —
/// the sharded trajectory is identical for every count > 1) may not.
/// Scenario params are sorted so spelling order cannot matter.
[[nodiscard]] std::string resumeCompatText(const RunSpec& spec) {
  std::string out = "scenario=" + spec.scenario + " shape=" + spec.shape +
                    " n=" + std::to_string(spec.n) +
                    " seed=" + std::to_string(spec.seed) +
                    " engine=" + (spec.threads > 1 ? "sharded" : "sequential");
  std::vector<std::pair<std::string, std::string>> entries;
  for (const auto& [key, value] : spec.params.entries()) {
    entries.emplace_back(key, value);
  }
  std::sort(entries.begin(), entries.end());
  for (const auto& [key, value] : entries) out += " " + key + "=" + value;
  return out;
}

/// One stderr line, once per process, the first time a replica reports the
/// degraded sparse occupancy regime (hash-index-only queries — no dense
/// planes, no striped parallelism).  Dense configurations promote to the
/// tiled backend instead of degrading, so this fires only for runs resumed
/// from a sparse-tagged snapshot or drivers wired up unexpectedly.
void warnIfSparseRegime(const RunSpec& spec, std::size_t replica,
                        const std::string& regime) {
  static std::atomic_flag warned = ATOMIC_FLAG_INIT;
  if (regime != "sparse") return;
  if (warned.test_and_set()) return;
  std::fprintf(stderr,
               "[sops] warning: scenario '%s' replica %zu degraded to the "
               "sparse occupancy regime (hash-index queries only; no dense "
               "fast path, no striping)\n",
               spec.scenario.c_str(), replica);
}

/// Runs one replica to completion, streaming into `observer`.  Returns the
/// replica's summary (without the finalSystem pointer, which is only valid
/// during the onReplicaEnd call).
ReplicaSummary runReplica(const RunSpec& spec, const Scenario& scenario,
                          std::size_t replica, unsigned scenarioThreads,
                          Observer& observer, const StopWhen& stopWhen,
                          const core::CancelToken* cancel, bool* sawCancel) {
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t seed = spec.replicaSeed(replica);
  const std::unique_ptr<ScenarioRun> run =
      scenario.start(spec, seed, scenarioThreads);
  run->setCancelToken(cancel);

  if (!spec.resumePath.empty()) {
    SOPS_REQUIRE(run->supportsSnapshots(),
                 "scenario '" + spec.scenario + "' does not support resume");
    const system::SnapshotData snapshot =
        system::loadResumableSnapshot(spec.resumePath);
    system::SnapshotReader reader(snapshot.payload, snapshot.version);
    const std::string storedCompat = reader.str();
    const std::string expectedCompat = resumeCompatText(spec);
    SOPS_REQUIRE(storedCompat == expectedCompat,
                 "resume: snapshot " + spec.resumePath +
                     " was written by an incompatible spec\n  snapshot: " +
                     storedCompat + "\n  current:  " + expectedCompat);
    const std::uint64_t storedReplica = reader.u64();
    SOPS_REQUIRE(storedReplica == replica,
                 "resume: snapshot holds replica " +
                     std::to_string(storedReplica));
    const std::uint64_t storedSteps = reader.u64();
    run->restoreState(reader);
    reader.finish();
    SOPS_REQUIRE(run->stepsDone() == storedSteps,
                 "resume: restored run reports " +
                     std::to_string(run->stepsDone()) +
                     " steps but the snapshot recorded " +
                     std::to_string(storedSteps));
  }
  warnIfSparseRegime(spec, replica, run->regime());

  // Atomic checkpoint snapshot: the full trajectory-identity key plus the
  // run's complete evolving state, written after every advance (so the
  // newest durable state is at most one checkpoint old) and at the
  // cancellation point.
  const auto writeSnapshot = [&] {
    if (spec.snapshotPath.empty()) return;
    SOPS_REQUIRE(run->supportsSnapshots(),
                 "scenario '" + spec.scenario +
                     "' does not support snapshot-file");
    system::SnapshotWriter writer;
    writer.str(resumeCompatText(spec));
    writer.u64(replica);
    writer.u64(run->stepsDone());
    run->saveState(writer);
    system::writeSnapshotFile(spec.snapshotPath, writer.payload());
  };

  // Enforced here, once, for every consumer (sinks, StopWhen, reports):
  // a scenario emitting a different number of values than it declared
  // would otherwise misalign CSV columns and JSONL keys silently.
  const std::size_t metricCount = scenario.metricNames().size();

  std::vector<double> values;
  const auto sample = [&] {
    values.clear();
    run->sampleMetrics(values);
    SOPS_REQUIRE(values.size() == metricCount,
                 "scenario '" + spec.scenario + "' sampled " +
                     std::to_string(values.size()) + " values but declared " +
                     std::to_string(metricCount) + " metrics");
    const Sample s{replica, run->stepsDone(), values};
    observer.onSample(s);
    return stopWhen != nullptr && stopWhen(s);
  };

  // Iteration-0 row (or, resumed, the restored checkpoint's row): the
  // start of every curve.
  bool stopped = sample();
  if (spec.snapshots) {
    observer.onSnapshot(replica, run->stepsDone(), run->snapshot());
  }
  // Baseline snapshot before any work: from here on a resumable snapshot
  // exists on disk no matter when the process dies or is cancelled.
  writeSnapshot();
  const std::uint64_t chunk =
      spec.checkpointEvery > 0 ? spec.checkpointEvery
                               : std::max<std::uint64_t>(spec.steps, 1);
  while (!stopped && run->stepsDone() < spec.steps) {
    if (core::isCancelled(cancel)) {
      *sawCancel = true;
      break;
    }
    run->advance(std::min(chunk, spec.steps - run->stepsDone()));
    // Poll after the advance too: a cancelled advance may have returned
    // early (even with zero progress), and looping without the check
    // would spin.  Sample and snapshot the partial state first — it is
    // consistent and exactly the state a resume continues from.
    const bool cancelled = core::isCancelled(cancel);
    stopped = sample();
    if (spec.snapshots) {
      observer.onSnapshot(replica, run->stepsDone(), run->snapshot());
    }
    writeSnapshot();
    if (cancelled) {
      *sawCancel = true;
      break;
    }
  }

  ReplicaSummary summary;
  summary.replica = replica;
  summary.label = spec.scenario + " seed=" + std::to_string(seed);
  summary.seed = seed;
  summary.steps = run->stepsDone();
  summary.regime = run->regime();
  warnIfSparseRegime(spec, replica, summary.regime);
  run->sampleMetrics(summary.finalMetrics);
  summary.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const system::ParticleSystem finalSystem = run->snapshot();
  summary.finalSystem = &finalSystem;
  observer.onReplicaEnd(summary);
  summary.finalSystem = nullptr;
  return summary;
}

}  // namespace

double RunReport::finalMetric(std::size_t replica,
                              std::string_view name) const {
  SOPS_REQUIRE(replica < replicas.size(), "replica index out of range");
  SOPS_REQUIRE(replicas[replica].finalMetrics.size() == metricNames.size(),
               "replica " + std::to_string(replica) +
                   " has no final metrics (cancelled before start)");
  for (std::size_t i = 0; i < metricNames.size(); ++i) {
    if (metricNames[i] == name) return replicas[replica].finalMetrics[i];
  }
  throw ContractViolation("unknown metric '" + std::string(name) + "'");
}

RunReport run(const RunSpec& spec, Observer& extra, const StopWhen& stopWhen,
              core::CancelToken* cancel) {
  spec.validate();
  const Scenario& scenario = Registry::instance().get(spec.scenario);

  // Preflight every sink path before any compute: an unwritable path
  // should fail in milliseconds, not after the run (the SVG sink, for
  // one, only opens its file at the end of replica 0).
  if (!spec.csvPath.empty()) preflightWritableSink(spec.csvPath);
  if (!spec.jsonlPath.empty()) preflightWritableSink(spec.jsonlPath);
  if (!spec.svgPath.empty()) preflightWritableSink(spec.svgPath);
  if (!spec.snapshotPath.empty()) preflightWritableSink(spec.snapshotPath);

  // The spec's deadline arms the caller's token when there is one (so a
  // signal handler and the deadline share a flag), an internal one
  // otherwise.
  core::CancelToken deadlineToken;
  core::CancelToken* token = cancel;
  if (spec.deadlineMs > 0) {
    if (token == nullptr) token = &deadlineToken;
    token->setDeadlineMs(spec.deadlineMs);
  }

  ObserverList observers;
  observers.attach(&extra);
  std::unique_ptr<CsvSink> csv;
  std::unique_ptr<JsonlSink> jsonl;
  std::unique_ptr<SvgSink> svg;
  if (!spec.csvPath.empty()) {
    csv = std::make_unique<CsvSink>(spec.csvPath);
    observers.attach(csv.get());
  }
  if (!spec.jsonlPath.empty()) {
    jsonl = std::make_unique<JsonlSink>(spec.jsonlPath);
    observers.attach(jsonl.get());
  }
  if (!spec.svgPath.empty()) {
    svg = std::make_unique<SvgSink>(spec.svgPath);
    observers.attach(svg.get());
  }

  RunHeader header;
  header.spec = &spec;
  header.metricNames = scenario.metricNames();

  RunReport report;
  report.metricNames = header.metricNames;
  observers.onRunBegin(header);

  bool cancelled = false;
  if (spec.replicas == 1) {
    // Inline: stream live, scenario gets the whole thread budget.
    report.replicas.push_back(runReplica(spec, scenario, 0, spec.threads,
                                         observers, stopWhen, token,
                                         &cancelled));
  } else {
    // Fan out replicas across the ensemble pool; each worker buffers its
    // replica's events, replayed in replica order after the join so the
    // observer stream is deterministic and thread-count independent.
    // Cancellation skips replicas not yet claimed (their buffers stay
    // empty, so the sinks see nothing from them) and interrupts running
    // ones at their next checkpoint.
    std::vector<MemorySink> buffers;
    buffers.reserve(spec.replicas);
    for (std::uint32_t r = 0; r < spec.replicas; ++r) {
      buffers.emplace_back(kMaxBufferedEventsPerReplica);
    }
    std::vector<ReplicaSummary> summaries(spec.replicas);
    std::vector<char> completed(spec.replicas, 0);
    std::vector<char> replicaCancelled(spec.replicas, 0);
    core::parallelForIndex(
        spec.replicas, spec.threads, token, [&](std::size_t r) {
          bool saw = false;
          summaries[r] = runReplica(spec, scenario, r, /*scenarioThreads=*/1,
                                    buffers[r], stopWhen, token, &saw);
          completed[r] = 1;
          replicaCancelled[r] = saw ? 1 : 0;
        });
    for (std::size_t r = 0; r < buffers.size(); ++r) {
      buffers[r].replayInto(observers);
      if (!completed[r] || replicaCancelled[r]) cancelled = true;
      if (!completed[r]) {
        // Never claimed (cancelled before start): identify the slot but
        // leave finalMetrics empty — finalMetric() rejects it loudly.
        summaries[r].replica = r;
        summaries[r].seed = spec.replicaSeed(r);
        summaries[r].label = spec.scenario +
                             " seed=" + std::to_string(summaries[r].seed) +
                             " (cancelled before start)";
      }
      report.replicas.push_back(std::move(summaries[r]));
    }
  }
  observers.onRunEnd();
  // The flag observed by the replica loops, not the token's state now: a
  // deadline that fires after the last step finished did not cancel
  // anything.
  report.cancelled = cancelled;
  return report;
}

RunReport run(const RunSpec& spec) {
  Observer none;
  return run(spec, none);
}

}  // namespace sops::sim
