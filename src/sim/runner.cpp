#include "sim/runner.hpp"

#include <algorithm>
#include <chrono>
#include <memory>

#include "core/ensemble.hpp"
#include "sim/registry.hpp"
#include "util/assert.hpp"

namespace sops::sim {
namespace {

/// Runs one replica to completion, streaming into `observer`.  Returns the
/// replica's summary (without the finalSystem pointer, which is only valid
/// during the onReplicaEnd call).
ReplicaSummary runReplica(const RunSpec& spec, const Scenario& scenario,
                          std::size_t replica, unsigned scenarioThreads,
                          Observer& observer, const StopWhen& stopWhen) {
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t seed = spec.replicaSeed(replica);
  const std::unique_ptr<ScenarioRun> run =
      scenario.start(spec, seed, scenarioThreads);
  // Enforced here, once, for every consumer (sinks, StopWhen, reports):
  // a scenario emitting a different number of values than it declared
  // would otherwise misalign CSV columns and JSONL keys silently.
  const std::size_t metricCount = scenario.metricNames().size();

  std::vector<double> values;
  const auto sample = [&] {
    values.clear();
    run->sampleMetrics(values);
    SOPS_REQUIRE(values.size() == metricCount,
                 "scenario '" + spec.scenario + "' sampled " +
                     std::to_string(values.size()) + " values but declared " +
                     std::to_string(metricCount) + " metrics");
    const Sample s{replica, run->stepsDone(), values};
    observer.onSample(s);
    return stopWhen != nullptr && stopWhen(s);
  };

  bool stopped = sample();  // iteration-0 row: the start of every curve
  if (spec.snapshots) observer.onSnapshot(replica, 0, run->snapshot());
  const std::uint64_t chunk =
      spec.checkpointEvery > 0 ? spec.checkpointEvery
                               : std::max<std::uint64_t>(spec.steps, 1);
  while (!stopped && run->stepsDone() < spec.steps) {
    run->advance(std::min(chunk, spec.steps - run->stepsDone()));
    stopped = sample();
    if (spec.snapshots) {
      observer.onSnapshot(replica, run->stepsDone(), run->snapshot());
    }
  }

  ReplicaSummary summary;
  summary.replica = replica;
  summary.label = spec.scenario + " seed=" + std::to_string(seed);
  summary.seed = seed;
  summary.steps = run->stepsDone();
  run->sampleMetrics(summary.finalMetrics);
  summary.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const system::ParticleSystem finalSystem = run->snapshot();
  summary.finalSystem = &finalSystem;
  observer.onReplicaEnd(summary);
  summary.finalSystem = nullptr;
  return summary;
}

}  // namespace

double RunReport::finalMetric(std::size_t replica,
                              std::string_view name) const {
  SOPS_REQUIRE(replica < replicas.size(), "replica index out of range");
  for (std::size_t i = 0; i < metricNames.size(); ++i) {
    if (metricNames[i] == name) return replicas[replica].finalMetrics[i];
  }
  throw ContractViolation("unknown metric '" + std::string(name) + "'");
}

RunReport run(const RunSpec& spec, Observer& extra, const StopWhen& stopWhen) {
  spec.validate();
  const Scenario& scenario = Registry::instance().get(spec.scenario);

  ObserverList observers;
  observers.attach(&extra);
  std::unique_ptr<CsvSink> csv;
  std::unique_ptr<JsonlSink> jsonl;
  std::unique_ptr<SvgSink> svg;
  if (!spec.csvPath.empty()) {
    csv = std::make_unique<CsvSink>(spec.csvPath);
    observers.attach(csv.get());
  }
  if (!spec.jsonlPath.empty()) {
    jsonl = std::make_unique<JsonlSink>(spec.jsonlPath);
    observers.attach(jsonl.get());
  }
  if (!spec.svgPath.empty()) {
    svg = std::make_unique<SvgSink>(spec.svgPath);
    observers.attach(svg.get());
  }

  RunHeader header;
  header.spec = &spec;
  header.metricNames = scenario.metricNames();

  RunReport report;
  report.metricNames = header.metricNames;
  observers.onRunBegin(header);

  if (spec.replicas == 1) {
    // Inline: stream live, scenario gets the whole thread budget.
    report.replicas.push_back(
        runReplica(spec, scenario, 0, spec.threads, observers, stopWhen));
  } else {
    // Fan out replicas across the ensemble pool; each worker buffers its
    // replica's events, replayed in replica order after the join so the
    // observer stream is deterministic and thread-count independent.
    std::vector<MemorySink> buffers(spec.replicas);
    std::vector<ReplicaSummary> summaries(spec.replicas);
    core::parallelForIndex(spec.replicas, spec.threads, [&](std::size_t r) {
      summaries[r] = runReplica(spec, scenario, r, /*scenarioThreads=*/1,
                                buffers[r], stopWhen);
    });
    for (std::size_t r = 0; r < buffers.size(); ++r) {
      buffers[r].replayInto(observers);
      report.replicas.push_back(std::move(summaries[r]));
    }
  }
  observers.onRunEnd();
  return report;
}

RunReport run(const RunSpec& spec) {
  Observer none;
  return run(spec, none);
}

}  // namespace sops::sim
