#ifndef SOPS_SIM_OBSERVER_HPP
#define SOPS_SIM_OBSERVER_HPP

/// \file observer.hpp
/// Streaming measurement hooks for facade runs.
///
/// Observers replace the inline measurement loops every bench/example used
/// to hand-roll: the runner samples each replica's declared metrics at
/// every checkpoint and streams them — plus optional configuration
/// snapshots and one summary per replica — through an Observer.  Shipped
/// sinks cover the common cases: CSV (analysis/csv), JSONL, ASCII/SVG
/// snapshots (io/), an in-memory sink for tests, and a fan-out list.
///
/// Ordering contract: onRunBegin, then for each replica in *replica
/// order* its samples in iteration order interleaved with its snapshots,
/// then that replica's onReplicaEnd, then onRunEnd.  Multi-replica runs
/// buffer per-replica events on the workers and replay them in replica
/// order on the caller's thread, so sink output is deterministic and
/// independent of the thread count (the same guarantee core::runEnsemble
/// gives for its results).

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "analysis/csv.hpp"
#include "system/particle_system.hpp"

namespace sops::sim {

struct RunSpec;

/// Passed to onRunBegin: the spec being run and the metric columns every
/// Sample's values align with.
struct RunHeader {
  const RunSpec* spec = nullptr;
  std::vector<std::string> metricNames;
};

struct Sample {
  std::size_t replica = 0;
  std::uint64_t iteration = 0;
  std::span<const double> values;  ///< aligned with RunHeader::metricNames
};

struct ReplicaSummary {
  std::size_t replica = 0;
  std::string label;
  std::uint64_t seed = 0;
  std::uint64_t steps = 0;  ///< exact steps executed
  std::vector<double> finalMetrics;
  double wallSeconds = 0.0;
  /// Occupancy regime at the end of the replica ("dense-flat",
  /// "dense-tiled", "sparse"), or "" when the scenario does not report
  /// one (ScenarioRun::regime).
  std::string regime;
  /// The replica's final configuration; valid only for the duration of the
  /// onReplicaEnd call (copy it to keep it).
  const system::ParticleSystem* finalSystem = nullptr;
};

class Observer {
 public:
  virtual ~Observer() = default;
  virtual void onRunBegin(const RunHeader& header) { (void)header; }
  virtual void onSample(const Sample& sample) { (void)sample; }
  virtual void onSnapshot(std::size_t replica, std::uint64_t iteration,
                          const system::ParticleSystem& sys) {
    (void)replica;
    (void)iteration;
    (void)sys;
  }
  virtual void onReplicaEnd(const ReplicaSummary& summary) { (void)summary; }
  virtual void onRunEnd() {}
};

/// Fans every event out to the attached observers (not owned), in
/// attachment order.
class ObserverList : public Observer {
 public:
  void attach(Observer* observer);

  void onRunBegin(const RunHeader& header) override;
  void onSample(const Sample& sample) override;
  void onSnapshot(std::size_t replica, std::uint64_t iteration,
                  const system::ParticleSystem& sys) override;
  void onReplicaEnd(const ReplicaSummary& summary) override;
  void onRunEnd() override;

 private:
  std::vector<Observer*> observers_;
};

/// Samples as CSV rows: replica, iteration, then one column per metric.
class CsvSink : public Observer {
 public:
  explicit CsvSink(std::string path) : path_(std::move(path)) {}

  void onRunBegin(const RunHeader& header) override;
  void onSample(const Sample& sample) override;

  [[nodiscard]] bool ok() const {
    return writer_ != nullptr && writer_->ok();
  }

 private:
  std::string path_;
  std::unique_ptr<analysis::CsvWriter> writer_;
};

/// One JSON object per line: the run spec, every sample, every replica
/// summary, and a final run record — machine-readable without a schema.
class JsonlSink : public Observer {
 public:
  explicit JsonlSink(std::string path) : path_(std::move(path)) {}

  void onRunBegin(const RunHeader& header) override;
  void onSample(const Sample& sample) override;
  void onReplicaEnd(const ReplicaSummary& summary) override;
  void onRunEnd() override;

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

 private:
  std::string path_;
  std::ofstream out_;
  std::vector<std::string> metricNames_;
};

/// Streams ASCII renderings of snapshots (and each replica's final
/// configuration) to a stdio stream — the quickstart/demo view.
class AsciiSnapshotSink : public Observer {
 public:
  explicit AsciiSnapshotSink(std::FILE* out = stdout) : out_(out) {}

  void onSnapshot(std::size_t replica, std::uint64_t iteration,
                  const system::ParticleSystem& sys) override;
  void onReplicaEnd(const ReplicaSummary& summary) override;

 private:
  std::FILE* out_;
};

/// Writes replica 0's final configuration as an SVG (paper-figure style).
class SvgSink : public Observer {
 public:
  explicit SvgSink(std::string path) : path_(std::move(path)) {}

  void onReplicaEnd(const ReplicaSummary& summary) override;

 private:
  std::string path_;
};

/// Records everything in memory — the test seam, and the buffer the
/// multi-replica runner uses to replay worker-side events in replica
/// order.
class MemorySink : public Observer {
 public:
  /// `maxBufferedEvents` bounds the total recorded events (samples +
  /// snapshots + summaries); recording past the cap throws a
  /// ContractViolation naming it.  0 = unbounded (the test default).  The
  /// multi-replica runner buffers with a per-replica cap so a
  /// steps/checkpoint ratio that would buffer millions of rows fails
  /// loudly instead of creeping toward OOM.
  explicit MemorySink(std::size_t maxBufferedEvents = 0)
      : maxBufferedEvents_(maxBufferedEvents) {}

  struct StoredSample {
    std::size_t replica;
    std::uint64_t iteration;
    std::vector<double> values;
  };
  struct StoredSnapshot {
    std::size_t replica;
    std::uint64_t iteration;
    system::ParticleSystem system;
  };
  struct StoredSummary {
    /// finalSystem points at `system`, or stays null when the summary was
    /// recorded without a final configuration.
    ReplicaSummary summary;
    system::ParticleSystem system;  ///< owned copy of the final state
    bool hasSystem = false;
  };

  void onRunBegin(const RunHeader& header) override;
  void onSample(const Sample& sample) override;
  void onSnapshot(std::size_t replica, std::uint64_t iteration,
                  const system::ParticleSystem& sys) override;
  void onReplicaEnd(const ReplicaSummary& summary) override;

  /// Replays the recorded events (in recorded order) into another
  /// observer.  Run boundaries (onRunBegin/onRunEnd) are emitted only when
  /// requested — the multi-replica runner replays per-replica buffers into
  /// an already-opened run.
  void replayInto(Observer& target, bool withRunBoundaries = false) const;

  [[nodiscard]] const RunHeader& header() const noexcept { return header_; }
  [[nodiscard]] const std::vector<StoredSample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] const std::vector<StoredSnapshot>& snapshots() const noexcept {
    return snapshots_;
  }
  [[nodiscard]] const std::vector<StoredSummary>& summaries() const noexcept {
    return summaries_;
  }

 private:
  /// Interleaving record so replayInto preserves sample/snapshot order.
  enum class EventKind : std::uint8_t { Sample, Snapshot, Summary };

  /// Records one event in order, enforcing the buffer cap.
  void record(EventKind kind);

  std::size_t maxBufferedEvents_ = 0;
  RunHeader header_;
  std::vector<StoredSample> samples_;
  std::vector<StoredSnapshot> snapshots_;
  std::vector<StoredSummary> summaries_;
  std::vector<EventKind> order_;
};

/// Fail-fast writability probe for a sink path, run before any compute:
/// opens `path` for append (never truncating an existing file) and throws
/// ContractViolation naming the path if it cannot.  sim::run() preflights
/// every path the spec names (csv/jsonl/svg/snapshot-file) so a typo'd
/// directory fails in milliseconds, not after the run.
void preflightWritableSink(const std::string& path);

}  // namespace sops::sim

#endif  // SOPS_SIM_OBSERVER_HPP
