#ifndef SOPS_SIM_REGISTRY_HPP
#define SOPS_SIM_REGISTRY_HPP

/// \file registry.hpp
/// String-keyed scenario registry: the one place a workload plugs into.
///
/// Adding a scenario is a model file plus one registration — either a call
/// to Registry::instance().add(...) or a static sim::ScenarioRegistrar in
/// the scenario's translation unit.  The shipped scenarios (compression,
/// separation, alignment, amoebot) register through registerBuiltins(),
/// which Registry::instance() invokes lazily so that static-library
/// dead-stripping can never lose them.  Lookups by unknown name throw
/// with the list of registered names (surfaced verbatim by the spps CLI).

#include <memory>
#include <string>
#include <vector>

#include "sim/scenario.hpp"

namespace sops::sim {

class Registry {
 public:
  /// The process-wide registry, with built-in scenarios registered.
  static Registry& instance();

  /// Registers a scenario; duplicate names are a ContractViolation.
  void add(std::unique_ptr<Scenario> scenario);

  /// nullptr when no scenario has the name.
  [[nodiscard]] const Scenario* find(std::string_view name) const noexcept;

  /// Throws ContractViolation listing the registered names when absent.
  [[nodiscard]] const Scenario& get(std::string_view name) const;

  /// All scenarios, sorted by name (for --list output).
  [[nodiscard]] std::vector<const Scenario*> all() const;

  /// Comma-separated registered names, sorted.
  [[nodiscard]] std::string knownNames() const;

 private:
  Registry() = default;
  std::vector<std::unique_ptr<Scenario>> scenarios_;
};

/// Static-initialization helper for out-of-tree scenarios:
///   static sim::ScenarioRegistrar reg{std::make_unique<MyScenario>()};
struct ScenarioRegistrar {
  explicit ScenarioRegistrar(std::unique_ptr<Scenario> scenario);
};

/// Registers the four shipped scenarios into `registry` (idempotent only
/// in the sense that Registry::instance() calls it exactly once).
void registerBuiltins(Registry& registry);

}  // namespace sops::sim

#endif  // SOPS_SIM_REGISTRY_HPP
