#ifndef SOPS_SIM_RUNNER_HPP
#define SOPS_SIM_RUNNER_HPP

/// \file runner.hpp
/// The one dispatcher from a RunSpec to execution.
///
/// sim::run() validates the spec against the registry, builds the sinks
/// the spec names (csv/jsonl/svg), and routes to the right execution
/// shape:
///
///   replicas == 1  →  the replica runs inline on the caller's thread,
///                     streaming samples live; the scenario receives the
///                     spec's thread budget (the amoebot scenario uses it
///                     for its stripe workers — the sharded path);
///   replicas  > 1  →  replicas fan out across core::parallelForIndex
///                     (the core/ensemble pool discipline), each worker
///                     buffering its replica's events in a MemorySink;
///                     after the join the events replay into the observer
///                     in replica order, so sink output is deterministic
///                     and thread-count independent.
///
/// Checkpoint cadence: metrics are sampled at iteration 0, after every
/// `checkpoint` steps (when set), and after the final step.
///
/// Durable runs: with `snapshot-file=` set (replicas=1), the runner writes
/// an atomic binary snapshot of the replica's complete state after every
/// checkpoint and at the cancellation point; `resume=` restores one and
/// continues the identical trajectory.  A CancelToken (caller-supplied or
/// armed from `deadline-ms=`) makes the whole run cooperatively
/// interruptible.  See DESIGN.md §Durable runs.

#include <functional>

#include "core/cancel.hpp"
#include "sim/observer.hpp"
#include "sim/run_spec.hpp"

namespace sops::sim {

/// Early-stop predicate, evaluated after every checkpoint sample; true
/// ends that replica (the ensemble stopWhen, facade-shaped).
///
/// **Concurrency contract.**  sim::run() holds ONE StopWhen and, when
/// replicas > 1, invokes it concurrently and unsynchronized from every
/// ensemble worker — there is no per-replica copy and the runner takes
/// no lock around the call.  The callable must therefore be re-entrant:
/// either a pure function of the Sample it is handed (captures read-only
/// state fixed before the run — the shape every in-tree caller uses, see
/// bench_scaling), or one whose captured state is itself synchronized
/// (std::atomic counters, a mutex the callable takes).  Capturing plain
/// mutable state (a `double best`, a growing vector) is a data race,
/// reported by TSan and pinned by SimRunner.StopWhenSharedAcrossWorkers.
/// Each replica stops independently: returning true ends only the
/// replica whose sample was passed.
///
/// **StopWhen vs CancelToken.**  StopWhen is a *data-driven successful
/// stop*: the replica reached its target (α below threshold, metric
/// converged), its summary is complete, and no snapshot is owed.  A
/// CancelToken is an *externally-driven resumable abort* (signal,
/// deadline, controlling thread): it stops every replica at the next safe
/// point, marks the report cancelled, and — with snapshot-file set —
/// leaves a snapshot the same spec can resume from.  Use StopWhen to
/// express "done", a CancelToken to express "stop for now".
using StopWhen = std::function<bool(const Sample&)>;

struct RunReport {
  std::vector<std::string> metricNames;
  /// One summary per replica, in replica order (finalSystem is null here;
  /// attach an observer to capture final configurations).  A cancelled
  /// multi-replica run still has one entry per replica: replicas the pool
  /// never started carry their index/seed/label but empty finalMetrics.
  std::vector<ReplicaSummary> replicas;
  /// True when a cancel token (caller-supplied or deadline-armed) tripped
  /// before the run finished — the summaries describe partial work.
  bool cancelled = false;

  /// Value of a named final metric for one replica.
  [[nodiscard]] double finalMetric(std::size_t replica,
                                   std::string_view name) const;
};

/// Runs the spec end to end, streaming through `extra` (plus the sinks the
/// spec itself names).  Throws ContractViolation on an invalid spec.
///
/// `cancel`, when non-null, is polled at every safe point (and handed to
/// the scenario runs, which poll at burst/epoch granularity); the spec's
/// deadline-ms, when set, is armed on it — or on an internal token when
/// the caller passes none.  On cancellation the report comes back with
/// cancelled=true and, when snapshot-file is set, a resumable snapshot on
/// disk at the cancellation point.
RunReport run(const RunSpec& spec, Observer& extra,
              const StopWhen& stopWhen = nullptr,
              core::CancelToken* cancel = nullptr);

/// Same, with no caller observer (spec sinks only).
RunReport run(const RunSpec& spec);

}  // namespace sops::sim

#endif  // SOPS_SIM_RUNNER_HPP
