#ifndef SOPS_SIM_RUNNER_HPP
#define SOPS_SIM_RUNNER_HPP

/// \file runner.hpp
/// The one dispatcher from a RunSpec to execution.
///
/// sim::run() validates the spec against the registry, builds the sinks
/// the spec names (csv/jsonl/svg), and routes to the right execution
/// shape:
///
///   replicas == 1  →  the replica runs inline on the caller's thread,
///                     streaming samples live; the scenario receives the
///                     spec's thread budget (the amoebot scenario uses it
///                     for its stripe workers — the sharded path);
///   replicas  > 1  →  replicas fan out across core::parallelForIndex
///                     (the core/ensemble pool discipline), each worker
///                     buffering its replica's events in a MemorySink;
///                     after the join the events replay into the observer
///                     in replica order, so sink output is deterministic
///                     and thread-count independent.
///
/// Checkpoint cadence: metrics are sampled at iteration 0, after every
/// `checkpoint` steps (when set), and after the final step.

#include <functional>

#include "sim/observer.hpp"
#include "sim/run_spec.hpp"

namespace sops::sim {

/// Early-stop predicate, evaluated after every checkpoint sample; true
/// ends that replica (the ensemble stopWhen, facade-shaped).
///
/// **Concurrency contract.**  sim::run() holds ONE StopWhen and, when
/// replicas > 1, invokes it concurrently and unsynchronized from every
/// ensemble worker — there is no per-replica copy and the runner takes
/// no lock around the call.  The callable must therefore be re-entrant:
/// either a pure function of the Sample it is handed (captures read-only
/// state fixed before the run — the shape every in-tree caller uses, see
/// bench_scaling), or one whose captured state is itself synchronized
/// (std::atomic counters, a mutex the callable takes).  Capturing plain
/// mutable state (a `double best`, a growing vector) is a data race,
/// reported by TSan and pinned by SimRunner.StopWhenSharedAcrossWorkers.
/// Each replica stops independently: returning true ends only the
/// replica whose sample was passed.
using StopWhen = std::function<bool(const Sample&)>;

struct RunReport {
  std::vector<std::string> metricNames;
  /// One summary per replica, in replica order (finalSystem is null here;
  /// attach an observer to capture final configurations).
  std::vector<ReplicaSummary> replicas;

  /// Value of a named final metric for one replica.
  [[nodiscard]] double finalMetric(std::size_t replica,
                                   std::string_view name) const;
};

/// Runs the spec end to end, streaming through `extra` (plus the sinks the
/// spec itself names).  Throws ContractViolation on an invalid spec.
RunReport run(const RunSpec& spec, Observer& extra,
              const StopWhen& stopWhen = nullptr);

/// Same, with no caller observer (spec sinks only).
RunReport run(const RunSpec& spec);

}  // namespace sops::sim

#endif  // SOPS_SIM_RUNNER_HPP
