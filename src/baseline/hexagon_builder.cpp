#include "baseline/hexagon_builder.hpp"

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "lattice/direction.hpp"
#include "system/metrics.hpp"
#include "system/shapes.hpp"

namespace sops::baseline {

namespace {

using lattice::Direction;
using lattice::kAllDirections;
using lattice::neighbor;
using lattice::pack;
using lattice::TriPoint;
using system::ParticleSystem;

/// Graph distances from a set of source cells through occupied cells.
std::unordered_map<std::uint64_t, int> distancesFrom(
    const ParticleSystem& sys, const std::vector<TriPoint>& sources) {
  std::unordered_map<std::uint64_t, int> dist;
  std::deque<TriPoint> frontier;
  for (const TriPoint s : sources) {
    if (sys.occupied(s) && !dist.contains(pack(s))) {
      dist[pack(s)] = 0;
      frontier.push_back(s);
    }
  }
  while (!frontier.empty()) {
    const TriPoint p = frontier.front();
    frontier.pop_front();
    const int dp = dist[pack(p)];
    for (const Direction d : kAllDirections) {
      const TriPoint q = neighbor(p, d);
      if (sys.occupied(q) && !dist.contains(pack(q))) {
        dist[pack(q)] = dp + 1;
        frontier.push_back(q);
      }
    }
  }
  return dist;
}

/// The 1-median particle (minimum summed lattice distance to all others,
/// ties broken by (y, x)): the "leader" the target spiral is anchored on.
/// For a spiral-shaped configuration this is its center, which makes the
/// builder a fixed point on its own output.
TriPoint medianParticle(const ParticleSystem& sys) {
  TriPoint best = sys.position(0);
  std::int64_t bestCost = -1;
  for (const TriPoint candidate : sys.positions()) {
    std::int64_t cost = 0;
    for (const TriPoint other : sys.positions()) {
      cost += lattice::latticeDistance(candidate, other);
    }
    if (bestCost < 0 || cost < bestCost ||
        (cost == bestCost &&
         (candidate.y < best.y ||
          (candidate.y == best.y && candidate.x < best.x)))) {
      bestCost = cost;
      best = candidate;
    }
  }
  return best;
}

/// Cost of walking from `from` to `to` through empty cells that border the
/// structure (the "surface"), as a real relocated particle would.  Falls
/// back to the lattice distance if the surface path is blocked (e.g. by a
/// hole in the initial configuration).
std::uint64_t surfaceWalkCost(const ParticleSystem& sys, TriPoint from,
                              TriPoint to) {
  if (from == to) return 0;
  const auto onSurface = [&sys](TriPoint p) {
    if (sys.occupied(p)) return false;
    for (const Direction d : kAllDirections) {
      if (sys.occupied(neighbor(p, d))) return true;
    }
    return false;
  };
  std::unordered_map<std::uint64_t, std::uint64_t> dist;
  std::deque<TriPoint> frontier{from};
  dist[pack(from)] = 0;
  while (!frontier.empty()) {
    const TriPoint p = frontier.front();
    frontier.pop_front();
    const std::uint64_t dp = dist[pack(p)];
    if (p == to) return dp;
    for (const Direction d : kAllDirections) {
      const TriPoint q = neighbor(p, d);
      if (q != to && !onSurface(q)) continue;
      if (dist.contains(pack(q))) continue;
      dist[pack(q)] = dp + 1;
      frontier.push_back(q);
    }
  }
  return static_cast<std::uint64_t>(lattice::latticeDistance(from, to));
}

}  // namespace

HexagonBuildResult buildHexagon(const ParticleSystem& initial) {
  SOPS_REQUIRE(!initial.empty(), "buildHexagon: empty system");
  SOPS_REQUIRE(system::isConnected(initial), "buildHexagon: must be connected");

  const auto n = static_cast<std::int64_t>(initial.size());
  const TriPoint seed = medianParticle(initial);

  // Target: spiral cells translated so the spiral center sits on the seed
  // particle (which is occupied, so the first slot is filled from the
  // start and the growing prefix stays attached to the structure).
  std::vector<TriPoint> targets = system::spiralCells(n);
  for (TriPoint& t : targets) t += seed;

  HexagonBuildResult result{initial, 0, 0};
  ParticleSystem& sys = result.finalSystem;

  std::unordered_set<std::uint64_t> protectedCells;  // filled spiral prefix
  std::vector<TriPoint> sources{seed};
  for (std::size_t k = 0; k < targets.size(); ++k) {
    const TriPoint t = targets[k];
    if (sys.occupied(t)) {
      protectedCells.insert(pack(t));
      sources.push_back(t);
      continue;  // slot already filled; protect it and move on
    }

    // Pick the farthest candidate (not on the protected prefix), measured
    // from the protected blob.  Such a particle is never a cut vertex: if
    // removing it separated a component C from the sources, every particle
    // in C would be strictly farther, hence protected by maximality — but
    // protected cells are sources themselves and cannot lie in C,
    // contradiction.  Tests verify connectivity after every relocation.
    const auto dist = distancesFrom(sys, sources);
    std::size_t candidate = sys.size();
    int candidateDist = -1;
    for (std::size_t id = 0; id < sys.size(); ++id) {
      const TriPoint p = sys.position(id);
      if (protectedCells.contains(pack(p))) continue;
      const auto it = dist.find(pack(p));
      SOPS_REQUIRE(it != dist.end(), "configuration became disconnected");
      if (it->second > candidateDist) {
        candidateDist = it->second;
        candidate = id;
      }
    }
    SOPS_REQUIRE(candidate < sys.size(), "no relocatable particle found");

    const TriPoint from = sys.position(candidate);
    result.unitMoves += surfaceWalkCost(sys, from, t);
    ++result.relocations;
    sys.moveParticle(candidate, t);
    protectedCells.insert(pack(t));
    sources.push_back(t);
  }
  return result;
}

}  // namespace sops::baseline
