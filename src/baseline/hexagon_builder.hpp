#ifndef SOPS_BASELINE_HEXAGON_BUILDER_HPP
#define SOPS_BASELINE_HEXAGON_BUILDER_HPP

/// \file hexagon_builder.hpp
/// Idealized leader-driven hexagon formation — the outcome baseline for the
/// leader-based shape-formation line of work the paper contrasts with
/// ([19, 20] in §1.3).
///
/// A designated seed (the "leader") fixes the target: the minimum-perimeter
/// hexagonal spiral of n cells anchored at the seed.  Particles are
/// relocated one at a time: always a farthest non-essential particle (never
/// a cut vertex — see the proof sketch in hexagon_builder.cpp) walks along
/// the empty cells bordering the structure to the next unfilled spiral
/// slot.  This reproduces the *outcome* of [19, 20] (a perfect hexagon,
/// deterministically) while honestly accounting for movement cost; it is
/// not a re-implementation of their full distributed protocol, and unlike
/// the paper's Markov chain it requires a leader, global coordination, and
/// persistent memory (DESIGN.md, substitutions).

#include <cstdint>

#include "system/particle_system.hpp"

namespace sops::baseline {

struct HexagonBuildResult {
  system::ParticleSystem finalSystem;
  /// Number of unit particle-moves charged (surface-walk path lengths).
  std::uint64_t unitMoves = 0;
  /// Number of relocated particles (leader directives issued).
  std::uint64_t relocations = 0;
};

/// Runs the builder to completion.  Precondition: initial is connected.
[[nodiscard]] HexagonBuildResult buildHexagon(
    const system::ParticleSystem& initial);

}  // namespace sops::baseline

#endif  // SOPS_BASELINE_HEXAGON_BUILDER_HPP
