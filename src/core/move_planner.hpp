#ifndef SOPS_CORE_MOVE_PLANNER_HPP
#define SOPS_CORE_MOVE_PLANNER_HPP

/// \file move_planner.hpp
/// Explicit move-sequence planning between configurations — the executable
/// witness of the paper's ergodicity results (§3.5): Lemma 3.7 (any
/// connected configuration reaches the line via valid moves), Lemma 3.8
/// (holed configurations reach Ω*), and Lemma 3.10 (irreducibility on Ω*).
///
/// planMoves() runs breadth-first search over configurations (up to
/// translation) using exactly the chain's structural validity predicate
/// (target empty, gap condition, Property 1 or 2 — every structurally
/// valid move has positive Metropolis probability for any λ > 0), and
/// returns a shortest sequence of single-particle moves, expressed in the
/// source arrangement's own coordinates so it can be replayed directly.
///
/// Intended for small systems (the state space is Θ(5.18^n)); the
/// stateLimit parameter bounds the search.

#include <cstdint>
#include <optional>
#include <vector>

#include "core/compression_chain.hpp"
#include "system/particle_system.hpp"

namespace sops::core {

struct PlannedMove {
  TriPoint from;
  TriPoint to;
};

struct MovePlan {
  /// Moves in source-arrangement coordinates, in execution order.
  std::vector<PlannedMove> moves;
  /// Number of configurations expanded by the search.
  std::size_t statesExplored = 0;
};

/// Shortest valid-move sequence from `source` to (any translate of)
/// `target`, or nullopt if unreachable within stateLimit states.
/// Preconditions: both connected, same particle count.
[[nodiscard]] std::optional<MovePlan> planMoves(
    const system::ParticleSystem& source, const system::ParticleSystem& target,
    const ChainOptions& options = {}, std::size_t stateLimit = 2000000);

/// Convenience: plan from `source` to the straight line of the same size
/// (the canonical hub configuration of Lemma 3.7).
[[nodiscard]] std::optional<MovePlan> planToLine(
    const system::ParticleSystem& source, const ChainOptions& options = {},
    std::size_t stateLimit = 2000000);

/// Replays a plan on a copy of `source`, validating every move against the
/// chain's rules; throws ContractViolation on any invalid step.  Returns
/// the final system.
[[nodiscard]] system::ParticleSystem replayPlan(
    const system::ParticleSystem& source, const MovePlan& plan,
    const ChainOptions& options = {});

}  // namespace sops::core

#endif  // SOPS_CORE_MOVE_PLANNER_HPP
