#ifndef SOPS_CORE_PROPERTIES_HPP
#define SOPS_CORE_PROPERTIES_HPP

/// \file properties.hpp
/// The local movement conditions of the paper's Markov chain M (§3.1):
/// Property 1, Property 2, and the gap condition e ≠ 5, evaluated on the
/// 8-cell ring around a candidate move ℓ → ℓ'.
///
/// Ring indexing.  For a move from ℓ in direction d (so ℓ' = ℓ + d), the
/// set N(ℓ ∪ ℓ') = (N(ℓ) ∪ N(ℓ')) \ {ℓ, ℓ'} consists of exactly eight
/// cells forming an 8-cycle around the edge (ℓ, ℓ'), indexed here as
///
///   idx 0: ℓ + rot(d,+1)   = c1, common neighbor of ℓ and ℓ'
///   idx 1: ℓ + rot(d,+2)
///   idx 2: ℓ + rot(d,+3)   (= ℓ − d)
///   idx 3: ℓ + rot(d,+4)
///   idx 4: ℓ + rot(d,+5)   = c2, the other common neighbor
///   idx 5: ℓ' + rot(d,+5)
///   idx 6: ℓ' + d
///   idx 7: ℓ' + rot(d,+1)
///
/// Consecutive indices (mod 8) are lattice-adjacent and there are no other
/// adjacencies among ring cells, so connectivity "through N(ℓ ∪ ℓ')" is
/// connectivity of set bits along the 8-cycle.  N(ℓ)\{ℓ'} = indices 0–4 and
/// N(ℓ')\{ℓ} = indices 4–7,0.  The test-suite validates all of this against
/// a brute-force geometric implementation for all 256 masks.

#include <array>
#include <cstdint>

#include "lattice/direction.hpp"
#include "lattice/tri_point.hpp"
#include "system/particle_system.hpp"

namespace sops::core {

using lattice::Direction;
using lattice::TriPoint;

inline constexpr int kRingSize = 8;
inline constexpr std::uint8_t kCommonMask = 0b0001'0001;  // idx 0 and 4
inline constexpr std::uint8_t kBeforeMask = 0b0001'1111;  // N(ℓ)\{ℓ'}: idx 0..4
inline constexpr std::uint8_t kAfterMask =
    0b1111'0001;   // N(ℓ')\{ℓ}: idx 4..7,0

/// The lattice cell at ring index idx for the move (ℓ, d).
[[nodiscard]] constexpr TriPoint ringCell(TriPoint l, Direction d,
                                          int idx) noexcept {
  const TriPoint lPrime = lattice::neighbor(l, d);
  switch (idx) {
    case 0: return lattice::neighbor(l, lattice::rotated(d, 1));
    case 1: return lattice::neighbor(l, lattice::rotated(d, 2));
    case 2: return lattice::neighbor(l, lattice::rotated(d, 3));
    case 3: return lattice::neighbor(l, lattice::rotated(d, 4));
    case 4: return lattice::neighbor(l, lattice::rotated(d, 5));
    case 5: return lattice::neighbor(lPrime, lattice::rotated(d, 5));
    case 6: return lattice::neighbor(lPrime, d);
    default: return lattice::neighbor(lPrime, lattice::rotated(d, 1));
  }
}

/// Ring-cell offsets relative to ℓ, precomputed per direction so generic
/// gathers replace eight 60°-rotation computations with a 16-byte table
/// row.  kRingOffsets[index(d)][idx] == ringCell({0,0}, d, idx) by
/// construction (ringCell stays the geometric source of truth; tests
/// compare the two, and lattice/edge_ring.hpp builds the same table for
/// the bitboard backend).
inline constexpr auto& kRingOffsets = lattice::kEdgeRingOffsets;
static_assert(lattice::kEdgeRingSize == kRingSize);

/// Occupancy bitmask of the 8 ring cells for the move (ℓ, d), from an
/// arbitrary occupancy oracle (used by both M and the amoebot layer, which
/// passes the N*-filtered oracle of Algorithm A).
template <typename OccupiedFn>
[[nodiscard]] std::uint8_t ringMask(TriPoint l, Direction d,
                                    OccupiedFn&& occupied) {
  const std::array<TriPoint, kRingSize>& offsets = kRingOffsets[index(d)];
  std::uint8_t mask = 0;
  for (int idx = 0; idx < kRingSize; ++idx) {
    mask |= static_cast<std::uint8_t>(
        occupied(l + offsets[idx]) ? (1u << idx) : 0u);
  }
  return mask;
}

/// Ring mask against a ParticleSystem: with the dense bitboard enabled
/// this is one bit-index computation plus eight precomputed-delta word
/// loads (BitGrid::ringMaskUnchecked) — inline so the chain step sees
/// through it.  Precondition: ℓ is an occupied particle position (ring
/// cells then sit within the grid's interior-margin invariant).
[[nodiscard]] inline std::uint8_t ringMask(const system::ParticleSystem& sys,
                                           TriPoint l, Direction d) {
  return sys.ringMask(l, d);
}

/// Number of neighbors of P while at ℓ (ℓ' unoccupied): e in the paper.
[[nodiscard]] constexpr int neighborsBefore(std::uint8_t mask) noexcept {
  return __builtin_popcount(mask & kBeforeMask);
}

/// Number of neighbors P would have after contracting to ℓ': e'.
[[nodiscard]] constexpr int neighborsAfter(std::uint8_t mask) noexcept {
  return __builtin_popcount(mask & kAfterMask);
}

/// Property 1 (§3.1): |S| ∈ {1,2} and every occupied ring cell is connected
/// along the ring to a common neighbor (idx 0 or 4).  constexpr so the
/// move table is built — and its invariants proven — at compile time
/// (core/move_table.hpp).
[[nodiscard]] constexpr bool property1Holds(std::uint8_t mask) noexcept {
  if ((mask & kCommonMask) == 0) return false;  // S is empty
  if (mask == 0xFF) return true;                // single all-ring arc
  // Every maximal cyclic run of set bits must contain idx 0 or idx 4.
  for (int i = 0; i < kRingSize; ++i) {
    const bool set = (mask >> i) & 1u;
    const bool prevSet = (mask >> ((i + kRingSize - 1) % kRingSize)) & 1u;
    if (!set || prevSet) continue;  // not the start of a run
    bool touchesCommon = false;
    for (int j = i; (mask >> (j % kRingSize)) & 1u; ++j) {
      const int idx = j % kRingSize;
      if (idx == 0 || idx == 4) {
        touchesCommon = true;
        break;
      }
    }
    if (!touchesCommon) return false;
  }
  return true;
}

/// Property 2 (§3.1): S = ∅, both sides nonempty, and the occupied cells of
/// each side are connected within that side (contiguous along its path).
[[nodiscard]] constexpr bool property2Holds(std::uint8_t mask) noexcept {
  if ((mask & kCommonMask) != 0) return false;    // requires S = ∅
  const std::uint8_t sideL = mask & 0b0000'1110;  // idx 1..3 (N(ℓ) side)
  const std::uint8_t sideR = mask & 0b1110'0000;  // idx 5..7 (N(ℓ') side)
  if (sideL == 0 || sideR == 0) return false;
  // On the 3-cell path {1,2,3} the only disconnected occupied pattern is
  // {1,3} without 2; likewise {5,7} without 6.
  if (sideL == 0b0000'1010) return false;
  if (sideR == 0b1010'0000) return false;
  return true;
}

/// Conditions (1) and (2) of M's step 6 combined: e ≠ 5 and Property 1 or 2.
[[nodiscard]] constexpr bool moveStructurallyValid(std::uint8_t mask) noexcept {
  return neighborsBefore(mask) != 5 &&
         (property1Holds(mask) || property2Holds(mask));
}

/// Full evaluation of one proposed move of M, shared verbatim by the chain
/// runner (core/compression_chain) and the exact transition-matrix builder
/// (enumeration/chain_matrix) so both use the identical kernel.
struct MoveEvaluation {
  bool targetOccupied = false;
  std::uint8_t mask = 0;
  int eBefore = 0;
  int eAfter = 0;
  bool gapOk = false;     // condition (1): e != 5
  bool property1 = false; // Property 1 holds for (ℓ, ℓ')
  bool property2 = false; // Property 2 holds for (ℓ, ℓ')
  bool propertyOk = false;  // condition (2): Property 1 or Property 2
};

/// Precondition: ℓ is an occupied particle position.  The dense-bitboard
/// gather relies on the grid's interior-margin invariant around particles
/// (SOPS_DASSERT-checked in debug builds); evaluating a move from an
/// arbitrary unoccupied cell is not meaningful in M and not supported.
[[nodiscard]] MoveEvaluation evaluateMove(const system::ParticleSystem& sys,
                                          TriPoint l, Direction d);

}  // namespace sops::core

#endif  // SOPS_CORE_PROPERTIES_HPP
