#ifndef SOPS_CORE_EPOCH_CONTROL_HPP
#define SOPS_CORE_EPOCH_CONTROL_HPP

/// \file epoch_control.hpp
/// Epoch sizing shared by the sharded runners (chain and amoebot).
///
/// An epoch is the unit of parallel work: the runner draws every clock
/// firing in [now, now + Δ), executes stripe-interior events in parallel,
/// and sweeps the deferred halo/edge events sequentially.  Δ trades two
/// overheads off against each other: short epochs pay the per-epoch scan
/// and barrier repeatedly (ruinous at small n), long epochs grow the
/// deferred sweep and its memory footprint (ruinous at large n).  Both
/// runners derive Δ from a target number of events per epoch; this header
/// owns the derived default, the hard cap, and the adaptive controller, so
/// the two runners cannot drift.

#include <algorithm>
#include <cstdint>

#include "util/assert.hpp"

namespace sops::core {

/// Hard cap on events scheduled per epoch — bounds the in-memory epoch
/// schedule (times + events) to a few GiB even for huge-n systems.
/// Explicit user targets are validated against it, and the derived default
/// is clamped to it (an unclamped derived 2n once let a legal huge-n
/// system build a multi-GiB schedule).
inline constexpr std::uint64_t kMaxEventsPerEpoch = std::uint64_t{1} << 28;

/// Default epoch target for an n-particle system: 2n events (each clock
/// fires about twice per epoch), floored so tiny systems do not pay a
/// barrier every handful of events, and clamped to kMaxEventsPerEpoch.
[[nodiscard]] inline constexpr std::uint64_t derivedEpochTarget(
    std::uint64_t particles) noexcept {
  return std::min(std::max(2 * particles, std::uint64_t{1024}),
                  kMaxEventsPerEpoch);
}

/// Deterministic feedback controller on the epoch target.
///
/// Signal: the fraction of an epoch's events deferred to the sequential
/// sweep.  That fraction depends only on stripe geometry and the seeded
/// event positions — never on the thread count — so adapting from it keeps
/// the trajectory a pure function of the seed (the thread-count-invariance
/// goldens pin this).  Rule: if more than 1/4 of events deferred, halve the
/// target (the serial fraction is winning — tighten epochs so positions
/// refresh); if fewer than 1/10 deferred, double it (barriers are winning —
/// amortize them).  Bounds: [max(n/2, 1024), min(16n, cap)], so the target
/// stays within a small factor of the 2n default.
class AdaptiveEpochController {
 public:
  explicit AdaptiveEpochController(std::uint64_t particles) noexcept
      : minTarget_(std::max(particles / 2, std::uint64_t{1024})),
        maxTarget_(std::max(
            std::min(16 * particles, kMaxEventsPerEpoch), std::uint64_t{1024})),
        target_(derivedEpochTarget(particles)) {
    minTarget_ = std::min(minTarget_, target_);
    maxTarget_ = std::max(maxTarget_, target_);
  }

  [[nodiscard]] std::uint64_t target() const noexcept { return target_; }

  /// Feeds one epoch's (deferred, total) event counts; returns the target
  /// for the next epoch.  Integer arithmetic only, so every thread count
  /// computes the identical schedule.
  std::uint64_t update(std::uint64_t deferred, std::uint64_t total) noexcept {
    if (total == 0) return target_;
    if (deferred * 4 > total) {
      target_ = std::max(target_ / 2, minTarget_);
    } else if (deferred * 10 < total) {
      target_ = std::min(target_ * 2, maxTarget_);
    }
    return target_;
  }

  /// Snapshot restore: the target is history-dependent state.
  void setTarget(std::uint64_t target) {
    SOPS_REQUIRE(target >= minTarget_ && target <= maxTarget_,
                 "AdaptiveEpochController: restored target out of range");
    target_ = target;
  }

 private:
  std::uint64_t minTarget_;
  std::uint64_t maxTarget_;
  std::uint64_t target_;
};

}  // namespace sops::core

#endif  // SOPS_CORE_EPOCH_CONTROL_HPP
