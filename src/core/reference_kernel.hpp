#ifndef SOPS_CORE_REFERENCE_KERNEL_HPP
#define SOPS_CORE_REFERENCE_KERNEL_HPP

/// \file reference_kernel.hpp
/// The *frozen seed implementation* of one iteration of Algorithm M:
/// occupancy through the sparse hash index only, ring cells recomputed
/// from 60° rotations per query, properties re-derived from the ring mask
/// per proposal, the branch ladder in paper order, and a lazily drawn
/// Metropolis uniform.
///
/// This is the correctness and performance anchor for the optimized hot
/// path (bitboard + move/decision tables): the golden-trajectory tests
/// assert CompressionChain is draw-for-draw identical to ReferenceKernel,
/// and bench_perf measures the speedup against it.  It is deliberately
/// NOT part of any production path — do not "optimize" it; change it only
/// if the chain's specified semantics change, in which case the golden
/// tests must be revisited too.

#include <cmath>
#include <cstdint>
#include <utility>

#include "core/chain_stats.hpp"
#include "core/compression_chain.hpp"  // ChainOptions
#include "core/properties.hpp"
#include "rng/random.hpp"
#include "system/metrics.hpp"
#include "system/particle_system.hpp"

namespace sops::core {

/// Seed ring-mask gather: each ring cell from ringCell()'s rotation math,
/// occupancy from the given oracle (typically occupiedSparse).
template <typename OccupiedFn>
[[nodiscard]] std::uint8_t ringMaskSeed(TriPoint l, Direction d,
                                        OccupiedFn&& occupied) {
  std::uint8_t mask = 0;
  for (int idx = 0; idx < kRingSize; ++idx) {
    if (occupied(ringCell(l, d, idx))) {
      mask = static_cast<std::uint8_t>(mask | (1u << idx));
    }
  }
  return mask;
}

/// Seed evaluateMove: hash-probe occupancy, per-proposal property
/// recomputation (no move table).
[[nodiscard]] inline MoveEvaluation evaluateMoveSeed(
    const system::ParticleSystem& sys, TriPoint l, Direction d) {
  MoveEvaluation eval;
  const auto sparse = [&sys](TriPoint p) { return sys.occupiedSparse(p); };
  if (sparse(lattice::neighbor(l, d))) {
    eval.targetOccupied = true;
    return eval;
  }
  eval.mask = ringMaskSeed(l, d, sparse);
  eval.eBefore = neighborsBefore(eval.mask);
  eval.eAfter = neighborsAfter(eval.mask);
  eval.gapOk = eval.eBefore != 5;
  eval.property1 = property1Holds(eval.mask);
  eval.property2 = property2Holds(eval.mask);
  eval.propertyOk = eval.property1 || eval.property2;
  return eval;
}

/// Seed chain: the full branch ladder with ablation switches, identical
/// RNG draw order to CompressionChain::step().
class ReferenceKernel {
 public:
  ReferenceKernel(system::ParticleSystem initial, ChainOptions options,
                  std::uint64_t seed)
      : system_(std::move(initial)), options_(options), rng_(seed) {
    edges_ = system::countEdges(system_);
    for (int delta = -5; delta <= 5; ++delta) {
      lambdaPow_[delta + 5] = std::pow(options_.lambda, delta);
    }
  }

  StepOutcome step() {
    const auto particle = static_cast<std::size_t>(
        rng_.below(static_cast<std::uint32_t>(system_.size())));
    const Direction d =
        lattice::directionFromIndex(static_cast<int>(rng_.below(6)));
    const TriPoint l = system_.position(particle);

    const MoveEvaluation eval = evaluateMoveSeed(system_, l, d);
    StepOutcome outcome;
    if (eval.targetOccupied) {
      outcome = StepOutcome::TargetOccupied;
    } else if (options_.enforceGapCondition && !eval.gapOk) {
      outcome = StepOutcome::RejectedGap;
    } else if (options_.enforceProperties &&
               !(eval.property1 ||
                 (options_.allowProperty2 && eval.property2))) {
      outcome = StepOutcome::RejectedProperty;
    } else {
      bool accept;
      if (options_.greedy) {
        accept = eval.eAfter >= eval.eBefore;
      } else {
        const double threshold = lambdaPow_[eval.eAfter - eval.eBefore + 5];
        accept = threshold >= 1.0 || rng_.uniform() < threshold;
      }
      if (accept) {
        system_.moveParticle(particle, lattice::neighbor(l, d));
        edges_ += eval.eAfter - eval.eBefore;
        outcome = StepOutcome::Accepted;
      } else {
        outcome = StepOutcome::RejectedFilter;
      }
    }
    stats_.record(outcome);
    return outcome;
  }

  [[nodiscard]] const system::ParticleSystem& system() const noexcept {
    return system_;
  }
  [[nodiscard]] const ChainStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::int64_t edges() const noexcept { return edges_; }

 private:
  system::ParticleSystem system_;
  ChainOptions options_;
  rng::Random rng_;
  ChainStats stats_;
  std::int64_t edges_ = 0;
  double lambdaPow_[11];
};

}  // namespace sops::core

#endif  // SOPS_CORE_REFERENCE_KERNEL_HPP
