#ifndef SOPS_CORE_ENSEMBLE_HPP
#define SOPS_CORE_ENSEMBLE_HPP

/// \file ensemble.hpp
/// Thread-pooled replica ensembles of the Markov chain M.
///
/// The paper's experiments — and every parameter study built on them — are
/// grids: λ-sweeps × seed ensembles × system sizes, each replica tens of
/// millions of independent chain steps (Figs 2, 10; §3.7; §6).  Replicas
/// share nothing (each owns its ParticleSystem, RNG, and decision tables),
/// so runEnsemble() simply work-steals specs from an atomic counter across
/// a pool of threads and fills a result slot per spec.
///
/// Determinism: a replica's trajectory depends only on its spec (seed,
/// options, initial configuration) — never on the thread that ran it or on
/// how many threads the pool had.  Results come back in spec order.
///
/// Checkpoint callbacks (observable / stopWhen / observer) run on the
/// worker thread that owns the replica and must only touch that replica's
/// state plus whatever thread-safe storage the caller provides.

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "core/compression_chain.hpp"
#include "system/particle_system.hpp"

namespace sops::core {

/// One independent chain replica: what to run and what to record.
struct ReplicaSpec {
  /// Free-form tag carried into the result (e.g. "lambda=4.0 seed=7").
  std::string label;
  ChainOptions options;
  std::uint64_t seed = 1;
  /// Total iterations of M (an early stopWhen may end the replica sooner).
  std::uint64_t iterations = 0;
  /// Sampling period for observable/stopWhen/observer; 0 runs one chunk.
  std::uint64_t checkpointEvery = 0;
  /// Builds the initial configuration.  Invoked on the worker thread, so
  /// expensive generators also parallelize; must be safe to call
  /// concurrently with the other specs' factories.
  std::function<system::ParticleSystem()> makeInitial;
  /// Sampled at every checkpoint (and after the final step) into
  /// ReplicaResult::samples.
  std::function<double(const CompressionChain&)> observable;
  /// Early-stop predicate, checked at every checkpoint.
  std::function<bool(const CompressionChain&, std::uint64_t done)> stopWhen;
  /// Arbitrary per-checkpoint hook (ASCII snapshots, custom series, ...).
  std::function<void(const CompressionChain&, std::uint64_t done)> observer;
};

struct ReplicaSample {
  std::uint64_t iteration = 0;
  double value = 0.0;
};

struct ReplicaResult {
  std::size_t index = 0;  ///< position of the spec in the input vector
  std::string label;
  std::uint64_t seed = 0;
  double lambda = 0.0;
  std::uint64_t iterationsRun = 0;
  bool stoppedEarly = false;
  std::int64_t edges = 0;
  ChainStats stats;
  std::vector<ReplicaSample> samples;
  /// Final configuration (empty when EnsembleOptions::keepFinalSystems is
  /// false — large sweeps that only need scalars can skip the copies).
  system::ParticleSystem finalSystem;
  double wallSeconds = 0.0;
};

struct EnsembleOptions {
  /// Worker threads; 0 uses std::thread::hardware_concurrency().
  unsigned threads = 0;
  /// Keep each replica's final ParticleSystem in its result.
  bool keepFinalSystems = true;
  /// Progress hook, invoked under a mutex as each replica finishes (in
  /// completion order, not spec order).
  std::function<void(const ReplicaResult&)> onReplicaDone;
};

/// The ensemble thread pool as a reusable primitive: runs fn(i) for every
/// i in [0, count) across `threads` workers stealing indices from an
/// atomic counter (threads == 0 uses hardware_concurrency; a single
/// worker, or count <= 1, runs inline on the caller's thread).  The first
/// exception thrown by any fn cancels the remaining indices and is
/// rethrown on the caller after all workers join.  runEnsemble() and the
/// sharded amoebot runner (amoebot/parallel_scheduler) both drive their
/// fan-out through this function.  fn must make concurrent invocations on
/// distinct indices safe.
void parallelForIndex(std::size_t count, unsigned threads,
                      const std::function<void(std::size_t)>& fn);

/// parallelForIndex with cooperative cancellation: each worker polls the
/// token before claiming an index, so a tripped token skips every index
/// not yet started (indices already running finish normally — fn is never
/// interrupted mid-flight).  The caller cannot tell skipped indices from
/// the claim order alone; track completion inside fn.  nullptr behaves
/// exactly like the overload above.
void parallelForIndex(std::size_t count, unsigned threads,
                      const CancelToken* cancel,
                      const std::function<void(std::size_t)>& fn);

/// Runs every spec to completion across the thread pool; results are
/// returned in spec order and are independent of the thread count.
[[nodiscard]] std::vector<ReplicaResult> runEnsemble(
    std::span<const ReplicaSpec> specs, const EnsembleOptions& options = {});

/// Convenience builder for the canonical sweep shape: the cross product of
/// a λ-grid and a seed ensemble over one initial configuration.  Labels
/// are "lambda=<λ> seed=<seed>"; specs are ordered λ-major.
[[nodiscard]] std::vector<ReplicaSpec> lambdaSeedGrid(
    std::function<system::ParticleSystem()> makeInitial, ChainOptions base,
    std::span<const double> lambdas, std::span<const std::uint64_t> seeds,
    std::uint64_t iterations, std::uint64_t checkpointEvery = 0,
    std::function<double(const CompressionChain&)> observable = nullptr);

}  // namespace sops::core

#endif  // SOPS_CORE_ENSEMBLE_HPP
