#include "core/ensemble.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "util/assert.hpp"

namespace sops::core {

namespace {

ReplicaResult runReplica(const ReplicaSpec& spec, std::size_t index,
                         bool keepFinalSystem) {
  SOPS_REQUIRE(spec.makeInitial != nullptr,
               "ReplicaSpec::makeInitial must be set");
  const auto start = std::chrono::steady_clock::now();

  CompressionChain chain(spec.makeInitial(), spec.options, spec.seed);

  ReplicaResult result;
  result.index = index;
  result.label = spec.label;
  result.seed = spec.seed;
  result.lambda = spec.options.lambda;

  const std::uint64_t burst =
      spec.checkpointEvery > 0 ? spec.checkpointEvery : spec.iterations;
  std::uint64_t done = 0;
  while (done < spec.iterations) {
    const std::uint64_t chunk = std::min(burst, spec.iterations - done);
    chain.run(chunk);
    done += chunk;
    if (spec.observable) {
      result.samples.push_back({done, spec.observable(chain)});
    }
    if (spec.observer) spec.observer(chain, done);
    if (spec.stopWhen && spec.stopWhen(chain, done)) {
      result.stoppedEarly = true;
      break;
    }
  }

  result.iterationsRun = done;
  result.edges = chain.edges();
  result.stats = chain.stats();
  if (keepFinalSystem) result.finalSystem = chain.system();
  result.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace

void parallelForIndex(std::size_t count, unsigned threads,
                      const CancelToken* cancel,
                      const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  SOPS_REQUIRE(fn != nullptr, "parallelForIndex: fn required");
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = static_cast<unsigned>(std::min<std::size_t>(threads, count));

  std::atomic<std::size_t> next{0};
  std::mutex errorMutex;
  std::exception_ptr firstError;

  const auto worker = [&] {
    while (true) {
      // Cancellation skips every index not yet claimed; fn invocations
      // already in flight run to completion (they poll the token
      // themselves if they want finer granularity).
      if (isCancelled(cancel)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(errorMutex);
        if (!firstError) firstError = std::current_exception();
        // Drain remaining indices so sibling workers exit promptly.
        next.store(count, std::memory_order_relaxed);
        return;
      }
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (firstError) std::rethrow_exception(firstError);
}

void parallelForIndex(std::size_t count, unsigned threads,
                      const std::function<void(std::size_t)>& fn) {
  parallelForIndex(count, threads, nullptr, fn);
}

std::vector<ReplicaResult> runEnsemble(std::span<const ReplicaSpec> specs,
                                       const EnsembleOptions& options) {
  std::vector<ReplicaResult> results(specs.size());
  if (specs.empty()) return results;

  std::mutex doneMutex;
  parallelForIndex(specs.size(), options.threads, [&](std::size_t i) {
    ReplicaResult result = runReplica(specs[i], i, options.keepFinalSystems);
    if (options.onReplicaDone) {
      const std::lock_guard<std::mutex> lock(doneMutex);
      options.onReplicaDone(result);
    }
    results[i] = std::move(result);
  });
  return results;
}

std::vector<ReplicaSpec> lambdaSeedGrid(
    std::function<system::ParticleSystem()> makeInitial, ChainOptions base,
    std::span<const double> lambdas, std::span<const std::uint64_t> seeds,
    std::uint64_t iterations, std::uint64_t checkpointEvery,
    std::function<double(const CompressionChain&)> observable) {
  SOPS_REQUIRE(makeInitial != nullptr, "lambdaSeedGrid: makeInitial required");
  std::vector<ReplicaSpec> specs;
  specs.reserve(lambdas.size() * seeds.size());
  for (const double lambda : lambdas) {
    for (const std::uint64_t seed : seeds) {
      ReplicaSpec spec;
      spec.label = "lambda=" + std::to_string(lambda) +
                   " seed=" + std::to_string(seed);
      spec.options = base;
      spec.options.lambda = lambda;
      spec.seed = seed;
      spec.iterations = iterations;
      spec.checkpointEvery = checkpointEvery;
      spec.makeInitial = makeInitial;
      spec.observable = observable;
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

}  // namespace sops::core
