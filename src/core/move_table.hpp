#ifndef SOPS_CORE_MOVE_TABLE_HPP
#define SOPS_CORE_MOVE_TABLE_HPP

/// \file move_table.hpp
/// Precomputed per-ring-mask move structure for Algorithm M's hot path.
///
/// Every structural quantity the chain needs — e, e', the gap condition
/// e ≠ 5, Property 1, Property 2 — is a pure function of the 8-bit ring
/// mask of the proposed move (properties.hpp).  There are only 256 masks,
/// so all of it is precomputed once into kMoveTable and a chain step
/// collapses to: one occupancy test for ℓ', one ring-mask gather, one
/// 4-byte table load.  The table is built from the reference predicates
/// property1Holds / property2Holds (single source of truth) and the test
/// suite re-validates every entry against an independent geometric
/// implementation (tests/move_table_test.cpp).

#include <array>
#include <cmath>
#include <cstdint>

namespace sops::core {

struct MoveTableEntry {
  std::uint8_t eBefore;  ///< |N(ℓ)\{ℓ'}| — e in the paper
  std::uint8_t eAfter;   ///< |N(ℓ')\{ℓ}| — e'
  std::int8_t delta;     ///< e' − e ∈ [−5, 5]
  std::uint8_t flags;    ///< kGapOk / kProperty1 / kProperty2 / kStructOk
};

inline constexpr std::uint8_t kMoveGapOk = 1u << 0;      ///< e ≠ 5
inline constexpr std::uint8_t kMoveProperty1 = 1u << 1;  ///< Property 1 holds
inline constexpr std::uint8_t kMoveProperty2 = 1u << 2;  ///< Property 2 holds
/// Conditions (1) and (2) combined: gap OK and Property 1 or 2.
inline constexpr std::uint8_t kMoveStructOk = 1u << 3;

/// The full 256-entry table, built once on first use (thread-safe).
[[nodiscard]] const std::array<MoveTableEntry, 256>& moveTable() noexcept;

/// Entry for one ring mask.
[[nodiscard]] inline const MoveTableEntry& moveTableEntry(
    std::uint8_t mask) noexcept {
  return moveTable()[mask];
}

/// λ^delta, computed identically everywhere it is needed — the chain's
/// per-mask acceptance thresholds, acceptanceProbability(), and the exact
/// transition-matrix builder all call this one function, so the Metropolis
/// filter cannot drift between the sampled and the enumerated kernel even
/// in the last ulp.
[[nodiscard]] inline double lambdaPower(double lambda, int delta) noexcept {
  return std::pow(lambda, static_cast<double>(delta));
}

}  // namespace sops::core

#endif  // SOPS_CORE_MOVE_TABLE_HPP
