#ifndef SOPS_CORE_MOVE_TABLE_HPP
#define SOPS_CORE_MOVE_TABLE_HPP

/// \file move_table.hpp
/// Precomputed per-ring-mask move structure for Algorithm M's hot path.
///
/// Every structural quantity the chain needs — e, e', the gap condition
/// e ≠ 5, Property 1, Property 2 — is a pure function of the 8-bit ring
/// mask of the proposed move (properties.hpp).  There are only 256 masks,
/// so all of it is precomputed into kMoveTable and a chain step collapses
/// to: one occupancy test for ℓ', one ring-mask gather, one 4-byte table
/// load.  The table is built from the reference predicates
/// property1Holds / property2Holds (single source of truth) — at compile
/// time, so the invariant proofs at the bottom of this header hold by
/// static_assert and the test suite's geometric re-validation
/// (tests/move_table_test.cpp) is a second, independent check.
///
/// Reversal identity used by the proofs.  The reverse of move (ℓ, d) is
/// (ℓ' = ℓ + d, opposite(d)); its ring is the same eight lattice cells,
/// re-indexed.  Chasing the indexing in properties.hpp through the axial
/// identity u_k + u_{k+2} = u_{k+1} shows the re-indexing is exactly
/// idx → idx + 4 (mod 8), i.e. the reverse move's mask is the original
/// rotated left by four bits.  That turns the paper's reversibility
/// argument (detailed balance needs e/e' and the properties to look the
/// same from both endpoints) into eight byte-level identities checked
/// below for all 256 masks.

#include <array>
#include <cmath>
#include <cstdint>

#include "core/properties.hpp"

namespace sops::core {

struct MoveTableEntry {
  std::uint8_t eBefore;  ///< |N(ℓ)\{ℓ'}| — e in the paper
  std::uint8_t eAfter;   ///< |N(ℓ')\{ℓ}| — e'
  std::int8_t delta;     ///< e' − e ∈ [−5, 5]
  std::uint8_t flags;    ///< kGapOk / kProperty1 / kProperty2 / kStructOk
};
static_assert(sizeof(MoveTableEntry) == 4,
              "a chain step budgets one 4-byte load per table probe");

inline constexpr std::uint8_t kMoveGapOk = 1u << 0;      ///< e ≠ 5
inline constexpr std::uint8_t kMoveProperty1 = 1u << 1;  ///< Property 1 holds
inline constexpr std::uint8_t kMoveProperty2 = 1u << 2;  ///< Property 2 holds
/// Conditions (1) and (2) combined: gap OK and Property 1 or 2.
inline constexpr std::uint8_t kMoveStructOk = 1u << 3;

namespace detail {

constexpr std::array<MoveTableEntry, 256> buildMoveTable() {
  std::array<MoveTableEntry, 256> table{};
  for (int m = 0; m < 256; ++m) {
    const auto mask = static_cast<std::uint8_t>(m);
    MoveTableEntry& entry = table[static_cast<std::size_t>(m)];
    entry.eBefore = static_cast<std::uint8_t>(neighborsBefore(mask));
    entry.eAfter = static_cast<std::uint8_t>(neighborsAfter(mask));
    entry.delta = static_cast<std::int8_t>(entry.eAfter - entry.eBefore);
    std::uint8_t flags = 0;
    if (entry.eBefore != 5) flags |= kMoveGapOk;
    if (property1Holds(mask)) flags |= kMoveProperty1;
    if (property2Holds(mask)) flags |= kMoveProperty2;
    if ((flags & kMoveGapOk) && (flags & (kMoveProperty1 | kMoveProperty2))) {
      flags |= kMoveStructOk;
    }
    entry.flags = flags;
  }
  return table;
}

/// Ring mask of the reverse move (ℓ', opposite(d)): the same eight cells
/// under the idx → idx + 4 (mod 8) re-indexing derived in the file comment.
[[nodiscard]] constexpr std::uint8_t reverseRingMask(
    std::uint8_t mask) noexcept {
  return static_cast<std::uint8_t>((mask << 4 | mask >> 4) & 0xFF);
}

}  // namespace detail

/// The full 256-entry table, a compile-time constant.
inline constexpr std::array<MoveTableEntry, 256> kMoveTable =
    detail::buildMoveTable();

/// The full 256-entry table (kept as a function for the pre-constexpr
/// call sites).
[[nodiscard]] constexpr const std::array<MoveTableEntry, 256>&
moveTable() noexcept {
  return kMoveTable;
}

/// Entry for one ring mask.
[[nodiscard]] constexpr const MoveTableEntry& moveTableEntry(
    std::uint8_t mask) noexcept {
  return kMoveTable[mask];
}

/// λ^delta, computed identically everywhere it is needed — the chain's
/// per-mask acceptance thresholds, acceptanceProbability(), and the exact
/// transition-matrix builder all call this one function, so the Metropolis
/// filter cannot drift between the sampled and the enumerated kernel even
/// in the last ulp.  (Deliberately not constexpr: it must stay std::pow
/// bit-for-bit, and std::pow is not a constant expression in C++20.)
[[nodiscard]] inline double lambdaPower(double lambda, int delta) noexcept {
  return std::pow(lambda, static_cast<double>(delta));
}

// ---------------------------------------------------------------------------
// Compile-time proofs over all 256 masks.  Each block is a total check —
// a single counterexample mask fails the build with the assert's text.

namespace detail {

// The neighborhood partition behind e/e' is itself rot4-symmetric: the
// before-side index set {0..4} maps onto the after-side {4..7,0}, and the
// two common cells map onto each other.
static_assert(reverseRingMask(kBeforeMask) == kAfterMask);
static_assert(reverseRingMask(kAfterMask) == kBeforeMask);
static_assert(reverseRingMask(kCommonMask) == kCommonMask);

// Field consistency: e and e' are the advertised popcounts, δ their
// difference, and every ring cell is counted once except the two common
// neighbors, which appear in both e and e'.
static_assert([] {
  for (int m = 0; m < 256; ++m) {
    const auto mask = static_cast<std::uint8_t>(m);
    const MoveTableEntry& entry = kMoveTable[mask];
    if (entry.eBefore != __builtin_popcount(mask & kBeforeMask)) return false;
    if (entry.eAfter != __builtin_popcount(mask & kAfterMask)) return false;
    if (entry.delta != entry.eAfter - entry.eBefore) return false;
    if (entry.delta < -5 || entry.delta > 5) return false;
    if (entry.eBefore + entry.eAfter !=
        __builtin_popcount(mask) + __builtin_popcount(mask & kCommonMask)) {
      return false;
    }
  }
  return true;
}(), "e/e'/δ must be the ring-mask popcounts they claim to be");

// Reversal symmetry (detailed balance): viewed from ℓ', the move has
// e ↔ e' exchanged (so δ is antisymmetric) and sees the identical
// Property 1 / Property 2 verdicts — the properties are statements about
// the joint neighborhood N(ℓ ∪ ℓ'), not about one endpoint.
static_assert([] {
  for (int m = 0; m < 256; ++m) {
    const auto mask = static_cast<std::uint8_t>(m);
    const MoveTableEntry& fwd = kMoveTable[mask];
    const MoveTableEntry& rev = kMoveTable[reverseRingMask(mask)];
    if (rev.eBefore != fwd.eAfter || rev.eAfter != fwd.eBefore) return false;
    if (rev.delta != -fwd.delta) return false;
    if ((rev.flags & kMoveProperty1) != (fwd.flags & kMoveProperty1)) {
      return false;
    }
    if ((rev.flags & kMoveProperty2) != (fwd.flags & kMoveProperty2)) {
      return false;
    }
  }
  return true;
}(), "move reversal must swap e/e', negate δ, and preserve the properties");

// Property exclusivity and the connectivity floor: Property 1 needs an
// occupied common neighbor, Property 2 demands S = ∅ (so both can never
// hold at once), and a structurally valid move keeps the particle
// attached at both endpoints (e ≥ 1 and e' ≥ 1 — the local connectivity
// guarantee of §3.1) while honoring the gap condition e ≠ 5.
static_assert([] {
  for (int m = 0; m < 256; ++m) {
    const auto mask = static_cast<std::uint8_t>(m);
    const MoveTableEntry& entry = kMoveTable[mask];
    const bool p1 = (entry.flags & kMoveProperty1) != 0;
    const bool p2 = (entry.flags & kMoveProperty2) != 0;
    if (p1 && p2) return false;
    if (p1 != property1Holds(mask) || p2 != property2Holds(mask)) return false;
    const bool structOk = (entry.flags & kMoveStructOk) != 0;
    if (structOk != (entry.eBefore != 5 && (p1 || p2))) return false;
    if (structOk && (entry.eBefore < 1 || entry.eAfter < 1)) return false;
    if (structOk && entry.eBefore == 5) return false;
  }
  return true;
}(), "Properties 1/2 are exclusive and valid moves keep both endpoints "
     "attached");

// The precomputed per-direction ring offsets agree with the geometric
// ringCell definition for every (direction, ring index) pair — the gather
// tables and the §3.1 indexing cannot drift.
static_assert([] {
  for (const Direction d : lattice::kAllDirections) {
    for (int idx = 0; idx < kRingSize; ++idx) {
      const TriPoint origin{0, 0};
      if (!(origin + kRingOffsets[index(d)][static_cast<std::size_t>(idx)] ==
            ringCell(origin, d, idx))) {
        return false;
      }
    }
  }
  return true;
}(), "kRingOffsets must equal the geometric ringCell for all 48 pairs");

}  // namespace detail

}  // namespace sops::core

#endif  // SOPS_CORE_MOVE_TABLE_HPP
