#ifndef SOPS_CORE_SHARDED_CHAIN_RUNNER_HPP
#define SOPS_CORE_SHARDED_CHAIN_RUNNER_HPP

/// \file sharded_chain_runner.hpp
/// Multi-core single-replica execution of the biased chain: the amoebot
/// stripe discipline (amoebot/parallel_scheduler.hpp) applied to the
/// weight models of core::BiasedChainEngine.
///
/// The chain M activates one particle per step, which pins a replica to
/// one core no matter how large n grows.  Poissonization breaks the
/// serialization: give every particle an independent rate-1 exponential
/// clock and execute clock events instead of uniform draws — the embedded
/// jump chain selects particles uniformly, so each event is exactly one
/// Metropolis proposal of the engine's weight model, and the per-event
/// body is the *same* chainEventStep() the sequential engine runs.
///
/// **Stripes.**  The occupancy window is cut into vertical stripes of 64
/// lattice columns — exactly the bit planes' 64-bit word columns, so no
/// two stripes ever touch the same word of the occupancy grid, the
/// models' shadow planes, or the partner-id plane (all allocated with the
/// same geometry).  One event of a particle at column c reads within
/// Model::kInteractionRadius columns of c and writes within radius−1, so
/// an event whose particle sits in the in-stripe interior band
/// [radius, 64 − radius) is processed entirely inside its stripe.
/// Interior events of different stripes therefore commute, and each
/// stripe runs its own events sequentially in (time, particle) order —
/// on any number of threads with identical results.  The radius is the
/// model's declaration (ModelInteractionRadius): 2 for pure movement
/// (ring reads), 3 for pair moves (separation's swap partner and
/// alignment's rotation interact across a shared edge whose ring extends
/// one column further).
///
/// **Halo deferral.**  Events of particles inside a halo band — or close
/// enough to the window edge that an accepted move could force a plane
/// regrow (BitGrid::coversInteriorBy(pos, kInteriorMargin + 1) fails) —
/// are not executed in the stripe phase: the owning stripe routes them,
/// with their original Poisson timestamps, to a deferred list.  A
/// particle that wanders into a band mid-epoch is deferred from that
/// event on (its position then cannot change until the sweep — only a
/// particle's own events move it — so the decision is stable).  After the
/// stripes join, the coordinating thread executes all deferred events in
/// (time, particle) order — a sequential tail of the epoch's schedule,
/// free to regrow windows and resync planes.
///
/// **Clocks and coins.**  Each particle owns two decorrelated RNG streams
/// forked from the master seed (mix64 of (seed, 2i+1) and (seed, 2i+2),
/// the amoebot runner's seeding): one drives its exponential waiting
/// times, one its per-event draws (aux coin, direction/orientation,
/// Metropolis uniform).  Every draw is a pure function of
/// (seed, particle, draw index) — never of thread interleaving — which,
/// with the deterministic stripe/halo rules above, makes the whole
/// trajectory a pure function of the seed.  tests/sharded_chain_test.cpp
/// pins this across thread counts for all three shipped models.
///
/// **What is and is not preserved.**  Unlike the facade's sequential
/// path, the sharded trajectory is *not* draw-for-draw the engine's (the
/// particle-selection mechanism differs, and halo events are reordered
/// after interior events they commute with only approximately).  The
/// contract is distributional: every executed event is a legal
/// Metropolis proposal of the same weight model on the configuration it
/// observes, connectivity and the tracked e(σ) stay exact, and the
/// stationary behavior is validated against exact π by chi-square at
/// enumerable sizes and against the sequential engine by KS at n = 10⁴
/// (pre-registered thresholds, tests/sharded_chain_test.cpp) — the same
/// style of evidence PR 2 established for the sharded amoebot runner.
///
/// During epochs over the dense window the ParticleSystem's cell→id hash
/// index — the one structure every move would otherwise share — is
/// suspended (ParticleSystem::suspendIndex) and restored on exit.
/// Configurations too spread out for the dense window degrade to running
/// every event on the sweep path: same trajectory contract, no
/// parallelism.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/biased_chain_engine.hpp"
#include "core/cancel.hpp"
#include "core/ensemble.hpp"
#include "system/metrics.hpp"

namespace sops::core {

struct ShardedChainOptions {
  /// Worker threads for the stripe phase; 0 uses hardware_concurrency().
  /// The trajectory is identical for every value.
  unsigned threads = 0;
  /// Expected events per epoch (sets Δ = target / n); 0 derives
  /// max(2n, 1024).  Smaller epochs tighten the interleaving granularity,
  /// larger ones amortize the epoch barrier.
  std::uint64_t targetEventsPerEpoch = 0;
};

template <typename Model>
class ShardedChainRunner {
 public:
  ShardedChainRunner(system::ParticleSystem initial, Model model,
                     std::uint64_t seed, ShardedChainOptions options = {})
      : system_(std::move(initial)), model_(std::move(model)),
        options_(options) {
    const std::size_t n = system_.size();
    SOPS_REQUIRE(n > 0, "sharded chain runner needs particles");
    (void)checkedParticleDrawBound(n);  // 32-bit particle ids
    const ChainOptions chainOptions = model_.chainOptions();
    SOPS_REQUIRE(chainOptions.lambda > 0.0, "lambda must be positive");
    SOPS_REQUIRE(Model::kUniformWeight || !chainOptions.greedy,
                 "greedy mode is only defined for the uniform-weight model");
    greedy_ = chainOptions.greedy;
    SOPS_REQUIRE(system::isConnected(system_),
                 "sharded runner requires a connected starting configuration");
    model_.attach(system_);
    if constexpr (kMaintainsIds) partnerIds_.sync(system_);
    edges_ = system::countEdges(system_);
    decisions_ = buildDecisionTable(chainOptions);

    // One epoch's schedule lives in memory (~16 bytes/event); an explicit
    // target beyond 2^28 can only be a mis-keyed step count.  (The
    // derived default 2n scales with state the caller already holds.)
    SOPS_REQUIRE(options_.targetEventsPerEpoch <= (std::uint64_t{1} << 28),
                 "targetEventsPerEpoch must be at most 2^28");
    std::uint64_t target = options_.targetEventsPerEpoch;
    if (target == 0) target = std::max<std::uint64_t>(2 * n, 1024);
    epochLength_ = static_cast<double>(target) / static_cast<double>(n);

    // Independent decorrelated streams per particle — the seeding
    // discipline shared with the amoebot runner (rng::particleStream).
    clockRng_.reserve(n);
    coinRng_.reserve(n);
    nextTime_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto stream = static_cast<std::uint64_t>(i);
      clockRng_.push_back(rng::particleStream(seed, stream, 1));
      coinRng_.push_back(rng::particleStream(seed, stream, 2));
      nextTime_.push_back(clockRng_[i].exponential(1.0));
    }
  }

  /// Installs a cooperative cancel token polled between epochs: once it
  /// trips, runAtLeast/runFor return early (possibly with zero progress)
  /// with the system fully consistent — epoch boundaries are the runner's
  /// only safe preemption points, and they are also exactly the states
  /// saveState() can serialize.  nullptr uninstalls.
  void setCancelToken(const CancelToken* cancel) noexcept { cancel_ = cancel; }

  /// Runs whole epochs until at least `minEvents` chain events have
  /// executed in this call (or the cancel token trips); returns the
  /// number executed.  The system's id index is suspended for the
  /// duration and restored before returning, so the system is fully
  /// consistent (particleAt()) between calls.
  std::uint64_t runAtLeast(std::uint64_t minEvents) {
    const IndexRestore restore(system_);
    std::uint64_t executed = 0;
    while (executed < minEvents) {
      if (isCancelled(cancel_)) break;
      executed += runEpoch();
    }
    return executed;
  }

  /// Runs whole epochs until simulated time advances by `duration` (or
  /// the cancel token trips).
  std::uint64_t runFor(double duration) {
    const IndexRestore restore(system_);
    const double target = now_ + duration;
    std::uint64_t executed = 0;
    while (now_ < target) {
      if (isCancelled(cancel_)) break;
      executed += runEpoch();
    }
    return executed;
  }

  [[nodiscard]] const system::ParticleSystem& system() const noexcept {
    return system_;
  }
  [[nodiscard]] const Model& model() const noexcept { return model_; }
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }
  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] double epochLength() const noexcept { return epochLength_; }

  /// Events executed on the sequential sweep (halo + window-edge
  /// deferrals) since construction — the serial fraction of the run.
  [[nodiscard]] std::uint64_t sweepEvents() const noexcept {
    return sweepEventCount_;
  }

  /// Current e(σ), maintained incrementally from the decision table's δ
  /// (merged across stripes; integer sums are order-independent).
  [[nodiscard]] std::int64_t edges() const noexcept { return edges_; }

  /// p = 3n − e − 3, exact whenever the configuration is hole-free
  /// (Lemma 2.3; hole-freeness is absorbing under the movement rules).
  [[nodiscard]] std::int64_t perimeterIfHoleFree() const noexcept {
    return 3 * static_cast<std::int64_t>(system_.size()) - edges_ - 3;
  }

  /// Serializes the runner's evolving state: system WITH its exact window
  /// geometry (the stripe decomposition and halo/edge deferral rules are
  /// functions of it — a re-derived window would change the trajectory),
  /// model aux state, tallies, simulated clock, and every particle's
  /// pending event time plus both private RNG streams.  Only legal
  /// between runAtLeast/runFor calls (epoch boundaries), where the index
  /// is live and the epoch buffers are empty.
  void saveState(system::SnapshotWriter& w) const {
    SOPS_REQUIRE(!system_.indexSuspended(),
                 "saveState: only legal between runs (index suspended)");
    system::writeParticleSystem(w, system_);
    model_.serialize(w);
    writeEngineStats(w, stats_);
    w.i64(edges_);
    w.f64(now_);
    w.u64(sweepEventCount_);
    w.u64(system_.size());
    for (std::size_t i = 0; i < system_.size(); ++i) {
      w.f64(nextTime_[i]);
      system::writeRandom(w, clockRng_[i]);
      system::writeRandom(w, coinRng_[i]);
    }
  }

  /// Inverse of saveState on a runner constructed from the same spec
  /// (same model options, seed, epoch target).  Epoch length, decision
  /// table, and the derived planes come from the constructor; everything
  /// history-dependent is restored, so the runner continues the
  /// snapshotted trajectory exactly (at any thread count).
  void restoreState(system::SnapshotReader& r) {
    system_ = system::readParticleSystem(r);
    model_.deserialize(r);
    stats_ = readEngineStats(r);
    edges_ = r.i64();
    now_ = r.f64();
    sweepEventCount_ = r.u64();
    const std::uint64_t n = r.u64();
    SOPS_REQUIRE(n == system_.size(),
                 "snapshot: per-particle stream count does not match the "
                 "particle count");
    clockRng_.clear();
    coinRng_.clear();
    nextTime_.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      nextTime_.push_back(r.f64());
      clockRng_.push_back(system::readRandom(r));
      coinRng_.push_back(system::readRandom(r));
    }
    (void)checkedParticleDrawBound(system_.size());
    model_.attach(system_);
    if constexpr (kMaintainsIds) {
      // The restored window geometry can equal the stale fingerprint, so
      // a plain sync() would keep pre-restore ids.
      partnerIds_.invalidate();
      partnerIds_.sync(system_);
    }
    SOPS_REQUIRE(system::countEdges(system_) == edges_,
                 "snapshot: restored edge count disagrees with the "
                 "configuration — corrupt or mismatched snapshot");
  }

 private:
  static constexpr bool kMaintainsIds = ModelNeedsPartnerIds<Model>::value;
  static constexpr std::uint64_t kStripeColumns = 64;
  static constexpr std::uint64_t kHaloColumns =
      static_cast<std::uint64_t>(ModelInteractionRadius<Model>::value);
  static_assert(ModelInteractionRadius<Model>::value >= 1 &&
                    ModelInteractionRadius<Model>::value <= 8,
                "interaction radius must leave a non-trivial stripe interior");

  /// One pending activation.  The (time, particle) order below is THE
  /// schedule order — both the per-stripe pass and the deferred sweep
  /// sort by it, and trajectory reproducibility across thread counts
  /// rests on the tie-break staying identical in both places.
  struct Event {
    double time;
    std::uint32_t particle;

    friend bool operator<(const Event& a, const Event& b) noexcept {
      if (a.time != b.time) return a.time < b.time;
      return a.particle < b.particle;
    }
  };

  /// Per-stripe outcome tally, merged on the coordinating thread in
  /// stripe order after the join.
  struct StripeTally {
    EngineStats stats;
    std::int64_t edgeDelta = 0;
  };

  /// RAII index restoration for one run (suspension itself is per-epoch,
  /// decided by runEpoch's regime check): restore must happen even when
  /// an epoch throws, and is idempotent — including after a mid-run
  /// fallback already restored the index (ParticleSystem::moveParticle,
  /// or runEpoch's id-plane-overflow branch).
  class IndexRestore {
   public:
    explicit IndexRestore(system::ParticleSystem& sys) : sys_(sys) {}
    ~IndexRestore() { sys_.restoreIndex(); }
    IndexRestore(const IndexRestore&) = delete;
    IndexRestore& operator=(const IndexRestore&) = delete;

   private:
    system::ParticleSystem& sys_;
  };

  /// One event of `particle`, drawing (aux coin, direction, uniform) from
  /// its private coin stream; outcomes tallied into `stats`/`edges` (a
  /// stripe-local tally in the parallel phase, the members on the sweep).
  void runEvent(std::uint32_t particle, EngineStats& stats,
                std::int64_t& edges) {
    ++stats.steps;
    rng::Random& rng = coinRng_[particle];
    bool auxMove = false;
    if constexpr (Model::kHasAuxMove) {
      auxMove = model_.auxEnabled() && rng.bernoulli(model_.auxProbability());
    }
    const int draw6 = static_cast<int>(rng.below(6));
    const EngineStepResult result = chainEventStep(
        system_, model_, partnerIds_, decisions_, greedy_,
        static_cast<std::size_t>(particle), draw6, auxMove, rng, edges);
    if (result.wasAux) {
      if (result.aux != AuxOutcome::Skipped) ++stats.auxProposed;
      if (result.aux == AuxOutcome::Accepted) ++stats.auxAccepted;
    } else {
      stats.movement.record(result.movement);
    }
  }

  /// Processes stripe `s`: draws the epoch's event times for its
  /// particles up front (clock streams are independent of system state,
  /// so the draws are order-insensitive across particles), sorts once,
  /// executes interior events and routes halo/window-edge events to
  /// stripeDeferred_[s].  Runs on a worker thread; touches only this
  /// stripe's words, its particles' streams, and its own tally.
  void runStripe(std::size_t s, double epochEnd, std::int64_t originX) {
    std::vector<Event>& deferred = stripeDeferred_[s];
    deferred.clear();
    StripeTally& tally = stripeTally_[s];
    tally = StripeTally{};

    std::vector<Event>& events = stripeEvents_[s];
    events.clear();
    for (const std::uint32_t i : stripeParticles_[s]) {
      double t = nextTime_[i];
      do {
        events.push_back({t, i});
        t += clockRng_[i].exponential(1.0);
      } while (t < epochEnd);
      nextTime_[i] = t;
    }
    std::sort(events.begin(), events.end());

    const system::BitGrid& grid = system_.grid();
    for (const Event& event : events) {
      const std::uint32_t i = event.particle;
      // Halo/window deferral, evaluated on the *current* position: once a
      // particle is in a band its position cannot change again this phase
      // (all its remaining events are deferred, and no other particle's
      // move can displace it), so the decision is stable.
      const TriPoint pos = system_.position(i);
      const auto col = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(pos.x) - originX);
      const std::uint64_t inStripe = col & (kStripeColumns - 1);
      const bool safe =
          (col >> 6) == s && inStripe >= kHaloColumns &&
          inStripe < kStripeColumns - kHaloColumns &&
          grid.coversInteriorBy(pos, system::BitGrid::kInteriorMargin + 1);
      if (safe) {
        runEvent(i, tally.stats, tally.edgeDelta);
      } else {
        deferred.push_back(event);
      }
    }
  }

  /// One epoch [now_, now_ + Δ): stripe phase, join, deferred sweep.
  std::uint64_t runEpoch() {
    const double epochEnd = now_ + epochLength_;
    sweepQueue_.clear();
    std::uint64_t executed = 0;

    // A dense window the id mirror cannot cover (ParticleIdPlane::
    // kMaxCells, smaller than BitGrid's own cap) forces pair moves onto
    // the live hash index for partner lookup — so such epochs, like
    // sparse ones, must run sequentially with the index maintained, not
    // suspended.  Checked per epoch: a sweep regrow can cross the cap in
    // either direction.
    bool idPlaneReady = true;
    if constexpr (kMaintainsIds) {
      if (system_.grid().enabled()) idPlaneReady = partnerIds_.sync(system_);
    }

    if (system_.grid().enabled() && idPlaneReady) {
      // Pre-phase plane sync on the coordinating thread: with the window
      // geometry fixed for the whole stripe phase (window-edge events are
      // deferred), no shadow-plane or id-plane rebuild can trigger inside
      // a worker.  The id index is the one structure every move shares;
      // suspend it for the phase (idempotent across epochs).
      model_.attach(system_);
      system_.suspendIndex();

      const system::BitGrid& grid = system_.grid();
      const std::int64_t originX = grid.originX();
      const auto stripeCount = static_cast<std::size_t>(
          (grid.width() + kStripeColumns - 1) / kStripeColumns);
      if (stripeParticles_.size() < stripeCount) {
        stripeParticles_.resize(stripeCount);
        stripeEvents_.resize(stripeCount);
        stripeDeferred_.resize(stripeCount);
        stripeTally_.resize(stripeCount);
      }
      for (auto& list : stripeParticles_) list.clear();

      for (std::size_t i = 0; i < system_.size(); ++i) {
        if (nextTime_[i] >= epochEnd) continue;
        const auto col = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(system_.position(i).x) - originX);
        stripeParticles_[col >> 6].push_back(static_cast<std::uint32_t>(i));
      }

      activeStripes_.clear();
      for (std::size_t s = 0; s < stripeCount; ++s) {
        if (!stripeParticles_[s].empty()) activeStripes_.push_back(s);
      }
      core::parallelForIndex(activeStripes_.size(), options_.threads,
                             [&](std::size_t k) {
                               runStripe(activeStripes_[k], epochEnd, originX);
                             });
      // Merge in stripe order (fixed regardless of which thread ran
      // what): totals are sums, so any fixed order gives the same state.
      for (const std::size_t s : activeStripes_) {
        executed += stripeTally_[s].stats.steps;
        edges_ += stripeTally_[s].edgeDelta;
        stats_.merge(stripeTally_[s].stats);
        sweepQueue_.insert(sweepQueue_.end(), stripeDeferred_[s].begin(),
                           stripeDeferred_[s].end());
      }
    } else {
      // Sequential regimes — sparse fallback (no stripe geometry) or an
      // id-plane-overflow window: the whole epoch runs on the sweep path
      // in pure (time, particle) order with the index live.  A sparse
      // fallback mid-run has already restored the index (moveParticle
      // does it on the spot); the overflow regime restores it here.
      system_.restoreIndex();
      for (std::size_t i = 0; i < system_.size(); ++i) {
        while (nextTime_[i] < epochEnd) {
          sweepQueue_.push_back({nextTime_[i], static_cast<std::uint32_t>(i)});
          nextTime_[i] += clockRng_[i].exponential(1.0);
        }
      }
    }

    // Sequential sweep: all deferred events by *original timestamps* in
    // (time, particle) order — a sequential tail of the epoch's schedule;
    // window regrows and plane resyncs are safe here.
    std::sort(sweepQueue_.begin(), sweepQueue_.end());
    for (const Event& event : sweepQueue_) {
      if constexpr (kMaintainsIds) {
        // A sweep regrow can push the window past the id mirror's cap
        // mid-epoch, deactivating the plane; from then on pair moves
        // resolve partners through the hash index, which must be live.
        // When synced this is a fingerprint compare, nothing more.
        if (!partnerIds_.sync(system_)) system_.restoreIndex();
      }
      runEvent(event.particle, stats_, edges_);
    }
    executed += sweepQueue_.size();
    sweepEventCount_ += sweepQueue_.size();

    now_ = epochEnd;
    return executed;
  }

  system::ParticleSystem system_;
  Model model_;
  ShardedChainOptions options_;
  EngineStats stats_;
  std::int64_t edges_ = 0;
  bool greedy_ = false;
  double epochLength_ = 1.0;
  double now_ = 0.0;
  std::uint64_t sweepEventCount_ = 0;
  /// cell → id mirror for models that declare kNeedsPartnerIds; empty and
  /// untouched otherwise (same contract as the engine's).
  ParticleIdPlane partnerIds_;
  std::array<MoveDecision, 256> decisions_{};
  const CancelToken* cancel_ = nullptr;

  std::vector<rng::Random> clockRng_;  ///< waiting-time stream per particle
  std::vector<rng::Random> coinRng_;   ///< per-event draw stream per particle
  std::vector<double> nextTime_;       ///< next pending event time

  /// Reused per-epoch buffers.
  std::vector<std::vector<std::uint32_t>> stripeParticles_;
  std::vector<std::vector<Event>> stripeEvents_;
  std::vector<std::vector<Event>> stripeDeferred_;
  std::vector<StripeTally> stripeTally_;
  std::vector<std::size_t> activeStripes_;
  std::vector<Event> sweepQueue_;
};

}  // namespace sops::core

#endif  // SOPS_CORE_SHARDED_CHAIN_RUNNER_HPP
