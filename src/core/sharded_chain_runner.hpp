#ifndef SOPS_CORE_SHARDED_CHAIN_RUNNER_HPP
#define SOPS_CORE_SHARDED_CHAIN_RUNNER_HPP

/// \file sharded_chain_runner.hpp
/// Multi-core single-replica execution of the biased chain: the amoebot
/// stripe discipline (amoebot/parallel_scheduler.hpp) applied to the
/// weight models of core::BiasedChainEngine.
///
/// The chain M activates one particle per step, which pins a replica to
/// one core no matter how large n grows.  Poissonization breaks the
/// serialization: give every particle an independent exponential clock
/// and execute clock events instead of uniform draws — the embedded
/// jump chain selects particle i with probability rate_i / Σ rates (the
/// uniform chain when all rates are 1), so each event is exactly one
/// Metropolis proposal of the engine's weight model, and the per-event
/// body is the *same* chainEventStep() the sequential engine runs.
///
/// **Stripes.**  The occupancy window is cut into vertical stripes of 64
/// lattice columns — exactly the bit planes' 64-bit word columns, so no
/// two stripes ever touch the same word of the occupancy grid, the
/// models' shadow planes, or the partner-id plane (all allocated with the
/// same geometry).  One event of a particle at column c reads within
/// Model::kInteractionRadius columns of c and writes within radius−1, so
/// an event whose particle sits in the in-stripe interior band
/// [radius, 64 − radius) is processed entirely inside its stripe.
/// Interior events of different stripes therefore commute, and each
/// stripe runs its own events sequentially in (time, particle) order —
/// on any number of threads with identical results.  The radius is the
/// model's declaration (ModelInteractionRadius): 2 for pure movement
/// (ring reads), 3 for pair moves (separation's swap partner and
/// alignment's rotation interact across a shared edge whose ring extends
/// one column further).
///
/// **Halo deferral.**  Events of particles inside a halo band — or close
/// enough to the window edge that an accepted move could force a plane
/// regrow (BitGrid::coversInteriorBy(pos, kInteriorMargin + 1) fails) —
/// are not executed in the stripe phase: the owning stripe routes them,
/// with their original Poisson timestamps, to a deferred list.  A
/// particle that wanders into a band mid-epoch is deferred from that
/// event on (its position then cannot change until the sweep — only a
/// particle's own events move it — so the decision is stable).  After the
/// stripes join, the coordinating thread executes all deferred events in
/// (time, particle) order — a sequential tail of the epoch's schedule,
/// free to regrow windows and resync planes.
///
/// **Clocks and coins.**  Each particle owns two decorrelated RNG streams
/// seeded once from the master seed (rng::particleStream — mix64 of
/// (seed, 2i+1) and (seed, 2i+2), the discipline shared with the amoebot
/// runner): one drives its exponential waiting times, one its per-event
/// draws (aux coin, direction/orientation, Metropolis uniform).  The
/// streams live in SoA banks (rng/stream_bank.hpp) — 32-byte packed
/// engine states, one cache line per touched stream instead of the two
/// scattered lines the old AoS `std::vector<rng::Random>` cost — and the
/// clock bank fills a whole epoch's waiting times in one batched
/// sequential pass (PoissonClockBank::fillEpoch) rather than one
/// scattered draw per event.  Every draw remains a pure function of
/// (seed, particle, draw index) — never of thread interleaving — which,
/// with the deterministic stripe/halo rules above, makes the whole
/// trajectory a pure function of the seed.  tests/sharded_chain_test.cpp
/// pins this across thread counts for all three shipped models.
///
/// **Epoch sizing and overlap.**  Epoch length Δ = target / Σ rates.  An
/// explicit targetEventsPerEpoch fixes the target; the default adapts it
/// each epoch from the deferred-event fraction (core/epoch_control.hpp —
/// a thread-count-invariant signal, so adaptivity preserves the
/// determinism contract).  Because the clock draws depend only on the
/// clock streams, never on particle positions, the next epoch's batched
/// fill can run on a persistent helper thread while the coordinating
/// thread executes this epoch's sequential sweep — hiding most of the
/// Amdahl serial fraction.  The helper is disabled at threads == 1, which
/// therefore measures the honest single-thread premium.
///
/// **Heterogeneous rates.**  ShardedChainOptions::rates gives particle i
/// activation rate rate_i > 0 (empty = all 1.0, the paper's uniform
/// chain).  Each accepted move's reverse is proposed by the *same*
/// particle's clock (movement: the moved particle; swap and rotation:
/// per-particle coins pair i with i), so the Metropolis ratio — and with
/// it the stationary distribution π — is unchanged by the rates; only
/// the selection frequencies shift.  tests/sharded_chain_test.cpp checks
/// this against exact π by chi-square at n = 4 and 5.
///
/// **What is and is not preserved.**  Unlike the facade's sequential
/// path, the sharded trajectory is *not* draw-for-draw the engine's (the
/// particle-selection mechanism differs, and halo events are reordered
/// after interior events they commute with only approximately).  The
/// contract is distributional: every executed event is a legal
/// Metropolis proposal of the same weight model on the configuration it
/// observes, connectivity and the tracked e(σ) stay exact, and the
/// stationary behavior is validated against exact π by chi-square at
/// enumerable sizes and against the sequential engine by KS at n = 10⁴
/// (pre-registered thresholds, tests/sharded_chain_test.cpp) — the same
/// style of evidence PR 2 established for the sharded amoebot runner.
///
/// During epochs over the dense window the ParticleSystem's cell→id hash
/// index — the one structure every move would otherwise share — is
/// suspended (ParticleSystem::suspendIndex) and restored on exit.
///
/// **Tiled windows.**  Configurations too spread out for one flat window
/// run on BitGrid's tiled backend: same word-exclusive stripe discipline
/// (tile columns are 64-aligned, so stripes never split a word), but the
/// allocated-tile bounding box can span astronomically many columns, so
/// stripes are keyed sparsely (util::FlatMap64) instead of indexed
/// densely, with slots assigned in a sequential first-touch pass that is
/// the same for every thread count.  Pair-move models additionally defer
/// events whose neighborhood the paged partner-id plane does not cover
/// (ParticleIdPlane::coversNear) — directory growth, like window growth,
/// belongs to the sequential pre-phase and sweep only.  The sparse
/// (hash-only) regime survives solely behind
/// ParticleSystem::forceSparseForTest() and snapshots of such runs:
/// every event runs on the sweep path, same trajectory contract, no
/// parallelism.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/biased_chain_engine.hpp"
#include "core/cancel.hpp"
#include "core/ensemble.hpp"
#include "core/epoch_control.hpp"
#include "core/overlap_worker.hpp"
#include "rng/stream_bank.hpp"
#include "system/metrics.hpp"
#include "util/event_sort.hpp"
#include "util/flat_hash.hpp"

namespace sops::core {

struct ShardedChainOptions {
  /// Worker threads for the stripe phase; 0 uses hardware_concurrency().
  /// The trajectory is identical for every value.  threads == 1 also
  /// disables the draw/sweep overlap helper, so it runs strictly
  /// single-threaded.
  unsigned threads = 0;
  /// Expected events per epoch (sets Δ = target / Σ rates); 0 derives
  /// min(max(2n, 1024), 2^28) and lets the adaptive controller move it.
  /// An explicit value fixes the target for the whole run.
  std::uint64_t targetEventsPerEpoch = 0;
  /// Adapt the derived epoch target from the deferred-event fraction
  /// (core/epoch_control.hpp).  Ignored when targetEventsPerEpoch != 0.
  bool adaptiveEpochs = true;
  /// Per-particle Poisson activation rates; empty means all 1.0 (the
  /// paper's uniform-activation chain).  Must be positive and match the
  /// particle count when present.  π is unchanged (see file comment);
  /// only selection frequencies shift.
  std::vector<double> rates;
};

template <typename Model>
  requires ChainWeightModel<Model>
class ShardedChainRunner {
 public:
  ShardedChainRunner(system::ParticleSystem initial, Model model,
                     std::uint64_t seed, ShardedChainOptions options = {})
      : system_(std::move(initial)), model_(std::move(model)),
        options_(std::move(options)), controller_(system_.size()) {
    const std::size_t n = system_.size();
    SOPS_REQUIRE(n > 0, "sharded chain runner needs particles");
    (void)checkedParticleDrawBound(n);  // 32-bit particle ids
    const ChainOptions chainOptions = model_.chainOptions();
    SOPS_REQUIRE(chainOptions.lambda > 0.0, "lambda must be positive");
    SOPS_REQUIRE(Model::kUniformWeight || !chainOptions.greedy,
                 "greedy mode is only defined for the uniform-weight model");
    greedy_ = chainOptions.greedy;
    SOPS_REQUIRE(system::isConnected(system_),
                 "sharded runner requires a connected starting configuration");
    model_.attach(system_);
    if constexpr (kMaintainsIds) partnerIds_.sync(system_);
    edges_ = system::countEdges(system_);
    decisions_ = buildDecisionTable(chainOptions);

    // One epoch's schedule lives in memory (~16 bytes/event); an explicit
    // target beyond the cap can only be a mis-keyed step count, and the
    // derived default is clamped to the same cap (an unclamped 2n once
    // let a legal huge-n system build a multi-GiB schedule).
    SOPS_REQUIRE(options_.targetEventsPerEpoch <= kMaxEventsPerEpoch,
                 "targetEventsPerEpoch must be at most 2^28");
    SOPS_REQUIRE(options_.rates.empty() || options_.rates.size() == n,
                 "rates must be empty or give one rate per particle");
    adaptive_ =
        options_.targetEventsPerEpoch == 0 && options_.adaptiveEpochs;
    epochTarget_ = options_.targetEventsPerEpoch != 0
                       ? options_.targetEventsPerEpoch
                       : derivedEpochTarget(n);

    // SoA stream banks, seeded once with the discipline shared with the
    // amoebot runner (rng::particleStream); the clock bank also draws
    // each particle's first firing time, as the AoS constructor did.
    clock_ = rng::PoissonClockBank(seed, n, 1, options_.rates);
    coin_ = rng::StreamBank(seed, n, 2);
    epochLength_ = static_cast<double>(epochTarget_) / clock_.totalRate();
  }

  /// Installs a cooperative cancel token polled between epochs: once it
  /// trips, runAtLeast/runFor return early (possibly with zero progress)
  /// with the system fully consistent — epoch boundaries are the runner's
  /// only safe preemption points, and they are also exactly the states
  /// saveState() can serialize.  nullptr uninstalls.
  void setCancelToken(const CancelToken* cancel) noexcept { cancel_ = cancel; }

  /// Runs whole epochs until at least `minEvents` chain events have
  /// executed in this call (or the cancel token trips); returns the
  /// number executed.  The system's id index is suspended for the
  /// duration and restored before returning, so the system is fully
  /// consistent (particleAt()) between calls.
  std::uint64_t runAtLeast(std::uint64_t minEvents) {
    const IndexRestore restore(system_);
    const OverlapDrain drain(*this);
    std::uint64_t executed = 0;
    while (executed < minEvents || overlapPending_) {
      // A pre-drawn epoch must be consumed before stopping (its draws
      // have already advanced the clock bank), so a cancel with a fill in
      // flight runs exactly one more epoch — which also skips the next
      // pre-draw, unwinding the pipeline.
      if (isCancelled(cancel_) && !overlapPending_) break;
      executed += runEpoch(
          [&](std::uint64_t after, double) { return after < minEvents; },
          executed);
    }
    return executed;
  }

  /// Runs whole epochs until simulated time advances by `duration` (or
  /// the cancel token trips).
  std::uint64_t runFor(double duration) {
    const IndexRestore restore(system_);
    const OverlapDrain drain(*this);
    const double target = now_ + duration;
    std::uint64_t executed = 0;
    while (now_ < target || overlapPending_) {
      if (isCancelled(cancel_) && !overlapPending_) break;
      executed += runEpoch(
          [&](std::uint64_t, double end) { return end < target; }, executed);
    }
    return executed;
  }

  [[nodiscard]] const system::ParticleSystem& system() const noexcept {
    return system_;
  }
  [[nodiscard]] const Model& model() const noexcept { return model_; }
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }
  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] double epochLength() const noexcept { return epochLength_; }

  /// Current events-per-epoch target (fixed, or the adaptive controller's
  /// latest decision).
  [[nodiscard]] std::uint64_t epochTarget() const noexcept {
    return epochTarget_;
  }

  /// Events executed on the sequential sweep (halo + window-edge
  /// deferrals) since construction — the serial fraction of the run.
  [[nodiscard]] std::uint64_t sweepEvents() const noexcept {
    return sweepEventCount_;
  }

  /// Current e(σ), maintained incrementally from the decision table's δ
  /// (merged across stripes; integer sums are order-independent).
  [[nodiscard]] std::int64_t edges() const noexcept { return edges_; }

  /// p = 3n − e − 3, exact whenever the configuration is hole-free
  /// (Lemma 2.3; hole-freeness is absorbing under the movement rules).
  [[nodiscard]] std::int64_t perimeterIfHoleFree() const noexcept {
    return 3 * static_cast<std::int64_t>(system_.size()) - edges_ - 3;
  }

  /// Serializes the runner's evolving state: system WITH its exact window
  /// geometry (the stripe decomposition and halo/edge deferral rules are
  /// functions of it — a re-derived window would change the trajectory),
  /// model aux state, tallies, simulated clock, the current epoch target
  /// (history-dependent under the adaptive controller), and every
  /// particle's pending event time plus both private stream states (the
  /// banks' master seed is the constructor's, so only the 4 engine words
  /// per stream are stored).  Only legal between runAtLeast/runFor calls
  /// (epoch boundaries), where the index is live and the epoch buffers —
  /// including any overlap pre-draw — are empty.
  void saveState(system::SnapshotWriter& w) const {
    SOPS_REQUIRE(!system_.indexSuspended(),
                 "saveState: only legal between runs (index suspended)");
    SOPS_REQUIRE(!overlapPending_,
                 "saveState: overlap pre-draw still pending (only legal "
                 "between runs)");
    system::writeParticleSystem(w, system_);
    model_.serialize(w);
    writeEngineStats(w, stats_);
    w.i64(edges_);
    w.f64(now_);
    w.u64(sweepEventCount_);
    w.u64(epochTarget_);
    w.u64(system_.size());
    for (std::size_t i = 0; i < system_.size(); ++i) {
      w.f64(clock_.nextTime(i));
      system::writeEngineState(w, clock_.state(i));
      system::writeEngineState(w, coin_.state(i));
    }
    // Snapshot v3: the partner-id plane's mode and (when paged) its exact
    // page directory — the striped deferral predicate is a function of
    // the allocated-page set, so a re-derived directory would change the
    // trajectory.
    if constexpr (kMaintainsIds) partnerIds_.saveState(w);
  }

  /// Inverse of saveState on a runner constructed from the same spec
  /// (same model options, seed, epoch/rate options).  Epoch bounds,
  /// decision table, rates, and the derived planes come from the
  /// constructor; everything history-dependent is restored, so the runner
  /// continues the snapshotted trajectory exactly (at any thread count).
  void restoreState(system::SnapshotReader& r) {
    SOPS_REQUIRE(!overlapPending_,
                 "restoreState: overlap pre-draw still pending");
    system_ = system::readParticleSystem(r);
    model_.deserialize(r);
    stats_ = readEngineStats(r);
    edges_ = r.i64();
    now_ = r.f64();
    sweepEventCount_ = r.u64();
    const std::uint64_t target = r.u64();
    if (adaptive_) {
      controller_.setTarget(target);
      epochTarget_ = target;
    } else {
      SOPS_REQUIRE(target == epochTarget_,
                   "snapshot: fixed epoch target does not match the "
                   "runner's options");
    }
    const std::uint64_t n = r.u64();
    SOPS_REQUIRE(n == system_.size(),
                 "snapshot: per-particle stream count does not match the "
                 "particle count");
    for (std::uint64_t i = 0; i < n; ++i) {
      clock_.setNextTime(i, r.f64());
      clock_.setState(i, system::readEngineState(r));
      coin_.setState(i, system::readEngineState(r));
    }
    epochLength_ = static_cast<double>(epochTarget_) / clock_.totalRate();
    (void)checkedParticleDrawBound(system_.size());
    model_.attach(system_);
    if constexpr (kMaintainsIds) {
      if (r.version() >= 3) {
        // v3 records the plane's mode (and the exact page directory when
        // paged — restoreState rebuilds it key for key).
        partnerIds_.restoreState(r, system_);
      } else {
        // v2 snapshots predate the paged plane, so the plane was flat; a
        // fresh rebuild is exact there.  The restored window geometry can
        // equal the stale fingerprint, so a plain sync() would keep
        // pre-restore ids.
        partnerIds_.invalidate();
        partnerIds_.sync(system_);
      }
    }
    SOPS_REQUIRE(system::countEdges(system_) == edges_,
                 "snapshot: restored edge count disagrees with the "
                 "configuration — corrupt or mismatched snapshot");
  }

 private:
  static constexpr bool kMaintainsIds = ModelNeedsPartnerIds<Model>::value;
  static constexpr std::uint64_t kStripeColumns = 64;
  static constexpr std::uint64_t kHaloColumns =
      static_cast<std::uint64_t>(ModelInteractionRadius<Model>::value);
  static_assert(ModelInteractionRadius<Model>::value >= 1 &&
                    ModelInteractionRadius<Model>::value <= 8,
                "interaction radius must leave a non-trivial stripe interior");
  /// One pending activation.  The (time, particle) order below is THE
  /// schedule order — both the per-stripe pass and the deferred sweep
  /// sort by it, and trajectory reproducibility across thread counts
  /// rests on the tie-break staying identical in both places.
  struct Event {
    double time;
    std::uint32_t particle;

    friend bool operator<(const Event& a, const Event& b) noexcept {
      if (a.time != b.time) return a.time < b.time;
      return a.particle < b.particle;
    }
  };

  /// Sorts events into (time, particle) order.  Every firing time lies
  /// in the epoch window [begin, end), so the bucket sort applies; its
  /// per-bucket comparison is Event's own operator<, making the result
  /// the exact lexicographic schedule.
  static void sortEvents(std::vector<Event>& events,
                         util::EventSortScratch<Event>& scratch,
                         double begin, double end) {
    util::sortEventsInWindow(events, scratch, begin, end,
                             [](const Event& e) { return e.time; });
  }

  /// Per-stripe outcome tally, merged on the coordinating thread in
  /// stripe order after the join.
  struct StripeTally {
    EngineStats stats;
    std::int64_t edgeDelta = 0;
  };

  /// RAII index restoration for one run (suspension itself is per-epoch,
  /// decided by runEpoch's regime check): restore must happen even when
  /// an epoch throws, and is idempotent — including after a mid-run
  /// fallback already restored the index (ParticleSystem::moveParticle).
  class IndexRestore {
   public:
    explicit IndexRestore(system::ParticleSystem& sys) : sys_(sys) {}
    ~IndexRestore() { sys_.restoreIndex(); }
    IndexRestore(const IndexRestore&) = delete;
    IndexRestore& operator=(const IndexRestore&) = delete;

   private:
    system::ParticleSystem& sys_;
  };

  /// RAII overlap quiescence for one run: if an epoch throws with a
  /// pre-draw in flight, the helper must finish before unwinding (it
  /// writes the clock bank).  The completed buffer stays pending — it is
  /// a valid continuation the next run consumes.  Normal exits never
  /// leave a pre-draw pending (the moreAfter prediction is exact).
  class OverlapDrain {
   public:
    explicit OverlapDrain(ShardedChainRunner& runner) noexcept
        : runner_(runner) {}
    ~OverlapDrain() {
      if (runner_.overlapPending_) {
        try {
          runner_.overlap_->wait();
        } catch (...) {
          runner_.overlapPending_ = false;  // fill died; buffer unusable
        }
      }
    }
    OverlapDrain(const OverlapDrain&) = delete;
    OverlapDrain& operator=(const OverlapDrain&) = delete;

   private:
    ShardedChainRunner& runner_;
  };

  [[nodiscard]] bool overlapEnabled() const noexcept {
    return options_.threads != 1;
  }

  /// One event of `particle`, drawing (aux coin, direction, uniform) from
  /// its private coin stream — materialized from the SoA bank for the
  /// duration of the event; outcomes tallied into `stats`/`edges` (a
  /// stripe-local tally in the parallel phase, the members on the sweep).
  void runEvent(std::uint32_t particle, EngineStats& stats,
                std::int64_t& edges) {
    ++stats.steps;
    rng::StreamBank::Use use = coin_.use(particle);
    rng::Random& rng = use.rng();
    bool auxMove = false;
    if constexpr (Model::kHasAuxMove) {
      auxMove = model_.auxEnabled() && rng.bernoulli(model_.auxProbability());
    }
    const int draw6 = static_cast<int>(rng.below(6));
    const EngineStepResult result = chainEventStep(
        system_, model_, partnerIds_, decisions_, greedy_,
        static_cast<std::size_t>(particle), draw6, auxMove, rng, edges);
    if (result.wasAux) {
      if (result.aux != AuxOutcome::Skipped) ++stats.auxProposed;
      if (result.aux == AuxOutcome::Accepted) ++stats.auxAccepted;
    } else {
      stats.movement.record(result.movement);
    }
  }

  /// Processes the stripe in buffer slot `slot` (covering the 64 columns
  /// at stripe index `stripeIndex`; the two coincide for flat windows):
  /// gathers its particles' pre-drawn firing times from the epoch buffer
  /// (filled in one batched pass — possibly by the overlap helper during
  /// the previous sweep), sorts once, executes interior events and routes
  /// halo/window-edge events to stripeDeferred_[slot].  Runs on a worker
  /// thread; touches only this stripe's words, its particles' coin
  /// streams, and its own tally.
  void runStripe(std::size_t slot, std::uint64_t stripeIndex,
                 std::int64_t originX, double epochEnd) {
    std::vector<Event>& deferred = stripeDeferred_[slot];
    deferred.clear();
    StripeTally& tally = stripeTally_[slot];
    tally = StripeTally{};

    std::vector<Event>& events = stripeEvents_[slot];
    events.clear();
    for (const std::uint32_t i : stripeParticles_[slot]) {
      const std::uint64_t end = draws_.offsets[i + 1];
      for (std::uint64_t k = draws_.offsets[i]; k < end; ++k) {
        events.push_back({draws_.times[k], i});
      }
    }
    sortEvents(events, sortScratch_[slot], now_, epochEnd);

    const system::BitGrid& grid = system_.grid();
    for (const Event& event : events) {
      const std::uint32_t i = event.particle;
      // Halo/window deferral, evaluated on the *current* position: once a
      // particle is in a band its position cannot change again this phase
      // (all its remaining events are deferred, and no other particle's
      // move can displace it), so the decision is stable.
      const TriPoint pos = system_.position(i);
      const auto col = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(pos.x) - originX);
      const std::uint64_t inStripe = col & (kStripeColumns - 1);
      // Pair-move models also require the partner-id plane to cover the
      // event's neighborhood (lookups and id moves reach distance ≤ 1).
      // Flat planes always do; a paged directory answers with a probe.
      // Both directories are immutable during the stripe phase, so the
      // predicate is the same for every thread count.
      bool idsCover = true;
      if constexpr (kMaintainsIds) idsCover = partnerIds_.coversNear(pos, 1);
      const bool safe =
          (col >> 6) == stripeIndex && inStripe >= kHaloColumns &&
          inStripe < kStripeColumns - kHaloColumns &&
          grid.coversInteriorBy(pos, system::BitGrid::kInteriorMargin + 1) &&
          idsCover;
      if (safe) {
        runEvent(i, tally.stats, tally.edgeDelta);
      } else {
        deferred.push_back(event);
      }
    }
  }

  /// One epoch [now_, now_ + Δ): batched draw (or overlap handoff),
  /// stripe phase, join, next-Δ decision + pre-draw submit, deferred
  /// sweep.  `moreAfter(eventsAfterThisEpoch, epochEnd)` predicts whether
  /// the burst continues — it gates the pre-draw, and it must be exact so
  /// bursts never end with a fill pending.
  template <typename MoreAfter>
  std::uint64_t runEpoch(MoreAfter&& moreAfter, std::uint64_t executedBefore) {
    const double epochEnd = now_ + epochLength_;

    // The epoch's full schedule of firing times, per particle ascending.
    // Either the helper pre-drew it during the previous sweep or it is
    // filled here — identical draws either way (fillEpoch is a pure
    // function of the clock bank's state).
    if (overlapPending_) {
      overlap_->wait();
      overlapPending_ = false;
      SOPS_DASSERT(pendingEnd_ == epochEnd);
      std::swap(draws_, pending_);
    } else {
      clock_.fillEpoch(epochEnd, draws_);
    }
    const std::uint64_t total = draws_.total();

    sweepQueue_.clear();
    std::uint64_t executed = 0;
    bool striped = false;

    if (system_.grid().enabled()) {
      striped = true;
      // Pre-phase plane sync on the coordinating thread: with the window
      // geometry fixed for the whole stripe phase (window-edge events are
      // deferred), no shadow-plane or id-plane rebuild can trigger inside
      // a worker.  The paged id plane allocates its directory here (or on
      // the sweep), never inside a stripe — events its coverage misses
      // are deferred by runStripe's predicate.  The id index is the one
      // structure every move shares; suspend it for the phase (idempotent
      // across epochs).
      model_.attach(system_);
      if constexpr (kMaintainsIds) {
        const bool ready = partnerIds_.sync(system_);
        SOPS_DASSERT(ready);  // false only for a disabled grid
        (void)ready;
      }
      system_.suspendIndex();

      const system::BitGrid& grid = system_.grid();
      const std::int64_t originX = grid.originX();
      const bool tiledGrid = grid.tiled();

      activeStripes_.clear();
      if (tiledGrid) {
        // The allocated-tile bounding box can span astronomically many
        // 64-column stripes, so bucket sparsely: stripe index → buffer
        // slot, slots assigned in first-touch order by this sequential
        // pass — the same assignment for every thread count.  Tile
        // columns are 64-aligned (kTileWidth is a multiple of 64) and
        // originX is tile-aligned, so stripe boundaries still never
        // split a word of any plane.
        stripeSlots_.clear();
        stripeIndexOfSlot_.clear();
        for (std::size_t i = 0; i < system_.size(); ++i) {
          if (draws_.count(i) == 0) continue;
          const auto col = static_cast<std::uint64_t>(
              static_cast<std::int64_t>(system_.position(i).x) - originX);
          const std::uint64_t stripeIndex = col >> 6;
          std::size_t slot;
          if (const std::uint32_t* found = stripeSlots_.find(stripeIndex)) {
            slot = *found;
          } else {
            slot = stripeIndexOfSlot_.size();
            stripeSlots_.insert(stripeIndex,
                                static_cast<std::uint32_t>(slot));
            stripeIndexOfSlot_.push_back(stripeIndex);
            if (stripeParticles_.size() <= slot) {
              stripeParticles_.resize(slot + 1);
              stripeEvents_.resize(slot + 1);
              stripeDeferred_.resize(slot + 1);
              stripeTally_.resize(slot + 1);
              sortScratch_.resize(slot + 1);
            }
            stripeParticles_[slot].clear();
          }
          stripeParticles_[slot].push_back(static_cast<std::uint32_t>(i));
        }
        for (std::size_t slot = 0; slot < stripeIndexOfSlot_.size(); ++slot) {
          activeStripes_.push_back(slot);
        }
        // Canonical merge order: ascending stripe index, matching the
        // flat path (any fixed order would do — stripes are disjoint in
        // particles, so the merged schedule is order-independent).
        std::sort(activeStripes_.begin(), activeStripes_.end(),
                  [&](std::size_t a, std::size_t b) {
                    return stripeIndexOfSlot_[a] < stripeIndexOfSlot_[b];
                  });
      } else {
        // Flat windows keep the dense stripe arrays: stripe count is
        // bounded by width / 64, and slot == stripe index.
        const auto stripeCount = static_cast<std::size_t>(
            (grid.width() + kStripeColumns - 1) / kStripeColumns);
        if (stripeParticles_.size() < stripeCount) {
          stripeParticles_.resize(stripeCount);
          stripeEvents_.resize(stripeCount);
          stripeDeferred_.resize(stripeCount);
          stripeTally_.resize(stripeCount);
          sortScratch_.resize(stripeCount);
        }
        for (auto& list : stripeParticles_) list.clear();

        for (std::size_t i = 0; i < system_.size(); ++i) {
          if (draws_.count(i) == 0) continue;
          const auto col = static_cast<std::uint64_t>(
              static_cast<std::int64_t>(system_.position(i).x) - originX);
          stripeParticles_[col >> 6].push_back(static_cast<std::uint32_t>(i));
        }

        for (std::size_t s = 0; s < stripeCount; ++s) {
          if (!stripeParticles_[s].empty()) activeStripes_.push_back(s);
        }
      }
      core::parallelForIndex(
          activeStripes_.size(), options_.threads, [&](std::size_t k) {
            const std::size_t slot = activeStripes_[k];
            const std::uint64_t stripeIndex =
                tiledGrid ? stripeIndexOfSlot_[slot] : slot;
            runStripe(slot, stripeIndex, originX, epochEnd);
          });
      // Merge in stripe order (fixed regardless of which thread ran
      // what): totals are sums, so any fixed order gives the same state.
      // The sweep schedule is assembled by concatenating every stripe's
      // deferred list and re-sorting once with the epoch bucket sort —
      // NOT by a per-stripe std::merge cascade, which re-copies the
      // growing queue once per stripe and goes quadratic on wide tiled
      // windows (a 3e5-particle line spans ~4700 active stripes; the
      // cascade was >70 % of its epoch time).  (time, particle) keys are
      // unique, so the sorted schedule is byte-identical to the cascade's.
      for (const std::size_t s : activeStripes_) {
        executed += stripeTally_[s].stats.steps;
        edges_ += stripeTally_[s].edgeDelta;
        stats_.merge(stripeTally_[s].stats);
        const std::vector<Event>& deferred = stripeDeferred_[s];
        sweepQueue_.insert(sweepQueue_.end(), deferred.begin(), deferred.end());
      }
      if (!sweepQueue_.empty()) {
        sortEvents(sweepQueue_, sweepScratch_, now_, epochEnd);
      }
    } else {
      // Sparse regime (forced for tests, or restored from a snapshot of
      // such a run): no stripe geometry, so the whole epoch runs on the
      // sweep path in pure (time, particle) order with the index live.
      system_.restoreIndex();
      sweepQueue_.reserve(total);
      for (std::size_t i = 0; i < system_.size(); ++i) {
        const std::uint64_t end = draws_.offsets[i + 1];
        for (std::uint64_t k = draws_.offsets[i]; k < end; ++k) {
          sweepQueue_.push_back(
              {draws_.times[k], static_cast<std::uint32_t>(i)});
        }
      }
      sortEvents(sweepQueue_, sweepScratch_, now_, epochEnd);
    }

    // Decide the next epoch's length BEFORE the sweep — the overlap
    // helper needs the next window's end now.  The deferred fraction is a
    // pure function of the seeded trajectory (stripe geometry + event
    // positions), so every thread count computes the same schedule; the
    // sequential regime leaves the target alone (everything is "deferred"
    // there, which says nothing about stripe balance).
    if (adaptive_ && striped) {
      epochTarget_ = controller_.update(sweepQueue_.size(), total);
    }
    const double nextLength =
        static_cast<double>(epochTarget_) / clock_.totalRate();
    const double nextEnd = epochEnd + nextLength;
    if (overlapEnabled() && !isCancelled(cancel_) &&
        moreAfter(executedBefore + total, epochEnd)) {
      if (!overlap_) overlap_ = std::make_unique<OverlapWorker>();
      overlapPending_ = true;
      pendingEnd_ = nextEnd;
      overlap_->submit(
          [this, nextEnd] { clock_.fillEpoch(nextEnd, pending_); });
    }

    // Sequential sweep: all deferred events by *original timestamps* in
    // (time, particle) order — a sequential tail of the epoch's schedule;
    // window regrows and plane resyncs are safe here.  The overlap helper
    // only touches the clock bank and its own buffer, never the system or
    // the coin bank, so it runs concurrently with this loop.
    for (const Event& event : sweepQueue_) {
      if constexpr (kMaintainsIds) {
        // A sweep regrow can cross ParticleIdPlane::kMaxCells (switching
        // the mirror between flat and paged) or promote the grid to
        // tiled; sync() rebuilds the mirror accordingly.  It fails only
        // for a disabled grid (the forced-sparse regime), where pair
        // moves resolve partners through the hash index, which must be
        // live.  When synced this is a fingerprint compare, nothing more.
        if (!partnerIds_.sync(system_)) system_.restoreIndex();
      }
      runEvent(event.particle, stats_, edges_);
    }
    executed += sweepQueue_.size();
    sweepEventCount_ += sweepQueue_.size();

    now_ = epochEnd;
    epochLength_ = nextLength;
    return executed;
  }

  system::ParticleSystem system_;
  Model model_;
  ShardedChainOptions options_;
  EngineStats stats_;
  std::int64_t edges_ = 0;
  bool greedy_ = false;
  bool adaptive_ = true;
  double epochLength_ = 1.0;
  double now_ = 0.0;
  std::uint64_t epochTarget_ = 0;
  std::uint64_t sweepEventCount_ = 0;
  AdaptiveEpochController controller_;
  /// cell → id mirror for models that declare kNeedsPartnerIds; empty and
  /// untouched otherwise (same contract as the engine's).
  ParticleIdPlane partnerIds_;
  std::array<MoveDecision, 256> decisions_{};
  const CancelToken* cancel_ = nullptr;

  rng::PoissonClockBank clock_;  ///< SoA waiting-time streams + rates
  rng::StreamBank coin_;         ///< SoA per-event draw streams

  /// Epoch draw buffers: draws_ is the epoch being executed, pending_ the
  /// overlap helper's output for the next one.
  rng::PoissonClockBank::EpochDraws draws_;
  rng::PoissonClockBank::EpochDraws pending_;
  bool overlapPending_ = false;
  double pendingEnd_ = 0.0;
  std::unique_ptr<OverlapWorker> overlap_;

  /// Reused per-epoch buffers.  Indexed by buffer *slot*: equal to the
  /// stripe index over a flat window, assigned first-touch over a tiled
  /// one (stripeSlots_/stripeIndexOfSlot_ hold the mapping).
  std::vector<std::vector<std::uint32_t>> stripeParticles_;
  std::vector<std::vector<Event>> stripeEvents_;
  std::vector<std::vector<Event>> stripeDeferred_;
  std::vector<StripeTally> stripeTally_;
  std::vector<util::EventSortScratch<Event>> sortScratch_;
  util::EventSortScratch<Event> sweepScratch_;
  std::vector<std::size_t> activeStripes_;  ///< slots, in merge order
  util::FlatMap64<std::uint32_t> stripeSlots_;  ///< tiled: stripe idx → slot
  std::vector<std::uint64_t> stripeIndexOfSlot_;
  std::vector<Event> sweepQueue_;
};

}  // namespace sops::core

#endif  // SOPS_CORE_SHARDED_CHAIN_RUNNER_HPP
