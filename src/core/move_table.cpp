#include "core/move_table.hpp"

#include "core/properties.hpp"

namespace sops::core {

namespace {

std::array<MoveTableEntry, 256> buildMoveTable() {
  std::array<MoveTableEntry, 256> table{};
  for (int m = 0; m < 256; ++m) {
    const auto mask = static_cast<std::uint8_t>(m);
    MoveTableEntry& entry = table[static_cast<std::size_t>(m)];
    entry.eBefore = static_cast<std::uint8_t>(neighborsBefore(mask));
    entry.eAfter = static_cast<std::uint8_t>(neighborsAfter(mask));
    entry.delta = static_cast<std::int8_t>(entry.eAfter - entry.eBefore);
    std::uint8_t flags = 0;
    if (entry.eBefore != 5) flags |= kMoveGapOk;
    if (property1Holds(mask)) flags |= kMoveProperty1;
    if (property2Holds(mask)) flags |= kMoveProperty2;
    if ((flags & kMoveGapOk) && (flags & (kMoveProperty1 | kMoveProperty2))) {
      flags |= kMoveStructOk;
    }
    entry.flags = flags;
  }
  return table;
}

}  // namespace

const std::array<MoveTableEntry, 256>& moveTable() noexcept {
  static const std::array<MoveTableEntry, 256> kTable = buildMoveTable();
  return kTable;
}

}  // namespace sops::core
