#ifndef SOPS_CORE_SCENARIO_ENSEMBLE_HPP
#define SOPS_CORE_SCENARIO_ENSEMBLE_HPP

/// \file scenario_ensemble.hpp
/// Replica ensembles over BiasedChainEngine scenarios.
///
/// The generalized analogue of core::runEnsemble: parameter grids of any
/// weight-model scenario (compression / separation / alignment / custom)
/// fan out across the same work-stealing pool (core::parallelForIndex),
/// with the same guarantees — results in spec order, every replica's
/// trajectory a pure function of its spec, worker exceptions rethrown on
/// the caller.  Engines are constructed on the worker thread (the factory
/// must be safe to invoke concurrently with the other specs' factories).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/biased_chain_engine.hpp"
#include "core/ensemble.hpp"

namespace sops::core {

template <typename Model>
  requires ChainWeightModel<Model>
struct ScenarioReplicaSpec {
  /// Free-form tag carried into the result (e.g. "gamma=4.0 seed=7").
  std::string label;
  std::uint64_t iterations = 0;
  /// Sampling period for `observable`; 0 runs one chunk.
  std::uint64_t checkpointEvery = 0;
  /// Builds the replica's engine (initial system + model + seed); invoked
  /// on the worker thread.
  std::function<BiasedChainEngine<Model>()> makeEngine;
  /// Sampled after every checkpoint into ScenarioReplicaResult::samples.
  std::function<double(const BiasedChainEngine<Model>&)> observable;
  /// Invoked once after the final step, to extract scenario-specific
  /// results (final hom fraction, orientation histogram, ...).
  std::function<void(const BiasedChainEngine<Model>&,
                     std::vector<std::pair<std::string, double>>&)>
      finish;
};

template <typename Model>
struct ScenarioReplicaResult {
  std::size_t index = 0;  ///< position of the spec in the input vector
  std::string label;
  std::int64_t edges = 0;
  EngineStats stats;
  std::vector<ReplicaSample> samples;
  /// Whatever the spec's `finish` hook extracted, in insertion order.
  std::vector<std::pair<std::string, double>> metrics;
  double wallSeconds = 0.0;
};

/// Runs every spec to completion across the thread pool (0 threads uses
/// hardware_concurrency); results are in spec order and independent of the
/// thread count.
template <typename Model>
  requires ChainWeightModel<Model>
[[nodiscard]] std::vector<ScenarioReplicaResult<Model>> runScenarioEnsemble(
    std::span<const ScenarioReplicaSpec<Model>> specs, unsigned threads = 0) {
  std::vector<ScenarioReplicaResult<Model>> results(specs.size());
  parallelForIndex(specs.size(), threads, [&](std::size_t i) {
    const ScenarioReplicaSpec<Model>& spec = specs[i];
    SOPS_REQUIRE(static_cast<bool>(spec.makeEngine),
                 "scenario spec needs an engine factory");
    const auto start = std::chrono::steady_clock::now();
    BiasedChainEngine<Model> engine = spec.makeEngine();
    ScenarioReplicaResult<Model>& out = results[i];
    out.index = i;
    out.label = spec.label;
    const std::uint64_t every =
        spec.checkpointEvery > 0 ? spec.checkpointEvery
                                 : std::max<std::uint64_t>(spec.iterations, 1);
    engine.runWithCheckpoints(spec.iterations, every, [&](std::uint64_t done) {
      if (spec.observable) {
        out.samples.push_back(ReplicaSample{done, spec.observable(engine)});
      }
    });
    if (spec.finish) spec.finish(engine, out.metrics);
    out.edges = engine.edges();
    out.stats = engine.stats();
    out.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  });
  return results;
}

}  // namespace sops::core

#endif  // SOPS_CORE_SCENARIO_ENSEMBLE_HPP
