#ifndef SOPS_CORE_MODEL_CONTRACT_HPP
#define SOPS_CORE_MODEL_CONTRACT_HPP

/// \file model_contract.hpp
/// The compile-time contract between a chain weight model and its two
/// execution disciplines.
///
/// BiasedChainEngine<Model> (sequential) and ShardedChainRunner<Model>
/// (Poissonized multi-core) defer to the model for everything
/// scenario-specific: the extra weight factor of a movement move, the
/// auxiliary move kind, the interaction radius the stripe discipline
/// sizes its halo bands from, and the snapshot round-trip of the model's
/// evolving state.  Before this header the contract lived in a doc
/// comment and surfaced as template soup three instantiation levels deep
/// when a model drifted.  The C++20 concepts here turn that drift into a
/// one-line diagnostic naming the violated requirement:
///
///   ChainWeightModel<M>   the full contract both disciplines require —
///                         applied as a requires-clause on
///                         BiasedChainEngine, ShardedChainRunner, the
///                         registry scenario wrappers, and the scenario
///                         ensemble.
///   AuxMoveModel<M>       the auxiliary-move surface (swap, rotation,
///                         ...); required exactly when M::kHasAuxMove.
///
/// The *optional* members keep working through the detection traits
/// below (ModelNeedsPartnerIds defaults to false), but the load-bearing
/// ones are required outright:
///
///   kInteractionRadius    every model must declare how far one event
///                         reads/writes (in lattice columns) — the
///                         sharded runner's correctness depends on it,
///                         so "forgot to declare it" must not silently
///                         select a default.  Must be in [2, 32): a
///                         movement ring alone spans 2 columns, and a
///                         radius at or beyond the 64-column stripe
///                         width would leave no interior band at all.
///   serialize/deserialize the durable-run layer snapshots every model;
///                         serialize must be const (it runs on a live
///                         engine at a checkpoint) and both must take
///                         the snapshot stream by reference.
///
/// tests/compile_fail/ holds the negative half of the proof: deliberately
/// contract-violating models, compiled via try_compile, must be rejected
/// with the concept's name in the diagnostic.

#include <concepts>
#include <cstdint>
#include <type_traits>

#include "core/compression_chain.hpp"
#include "core/id_plane.hpp"
#include "lattice/direction.hpp"
#include "lattice/tri_point.hpp"
#include "rng/random.hpp"
#include "system/particle_system.hpp"
#include "system/snapshot.hpp"

namespace sops::core {

/// Outcome of a scenario's auxiliary move (swap, rotation, ...).
enum class AuxOutcome : std::uint8_t {
  Skipped,   ///< proposal was structurally void (no partner, same color, ...)
  Rejected,  ///< reached the filter and failed the Metropolis draw
  Accepted,  ///< applied
};

/// Detects the optional kNeedsPartnerIds contract member (absent = false):
/// when true the engine maintains a cell→particle-id plane
/// (core/id_plane.hpp) in lockstep with accepted moves and passes it to
/// auxStep, so partner identity is an array load instead of a hash probe.
template <typename Model, typename = void>
struct ModelNeedsPartnerIds : std::false_type {};
template <typename Model>
struct ModelNeedsPartnerIds<Model,
                            std::void_t<decltype(Model::kNeedsPartnerIds)>>
    : std::bool_constant<Model::kNeedsPartnerIds> {};

/// The model's declared interaction radius: the largest column distance
/// (|Δx|) any read or write of one event spans from the activated
/// particle's cell.  A movement move alone needs 2 (the 8-cell ring); a
/// pair aux move whose partner sits one cell over and whose edge ring is
/// gathered around that partner needs 3.  The sharded chain runner sizes
/// its stripe halo bands from this.  ChainWeightModel requires the member
/// outright; the trait remains the single accessor both disciplines read.
template <typename Model>
struct ModelInteractionRadius
    : std::integral_constant<int, Model::kInteractionRadius> {};

/// Lower/upper bounds on a declarable interaction radius: the movement
/// ring spans 2 columns, and the stripe discipline needs an interior band
/// to exist within a 64-column stripe (radius columns of halo on each
/// side), so a radius at or beyond half a stripe is a contract error.
inline constexpr int kMinInteractionRadius = 2;
inline constexpr int kMaxInteractionRadius = 31;

/// The auxiliary-move surface of a model that mixes a second move kind
/// into the chain (color swap, orientation rotation, ...).  (particle,
/// draw6) are the engine's hoisted draws; further draws come lazily from
/// the per-event RNG.
template <typename Model>
concept AuxMoveModel =
    requires(Model& m, const Model& cm, system::ParticleSystem& sys,
             const ParticleIdPlane& ids, rng::Random& rng, std::size_t particle,
             int draw6) {
      { cm.auxEnabled() } -> std::convertible_to<bool>;
      { cm.auxProbability() } -> std::convertible_to<double>;
      { m.auxStep(sys, ids, rng, particle, draw6) } -> std::same_as<AuxOutcome>;
    };

/// Everything both execution disciplines require of every model: the
/// compile-time switches (as genuine constant expressions — they drive
/// `if constexpr` in the shared event step), the movement-weight hook,
/// the attach/onMoved plane-sync hooks, and the snapshot round-trip.
template <typename Model>
concept ChainWeightModelBase =
    std::move_constructible<Model> &&
    requires(Model& m, const Model& cm, const system::ParticleSystem& sys,
             system::SnapshotWriter& w, system::SnapshotReader& r,
             std::size_t particle, TriPoint cell, Direction d,
             std::uint8_t ringOcc) {
      // Move-kind switches, usable in constant expressions.
      typename std::bool_constant<Model::kUniformWeight>;
      typename std::bool_constant<Model::kHasAuxMove>;
      // Declared event footprint for the stripe/halo discipline.
      { Model::kInteractionRadius } -> std::convertible_to<int>;
      requires int{Model::kInteractionRadius} >= kMinInteractionRadius;
      requires int{Model::kInteractionRadius} <= kMaxInteractionRadius;
      // Chain-level options (λ and the ablation switches).
      { cm.chainOptions() } -> std::convertible_to<ChainOptions>;
      // Validation + shadow-plane construction against the initial system.
      m.attach(sys);
      // Extra w-ratio of a movement move (beyond the table's λ^{e'−e}).
      { m.movementFactor(sys, particle, cell, d, ringOcc) } ->
          std::convertible_to<double>;
      // Post-move plane sync.
      m.onMoved(sys, particle, cell, cell);
      // Snapshot round-trip of the model's evolving state; serialize runs
      // on a const engine at a checkpoint.
      { cm.serialize(w) } -> std::same_as<void>;
      { m.deserialize(r) } -> std::same_as<void>;
    };

/// The full contract: the base surface, the auxiliary surface exactly
/// when the model declares an aux move, and coherence of the optional
/// members (a partner-id plane is only defined for pair-style aux moves).
template <typename Model>
concept ChainWeightModel =
    ChainWeightModelBase<Model> &&
    (!Model::kHasAuxMove || AuxMoveModel<Model>) &&
    (!ModelNeedsPartnerIds<Model>::value || Model::kHasAuxMove);

}  // namespace sops::core

#endif  // SOPS_CORE_MODEL_CONTRACT_HPP
