#include "core/move_planner.hpp"

#include <deque>
#include <string>
#include <unordered_map>

#include "lattice/direction.hpp"
#include "system/canonical.hpp"
#include "system/metrics.hpp"
#include "system/shapes.hpp"

namespace sops::core {

namespace {

using lattice::Direction;
using lattice::kAllDirections;
using lattice::neighbor;
using lattice::TriPoint;
using system::ParticleSystem;

/// Structural validity: positive acceptance probability for any λ > 0.
bool moveValid(const MoveEvaluation& eval, const ChainOptions& options) {
  return acceptanceProbability(eval, options) > 0.0;
}

struct NodeInfo {
  std::int32_t parent = -1;  // index into the node vector; -1 for the root
  TriPoint moveFrom;         // in the *parent's canonical* coordinates
  TriPoint moveTo;
};

TriPoint canonicalOffset(const std::vector<TriPoint>& points) {
  TriPoint offset = points.front();
  for (const TriPoint p : points) {
    offset.x = std::min(offset.x, p.x);
    offset.y = std::min(offset.y, p.y);
  }
  return offset;
}

}  // namespace

std::optional<MovePlan> planMoves(const ParticleSystem& source,
                                  const ParticleSystem& target,
                                  const ChainOptions& options,
                                  std::size_t stateLimit) {
  SOPS_REQUIRE(source.size() == target.size(),
               "planMoves: particle counts differ");
  SOPS_REQUIRE(!source.empty(), "planMoves: empty system");
  SOPS_REQUIRE(system::isConnected(source), "planMoves: source disconnected");
  SOPS_REQUIRE(system::isConnected(target), "planMoves: target disconnected");

  const std::string goalKey = system::canonicalKey(target);

  std::vector<std::vector<TriPoint>> states;
  std::vector<NodeInfo> info;
  std::unordered_map<std::string, std::int32_t> indexOf;

  const auto addState = [&](std::vector<TriPoint> canonicalPoints,
                            const std::string& key, NodeInfo node) {
    const auto index = static_cast<std::int32_t>(states.size());
    states.push_back(std::move(canonicalPoints));
    info.push_back(node);
    indexOf.emplace(key, index);
    return index;
  };

  const std::string sourceKey = system::canonicalKey(source);
  std::int32_t goalIndex = -1;
  {
    const std::int32_t root =
        addState(system::canonicalPoints(source), sourceKey, NodeInfo{});
    if (sourceKey == goalKey) goalIndex = root;
  }

  std::deque<std::int32_t> frontier{0};
  std::vector<TriPoint> scratch;
  while (!frontier.empty() && goalIndex < 0 && states.size() < stateLimit) {
    const std::int32_t current = frontier.front();
    frontier.pop_front();
    const ParticleSystem sys(states[static_cast<std::size_t>(current)]);
    for (std::size_t particle = 0; particle < sys.size() && goalIndex < 0;
         ++particle) {
      const TriPoint from = sys.position(particle);
      for (const Direction d : kAllDirections) {
        const MoveEvaluation eval = evaluateMove(sys, from, d);
        if (!moveValid(eval, options)) continue;
        const TriPoint to = neighbor(from, d);
        scratch = sys.positions();
        scratch[particle] = to;
        const std::string key = system::canonicalKeyFromPoints(scratch);
        if (indexOf.contains(key)) continue;
        const std::int32_t child = addState(system::canonicalPoints(scratch),
                                            key, NodeInfo{current, from, to});
        if (key == goalKey) {
          goalIndex = child;
          break;
        }
        frontier.push_back(child);
      }
    }
  }

  if (goalIndex < 0) return std::nullopt;

  // Reconstruct the move chain root..goal in canonical-parent coordinates.
  std::vector<PlannedMove> reversed;
  for (std::int32_t at = goalIndex;
       info[static_cast<std::size_t>(at)].parent >= 0;
       at = info[static_cast<std::size_t>(at)].parent) {
    reversed.push_back({info[static_cast<std::size_t>(at)].moveFrom,
                        info[static_cast<std::size_t>(at)].moveTo});
  }

  // Translate each step from canonical coordinates into the evolving actual
  // arrangement's coordinates: actual = canonical + offset, where the
  // offset is re-derived after every move.
  MovePlan plan;
  plan.statesExplored = states.size();
  plan.moves.reserve(reversed.size());
  std::vector<TriPoint> actual = source.positions();
  TriPoint offset = canonicalOffset(actual);
  for (auto it = reversed.rbegin(); it != reversed.rend(); ++it) {
    const TriPoint from = it->from + offset;
    const TriPoint to = it->to + offset;
    plan.moves.push_back({from, to});
    for (TriPoint& p : actual) {
      if (p == from) {
        p = to;
        break;
      }
    }
    offset = canonicalOffset(actual);
  }
  return plan;
}

std::optional<MovePlan> planToLine(const ParticleSystem& source,
                                   const ChainOptions& options,
                                   std::size_t stateLimit) {
  return planMoves(source,
                   system::lineConfiguration(
                       static_cast<std::int64_t>(source.size())),
                   options, stateLimit);
}

ParticleSystem replayPlan(const ParticleSystem& source, const MovePlan& plan,
                          const ChainOptions& options) {
  ParticleSystem sys = source;
  for (const PlannedMove& move : plan.moves) {
    const auto particle = sys.particleAt(move.from);
    SOPS_REQUIRE(particle.has_value(), "replayPlan: move source unoccupied");
    const auto direction = lattice::directionBetween(move.from, move.to);
    SOPS_REQUIRE(direction.has_value(), "replayPlan: move is not one step");
    const MoveEvaluation eval = evaluateMove(sys, move.from, *direction);
    SOPS_REQUIRE(acceptanceProbability(eval, options) > 0.0,
                 "replayPlan: invalid move in plan");
    sys.moveParticle(*particle, move.to);
  }
  return sys;
}

}  // namespace sops::core
