#ifndef SOPS_CORE_ID_PLANE_HPP
#define SOPS_CORE_ID_PLANE_HPP

/// \file id_plane.hpp
/// Dense cell → particle-id plane, geometry-aligned with a
/// ParticleSystem's occupancy window.
///
/// The separation scenario's auxiliary move needs the *identity* of the
/// swap partner — the one query on the engine's accept path that still
/// went through the hash index.  This plane answers it with a single
/// array load: one u32 per window cell, kept in lockstep with the
/// engine's accepted moves (BiasedChainEngine::step maintains it for
/// models that declare kNeedsPartnerIds).
///
/// Like the models' ShadowPlanes, the plane fingerprints the grid
/// geometry and rebuilds from scratch (O(n)) after a window regrow; when
/// the system runs sparse — or the window is too large for a u32-per-cell
/// mirror (kMaxCells) — the plane deactivates and callers fall back to
/// ParticleSystem::particleAt.

#include <cstdint>
#include <vector>

#include "system/particle_system.hpp"
#include "util/assert.hpp"

namespace sops::core {

class ParticleIdPlane {
 public:
  static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;
  /// Mirror-size cap: 2^24 cells = 64 MiB of ids.  The occupancy window of
  /// any compact engine-scale configuration is far smaller; a window this
  /// large means the configuration is sprawling and the hash fallback is
  /// the right tool anyway.
  static constexpr std::uint64_t kMaxCells = std::uint64_t{1} << 24;

  /// True when the plane mirrors `grid` exactly — the licence for
  /// idAtUnchecked()/move().
  [[nodiscard]] bool syncedWith(const system::BitGrid& grid) const noexcept {
    return active_ && grid.enabled() && grid.originX() == originX_ &&
           grid.originY() == originY_ && grid.width() == width_ &&
           grid.height() == height_;
  }

  /// Ensures the plane mirrors sys.grid(); returns false (deactivated)
  /// when the system runs sparse or the window exceeds kMaxCells.
  bool sync(const system::ParticleSystem& sys) {
    const system::BitGrid& grid = sys.grid();
    if (!grid.enabled() || grid.width() * grid.height() > kMaxCells) {
      active_ = false;
      ids_.clear();
      return false;
    }
    if (syncedWith(grid)) return true;
    originX_ = grid.originX();
    originY_ = grid.originY();
    width_ = grid.width();
    height_ = grid.height();
    ids_.assign(static_cast<std::size_t>(width_ * height_), kEmpty);
    for (std::size_t i = 0; i < sys.size(); ++i) {
      ids_[indexOf(sys.position(i))] = static_cast<std::uint32_t>(i);
    }
    active_ = true;
    return true;
  }

  /// Forces the next sync() to rebuild from scratch.  Required after the
  /// particle system is replaced wholesale (snapshot restore): the new
  /// window geometry can coincide with the old fingerprint while every id
  /// is stale — geometry alone cannot detect that.
  void invalidate() noexcept { active_ = false; }

  /// Relocates `particle` from `from` to `to`.  Precondition: synced with
  /// the current grid and both cells covered by it.
  void move(TriPoint from, TriPoint to, std::size_t particle) noexcept {
    SOPS_DASSERT(ids_[indexOf(from)] == static_cast<std::uint32_t>(particle));
    ids_[indexOf(from)] = kEmpty;
    ids_[indexOf(to)] = static_cast<std::uint32_t>(particle);
  }

  /// Id of the particle at an *occupied* cell.  Precondition: synced, and
  /// p occupied (so covered by the window's interior-margin invariant).
  [[nodiscard]] std::uint32_t idAtUnchecked(TriPoint p) const noexcept {
    const std::uint32_t id = ids_[indexOf(p)];
    SOPS_DASSERT(id != kEmpty);
    return id;
  }

 private:
  [[nodiscard]] std::size_t indexOf(TriPoint p) const noexcept {
    const auto dx = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(p.x) - originX_);
    const auto dy = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(p.y) - originY_);
    SOPS_DASSERT(dx < width_ && dy < height_);
    return static_cast<std::size_t>(dy * width_ + dx);
  }

  std::vector<std::uint32_t> ids_;
  std::int64_t originX_ = 0;
  std::int64_t originY_ = 0;
  std::uint64_t width_ = 0;
  std::uint64_t height_ = 0;
  bool active_ = false;
};

}  // namespace sops::core

#endif  // SOPS_CORE_ID_PLANE_HPP
