#ifndef SOPS_CORE_ID_PLANE_HPP
#define SOPS_CORE_ID_PLANE_HPP

/// \file id_plane.hpp
/// Dense cell → particle-id plane, aligned with a ParticleSystem's
/// occupancy grid.
///
/// The separation scenario's auxiliary move needs the *identity* of the
/// swap partner — the one query on the engine's accept path that still
/// went through the hash index.  This plane answers it with a single
/// array load: one u32 per cell, kept in lockstep with the engine's
/// accepted moves (BiasedChainEngine::step maintains it for models that
/// declare kNeedsPartnerIds).
///
/// Three modes, selected by sync() from the grid's shape:
///
///   Flat   — one contiguous u32 mirror of a flat occupancy window whose
///            area fits kMaxCells: exactly the pre-tiled fast path.
///   Paged  — for tiled grids and for flat windows past kMaxCells: 128×32
///            u32 pages (16 KiB) allocated on first touch, keyed by page
///            coordinate in an open-addressing directory, absolutely
///            anchored (page (px, py) always covers cells [px·128,
///            (px+1)·128) × [py·32, (py+1)·32)).  Because pages key
///            absolute coordinates, the plane's content stays valid when
///            the grid grows — no O(n) rebuild per window event, which is
///            what used to force the sharded runner back to sequential
///            epochs past kMaxCells.
///   Inactive — the system runs sparse; callers fall back to
///            ParticleSystem::particleAt.
///
/// Paged-mode invariant: every particle's current position has its page
/// allocated and holding its id (the initial build allocates a
/// kPageMargin-box around every particle; move() re-establishes it by
/// allocating around any target that lands on a missing page — reachable
/// only from sequential contexts, since the sharded runner's deferral
/// predicate requires coversNear(pos, 1) before touching the plane
/// concurrently).

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "lattice/tri_point.hpp"
#include "system/particle_system.hpp"
#include "system/snapshot.hpp"
#include "util/assert.hpp"
#include "util/flat_hash.hpp"

namespace sops::core {

using lattice::TriPoint;

class ParticleIdPlane {
 public:
  static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;
  /// Flat-mirror size cap: 2^24 cells = 64 MiB of ids.  Windows past this
  /// (and all tiled grids) use the paged mode instead of deactivating.
  static constexpr std::uint64_t kMaxCells = std::uint64_t{1} << 24;

  // --- paged-mode geometry (absolutely anchored) ---
  static constexpr int kPageShiftX = 7;  ///< pages are 128 cells wide
  static constexpr int kPageShiftY = 5;  ///< ...and 32 rows tall
  static constexpr std::int64_t kPageWidth = std::int64_t{1} << kPageShiftX;
  static constexpr std::int64_t kPageHeight = std::int64_t{1} << kPageShiftY;
  /// 128×32 u32 = 16 KiB per page.
  static constexpr std::size_t kPageCells =
      static_cast<std::size_t>(kPageWidth) *
      static_cast<std::size_t>(kPageHeight);
  /// Page-directory cap: 2^17 pages × 16 KiB = 2 GiB of ids; exceeding it
  /// throws with the fix in the message, like BitGrid::kMaxTiles.
  static constexpr std::uint32_t kMaxPages = 1u << 17;
  /// Pages are allocated this many cells around a particle (initial build
  /// and fresh-page moves), so a particle satisfies coversNear(pos, 1) —
  /// the sharded runner's deferral predicate — until it drifts a few
  /// pages.
  static constexpr std::int64_t kPageMargin = 4;

  enum class Mode : std::uint8_t { Inactive = 0, Flat = 1, Paged = 2 };

  [[nodiscard]] Mode mode() const noexcept { return mode_; }

  /// True when the plane is a Flat mirror of `grid` exactly — the licence
  /// for idAtUnchecked()/move() in Flat mode.
  [[nodiscard]] bool syncedWith(const system::BitGrid& grid) const noexcept {
    return mode_ == Mode::Flat && grid.enabled() && !grid.tiled() &&
           grid.geometryVersion() == gridVersion_ &&
           grid.originX() == originX_ && grid.originY() == originY_ &&
           grid.width() == width_ && grid.height() == height_;
  }

  /// True when the plane tracks accepted moves incrementally — the licence
  /// for idAtUnchecked()/move() in either dense mode.  False means callers
  /// must sync() (sequential contexts) or fall back to particleAt.
  [[nodiscard]] bool tracksMoves(const system::BitGrid& grid) const noexcept {
    if (mode_ == Mode::Flat) return syncedWith(grid);
    return mode_ == Mode::Paged && pagedValid_;
  }

  /// Ensures the plane mirrors sys.grid(); returns false (deactivated)
  /// only when the system runs sparse.  Flat windows past kMaxCells and
  /// tiled grids build the paged mode; a valid paged plane is a no-op
  /// here (its absolute-keyed content survives grid growth).
  bool sync(const system::ParticleSystem& sys) {
    const system::BitGrid& grid = sys.grid();
    if (!grid.enabled()) {
      invalidate();
      return false;
    }
    if (!grid.tiled() && grid.width() * grid.height() <= kMaxCells) {
      if (syncedWith(grid)) return true;
      buildFlat(sys, grid);
      return true;
    }
    if (mode_ == Mode::Paged && pagedValid_) return true;
    buildPaged(sys);
    return true;
  }

  /// Forces the next sync() to rebuild from scratch.  Required after the
  /// particle system is replaced wholesale (snapshot restore): the new
  /// geometry can coincide with the old fingerprint while every id is
  /// stale — geometry alone cannot detect that.
  void invalidate() noexcept {
    mode_ = Mode::Inactive;
    pagedValid_ = false;
    ids_.clear();
    pages_.clear();
  }

  /// True iff every cell in [p ± depth] is backed by the plane: always in
  /// Flat mode (the mirror spans the whole window), page-directory probes
  /// in Paged mode.  The sharded chain runner conjoins coversNear(pos, 1)
  /// into its deferral predicate so concurrent events never touch a
  /// missing page (id reads and writes stay within distance 1 of the
  /// acting particle).
  [[nodiscard]] bool coversNear(TriPoint p, std::int64_t depth) const noexcept {
    if (mode_ == Mode::Flat) return true;
    if (mode_ != Mode::Paged || !pagedValid_) return false;
    const auto x = static_cast<std::int64_t>(p.x);
    const auto y = static_cast<std::int64_t>(p.y);
    const std::int64_t px0 = (x - depth) >> kPageShiftX;
    const std::int64_t px1 = (x + depth) >> kPageShiftX;
    const std::int64_t py0 = (y - depth) >> kPageShiftY;
    const std::int64_t py1 = (y + depth) >> kPageShiftY;
    for (std::int64_t py = py0; py <= py1; ++py) {
      for (std::int64_t px = px0; px <= px1; ++px) {
        if (!pages_.contains(pageKey(px, py))) return false;
      }
    }
    return true;
  }

  /// Relocates `particle` from `from` to `to`.  Precondition: tracksMoves.
  /// In Paged mode a target on a missing page allocates a kPageMargin
  /// neighborhood around it — only reachable from sequential contexts (the
  /// sharded deferral predicate excludes it concurrently).
  void move(TriPoint from, TriPoint to, std::size_t particle) {
    if (mode_ == Mode::Flat) {
      SOPS_DASSERT(ids_[indexOf(from)] ==
                   static_cast<std::uint32_t>(particle));
      ids_[indexOf(from)] = kEmpty;
      ids_[indexOf(to)] = static_cast<std::uint32_t>(particle);
      return;
    }
    SOPS_DASSERT(mode_ == Mode::Paged && pagedValid_);
    const std::uint32_t* fromSlot =
        pages_.find(pageKey(pageXOf(from), pageYOf(from)));
    SOPS_DASSERT(fromSlot != nullptr &&
                 ids_[pageIndex(*fromSlot, from)] ==
                     static_cast<std::uint32_t>(particle));
    ids_[pageIndex(*fromSlot, from)] = kEmpty;
    const std::uint32_t* toSlot =
        pages_.find(pageKey(pageXOf(to), pageYOf(to)));
    if (toSlot == nullptr) {
      ensurePagesAround(to, kPageMargin);
      toSlot = pages_.find(pageKey(pageXOf(to), pageYOf(to)));
    }
    ids_[pageIndex(*toSlot, to)] = static_cast<std::uint32_t>(particle);
  }

  /// Id of the particle at an *occupied* cell.  Precondition: tracksMoves,
  /// and p occupied — in Paged mode an occupied cell's page is allocated
  /// by the every-particle-page invariant.
  [[nodiscard]] std::uint32_t idAtUnchecked(TriPoint p) const noexcept {
    std::uint32_t id = kEmpty;
    if (mode_ == Mode::Flat) {
      id = ids_[indexOf(p)];
    } else {
      const std::uint32_t* slot =
          pages_.find(pageKey(pageXOf(p), pageYOf(p)));
      SOPS_DASSERT(slot != nullptr);
      if (slot != nullptr) id = ids_[pageIndex(*slot, p)];
    }
    SOPS_DASSERT(id != kEmpty);
    return id;
  }

  [[nodiscard]] std::size_t pageCount() const noexcept {
    return pages_.size();
  }

  /// Lowers the page cap for this instance (cap-overflow tests).
  void setMaxPagesForTest(std::uint32_t cap) noexcept { maxPages_ = cap; }

  /// Serializes what restore cannot re-derive: in Paged mode the exact
  /// page directory (the sharded runner's deferral predicate is a
  /// function of the allocated-page set, so resume must reproduce it
  /// verbatim).  Flat/Inactive planes write only a tag — a flat rebuild
  /// from the restored grid is exact.  Ids themselves are never written;
  /// they are rebuilt from particle positions.
  void saveState(system::SnapshotWriter& w) const {
    const bool paged = mode_ == Mode::Paged && pagedValid_;
    w.u8(paged ? static_cast<std::uint8_t>(Mode::Paged)
               : static_cast<std::uint8_t>(Mode::Inactive));
    if (!paged) return;
    std::vector<std::uint64_t> keys;
    keys.reserve(pages_.size());
    pages_.forEach(
        [&keys](std::uint64_t key, std::uint32_t) { keys.push_back(key); });
    std::sort(keys.begin(), keys.end());
    w.u64(keys.size());
    for (const std::uint64_t key : keys) {
      w.i64(pageXOfKey(key));
      w.i64(pageYOfKey(key));
    }
  }

  /// Inverse of saveState.  A Paged tag rebuilds ids from sys's positions
  /// under EXACTLY the serialized directory; any other tag falls back to
  /// invalidate() + sync().
  void restoreState(system::SnapshotReader& r,
                    const system::ParticleSystem& sys) {
    const std::uint8_t tag = r.u8();
    if (tag != static_cast<std::uint8_t>(Mode::Paged)) {
      SOPS_REQUIRE(tag == static_cast<std::uint8_t>(Mode::Inactive),
                   "snapshot: bad id-plane mode tag");
      invalidate();
      sync(sys);
      return;
    }
    invalidate();
    mode_ = Mode::Paged;
    const std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::int64_t px = r.i64();
      const std::int64_t py = r.i64();
      SOPS_REQUIRE(!pages_.contains(pageKey(px, py)),
                   "snapshot: duplicate id-plane page");
      ensurePage(px, py);
    }
    for (std::size_t i = 0; i < sys.size(); ++i) {
      const TriPoint p = sys.position(i);
      const std::uint32_t* slot =
          pages_.find(pageKey(pageXOf(p), pageYOf(p)));
      SOPS_REQUIRE(slot != nullptr,
                   "snapshot: id-plane directory misses a particle's page");
      ids_[pageIndex(*slot, p)] = static_cast<std::uint32_t>(i);
    }
    pagedValid_ = true;
  }

 private:
  [[nodiscard]] static constexpr std::int64_t pageXOf(TriPoint p) noexcept {
    return static_cast<std::int64_t>(p.x) >> kPageShiftX;
  }
  [[nodiscard]] static constexpr std::int64_t pageYOf(TriPoint p) noexcept {
    return static_cast<std::int64_t>(p.y) >> kPageShiftY;
  }
  [[nodiscard]] static constexpr std::uint64_t pageKey(
      std::int64_t px, std::int64_t py) noexcept {
    return (static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(static_cast<std::int32_t>(px)))
            << 32) |
           static_cast<std::uint32_t>(static_cast<std::int32_t>(py));
  }
  [[nodiscard]] static constexpr std::int64_t pageXOfKey(
      std::uint64_t key) noexcept {
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(key >> 32));
  }
  [[nodiscard]] static constexpr std::int64_t pageYOfKey(
      std::uint64_t key) noexcept {
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(key));
  }

  [[nodiscard]] static std::size_t pageIndex(std::uint32_t slot,
                                             TriPoint p) noexcept {
    const std::int64_t inX =
        static_cast<std::int64_t>(p.x) & (kPageWidth - 1);
    const std::int64_t inY =
        static_cast<std::int64_t>(p.y) & (kPageHeight - 1);
    return static_cast<std::size_t>(slot) * kPageCells +
           static_cast<std::size_t>(inY * kPageWidth + inX);
  }

  [[nodiscard]] std::size_t indexOf(TriPoint p) const noexcept {
    const auto dx = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(p.x) - originX_);
    const auto dy = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(p.y) - originY_);
    SOPS_DASSERT(dx < width_ && dy < height_);
    return static_cast<std::size_t>(dy * width_ + dx);
  }

  void buildFlat(const system::ParticleSystem& sys,
                 const system::BitGrid& grid) {
    pages_.clear();
    pagedValid_ = false;
    originX_ = grid.originX();
    originY_ = grid.originY();
    width_ = grid.width();
    height_ = grid.height();
    gridVersion_ = grid.geometryVersion();
    ids_.assign(static_cast<std::size_t>(width_ * height_), kEmpty);
    for (std::size_t i = 0; i < sys.size(); ++i) {
      ids_[indexOf(sys.position(i))] = static_cast<std::uint32_t>(i);
    }
    mode_ = Mode::Flat;
  }

  void buildPaged(const system::ParticleSystem& sys) {
    mode_ = Mode::Paged;
    pagedValid_ = false;
    pages_.clear();
    ids_.clear();
    for (std::size_t i = 0; i < sys.size(); ++i) {
      ensurePagesAround(sys.position(i), kPageMargin);
    }
    for (std::size_t i = 0; i < sys.size(); ++i) {
      const TriPoint p = sys.position(i);
      const std::uint32_t* slot =
          pages_.find(pageKey(pageXOf(p), pageYOf(p)));
      ids_[pageIndex(*slot, p)] = static_cast<std::uint32_t>(i);
    }
    pagedValid_ = true;
  }

  void ensurePagesAround(TriPoint p, std::int64_t margin) {
    const auto x = static_cast<std::int64_t>(p.x);
    const auto y = static_cast<std::int64_t>(p.y);
    const std::int64_t px0 = (x - margin) >> kPageShiftX;
    const std::int64_t px1 = (x + margin) >> kPageShiftX;
    const std::int64_t py0 = (y - margin) >> kPageShiftY;
    const std::int64_t py1 = (y + margin) >> kPageShiftY;
    for (std::int64_t py = py0; py <= py1; ++py) {
      for (std::int64_t px = px0; px <= px1; ++px) {
        ensurePage(px, py);
      }
    }
  }

  void ensurePage(std::int64_t px, std::int64_t py) {
    const std::uint64_t key = pageKey(px, py);
    if (pages_.contains(key)) return;
    if (pages_.size() >= maxPages_) {
      throw ContractViolation(
          "ParticleIdPlane: page directory reached the cap of " +
          std::to_string(maxPages_) +
          " pages (16 KiB each); this configuration is too spread out for "
          "one id plane — raise ParticleIdPlane::kMaxPages or split the "
          "run into smaller systems");
    }
    const auto slot = static_cast<std::uint32_t>(pages_.size());
    pages_.insert(key, slot);
    ids_.resize(ids_.size() + kPageCells, kEmpty);
  }

  std::vector<std::uint32_t> ids_;
  util::FlatMap64<std::uint32_t> pages_;
  std::int64_t originX_ = 0;
  std::int64_t originY_ = 0;
  std::uint64_t width_ = 0;
  std::uint64_t height_ = 0;
  std::uint64_t gridVersion_ = 0;
  std::uint32_t maxPages_ = kMaxPages;
  Mode mode_ = Mode::Inactive;
  bool pagedValid_ = false;
};

}  // namespace sops::core

#endif  // SOPS_CORE_ID_PLANE_HPP
