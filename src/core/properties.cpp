#include "core/properties.hpp"

#include "core/move_table.hpp"

namespace sops::core {

// property1Holds / property2Holds moved to the header as constexpr so the
// move table can be built and proven at compile time; only the
// ParticleSystem-coupled evaluation remains out of line.

MoveEvaluation evaluateMove(const system::ParticleSystem& sys, TriPoint l,
                            Direction d) {
  MoveEvaluation eval;
  const TriPoint target = lattice::neighbor(l, d);
  if (sys.occupiedNear(target)) {
    eval.targetOccupied = true;
    return eval;
  }
  eval.mask = ringMask(sys, l, d);
  // One 4-byte load instead of two popcounts and two O(ring²) scans; the
  // table entries are exhaustively validated against property1Holds /
  // property2Holds for all 256 masks by the test suite.
  const MoveTableEntry& entry = moveTableEntry(eval.mask);
  eval.eBefore = entry.eBefore;
  eval.eAfter = entry.eAfter;
  eval.gapOk = (entry.flags & kMoveGapOk) != 0;
  eval.property1 = (entry.flags & kMoveProperty1) != 0;
  eval.property2 = (entry.flags & kMoveProperty2) != 0;
  eval.propertyOk = eval.property1 || eval.property2;
  return eval;
}

}  // namespace sops::core
