#include "core/properties.hpp"

#include "core/move_table.hpp"

namespace sops::core {

bool property1Holds(std::uint8_t mask) noexcept {
  if ((mask & kCommonMask) == 0) return false;  // S is empty
  if (mask == 0xFF) return true;                // single all-ring arc
  // Every maximal cyclic run of set bits must contain idx 0 or idx 4.
  for (int i = 0; i < kRingSize; ++i) {
    const bool set = (mask >> i) & 1u;
    const bool prevSet = (mask >> ((i + kRingSize - 1) % kRingSize)) & 1u;
    if (!set || prevSet) continue;  // not the start of a run
    bool touchesCommon = false;
    for (int j = i; (mask >> (j % kRingSize)) & 1u; ++j) {
      const int idx = j % kRingSize;
      if (idx == 0 || idx == 4) {
        touchesCommon = true;
        break;
      }
    }
    if (!touchesCommon) return false;
  }
  return true;
}

bool property2Holds(std::uint8_t mask) noexcept {
  if ((mask & kCommonMask) != 0) return false;  // requires S = ∅
  const std::uint8_t sideL = mask & 0b0000'1110;  // idx 1..3 (N(ℓ) side)
  const std::uint8_t sideR = mask & 0b1110'0000;  // idx 5..7 (N(ℓ') side)
  if (sideL == 0 || sideR == 0) return false;
  // On the 3-cell path {1,2,3} the only disconnected occupied pattern is
  // {1,3} without 2; likewise {5,7} without 6.
  if (sideL == 0b0000'1010) return false;
  if (sideR == 0b1010'0000) return false;
  return true;
}

MoveEvaluation evaluateMove(const system::ParticleSystem& sys, TriPoint l,
                            Direction d) {
  MoveEvaluation eval;
  const TriPoint target = lattice::neighbor(l, d);
  if (sys.occupiedNear(target)) {
    eval.targetOccupied = true;
    return eval;
  }
  eval.mask = ringMask(sys, l, d);
  // One 4-byte load instead of two popcounts and two O(ring²) scans; the
  // table entries are exhaustively validated against property1Holds /
  // property2Holds for all 256 masks by the test suite.
  const MoveTableEntry& entry = moveTableEntry(eval.mask);
  eval.eBefore = entry.eBefore;
  eval.eAfter = entry.eAfter;
  eval.gapOk = (entry.flags & kMoveGapOk) != 0;
  eval.property1 = (entry.flags & kMoveProperty1) != 0;
  eval.property2 = (entry.flags & kMoveProperty2) != 0;
  eval.propertyOk = eval.property1 || eval.property2;
  return eval;
}

}  // namespace sops::core
