#include "core/properties.hpp"

namespace sops::core {

std::uint8_t ringMask(const system::ParticleSystem& sys, TriPoint l, Direction d) {
  return ringMask(l, d, [&sys](TriPoint p) { return sys.occupied(p); });
}

bool property1Holds(std::uint8_t mask) noexcept {
  if ((mask & kCommonMask) == 0) return false;  // S is empty
  if (mask == 0xFF) return true;                // single all-ring arc
  // Every maximal cyclic run of set bits must contain idx 0 or idx 4.
  for (int i = 0; i < kRingSize; ++i) {
    const bool set = (mask >> i) & 1u;
    const bool prevSet = (mask >> ((i + kRingSize - 1) % kRingSize)) & 1u;
    if (!set || prevSet) continue;  // not the start of a run
    bool touchesCommon = false;
    for (int j = i; (mask >> (j % kRingSize)) & 1u; ++j) {
      const int idx = j % kRingSize;
      if (idx == 0 || idx == 4) {
        touchesCommon = true;
        break;
      }
    }
    if (!touchesCommon) return false;
  }
  return true;
}

bool property2Holds(std::uint8_t mask) noexcept {
  if ((mask & kCommonMask) != 0) return false;  // requires S = ∅
  const std::uint8_t sideL = mask & 0b0000'1110;  // idx 1..3 (N(ℓ) side)
  const std::uint8_t sideR = mask & 0b1110'0000;  // idx 5..7 (N(ℓ') side)
  if (sideL == 0 || sideR == 0) return false;
  // On the 3-cell path {1,2,3} the only disconnected occupied pattern is
  // {1,3} without 2; likewise {5,7} without 6.
  if (sideL == 0b0000'1010) return false;
  if (sideR == 0b1010'0000) return false;
  return true;
}

MoveEvaluation evaluateMove(const system::ParticleSystem& sys, TriPoint l,
                            Direction d) {
  MoveEvaluation eval;
  const TriPoint target = lattice::neighbor(l, d);
  if (sys.occupied(target)) {
    eval.targetOccupied = true;
    return eval;
  }
  eval.mask = ringMask(sys, l, d);
  eval.eBefore = neighborsBefore(eval.mask);
  eval.eAfter = neighborsAfter(eval.mask);
  eval.gapOk = eval.eBefore != 5;
  eval.property1 = property1Holds(eval.mask);
  eval.property2 = property2Holds(eval.mask);
  eval.propertyOk = eval.property1 || eval.property2;
  return eval;
}

}  // namespace sops::core
