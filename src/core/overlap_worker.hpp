#ifndef SOPS_CORE_OVERLAP_WORKER_HPP
#define SOPS_CORE_OVERLAP_WORKER_HPP

/// \file overlap_worker.hpp
/// One persistent helper thread that runs one submitted job at a time.
///
/// The sharded runners use it to overlap the serial (time, particle)-sorted
/// halo sweep with the next epoch's batched clock draws: the sweep is the
/// Amdahl serial fraction, and the draws depend only on the clock streams
/// (never on particle positions), so they can proceed concurrently without
/// touching shared state.  A persistent thread — rather than a spawn per
/// epoch — keeps the per-epoch cost at one mutex/condvar handshake.

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

#include "util/assert.hpp"

namespace sops::core {

class OverlapWorker {
 public:
  OverlapWorker() : thread_(&OverlapWorker::loop, this) {}
  OverlapWorker(const OverlapWorker&) = delete;
  OverlapWorker& operator=(const OverlapWorker&) = delete;

  ~OverlapWorker() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  /// Hands `job` to the helper thread.  At most one job may be in flight:
  /// wait() must be called before the next submit.
  void submit(std::function<void()> job) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      SOPS_REQUIRE(!job_ && !running_, "OverlapWorker: job already in flight");
      job_ = std::move(job);
    }
    cv_.notify_all();
  }

  /// Blocks until the in-flight job (if any) finishes; rethrows any
  /// exception the job raised.
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !job_ && !running_; });
    if (error_) {
      std::rethrow_exception(std::exchange(error_, nullptr));
    }
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      cv_.wait(lock, [this] { return stop_ || static_cast<bool>(job_); });
      if (stop_) return;
      std::function<void()> job = std::move(job_);
      job_ = nullptr;
      running_ = true;
      lock.unlock();
      std::exception_ptr error;
      try {
        job();
      } catch (...) {
        error = std::current_exception();
      }
      lock.lock();
      running_ = false;
      if (error) error_ = error;
      cv_.notify_all();
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::function<void()> job_;
  bool running_ = false;
  bool stop_ = false;
  std::exception_ptr error_;
  std::thread thread_;  // last member: starts after the state above exists
};

}  // namespace sops::core

#endif  // SOPS_CORE_OVERLAP_WORKER_HPP
