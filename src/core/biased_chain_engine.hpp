#ifndef SOPS_CORE_BIASED_CHAIN_ENGINE_HPP
#define SOPS_CORE_BIASED_CHAIN_ENGINE_HPP

/// \file biased_chain_engine.hpp
/// The generalized weight-model chain engine.
///
/// The paper's chain M is one member of a family of biased lattice chains
/// that differ only in the weight function w(σ) (the conclusion's pointer
/// to separation [9]; the alignment line of Kedia–Oh–Randall continues it).
/// Every member shares the same hot loop: draw a particle and direction,
/// test the target cell, gather the 8-cell ring, classify the move by the
/// 256-entry structural table, and Metropolis-filter with a per-move
/// threshold.  BiasedChainEngine<Model> owns that loop — bitboard
/// occupancy, precomputed decision table, lazy uniform draws — and defers
/// to the scenario model only for the *extra* weight factor of a movement
/// move and for the scenario's auxiliary move kind (color swaps,
/// orientation rotations, ...).
///
/// Contract with the model (see core/scenario_models.hpp for the three
/// shipped instances):
///
///   static constexpr bool kUniformWeight;  // w depends on e(σ) only
///   static constexpr bool kHasAuxMove;     // mixes a second move kind
///   const ChainOptions& / ChainOptions chainOptions() const;
///   void attach(const system::ParticleSystem&);      // validate + planes
///   double movementFactor(sys, particle, l, d, ringMask);  // extra w-ratio
///   void onMoved(sys, particle, from, to);           // sync aux planes
///   // only when kHasAuxMove:
///   bool auxEnabled() const;  double auxProbability() const;
///   AuxOutcome auxStep(sys, ids, rng, particle, draw6);  // draws hoisted
///   // optional: static constexpr bool kNeedsPartnerIds (default false) —
///   // when true the engine maintains a cell→particle-id plane
///   // (core/id_plane.hpp) in lockstep with accepted moves and passes it
///   // to auxStep, so partner identity is an array load instead of a
///   // hash probe.
///
/// For a kUniformWeight model the factor path compiles away entirely and
/// the step body is literally the CompressionChain step: the golden test
/// (tests/biased_engine_test.cpp) pins the compression scenario
/// draw-for-draw and outcome-for-outcome against core::CompressionChain.
///
/// The move body itself lives in the free chainEventStep() below, shared
/// with core::ShardedChainRunner (the multi-core Poissonized execution of
/// the same models, core/sharded_chain_runner.hpp) so the two execution
/// disciplines cannot drift.  The whole contract above is enforced at
/// compile time as the ChainWeightModel concept in
/// core/model_contract.hpp, which also owns AuxOutcome and the
/// ModelNeedsPartnerIds / ModelInteractionRadius traits.

#include <array>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "core/cancel.hpp"
#include "core/chain_stats.hpp"
#include "core/compression_chain.hpp"
#include "core/draw_guard.hpp"
#include "core/id_plane.hpp"
#include "core/model_contract.hpp"
#include "core/move_table.hpp"
#include "rng/random.hpp"
#include "system/metrics.hpp"
#include "system/particle_system.hpp"
#include "system/snapshot.hpp"

namespace sops::core {

struct EngineStats {
  std::uint64_t steps = 0;  ///< total steps, movement and auxiliary
  ChainStats movement;      ///< movement proposals, classified like M
  std::uint64_t auxProposed = 0;  ///< aux proposals that reached the filter
  std::uint64_t auxAccepted = 0;

  /// Adds another tally in — the sharded runner's per-stripe merge.  One
  /// definition (delegating to ChainStats::merge) so a field added here
  /// cannot be dropped by a hand-written merge in one discipline only.
  void merge(const EngineStats& other) noexcept {
    steps += other.steps;
    movement.merge(other.movement);
    auxProposed += other.auxProposed;
    auxAccepted += other.auxAccepted;
  }
};
// writeEngineStats/readEngineStats below spell out exactly nine u64
// fields (1 + ChainStats's 6 + 2).  Pinning both layouts makes "someone
// added a tally" a compile error here, next to the functions that must
// grow with it, instead of a snapshot that silently drops the new field.
static_assert(std::is_trivially_copyable_v<ChainStats> &&
              sizeof(ChainStats) == 6 * sizeof(std::uint64_t));
static_assert(std::is_trivially_copyable_v<EngineStats> &&
              sizeof(EngineStats) == 9 * sizeof(std::uint64_t));

/// Snapshot round-trip of the engine's outcome tallies (every field of
/// EngineStats/ChainStats explicitly, so a field added there without a
/// snapshot bump fails the reader's finish() check in tests).
inline void writeEngineStats(system::SnapshotWriter& w, const EngineStats& s) {
  w.u64(s.steps);
  w.u64(s.movement.steps);
  w.u64(s.movement.accepted);
  w.u64(s.movement.targetOccupied);
  w.u64(s.movement.rejectedGap);
  w.u64(s.movement.rejectedProperty);
  w.u64(s.movement.rejectedFilter);
  w.u64(s.auxProposed);
  w.u64(s.auxAccepted);
}

[[nodiscard]] inline EngineStats readEngineStats(system::SnapshotReader& r) {
  EngineStats s;
  s.steps = r.u64();
  s.movement.steps = r.u64();
  s.movement.accepted = r.u64();
  s.movement.targetOccupied = r.u64();
  s.movement.rejectedGap = r.u64();
  s.movement.rejectedProperty = r.u64();
  s.movement.rejectedFilter = r.u64();
  s.auxProposed = r.u64();
  s.auxAccepted = r.u64();
  return s;
}

/// What one engine step did; `movement` is meaningful iff !wasAux.
struct EngineStepResult {
  bool wasAux = false;
  StepOutcome movement = StepOutcome::Accepted;
  AuxOutcome aux = AuxOutcome::Skipped;
};

/// One chain event, given the already-hoisted draws: the move body shared
/// verbatim by BiasedChainEngine::step() (which selects the particle
/// uniformly from its single RNG) and ShardedChainRunner (which selects it
/// by Poisson clock and draws from the particle's private coin stream).
/// Updates system/model/ids, adds an accepted movement's e-delta to
/// `edges`, and draws the Metropolis uniform lazily from `rng`.  Outcome
/// accounting is left to the caller so stripe workers can tally locally.
template <typename Model>
  requires ChainWeightModel<Model>
EngineStepResult chainEventStep(system::ParticleSystem& sys, Model& model,
                                ParticleIdPlane& ids,
                                const std::array<MoveDecision, 256>& decisions,
                                bool greedy, std::size_t particle, int draw6,
                                bool auxMove, rng::Random& rng,
                                std::int64_t& edges) {
  EngineStepResult result;
  if constexpr (Model::kHasAuxMove) {
    if (auxMove) {
      result.wasAux = true;
      result.aux = model.auxStep(sys, ids, rng, particle, draw6);
      return result;
    }
  } else {
    (void)auxMove;
  }

  // Movement move: steps 1–2 of Algorithm M, shared by every scenario.
  const Direction d = lattice::directionFromIndex(draw6);
  const TriPoint l = sys.position(particle);
  StepOutcome outcome;
  if (sys.occupiedNear(lattice::neighbor(l, d))) {
    outcome = StepOutcome::TargetOccupied;
  } else {
    const std::uint8_t mask = sys.ringMask(l, d);
    const MoveDecision& decision = decisions[mask];
    if (decision.stage != kDecisionFilterStage) {
      outcome = static_cast<StepOutcome>(decision.stage);
    } else {
      bool accept;
      if constexpr (Model::kUniformWeight) {
        accept = decision.acceptNoDraw ||
                 (!greedy && rng.uniform() < decision.threshold);
      } else {
        // w-ratio = λ^{e'−e} (table) × the scenario's extra factor
        // (plane gathers + a power table — no std::pow on this path).
        const double threshold =
            decision.threshold * model.movementFactor(sys, particle, l, d,
                                                      mask);
        accept = threshold >= 1.0 || rng.uniform() < threshold;
      }
      if (accept) {
        const TriPoint target = lattice::neighbor(l, d);
        sys.moveParticle(particle, target);
        edges += decision.delta;
        model.onMoved(sys, particle, l, target);
        if constexpr (ModelNeedsPartnerIds<Model>::value) {
          // A flat regrow inside moveParticle invalidates a Flat mirror;
          // the geometry fingerprint catches it and resyncs.  A Paged
          // plane keys absolute coordinates, so it tracks the move even
          // when the grid just grew a tile.
          if (ids.tracksMoves(sys.grid())) {
            ids.move(l, target, particle);
          } else {
            ids.sync(sys);
          }
        }
        outcome = StepOutcome::Accepted;
      } else {
        outcome = StepOutcome::RejectedFilter;
      }
    }
  }
  result.movement = outcome;
  return result;
}

template <typename Model>
  requires ChainWeightModel<Model>
class BiasedChainEngine {
 public:
  BiasedChainEngine(system::ParticleSystem initial, Model model,
                    std::uint64_t seed)
      : system_(std::move(initial)), model_(std::move(model)), rng_(seed) {
    particleCount32_ = checkedParticleDrawBound(system_.size());
    const ChainOptions options = model_.chainOptions();
    SOPS_REQUIRE(options.lambda > 0.0, "lambda must be positive");
    SOPS_REQUIRE(Model::kUniformWeight || !options.greedy,
                 "greedy mode is only defined for the uniform-weight model");
    greedy_ = options.greedy;
    SOPS_REQUIRE(system::isConnected(system_),
                 "engine requires a connected starting configuration");
    model_.attach(system_);
    if constexpr (kMaintainsIds) partnerIds_.sync(system_);
    edges_ = system::countEdges(system_);
    // The exact fold CompressionChain uses — one shared implementation, so
    // the ablation semantics cannot drift between chain and engine.
    decisions_ = buildDecisionTable(options);
  }

  EngineStepResult step() {
    ++stats_.steps;
    EngineStepResult result;
    // Both move kinds open with the same draws — a uniform particle and a
    // uniform 6-way value (direction / orientation).  Hoisting them above
    // the move-kind branch keeps the serially dependent RNG chain out of
    // the mispredict shadow of a ~fair coin (measurably faster at
    // swapProbability = 0.5) without changing the draw order.
    bool auxMove = false;
    if constexpr (Model::kHasAuxMove) {
      auxMove = model_.auxEnabled() && rng_.bernoulli(model_.auxProbability());
    }
    const auto particle =
        static_cast<std::size_t>(rng_.below(particleCount32_));
    const int draw6 = static_cast<int>(rng_.below(6));
    result = chainEventStep(system_, model_, partnerIds_, decisions_, greedy_,
                            particle, draw6, auxMove, rng_, edges_);
    if (result.wasAux) {
      if (result.aux != AuxOutcome::Skipped) ++stats_.auxProposed;
      if (result.aux == AuxOutcome::Accepted) ++stats_.auxAccepted;
    } else {
      stats_.movement.record(result.movement);
    }
    return result;
  }

  void run(std::uint64_t iterations) {
    for (std::uint64_t i = 0; i < iterations; ++i) step();
  }

  /// Runs `iterations` steps, invoking callback(done) every
  /// `checkpointEvery` steps (and once at the end if not aligned).  With a
  /// cancel token installed, the loop returns early at burst granularity
  /// once the token trips — steps already taken are exactly the steps the
  /// sequential chain would have taken uninterrupted (sub-bursting is
  /// draw-for-draw identical), so a snapshot at the cancel point resumes
  /// the identical trajectory.
  template <typename Callback>
  void runWithCheckpoints(std::uint64_t iterations,
                          std::uint64_t checkpointEvery, Callback&& callback,
                          const CancelToken* cancel = nullptr) {
    SOPS_REQUIRE(checkpointEvery > 0, "checkpointEvery must be positive");
    std::uint64_t done = 0;
    while (done < iterations) {
      if (isCancelled(cancel)) return;
      const std::uint64_t burst = std::min(checkpointEvery, iterations - done);
      for (std::uint64_t i = 0; i < burst; ++i) step();
      done += burst;
      callback(done);
    }
  }

  [[nodiscard]] const system::ParticleSystem& system() const noexcept {
    return system_;
  }
  [[nodiscard]] const Model& model() const noexcept { return model_; }
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }

  /// Current e(σ), maintained incrementally from the decision table's δ.
  [[nodiscard]] std::int64_t edges() const noexcept { return edges_; }

  /// p = 3n − e − 3, exact whenever the configuration is hole-free
  /// (Lemma 2.3; hole-freeness is absorbing under the movement rules).
  [[nodiscard]] std::int64_t perimeterIfHoleFree() const noexcept {
    return 3 * static_cast<std::int64_t>(system_.size()) - edges_ - 3;
  }

  /// Serializes the engine's evolving state: system (with exact window
  /// geometry), model aux state, RNG engine state, outcome tallies, and
  /// the incrementally tracked e(σ).  Derived structures (decision table,
  /// shadow planes, id plane) are rebuilt on restore.
  void saveState(system::SnapshotWriter& w) const {
    system::writeParticleSystem(w, system_);
    model_.serialize(w);
    system::writeRandom(w, rng_);
    writeEngineStats(w, stats_);
    w.i64(edges_);
  }

  /// Inverse of saveState on an engine constructed from the same spec
  /// (same model options/seed/greedy flag — the caller checks that; this
  /// cross-checks the restored e(σ) against a fresh recount so corrupt
  /// aux state cannot slip through).  The restored engine continues the
  /// snapshotted trajectory draw-for-draw.
  void restoreState(system::SnapshotReader& r) {
    system_ = system::readParticleSystem(r);
    model_.deserialize(r);
    rng_ = system::readRandom(r);
    stats_ = readEngineStats(r);
    edges_ = r.i64();
    particleCount32_ = checkedParticleDrawBound(system_.size());
    model_.attach(system_);
    if constexpr (kMaintainsIds) {
      // The restored window geometry can equal the stale fingerprint
      // (e.g. a run that never drifted out of its initial window), so a
      // plain sync() would keep pre-restore ids.
      partnerIds_.invalidate();
      partnerIds_.sync(system_);
    }
    SOPS_REQUIRE(system::countEdges(system_) == edges_,
                 "snapshot: restored edge count disagrees with the "
                 "configuration — corrupt or mismatched snapshot");
  }

 private:
  static constexpr bool kMaintainsIds = ModelNeedsPartnerIds<Model>::value;

  system::ParticleSystem system_;
  Model model_;
  rng::Random rng_;
  EngineStats stats_;
  std::int64_t edges_ = 0;
  std::uint32_t particleCount32_ = 0;
  bool greedy_ = false;
  /// cell → id mirror for models that declare kNeedsPartnerIds; empty and
  /// untouched otherwise.
  ParticleIdPlane partnerIds_;
  std::array<MoveDecision, 256> decisions_;
};

}  // namespace sops::core

#endif  // SOPS_CORE_BIASED_CHAIN_ENGINE_HPP
