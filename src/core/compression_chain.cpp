#include "core/compression_chain.hpp"

#include "core/draw_guard.hpp"
#include "system/metrics.hpp"

namespace sops::core {

namespace {
bool propertyPasses(const MoveEvaluation& eval,
                    const ChainOptions& options) noexcept {
  if (!options.enforceProperties) return true;
  return eval.property1 || (options.allowProperty2 && eval.property2);
}
}  // namespace

std::array<MoveDecision, 256> buildDecisionTable(const ChainOptions& options) {
  // Fold the static move table, the ablation switches, and λ into one
  // 256-entry decision table: Algorithm M's whole per-proposal branch
  // ladder becomes a single indexed load.
  std::array<MoveDecision, 256> decisions;
  const auto& table = moveTable();
  for (int m = 0; m < 256; ++m) {
    const MoveTableEntry& entry = table[static_cast<std::size_t>(m)];
    MoveDecision& decision = decisions[static_cast<std::size_t>(m)];
    decision.delta = entry.delta;
    decision.threshold = lambdaPower(options.lambda, entry.delta);
    // The structural stage comes from the constexpr fold proven in the
    // header; only the λ-dependent threshold is computed here.
    decision.stage =
        decisionStage(entry, options.enforceGapCondition,
                      options.enforceProperties, options.allowProperty2);
    decision.acceptNoDraw =
        options.greedy ? entry.delta >= 0 : decision.threshold >= 1.0;
  }
  return decisions;
}

double acceptanceProbability(const MoveEvaluation& eval,
                             const ChainOptions& options) noexcept {
  if (eval.targetOccupied) return 0.0;
  if (options.enforceGapCondition && !eval.gapOk) return 0.0;
  if (!propertyPasses(eval, options)) return 0.0;
  if (options.greedy) return eval.eAfter >= eval.eBefore ? 1.0 : 0.0;
  // lambdaPower is the single λ^δ implementation shared with the chain's
  // decision table, so this function and step() agree exactly.
  const double ratio = lambdaPower(options.lambda, eval.eAfter - eval.eBefore);
  return ratio >= 1.0 ? 1.0 : ratio;
}

CompressionChain::CompressionChain(system::ParticleSystem initial,
                                   ChainOptions options, std::uint64_t seed)
    : system_(std::move(initial)), options_(options), rng_(seed) {
  SOPS_REQUIRE(options_.lambda > 0.0, "lambda must be positive");
  // Particle selection draws 32-bit uniforms; the count is conserved by M,
  // so one construction-time guard protects every step() from sampling a
  // truncated prefix of a ≥2³²-particle system.
  particleCount32_ = checkedParticleDrawBound(system_.size());
  SOPS_REQUIRE(system::isConnected(system_),
               "M requires a connected starting configuration (paper §3.1)");
  edges_ = system::countEdges(system_);
  decisions_ = buildDecisionTable(options_);
}

void CompressionChain::applyAccepted(std::size_t particle, TriPoint l,
                                     Direction d,
                                     const MoveDecision& decision) {
  const TriPoint target = lattice::neighbor(l, d);
  system_.moveParticle(particle, target);
  edges_ += decision.delta;
  lastMove_ = MoveRecord{particle, l, target};
}

StepOutcome CompressionChain::step() {
  // Step 1-2 of Algorithm M: uniform particle, uniform neighboring location.
  const auto particle = static_cast<std::size_t>(rng_.below(particleCount32_));
  const Direction d =
      lattice::directionFromIndex(static_cast<int>(rng_.below(6)));

  const TriPoint l = system_.position(particle);
  StepOutcome outcome;
  if (system_.occupiedNear(lattice::neighbor(l, d))) {
    outcome = StepOutcome::TargetOccupied;
  } else {
    const std::uint8_t mask = ringMask(system_, l, d);
    const MoveDecision& decision = decisions_[mask];
    if (decision.stage != kFilterStage) {
      outcome = static_cast<StepOutcome>(decision.stage);
    } else {
      // Draw q lazily: distributionally identical to Algorithm M's step 2,
      // and draw-for-draw identical to the reference branch ladder (no
      // uniform is consumed when the threshold ≥ 1 or in greedy mode).
      const bool accept =
          decision.acceptNoDraw ||
          (!options_.greedy && rng_.uniform() < decision.threshold);
      if (accept) {
        applyAccepted(particle, l, d, decision);
        outcome = StepOutcome::Accepted;
      } else {
        outcome = StepOutcome::RejectedFilter;
      }
    }
  }
  stats_.record(outcome);
  return outcome;
}

void CompressionChain::run(std::uint64_t iterations) {
  for (std::uint64_t i = 0; i < iterations; ++i) step();
}

StepOutcome CompressionChain::applyProposal(std::size_t particle, Direction d,
                                            double q) {
  SOPS_REQUIRE(particle < system_.size(), "applyProposal: bad particle");
  const TriPoint l = system_.position(particle);
  StepOutcome outcome;
  if (system_.occupiedNear(lattice::neighbor(l, d))) {
    outcome = StepOutcome::TargetOccupied;
  } else {
    const std::uint8_t mask = ringMask(system_, l, d);
    const MoveDecision& decision = decisions_[mask];
    if (decision.stage != kFilterStage) {
      outcome = static_cast<StepOutcome>(decision.stage);
    } else if (options_.greedy ? decision.acceptNoDraw
                               : q < decision.threshold) {
      applyAccepted(particle, l, d, decision);
      outcome = StepOutcome::Accepted;
    } else {
      outcome = StepOutcome::RejectedFilter;
    }
  }
  stats_.record(outcome);
  return outcome;
}

}  // namespace sops::core
