#include "core/compression_chain.hpp"

#include <cmath>

#include "system/metrics.hpp"

namespace sops::core {

namespace {
bool propertyPasses(const MoveEvaluation& eval, const ChainOptions& options) noexcept {
  if (!options.enforceProperties) return true;
  return eval.property1 || (options.allowProperty2 && eval.property2);
}
}  // namespace

double acceptanceProbability(const MoveEvaluation& eval,
                             const ChainOptions& options) noexcept {
  if (eval.targetOccupied) return 0.0;
  if (options.enforceGapCondition && !eval.gapOk) return 0.0;
  if (!propertyPasses(eval, options)) return 0.0;
  if (options.greedy) return eval.eAfter >= eval.eBefore ? 1.0 : 0.0;
  const double ratio =
      std::pow(options.lambda, static_cast<double>(eval.eAfter - eval.eBefore));
  return ratio >= 1.0 ? 1.0 : ratio;
}

CompressionChain::CompressionChain(system::ParticleSystem initial,
                                   ChainOptions options, std::uint64_t seed)
    : system_(std::move(initial)), options_(options), rng_(seed) {
  SOPS_REQUIRE(options_.lambda > 0.0, "lambda must be positive");
  SOPS_REQUIRE(!system_.empty(), "chain requires at least one particle");
  SOPS_REQUIRE(system::isConnected(system_),
               "M requires a connected starting configuration (paper §3.1)");
  edges_ = system::countEdges(system_);
  for (int delta = -5; delta <= 5; ++delta) {
    lambdaPow_[delta + 5] = std::pow(options_.lambda, delta);
  }
}

StepOutcome CompressionChain::step() {
  // Step 1-2 of Algorithm M: uniform particle, uniform neighboring location.
  const auto particle =
      static_cast<std::size_t>(rng_.below(static_cast<std::uint32_t>(system_.size())));
  const Direction d =
      lattice::directionFromIndex(static_cast<int>(rng_.below(6)));

  const TriPoint l = system_.position(particle);
  const MoveEvaluation eval = evaluateMove(system_, l, d);

  StepOutcome outcome;
  if (eval.targetOccupied) {
    outcome = StepOutcome::TargetOccupied;
  } else if (options_.enforceGapCondition && !eval.gapOk) {
    outcome = StepOutcome::RejectedGap;
  } else if (!propertyPasses(eval, options_)) {
    outcome = StepOutcome::RejectedProperty;
  } else {
    bool accept;
    if (options_.greedy) {
      accept = eval.eAfter >= eval.eBefore;
    } else {
      const double threshold = lambdaPow_[eval.eAfter - eval.eBefore + 5];
      // Draw q lazily: distributionally identical to Algorithm M's step 2.
      accept = threshold >= 1.0 || rng_.uniform() < threshold;
    }
    if (accept) {
      const TriPoint target = lattice::neighbor(l, d);
      system_.moveParticle(particle, target);
      edges_ += eval.eAfter - eval.eBefore;
      lastMove_ = MoveRecord{particle, l, target};
      outcome = StepOutcome::Accepted;
    } else {
      outcome = StepOutcome::RejectedFilter;
    }
  }
  stats_.record(outcome);
  return outcome;
}

void CompressionChain::run(std::uint64_t iterations) {
  for (std::uint64_t i = 0; i < iterations; ++i) step();
}

StepOutcome CompressionChain::applyProposal(std::size_t particle, Direction d,
                                            double q) {
  SOPS_REQUIRE(particle < system_.size(), "applyProposal: bad particle");
  const TriPoint l = system_.position(particle);
  const MoveEvaluation eval = evaluateMove(system_, l, d);

  StepOutcome outcome;
  if (eval.targetOccupied) {
    outcome = StepOutcome::TargetOccupied;
  } else if (options_.enforceGapCondition && !eval.gapOk) {
    outcome = StepOutcome::RejectedGap;
  } else if (!propertyPasses(eval, options_)) {
    outcome = StepOutcome::RejectedProperty;
  } else if (options_.greedy ? eval.eAfter >= eval.eBefore
                             : q < lambdaPow_[eval.eAfter - eval.eBefore + 5]) {
    const TriPoint target = lattice::neighbor(l, d);
    system_.moveParticle(particle, target);
    edges_ += eval.eAfter - eval.eBefore;
    lastMove_ = MoveRecord{particle, l, target};
    outcome = StepOutcome::Accepted;
  } else {
    outcome = StepOutcome::RejectedFilter;
  }
  stats_.record(outcome);
  return outcome;
}

}  // namespace sops::core
