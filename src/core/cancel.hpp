#ifndef SOPS_CORE_CANCEL_HPP
#define SOPS_CORE_CANCEL_HPP

/// \file cancel.hpp
/// Cooperative cancellation for long runs.
///
/// A CancelToken is a shared atomic flag plus an optional wall-clock
/// deadline.  Producers (signal handlers, deadline timers, controlling
/// threads) call requestCancel(); consumers (the facade's replica loop,
/// the sharded runners' epoch loops, the engine's checkpoint loop) poll
/// cancelled() at safe points and return early with whatever progress
/// they made.  Cancellation is a *resumable abort*: the run's state stays
/// consistent, and with a snapshot-file configured the facade writes a
/// final snapshot at the cancellation point, so a cancelled run continues
/// where it stopped.  Contrast with sim::StopWhen, which is a data-driven
/// *successful* early stop (see sim/runner.hpp).
///
/// requestCancel() is async-signal-safe (a relaxed atomic store), so a
/// SIGINT/SIGTERM handler may call it on a token with static storage
/// duration.  cancelled() latches: once the deadline has passed or the
/// flag is set, every subsequent call returns true.

#include <atomic>
#include <chrono>
#include <cstdint>

namespace sops::core {

class CancelToken {
 public:
  CancelToken() noexcept = default;

  /// Trips the token.  Safe to call from a signal handler or any thread.
  void requestCancel() noexcept {
    cancelled_.store(true, std::memory_order_relaxed);
  }

  /// Arms a wall-clock deadline `ms` milliseconds from now.  cancelled()
  /// starts returning true once the deadline passes (and latches).
  void setDeadlineMs(std::int64_t ms) noexcept {
    deadlineNs_.store(nowNs() + ms * 1'000'000, std::memory_order_relaxed);
  }

  /// True once requestCancel() ran or the armed deadline passed.
  [[nodiscard]] bool cancelled() const noexcept {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const std::int64_t deadline = deadlineNs_.load(std::memory_order_relaxed);
    if (deadline != kNoDeadline && nowNs() >= deadline) {
      cancelled_.store(true, std::memory_order_relaxed);  // latch
      return true;
    }
    return false;
  }

 private:
  static constexpr std::int64_t kNoDeadline = INT64_MIN;

  [[nodiscard]] static std::int64_t nowNs() noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  mutable std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadlineNs_{kNoDeadline};
};

/// Null-safe poll: runners hold `const CancelToken*` that defaults to
/// nullptr (no cancellation installed).
[[nodiscard]] inline bool isCancelled(const CancelToken* token) noexcept {
  return token != nullptr && token->cancelled();
}

}  // namespace sops::core

#endif  // SOPS_CORE_CANCEL_HPP
