#include "core/chain_stats.hpp"

#include <sstream>

namespace sops::core {

std::string toString(StepOutcome outcome) {
  switch (outcome) {
    case StepOutcome::Accepted: return "Accepted";
    case StepOutcome::TargetOccupied: return "TargetOccupied";
    case StepOutcome::RejectedGap: return "RejectedGap";
    case StepOutcome::RejectedProperty: return "RejectedProperty";
    case StepOutcome::RejectedFilter: return "RejectedFilter";
  }
  return "Unknown";
}

std::string ChainStats::toString() const {
  std::ostringstream out;
  out << "steps=" << steps << " accepted=" << accepted
      << " targetOccupied=" << targetOccupied << " rejectedGap=" << rejectedGap
      << " rejectedProperty=" << rejectedProperty
      << " rejectedFilter=" << rejectedFilter << " acceptance="
      << acceptanceRate();
  return out.str();
}

}  // namespace sops::core
