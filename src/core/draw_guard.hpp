#ifndef SOPS_CORE_DRAW_GUARD_HPP
#define SOPS_CORE_DRAW_GUARD_HPP

/// \file draw_guard.hpp
/// Construction-time guard for 32-bit uniform particle selection.
///
/// Every chain runner draws particles with rng::Random::below(uint32), so a
/// system of 2³² or more particles would silently sample only a truncated
/// prefix.  The particle count is conserved by all move kinds, so checking
/// once at construction protects every subsequent step.  All runners
/// (CompressionChain, SeparationChain, BiasedChainEngine) share this one
/// helper so the guard cannot be forgotten by the next scenario.

#include <cstdint>
#include <limits>

#include "util/assert.hpp"

namespace sops::core {

/// Validates that `count` particles are drawable with a 32-bit uniform and
/// returns the count as the draw bound.  Throws ContractViolation for zero
/// (below(0) is undefined) and for counts that would truncate.
[[nodiscard]] inline std::uint32_t checkedParticleDrawBound(std::size_t count) {
  SOPS_REQUIRE(count > 0, "chain requires at least one particle");
  SOPS_REQUIRE(count <= std::numeric_limits<std::uint32_t>::max(),
               "particle selection is 32-bit; system too large");
  return static_cast<std::uint32_t>(count);
}

}  // namespace sops::core

#endif  // SOPS_CORE_DRAW_GUARD_HPP
