#ifndef SOPS_CORE_COMPRESSION_CHAIN_HPP
#define SOPS_CORE_COMPRESSION_CHAIN_HPP

/// \file compression_chain.hpp
/// The paper's Markov chain M for compression (Algorithm M, §3.1).
///
/// One iteration: choose a particle P at ℓ and a direction uniformly at
/// random; let ℓ' be the neighboring cell.  If ℓ' is unoccupied and
/// (1) e ≠ 5, (2) ℓ,ℓ' satisfy Property 1 or Property 2, and (3) a uniform
/// q < λ^{e'−e}, then P moves to ℓ'.  With λ > 2+√2 the stationary
/// distribution is α-compressed w.h.p. (Theorem 4.5); with λ < 2.17 it is
/// β-expanded (Theorem 5.7).
///
/// The expand/contract mechanics of the amoebot model are atomic at this
/// level (§3.2 shows the decoupled local algorithm A is equivalent); the
/// faithful two-phase implementation lives in sops::amoebot.
///
/// ChainOptions carries ablation switches (used only by bench_ablation to
/// demonstrate why each rule exists — E13 in DESIGN.md); defaults implement
/// the paper's chain exactly.

#include <array>
#include <cstdint>
#include <optional>
#include <type_traits>

#include "core/chain_stats.hpp"
#include "core/move_table.hpp"
#include "core/properties.hpp"
#include "rng/random.hpp"
#include "system/particle_system.hpp"

namespace sops::core {

struct ChainOptions {
  /// Bias parameter λ > 0.  λ > 1 favors neighbors (compression regime for
  /// λ > 2+√2); λ < 1 disfavors them.
  double lambda = 4.0;
  /// Condition (1) of step 6: forbid moves when e = 5 (prevents holes).
  bool enforceGapCondition = true;
  /// Condition (2): require Property 1 or Property 2 (keeps connectivity).
  bool enforceProperties = true;
  /// Fig 3 ablation: with Property 2 disallowed (P1 only), Ω* is no longer
  /// irreducible.  Only meaningful while enforceProperties is true.
  bool allowProperty2 = true;
  /// Zero-temperature baseline: replace the Metropolis filter with
  /// "accept iff e' ≥ e" (the λ→∞ limit).  Used by bench_ablation/baseline.
  bool greedy = false;
};

/// Probability with which M accepts a structurally valid move, per the
/// Metropolis filter (condition (3)).  Exposed so the exact
/// transition-matrix builder uses the identical kernel.
[[nodiscard]] double acceptanceProbability(
    const MoveEvaluation& eval, const ChainOptions& options) noexcept;

/// Fully resolved per-ring-mask decision, folding kMoveTable together with
/// a chain's ChainOptions and λ.  A movement step is then: occupancy test
/// for ℓ', ring-mask gather, one 16-byte load, and (only when the
/// Metropolis threshold is < 1) one lazy uniform draw — RNG draw order is
/// bit-identical to the branch-ladder reference kernel.
struct MoveDecision {
  double threshold;      ///< λ^{e'−e} (exact filter threshold)
  std::int8_t delta;     ///< e' − e
  /// StepOutcome of the structural rejection (RejectedGap /
  /// RejectedProperty), or kFilterStage when the move reaches the filter.
  std::uint8_t stage;
  /// Accept without drawing q: greedy ? e' ≥ e : threshold ≥ 1.
  bool acceptNoDraw;
};
inline constexpr std::uint8_t kDecisionFilterStage = 0xFF;
// "One 16-byte load" is a layout contract, not a figure of speech: the
// step's inner branch reads threshold/delta/stage/acceptNoDraw from one
// cache-resident row.  Pinning the size keeps a well-meaning field
// addition from silently doubling the table's cache footprint.
static_assert(std::is_trivially_copyable_v<MoveDecision> &&
              sizeof(MoveDecision) == 16);

/// The structural half of a decision — which rejection stage a mask stops
/// at, or kDecisionFilterStage if it reaches the Metropolis filter —
/// folded from a move-table entry and the ablation switches.  constexpr
/// and shared with buildDecisionTable, so the proofs below cover the very
/// fold the runtime table is built from.  (The numeric half — threshold =
/// λ^δ via lambdaPower — deliberately stays runtime: std::pow is not a
/// constant expression and must not be reimplemented even a ulp apart.)
[[nodiscard]] constexpr std::uint8_t decisionStage(
    const MoveTableEntry& entry, bool enforceGapCondition,
    bool enforceProperties, bool allowProperty2) noexcept {
  const bool propertyOk = !enforceProperties ||
                          (entry.flags & kMoveProperty1) != 0 ||
                          (allowProperty2 && (entry.flags & kMoveProperty2));
  if (enforceGapCondition && (entry.flags & kMoveGapOk) == 0) {
    return static_cast<std::uint8_t>(StepOutcome::RejectedGap);
  }
  if (!propertyOk) {
    return static_cast<std::uint8_t>(StepOutcome::RejectedProperty);
  }
  return kDecisionFilterStage;
}

// Stage-fold proofs over all 256 masks × the ablation lattice.  The
// paper's chain (all switches on) must route a mask to the filter exactly
// when the move table says it is structurally valid, blame e = 5 before
// blaming the properties (the StepOutcome histogram tests depend on that
// precedence), and each ablation switch must disable exactly its own
// rejection stage.
static_assert([] {
  constexpr auto kGap =
      static_cast<std::uint8_t>(StepOutcome::RejectedGap);
  constexpr auto kProp =
      static_cast<std::uint8_t>(StepOutcome::RejectedProperty);
  for (int m = 0; m < 256; ++m) {
    const MoveTableEntry& e = kMoveTable[static_cast<std::size_t>(m)];
    const bool p1 = (e.flags & kMoveProperty1) != 0;
    const bool p2 = (e.flags & kMoveProperty2) != 0;
    const bool gapOk = (e.flags & kMoveGapOk) != 0;
    // Paper defaults: filter iff kMoveStructOk, gap checked first.
    const std::uint8_t full = decisionStage(e, true, true, true);
    if ((full == kDecisionFilterStage) != ((e.flags & kMoveStructOk) != 0)) {
      return false;
    }
    if (!gapOk && full != kGap) return false;
    if (gapOk && !(p1 || p2) && full != kProp) return false;
    // Fig 3 ablation: disallowing Property 2 rejects the P2-only masks.
    const std::uint8_t noP2 = decisionStage(e, true, true, false);
    if (gapOk && (noP2 == kDecisionFilterStage) != p1) return false;
    // Dropping a condition must never introduce its rejection stage.
    if (decisionStage(e, false, true, true) == kGap) return false;
    if (decisionStage(e, true, false, true) == kProp) return false;
    // With both structural conditions off, everything reaches the filter.
    if (decisionStage(e, false, false, true) != kDecisionFilterStage) {
      return false;
    }
  }
  return true;
}(), "decision-stage fold must match the move table across the ablation "
     "switches");

/// Builds the 256-entry decision table for the given options — the single
/// fold shared by CompressionChain and BiasedChainEngine, so the ablation
/// semantics cannot drift between the chain and the engine scenarios.
[[nodiscard]] std::array<MoveDecision, 256> buildDecisionTable(
    const ChainOptions& options);

class CompressionChain {
 public:
  /// A record of the last accepted move, for invariant instrumentation.
  struct MoveRecord {
    std::size_t particle;
    TriPoint from;
    TriPoint to;
  };

  CompressionChain(system::ParticleSystem initial, ChainOptions options,
                   std::uint64_t seed);

  /// Runs a single iteration of M.
  StepOutcome step();

  /// Runs `iterations` steps.
  void run(std::uint64_t iterations);

  /// Runs `iterations` steps, invoking callback(iterationsDone) after every
  /// `checkpointEvery` steps (and once at the end if not aligned).
  template <typename Callback>
  void runWithCheckpoints(std::uint64_t iterations,
                          std::uint64_t checkpointEvery,
                          Callback&& callback) {
    SOPS_REQUIRE(checkpointEvery > 0, "checkpointEvery must be positive");
    std::uint64_t done = 0;
    while (done < iterations) {
      const std::uint64_t burst = std::min(checkpointEvery, iterations - done);
      for (std::uint64_t i = 0; i < burst; ++i) step();
      done += burst;
      callback(done);
    }
  }

  [[nodiscard]] const system::ParticleSystem& system() const noexcept {
    return system_;
  }
  [[nodiscard]] const ChainStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ChainOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] std::uint64_t iterations() const noexcept {
    return stats_.steps;
  }

  /// Current e(σ), maintained incrementally from move deltas — O(1) per
  /// step instead of O(n) recounts.  Tests verify it against
  /// system::countEdges along full trajectories.
  [[nodiscard]] std::int64_t edges() const noexcept { return edges_; }

  /// Current perimeter via Lemma 2.3 (p = 3n − e − 3), valid whenever the
  /// configuration is hole-free — which is absorbing (Lemma 3.2), so after
  /// a hole-free start this is always exact under the paper's rules.
  [[nodiscard]] std::int64_t perimeterIfHoleFree() const noexcept {
    return 3 * static_cast<std::int64_t>(system_.size()) - edges_ - 3;
  }

  /// Last accepted move, if any step has accepted yet.
  [[nodiscard]] const std::optional<MoveRecord>& lastMove() const noexcept {
    return lastMove_;
  }

  /// Deterministic single-proposal entry point for tests: evaluates the
  /// proposal (particle, d) and applies it iff valid and q < λ^{e'-e}.
  StepOutcome applyProposal(std::size_t particle, Direction d, double q);

 private:
  static constexpr std::uint8_t kFilterStage = kDecisionFilterStage;

  /// Applies an accepted move of `particle` along the decided delta.
  void applyAccepted(std::size_t particle, TriPoint l, Direction d,
                     const MoveDecision& decision);

  system::ParticleSystem system_;
  ChainOptions options_;
  rng::Random rng_;
  ChainStats stats_;
  std::optional<MoveRecord> lastMove_;
  std::int64_t edges_ = 0;
  std::uint32_t particleCount32_ = 0;
  std::array<MoveDecision, 256> decisions_;
};

}  // namespace sops::core

#endif  // SOPS_CORE_COMPRESSION_CHAIN_HPP
