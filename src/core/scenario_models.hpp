#ifndef SOPS_CORE_SCENARIO_MODELS_HPP
#define SOPS_CORE_SCENARIO_MODELS_HPP

/// \file scenario_models.hpp
/// The three shipped weight models for BiasedChainEngine.
///
///   CompressionModel  w(σ) = λ^{e(σ)}            (the paper's chain M)
///   SeparationModel   w(σ) = λ^{e(σ)} γ^{hom(σ)}  (two colors, [9])
///   AlignmentModel    w(σ) = λ^{e(σ)} κ^{ali(σ)}  (6-state orientations,
///                                                  à la Kedia–Oh–Randall)
///
/// hom(σ) counts monochromatic induced edges, ali(σ) counts induced edges
/// whose endpoints carry the same lattice orientation.  Both extra terms
/// are *local*: a movement move changes them only through the 8-cell ring
/// of the move, and an auxiliary move (color swap / orientation rotation)
/// only through the 6-cell neighborhoods of the touched particles.  The
/// models therefore keep **shadow bit planes** — one BitGrid per color /
/// orientation class, allocated with the exact geometry of the system's
/// occupancy window (BitGrid::allocateLike) — so every Δhom / Δali is one
/// or two word gathers, and every Metropolis threshold is a load from an
/// 11/13/21-entry power table built with the shared core::lambdaPower.
/// No std::pow and no hash probe runs on the accept path.
///
/// When the system degrades to its sparse hash index (window cap), the
/// models degrade with it: neighbor classes are then resolved through
/// particleAt().  tests/biased_engine_test.cpp pins the dense and sparse
/// paths to the identical trajectory.

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "core/biased_chain_engine.hpp"
#include "core/properties.hpp"
#include "system/bit_grid.hpp"
#include "system/particle_system.hpp"
#include "system/snapshot.hpp"

namespace sops::core {

/// K shadow bit planes kept geometry-aligned with a ParticleSystem's
/// occupancy grid.  sync() detects geometry changes (and the sparse
/// fallback) by fingerprinting the grid — origin/size plus the grid's
/// geometryVersion().  A flat-window change rebuilds the planes from
/// scratch — O(n), amortized by the system's own O(log drift) rebuild
/// schedule.  A *tiled* grid never rebuilds, it only allocates tiles, and
/// plane bits key absolute coordinates — so a fingerprint mismatch while
/// both sides are tiled means "new tiles only": the planes grow their
/// directories to match (ensureTilesOf) and keep their content.
template <std::size_t K>
class ShadowPlanes {
 public:
  /// True when the dense planes mirror `grid` exactly (same geometry, no
  /// rebuild pending) — the licence for the unchecked gathers below.
  [[nodiscard]] bool syncedWith(const system::BitGrid& grid) const noexcept {
    return dense_ && grid.enabled() &&
           grid.geometryVersion() == gridVersion_ &&
           grid.originX() == originX_ && grid.originY() == originY_ &&
           grid.width() == width_ && grid.height() == height_;
  }

  /// Ensures the planes mirror sys.grid(); classOf(particle) ∈ [0, K) maps
  /// each particle to its plane.  Returns false (sparse mode) when the
  /// system itself runs without a dense grid.
  template <typename ClassOf>
  bool sync(const system::ParticleSystem& sys, ClassOf&& classOf) {
    const system::BitGrid& grid = sys.grid();
    if (!grid.enabled()) {
      dense_ = false;
      return false;
    }
    if (syncedWith(grid)) return true;
    if (dense_ && grid.tiled() && planes_[0].tiled()) {
      // Tiled growth: the directory gained tiles but no bit moved (tiles
      // are absolutely anchored), so the planes just follow the directory.
      for (auto& plane : planes_) plane.ensureTilesOf(grid);
      fingerprint(grid);
      return true;
    }
    for (auto& plane : planes_) plane.allocateLike(grid);
    for (std::size_t i = 0; i < sys.size(); ++i) {
      planes_[static_cast<std::size_t>(classOf(i))].set(sys.position(i));
    }
    fingerprint(grid);
    dense_ = true;
    return true;
  }

  /// Forces the next sync() to rebuild from scratch — used after a model
  /// deserialize replaces the per-particle classes wholesale (the grid
  /// geometry alone cannot detect that).
  void invalidate() noexcept { dense_ = false; }

  [[nodiscard]] system::BitGrid& plane(std::size_t k) noexcept {
    return planes_[k];
  }
  [[nodiscard]] const system::BitGrid& plane(std::size_t k) const noexcept {
    return planes_[k];
  }

 private:
  void fingerprint(const system::BitGrid& grid) noexcept {
    originX_ = grid.originX();
    originY_ = grid.originY();
    width_ = grid.width();
    height_ = grid.height();
    gridVersion_ = grid.geometryVersion();
  }

  std::array<system::BitGrid, K> planes_;
  std::int64_t originX_ = 0;
  std::int64_t originY_ = 0;
  std::uint64_t width_ = 0;
  std::uint64_t height_ = 0;
  std::uint64_t gridVersion_ = 0;
  bool dense_ = false;
};

/// Sparse-fallback class query shared by the separation and alignment
/// models (the reference SeparationChain keeps its own copy by design):
/// neighbors of `cell` whose per-particle class equals `classValue`,
/// skipping `exclude`, resolved through the hash index.
[[nodiscard]] inline int sameClassNeighbors(
    const system::ParticleSystem& sys, std::span<const std::uint8_t> classes,
    TriPoint cell, std::uint8_t classValue, TriPoint exclude) {
  int count = 0;
  for (const Direction d : lattice::kAllDirections) {
    const TriPoint q = lattice::neighbor(cell, d);
    if (q == exclude) continue;
    const auto id = sys.particleAt(q);
    if (id.has_value() && classes[*id] == classValue) ++count;
  }
  return count;
}

/// Induced edges whose endpoints share a class — the exact hom(σ) / ali(σ)
/// recount behind both models' observables.
[[nodiscard]] inline std::int64_t sameClassEdges(
    const system::ParticleSystem& sys, std::span<const std::uint8_t> classes) {
  constexpr Direction kPositive[3] = {Direction::East, Direction::NorthEast,
                                      Direction::SouthEast};
  std::int64_t count = 0;
  for (std::size_t id = 0; id < sys.size(); ++id) {
    const TriPoint p = sys.position(id);
    for (const Direction d : kPositive) {
      const auto other = sys.particleAt(lattice::neighbor(p, d));
      if (other.has_value() && classes[*other] == classes[id]) ++count;
    }
  }
  return count;
}

// ---------------------------------------------------------------------------
// Compression: w(σ) = λ^e.  The factor path compiles away; the engine step
// is the CompressionChain step, draw-for-draw (golden-tested).

class CompressionModel {
 public:
  static constexpr bool kUniformWeight = true;
  static constexpr bool kHasAuxMove = false;
  /// A movement move reads the 8-cell ring (|Δx| ≤ 2) and writes ℓ, ℓ'
  /// (|Δx| ≤ 1); there is no pair move, so 2 columns of halo suffice.
  static constexpr int kInteractionRadius = 2;

  explicit CompressionModel(ChainOptions options) : options_(options) {}

  [[nodiscard]] const ChainOptions& chainOptions() const noexcept {
    return options_;
  }
  void attach(const system::ParticleSystem&) {}
  double movementFactor(const system::ParticleSystem&, std::size_t, TriPoint,
                        Direction, std::uint8_t) {
    return 1.0;
  }
  void onMoved(const system::ParticleSystem&, std::size_t, TriPoint, TriPoint) {
  }

  /// Snapshot hooks (Model contract): compression carries no aux state —
  /// options come from the spec and the decision table is rebuilt.
  void serialize(system::SnapshotWriter&) const {}
  void deserialize(system::SnapshotReader&) {}

 private:
  ChainOptions options_;
};

// ---------------------------------------------------------------------------
// Separation: w(σ) = λ^e γ^hom over two colors; movement moves carry the
// particle's color, and a color swap across a heterochromatic edge is the
// auxiliary move.  Reproduces extensions::SeparationChain's kernel exactly
// (same draw order, same thresholds via lambdaPower) on the fast path.

class SeparationModel {
 public:
  struct Options {
    double lambda = 4.0;  ///< compression bias (edges)
    double gamma = 4.0;   ///< homogeneity bias (monochromatic edges)
    bool enableSwaps = true;
    double swapProbability = 0.5;  ///< mixture weight of the swap move
  };

  static constexpr bool kUniformWeight = false;
  static constexpr bool kHasAuxMove = true;
  /// The swap needs the partner's identity: have the engine maintain the
  /// cell→id plane so an accepted swap costs an array load, not a hash
  /// probe (the last hash touch the accept path had).
  static constexpr bool kNeedsPartnerIds = true;
  /// The swap touches a partner one cell away (|Δx| ≤ 1) and gathers the
  /// full ring of the shared edge around it (|Δx| ≤ 2 from the activated
  /// particle), and flips the partner's color plane bit — so the sharded
  /// runner must keep one extra column of clearance beyond the movement
  /// radius for pair moves frozen mid-phase by the halo rules.
  static constexpr int kInteractionRadius = 3;
  /// Movement changes hom through ≤5 before-ring and ≤5 after-ring cells.
  static constexpr int kMaxMoveDelta = 5;
  /// A swap changes hom through ≤5 neighbors of each endpoint.
  static constexpr int kMaxSwapDelta = 10;

  SeparationModel(Options options, std::vector<std::uint8_t> colors)
      : options_(options), colors_(std::move(colors)) {
    SOPS_REQUIRE(options_.lambda > 0.0 && options_.gamma > 0.0,
                 "biases must be positive");
    SOPS_REQUIRE(
        options_.swapProbability >= 0.0 && options_.swapProbability < 1.0,
        "swap probability must be in [0, 1)");
    for (const std::uint8_t c : colors_) {
      SOPS_REQUIRE(c <= 1, "colors are 0 or 1");
    }
    for (int delta = -kMaxMoveDelta; delta <= kMaxMoveDelta; ++delta) {
      movePow_[static_cast<std::size_t>(delta + kMaxMoveDelta)] =
          lambdaPower(options_.gamma, delta);
    }
    for (int delta = -kMaxSwapDelta; delta <= kMaxSwapDelta; ++delta) {
      swapPow_[static_cast<std::size_t>(delta + kMaxSwapDelta)] =
          lambdaPower(options_.gamma, delta);
    }
  }

  [[nodiscard]] ChainOptions chainOptions() const noexcept {
    ChainOptions chain;
    chain.lambda = options_.lambda;
    return chain;
  }

  void attach(const system::ParticleSystem& sys) {
    SOPS_REQUIRE(colors_.size() == sys.size(), "one color per particle");
    planes_.sync(sys, [this](std::size_t i) { return colors_[i]; });
  }

  /// γ^{Δhom} for the movement (l → l+d) of `particle`.  Dense: one ring
  /// gather of the particle's own color plane, two popcounts, one table
  /// load.
  double movementFactor(const system::ParticleSystem& sys, std::size_t particle,
                        TriPoint l, Direction d, std::uint8_t /*ringOcc*/) {
    const std::uint8_t color = colors_[particle];
    int delta;
    if (planes_.sync(sys, [this](std::size_t i) { return colors_[i]; })) {
      const std::uint8_t ringSame =
          planes_.plane(color).ringMaskUnchecked(l, lattice::index(d));
      delta = std::popcount(static_cast<unsigned>(ringSame & kAfterMask)) -
              std::popcount(static_cast<unsigned>(ringSame & kBeforeMask));
    } else {
      const TriPoint target = lattice::neighbor(l, d);
      delta = sameClassNeighbors(sys, colors_, target, color, l) -
              sameClassNeighbors(sys, colors_, l, color, target);
    }
    return movePow_[static_cast<std::size_t>(delta + kMaxMoveDelta)];
  }

  void onMoved(const system::ParticleSystem& sys, std::size_t particle,
               TriPoint from, TriPoint to) {
    // sync() first: a stale fingerprint means the grid rebuilt (flat) or
    // grew tiles.  After a flat rebuild the planes were reconstructed from
    // post-move positions, so the clear/set below are no-ops; after tiled
    // growth they are the move's one real update.
    if (!planes_.sync(sys, [this](std::size_t i) { return colors_[i]; })) {
      return;
    }
    system::BitGrid& plane = planes_.plane(colors_[particle]);
    plane.clear(from);
    plane.set(to);
  }

  [[nodiscard]] bool auxEnabled() const noexcept {
    return options_.enableSwaps;
  }
  [[nodiscard]] double auxProbability() const noexcept {
    return options_.swapProbability;
  }

  /// Color swap across a heterochromatic edge, accepted with
  /// min(1, γ^{Δhom}).  Dense path: the partner's color is a word load,
  /// and Δhom comes from *two edge-ring gathers* — N(p)∪N(q)\{p,q} is
  /// exactly the 8-cell ring of the edge (p, q), the two color planes
  /// partition its occupancy, and kBeforeMask/kAfterMask split it into
  /// N(p)\{q} and N(q)\{p}, so the heterochromatic p—q edge is excluded by
  /// construction.  The partner's id for an accepted swap is one load of
  /// the engine-maintained id plane (hash probe only when the plane is
  /// momentarily out of sync, e.g. right after a window regrow).
  /// (particle, draw6) are the engine's hoisted draws; draw6 is the
  /// direction of the candidate edge.
  AuxOutcome auxStep(system::ParticleSystem& sys, const ParticleIdPlane& ids,
                     rng::Random& rng, std::size_t particle, int draw6) {
    const Direction d = lattice::directionFromIndex(draw6);
    const TriPoint p = sys.position(particle);
    const TriPoint q = lattice::neighbor(p, d);
    const std::uint8_t colorP = colors_[particle];
    if (planes_.sync(sys, [this](std::size_t i) { return colors_[i]; })) {
      if (!sys.occupiedNear(q)) return AuxOutcome::Skipped;
      const std::uint8_t colorQ =
          planes_.plane(1).testUnchecked(q) ? std::uint8_t{1} : std::uint8_t{0};
      if (colorQ == colorP) return AuxOutcome::Skipped;
      const std::uint8_t ringP =
          planes_.plane(colorP).ringMaskUnchecked(p, lattice::index(d));
      const std::uint8_t ringQ =
          planes_.plane(colorQ).ringMaskUnchecked(p, lattice::index(d));
      const int before =
          std::popcount(static_cast<unsigned>(ringP & kBeforeMask)) +
          std::popcount(static_cast<unsigned>(ringQ & kAfterMask));
      const int after =
          std::popcount(static_cast<unsigned>(ringQ & kBeforeMask)) +
          std::popcount(static_cast<unsigned>(ringP & kAfterMask));
      const double threshold =
          swapPow_[static_cast<std::size_t>(after - before + kMaxSwapDelta)];
      if (threshold >= 1.0 || rng.uniform() < threshold) {
        const std::size_t other =
            ids.tracksMoves(sys.grid())
                ? static_cast<std::size_t>(ids.idAtUnchecked(q))
                : *sys.particleAt(q);
        // Position-based identity check: valid under the sharded runner's
        // index suspension, where particleAt() would read a stale index.
        SOPS_DASSERT(sys.position(other) == q);
        colors_[particle] = colorQ;
        colors_[other] = colorP;
        planes_.plane(colorP).clear(p);
        planes_.plane(colorQ).set(p);
        planes_.plane(colorQ).clear(q);
        planes_.plane(colorP).set(q);
        return AuxOutcome::Accepted;
      }
      return AuxOutcome::Rejected;
    }
    // Sparse fallback: identical decision sequence through the hash index.
    const auto other = sys.particleAt(q);
    if (!other.has_value()) return AuxOutcome::Skipped;
    const std::uint8_t colorQ = colors_[*other];
    if (colorQ == colorP) return AuxOutcome::Skipped;
    const int before = sameClassNeighbors(sys, colors_, p, colorP, q) +
                       sameClassNeighbors(sys, colors_, q, colorQ, p);
    const int after = sameClassNeighbors(sys, colors_, p, colorQ, q) +
                      sameClassNeighbors(sys, colors_, q, colorP, p);
    const double threshold =
        swapPow_[static_cast<std::size_t>(after - before + kMaxSwapDelta)];
    if (threshold >= 1.0 || rng.uniform() < threshold) {
      colors_[particle] = colorQ;
      colors_[*other] = colorP;
      return AuxOutcome::Accepted;
    }
    return AuxOutcome::Rejected;
  }

  [[nodiscard]] const Options& options() const noexcept { return options_; }
  [[nodiscard]] const std::vector<std::uint8_t>& colors() const noexcept {
    return colors_;
  }

  /// hom(σ): exact recount of monochromatic induced edges.
  [[nodiscard]] std::int64_t homogeneousEdges(
      const system::ParticleSystem& sys) const {
    return sameClassEdges(sys, colors_);
  }

  [[nodiscard]] std::size_t colorOneCount() const noexcept {
    std::size_t count = 0;
    for (const std::uint8_t c : colors_) count += c;
    return count;
  }

  /// Snapshot hooks: the colors are the model's only evolving state (the
  /// shadow planes and power tables are derived; options come from the
  /// spec).  deserialize invalidates the planes so the next sync rebuilds
  /// them from the restored colors.
  void serialize(system::SnapshotWriter& w) const { w.bytes(colors_); }
  void deserialize(system::SnapshotReader& r) {
    std::vector<std::uint8_t> colors = r.bytes();
    SOPS_REQUIRE(colors.size() == colors_.size(),
                 "snapshot: color count does not match the particle count");
    for (const std::uint8_t c : colors) {
      SOPS_REQUIRE(c <= 1, "snapshot: colors are 0 or 1");
    }
    colors_ = std::move(colors);
    planes_.invalidate();
  }

 private:
  Options options_;
  std::vector<std::uint8_t> colors_;
  ShadowPlanes<2> planes_;
  std::array<double, 2 * kMaxMoveDelta + 1> movePow_{};
  std::array<double, 2 * kMaxSwapDelta + 1> swapPow_{};
};

// ---------------------------------------------------------------------------
// Alignment: w(σ) = λ^e κ^ali over per-particle orientations in {0..5} —
// a mobile 6-state Potts/clock model (ferromagnetic for κ > 1), the
// engine's analogue of the local stochastic alignment algorithms of
// Kedia–Oh–Randall.  Movement moves carry the particle's orientation; the
// auxiliary move re-samples one particle's orientation uniformly and
// Metropolis-filters with κ^{Δali}.

class AlignmentModel {
 public:
  struct Options {
    double lambda = 4.0;  ///< compression bias (edges)
    double kappa = 4.0;   ///< alignment bias (equal-orientation edges)
    bool enableRotations = true;
    double rotationProbability = 0.5;  ///< mixture weight of the rotation move
  };

  static constexpr bool kUniformWeight = false;
  static constexpr bool kHasAuxMove = true;
  static constexpr int kOrientations = lattice::kNumDirections;
  /// The rotation itself only reads p's 6-neighborhood (|Δx| ≤ 1), but it
  /// rewrites how p reads to *other* particles' alignment gathers; keep
  /// the same pair-move clearance as the swap so a rotation of a particle
  /// frozen in a halo band can never sit inside a concurrent stripe's
  /// read set.
  static constexpr int kInteractionRadius = 3;
  static constexpr int kMaxMoveDelta = 5;
  /// A rotation changes ali through ≤6 neighbors losing the old class and
  /// ≤6 gaining the new one.
  static constexpr int kMaxRotationDelta = 6;

  AlignmentModel(Options options, std::vector<std::uint8_t> orientations)
      : options_(options), orientations_(std::move(orientations)) {
    SOPS_REQUIRE(options_.lambda > 0.0 && options_.kappa > 0.0,
                 "biases must be positive");
    SOPS_REQUIRE(options_.rotationProbability >= 0.0 &&
                     options_.rotationProbability < 1.0,
                 "rotation probability must be in [0, 1)");
    for (const std::uint8_t o : orientations_) {
      SOPS_REQUIRE(o < kOrientations, "orientations are 0..5");
    }
    for (int delta = -kMaxMoveDelta; delta <= kMaxMoveDelta; ++delta) {
      movePow_[static_cast<std::size_t>(delta + kMaxMoveDelta)] =
          lambdaPower(options_.kappa, delta);
    }
    for (int delta = -kMaxRotationDelta; delta <= kMaxRotationDelta; ++delta) {
      rotationPow_[static_cast<std::size_t>(delta + kMaxRotationDelta)] =
          lambdaPower(options_.kappa, delta);
    }
  }

  [[nodiscard]] ChainOptions chainOptions() const noexcept {
    ChainOptions chain;
    chain.lambda = options_.lambda;
    return chain;
  }

  void attach(const system::ParticleSystem& sys) {
    SOPS_REQUIRE(orientations_.size() == sys.size(),
                 "one orientation per particle");
    planes_.sync(sys, [this](std::size_t i) { return orientations_[i]; });
  }

  /// κ^{Δali} for the movement (l → l+d) of `particle`: one ring gather of
  /// the particle's own orientation plane.
  double movementFactor(const system::ParticleSystem& sys, std::size_t particle,
                        TriPoint l, Direction d, std::uint8_t /*ringOcc*/) {
    const std::uint8_t orientation = orientations_[particle];
    int delta;
    if (planes_.sync(sys, [this](std::size_t i) { return orientations_[i]; })) {
      const std::uint8_t ringSame =
          planes_.plane(orientation).ringMaskUnchecked(l, lattice::index(d));
      delta = std::popcount(static_cast<unsigned>(ringSame & kAfterMask)) -
              std::popcount(static_cast<unsigned>(ringSame & kBeforeMask));
    } else {
      const TriPoint target = lattice::neighbor(l, d);
      delta = sameClassNeighbors(sys, orientations_, target, orientation, l) -
              sameClassNeighbors(sys, orientations_, l, orientation, target);
    }
    return movePow_[static_cast<std::size_t>(delta + kMaxMoveDelta)];
  }

  void onMoved(const system::ParticleSystem& sys, std::size_t particle,
               TriPoint from, TriPoint to) {
    // See SeparationModel::onMoved: sync first, then apply (no-ops after a
    // flat rebuild, the real update after tiled growth).
    if (!planes_.sync(sys,
                      [this](std::size_t i) { return orientations_[i]; })) {
      return;
    }
    system::BitGrid& plane = planes_.plane(orientations_[particle]);
    plane.clear(from);
    plane.set(to);
  }

  [[nodiscard]] bool auxEnabled() const noexcept {
    return options_.enableRotations;
  }
  [[nodiscard]] double auxProbability() const noexcept {
    return options_.rotationProbability;
  }

  /// Orientation re-sampling: propose a uniform orientation for a uniform
  /// particle (symmetric), accept with min(1, κ^{Δali}).  The rotation
  /// touches no second particle, so the id plane goes unused (and
  /// undeclared — the engine maintains none for this model).  (particle,
  /// draw6) are the engine's hoisted draws; draw6 is the proposed
  /// orientation.
  AuxOutcome auxStep(system::ParticleSystem& sys, const ParticleIdPlane&,
                     rng::Random& rng, std::size_t particle, int draw6) {
    const auto proposed = static_cast<std::uint8_t>(draw6);
    const std::uint8_t current = orientations_[particle];
    if (proposed == current) return AuxOutcome::Skipped;
    const TriPoint p = sys.position(particle);
    int delta;
    const bool dense =
        planes_.sync(sys, [this](std::size_t i) { return orientations_[i]; });
    if (dense) {
      delta = std::popcount(static_cast<unsigned>(
                  planes_.plane(proposed).neighborMaskUnchecked(p))) -
              std::popcount(static_cast<unsigned>(
                  planes_.plane(current).neighborMaskUnchecked(p)));
    } else {
      delta = sameClassNeighbors(sys, orientations_, p, proposed, p) -
              sameClassNeighbors(sys, orientations_, p, current, p);
    }
    const double threshold =
        rotationPow_[static_cast<std::size_t>(delta + kMaxRotationDelta)];
    if (threshold >= 1.0 || rng.uniform() < threshold) {
      orientations_[particle] = proposed;
      if (dense) {
        planes_.plane(current).clear(p);
        planes_.plane(proposed).set(p);
      }
      return AuxOutcome::Accepted;
    }
    return AuxOutcome::Rejected;
  }

  [[nodiscard]] const Options& options() const noexcept { return options_; }
  [[nodiscard]] const std::vector<std::uint8_t>& orientations() const noexcept {
    return orientations_;
  }

  /// ali(σ): exact recount of equal-orientation induced edges.
  [[nodiscard]] std::int64_t alignedEdges(
      const system::ParticleSystem& sys) const {
    return sameClassEdges(sys, orientations_);
  }

  /// Snapshot hooks: orientations are the model's only evolving state.
  void serialize(system::SnapshotWriter& w) const { w.bytes(orientations_); }
  void deserialize(system::SnapshotReader& r) {
    std::vector<std::uint8_t> orientations = r.bytes();
    SOPS_REQUIRE(orientations.size() == orientations_.size(),
                 "snapshot: orientation count does not match the particle "
                 "count");
    for (const std::uint8_t o : orientations) {
      SOPS_REQUIRE(o < kOrientations, "snapshot: orientations are 0..5");
    }
    orientations_ = std::move(orientations);
    planes_.invalidate();
  }

 private:
  Options options_;
  std::vector<std::uint8_t> orientations_;
  ShadowPlanes<static_cast<std::size_t>(kOrientations)> planes_;
  std::array<double, 2 * kMaxMoveDelta + 1> movePow_{};
  std::array<double, 2 * kMaxRotationDelta + 1> rotationPow_{};
};

// Every shipped model satisfies the full contract — asserted here, next
// to the definitions, so a drifted member is reported against the model
// rather than at the first engine instantiation in some distant TU.
static_assert(ChainWeightModel<CompressionModel>);
static_assert(ChainWeightModel<SeparationModel>);
static_assert(ChainWeightModel<AlignmentModel>);

/// Engine aliases for the shipped scenarios.
using CompressionEngine = BiasedChainEngine<CompressionModel>;
using SeparationEngine = BiasedChainEngine<SeparationModel>;
using AlignmentEngine = BiasedChainEngine<AlignmentModel>;

}  // namespace sops::core

#endif  // SOPS_CORE_SCENARIO_MODELS_HPP
