#ifndef SOPS_CORE_CHAIN_STATS_HPP
#define SOPS_CORE_CHAIN_STATS_HPP

/// \file chain_stats.hpp
/// Outcome classification and counters for iterations of the Markov chain
/// M.  The outcomes mirror the order of checks in Algorithm M (§3.1): the
/// proposal's target may be occupied, then conditions (1) gap, (2)
/// properties, (3) the Metropolis filter are applied in sequence.

#include <cstdint>
#include <string>

namespace sops::core {

enum class StepOutcome : std::uint8_t {
  Accepted,          ///< particle moved to ℓ'
  TargetOccupied,    ///< ℓ' was occupied: no movement possible
  RejectedGap,       ///< condition (1) failed: e = 5
  RejectedProperty,  ///< condition (2) failed: neither Property 1 nor 2
  RejectedFilter,    ///< condition (3) failed: q ≥ λ^{e'−e}
};

struct ChainStats {
  std::uint64_t steps = 0;
  std::uint64_t accepted = 0;
  std::uint64_t targetOccupied = 0;
  std::uint64_t rejectedGap = 0;
  std::uint64_t rejectedProperty = 0;
  std::uint64_t rejectedFilter = 0;

  void record(StepOutcome outcome) noexcept {
    ++steps;
    switch (outcome) {
      case StepOutcome::Accepted: ++accepted; break;
      case StepOutcome::TargetOccupied: ++targetOccupied; break;
      case StepOutcome::RejectedGap: ++rejectedGap; break;
      case StepOutcome::RejectedProperty: ++rejectedProperty; break;
      case StepOutcome::RejectedFilter: ++rejectedFilter; break;
    }
  }

  /// Adds another tally in (outcome counts are order-independent, so
  /// per-stripe tallies merged in any fixed order give the same totals).
  void merge(const ChainStats& other) noexcept {
    steps += other.steps;
    accepted += other.accepted;
    targetOccupied += other.targetOccupied;
    rejectedGap += other.rejectedGap;
    rejectedProperty += other.rejectedProperty;
    rejectedFilter += other.rejectedFilter;
  }

  [[nodiscard]] double acceptanceRate() const noexcept {
    return steps == 0 ? 0.0
                      : static_cast<double>(accepted) /
                          static_cast<double>(steps);
  }

  [[nodiscard]] std::string toString() const;
};

[[nodiscard]] std::string toString(StepOutcome outcome);

}  // namespace sops::core

#endif  // SOPS_CORE_CHAIN_STATS_HPP
