#include "rng/xoshiro.hpp"

namespace sops::rng {

void Xoshiro256PlusPlus::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      (*this)();
    }
  }
  state_ = {s0, s1, s2, s3};
}

}  // namespace sops::rng
