// Random is header-only; this translation unit exists to anchor the module
// in the sops archive (and any future out-of-line additions).
#include "rng/random.hpp"
