#ifndef SOPS_RNG_STREAM_BANK_HPP
#define SOPS_RNG_STREAM_BANK_HPP

/// \file stream_bank.hpp
/// SoA per-particle random streams for the sharded runners.
///
/// The sharded runners used to keep one 40-byte `rng::Random` per particle
/// per lane in an AoS vector, so every event touched two scattered cache
/// lines of RNG state (clock + coin) on top of the event body.  A
/// `StreamBank` stores only the 32-byte xoshiro256++ state per stream,
/// packed and cache-line-friendly; draws materialize a register-resident
/// engine via the shared `draw*` templates in random.hpp (one definition,
/// so the banked path cannot drift bit-wise from `rng::Random`).
///
/// Seeding is `rng::particleStream(seed, i, lane)` — exactly the discipline
/// the AoS vectors used — so every draw remains a pure function of
/// (seed, particle, lane, draw index) and all pre-existing trajectories are
/// bit-identical.
///
/// `PoissonClockBank` layers the Poissonization clocks on top: per-particle
/// next-event times and (optionally heterogeneous) rates in parallel SoA
/// arrays, plus `fillEpoch`, the batched exponential-draw pass that emits a
/// whole epoch's waiting times per particle in one tight sequential sweep
/// instead of one scattered draw per event.

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "rng/random.hpp"
#include "util/assert.hpp"

namespace sops::rng {

/// One xoshiro256++ state, aligned so a single stream never straddles two
/// cache lines on a 64-byte machine (two states share one line).
struct alignas(32) EngineState {
  std::array<std::uint64_t, 4> s;
};

/// Packed per-particle streams for one lane under one master seed.
class StreamBank {
 public:
  StreamBank() = default;

  /// Seeds `count` streams as particleStream(seed, i, lane) — the seeding
  /// runs once here; afterwards only the state words are touched.
  StreamBank(std::uint64_t seed, std::size_t count, std::uint64_t lane)
      : seed_(seed) {
    states_.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      states_[i].s = particleStream(seed, i, lane).engine().state();
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return states_.size(); }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Scoped register-resident view of stream `i`: loads the state into a
  /// stack `rng::Random`, writes it back on destruction.  Lets per-event
  /// call sites keep the plain `rng::Random&` interface (chainEventStep,
  /// the models' auxStep) without templating them over an engine.
  class Use {
   public:
    Use(StreamBank& bank, std::size_t i) noexcept
        : slot_(&bank.states_[i]), rng_(slot_->s, bank.seed_) {}
    Use(const Use&) = delete;
    Use& operator=(const Use&) = delete;
    ~Use() { slot_->s = rng_.engine().state(); }

    [[nodiscard]] Random& rng() noexcept { return rng_; }

   private:
    EngineState* slot_;
    Random rng_;
  };

  [[nodiscard]] Use use(std::size_t i) noexcept { return Use(*this, i); }

  /// Raw state access for snapshot round-trips.
  [[nodiscard]] const std::array<std::uint64_t, 4>& state(
      std::size_t i) const noexcept {
    return states_[i].s;
  }
  void setState(std::size_t i,
                const std::array<std::uint64_t, 4>& state) noexcept {
    states_[i].s = state;
  }

 private:
  std::vector<EngineState> states_;
  std::uint64_t seed_ = 0;
};

/// Per-particle Poisson clocks in SoA form: engine states, next firing
/// times, and activation rates, plus the batched epoch fill.
class PoissonClockBank {
 public:
  /// Flat per-epoch draw buffer: particle i's firing times in this epoch
  /// are times[offsets[i] .. offsets[i+1]), ascending.  Reused across
  /// epochs to avoid reallocation.
  struct EpochDraws {
    std::vector<double> times;
    std::vector<std::uint64_t> offsets;  // size n + 1

    [[nodiscard]] std::size_t total() const noexcept { return times.size(); }
    [[nodiscard]] std::size_t count(std::size_t i) const noexcept {
      return static_cast<std::size_t>(offsets[i + 1] - offsets[i]);
    }
  };

  PoissonClockBank() = default;

  /// Seeds `count` clock streams on `lane` and draws each particle's first
  /// firing time — the same initial draw the AoS constructors made, so
  /// trajectories are unchanged.  `rates` empty means all rates are 1.0
  /// (the paper's uniform-activation chain); otherwise it must have one
  /// positive entry per particle.
  PoissonClockBank(std::uint64_t seed, std::size_t count, std::uint64_t lane,
                   std::vector<double> rates = {})
      : bank_(seed, count, lane), rates_(std::move(rates)) {
    SOPS_REQUIRE(rates_.empty() || rates_.size() == count,
                 "PoissonClockBank: rates size must match particle count");
    if (rates_.empty()) rates_.assign(count, 1.0);
    totalRate_ = 0.0;
    nextTime_.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      SOPS_REQUIRE(rates_[i] > 0.0,
                   "PoissonClockBank: activation rates must be positive");
      totalRate_ += rates_[i];
      Xoshiro256PlusPlus engine(bank_.state(i));
      nextTime_[i] = drawExponential(engine, rates_[i]);
      bank_.setState(i, engine.state());
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return bank_.size(); }
  [[nodiscard]] double totalRate() const noexcept { return totalRate_; }
  [[nodiscard]] double rate(std::size_t i) const noexcept { return rates_[i]; }
  [[nodiscard]] const std::vector<double>& rates() const noexcept {
    return rates_;
  }

  /// Advances every clock past `epochEnd`, recording each firing time in
  /// `out` (ascending per particle, particles in ascending id order).  This
  /// is the batched draw pass: one sequential sweep over the SoA arrays
  /// with the engine in registers, instead of a scattered random-access
  /// draw per event.  Draw-for-draw identical to the per-event AoS loop.
  void fillEpoch(double epochEnd, EpochDraws& out) {
    const std::size_t n = bank_.size();
    out.times.clear();
    out.offsets.resize(n + 1);
    out.offsets[0] = 0;
    for (std::size_t i = 0; i < n; ++i) {
      double t = nextTime_[i];
      if (t < epochEnd) {
        Xoshiro256PlusPlus engine(bank_.state(i));
        const double rate = rates_[i];
        do {
          out.times.push_back(t);
          t += drawExponential(engine, rate);
        } while (t < epochEnd);
        bank_.setState(i, engine.state());
        nextTime_[i] = t;
      }
      out.offsets[i + 1] = out.times.size();
    }
  }

  /// Raw access for snapshot round-trips (rates are construction inputs
  /// and are not part of the mutable state).
  [[nodiscard]] const std::array<std::uint64_t, 4>& state(
      std::size_t i) const noexcept {
    return bank_.state(i);
  }
  void setState(std::size_t i,
                const std::array<std::uint64_t, 4>& state) noexcept {
    bank_.setState(i, state);
  }
  [[nodiscard]] double nextTime(std::size_t i) const noexcept {
    return nextTime_[i];
  }
  void setNextTime(std::size_t i, double t) noexcept { nextTime_[i] = t; }

 private:
  StreamBank bank_;
  std::vector<double> nextTime_;
  std::vector<double> rates_;
  double totalRate_ = 0.0;
};

}  // namespace sops::rng

#endif  // SOPS_RNG_STREAM_BANK_HPP
