#ifndef SOPS_RNG_XOSHIRO_HPP
#define SOPS_RNG_XOSHIRO_HPP

/// \file xoshiro.hpp
/// xoshiro256++ pseudo-random generator (Blackman & Vigna).
///
/// The library does not use std::mt19937 because (a) the 2.5 kB state is
/// overkill for simulation streams we fork per experiment arm and (b) we
/// want bit-identical results across standard libraries.  xoshiro256++ is
/// small, fast, and passes BigCrush.

#include <array>
#include <cstdint>

namespace sops::rng {

/// Stateless seed expander (splitmix64); also used to derive independent
/// substreams from a master seed.
[[nodiscard]] constexpr std::uint64_t splitmix64(
    std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ engine.  Satisfies std::uniform_random_bit_generator.
class Xoshiro256PlusPlus {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state from a single seed via splitmix64, as
  /// recommended by the generator's authors.
  explicit Xoshiro256PlusPlus(
      std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Adopts a previously captured 256-bit state verbatim (no seeding pass).
  /// Used by the SoA stream banks, which keep only these four words per
  /// stream and materialize an engine on demand.
  explicit Xoshiro256PlusPlus(
      const std::array<std::uint64_t, 4>& state) noexcept
      : state_(state) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// The generator's canonical jump: advances the stream by 2^128 draws.
  /// Used to fork non-overlapping substreams.
  void jump() noexcept;

  /// Raw 256-bit state, for exact snapshot round-trips.  setState(state())
  /// reproduces the draw stream bit-for-bit.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const noexcept {
    return state_;
  }
  void setState(const std::array<std::uint64_t, 4>& state) noexcept {
    state_ = state;
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x,
                                                    int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

}  // namespace sops::rng

#endif  // SOPS_RNG_XOSHIRO_HPP
