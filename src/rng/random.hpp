#ifndef SOPS_RNG_RANDOM_HPP
#define SOPS_RNG_RANDOM_HPP

/// \file random.hpp
/// Simulation-facing randomness facade over xoshiro256++.
///
/// All stochastic components of the library (chain steps, Poisson clocks,
/// workload generators) draw through this class so that every experiment is
/// reproducible from a single seed and substreams can be forked without
/// correlation.

#include <cmath>
#include <cstdint>

#include "rng/xoshiro.hpp"
#include "util/assert.hpp"
#include "util/mix.hpp"

namespace sops::rng {

/// Shared draw formulas, templated over any uniform-random-bit engine
/// producing 64-bit words.  `Random` delegates to these, and the SoA stream
/// banks (stream_bank.hpp) call them directly on a register-resident
/// engine — one definition, so the two paths cannot drift bit-wise.

/// Uniform double in [0, 1) with 53 bits of precision.
template <typename Engine>
[[nodiscard]] double drawUniform(Engine& engine) noexcept {
  return static_cast<double>(engine() >> 11) * 0x1.0p-53;
}

/// Uniform double in (0, 1]; safe as an argument to log().
template <typename Engine>
[[nodiscard]] double drawUniformPositive(Engine& engine) noexcept {
  return (static_cast<double>(engine() >> 11) + 1.0) * 0x1.0p-53;
}

/// Exponential with the given rate (mean 1/rate); used by Poisson clocks.
/// Divides by rate (rather than multiplying by a cached reciprocal) so the
/// heterogeneous-rate draws stay bit-identical to the historical
/// `Random::exponential` results.
template <typename Engine>
[[nodiscard]] double drawExponential(Engine& engine,
                                     double rate = 1.0) noexcept {
  SOPS_DASSERT(rate > 0.0);
  return -std::log(drawUniformPositive(engine)) / rate;
}

/// Uniform integer in [0, bound).  Uses Lemire's multiply-shift rejection
/// method: unbiased for every bound, one division only on rejection.
template <typename Engine>
[[nodiscard]] std::uint32_t drawBelow(Engine& engine,
                                      std::uint32_t bound) noexcept {
  SOPS_DASSERT(bound > 0);
  std::uint64_t x = engine() >> 32;  // 32 uniform bits
  std::uint64_t m = x * bound;
  auto low = static_cast<std::uint32_t>(m);
  if (low < bound) {
    const std::uint32_t threshold = (0u - bound) % bound;
    while (low < threshold) {
      x = engine() >> 32;
      m = x * bound;
      low = static_cast<std::uint32_t>(m);
    }
  }
  return static_cast<std::uint32_t>(m >> 32);
}

class Random {
 public:
  explicit Random(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept
      : engine_(seed), seed_(seed) {}

  /// Adopts a captured engine state verbatim (no splitmix seeding pass).
  /// This is the cheap per-event materialization path used by
  /// `StreamBank::use`: the bank stores only the four state words per
  /// stream, and seed() reports the bank's master seed.
  Random(const std::array<std::uint64_t, 4>& engineState,
         std::uint64_t seed) noexcept
      : engine_(engineState), seed_(seed) {}

  /// Seed this generator was constructed with (for experiment logging).
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Derives an independent generator for a named substream.  Forked
  /// streams are decorrelated by hashing (seed, streamId) and jumping.
  [[nodiscard]] Random fork(std::uint64_t streamId) const noexcept {
    std::uint64_t sm = seed_ ^ (0x9e3779b97f4a7c15ULL * (streamId + 1));
    Random child(splitmix64(sm));
    child.engine_.jump();
    return child;
  }

  /// Raw 64 uniform random bits.
  std::uint64_t bits() noexcept { return engine_(); }

  /// Uniform integer in [0, bound) via Lemire rejection (see drawBelow).
  std::uint32_t below(std::uint32_t bound) noexcept {
    return drawBelow(engine_, bound);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    SOPS_DASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint32_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept { return drawUniform(engine_); }

  /// Uniform double in (0, 1]; safe as an argument to log().
  double uniformPositive() noexcept { return drawUniformPositive(engine_); }

  /// Bernoulli(p) draw.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Exponential with the given rate (mean 1/rate); used by Poisson clocks.
  double exponential(double rate = 1.0) noexcept {
    return drawExponential(engine_, rate);
  }

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = below(static_cast<std::uint32_t>(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Exposes the underlying engine for std::distributions in tests.
  [[nodiscard]] Xoshiro256PlusPlus& engine() noexcept { return engine_; }
  [[nodiscard]] const Xoshiro256PlusPlus& engine() const noexcept {
    return engine_;
  }

  /// Rebuilds a generator from a snapshotted (seed, engine state) pair.
  /// The result continues the original draw stream exactly where the
  /// snapshot captured it; seed() keeps reporting the original seed.
  [[nodiscard]] static Random fromState(
      std::uint64_t seed,
      const std::array<std::uint64_t, 4>& engineState) noexcept {
    Random r(seed);
    r.engine_.setState(engineState);
    return r;
  }

 private:
  Xoshiro256PlusPlus engine_;
  std::uint64_t seed_;
};

/// Decorrelated per-particle stream `lane` (1-based) of `particle` under a
/// master seed — the seeding discipline the sharded runners (amoebot and
/// chain) share: avalanche (seed, 2·particle + lane) through util::mix64
/// rather than fork()'s engine jump, whose ~256 state advances would
/// dominate construction at 10⁶ particles.  Every draw from the returned
/// generator is a pure function of (seed, particle, lane, draw index).
/// One shared definition so the two runners' documented common discipline
/// cannot drift.  Streams are seeded here exactly once, when a runner (or
/// its `StreamBank`) is constructed; per event the runners touch only the
/// 32-byte engine state, stored SoA in stream_bank.hpp so one stream costs
/// one cache line instead of two scattered ones.
[[nodiscard]] inline Random particleStream(std::uint64_t seed,
                                           std::uint64_t particle,
                                           std::uint64_t lane) noexcept {
  return Random(
      util::mix64(seed ^ (0x9e3779b97f4a7c15ULL * (2 * particle + lane))));
}

}  // namespace sops::rng

#endif  // SOPS_RNG_RANDOM_HPP
