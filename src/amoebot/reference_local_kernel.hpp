#ifndef SOPS_AMOEBOT_REFERENCE_LOCAL_KERNEL_HPP
#define SOPS_AMOEBOT_REFERENCE_LOCAL_KERNEL_HPP

/// \file reference_local_kernel.hpp
/// The *frozen seed implementation* of the amoebot substrate and one
/// activation of Algorithm A: occupancy through a sparse hash index only
/// (one probe chain per cell query), the N* oracle and the
/// expanded-neighbor scans as per-cell loops, properties re-derived from
/// the ring mask per activation, and the paper-order condition chain with
/// its exact RNG draw sequence.
///
/// This is the correctness and performance anchor for the optimized
/// amoebot layer (head/tail bit planes + per-λ decision table): the local
/// golden-trajectory tests assert AmoebotSystem +
/// LocalCompressionAlgorithm are draw-for-draw identical to this kernel
/// under every scheduler, and bench_local_algorithm / bench_perf measure
/// the speedup against it.  It mirrors core/reference_kernel.hpp for the
/// global chain M.  It is deliberately NOT part of any production path —
/// do not "optimize" it; change it only if Algorithm A's specified
/// semantics change, in which case the golden tests must be revisited too.

#include <cmath>
#include <cstdint>
#include <vector>

#include "amoebot/local_compression.hpp"
#include "core/properties.hpp"
#include "lattice/direction.hpp"
#include "lattice/tri_point.hpp"
#include "rng/random.hpp"
#include "system/particle_system.hpp"
#include "util/flat_hash.hpp"

namespace sops::amoebot::reference {

using lattice::Direction;
using lattice::TriPoint;

/// Seed amoebot substrate: every cell query is a hash probe into one
/// cell -> (id << 1) | isHead map; no bit planes, no precomputed gathers.
class ReferenceAmoebotSystem {
 public:
  struct CellView {
    std::int32_t particle = kEmpty;
    bool isHead = false;
    static constexpr std::int32_t kEmpty = -1;
    [[nodiscard]] bool empty() const noexcept { return particle == kEmpty; }
  };

  /// Identical construction draw order to AmoebotSystem: one below(6) and
  /// one bernoulli per particle, in particle order.
  ReferenceAmoebotSystem(const system::ParticleSystem& initial,
                         rng::Random& rng)
      : occupancy_(initial.size() * 2) {
    SOPS_REQUIRE(initial.size() > 0,
                 "ReferenceAmoebotSystem requires particles");
    particles_.reserve(initial.size());
    for (std::size_t id = 0; id < initial.size(); ++id) {
      Particle p;
      p.tail = initial.position(id);
      p.head = p.tail;
      p.orientationOffset = static_cast<std::uint8_t>(rng.below(6));
      p.mirrored = rng.bernoulli(0.5);
      particles_.push_back(p);
      setCell(p.tail, static_cast<std::int32_t>(id), false);
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return particles_.size(); }
  [[nodiscard]] const Particle& particle(std::size_t id) const {
    SOPS_DASSERT(id < particles_.size());
    return particles_[id];
  }

  [[nodiscard]] CellView at(TriPoint cell) const noexcept {
    const std::int32_t* raw = occupancy_.find(lattice::pack(cell));
    if (raw == nullptr) return {};
    return {*raw >> 1, (*raw & 1) != 0};
  }
  [[nodiscard]] bool occupied(TriPoint cell) const noexcept {
    return !at(cell).empty();
  }

  [[nodiscard]] Direction globalDirection(std::size_t id, int port) const {
    const Particle& p = particles_[id];
    const int step = p.mirrored ? -port : port;
    return lattice::rotated(static_cast<Direction>(p.orientationOffset), step);
  }

  [[nodiscard]] bool expandedParticleAdjacent(TriPoint cell,
                                              std::size_t self) const {
    for (const Direction d : lattice::kAllDirections) {
      const CellView view = at(lattice::neighbor(cell, d));
      if (view.empty()) continue;
      if (static_cast<std::size_t>(view.particle) == self) continue;
      if (particles_[static_cast<std::size_t>(view.particle)].expanded) {
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] bool occupiedExcludingHeads(TriPoint cell,
                                            std::size_t self) const {
    const CellView view = at(cell);
    if (view.empty()) return false;
    if (static_cast<std::size_t>(view.particle) == self) return false;
    const Particle& p = particles_[static_cast<std::size_t>(view.particle)];
    if (p.expanded && view.isHead) return false;
    return true;
  }

  void expand(std::size_t id, Direction d) {
    Particle& p = particles_[id];
    SOPS_REQUIRE(!p.expanded, "reference expand: particle already expanded");
    const TriPoint target = lattice::neighbor(p.tail, d);
    SOPS_REQUIRE(!occupied(target), "reference expand: target occupied");
    p.head = target;
    p.expanded = true;
    setCell(target, static_cast<std::int32_t>(id), true);
    ++expandedCount_;
  }

  void contractToHead(std::size_t id) {
    Particle& p = particles_[id];
    SOPS_REQUIRE(p.expanded, "reference contractToHead: not expanded");
    clearCell(p.tail);
    p.tail = p.head;
    p.expanded = false;
    setCell(p.tail, static_cast<std::int32_t>(id), false);
    --expandedCount_;
  }

  void contractBack(std::size_t id) {
    Particle& p = particles_[id];
    SOPS_REQUIRE(p.expanded, "reference contractBack: not expanded");
    clearCell(p.head);
    p.head = p.tail;
    p.expanded = false;
    setCell(p.tail, static_cast<std::int32_t>(id), false);
    --expandedCount_;
  }

  void setFlag(std::size_t id, bool value) { particles_[id].flag = value; }
  void markCrashed(std::size_t id) { particles_[id].crashed = true; }
  void markByzantine(std::size_t id) { particles_[id].byzantine = true; }

  [[nodiscard]] std::size_t expandedCount() const noexcept {
    return expandedCount_;
  }

  [[nodiscard]] system::ParticleSystem tailConfiguration() const {
    std::vector<TriPoint> tails;
    tails.reserve(particles_.size());
    for (const Particle& p : particles_) tails.push_back(p.tail);
    return system::ParticleSystem(tails);
  }

 private:
  std::vector<Particle> particles_;
  util::FlatMap64<std::int32_t> occupancy_;
  std::size_t expandedCount_ = 0;

  void setCell(TriPoint cell, std::int32_t id, bool isHead) {
    occupancy_.insertOrAssign(lattice::pack(cell),
                              (id << 1) | (isHead ? 1 : 0));
  }
  void clearCell(TriPoint cell) {
    const bool removed = occupancy_.erase(lattice::pack(cell));
    SOPS_REQUIRE(removed, "reference clearCell: cell was not occupied");
  }
};

/// Seed Algorithm A kernel: per-activation λ^δ from a small table, the
/// paper's short-circuit condition chain, every neighborhood scan through
/// the hash substrate above.  Draw order per activation — contracted:
/// below(6), then (on a successful expansion) nothing further; expanded:
/// one uniform() iff e ≠ 5 and Property 1 or 2 holds; byzantine
/// contracted: one below(6).
class ReferenceLocalKernel {
 public:
  explicit ReferenceLocalKernel(LocalOptions options) : options_(options) {
    SOPS_REQUIRE(options_.lambda > 0.0, "lambda must be positive");
    for (int delta = -5; delta <= 5; ++delta) {
      lambdaPow_[delta + 5] = std::pow(options_.lambda, delta);
    }
  }

  ActivationResult activate(ReferenceAmoebotSystem& sys, std::size_t id,
                            rng::Random& rng) const {
    const Particle& p = sys.particle(id);
    if (p.crashed) return ActivationResult::Idle;
    if (p.byzantine) return activateByzantine(sys, id, rng);
    return p.expanded ? activateExpanded(sys, id, rng)
                      : activateContracted(sys, id, rng);
  }

 private:
  LocalOptions options_;
  double lambdaPow_[11];

  ActivationResult activateContracted(ReferenceAmoebotSystem& sys,
                                      std::size_t id, rng::Random& rng) const {
    const Particle& p = sys.particle(id);
    const Direction d =
        sys.globalDirection(id, static_cast<int>(rng.below(6)));
    const TriPoint l = p.tail;
    const TriPoint target = lattice::neighbor(l, d);

    if (sys.occupied(target)) return ActivationResult::Idle;
    if (sys.expandedParticleAdjacent(l, id)) return ActivationResult::Idle;

    sys.expand(id, d);

    const bool nearbyExpanded = sys.expandedParticleAdjacent(l, id) ||
                                sys.expandedParticleAdjacent(target, id);
    sys.setFlag(id, !nearbyExpanded);
    return ActivationResult::Expanded;
  }

  ActivationResult activateExpanded(ReferenceAmoebotSystem& sys,
                                    std::size_t id, rng::Random& rng) const {
    const Particle& p = sys.particle(id);
    const TriPoint l = p.tail;
    const auto dOpt = lattice::directionBetween(l, p.head);
    SOPS_REQUIRE(dOpt.has_value(), "expanded particle with non-adjacent head");
    const Direction d = *dOpt;

    const auto oracle = [&sys, id](TriPoint cell) {
      return sys.occupiedExcludingHeads(cell, id);
    };
    const std::uint8_t mask = core::ringMask(l, d, oracle);
    const int e = core::neighborsBefore(mask);
    const int ePrime = core::neighborsAfter(mask);

    const bool conditions =
        e != 5 && (core::property1Holds(mask) || core::property2Holds(mask)) &&
        rng.uniform() < lambdaPow_[ePrime - e + 5] && p.flag;
    if (conditions) {
      sys.contractToHead(id);
      return ActivationResult::MovedToHead;
    }
    sys.contractBack(id);
    return ActivationResult::ContractedBack;
  }

  ActivationResult activateByzantine(ReferenceAmoebotSystem& sys,
                                     std::size_t id, rng::Random& rng) const {
    const Particle& p = sys.particle(id);
    if (p.expanded) return ActivationResult::Idle;
    const int firstPort = static_cast<int>(rng.below(6));
    for (int probe = 0; probe < 6; ++probe) {
      const Direction d = sys.globalDirection(id, (firstPort + probe) % 6);
      if (!sys.occupied(lattice::neighbor(p.tail, d))) {
        sys.expand(id, d);
        sys.setFlag(id, false);
        return ActivationResult::Expanded;
      }
    }
    return ActivationResult::Idle;
  }
};

}  // namespace sops::amoebot::reference

#endif  // SOPS_AMOEBOT_REFERENCE_LOCAL_KERNEL_HPP
