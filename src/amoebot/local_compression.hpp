#ifndef SOPS_AMOEBOT_LOCAL_COMPRESSION_HPP
#define SOPS_AMOEBOT_LOCAL_COMPRESSION_HPP

/// \file local_compression.hpp
/// Algorithm A (paper §3.2): the fully local, distributed, asynchronous
/// translation of the Markov chain M, executed one particle activation at a
/// time.
///
/// A contracted activation (steps 1–7) picks a uniformly random private
/// port, expands into it if empty and no neighbor is expanded, and records
/// in the particle's single flag bit whether the whole (ℓ, ℓ')
/// neighborhood was free of expanded particles.  An expanded activation
/// (steps 8–13) re-evaluates the move with the N* oracle (heads of expanded
/// neighbors are ignored — such neighbors must contract back) and contracts
/// to the head iff (1) e ≠ 5, (2) Property 1 or 2 holds, (3) q < λ^{e'−e},
/// and (4) the flag is set; otherwise it contracts back.
///
/// Byzantine particles (§3.3) expand whenever physically possible and
/// refuse to contract; crashed particles never act.

#include <cstdint>

#include "amoebot/amoebot_system.hpp"
#include "rng/random.hpp"

namespace sops::amoebot {

struct LocalOptions {
  double lambda = 4.0;
};

enum class ActivationResult : std::uint8_t {
  Idle,            ///< crashed, or contracted with no legal expansion
  Expanded,        ///< contracted particle expanded (movement pending)
  MovedToHead,     ///< expanded particle completed its move
  ContractedBack,  ///< expanded particle aborted its move
};

class LocalCompressionAlgorithm {
 public:
  explicit LocalCompressionAlgorithm(LocalOptions options);

  /// One atomic activation of particle `id` (the amoebot model's unit of
  /// computation).  Randomness is drawn from `rng` — conceptually the
  /// particle's private coin.
  ActivationResult activate(AmoebotSystem& sys, std::size_t id,
                            rng::Random& rng) const;

  [[nodiscard]] const LocalOptions& options() const noexcept { return options_; }

 private:
  LocalOptions options_;
  double lambdaPow_[11];  ///< λ^{e'-e}, indexed by (e'-e)+5

  ActivationResult activateContracted(AmoebotSystem& sys, std::size_t id,
                                      rng::Random& rng) const;
  ActivationResult activateExpanded(AmoebotSystem& sys, std::size_t id,
                                    rng::Random& rng) const;
  ActivationResult activateByzantine(AmoebotSystem& sys, std::size_t id,
                                     rng::Random& rng) const;
};

}  // namespace sops::amoebot

#endif  // SOPS_AMOEBOT_LOCAL_COMPRESSION_HPP
