#ifndef SOPS_AMOEBOT_LOCAL_COMPRESSION_HPP
#define SOPS_AMOEBOT_LOCAL_COMPRESSION_HPP

/// \file local_compression.hpp
/// Algorithm A (paper §3.2): the fully local, distributed, asynchronous
/// translation of the Markov chain M, executed one particle activation at a
/// time.
///
/// A contracted activation (steps 1–7) picks a uniformly random private
/// port, expands into it if empty and no neighbor is expanded, and records
/// in the particle's single flag bit whether the whole (ℓ, ℓ')
/// neighborhood was free of expanded particles.  An expanded activation
/// (steps 8–13) re-evaluates the move with the N* oracle (heads of expanded
/// neighbors are ignored — such neighbors must contract back) and contracts
/// to the head iff (1) e ≠ 5, (2) Property 1 or 2 holds, (3) q < λ^{e'−e},
/// and (4) the flag is set; otherwise it contracts back.
///
/// Hot path.  The expanded-activation conditions (1)–(3) are pure
/// functions of the 8-bit N* ring mask, so construction folds
/// core::moveTable() and λ into a 256-entry decision table: one ring
/// gather (AmoebotSystem::nStarRingMask — two bit-plane loads per word),
/// one 16-byte table load, one uniform draw.  RNG draw order is
/// *bit-identical* to the frozen seed kernel in reference_local_kernel.hpp
/// (the uniform is drawn exactly when e ≠ 5 and Property 1 or 2 holds,
/// before the flag test short-circuits) — tests/local_golden_test.cpp
/// locks this down draw-for-draw under every scheduler.
///
/// Byzantine particles (§3.3) expand whenever physically possible and
/// refuse to contract; crashed particles never act.

#include <cstdint>

#include "amoebot/amoebot_system.hpp"
#include "rng/random.hpp"

namespace sops::amoebot {

struct LocalOptions {
  double lambda = 4.0;
};

enum class ActivationResult : std::uint8_t {
  Idle,            ///< crashed, or contracted with no legal expansion
  Expanded,        ///< contracted particle expanded (movement pending)
  MovedToHead,     ///< expanded particle completed its move
  ContractedBack,  ///< expanded particle aborted its move
};

class LocalCompressionAlgorithm {
 public:
  explicit LocalCompressionAlgorithm(LocalOptions options);

  /// One atomic activation of particle `id` (the amoebot model's unit of
  /// computation).  Randomness is drawn from `rng` — conceptually the
  /// particle's private coin.
  ActivationResult activate(AmoebotSystem& sys, std::size_t id,
                            rng::Random& rng) const;

  [[nodiscard]] const LocalOptions& options() const noexcept {
    return options_;
  }

 private:
  /// Per-ring-mask fold of conditions (1)+(2) and the λ^{e'−e} threshold.
  struct Decision {
    double threshold = 0.0;  ///< λ^{e'−e} for this mask
    bool structOk = false;   ///< e ≠ 5 and Property 1 or 2 holds
  };

  LocalOptions options_;
  Decision decisions_[256];

  ActivationResult activateContracted(AmoebotSystem& sys, std::size_t id,
                                      rng::Random& rng) const;
  ActivationResult activateExpanded(AmoebotSystem& sys, std::size_t id,
                                    rng::Random& rng) const;
  ActivationResult activateByzantine(AmoebotSystem& sys, std::size_t id,
                                     rng::Random& rng) const;
};

}  // namespace sops::amoebot

#endif  // SOPS_AMOEBOT_LOCAL_COMPRESSION_HPP
