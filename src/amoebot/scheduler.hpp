#ifndef SOPS_AMOEBOT_SCHEDULER_HPP
#define SOPS_AMOEBOT_SCHEDULER_HPP

/// \file scheduler.hpp
/// Activation schedulers for the asynchronous amoebot model (§2.1, §3.2).
///
/// PoissonScheduler gives each particle an independent Poisson clock
/// (exponential inter-activation times), the mechanism the paper uses to
/// realize uniformly-random activations locally.  Per-particle rates are
/// supported — the paper notes heterogeneous rates do not change the
/// stationary distribution, and bench_local_algorithm verifies this.
/// SequentialScheduler activates a uniformly random particle per tick
/// (exactly M's step 1).  RoundRobinScheduler activates a fresh random
/// permutation each round (a fair adversarial-ish sequence for tests).

#include <algorithm>
#include <cstdint>
#include <queue>
#include <vector>

#include "rng/random.hpp"
#include "util/assert.hpp"

namespace sops::amoebot {

struct Activation {
  double time = 0.0;
  std::size_t particle = 0;
};

class PoissonScheduler {
 public:
  /// rates empty => all clocks have rate 1.
  PoissonScheduler(std::size_t particleCount, rng::Random rng,
                   std::vector<double> rates = {});

  /// Testing/checkpoint seam: starts every particle's clock from the given
  /// next-activation time instead of drawing the first waiting times.
  /// Exercised by the determinism tests to pin the tie-breaking order.
  PoissonScheduler(std::vector<double> initialTimes, rng::Random rng,
                   std::vector<double> rates = {});

  /// Pops the next activation and schedules that particle's next one.
  Activation next();

  [[nodiscard]] double now() const noexcept { return now_; }

 private:
  struct Event {
    double time;
    std::size_t particle;
    /// Strict ordering on (time, particle): simultaneous clock ticks (a
    /// measure-zero event for exponential gaps, but reachable through the
    /// seam above and through float rounding) pop in particle-id order, so
    /// the activation sequence is a pure function of the seed and the
    /// rates — never of priority-queue internals or insertion order.
    bool operator>(const Event& other) const noexcept {
      if (time != other.time) return time > other.time;
      return particle > other.particle;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::vector<double> rates_;
  rng::Random rng_;
  double now_ = 0.0;

  /// Defaults empty rates to 1 and enforces the shared rate contract.
  void validateRates(std::size_t particleCount);
};

class SequentialScheduler {
 public:
  SequentialScheduler(std::size_t particleCount, rng::Random rng)
      : count_(particleCount), rng_(rng) {
    SOPS_REQUIRE(particleCount > 0, "scheduler needs particles");
  }

  std::size_t next() {
    return static_cast<std::size_t>(
        rng_.below(static_cast<std::uint32_t>(count_)));
  }

 private:
  std::size_t count_;
  rng::Random rng_;
};

class RoundRobinScheduler {
 public:
  RoundRobinScheduler(std::size_t particleCount, rng::Random rng);

  std::size_t next();

  /// Number of completed rounds (every particle activated once per round).
  [[nodiscard]] std::uint64_t roundsCompleted() const noexcept {
    return rounds_;
  }

 private:
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
  std::uint64_t rounds_ = 0;
  rng::Random rng_;
};

/// Tracks asynchronous rounds (§2.1: a round completes once every particle
/// has been activated at least once) for any activation stream.
class RoundTracker {
 public:
  explicit RoundTracker(std::size_t particleCount)
      : seen_(particleCount, 0) {}

  void recordActivation(std::size_t particle) {
    SOPS_DASSERT(particle < seen_.size());
    if (!seen_[particle]) {
      seen_[particle] = 1;
      if (++distinct_ == seen_.size()) {
        ++rounds_;
        distinct_ = 0;
        std::fill(seen_.begin(), seen_.end(), 0);
      }
    }
  }

  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }

 private:
  std::vector<std::uint8_t> seen_;
  std::size_t distinct_ = 0;
  std::uint64_t rounds_ = 0;
};

}  // namespace sops::amoebot

#endif  // SOPS_AMOEBOT_SCHEDULER_HPP
