#include "amoebot/parallel_scheduler.hpp"

#include <algorithm>
#include <limits>

#include "core/ensemble.hpp"
#include "util/flat_hash.hpp"

namespace sops::amoebot {

namespace {

/// Width of the halo band on each side of a stripe, in columns.  An
/// activation reads within lattice distance 2 of the tail and |Δx| never
/// exceeds the lattice distance, so a tail at in-stripe column [2, 61]
/// keeps every read and write inside its own 64-column stripe.
constexpr std::uint64_t kHaloColumns = 2;
constexpr std::uint64_t kStripeColumns = 64;

/// RAII id-index suspension for one run: restore must happen even when an
/// epoch throws (ContractViolation, bad_alloc), or the system would be
/// left with at()/expandedCount() permanently invalid.  restoreIdIndex()
/// is idempotent, including after a mid-run sparse fallback cleared the
/// suspension itself.
class IdIndexSuspension {
 public:
  explicit IdIndexSuspension(AmoebotSystem& sys) : sys_(sys) {
    if (sys_.fastPathEnabled()) sys_.suspendIdIndex();
  }
  ~IdIndexSuspension() { sys_.restoreIdIndex(); }
  IdIndexSuspension(const IdIndexSuspension&) = delete;
  IdIndexSuspension& operator=(const IdIndexSuspension&) = delete;

 private:
  AmoebotSystem& sys_;
};

}  // namespace

ShardedPoissonRunner::ShardedPoissonRunner(
    AmoebotSystem& sys, const LocalCompressionAlgorithm& algo,
    std::uint64_t seed, ShardedOptions options)
    : sys_(sys), algo_(algo), options_(std::move(options)),
      rates_(std::move(options_.rates)) {
  const std::size_t n = sys_.size();
  SOPS_REQUIRE(n > 0, "sharded runner needs particles");
  SOPS_REQUIRE(n <= std::numeric_limits<std::uint32_t>::max(),
               "sharded runner: particle ids are 32-bit");
  if (rates_.empty()) rates_.assign(n, 1.0);
  SOPS_REQUIRE(rates_.size() == n, "one rate per particle");
  double totalRate = 0.0;
  for (const double rate : rates_) {
    SOPS_REQUIRE(rate > 0.0, "Poisson rates must be positive");
    totalRate += rate;
  }
  std::uint64_t target = options_.targetEventsPerEpoch;
  if (target == 0) {
    target = std::max<std::uint64_t>(2 * n, 1024);
  }
  epochLength_ = static_cast<double>(target) / totalRate;

  // Independent decorrelated streams per particle: every draw is a pure
  // function of (seed, particle, draw index) — thread interleaving cannot
  // reach them.  rng::particleStream documents why mix64 seeding beats
  // Random::fork() here; the sharded chain runner shares the discipline.
  clockRng_.reserve(n);
  coinRng_.reserve(n);
  nextTime_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto stream = static_cast<std::uint64_t>(i);
    clockRng_.push_back(rng::particleStream(seed, stream, 1));
    coinRng_.push_back(rng::particleStream(seed, stream, 2));
    nextTime_.push_back(clockRng_[i].exponential(rates_[i]));
  }
}

void ShardedPoissonRunner::runStripe(std::size_t s, double epochEnd,
                                     std::int64_t originX) {
  std::vector<Event>& deferred = stripeDeferred_[s];
  deferred.clear();
  std::uint64_t executed = 0;

  // Event times are independent of system state, so the stripe's whole
  // epoch schedule can be drawn up front (the per-particle clock streams
  // make the draws order-insensitive across particles) and sorted once —
  // one sequential pass instead of per-event heap churn.
  std::vector<Event>& events = stripeEvents_[s];
  events.clear();
  for (const std::uint32_t i : stripeParticles_[s]) {
    double t = nextTime_[i];
    do {
      events.push_back({t, i});
      t += clockRng_[i].exponential(rates_[i]);
    } while (t < epochEnd);
    nextTime_[i] = t;
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.particle < b.particle;
  });

  for (const Event& event : events) {
    const std::uint32_t i = event.particle;
    // Halo/window deferral, evaluated on the *current* tail: once a
    // particle is in a band its position cannot change again this phase
    // (its activations are all deferred), so the decision is stable.
    const TriPoint tail = sys_.particle(i).tail;
    const auto col =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(tail.x) - originX);
    const std::uint64_t inStripe = col & (kStripeColumns - 1);
    const bool safe = (col >> 6) == s && inStripe >= kHaloColumns &&
                      inStripe < kStripeColumns - kHaloColumns &&
                      sys_.shardSafe(tail);
    if (safe) {
      algo_.activate(sys_, i, coinRng_[i]);
      ++executed;
    } else {
      deferred.push_back(event);
    }
  }
  stripeActivations_[s] = executed;
}

std::uint64_t ShardedPoissonRunner::runEpoch() {
  const double epochEnd = now_ + epochLength_;
  sweepEvents_.clear();
  std::uint64_t executed = 0;

  if (sys_.fastPathEnabled()) {
    const system::BitGrid& grid = sys_.occupancyGrid();
    const std::int64_t originX = grid.originX();
    const std::size_t stripeCount =
        static_cast<std::size_t>((grid.width() + kStripeColumns - 1) /
                                 kStripeColumns);
    if (stripeParticles_.size() < stripeCount) {
      stripeParticles_.resize(stripeCount);
      stripeEvents_.resize(stripeCount);
      stripeDeferred_.resize(stripeCount);
      stripeActivations_.resize(stripeCount);
    }
    for (auto& list : stripeParticles_) list.clear();

    for (std::size_t i = 0; i < sys_.size(); ++i) {
      if (nextTime_[i] >= epochEnd) continue;
      const auto col = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(sys_.particle(i).tail.x) - originX);
      stripeParticles_[col >> 6].push_back(static_cast<std::uint32_t>(i));
    }

    std::vector<std::size_t> active;
    for (std::size_t s = 0; s < stripeCount; ++s) {
      if (!stripeParticles_[s].empty()) active.push_back(s);
    }
    core::parallelForIndex(active.size(), options_.threads,
                           [&](std::size_t k) {
                             runStripe(active[k], epochEnd, originX);
                           });
    for (const std::size_t s : active) {
      executed += stripeActivations_[s];
      sweepEvents_.insert(sweepEvents_.end(), stripeDeferred_[s].begin(),
                          stripeDeferred_[s].end());
    }
  } else {
    // Sparse fallback: no stripe geometry — the whole epoch runs on the
    // sweep path in pure (time, particle) order.
    for (std::size_t i = 0; i < sys_.size(); ++i) {
      while (nextTime_[i] < epochEnd) {
        sweepEvents_.push_back({nextTime_[i], static_cast<std::uint32_t>(i)});
        nextTime_[i] += clockRng_[i].exponential(rates_[i]);
      }
    }
  }

  // Single-threaded sweep: all deferred events in (time, particle) order —
  // a legal sequential tail of the epoch's schedule; window regrows are
  // safe here.
  std::sort(sweepEvents_.begin(), sweepEvents_.end(),
            [](const Event& a, const Event& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.particle < b.particle;
            });
  for (const Event& event : sweepEvents_) {
    algo_.activate(sys_, event.particle, coinRng_[event.particle]);
  }
  executed += sweepEvents_.size();
  sweepActivations_ += sweepEvents_.size();

  now_ = epochEnd;
  totalActivations_ += executed;
  return executed;
}

std::uint64_t ShardedPoissonRunner::runAtLeast(std::uint64_t minActivations) {
  const IdIndexSuspension suspension(sys_);
  std::uint64_t executed = 0;
  while (executed < minActivations) {
    if (core::isCancelled(cancel_)) break;
    executed += runEpoch();
  }
  return executed;
}

std::uint64_t ShardedPoissonRunner::runFor(double duration) {
  const IdIndexSuspension suspension(sys_);
  const double target = now_ + duration;
  std::uint64_t executed = 0;
  while (now_ < target) {
    if (core::isCancelled(cancel_)) break;
    executed += runEpoch();
  }
  return executed;
}

void ShardedPoissonRunner::saveState(system::SnapshotWriter& w) const {
  w.f64(now_);
  w.u64(totalActivations_);
  w.u64(sweepActivations_);
  w.u64(nextTime_.size());
  for (std::size_t i = 0; i < nextTime_.size(); ++i) {
    w.f64(nextTime_[i]);
    system::writeRandom(w, clockRng_[i]);
    system::writeRandom(w, coinRng_[i]);
  }
}

void ShardedPoissonRunner::restoreState(system::SnapshotReader& r) {
  now_ = r.f64();
  totalActivations_ = r.u64();
  sweepActivations_ = r.u64();
  const std::uint64_t n = r.u64();
  SOPS_REQUIRE(n == sys_.size(),
               "snapshot: per-particle stream count does not match the "
               "particle count");
  clockRng_.clear();
  coinRng_.clear();
  nextTime_.clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    nextTime_.push_back(r.f64());
    clockRng_.push_back(system::readRandom(r));
    coinRng_.push_back(system::readRandom(r));
  }
}

}  // namespace sops::amoebot
