#include "amoebot/parallel_scheduler.hpp"

#include <algorithm>
#include <limits>

#include "core/ensemble.hpp"
#include "util/flat_hash.hpp"

namespace sops::amoebot {

namespace {

/// Width of the halo band on each side of a stripe, in columns.  An
/// activation reads within lattice distance 2 of the tail and |Δx| never
/// exceeds the lattice distance, so a tail at in-stripe column [2, 61]
/// keeps every read and write inside its own 64-column stripe.
constexpr std::uint64_t kHaloColumns = 2;
constexpr std::uint64_t kStripeColumns = 64;

/// RAII id-index suspension for one run: restore must happen even when an
/// epoch throws (ContractViolation, bad_alloc), or the system would be
/// left with at()/expandedCount() permanently invalid.  restoreIdIndex()
/// is idempotent, including after a mid-run sparse fallback cleared the
/// suspension itself.
class IdIndexSuspension {
 public:
  explicit IdIndexSuspension(AmoebotSystem& sys) : sys_(sys) {
    if (sys_.fastPathEnabled()) sys_.suspendIdIndex();
  }
  ~IdIndexSuspension() { sys_.restoreIdIndex(); }
  IdIndexSuspension(const IdIndexSuspension&) = delete;
  IdIndexSuspension& operator=(const IdIndexSuspension&) = delete;

 private:
  AmoebotSystem& sys_;
};

}  // namespace

ShardedPoissonRunner::ShardedPoissonRunner(
    AmoebotSystem& sys, const LocalCompressionAlgorithm& algo,
    std::uint64_t seed, ShardedOptions options)
    : sys_(sys), algo_(algo), options_(std::move(options)),
      controller_(sys.size()) {
  const std::size_t n = sys_.size();
  SOPS_REQUIRE(n > 0, "sharded runner needs particles");
  SOPS_REQUIRE(n <= std::numeric_limits<std::uint32_t>::max(),
               "sharded runner: particle ids are 32-bit");
  SOPS_REQUIRE(options_.targetEventsPerEpoch <= core::kMaxEventsPerEpoch,
               "targetEventsPerEpoch must be at most 2^28");
  SOPS_REQUIRE(options_.rates.empty() || options_.rates.size() == n,
               "one rate per particle");
  adaptive_ = options_.targetEventsPerEpoch == 0 && options_.adaptiveEpochs;
  epochTarget_ = options_.targetEventsPerEpoch != 0
                     ? options_.targetEventsPerEpoch
                     : core::derivedEpochTarget(n);

  // SoA stream banks, seeded once per particle (rng::particleStream
  // documents why mix64 seeding beats Random::fork() here; the sharded
  // chain runner shares the discipline).  The clock bank also draws each
  // particle's first waiting time, exactly as the AoS constructor did.
  clock_ = rng::PoissonClockBank(seed, n, 1, options_.rates);
  coin_ = rng::StreamBank(seed, n, 2);
  epochLength_ = static_cast<double>(epochTarget_) / clock_.totalRate();
}

void ShardedPoissonRunner::sortEvents(std::vector<Event>& events,
                                      util::EventSortScratch<Event>& scratch,
                                      double begin, double end) {
  util::sortEventsInWindow(events, scratch, begin, end,
                           [](const Event& e) { return e.time; });
}

void ShardedPoissonRunner::runStripe(std::size_t slot,
                                     std::uint64_t stripeIndex,
                                     std::int64_t originX, double epochEnd) {
  std::vector<Event>& deferred = stripeDeferred_[slot];
  deferred.clear();
  std::uint64_t executed = 0;

  // Event times are independent of system state, so the whole epoch's
  // schedule was drawn up front in one batched pass (fillEpoch); the
  // stripe just gathers its particles' slices and sorts once.
  std::vector<Event>& events = stripeEvents_[slot];
  events.clear();
  for (const std::uint32_t i : stripeParticles_[slot]) {
    const std::uint64_t end = draws_.offsets[i + 1];
    for (std::uint64_t k = draws_.offsets[i]; k < end; ++k) {
      events.push_back({draws_.times[k], i});
    }
  }
  sortEvents(events, sortScratch_[slot], now_, epochEnd);

  for (const Event& event : events) {
    const std::uint32_t i = event.particle;
    // Halo/window deferral, evaluated on the *current* tail: once a
    // particle is in a band its position cannot change again this phase
    // (its activations are all deferred), so the decision is stable.
    const TriPoint tail = sys_.particle(i).tail;
    const auto col =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(tail.x) - originX);
    const std::uint64_t inStripe = col & (kStripeColumns - 1);
    const bool safe = (col >> 6) == stripeIndex && inStripe >= kHaloColumns &&
                      inStripe < kStripeColumns - kHaloColumns &&
                      sys_.shardSafe(tail);
    if (safe) {
      rng::StreamBank::Use use = coin_.use(i);
      algo_.activate(sys_, i, use.rng());
      ++executed;
    } else {
      deferred.push_back(event);
    }
  }
  stripeActivations_[slot] = executed;
}

std::uint64_t ShardedPoissonRunner::runEpoch() {
  const double epochEnd = now_ + epochLength_;
  // Batched draw: every clock's firings in [now, epochEnd), per particle
  // ascending, in one tight sequential pass over the SoA bank.
  clock_.fillEpoch(epochEnd, draws_);
  const std::uint64_t total = draws_.total();

  sweepEvents_.clear();
  std::uint64_t executed = 0;
  bool striped = false;

  const bool tiledGrid = sys_.occupancyGrid().tiled();
  if (sys_.fastPathEnabled()) {
    striped = true;
    const system::BitGrid& grid = sys_.occupancyGrid();
    const std::int64_t originX = grid.originX();

    activeStripes_.clear();
    if (tiledGrid) {
      // The allocated-tile bounding box can span astronomically many
      // 64-column stripes, so bucket sparsely: stripe index → buffer
      // slot, slots assigned in first-touch order by this sequential
      // pass — the same assignment for every thread count.
      stripeSlots_.clear();
      stripeIndexOfSlot_.clear();
      for (std::size_t i = 0; i < sys_.size(); ++i) {
        if (draws_.count(i) == 0) continue;
        const auto col = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(sys_.particle(i).tail.x) - originX);
        const std::uint64_t stripeIndex = col >> 6;
        std::size_t slot;
        if (const std::uint32_t* found = stripeSlots_.find(stripeIndex)) {
          slot = *found;
        } else {
          slot = stripeIndexOfSlot_.size();
          stripeSlots_.insert(stripeIndex, static_cast<std::uint32_t>(slot));
          stripeIndexOfSlot_.push_back(stripeIndex);
          if (stripeParticles_.size() <= slot) {
            stripeParticles_.resize(slot + 1);
            stripeEvents_.resize(slot + 1);
            stripeDeferred_.resize(slot + 1);
            stripeActivations_.resize(slot + 1);
            sortScratch_.resize(slot + 1);
          }
          stripeParticles_[slot].clear();
        }
        stripeParticles_[slot].push_back(static_cast<std::uint32_t>(i));
      }
      for (std::size_t slot = 0; slot < stripeIndexOfSlot_.size(); ++slot) {
        activeStripes_.push_back(slot);
      }
      // Canonical merge order: ascending stripe index, matching the flat
      // path (any fixed order would do — stripes are disjoint in
      // particles, so the merged schedule is order-independent).
      std::sort(activeStripes_.begin(), activeStripes_.end(),
                [&](std::size_t a, std::size_t b) {
                  return stripeIndexOfSlot_[a] < stripeIndexOfSlot_[b];
                });
    } else {
      // Flat windows keep the dense stripe arrays: stripe count is
      // bounded by width / 64, and slot == stripe index.
      const std::size_t stripeCount =
          static_cast<std::size_t>((grid.width() + kStripeColumns - 1) /
                                   kStripeColumns);
      if (stripeParticles_.size() < stripeCount) {
        stripeParticles_.resize(stripeCount);
        stripeEvents_.resize(stripeCount);
        stripeDeferred_.resize(stripeCount);
        stripeActivations_.resize(stripeCount);
        sortScratch_.resize(stripeCount);
      }
      for (auto& list : stripeParticles_) list.clear();

      for (std::size_t i = 0; i < sys_.size(); ++i) {
        if (draws_.count(i) == 0) continue;
        const auto col = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(sys_.particle(i).tail.x) - originX);
        stripeParticles_[col >> 6].push_back(static_cast<std::uint32_t>(i));
      }

      for (std::size_t s = 0; s < stripeCount; ++s) {
        if (!stripeParticles_[s].empty()) activeStripes_.push_back(s);
      }
    }
    core::parallelForIndex(
        activeStripes_.size(), options_.threads, [&](std::size_t k) {
          const std::size_t slot = activeStripes_[k];
          const std::uint64_t stripeIndex =
              tiledGrid ? stripeIndexOfSlot_[slot] : slot;
          runStripe(slot, stripeIndex, originX, epochEnd);
        });
    // Merge in stripe order (fixed regardless of which thread ran what).
    // The sweep schedule is every stripe's deferred list concatenated and
    // re-sorted once with the epoch bucket sort — not a per-stripe
    // std::merge cascade, which re-copies the growing queue once per
    // stripe and goes quadratic on wide tiled windows (thousands of
    // active stripes).  (time, particle) keys are unique, so the sorted
    // schedule is byte-identical to the cascade's.
    for (const std::size_t s : activeStripes_) {
      executed += stripeActivations_[s];
      const std::vector<Event>& deferred = stripeDeferred_[s];
      sweepEvents_.insert(sweepEvents_.end(), deferred.begin(),
                          deferred.end());
    }
    if (!sweepEvents_.empty()) {
      sortEvents(sweepEvents_, sweepScratch_, now_, epochEnd);
    }
  } else {
    // Sparse fallback: no stripe geometry — the whole epoch runs on the
    // sweep path in pure (time, particle) order.
    sweepEvents_.reserve(total);
    for (std::size_t i = 0; i < sys_.size(); ++i) {
      const std::uint64_t end = draws_.offsets[i + 1];
      for (std::uint64_t k = draws_.offsets[i]; k < end; ++k) {
        sweepEvents_.push_back(
            {draws_.times[k], static_cast<std::uint32_t>(i)});
      }
    }
    sortEvents(sweepEvents_, sweepScratch_, now_, epochEnd);
  }

  // Adapt the next epoch's target from the deferred fraction — a pure
  // function of the seeded trajectory, so every thread count computes the
  // same schedule.  The sparse regime leaves the target alone (everything
  // is "deferred" there, which says nothing about stripe balance).
  if (adaptive_ && striped) {
    epochTarget_ = controller_.update(sweepEvents_.size(), total);
    epochLength_ = static_cast<double>(epochTarget_) / clock_.totalRate();
  }

  // Single-threaded sweep: all deferred events in (time, particle) order —
  // a legal sequential tail of the epoch's schedule; window regrows are
  // safe here.
  for (const Event& event : sweepEvents_) {
    rng::StreamBank::Use use = coin_.use(event.particle);
    algo_.activate(sys_, event.particle, use.rng());
  }
  executed += sweepEvents_.size();
  sweepActivations_ += sweepEvents_.size();

  now_ = epochEnd;
  totalActivations_ += executed;
  return executed;
}

std::uint64_t ShardedPoissonRunner::runAtLeast(std::uint64_t minActivations) {
  const IdIndexSuspension suspension(sys_);
  std::uint64_t executed = 0;
  while (executed < minActivations) {
    if (core::isCancelled(cancel_)) break;
    executed += runEpoch();
  }
  return executed;
}

std::uint64_t ShardedPoissonRunner::runFor(double duration) {
  const IdIndexSuspension suspension(sys_);
  const double target = now_ + duration;
  std::uint64_t executed = 0;
  while (now_ < target) {
    if (core::isCancelled(cancel_)) break;
    executed += runEpoch();
  }
  return executed;
}

void ShardedPoissonRunner::saveState(system::SnapshotWriter& w) const {
  w.f64(now_);
  w.u64(totalActivations_);
  w.u64(sweepActivations_);
  w.u64(epochTarget_);
  w.u64(clock_.size());
  for (std::size_t i = 0; i < clock_.size(); ++i) {
    w.f64(clock_.nextTime(i));
    system::writeEngineState(w, clock_.state(i));
    system::writeEngineState(w, coin_.state(i));
  }
}

void ShardedPoissonRunner::restoreState(system::SnapshotReader& r) {
  now_ = r.f64();
  totalActivations_ = r.u64();
  sweepActivations_ = r.u64();
  const std::uint64_t target = r.u64();
  if (adaptive_) {
    controller_.setTarget(target);
    epochTarget_ = target;
  } else {
    SOPS_REQUIRE(target == epochTarget_,
                 "snapshot: fixed epoch target does not match the runner's "
                 "options");
  }
  epochLength_ = static_cast<double>(epochTarget_) / clock_.totalRate();
  const std::uint64_t n = r.u64();
  SOPS_REQUIRE(n == sys_.size(),
               "snapshot: per-particle stream count does not match the "
               "particle count");
  for (std::uint64_t i = 0; i < n; ++i) {
    clock_.setNextTime(i, r.f64());
    clock_.setState(i, system::readEngineState(r));
    coin_.setState(i, system::readEngineState(r));
  }
}

}  // namespace sops::amoebot
