#include "amoebot/faults.hpp"

#include <numeric>

namespace sops::amoebot {

namespace {
std::vector<std::size_t> pickDistinct(std::size_t particleCount,
                                      double fraction,
                                      rng::Random& rng) {
  SOPS_REQUIRE(fraction >= 0.0 && fraction <= 1.0, "fraction in [0,1]");
  const auto want = static_cast<std::size_t>(
      fraction * static_cast<double>(particleCount));
  std::vector<std::size_t> ids(particleCount);
  std::iota(ids.begin(), ids.end(), std::size_t{0});
  rng.shuffle(ids);
  ids.resize(want);
  return ids;
}
}  // namespace

FaultPlan randomCrashes(std::size_t particleCount, double fraction,
                        rng::Random& rng) {
  FaultPlan plan;
  plan.crashed = pickDistinct(particleCount, fraction, rng);
  return plan;
}

FaultPlan randomByzantine(std::size_t particleCount, double fraction,
                          rng::Random& rng) {
  FaultPlan plan;
  plan.byzantine = pickDistinct(particleCount, fraction, rng);
  return plan;
}

void applyFaults(AmoebotSystem& sys, const FaultPlan& plan) {
  for (const std::size_t id : plan.crashed) sys.markCrashed(id);
  for (const std::size_t id : plan.byzantine) sys.markByzantine(id);
}

}  // namespace sops::amoebot
