#include "amoebot/scheduler.hpp"

#include <algorithm>
#include <numeric>

namespace sops::amoebot {

void PoissonScheduler::validateRates(std::size_t particleCount) {
  SOPS_REQUIRE(particleCount > 0, "scheduler needs particles");
  if (rates_.empty()) {
    rates_.assign(particleCount, 1.0);
  }
  SOPS_REQUIRE(rates_.size() == particleCount, "one rate per particle");
  for (const double rate : rates_) {
    SOPS_REQUIRE(rate > 0.0, "Poisson rates must be positive");
  }
}

PoissonScheduler::PoissonScheduler(std::size_t particleCount, rng::Random rng,
                                   std::vector<double> rates)
    : rates_(std::move(rates)), rng_(rng) {
  validateRates(particleCount);
  for (std::size_t id = 0; id < particleCount; ++id) {
    queue_.push({rng_.exponential(rates_[id]), id});
  }
}

PoissonScheduler::PoissonScheduler(std::vector<double> initialTimes,
                                   rng::Random rng, std::vector<double> rates)
    : rates_(std::move(rates)), rng_(rng) {
  validateRates(initialTimes.size());
  for (std::size_t id = 0; id < initialTimes.size(); ++id) {
    queue_.push({initialTimes[id], id});
  }
}

Activation PoissonScheduler::next() {
  const Event event = queue_.top();
  queue_.pop();
  now_ = event.time;
  queue_.push({now_ + rng_.exponential(rates_[event.particle]),
               event.particle});
  return {event.time, event.particle};
}

RoundRobinScheduler::RoundRobinScheduler(std::size_t particleCount,
                                         rng::Random rng)
    : order_(particleCount), rng_(rng) {
  SOPS_REQUIRE(particleCount > 0, "scheduler needs particles");
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  rng_.shuffle(order_);
}

std::size_t RoundRobinScheduler::next() {
  const std::size_t particle = order_[cursor_];
  if (++cursor_ == order_.size()) {
    cursor_ = 0;
    ++rounds_;
    rng_.shuffle(order_);
  }
  return particle;
}

}  // namespace sops::amoebot
