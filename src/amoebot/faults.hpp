#ifndef SOPS_AMOEBOT_FAULTS_HPP
#define SOPS_AMOEBOT_FAULTS_HPP

/// \file faults.hpp
/// Fault injection for §3.3: crash failures (a particle abruptly stops
/// acting forever) and Byzantine stationary adversaries (particles that
/// expand away from the aggregate and refuse to contract).  The paper
/// argues the stochastic algorithm tolerates both because non-faulty
/// particles simply compress around the fixed points; bench_fault_tolerance
/// measures this.

#include <cstddef>
#include <vector>

#include "amoebot/amoebot_system.hpp"
#include "rng/random.hpp"

namespace sops::amoebot {

struct FaultPlan {
  std::vector<std::size_t> crashed;
  std::vector<std::size_t> byzantine;
};

/// Chooses ⌊fraction·n⌋ distinct particles uniformly at random to crash.
[[nodiscard]] FaultPlan randomCrashes(std::size_t particleCount,
                                      double fraction,
                                      rng::Random& rng);

/// Chooses ⌊fraction·n⌋ distinct particles to behave Byzantine.
[[nodiscard]] FaultPlan randomByzantine(std::size_t particleCount,
                                        double fraction, rng::Random& rng);

void applyFaults(AmoebotSystem& sys, const FaultPlan& plan);

}  // namespace sops::amoebot

#endif  // SOPS_AMOEBOT_FAULTS_HPP
