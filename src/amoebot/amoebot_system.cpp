#include "amoebot/amoebot_system.hpp"

namespace sops::amoebot {

AmoebotSystem::AmoebotSystem(const system::ParticleSystem& initial,
                             rng::Random& rng)
    : occupancy_(initial.size() * 2) {
  SOPS_REQUIRE(initial.size() > 0, "AmoebotSystem requires particles");
  particles_.reserve(initial.size());
  for (std::size_t id = 0; id < initial.size(); ++id) {
    Particle p;
    p.tail = initial.position(id);
    p.head = p.tail;
    p.orientationOffset = static_cast<std::uint8_t>(rng.below(6));
    p.mirrored = rng.bernoulli(0.5);
    particles_.push_back(p);
    setCell(p.tail, static_cast<std::int32_t>(id), false);
  }
}

AmoebotSystem::CellView AmoebotSystem::at(TriPoint cell) const noexcept {
  const std::int32_t* raw = occupancy_.find(lattice::pack(cell));
  if (raw == nullptr) return {};
  return {*raw >> 1, (*raw & 1) != 0};
}

Direction AmoebotSystem::globalDirection(std::size_t id, int port) const {
  SOPS_REQUIRE(id < particles_.size(), "globalDirection: bad id");
  SOPS_REQUIRE(port >= 0 && port < lattice::kNumDirections,
               "globalDirection: bad port");
  const Particle& p = particles_[id];
  const int step = p.mirrored ? -port : port;
  return lattice::rotated(
      static_cast<Direction>(p.orientationOffset), step);
}

bool AmoebotSystem::expandedParticleAdjacent(TriPoint cell,
                                             std::size_t self) const {
  for (const Direction d : lattice::kAllDirections) {
    const CellView view = at(lattice::neighbor(cell, d));
    if (view.empty()) continue;
    if (static_cast<std::size_t>(view.particle) == self) continue;
    if (particles_[static_cast<std::size_t>(view.particle)].expanded) return true;
  }
  return false;
}

bool AmoebotSystem::occupiedExcludingHeads(TriPoint cell,
                                           std::size_t self) const {
  const CellView view = at(cell);
  if (view.empty()) return false;
  if (static_cast<std::size_t>(view.particle) == self) return false;
  const Particle& p = particles_[static_cast<std::size_t>(view.particle)];
  if (p.expanded && view.isHead) return false;
  return true;
}

void AmoebotSystem::expand(std::size_t id, Direction d) {
  SOPS_REQUIRE(id < particles_.size(), "expand: bad id");
  Particle& p = particles_[id];
  SOPS_REQUIRE(!p.expanded, "expand: particle already expanded");
  const TriPoint target = lattice::neighbor(p.tail, d);
  SOPS_REQUIRE(!occupied(target), "expand: target occupied");
  p.head = target;
  p.expanded = true;
  setCell(target, static_cast<std::int32_t>(id), true);
  ++expandedCount_;
}

void AmoebotSystem::contractToHead(std::size_t id) {
  SOPS_REQUIRE(id < particles_.size(), "contractToHead: bad id");
  Particle& p = particles_[id];
  SOPS_REQUIRE(p.expanded, "contractToHead: particle not expanded");
  clearCell(p.tail);
  p.tail = p.head;
  p.expanded = false;
  setCell(p.tail, static_cast<std::int32_t>(id), false);
  --expandedCount_;
}

void AmoebotSystem::contractBack(std::size_t id) {
  SOPS_REQUIRE(id < particles_.size(), "contractBack: bad id");
  Particle& p = particles_[id];
  SOPS_REQUIRE(p.expanded, "contractBack: particle not expanded");
  clearCell(p.head);
  p.head = p.tail;
  p.expanded = false;
  setCell(p.tail, static_cast<std::int32_t>(id), false);
  --expandedCount_;
}

system::ParticleSystem AmoebotSystem::tailConfiguration() const {
  std::vector<TriPoint> tails;
  tails.reserve(particles_.size());
  for (const Particle& p : particles_) tails.push_back(p.tail);
  return system::ParticleSystem(tails);
}

void AmoebotSystem::setCell(TriPoint cell, std::int32_t id, bool isHead) {
  occupancy_.insertOrAssign(lattice::pack(cell), (id << 1) | (isHead ? 1 : 0));
}

void AmoebotSystem::clearCell(TriPoint cell) {
  const bool removed = occupancy_.erase(lattice::pack(cell));
  SOPS_REQUIRE(removed, "clearCell: cell was not occupied");
}

}  // namespace sops::amoebot
