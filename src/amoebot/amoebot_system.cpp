#include "amoebot/amoebot_system.hpp"

#include "lattice/edge_ring.hpp"

namespace sops::amoebot {

namespace {
/// Base window margin, matching ParticleSystem's dense-window policy
/// (BitGrid::rebuild adds span/4 proportional headroom on top).
constexpr std::int64_t kPlaneBaseMargin = 32;
/// Tile headroom allocated around a cell that escapes the interior of a
/// tiled plane: > kInteriorMargin + 1 so one ensureRegion() buys several
/// further expansions in the same direction before the next directory
/// touch (mirrors ParticleSystem's policy).
constexpr std::int64_t kPlaneEnsureMargin = 8;
}  // namespace

AmoebotSystem::AmoebotSystem(const system::ParticleSystem& initial,
                             rng::Random& rng)
    : occupancy_(initial.size() * 2) {
  SOPS_REQUIRE(initial.size() > 0, "AmoebotSystem requires particles");
  particles_.reserve(initial.size());
  for (std::size_t id = 0; id < initial.size(); ++id) {
    Particle p;
    p.tail = initial.position(id);
    p.head = p.tail;
    p.orientationOffset = static_cast<std::uint8_t>(rng.below(6));
    p.mirrored = rng.bernoulli(0.5);
    particles_.push_back(p);
    setCell(p.tail, static_cast<std::int32_t>(id), false);
  }
  regrowPlanes();
}

void AmoebotSystem::regrowPlanes() {
  if (gridsGaveUp_) return;
  std::vector<TriPoint> cells;
  cells.reserve(particles_.size() + expandedCount_);
  for (const Particle& p : particles_) {
    cells.push_back(p.tail);
    if (p.expanded) cells.push_back(p.head);
  }
  // rebuild() promotes oversized bounding boxes to the tiled backend, so
  // it only fails on an empty cell set — excluded by the constructor.
  // The sparse regime survives solely behind forceSparseForTest().
  const bool built = occ_.rebuild(cells, kPlaneBaseMargin);
  SOPS_DASSERT(built);
  (void)built;
  heads_.allocateLike(occ_);
  expanded_.allocateLike(occ_);
  for (const Particle& p : particles_) {
    if (!p.expanded) continue;
    heads_.set(p.head);
    expanded_.set(p.tail);
    expanded_.set(p.head);
  }
  gridsOn_ = true;
}

void AmoebotSystem::forceSparseForTest() {
  SOPS_REQUIRE(!sharded_, "forceSparseForTest: inside a sharded section");
  // The hash index becomes the occupancy source of truth, so eager
  // maintenance resumes and at() is valid again.
  gridsGaveUp_ = true;
  gridsOn_ = false;
  occ_.disable();
  heads_.disable();
  expanded_.disable();
  rebuildIdIndex();
  recountExpanded();
}

void AmoebotSystem::recountExpanded() {
  std::size_t count = 0;
  for (const Particle& p : particles_) {
    if (p.expanded) ++count;
  }
  expandedCount_ = count;
}

void AmoebotSystem::rebuildIdIndex() const {
  occupancy_.clear();
  occupancy_.reserve(particles_.size() * 2);
  for (std::size_t id = 0; id < particles_.size(); ++id) {
    const Particle& p = particles_[id];
    occupancy_.insertOrAssign(lattice::pack(p.tail),
                              (static_cast<std::int32_t>(id) << 1));
    if (p.expanded) {
      occupancy_.insertOrAssign(lattice::pack(p.head),
                                (static_cast<std::int32_t>(id) << 1) | 1);
    }
  }
  idIndexDirty_ = false;
}

void AmoebotSystem::suspendIdIndex() {
  SOPS_REQUIRE(gridsOn_, "suspendIdIndex: dense planes required");
  sharded_ = true;
}

void AmoebotSystem::restoreIdIndex() {
  if (!sharded_) return;
  sharded_ = false;
  if (gridsOn_) {
    // The hash refresh stays lazy (at() rebuilds on demand) — a sharded
    // burst between samples should not pay O(n) hash work nobody reads.
    idIndexDirty_ = true;
    recountExpanded();
  }
}

AmoebotSystem::CellView AmoebotSystem::at(TriPoint cell) const {
  SOPS_DASSERT(!sharded_);
  if (idIndexDirty_) rebuildIdIndex();
  const std::int32_t* raw = occupancy_.find(lattice::pack(cell));
  if (raw == nullptr) return {};
  return {*raw >> 1, (*raw & 1) != 0};
}

bool AmoebotSystem::expandedParticleAdjacent(TriPoint cell,
                                             std::size_t self) const {
  if (gridsOn_) {
    std::uint8_t mask;
    if (expanded_.coversInterior(cell)) {
      mask = expanded_.neighborMaskUnchecked(cell);
    } else {
      mask = 0;
      for (const Direction d : lattice::kAllDirections) {
        if (expanded_.test(lattice::neighbor(cell, d))) {
          mask = static_cast<std::uint8_t>(mask | (1u << index(d)));
        }
      }
    }
    if (mask == 0) return false;
    const Particle& s = particles_[self];
    if (s.expanded) {
      // The only expanded cells belonging to `self` are its own tail and
      // head; drop their direction bits if they happen to be adjacent.
      if (const auto d = lattice::directionBetween(cell, s.tail)) {
        mask = static_cast<std::uint8_t>(mask & ~(1u << index(*d)));
      }
      if (const auto d = lattice::directionBetween(cell, s.head)) {
        mask = static_cast<std::uint8_t>(mask & ~(1u << index(*d)));
      }
    }
    return mask != 0;
  }
  for (const Direction d : lattice::kAllDirections) {
    const CellView view = at(lattice::neighbor(cell, d));
    if (view.empty()) continue;
    if (static_cast<std::size_t>(view.particle) == self) continue;
    if (particles_[static_cast<std::size_t>(view.particle)].expanded) {
      return true;
    }
  }
  return false;
}

bool AmoebotSystem::occupiedExcludingHeads(TriPoint cell,
                                           std::size_t self) const {
  if (gridsOn_) {
    if (!occ_.test(cell)) return false;
    if (heads_.test(cell)) return false;
    // Of self's cells only the tail can still match here: a contracted
    // self has head == tail, and an expanded self's head carries the
    // heads-plane bit just tested.
    return cell != particles_[self].tail;
  }
  const CellView view = at(cell);
  if (view.empty()) return false;
  if (static_cast<std::size_t>(view.particle) == self) return false;
  const Particle& p = particles_[static_cast<std::size_t>(view.particle)];
  if (p.expanded && view.isHead) return false;
  return true;
}

bool AmoebotSystem::expandedAdjacentToMovePair(std::size_t id) const {
  const Particle& p = particles_[id];
  SOPS_DASSERT(p.expanded);
  if (gridsOn_) {
    // Of the twelve neighbor probes around (tail, head), the only cells of
    // particle `id` itself are the two ends of the expansion edge: mask
    // the head's direction bit at the tail and vice versa.
    const std::uint32_t tailMask =
        expanded_.neighborMaskUnchecked(p.tail) & ~(1u << p.expandDir);
    const std::uint32_t headMask =
        expanded_.neighborMaskUnchecked(p.head) &
        ~(1u << ((p.expandDir + 3) % 6));
    return (tailMask | headMask) != 0;
  }
  return expandedParticleAdjacent(p.tail, id) ||
         expandedParticleAdjacent(p.head, id);
}

std::uint8_t AmoebotSystem::nStarRingMask(std::size_t id) const {
  const Particle& p = particles_[id];
  SOPS_DASSERT(p.expanded);
  const int di = p.expandDir;
  if (gridsOn_) {
    return static_cast<std::uint8_t>(occ_.ringMaskUnchecked(p.tail, di) &
                                     ~heads_.ringMaskUnchecked(p.tail, di));
  }
  const auto& offsets = lattice::kEdgeRingOffsets[di];
  std::uint8_t mask = 0;
  for (int idx = 0; idx < lattice::kEdgeRingSize; ++idx) {
    if (occupiedExcludingHeads(p.tail + offsets[idx], id)) {
      mask = static_cast<std::uint8_t>(mask | (1u << idx));
    }
  }
  return mask;
}

void AmoebotSystem::expand(std::size_t id, Direction d) {
  SOPS_REQUIRE(id < particles_.size(), "expand: bad id");
  Particle& p = particles_[id];
  SOPS_REQUIRE(!p.expanded, "expand: particle already expanded");
  const TriPoint target = lattice::neighbor(p.tail, d);
  SOPS_REQUIRE(!occupied(target), "expand: target occupied");
  p.head = target;
  p.expanded = true;
  p.expandDir = static_cast<std::uint8_t>(index(d));
  if (maintainCount()) ++expandedCount_;
  if (!gridsOn_) {
    setCell(target, static_cast<std::int32_t>(id), true);
  } else {
    noteMutation();
    // Keep every particle cell interior so unchecked gathers stay
    // licensed.  Tiled planes only grow: allocating around the escape up
    // front keeps all three directories mirrored (heads_/expanded_ must
    // cover every occ_ tile so stripe workers never allocate); flat
    // windows rebuild below, after the bits are placed.  Neither path
    // triggers during a sharded parallel phase: the runner only
    // activates shardSafe() particles there, and defers the rest to its
    // single-threaded sweep.
    if (occ_.tiled() && !occ_.coversInterior(target)) {
      occ_.ensureRegion(target, kPlaneEnsureMargin);
      heads_.ensureTilesOf(occ_);
      expanded_.ensureTilesOf(occ_);
    }
    occ_.set(target);
    heads_.set(target);
    expanded_.set(p.tail);
    expanded_.set(target);
    if (!occ_.coversInterior(target)) regrowPlanes();
  }
}

void AmoebotSystem::contractToHead(std::size_t id) {
  SOPS_REQUIRE(id < particles_.size(), "contractToHead: bad id");
  Particle& p = particles_[id];
  SOPS_REQUIRE(p.expanded, "contractToHead: particle not expanded");
  if (gridsOn_) {
    occ_.clear(p.tail);
    heads_.clear(p.head);
    expanded_.clear(p.tail);
    expanded_.clear(p.head);
    noteMutation();
  } else {
    clearCell(p.tail);
    setCell(p.head, static_cast<std::int32_t>(id), false);
  }
  if (maintainCount()) --expandedCount_;
  p.tail = p.head;
  p.expanded = false;
}

void AmoebotSystem::contractBack(std::size_t id) {
  SOPS_REQUIRE(id < particles_.size(), "contractBack: bad id");
  Particle& p = particles_[id];
  SOPS_REQUIRE(p.expanded, "contractBack: particle not expanded");
  if (gridsOn_) {
    occ_.clear(p.head);
    heads_.clear(p.head);
    expanded_.clear(p.tail);
    expanded_.clear(p.head);
    noteMutation();
  } else {
    clearCell(p.head);
  }
  if (maintainCount()) --expandedCount_;
  p.head = p.tail;
  p.expanded = false;
}

namespace {
// Particle bool flags packed into one byte for the snapshot payload.
constexpr std::uint8_t kFlagExpanded = 1u << 0;
constexpr std::uint8_t kFlagMemory = 1u << 1;
constexpr std::uint8_t kFlagMirrored = 1u << 2;
constexpr std::uint8_t kFlagCrashed = 1u << 3;
constexpr std::uint8_t kFlagByzantine = 1u << 4;
}  // namespace

void AmoebotSystem::saveState(system::SnapshotWriter& w) const {
  SOPS_REQUIRE(!sharded_,
               "saveState: only legal outside a sharded section");
  w.u64(particles_.size());
  for (const Particle& p : particles_) {
    w.i64(p.tail.x);
    w.i64(p.tail.y);
    w.i64(p.head.x);
    w.i64(p.head.y);
    std::uint8_t flags = 0;
    if (p.expanded) flags |= kFlagExpanded;
    if (p.flag) flags |= kFlagMemory;
    if (p.mirrored) flags |= kFlagMirrored;
    if (p.crashed) flags |= kFlagCrashed;
    if (p.byzantine) flags |= kFlagByzantine;
    w.u8(flags);
    w.u8(p.orientationOffset);
    w.u8(p.expandDir);
  }
  if (occ_.tiled()) {
    // Tag 2 (snapshot v3): the exact allocated-tile set, sorted by raw
    // key so the byte stream is a pure function of state.
    w.u8(2);
    const std::vector<std::uint64_t> keys = occ_.sortedTileKeys();
    w.u64(keys.size());
    for (const std::uint64_t key : keys) {
      w.i64(system::BitGrid::tileXOfKey(key));
      w.i64(system::BitGrid::tileYOfKey(key));
    }
  } else {
    // Tags 0/1 keep frame v2's exact byte layout.
    w.u8(gridsOn_ ? 1 : 0);
    w.i64(occ_.originX());
    w.i64(occ_.originY());
    w.u64(occ_.width());
    w.u64(occ_.height());
  }
}

void AmoebotSystem::restoreState(system::SnapshotReader& r) {
  const std::uint64_t count = r.u64();
  SOPS_REQUIRE(count == particles_.size(),
               "snapshot: particle count does not match the configuration "
               "this system was constructed from");
  std::vector<Particle> particles;
  particles.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    Particle p;
    p.tail.x = static_cast<std::int32_t>(r.i64());
    p.tail.y = static_cast<std::int32_t>(r.i64());
    p.head.x = static_cast<std::int32_t>(r.i64());
    p.head.y = static_cast<std::int32_t>(r.i64());
    const std::uint8_t flags = r.u8();
    p.expanded = (flags & kFlagExpanded) != 0;
    p.flag = (flags & kFlagMemory) != 0;
    p.mirrored = (flags & kFlagMirrored) != 0;
    p.crashed = (flags & kFlagCrashed) != 0;
    p.byzantine = (flags & kFlagByzantine) != 0;
    p.orientationOffset = r.u8();
    SOPS_REQUIRE(p.orientationOffset < 6, "snapshot: bad orientation offset");
    p.expandDir = r.u8();
    SOPS_REQUIRE(p.expandDir < 6, "snapshot: bad expansion direction");
    SOPS_REQUIRE(p.expanded || p.head == p.tail,
                 "snapshot: contracted particle with head != tail");
    particles.push_back(p);
  }
  const std::uint8_t backend = r.u8();
  SOPS_REQUIRE(backend <= 2, "snapshot: bad occupancy backend tag");
  std::vector<std::uint64_t> tileKeys;
  std::int64_t originX = 0;
  std::int64_t originY = 0;
  std::uint64_t width = 0;
  std::uint64_t height = 0;
  if (backend == 2) {
    const std::uint64_t tileCount = r.u64();
    tileKeys.reserve(static_cast<std::size_t>(tileCount));
    for (std::uint64_t i = 0; i < tileCount; ++i) {
      const std::int64_t tx = r.i64();
      const std::int64_t ty = r.i64();
      tileKeys.push_back(
          system::BitGrid::tileKey(static_cast<std::int32_t>(tx),
                                   static_cast<std::int32_t>(ty)));
    }
  } else {
    originX = r.i64();
    originY = r.i64();
    width = r.u64();
    height = r.u64();
  }

  particles_ = std::move(particles);
  sharded_ = false;
  recountExpanded();
  if (backend != 0) {
    std::vector<TriPoint> cells;
    cells.reserve(particles_.size() + expandedCount_);
    for (const Particle& p : particles_) {
      cells.push_back(p.tail);
      if (p.expanded) cells.push_back(p.head);
    }
    if (backend == 2) {
      occ_.rebuildTiledExact(cells, tileKeys);
    } else {
      occ_.rebuildExact(cells, originX, originY, width, height);
    }
    heads_.allocateLike(occ_);
    expanded_.allocateLike(occ_);
    for (const Particle& p : particles_) {
      if (!p.expanded) continue;
      heads_.set(p.head);
      expanded_.set(p.tail);
      expanded_.set(p.head);
    }
    gridsOn_ = true;
    gridsGaveUp_ = false;
    idIndexDirty_ = true;  // at() rebuilds lazily, as after any mutation
  } else {
    gridsGaveUp_ = true;
    gridsOn_ = false;
    occ_.disable();
    heads_.disable();
    expanded_.disable();
    rebuildIdIndex();
  }
}

system::ParticleSystem AmoebotSystem::tailConfiguration() const {
  std::vector<TriPoint> tails;
  tails.reserve(particles_.size());
  for (const Particle& p : particles_) tails.push_back(p.tail);
  return system::ParticleSystem(tails);
}

void AmoebotSystem::setCell(TriPoint cell, std::int32_t id, bool isHead) {
  occupancy_.insertOrAssign(lattice::pack(cell), (id << 1) | (isHead ? 1 : 0));
}

void AmoebotSystem::clearCell(TriPoint cell) {
  const bool removed = occupancy_.erase(lattice::pack(cell));
  SOPS_REQUIRE(removed, "clearCell: cell was not occupied");
}

}  // namespace sops::amoebot
