#ifndef SOPS_AMOEBOT_PARALLEL_SCHEDULER_HPP
#define SOPS_AMOEBOT_PARALLEL_SCHEDULER_HPP

/// \file parallel_scheduler.hpp
/// Sharded concurrent execution of Algorithm A: million-particle Poisson
/// runs on all cores, deterministic per seed.
///
/// The amoebot model is asynchronous — any schedule of atomic activations
/// is legal, and §3.2 realizes uniform selection by independent Poisson
/// clocks.  Two activations whose read/write neighborhoods are disjoint
/// commute, so they may run concurrently without changing what any single
/// schedule could have produced.  This runner exploits that:
///
/// **Stripes.**  The occupancy window is cut into vertical stripes of 64
/// lattice columns, exactly the bit planes' 64-bit word columns, so no two
/// stripes ever touch the same word.  An activation of a particle at tail
/// ℓ reads cells within lattice distance 2 of ℓ and writes within distance
/// 1 (|Δx| ≤ distance on G∆'s axial x), so a particle whose in-stripe
/// column lies in the interior band [2, 61] is processed entirely inside
/// its stripe.  Stripes therefore share no state at all — each owns its
/// particles' structs, private RNG streams, and plane words — and can run
/// on any number of threads with identical results.
///
/// **Halo deferral.**  Events of particles in the 2-column halo bands (or
/// close enough to the window edge that an expansion could force a plane
/// regrow, AmoebotSystem::shardSafe) are not executed in the parallel
/// phase: the owning stripe routes them, with their Poisson timestamps, to
/// a deferred list.  A particle that wanders into a band mid-epoch is
/// deferred from that event on (its position then cannot change until the
/// sweep, so the decision is stable).  After the stripes join, the main
/// thread executes all deferred events in (time, particle) order — a
/// legal sequential tail of the epoch's schedule, free to regrow windows.
///
/// **Clocks and coins.**  Each particle owns two decorrelated RNG streams
/// forked from the master seed: one drives its exponential waiting times,
/// one its activation coin flips.  Every random draw is therefore a pure
/// function of (seed, particle, how often that particle acted) — never of
/// thread interleaving — which, with the deterministic stripe/halo rules
/// above, makes the whole trajectory a pure function of the seed.
/// tests/local_golden_test.cpp pins this across thread counts.
///
/// Time advances in epochs of Δ = targetEventsPerEpoch / Σrates; epoch
/// boundaries are the only global synchronization.  Configurations too
/// spread out for the dense planes (AmoebotSystem::fastPathEnabled()
/// false) degrade to running every event on the sweep path — same
/// trajectory contract, no parallelism.

#include <cstdint>
#include <vector>

#include "amoebot/amoebot_system.hpp"
#include "amoebot/local_compression.hpp"
#include "core/cancel.hpp"
#include "rng/random.hpp"
#include "system/snapshot.hpp"

namespace sops::amoebot {

struct ShardedOptions {
  /// Worker threads for the stripe phase; 0 uses hardware_concurrency().
  /// The trajectory is identical for every value.
  unsigned threads = 0;
  /// Expected activations per epoch (sets Δ = target / Σrates); 0 derives
  /// max(2n, 1024).  Smaller epochs tighten the interleaving granularity,
  /// larger ones amortize the epoch barrier.
  std::uint64_t targetEventsPerEpoch = 0;
  /// Per-particle Poisson rates; empty => all 1 (§3.2 allows heterogeneous
  /// rates without changing the stationary distribution).
  std::vector<double> rates;
};

class ShardedPoissonRunner {
 public:
  /// The runner holds references: `sys` and `algo` must outlive it.
  ShardedPoissonRunner(AmoebotSystem& sys,
                       const LocalCompressionAlgorithm& algo,
                       std::uint64_t seed, ShardedOptions options = {});

  /// Installs a cooperative cancel token polled between epochs: once it
  /// trips, runAtLeast/runFor return early (possibly with zero progress)
  /// with the system fully consistent — epoch boundaries are the only
  /// safe preemption points, and also exactly the states saveState() can
  /// serialize.  nullptr uninstalls.
  void setCancelToken(const core::CancelToken* cancel) noexcept {
    cancel_ = cancel;
  }

  /// Runs whole epochs until at least `minActivations` activations have
  /// executed in this call (or the cancel token trips); returns the
  /// number executed.  The id index is suspended for the duration and
  /// restored before returning, so the system is fully consistent (at(),
  /// expandedCount()) between calls.
  std::uint64_t runAtLeast(std::uint64_t minActivations);

  /// Runs whole epochs until simulated time advances by `duration` (or
  /// the cancel token trips).
  std::uint64_t runFor(double duration);

  /// Serializes the runner's evolving state: simulated clock, activation
  /// tallies, and every particle's pending event time plus both private
  /// RNG streams.  The system itself is serialized separately
  /// (AmoebotSystem::saveState); rates and epoch length come from the
  /// constructor.  Only legal between runs (epoch boundaries).
  void saveState(system::SnapshotWriter& w) const;

  /// Inverse of saveState on a runner constructed with the same
  /// (sys, algo, seed, options); continues the trajectory exactly, at any
  /// thread count.
  void restoreState(system::SnapshotReader& r);

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t activations() const noexcept {
    return totalActivations_;
  }
  /// Activations executed on the sequential sweep (halo + window-edge
  /// deferrals) since construction — the serial fraction of the run.
  [[nodiscard]] std::uint64_t sweepActivations() const noexcept {
    return sweepActivations_;
  }
  [[nodiscard]] double epochLength() const noexcept { return epochLength_; }

 private:
  struct Event {
    double time;
    std::uint32_t particle;
  };

  AmoebotSystem& sys_;
  const LocalCompressionAlgorithm& algo_;
  ShardedOptions options_;
  std::vector<double> rates_;
  double epochLength_;
  double now_ = 0.0;
  std::uint64_t totalActivations_ = 0;
  std::uint64_t sweepActivations_ = 0;

  std::vector<rng::Random> clockRng_;  ///< waiting-time stream per particle
  std::vector<rng::Random> coinRng_;   ///< activation-coin stream per particle
  std::vector<double> nextTime_;       ///< next pending activation time
  const core::CancelToken* cancel_ = nullptr;

  /// Reused per-epoch buffers.
  std::vector<std::vector<std::uint32_t>> stripeParticles_;
  std::vector<std::vector<Event>> stripeEvents_;
  std::vector<std::vector<Event>> stripeDeferred_;
  std::vector<std::uint64_t> stripeActivations_;
  std::vector<Event> sweepEvents_;

  /// One epoch [now_, now_ + Δ): stripe phase, join, deferred sweep.
  /// Returns activations executed.
  std::uint64_t runEpoch();
  /// Processes stripe `s` (events of its interior particles in time order,
  /// halo events routed to stripeDeferred_[s]).  Runs on a worker thread.
  void runStripe(std::size_t s, double epochEnd, std::int64_t originX);
};

}  // namespace sops::amoebot

#endif  // SOPS_AMOEBOT_PARALLEL_SCHEDULER_HPP
