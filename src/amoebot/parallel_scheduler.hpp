#ifndef SOPS_AMOEBOT_PARALLEL_SCHEDULER_HPP
#define SOPS_AMOEBOT_PARALLEL_SCHEDULER_HPP

/// \file parallel_scheduler.hpp
/// Sharded concurrent execution of Algorithm A: million-particle Poisson
/// runs on all cores, deterministic per seed.
///
/// The amoebot model is asynchronous — any schedule of atomic activations
/// is legal, and §3.2 realizes uniform selection by independent Poisson
/// clocks.  Two activations whose read/write neighborhoods are disjoint
/// commute, so they may run concurrently without changing what any single
/// schedule could have produced.  This runner exploits that:
///
/// **Stripes.**  The occupancy window is cut into vertical stripes of 64
/// lattice columns, exactly the bit planes' 64-bit word columns, so no two
/// stripes ever touch the same word.  An activation of a particle at tail
/// ℓ reads cells within lattice distance 2 of ℓ and writes within distance
/// 1 (|Δx| ≤ distance on G∆'s axial x), so a particle whose in-stripe
/// column lies in the interior band [2, 61] is processed entirely inside
/// its stripe.  Stripes therefore share no state at all — each owns its
/// particles' structs, private RNG streams, and plane words — and can run
/// on any number of threads with identical results.
///
/// **Halo deferral.**  Events of particles in the 2-column halo bands (or
/// close enough to the window edge that an expansion could force a plane
/// regrow, AmoebotSystem::shardSafe) are not executed in the parallel
/// phase: the owning stripe routes them, with their Poisson timestamps, to
/// a deferred list.  A particle that wanders into a band mid-epoch is
/// deferred from that event on (its position then cannot change until the
/// sweep, so the decision is stable).  After the stripes join, the main
/// thread executes all deferred events in (time, particle) order — a
/// legal sequential tail of the epoch's schedule, free to regrow windows.
///
/// **Clocks and coins.**  Each particle owns two decorrelated RNG streams
/// seeded once from the master seed (rng::particleStream): one drives its
/// exponential waiting times, one its activation coin flips.  The streams
/// live in SoA banks (rng/stream_bank.hpp) — packed 32-byte engine states,
/// one cache line per touched stream — and the clock bank draws a whole
/// epoch's waiting times in one batched sequential pass
/// (PoissonClockBank::fillEpoch).  Every random draw is therefore a pure
/// function of (seed, particle, how often that particle acted) — never of
/// thread interleaving — which, with the deterministic stripe/halo rules
/// above, makes the whole trajectory a pure function of the seed.
/// tests/local_golden_test.cpp pins this across thread counts.
///
/// Time advances in epochs of Δ = target / Σrates; epoch boundaries are
/// the only global synchronization.  An explicit targetEventsPerEpoch
/// fixes the target; the default adapts it each epoch from the
/// deferred-event fraction (core/epoch_control.hpp — a thread-count-
/// invariant signal, so adaptivity preserves determinism).
///
/// Configurations too spread out for one flat window run on BitGrid's
/// tiled backend: the same word-exclusive stripe discipline (tile columns
/// are 64-aligned), but stripes are keyed sparsely (util::FlatMap64)
/// because the allocated-tile bounding box can span astronomically many
/// columns; slots are assigned in a sequential first-touch pass that is
/// the same for every thread count.  Only the forced-sparse test regime
/// (AmoebotSystem::fastPathEnabled() false) degrades to running every
/// event on the sweep path — same trajectory contract, no parallelism.

#include <cstdint>
#include <vector>

#include "amoebot/amoebot_system.hpp"
#include "amoebot/local_compression.hpp"
#include "core/cancel.hpp"
#include "core/epoch_control.hpp"
#include "rng/stream_bank.hpp"
#include "system/snapshot.hpp"
#include "util/event_sort.hpp"
#include "util/flat_hash.hpp"

namespace sops::amoebot {

struct ShardedOptions {
  /// Worker threads for the stripe phase; 0 uses hardware_concurrency().
  /// The trajectory is identical for every value.
  unsigned threads = 0;
  /// Expected activations per epoch (sets Δ = target / Σrates); 0 derives
  /// min(max(2n, 1024), 2^28) and lets the adaptive controller move it.
  /// An explicit value fixes the target for the whole run.
  std::uint64_t targetEventsPerEpoch = 0;
  /// Adapt the derived epoch target from the deferred-event fraction
  /// (core/epoch_control.hpp).  Ignored when targetEventsPerEpoch != 0.
  bool adaptiveEpochs = true;
  /// Per-particle Poisson rates; empty => all 1 (§3.2 allows heterogeneous
  /// rates without changing the stationary distribution).
  std::vector<double> rates;
};

class ShardedPoissonRunner {
 public:
  /// The runner holds references: `sys` and `algo` must outlive it.
  ShardedPoissonRunner(AmoebotSystem& sys,
                       const LocalCompressionAlgorithm& algo,
                       std::uint64_t seed, ShardedOptions options = {});

  /// Installs a cooperative cancel token polled between epochs: once it
  /// trips, runAtLeast/runFor return early (possibly with zero progress)
  /// with the system fully consistent — epoch boundaries are the only
  /// safe preemption points, and also exactly the states saveState() can
  /// serialize.  nullptr uninstalls.
  void setCancelToken(const core::CancelToken* cancel) noexcept {
    cancel_ = cancel;
  }

  /// Runs whole epochs until at least `minActivations` activations have
  /// executed in this call (or the cancel token trips); returns the
  /// number executed.  The id index is suspended for the duration and
  /// restored before returning, so the system is fully consistent (at(),
  /// expandedCount()) between calls.
  std::uint64_t runAtLeast(std::uint64_t minActivations);

  /// Runs whole epochs until simulated time advances by `duration` (or
  /// the cancel token trips).
  std::uint64_t runFor(double duration);

  /// Serializes the runner's evolving state: simulated clock, activation
  /// tallies, the current epoch target (history-dependent under the
  /// adaptive controller), and every particle's pending event time plus
  /// both private stream states (bare engine words — the banks' master
  /// seed comes from the constructor).  The system itself is serialized
  /// separately (AmoebotSystem::saveState); rates and epoch bounds come
  /// from the constructor.  Only legal between runs (epoch boundaries).
  void saveState(system::SnapshotWriter& w) const;

  /// Inverse of saveState on a runner constructed with the same
  /// (sys, algo, seed, options); continues the trajectory exactly, at any
  /// thread count.
  void restoreState(system::SnapshotReader& r);

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t activations() const noexcept {
    return totalActivations_;
  }
  /// Activations executed on the sequential sweep (halo + window-edge
  /// deferrals) since construction — the serial fraction of the run.
  [[nodiscard]] std::uint64_t sweepActivations() const noexcept {
    return sweepActivations_;
  }
  [[nodiscard]] double epochLength() const noexcept { return epochLength_; }
  /// Current activations-per-epoch target (fixed, or the adaptive
  /// controller's latest decision).
  [[nodiscard]] std::uint64_t epochTarget() const noexcept {
    return epochTarget_;
  }

 private:
  struct Event {
    double time;
    std::uint32_t particle;

    friend bool operator<(const Event& a, const Event& b) noexcept {
      if (a.time != b.time) return a.time < b.time;
      return a.particle < b.particle;
    }
  };

  AmoebotSystem& sys_;
  const LocalCompressionAlgorithm& algo_;
  ShardedOptions options_;
  bool adaptive_ = true;
  double epochLength_;
  double now_ = 0.0;
  std::uint64_t epochTarget_ = 0;
  std::uint64_t totalActivations_ = 0;
  std::uint64_t sweepActivations_ = 0;
  core::AdaptiveEpochController controller_;

  rng::PoissonClockBank clock_;  ///< SoA waiting-time streams + rates
  rng::StreamBank coin_;         ///< SoA activation-coin streams
  rng::PoissonClockBank::EpochDraws draws_;
  const core::CancelToken* cancel_ = nullptr;

  /// Reused per-epoch buffers.  Indexed by buffer *slot*: equal to the
  /// stripe index over a flat window, assigned first-touch over a tiled
  /// one (stripeSlots_/stripeIndexOfSlot_ hold the mapping).
  std::vector<std::vector<std::uint32_t>> stripeParticles_;
  std::vector<std::vector<Event>> stripeEvents_;
  std::vector<std::vector<Event>> stripeDeferred_;
  std::vector<std::uint64_t> stripeActivations_;
  std::vector<util::EventSortScratch<Event>> sortScratch_;
  util::EventSortScratch<Event> sweepScratch_;
  std::vector<std::size_t> activeStripes_;  ///< slots, in merge order
  util::FlatMap64<std::uint32_t> stripeSlots_;  ///< tiled: stripe idx → slot
  std::vector<std::uint64_t> stripeIndexOfSlot_;
  std::vector<Event> sweepEvents_;

  /// One epoch [now_, now_ + Δ): batched draw, stripe phase, join,
  /// deferred sweep.  Returns activations executed.
  std::uint64_t runEpoch();
  /// Processes the stripe in buffer slot `slot`, covering the 64 columns
  /// at `stripeIndex` (events of its interior particles in time order,
  /// halo events routed to stripeDeferred_[slot]).  Runs on a worker
  /// thread.
  void runStripe(std::size_t slot, std::uint64_t stripeIndex,
                 std::int64_t originX, double epochEnd);
  /// (time, particle) sort shared by the stripe phase and the sweep:
  /// every firing time lies in the epoch window, so the bucket sort in
  /// util/event_sort.hpp applies; per-bucket comparison is Event's own
  /// operator<, so the result is the exact lexicographic schedule.
  static void sortEvents(std::vector<Event>& events,
                         util::EventSortScratch<Event>& scratch,
                         double begin, double end);
};

}  // namespace sops::amoebot

#endif  // SOPS_AMOEBOT_PARALLEL_SCHEDULER_HPP
