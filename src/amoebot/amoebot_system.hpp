#ifndef SOPS_AMOEBOT_AMOEBOT_SYSTEM_HPP
#define SOPS_AMOEBOT_AMOEBOT_SYSTEM_HPP

/// \file amoebot_system.hpp
/// The geometric amoebot model substrate (paper §2.1), on the dense
/// bitboard fast path.
///
/// Particles occupy one vertex (contracted) or two adjacent vertices
/// (expanded, with head and tail).  Particles are anonymous, have no global
/// compass or chirality (each gets a private random port labeling), and
/// carry the single bit of persistent memory Algorithm A needs (the flag).
/// Movement is by expansion into an empty adjacent vertex followed by a
/// contraction onto head or tail.  Atomicity of activations is provided by
/// the schedulers in scheduler.hpp / parallel_scheduler.hpp.
///
/// Occupancy encoding.  Three bit planes share one window geometry (same
/// origin/stride, so one bit-index computation addresses all three):
///
///   occ       every occupied cell — heads and tails alike,
///   heads     heads of currently *expanded* particles,
///   expanded  both cells (head and tail) of currently expanded particles.
///
/// Every per-activation query of Algorithm A becomes word loads against
/// these planes: cell occupancy is one load of `occ`; the N* oracle of
/// step 9 (ignore heads of expanded neighbors) is the 8-cell ring gather
/// `occ & ~heads`; the step-3/5 expanded-neighbor scans are one 6-neighbor
/// gather of `expanded`.  The planes keep ParticleSystem's interior-margin
/// invariant — every particle cell sits ≥ BitGrid::kInteriorMargin inside
/// the window, regrown on escape — which licenses the unchecked gathers.
/// Configurations too spread out for one flat window (BitGrid::kMaxWords)
/// run on the tiled backend: all three planes share one tile directory
/// layout (heads_/expanded_ always cover every occ_ tile), so the
/// word-exclusive stripe discipline carries over.  The sparse hash-index
/// regime survives only behind forceSparseForTest(), exactly like
/// ParticleSystem.
///
/// The cell -> (id << 1 | isHead) hash index is still maintained for id
/// lookups (at()) and as the sparse fallback; a sharded runner may suspend
/// it during a concurrent section (see suspendIdIndex()).

#include <array>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "lattice/direction.hpp"
#include "lattice/tri_point.hpp"
#include "rng/random.hpp"
#include "system/bit_grid.hpp"
#include "system/particle_system.hpp"
#include "system/snapshot.hpp"
#include "util/flat_hash.hpp"

namespace sops::amoebot {

using lattice::Direction;
using lattice::TriPoint;

struct Particle {
  TriPoint tail;
  TriPoint head;  ///< equals tail while contracted
  bool expanded = false;
  bool flag = false;  ///< Algorithm A's one bit of persistent memory
  /// Private port labeling: global direction = rotated(offset, ±port).
  std::uint8_t orientationOffset = 0;
  bool mirrored = false;  ///< chirality of the private labeling
  bool crashed = false;    ///< crash fault (§3.3): never acts again
  bool byzantine = false;  ///< adversarial: expands and refuses to contract
  /// Direction index tail -> head while expanded (set by expand(); avoids
  /// re-deriving it from coordinates on the contraction path).
  std::uint8_t expandDir = 0;
};
// saveState() serializes a Particle as tail/head coordinates, one packed
// flags byte (expanded/flag/mirrored/crashed/byzantine), and the two u8s
// — every member exactly once.  Pinning the layout turns "someone added a
// member" into a compile error here, where saveState/restoreState and the
// kFlag* bits must be extended in the same change.
static_assert(std::is_trivially_copyable_v<Particle> &&
              sizeof(Particle) == 2 * sizeof(TriPoint) + 8);

/// Private-port translation table: kPortTable[offset][mirrored][port] is
/// the global direction of port `port` under orientation (offset,
/// mirrored).  The reference kernel recomputes the same value with 60°
/// rotations; tests/amoebot_test.cpp asserts the two agree.
inline constexpr auto kPortTable = [] {
  std::array<std::array<std::array<Direction, 6>, 2>, 6> table{};
  for (int offset = 0; offset < 6; ++offset) {
    for (int port = 0; port < 6; ++port) {
      table[offset][0][port] =
          lattice::rotated(static_cast<Direction>(offset), port);
      table[offset][1][port] =
          lattice::rotated(static_cast<Direction>(offset), -port);
    }
  }
  return table;
}();

class AmoebotSystem {
 public:
  /// What a lattice cell currently holds.
  struct CellView {
    std::int32_t particle = kEmpty;  ///< particle id, or kEmpty
    bool isHead = false;             ///< head of an *expanded* particle
    static constexpr std::int32_t kEmpty = -1;
    [[nodiscard]] bool empty() const noexcept { return particle == kEmpty; }
  };

  /// Builds an all-contracted system from a configuration, assigning each
  /// particle a private random orientation and chirality.
  AmoebotSystem(const system::ParticleSystem& initial, rng::Random& rng);

  [[nodiscard]] std::size_t size() const noexcept { return particles_.size(); }
  [[nodiscard]] const Particle& particle(std::size_t id) const {
    SOPS_DASSERT(id < particles_.size());
    return particles_[id];
  }

  /// Requires the id index to be live (it always is outside a sharded
  /// runner's concurrent section).  While the dense planes are on, the
  /// index is refreshed lazily here rather than on every expand/contract —
  /// activations never consult it, so the hot path pays one dirty-bit
  /// store instead of hash mutations.  The lazy rebuild allocates, so
  /// (unlike the seed's pure hash probe) this is not noexcept.
  [[nodiscard]] CellView at(TriPoint cell) const;

  [[nodiscard]] bool occupied(TriPoint cell) const noexcept {
    if (gridsOn_) return occ_.test(cell);
    return occupancy_.contains(lattice::pack(cell));
  }

  /// Occupancy of a cell within graph distance kInteriorMargin of some
  /// particle cell (move targets and neighbor probes qualify): skips the
  /// window bounds check — one word load on the hot path.
  [[nodiscard]] bool occupiedNear(TriPoint cell) const noexcept {
    if (gridsOn_) return occ_.testUnchecked(cell);
    return occupancy_.contains(lattice::pack(cell));
  }

  /// Translates a particle's private port (0..5) to a global direction.
  /// One 72-entry L1-resident table lookup — no modular arithmetic on the
  /// activation hot path (kPortTable[offset][mirrored][port] ==
  /// rotated(offset, mirrored ? -port : port) by construction).
  [[nodiscard]] Direction globalDirection(std::size_t id, int port) const {
    SOPS_DASSERT(id < particles_.size());
    SOPS_DASSERT(port >= 0 && port < lattice::kNumDirections);
    const Particle& p = particles_[id];
    return kPortTable[p.orientationOffset][p.mirrored ? 1 : 0][port];
  }

  /// True iff any cell adjacent to `cell` holds (head or tail of) an
  /// *expanded* particle other than `self`.
  [[nodiscard]] bool expandedParticleAdjacent(TriPoint cell,
                                              std::size_t self) const;

  /// Occupancy oracle N* of Algorithm A (step 9): cell counts as occupied
  /// unless empty, part of particle `self`, or the head of an expanded
  /// particle.
  [[nodiscard]] bool occupiedExcludingHeads(TriPoint cell,
                                            std::size_t self) const;

  /// Steps 5–7 of Algorithm A for the just-expanded particle `id`: true
  /// iff an expanded particle *other than id* is adjacent to id's tail or
  /// head.  Equivalent to expandedParticleAdjacent(tail) ||
  /// expandedParticleAdjacent(head), but the self-exclusion collapses to
  /// masking the one direction bit pointing along the expansion edge.
  [[nodiscard]] bool expandedAdjacentToMovePair(std::size_t id) const;

  /// The 8-cell ring of an *expanded* particle's move (tail, expandDir)
  /// under the N* oracle — the whole step-9/10 neighborhood of Algorithm A
  /// as two gathers: occ ring & ~heads ring.  Ring cells never include the
  /// particle's own tail or head, so no self test is needed.
  [[nodiscard]] std::uint8_t nStarRingMask(std::size_t id) const;

  // --- atomic movements (enforce the model's physical constraints) ---

  /// Expands a contracted particle into the adjacent empty cell in the
  /// given global direction.
  void expand(std::size_t id, Direction d);

  /// Completes the movement: particle occupies only its head.
  void contractToHead(std::size_t id);

  /// Aborts the movement: particle occupies only its (original) tail.
  void contractBack(std::size_t id);

  void setFlag(std::size_t id, bool value) {
    SOPS_DASSERT(id < particles_.size());
    particles_[id].flag = value;
  }
  void markCrashed(std::size_t id) { particles_[id].crashed = true; }
  void markByzantine(std::size_t id) { particles_[id].byzantine = true; }

  /// Number of currently expanded particles (diagnostics; not maintained
  /// while the id index is suspended — restoreIdIndex() recomputes it).
  [[nodiscard]] std::size_t expandedCount() const noexcept {
    return expandedCount_;
  }

  /// Projection to the chain's state space: contracted particles at their
  /// location, expanded particles at their tails (§3.2, footnote 2).
  [[nodiscard]] system::ParticleSystem tailConfiguration() const;

  // --- sharded-execution support (amoebot/parallel_scheduler) ---

  /// True while the dense bit planes are live (the sharded runner requires
  /// them for its stripe geometry; the forced-sparse test regime falls
  /// back to the hash index and to sequential execution).
  [[nodiscard]] bool fastPathEnabled() const noexcept { return gridsOn_; }

  /// Which occupancy regime the planes are running: "dense-flat",
  /// "dense-tiled", or "sparse" (see ParticleSystem::regimeName).
  [[nodiscard]] const char* regimeName() const noexcept {
    if (!gridsOn_) return "sparse";
    return occ_.tiled() ? "dense-tiled" : "dense-flat";
  }

  /// Pins the sparse (hash-only) regime — the organic fallback no longer
  /// exists now that plane rebuilds promote to tiled, but tests still
  /// need to exercise the sparse code paths.
  void forceSparseForTest();

  /// The occupancy plane — the sharded runner derives its word-aligned
  /// stripe decomposition from this window's origin.
  [[nodiscard]] const system::BitGrid& occupancyGrid() const noexcept {
    return occ_;
  }

  /// True iff every cell an activation of a particle at `tail` can touch
  /// (reads within distance 2, a 1-cell expansion plus that head's reads)
  /// stays strictly inside the window — i.e. no plane regrow can trigger.
  /// The sharded runner defers activations that fail this to its
  /// single-threaded sweep, where regrowing is safe.
  [[nodiscard]] bool shardSafe(TriPoint tail) const noexcept {
    return occ_.coversInteriorBy(tail, system::BitGrid::kInteriorMargin + 1);
  }

  /// Suspends maintenance of the cell -> id hash index and of
  /// expandedCount() so concurrent stripe workers touch only bit-plane
  /// words and per-particle state.  Only meaningful while
  /// fastPathEnabled(); at()/particleAt-style lookups are invalid until
  /// restoreIdIndex().  The planes never give up mid-section: a flat
  /// window that outgrows BitGrid::kMaxWords promotes to the tiled
  /// backend (on the scheduler's single-threaded sweep — stripe workers
  /// never trigger a regrow), and tiled directories only grow.
  void suspendIdIndex();

  /// Rebuilds the id index and expandedCount() from particle state and
  /// resumes maintenance.
  void restoreIdIndex();

  // --- snapshot support (system/snapshot.hpp) ---

  /// Serializes every particle (cells, expansion state, private port
  /// labeling, fault flags) plus the exact occupancy-window geometry: the
  /// sharded scheduler's stripe decomposition and deferral rules are
  /// functions of it, so resume must reproduce the window verbatim rather
  /// than re-derive it.  Only legal outside a sharded section.
  void saveState(system::SnapshotWriter& w) const;

  /// Inverse of saveState: replaces the particle set wholesale (the
  /// constructor's random orientation draws are overwritten), rebuilds
  /// the planes with the snapshotted geometry or pins the sparse
  /// fallback, and recomputes the derived index/counters.
  void restoreState(system::SnapshotReader& r);

 private:
  std::vector<Particle> particles_;
  /// cell -> (id << 1) | isHead.  Eagerly maintained only in sparse mode
  /// (it is then the occupancy source of truth); with the planes on it is
  /// rebuilt lazily by at() / restoreIdIndex() when dirty.
  mutable util::FlatMap64<std::int32_t> occupancy_;
  mutable bool idIndexDirty_ = false;
  std::size_t expandedCount_ = 0;

  system::BitGrid occ_;       ///< all occupied cells (heads + tails)
  system::BitGrid heads_;     ///< heads of expanded particles
  system::BitGrid expanded_;  ///< head and tail cells of expanded particles
  bool gridsOn_ = false;
  bool gridsGaveUp_ = false;
  bool sharded_ = false;  ///< between suspendIdIndex() and restoreIdIndex()

  /// Bookkeeping after a mutation: sparse mode keeps the hash eagerly (the
  /// caller already applied its updates); plane mode just marks the index
  /// stale; a sharded section does nothing at all (restore rebuilds).
  void noteMutation() noexcept {
    if (gridsOn_ && !sharded_) idIndexDirty_ = true;
  }
  /// expandedCount_ must not be touched by concurrent stripe workers; it
  /// is recomputed on restore (and on plane fallback, where execution is
  /// single-threaded again).
  [[nodiscard]] bool maintainCount() const noexcept {
    return !sharded_ || !gridsOn_;
  }

  void setCell(TriPoint cell, std::int32_t id, bool isHead);
  void clearCell(TriPoint cell);
  void regrowPlanes();
  void rebuildIdIndex() const;
  void recountExpanded();
};

}  // namespace sops::amoebot

#endif  // SOPS_AMOEBOT_AMOEBOT_SYSTEM_HPP
