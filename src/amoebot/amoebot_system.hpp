#ifndef SOPS_AMOEBOT_AMOEBOT_SYSTEM_HPP
#define SOPS_AMOEBOT_AMOEBOT_SYSTEM_HPP

/// \file amoebot_system.hpp
/// The geometric amoebot model substrate (paper §2.1).
///
/// Particles occupy one vertex (contracted) or two adjacent vertices
/// (expanded, with head and tail).  Particles are anonymous, have no global
/// compass or chirality (each gets a private random port labeling), and
/// carry the single bit of persistent memory Algorithm A needs (the flag).
/// Movement is by expansion into an empty adjacent vertex followed by a
/// contraction onto head or tail.  Atomicity of activations is provided by
/// the schedulers in scheduler.hpp.

#include <cstdint>
#include <vector>

#include "lattice/direction.hpp"
#include "lattice/tri_point.hpp"
#include "rng/random.hpp"
#include "system/particle_system.hpp"
#include "util/flat_hash.hpp"

namespace sops::amoebot {

using lattice::Direction;
using lattice::TriPoint;

struct Particle {
  TriPoint tail;
  TriPoint head;  ///< equals tail while contracted
  bool expanded = false;
  bool flag = false;  ///< Algorithm A's one bit of persistent memory
  /// Private port labeling: global direction = rotated(offset, ±port).
  std::uint8_t orientationOffset = 0;
  bool mirrored = false;  ///< chirality of the private labeling
  bool crashed = false;    ///< crash fault (§3.3): never acts again
  bool byzantine = false;  ///< adversarial: expands and refuses to contract
};

class AmoebotSystem {
 public:
  /// What a lattice cell currently holds.
  struct CellView {
    std::int32_t particle = kEmpty;  ///< particle id, or kEmpty
    bool isHead = false;             ///< head of an *expanded* particle
    static constexpr std::int32_t kEmpty = -1;
    [[nodiscard]] bool empty() const noexcept { return particle == kEmpty; }
  };

  /// Builds an all-contracted system from a configuration, assigning each
  /// particle a private random orientation and chirality.
  AmoebotSystem(const system::ParticleSystem& initial, rng::Random& rng);

  [[nodiscard]] std::size_t size() const noexcept { return particles_.size(); }
  [[nodiscard]] const Particle& particle(std::size_t id) const {
    SOPS_DASSERT(id < particles_.size());
    return particles_[id];
  }

  [[nodiscard]] CellView at(TriPoint cell) const noexcept;
  [[nodiscard]] bool occupied(TriPoint cell) const noexcept {
    return !at(cell).empty();
  }

  /// Translates a particle's private port (0..5) to a global direction.
  [[nodiscard]] Direction globalDirection(std::size_t id, int port) const;

  /// True iff any cell adjacent to `cell` holds (head or tail of) an
  /// *expanded* particle other than `self`.
  [[nodiscard]] bool expandedParticleAdjacent(TriPoint cell,
                                              std::size_t self) const;

  /// Occupancy oracle N* of Algorithm A (step 9): cell counts as occupied
  /// unless empty, part of particle `self`, or the head of an expanded
  /// particle.
  [[nodiscard]] bool occupiedExcludingHeads(TriPoint cell,
                                            std::size_t self) const;

  // --- atomic movements (enforce the model's physical constraints) ---

  /// Expands a contracted particle into the adjacent empty cell in the
  /// given global direction.
  void expand(std::size_t id, Direction d);

  /// Completes the movement: particle occupies only its head.
  void contractToHead(std::size_t id);

  /// Aborts the movement: particle occupies only its (original) tail.
  void contractBack(std::size_t id);

  void setFlag(std::size_t id, bool value) {
    SOPS_DASSERT(id < particles_.size());
    particles_[id].flag = value;
  }
  void markCrashed(std::size_t id) { particles_[id].crashed = true; }
  void markByzantine(std::size_t id) { particles_[id].byzantine = true; }

  /// Number of currently expanded particles (diagnostics).
  [[nodiscard]] std::size_t expandedCount() const noexcept { return expandedCount_; }

  /// Projection to the chain's state space: contracted particles at their
  /// location, expanded particles at their tails (§3.2, footnote 2).
  [[nodiscard]] system::ParticleSystem tailConfiguration() const;

 private:
  std::vector<Particle> particles_;
  util::FlatMap64<std::int32_t> occupancy_;  ///< cell -> (id << 1) | isHead
  std::size_t expandedCount_ = 0;

  void setCell(TriPoint cell, std::int32_t id, bool isHead);
  void clearCell(TriPoint cell);
};

}  // namespace sops::amoebot

#endif  // SOPS_AMOEBOT_AMOEBOT_SYSTEM_HPP
