#include "amoebot/local_compression.hpp"

#include "core/move_table.hpp"

namespace sops::amoebot {

LocalCompressionAlgorithm::LocalCompressionAlgorithm(LocalOptions options)
    : options_(options) {
  SOPS_REQUIRE(options_.lambda > 0.0, "lambda must be positive");
  // Fold the static move table and λ into per-mask decisions.  kMoveStructOk
  // is exactly conditions (1)+(2) of step 11; lambdaPower is the shared λ^δ
  // implementation, so the Metropolis threshold cannot drift from the chain
  // kernel or the exact transition-matrix builder.
  const auto& table = core::moveTable();
  for (int m = 0; m < 256; ++m) {
    const core::MoveTableEntry& entry = table[static_cast<std::size_t>(m)];
    decisions_[m].threshold = core::lambdaPower(options_.lambda, entry.delta);
    decisions_[m].structOk = (entry.flags & core::kMoveStructOk) != 0;
  }
}

ActivationResult LocalCompressionAlgorithm::activate(AmoebotSystem& sys,
                                                     std::size_t id,
                                                     rng::Random& rng) const {
  const Particle& p = sys.particle(id);
  if (p.crashed) return ActivationResult::Idle;
  if (p.byzantine) return activateByzantine(sys, id, rng);
  return p.expanded ? activateExpanded(sys, id, rng)
                    : activateContracted(sys, id, rng);
}

ActivationResult LocalCompressionAlgorithm::activateContracted(
    AmoebotSystem& sys, std::size_t id, rng::Random& rng) const {
  const Particle& p = sys.particle(id);
  // Step 2: a uniformly random *private* port; the particle has no global
  // compass, but uniform over its own labels is uniform over directions.
  const Direction d = sys.globalDirection(id, static_cast<int>(rng.below(6)));
  const TriPoint l = p.tail;
  const TriPoint target = lattice::neighbor(l, d);

  // Step 3: ℓ' must be empty and P must have no expanded neighbor.  Both
  // probes are within distance 1 of the tail, so the unchecked plane loads
  // apply.
  if (sys.occupiedNear(target)) return ActivationResult::Idle;
  if (sys.expandedParticleAdjacent(l, id)) return ActivationResult::Idle;

  // Step 4: expand.
  sys.expand(id, d);

  // Steps 5–7: flag records whether the expansion happened in a
  // neighborhood free of other expanded particles.
  sys.setFlag(id, !sys.expandedAdjacentToMovePair(id));
  return ActivationResult::Expanded;
}

ActivationResult LocalCompressionAlgorithm::activateExpanded(
    AmoebotSystem& sys, std::size_t id, rng::Random& rng) const {
  const Particle& p = sys.particle(id);

  // Steps 9–11: the whole structural evaluation is one N* ring gather and
  // one decision-table load.  The uniform is drawn exactly when the
  // structural conditions hold — identical draw order to the reference
  // kernel's short-circuit chain (condition (4), the flag, tests last).
  const Decision& decision = decisions_[sys.nStarRingMask(id)];
  if (decision.structOk && rng.uniform() < decision.threshold && p.flag) {
    sys.contractToHead(id);
    return ActivationResult::MovedToHead;
  }
  sys.contractBack(id);
  return ActivationResult::ContractedBack;
}

ActivationResult LocalCompressionAlgorithm::activateByzantine(
    AmoebotSystem& sys, std::size_t id, rng::Random& rng) const {
  const Particle& p = sys.particle(id);
  if (p.expanded) return ActivationResult::Idle;  // refuses to contract
  // Expands away whenever physically possible, ignoring the protocol.
  const int firstPort = static_cast<int>(rng.below(6));
  for (int probe = 0; probe < 6; ++probe) {
    const Direction d = sys.globalDirection(id, (firstPort + probe) % 6);
    if (!sys.occupiedNear(lattice::neighbor(p.tail, d))) {
      sys.expand(id, d);
      sys.setFlag(id, false);
      return ActivationResult::Expanded;
    }
  }
  return ActivationResult::Idle;
}

}  // namespace sops::amoebot
