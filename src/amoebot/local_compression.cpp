#include "amoebot/local_compression.hpp"

#include <cmath>

#include "core/properties.hpp"

namespace sops::amoebot {

LocalCompressionAlgorithm::LocalCompressionAlgorithm(LocalOptions options)
    : options_(options) {
  SOPS_REQUIRE(options_.lambda > 0.0, "lambda must be positive");
  for (int delta = -5; delta <= 5; ++delta) {
    lambdaPow_[delta + 5] = std::pow(options_.lambda, delta);
  }
}

ActivationResult LocalCompressionAlgorithm::activate(AmoebotSystem& sys,
                                                     std::size_t id,
                                                     rng::Random& rng) const {
  const Particle& p = sys.particle(id);
  if (p.crashed) return ActivationResult::Idle;
  if (p.byzantine) return activateByzantine(sys, id, rng);
  return p.expanded ? activateExpanded(sys, id, rng)
                    : activateContracted(sys, id, rng);
}

ActivationResult LocalCompressionAlgorithm::activateContracted(
    AmoebotSystem& sys, std::size_t id, rng::Random& rng) const {
  const Particle& p = sys.particle(id);
  // Step 2: a uniformly random *private* port; the particle has no global
  // compass, but uniform over its own labels is uniform over directions.
  const Direction d = sys.globalDirection(id, static_cast<int>(rng.below(6)));
  const TriPoint l = p.tail;
  const TriPoint target = lattice::neighbor(l, d);

  // Step 3: ℓ' must be empty and P must have no expanded neighbor.
  if (sys.occupied(target)) return ActivationResult::Idle;
  if (sys.expandedParticleAdjacent(l, id)) return ActivationResult::Idle;

  // Step 4: expand.
  sys.expand(id, d);

  // Steps 5–7: flag records whether the expansion happened in a
  // neighborhood free of other expanded particles.
  const bool nearbyExpanded = sys.expandedParticleAdjacent(l, id) ||
                              sys.expandedParticleAdjacent(target, id);
  sys.setFlag(id, !nearbyExpanded);
  return ActivationResult::Expanded;
}

ActivationResult LocalCompressionAlgorithm::activateExpanded(
    AmoebotSystem& sys, std::size_t id, rng::Random& rng) const {
  const Particle& p = sys.particle(id);
  const TriPoint l = p.tail;
  const TriPoint head = p.head;
  const auto dOpt = lattice::directionBetween(l, head);
  SOPS_REQUIRE(dOpt.has_value(), "expanded particle with non-adjacent head");
  const Direction d = *dOpt;

  // Steps 9–10 with the N* oracle: ignore heads of expanded neighbors
  // (those neighbors are obligated to contract back).
  const auto oracle = [&sys, id](TriPoint cell) {
    return sys.occupiedExcludingHeads(cell, id);
  };
  const std::uint8_t mask = core::ringMask(l, d, oracle);
  const int e = core::neighborsBefore(mask);
  const int ePrime = core::neighborsAfter(mask);

  // Step 11, conditions (1)-(4).
  const bool conditions =
      e != 5 && (core::property1Holds(mask) || core::property2Holds(mask)) &&
      rng.uniform() < lambdaPow_[ePrime - e + 5] && p.flag;
  if (conditions) {
    sys.contractToHead(id);
    return ActivationResult::MovedToHead;
  }
  sys.contractBack(id);
  return ActivationResult::ContractedBack;
}

ActivationResult LocalCompressionAlgorithm::activateByzantine(
    AmoebotSystem& sys, std::size_t id, rng::Random& rng) const {
  const Particle& p = sys.particle(id);
  if (p.expanded) return ActivationResult::Idle;  // refuses to contract
  // Expands away whenever physically possible, ignoring the protocol.
  const int firstPort = static_cast<int>(rng.below(6));
  for (int probe = 0; probe < 6; ++probe) {
    const Direction d = sys.globalDirection(id, (firstPort + probe) % 6);
    if (!sys.occupied(lattice::neighbor(p.tail, d))) {
      sys.expand(id, d);
      sys.setFlag(id, false);
      return ActivationResult::Expanded;
    }
  }
  return ActivationResult::Idle;
}

}  // namespace sops::amoebot
