#ifndef SOPS_SYSTEM_BIT_GRID_HPP
#define SOPS_SYSTEM_BIT_GRID_HPP

/// \file bit_grid.hpp
/// Dense bit-packed occupancy window over the triangular lattice.
///
/// Occupancy queries dominate every chain step (the target cell plus the
/// 8-cell ring, ~9 per proposed move).  The open-addressing index answers
/// each with a hash probe chain; this grid answers with two subtractions,
/// two unsigned bound checks, and one word load — the "bitboard" of the
/// hot path.  Rows are keyed by axial y and bit-packed along axial x with
/// a 64-bit word stride, so the 8 ring cells of a move touch at most four
/// consecutive rows and their words stay cache-resident.
///
/// The grid covers a rectangular window [originX, originX+width) ×
/// [originY, originY+height) that ParticleSystem keeps a superset of the
/// bounding box of all particles (rebuilt with proportional margin when a
/// particle leaves it).  Cells outside the window are by construction
/// unoccupied, so test() simply returns false there.  Pathologically
/// spread-out configurations whose bounding box would exceed kMaxWords
/// are not representable densely; rebuild() then reports failure and the
/// caller falls back to its sparse hash index.

#include <cstdint>
#include <span>
#include <vector>

#include "lattice/edge_ring.hpp"
#include "lattice/tri_point.hpp"
#include "util/assert.hpp"

namespace sops::system {

using lattice::TriPoint;

class BitGrid {
 public:
  /// Window size cap: 2^28 bits = 32 MiB, a 16384×16384 cell window.
  /// Connected configurations of up to ~10^8 particles fit; beyond that
  /// (or for adversarially sparse point sets) the caller degrades to its
  /// hash index.
  static constexpr std::size_t kMaxWords = (std::size_t{1} << 28) / 64;

  BitGrid() = default;

  /// True when a window is allocated and test()/set()/clear() are usable.
  [[nodiscard]] bool enabled() const noexcept { return !words_.empty(); }

  /// True iff p lies inside the allocated window.
  [[nodiscard]] bool covers(TriPoint p) const noexcept {
    const auto dx = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(p.x) - originX_);
    const auto dy = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(p.y) - originY_);
    return dx < width_ && dy < height_;
  }

  /// True iff p lies at least kInteriorMargin cells from every window edge.
  /// ParticleSystem keeps every particle interior in this sense, which is
  /// what licenses testUnchecked() on any cell within graph distance
  /// kInteriorMargin of a particle (ring and target cells of a move).
  [[nodiscard]] bool coversInterior(TriPoint p) const noexcept {
    return coversInteriorBy(p, kInteriorMargin);
  }

  /// True iff p lies at least `depth` cells from every window edge.  The
  /// sharded amoebot runner uses depth = kInteriorMargin + 1 so that a
  /// particle it activates concurrently can expand one cell in any
  /// direction and the head still satisfies coversInterior() — no window
  /// regrow can trigger inside a parallel phase.
  [[nodiscard]] bool coversInteriorBy(TriPoint p,
                                      std::int64_t depth) const noexcept {
    const auto dx = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(p.x) - originX_ - depth);
    const auto dy = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(p.y) - originY_ - depth);
    return dx < width_ - 2 * static_cast<std::uint64_t>(depth) &&
           dy < height_ - 2 * static_cast<std::uint64_t>(depth);
  }

  /// Ring/target cells sit within graph distance 2 of a particle.
  static constexpr std::int64_t kInteriorMargin = 2;

  /// Occupancy of p without the window bounds check.  Precondition: p is
  /// within kInteriorMargin cells of some cell satisfying coversInterior()
  /// — guaranteed by ParticleSystem's interior-margin invariant for any
  /// cell adjacent-or-ring to a particle.
  [[nodiscard]] bool testUnchecked(TriPoint p) const noexcept {
    SOPS_DASSERT(covers(p));
    const auto dx = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(p.x) - originX_);
    const auto dy = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(p.y) - originY_);
    return (words_[dy * strideWords_ + (dx >> 6)] >> (dx & 63)) & 1u;
  }

  /// Occupancy bitmask of the 8 ring cells of the move (ℓ, d): one bit
  /// index for ℓ, then eight adds against per-direction deltas precomputed
  /// at rebuild() — no per-cell multiplies or bounds checks.
  /// Preconditions: enabled(), and ℓ satisfies coversInterior() (it is a
  /// particle under ParticleSystem's interior-margin invariant).
  [[nodiscard]] std::uint8_t ringMaskUnchecked(TriPoint l,
                                               int dirIndex) const noexcept {
    SOPS_DASSERT(coversInterior(l));
    const std::uint64_t base =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(l.y) - originY_) *
            (strideWords_ * 64) +
        static_cast<std::uint64_t>(static_cast<std::int64_t>(l.x) - originX_);
    const std::int64_t* deltas = ringDeltas_[dirIndex];
    std::uint32_t mask = 0;
    for (int idx = 0; idx < lattice::kEdgeRingSize; ++idx) {
      const std::uint64_t bit =
          base + static_cast<std::uint64_t>(deltas[idx]);
      mask |= static_cast<std::uint32_t>((words_[bit >> 6] >> (bit & 63)) & 1u)
              << idx;
    }
    return static_cast<std::uint8_t>(mask);
  }

  /// Occupancy bitmask of the 6 neighbors of p: bit i is the cell
  /// p + offset(directionFromIndex(i)), gathered through per-direction bit
  /// deltas precomputed at rebuild()/allocateLike().  Precondition: every
  /// neighbor of p lies inside the window — guaranteed when some cell
  /// within distance 1 of p satisfies coversInterior().
  [[nodiscard]] std::uint8_t neighborMaskUnchecked(TriPoint p) const noexcept {
    SOPS_DASSERT(covers(p));
    const std::uint64_t base =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(p.y) - originY_) *
            (strideWords_ * 64) +
        static_cast<std::uint64_t>(static_cast<std::int64_t>(p.x) - originX_);
    std::uint32_t mask = 0;
    for (int idx = 0; idx < lattice::kNumDirections; ++idx) {
      const std::uint64_t bit =
          base + static_cast<std::uint64_t>(neighborDeltas_[idx]);
      mask |= static_cast<std::uint32_t>((words_[bit >> 6] >> (bit & 63)) & 1u)
              << idx;
    }
    return static_cast<std::uint8_t>(mask);
  }

  /// Occupancy of p; false for any cell outside the window.
  [[nodiscard]] bool test(TriPoint p) const noexcept {
    const auto dx = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(p.x) - originX_);
    const auto dy = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(p.y) - originY_);
    if (dx >= width_ || dy >= height_) return false;
    const std::uint64_t word =
        words_[dy * strideWords_ + (dx >> 6)];
    return (word >> (dx & 63)) & 1u;
  }

  /// Sets the bit for p.  Precondition: covers(p).
  void set(TriPoint p) noexcept {
    const auto dx = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(p.x) - originX_);
    const auto dy = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(p.y) - originY_);
    words_[dy * strideWords_ + (dx >> 6)] |= std::uint64_t{1} << (dx & 63);
  }

  /// Clears the bit for p.  Precondition: covers(p).
  void clear(TriPoint p) noexcept {
    const auto dx = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(p.x) - originX_);
    const auto dy = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(p.y) - originY_);
    words_[dy * strideWords_ + (dx >> 6)] &=
        ~(std::uint64_t{1} << (dx & 63));
  }

  /// Reallocates the window to cover every point with `baseMargin` plus a
  /// quarter of the bounding-box span of spare cells on each side (so a
  /// drifting configuration triggers only O(log drift) rebuilds), and sets
  /// exactly the given points.  Returns false (and disables the grid) when
  /// the window would exceed kMaxWords or points is empty.
  bool rebuild(std::span<const TriPoint> points, std::int64_t baseMargin);

  /// Reallocates the window with the EXACT geometry given and sets exactly
  /// the given points.  Snapshot restore uses this instead of rebuild():
  /// the sharded runners' stripe decomposition and edge-deferral rules are
  /// functions of the window origin/size, so resuming a run must reproduce
  /// the snapshotted window verbatim — rebuild()'s proportional margin
  /// would re-derive a different (history-dependent) one.  Throws when the
  /// window exceeds kMaxWords or a point violates the interior-margin
  /// invariant the geometry is supposed to carry.
  void rebuildExact(std::span<const TriPoint> points, std::int64_t originX,
                    std::int64_t originY, std::uint64_t width,
                    std::uint64_t height);

  /// Allocates an all-clear window with the exact geometry of `other`
  /// (origin, width, height, stride, precomputed deltas).  Grids built this
  /// way answer unchecked queries under the same interior-margin invariant
  /// as `other` — the amoebot layer keeps its occupancy/head/expanded
  /// planes aligned so one bit-index computation serves all three.
  /// Precondition: other.enabled().
  void allocateLike(const BitGrid& other);

  /// Releases the window; enabled() becomes false.
  void disable() noexcept;

  [[nodiscard]] std::size_t wordCount() const noexcept { return words_.size(); }
  [[nodiscard]] std::int64_t originX() const noexcept { return originX_; }
  [[nodiscard]] std::int64_t originY() const noexcept { return originY_; }
  [[nodiscard]] std::uint64_t width() const noexcept { return width_; }
  [[nodiscard]] std::uint64_t height() const noexcept { return height_; }

 private:
  std::vector<std::uint64_t> words_;
  std::int64_t originX_ = 0;
  std::int64_t originY_ = 0;
  std::uint64_t width_ = 0;    // cells per row
  std::uint64_t height_ = 0;   // rows
  std::uint64_t strideWords_ = 0;
  /// Bit-index deltas of the 8 ring cells per direction, valid for the
  /// current stride: delta = offset.y * strideBits + offset.x.
  std::int64_t ringDeltas_[lattice::kNumDirections][lattice::kEdgeRingSize] = {};
  /// Bit-index deltas of the 6 neighbor cells, same convention.
  std::int64_t neighborDeltas_[lattice::kNumDirections] = {};

  void computeDeltas() noexcept;
};

}  // namespace sops::system

#endif  // SOPS_SYSTEM_BIT_GRID_HPP
