#ifndef SOPS_SYSTEM_BIT_GRID_HPP
#define SOPS_SYSTEM_BIT_GRID_HPP

/// \file bit_grid.hpp
/// Dense bit-packed occupancy over the triangular lattice, in one of two
/// backends behind a single query API.
///
/// Occupancy queries dominate every chain step (the target cell plus the
/// 8-cell ring, ~9 per proposed move).  The open-addressing index answers
/// each with a hash probe chain; this grid answers with a handful of
/// integer ops and one word load — the "bitboard" of the hot path.
///
/// **Flat backend.**  A rectangular window [originX, originX+width) ×
/// [originY, originY+height) that ParticleSystem keeps a superset of the
/// bounding box of all particles (rebuilt with proportional margin when a
/// particle leaves it).  Rows are keyed by axial y and bit-packed along
/// axial x with a 64-bit word stride.  Cells outside the window are by
/// construction unoccupied, so test() simply returns false there.
///
/// **Tiled backend.**  Configurations whose bounding box exceeds kMaxWords
/// (spread-out or huge systems) no longer fall off the dense path:
/// rebuild() promotes the grid to a tiled layout that allocates fixed-size
/// 1024×256-cell tiles (4096 words = 32 KiB) on first touch, keyed by tile
/// coordinate in a small open-addressing directory.  Tiles are absolutely
/// anchored — tile (tx, ty) always covers cells [tx·1024, (tx+1)·1024) ×
/// [ty·256, (ty+1)·256) — so tile geometry is a pure function of the cell
/// coordinate, independent of history.  Interior cells of a tile resolve
/// with the same constant-stride word math as the flat window (the in-tile
/// row stride is 1024 bits); only cells within kInteriorMargin of a tile
/// edge take the per-cell seam path.  Unallocated tiles read as empty.
/// Because the tile width is a multiple of 64 and tiles are anchored at
/// multiples of 1024, the sharded runners' word-exclusive 64-column stripe
/// ownership discipline carries over unchanged.
///
/// The caller-visible invariant is shared: every particle satisfies
/// coversInterior(), meaning (flat) it sits ≥ kInteriorMargin cells inside
/// the window, or (tiled) every tile within kInteriorMargin of it is
/// allocated.  That licenses testUnchecked()/ring gathers on any cell
/// within graph distance kInteriorMargin of a particle.

#include <cstdint>
#include <span>
#include <vector>

#include "lattice/edge_ring.hpp"
#include "lattice/tri_point.hpp"
#include "util/assert.hpp"
#include "util/flat_hash.hpp"

namespace sops::system {

using lattice::TriPoint;

class BitGrid {
 public:
  /// Flat-window size cap: 2^28 bits = 32 MiB, a 16384×16384 cell window.
  /// Beyond this rebuild() promotes to the tiled backend instead of
  /// failing.
  static constexpr std::size_t kMaxWords = (std::size_t{1} << 28) / 64;

  /// Ring/target cells sit within graph distance 2 of a particle.
  static constexpr std::int64_t kInteriorMargin = 2;

  // --- tiled-backend geometry (absolutely anchored) ---

  /// Tiles are 1024 cells wide: a multiple of 64 so word-aligned stripe
  /// ownership is preserved, and wide enough that the seam fraction of a
  /// dense region is ~0.4% per axis.
  static constexpr int kTileShiftX = 10;
  /// ...and 256 rows tall: 1024×256 bits = 32 KiB per tile, small enough
  /// that a sparse diagonal of particles does not over-allocate, large
  /// enough that a dense blob of 10^5 particles spans only a few tiles.
  static constexpr int kTileShiftY = 8;
  static constexpr std::int64_t kTileWidth = std::int64_t{1} << kTileShiftX;
  static constexpr std::int64_t kTileHeight = std::int64_t{1} << kTileShiftY;
  static constexpr std::size_t kTileRowWords =
      static_cast<std::size_t>(kTileWidth) / 64;
  static constexpr std::size_t kTileWords =
      kTileRowWords * static_cast<std::size_t>(kTileHeight);
  static constexpr std::uint64_t kTileBits = std::uint64_t{kTileWords} * 64;

  /// Tile-directory cap: 2^16 tiles × 32 KiB = 2 GiB of occupancy words.
  /// Exceeding it throws ContractViolation from ensureTile (see the
  /// message there for the fix); like sim::kMaxBufferedEventsPerReplica
  /// this bounds a single run's resource appetite with a loud failure
  /// instead of an OOM kill.
  static constexpr std::uint32_t kMaxTiles = 1u << 16;

  BitGrid() = default;

  /// True when a backend is allocated and test()/set()/clear() are usable.
  [[nodiscard]] bool enabled() const noexcept { return !words_.empty(); }

  /// True while the tiled backend is active (enabled() implied false when
  /// no tiles exist yet).
  [[nodiscard]] bool tiled() const noexcept { return tiled_; }

  /// Number of allocated tiles (0 in flat mode).
  [[nodiscard]] std::size_t tileCount() const noexcept {
    return tiles_.size();
  }

  /// Monotonic counter bumped by every geometry change: rebuilds, exact
  /// rebuilds, disable, allocateLike, and each tile allocation.  Shadow
  /// planes and the id plane fingerprint this to detect staleness — two
  /// grids with equal versions observed on the *same* grid object have
  /// identical geometry (window or tile directory).
  [[nodiscard]] std::uint64_t geometryVersion() const noexcept {
    return geometryVersion_;
  }

  // --- tile coordinate helpers ---

  [[nodiscard]] static constexpr std::int64_t tileXOf(TriPoint p) noexcept {
    return static_cast<std::int64_t>(p.x) >> kTileShiftX;
  }
  [[nodiscard]] static constexpr std::int64_t tileYOf(TriPoint p) noexcept {
    return static_cast<std::int64_t>(p.y) >> kTileShiftY;
  }
  [[nodiscard]] static constexpr std::uint64_t tileKey(
      std::int64_t tx, std::int64_t ty) noexcept {
    return (static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(static_cast<std::int32_t>(tx)))
            << 32) |
           static_cast<std::uint32_t>(static_cast<std::int32_t>(ty));
  }
  [[nodiscard]] static constexpr std::int64_t tileXOfKey(
      std::uint64_t key) noexcept {
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(key >> 32));
  }
  [[nodiscard]] static constexpr std::int64_t tileYOfKey(
      std::uint64_t key) noexcept {
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(key));
  }

  /// True iff p lies inside the allocated window (flat) or inside an
  /// allocated tile (tiled).
  [[nodiscard]] bool covers(TriPoint p) const noexcept {
    if (tiled_) return tiles_.contains(tileKey(tileXOf(p), tileYOf(p)));
    const auto dx = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(p.x) - originX_);
    const auto dy = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(p.y) - originY_);
    return dx < width_ && dy < height_;
  }

  /// True iff every cell within graph distance kInteriorMargin of p is
  /// backed by allocated storage.  ParticleSystem keeps every particle
  /// interior in this sense, which is what licenses testUnchecked() on any
  /// cell within that distance of a particle (ring and target cells of a
  /// move).
  [[nodiscard]] bool coversInterior(TriPoint p) const noexcept {
    return coversInteriorBy(p, kInteriorMargin);
  }

  /// True iff the whole box [p.x ± depth] × [p.y ± depth] is backed by
  /// allocated storage: at least `depth` cells from every window edge
  /// (flat), or every tile intersecting the box allocated (tiled).  The
  /// sharded runners use depth = kInteriorMargin + 1 so that a particle
  /// they activate concurrently can move one cell in any direction and the
  /// new position still satisfies coversInterior() — no window regrow or
  /// tile allocation can trigger inside a parallel phase.
  [[nodiscard]] bool coversInteriorBy(TriPoint p,
                                      std::int64_t depth) const noexcept {
    SOPS_DASSERT(depth >= 0);
    if (tiled_) {
      const auto x = static_cast<std::int64_t>(p.x);
      const auto y = static_cast<std::int64_t>(p.y);
      const std::int64_t tx0 = (x - depth) >> kTileShiftX;
      const std::int64_t tx1 = (x + depth) >> kTileShiftX;
      const std::int64_t ty0 = (y - depth) >> kTileShiftY;
      const std::int64_t ty1 = (y + depth) >> kTileShiftY;
      for (std::int64_t ty = ty0; ty <= ty1; ++ty) {
        for (std::int64_t tx = tx0; tx <= tx1; ++tx) {
          if (!tiles_.contains(tileKey(tx, ty))) return false;
        }
      }
      return true;
    }
    // A window narrower than the two interior bands has no interior at
    // all; without this check the unsigned subtractions below wrap and can
    // wrongly report interior (this also covers a disabled grid, where
    // width_ == 0).
    if (2 * static_cast<std::uint64_t>(depth) >= width_ ||
        2 * static_cast<std::uint64_t>(depth) >= height_) {
      return false;
    }
    const auto dx = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(p.x) - originX_ - depth);
    const auto dy = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(p.y) - originY_ - depth);
    return dx < width_ - 2 * static_cast<std::uint64_t>(depth) &&
           dy < height_ - 2 * static_cast<std::uint64_t>(depth);
  }

  /// Occupancy of p without the bounds check.  Precondition: p is within
  /// kInteriorMargin cells of some cell satisfying coversInterior() —
  /// guaranteed by ParticleSystem's interior-margin invariant for any cell
  /// adjacent-or-ring to a particle.  In tiled mode this means p's tile is
  /// allocated, so the probe is asserted to hit.
  [[nodiscard]] bool testUnchecked(TriPoint p) const noexcept {
    if (tiled_) {
      const std::uint32_t* slot =
          tiles_.find(tileKey(tileXOf(p), tileYOf(p)));
      SOPS_DASSERT(slot != nullptr);
      if (slot == nullptr) return false;
      const std::uint64_t bit = tileBit(*slot, p);
      return (words_[bit >> 6] >> (bit & 63)) & 1u;
    }
    SOPS_DASSERT(covers(p));
    const auto dx = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(p.x) - originX_);
    const auto dy = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(p.y) - originY_);
    return (words_[dy * strideWords_ + (dx >> 6)] >> (dx & 63)) & 1u;
  }

  /// Occupancy bitmask of the 8 ring cells of the move (ℓ, d): one bit
  /// index for ℓ, then eight adds against per-direction deltas precomputed
  /// for the backend's row stride — no per-cell multiplies or bounds
  /// checks.  In tiled mode, ring offsets reach at most kInteriorMargin
  /// cells from ℓ, so when ℓ sits that far inside its tile the whole ring
  /// resolves against one tile with the same constant-stride math; only
  /// the thin seam band falls back to per-cell test().
  /// Preconditions: enabled(), and ℓ satisfies coversInterior() (it is a
  /// particle under ParticleSystem's interior-margin invariant).
  [[nodiscard]] std::uint8_t ringMaskUnchecked(TriPoint l,
                                               int dirIndex) const noexcept {
    SOPS_DASSERT(coversInterior(l));
    if (tiled_) {
      const std::int64_t inX =
          static_cast<std::int64_t>(l.x) & (kTileWidth - 1);
      const std::int64_t inY =
          static_cast<std::int64_t>(l.y) & (kTileHeight - 1);
      if (inX >= kInteriorMargin && inX < kTileWidth - kInteriorMargin &&
          inY >= kInteriorMargin && inY < kTileHeight - kInteriorMargin) {
        const std::uint32_t* slot =
            tiles_.find(tileKey(tileXOf(l), tileYOf(l)));
        SOPS_DASSERT(slot != nullptr);
        if (slot != nullptr) {
          const std::uint64_t base =
              static_cast<std::uint64_t>(*slot) * kTileBits +
              static_cast<std::uint64_t>(inY * kTileWidth + inX);
          return gatherRing(base, dirIndex);
        }
      }
      const SeamBlock block = resolveSeamBlock(l, kInteriorMargin);
      const auto& offsets = lattice::kEdgeRingOffsets[dirIndex];
      std::uint32_t mask = 0;
      for (int idx = 0; idx < lattice::kEdgeRingSize; ++idx) {
        if (seamTest(block, l + offsets[idx])) mask |= 1u << idx;
      }
      return static_cast<std::uint8_t>(mask);
    }
    const std::uint64_t base =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(l.y) - originY_) *
            (strideWords_ * 64) +
        static_cast<std::uint64_t>(static_cast<std::int64_t>(l.x) - originX_);
    return gatherRing(base, dirIndex);
  }

  /// Occupancy bitmask of the 6 neighbors of p: bit i is the cell
  /// p + offset(directionFromIndex(i)), gathered through per-direction bit
  /// deltas.  Precondition: every neighbor of p is backed by allocated
  /// storage — guaranteed when some cell within distance 1 of p satisfies
  /// coversInterior().
  [[nodiscard]] std::uint8_t neighborMaskUnchecked(TriPoint p) const noexcept {
    if (tiled_) {
      const std::int64_t inX =
          static_cast<std::int64_t>(p.x) & (kTileWidth - 1);
      const std::int64_t inY =
          static_cast<std::int64_t>(p.y) & (kTileHeight - 1);
      if (inX >= 1 && inX < kTileWidth - 1 && inY >= 1 &&
          inY < kTileHeight - 1) {
        const std::uint32_t* slot =
            tiles_.find(tileKey(tileXOf(p), tileYOf(p)));
        SOPS_DASSERT(slot != nullptr);
        if (slot != nullptr) {
          const std::uint64_t base =
              static_cast<std::uint64_t>(*slot) * kTileBits +
              static_cast<std::uint64_t>(inY * kTileWidth + inX);
          return gatherNeighbors(base);
        }
      }
      const SeamBlock block = resolveSeamBlock(p, 1);
      std::uint32_t mask = 0;
      for (int idx = 0; idx < lattice::kNumDirections; ++idx) {
        const TriPoint n =
            p + lattice::offset(lattice::directionFromIndex(idx));
        if (seamTest(block, n)) mask |= 1u << idx;
      }
      return static_cast<std::uint8_t>(mask);
    }
    SOPS_DASSERT(covers(p));
    const std::uint64_t base =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(p.y) - originY_) *
            (strideWords_ * 64) +
        static_cast<std::uint64_t>(static_cast<std::int64_t>(p.x) - originX_);
    return gatherNeighbors(base);
  }

  /// Occupancy of p; false for any cell outside the allocated storage.
  [[nodiscard]] bool test(TriPoint p) const noexcept {
    if (tiled_) {
      const std::uint32_t* slot =
          tiles_.find(tileKey(tileXOf(p), tileYOf(p)));
      if (slot == nullptr) return false;
      const std::uint64_t bit = tileBit(*slot, p);
      return (words_[bit >> 6] >> (bit & 63)) & 1u;
    }
    const auto dx = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(p.x) - originX_);
    const auto dy = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(p.y) - originY_);
    if (dx >= width_ || dy >= height_) return false;
    const std::uint64_t word =
        words_[dy * strideWords_ + (dx >> 6)];
    return (word >> (dx & 63)) & 1u;
  }

  /// Sets the bit for p.  Flat precondition: covers(p).  Tiled: allocates
  /// p's tile on demand (so may throw on the tile cap — never reachable
  /// from a sharded parallel phase, whose deferral predicates keep every
  /// concurrent write inside allocated tiles).
  void set(TriPoint p) {
    if (tiled_) {
      const std::uint32_t slot = ensureTile(tileXOf(p), tileYOf(p));
      const std::uint64_t bit = tileBit(slot, p);
      words_[bit >> 6] |= std::uint64_t{1} << (bit & 63);
      return;
    }
    const auto dx = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(p.x) - originX_);
    const auto dy = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(p.y) - originY_);
    words_[dy * strideWords_ + (dx >> 6)] |= std::uint64_t{1} << (dx & 63);
  }

  /// Clears the bit for p.  Flat precondition: covers(p).  Tiled: a miss
  /// (clearing a cell in an unallocated tile) is a no-op — the bit is
  /// already clear by construction.
  void clear(TriPoint p) noexcept {
    if (tiled_) {
      const std::uint32_t* slot =
          tiles_.find(tileKey(tileXOf(p), tileYOf(p)));
      SOPS_DASSERT(slot != nullptr);
      if (slot == nullptr) return;
      const std::uint64_t bit = tileBit(*slot, p);
      words_[bit >> 6] &= ~(std::uint64_t{1} << (bit & 63));
      return;
    }
    const auto dx = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(p.x) - originX_);
    const auto dy = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(p.y) - originY_);
    words_[dy * strideWords_ + (dx >> 6)] &=
        ~(std::uint64_t{1} << (dx & 63));
  }

  /// Reallocates the backend to cover every point and sets exactly the
  /// given points.  Small bounding boxes get the flat window (baseMargin
  /// plus a quarter of the bounding-box span of spare cells on each side,
  /// so a drifting configuration triggers only O(log drift) rebuilds) —
  /// bit-identical to the pre-tiled behavior.  Boxes whose flat window
  /// would exceed kMaxWords promote to the tiled backend (margin
  /// baseMargin) instead of failing.  Returns false (and disables the
  /// grid) only when points is empty.
  bool rebuild(std::span<const TriPoint> points, std::int64_t baseMargin);

  /// Forces the tiled backend regardless of bounding-box size: allocates
  /// every tile intersecting the box [p ± margin] of each point and sets
  /// exactly the given points.  rebuild() calls this past the flat cap;
  /// tests call it directly to exercise the tiled path on small systems.
  void rebuildTiled(std::span<const TriPoint> points, std::int64_t margin);

  /// Reallocates the flat window with the EXACT geometry given and sets
  /// exactly the given points.  Snapshot restore uses this instead of
  /// rebuild(): the sharded runners' stripe decomposition and
  /// edge-deferral rules are functions of the window origin/size, so
  /// resuming a run must reproduce the snapshotted window verbatim —
  /// rebuild()'s proportional margin would re-derive a different
  /// (history-dependent) one.  Throws when the window exceeds kMaxWords or
  /// a point violates the interior-margin invariant the geometry is
  /// supposed to carry.
  void rebuildExact(std::span<const TriPoint> points, std::int64_t originX,
                    std::int64_t originY, std::uint64_t width,
                    std::uint64_t height);

  /// Tiled analogue of rebuildExact: rebuilds the tiled backend with
  /// EXACTLY the given tile directory (the sharded runners' deferral
  /// predicates are functions of the allocated-tile set, so resume must
  /// reproduce it verbatim rather than re-derive it from the points) and
  /// sets exactly the given points.  Throws on duplicate keys, on the tile
  /// cap, or when a point violates the interior invariant under the given
  /// directory.
  void rebuildTiledExact(std::span<const TriPoint> points,
                         std::span<const std::uint64_t> tileKeys);

  /// Tiled only: allocates every tile intersecting [p ± margin].  The
  /// callers' escape hatch — when a particle moves toward unallocated
  /// territory, one ensureRegion() call restores its interior invariant
  /// without touching the rest of the directory (the tiled backend never
  /// rebuilds from scratch; it only grows).
  void ensureRegion(TriPoint p, std::int64_t margin);

  /// Tiled only: allocates (at least) every tile `other` has — used by
  /// shadow/id planes to follow the occupancy grid's growth incrementally,
  /// keeping plane directories a superset of the grid's.
  void ensureTilesOf(const BitGrid& other);

  /// Allocates an all-clear grid with the exact geometry of `other`: the
  /// flat window (origin, width, height, stride) or the tiled directory
  /// (same tiles, same slots).  Grids built this way answer unchecked
  /// queries under the same interior-margin invariant as `other` — the
  /// amoebot layer keeps its occupancy/head/expanded planes aligned so one
  /// bit-index computation serves all three.  Precondition:
  /// other.enabled().
  void allocateLike(const BitGrid& other);

  /// Releases all storage; enabled() becomes false.
  void disable() noexcept;

  /// The allocated tile keys in ascending key order — a deterministic
  /// enumeration for serialization (FlatMap64 iteration order is
  /// unspecified), so snapshot bytes are a pure function of the directory
  /// contents.
  [[nodiscard]] std::vector<std::uint64_t> sortedTileKeys() const;

  /// Lowers the tile cap for this instance so cap-overflow tests do not
  /// have to allocate 2 GiB.  Test-only.
  void setMaxTilesForTest(std::uint32_t cap) noexcept { maxTiles_ = cap; }

  [[nodiscard]] std::size_t wordCount() const noexcept { return words_.size(); }
  [[nodiscard]] std::int64_t originX() const noexcept { return originX_; }
  [[nodiscard]] std::int64_t originY() const noexcept { return originY_; }
  [[nodiscard]] std::uint64_t width() const noexcept { return width_; }
  [[nodiscard]] std::uint64_t height() const noexcept { return height_; }

 private:
  std::vector<std::uint64_t> words_;
  /// In tiled mode the origin/width/height describe the bounding box of
  /// the allocated tiles in cells (tile-aligned, hence 64-aligned) — the
  /// sharded runners derive their stripe coordinate system from originX()
  /// exactly as in flat mode.  strideWords_ is 0 (rows are not globally
  /// contiguous).
  std::int64_t originX_ = 0;
  std::int64_t originY_ = 0;
  std::uint64_t width_ = 0;    // cells per row
  std::uint64_t height_ = 0;   // rows
  std::uint64_t strideWords_ = 0;
  bool tiled_ = false;
  std::uint64_t geometryVersion_ = 0;
  std::uint32_t maxTiles_ = kMaxTiles;
  /// tileKey(tx, ty) -> tile slot; tile slot t owns words_[t*kTileWords,
  /// (t+1)*kTileWords).
  util::FlatMap64<std::uint32_t> tiles_;
  /// Allocated-tile bounding box, in tile units (valid while tiled_ and
  /// tiles_ nonempty).
  std::int64_t tileMinX_ = 0;
  std::int64_t tileMaxX_ = 0;
  std::int64_t tileMinY_ = 0;
  std::int64_t tileMaxY_ = 0;
  /// Bit-index deltas of the 8 ring cells per direction, valid for the
  /// current row stride (flat: strideWords_*64 bits; tiled: kTileWidth):
  /// delta = offset.y * strideBits + offset.x.
  std::int64_t ringDeltas_[lattice::kNumDirections][lattice::kEdgeRingSize] =
      {};
  /// Bit-index deltas of the 6 neighbor cells, same convention.
  std::int64_t neighborDeltas_[lattice::kNumDirections] = {};

  /// A seam mask query — one whose reach crosses a tile edge — touches at
  /// most the 2×2 block of tiles covering [c ± reach].  Resolving those ≤4
  /// directory slots once, instead of one find() per gathered cell, is
  /// what keeps seam gathers within ~2× of the interior fast path: a
  /// straight line at y = 0 sits on a tile-row boundary for its whole
  /// length (tiles are absolutely anchored), so without this the dominant
  /// shape of the tiled regime would pay ~10 directory probes per mask —
  /// sparse-path speed.
  struct SeamBlock {
    std::int64_t tx0 = 0;  // top-left tile of the 2×2 block
    std::int64_t ty0 = 0;
    std::uint64_t base[2][2] = {};  // word-bit tile bases; kNoTile if absent
  };
  static constexpr std::uint64_t kNoTile = ~std::uint64_t{0};

  [[nodiscard]] SeamBlock resolveSeamBlock(TriPoint c,
                                           std::int64_t reach) const noexcept {
    SeamBlock b;
    const auto x = static_cast<std::int64_t>(c.x);
    const auto y = static_cast<std::int64_t>(c.y);
    b.tx0 = (x - reach) >> kTileShiftX;
    b.ty0 = (y - reach) >> kTileShiftY;
    const std::int64_t tx1 = (x + reach) >> kTileShiftX;
    const std::int64_t ty1 = (y + reach) >> kTileShiftY;
    for (int by = 0; by < 2; ++by) {
      for (int bx = 0; bx < 2; ++bx) {
        const std::int64_t tx = b.tx0 + bx;
        const std::int64_t ty = b.ty0 + by;
        if (tx > tx1 || ty > ty1) {
          b.base[by][bx] = kNoTile;
          continue;
        }
        const std::uint32_t* slot = tiles_.find(tileKey(tx, ty));
        b.base[by][bx] = slot != nullptr
                             ? static_cast<std::uint64_t>(*slot) * kTileBits
                             : kNoTile;
      }
    }
    return b;
  }

  /// Occupancy of q against a resolved SeamBlock.  Precondition: q lies
  /// within the block's 2×2 tile footprint (guaranteed when q is within
  /// `reach` of the block's center).  A cell in an unallocated tile reads
  /// unoccupied, matching test().
  [[nodiscard]] bool seamTest(const SeamBlock& b, TriPoint q) const noexcept {
    const auto x = static_cast<std::int64_t>(q.x);
    const auto y = static_cast<std::int64_t>(q.y);
    const int bx = (x >> kTileShiftX) != b.tx0;
    const int by = (y >> kTileShiftY) != b.ty0;
    const std::uint64_t base = b.base[by][bx];
    if (base == kNoTile) return false;
    const std::uint64_t bit =
        base + static_cast<std::uint64_t>((y & (kTileHeight - 1)) * kTileWidth +
                                          (x & (kTileWidth - 1)));
    return (words_[bit >> 6] >> (bit & 63)) & 1u;
  }

  [[nodiscard]] static std::uint64_t tileBit(std::uint32_t slot,
                                             TriPoint p) noexcept {
    const std::int64_t inX = static_cast<std::int64_t>(p.x) & (kTileWidth - 1);
    const std::int64_t inY =
        static_cast<std::int64_t>(p.y) & (kTileHeight - 1);
    return static_cast<std::uint64_t>(slot) * kTileBits +
           static_cast<std::uint64_t>(inY * kTileWidth + inX);
  }

  [[nodiscard]] std::uint8_t gatherRing(std::uint64_t base,
                                        int dirIndex) const noexcept {
    const std::int64_t* deltas = ringDeltas_[dirIndex];
    std::uint32_t mask = 0;
    for (int idx = 0; idx < lattice::kEdgeRingSize; ++idx) {
      const std::uint64_t bit = base + static_cast<std::uint64_t>(deltas[idx]);
      mask |= static_cast<std::uint32_t>((words_[bit >> 6] >> (bit & 63)) & 1u)
              << idx;
    }
    return static_cast<std::uint8_t>(mask);
  }

  [[nodiscard]] std::uint8_t gatherNeighbors(
      std::uint64_t base) const noexcept {
    std::uint32_t mask = 0;
    for (int idx = 0; idx < lattice::kNumDirections; ++idx) {
      const std::uint64_t bit =
          base + static_cast<std::uint64_t>(neighborDeltas_[idx]);
      mask |= static_cast<std::uint32_t>((words_[bit >> 6] >> (bit & 63)) & 1u)
              << idx;
    }
    return static_cast<std::uint8_t>(mask);
  }

  /// Allocates (or finds) tile (tx, ty); returns its slot.  Throws with
  /// the cap and the fix once the directory reaches maxTiles_.
  std::uint32_t ensureTile(std::int64_t tx, std::int64_t ty);

  /// Resets to an empty tiled backend (no tiles yet) with tiled deltas.
  void enterTiled();

  void computeDeltas(std::int64_t strideBits) noexcept;
};

}  // namespace sops::system

#endif  // SOPS_SYSTEM_BIT_GRID_HPP
