#ifndef SOPS_SYSTEM_CANONICAL_HPP
#define SOPS_SYSTEM_CANONICAL_HPP

/// \file canonical.hpp
/// Translation-canonical forms of configurations.
///
/// The paper's states are *configurations*: equivalence classes of
/// arrangements under translation (§2.2; rotations remain distinct).  The
/// canonical representative translates the minimum x and y coordinates to
/// zero and sorts the points, which is invariant under translation and
/// nothing else.

#include <cstdint>
#include <string>
#include <vector>

#include "system/particle_system.hpp"

namespace sops::system {

/// Canonical point list: translated so min x = min y = 0, sorted by (y, x).
[[nodiscard]] std::vector<TriPoint> canonicalPoints(const ParticleSystem& sys);
[[nodiscard]] std::vector<TriPoint> canonicalPoints(
    std::vector<TriPoint> points);

/// Canonical byte-string key (packed canonical points); usable as a map key
/// for exact dedup in enumeration.
[[nodiscard]] std::string canonicalKey(const ParticleSystem& sys);
[[nodiscard]] std::string canonicalKeyFromPoints(std::vector<TriPoint> points);

}  // namespace sops::system

#endif  // SOPS_SYSTEM_CANONICAL_HPP
