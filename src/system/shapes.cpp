#include "system/shapes.hpp"

#include "lattice/direction.hpp"
#include "system/metrics.hpp"

namespace sops::system {

namespace {
using lattice::Direction;
using lattice::kAllDirections;
using lattice::neighbor;
using lattice::offset;
}  // namespace

ParticleSystem lineConfiguration(std::int64_t n) {
  SOPS_REQUIRE(n >= 1, "lineConfiguration: n >= 1");
  std::vector<TriPoint> points;
  points.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    points.push_back({static_cast<std::int32_t>(i), 0});
  }
  return ParticleSystem(points);
}

std::vector<TriPoint> spiralCells(std::int64_t n) {
  SOPS_REQUIRE(n >= 1, "spiralCells: n >= 1");
  std::vector<TriPoint> cells;
  cells.reserve(static_cast<std::size_t>(n));
  cells.push_back({0, 0});
  std::int32_t radius = 1;
  std::vector<TriPoint> ring;
  while (static_cast<std::int64_t>(cells.size()) < n) {
    // Ring of the given radius, counterclockwise from the corner (0,-r),
    // but emitted starting one past the corner: the first emitted cell is a
    // side cell touching *two* cells of the previous ring, which is what
    // keeps every prefix at the Harary–Harborth minimum perimeter (the
    // corner-first order loses a contact edge and is off by one).
    ring.clear();
    TriPoint cell{0, -radius};
    for (const Direction d : kAllDirections) {
      for (std::int32_t step = 0; step < radius; ++step) {
        ring.push_back(cell);
        cell += offset(d);
      }
    }
    for (std::size_t i = 1; i <= ring.size(); ++i) {
      cells.push_back(ring[i % ring.size()]);
      if (static_cast<std::int64_t>(cells.size()) == n) return cells;
    }
    ++radius;
  }
  return cells;
}

ParticleSystem spiralConfiguration(std::int64_t n) {
  const std::vector<TriPoint> cells = spiralCells(n);
  return ParticleSystem(cells);
}

ParticleSystem ringConfiguration(std::int32_t radius) {
  SOPS_REQUIRE(radius >= 1, "ringConfiguration: radius >= 1");
  std::vector<TriPoint> cells;
  cells.reserve(static_cast<std::size_t>(6) * radius);
  TriPoint cell{0, -radius};
  for (const Direction d : kAllDirections) {
    for (std::int32_t step = 0; step < radius; ++step) {
      cells.push_back(cell);
      cell += offset(d);
    }
  }
  return ParticleSystem(cells);
}

ParticleSystem randomConnected(std::int64_t n, rng::Random& rng) {
  SOPS_REQUIRE(n >= 1, "randomConnected: n >= 1");
  ParticleSystem sys;
  sys.add({0, 0});
  while (static_cast<std::int64_t>(sys.size()) < n) {
    const std::size_t host = rng.below(static_cast<std::uint32_t>(sys.size()));
    const Direction d =
        lattice::directionFromIndex(static_cast<int>(rng.below(6)));
    const TriPoint spot = neighbor(sys.position(host), d);
    if (!sys.occupied(spot)) sys.add(spot);
  }
  return sys;
}

ParticleSystem randomHoleFree(std::int64_t n, rng::Random& rng) {
  SOPS_REQUIRE(n >= 1, "randomHoleFree: n >= 1");
  ParticleSystem sys;
  sys.add({0, 0});
  while (static_cast<std::int64_t>(sys.size()) < n) {
    const std::size_t host = rng.below(static_cast<std::uint32_t>(sys.size()));
    const Direction d =
        lattice::directionFromIndex(static_cast<int>(rng.below(6)));
    const TriPoint spot = neighbor(sys.position(host), d);
    if (sys.occupied(spot)) continue;
    const std::size_t id = sys.add(spot);
    if (countHoles(sys) != 0) sys.remove(id);
  }
  return sys;
}

std::vector<std::uint8_t> alternatingClasses(std::size_t n, int classes) {
  SOPS_REQUIRE(classes > 0, "alternatingClasses: classes must be positive");
  std::vector<std::uint8_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] =
        static_cast<std::uint8_t>(i % static_cast<std::size_t>(classes));
  }
  return labels;
}

ParticleSystem perforatedBlob(std::int64_t n, std::int64_t holes,
                              rng::Random& rng) {
  SOPS_REQUIRE(n >= 7, "perforatedBlob: n >= 7");
  SOPS_REQUIRE(holes >= 0, "perforatedBlob: holes >= 0");
  const std::vector<TriPoint> cells = spiralCells(n + holes);
  ParticleSystem sys(cells);

  // Interior cells (all six neighbors occupied) that are pairwise
  // non-adjacent: deleting each opens an independent unit hole.
  std::vector<std::size_t> interior;
  for (std::size_t id = 0; id < sys.size(); ++id) {
    if (sys.neighborCount(sys.position(id)) == 6) interior.push_back(id);
  }
  rng.shuffle(interior);

  std::vector<TriPoint> removed;
  for (const std::size_t id : interior) {
    if (static_cast<std::int64_t>(removed.size()) == holes) break;
    const TriPoint candidate = sys.position(id);
    bool adjacentToRemoved = false;
    for (const TriPoint r : removed) {
      adjacentToRemoved |= lattice::areAdjacent(candidate, r) || candidate == r;
    }
    if (adjacentToRemoved) continue;
    removed.push_back(candidate);
  }
  for (const TriPoint r : removed) {
    const auto id = sys.particleAt(r);
    SOPS_REQUIRE(id.has_value(), "perforatedBlob: bookkeeping error");
    sys.remove(*id);
  }
  // Trim any surplus from the blob boundary (non-cut cells) if we could
  // not place all requested holes.
  while (static_cast<std::int64_t>(sys.size()) > n) {
    bool trimmed = false;
    for (std::size_t id = sys.size(); id-- > 0 && !trimmed;) {
      const TriPoint p = sys.position(id);
      if (sys.neighborCount(p) == 6) continue;
      sys.remove(id);
      if (isConnected(sys)) {
        trimmed = true;
      } else {
        sys.add(p);
      }
    }
    SOPS_REQUIRE(trimmed, "perforatedBlob: could not trim to size");
  }
  SOPS_ENSURE(isConnected(sys), "perforatedBlob: disconnected result");
  return sys;
}

ParticleSystem randomDendrite(std::int64_t n, rng::Random& rng) {
  SOPS_REQUIRE(n >= 1, "randomDendrite: n >= 1");
  ParticleSystem sys;
  sys.add({0, 0});
  std::int64_t attemptsSinceGrowth = 0;
  while (static_cast<std::int64_t>(sys.size()) < n) {
    const std::size_t host = rng.below(static_cast<std::uint32_t>(sys.size()));
    const Direction d =
        lattice::directionFromIndex(static_cast<int>(rng.below(6)));
    const TriPoint spot = neighbor(sys.position(host), d);
    if (!sys.occupied(spot) && sys.neighborCount(spot) == 1) {
      sys.add(spot);
      attemptsSinceGrowth = 0;
    } else if (++attemptsSinceGrowth > 64 * n) {
      // Dendritic growth can stall on unlucky geometry; fall back to any
      // single-neighbor frontier cell found by scanning.
      for (const TriPoint p : sys.positions()) {
        for (const Direction dir : kAllDirections) {
          const TriPoint q = neighbor(p, dir);
          if (!sys.occupied(q) && sys.neighborCount(q) == 1) {
            sys.add(q);
            attemptsSinceGrowth = 0;
            break;
          }
        }
        if (attemptsSinceGrowth == 0) break;
      }
      SOPS_REQUIRE(attemptsSinceGrowth == 0, "randomDendrite stalled");
    }
  }
  return sys;
}

}  // namespace sops::system
