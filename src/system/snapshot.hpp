#ifndef SOPS_SYSTEM_SNAPSHOT_HPP
#define SOPS_SYSTEM_SNAPSHOT_HPP

/// \file snapshot.hpp
/// Versioned, checksummed binary snapshots of run state, written atomically.
///
/// A snapshot file is a framed payload:
///
///   bytes 0..7    magic "SOPSSNAP"
///   bytes 8..11   format version (u32 little-endian, currently 3)
///   bytes 12..19  payload length in bytes (u64 LE)
///   bytes 20..27  FNV-1a-64 checksum of the payload (u64 LE)
///   bytes 28..    payload
///
/// The payload is a flat little-endian byte stream produced by
/// SnapshotWriter and consumed by SnapshotReader: typed primitives only
/// (u8/u32/u64/i64/f64, length-prefixed strings and byte blobs), every
/// read bounds-checked, so a truncated or bit-flipped file fails loudly at
/// the frame checksum or at the first short read — never by silently
/// misinterpreting state.
///
/// Durability discipline (writeSnapshotFile):
///   1. write to `<path>.tmp`, fflush + fsync, close;
///   2. rotate an existing `<path>` to `<path>.prev` (rename);
///   3. rename `<path>.tmp` → `<path>`;
///   4. fsync the containing directory.
/// A crash at any point leaves either the previous durable snapshot at
/// `<path>` or at `<path>.prev`; loadResumableSnapshot() tries `<path>`
/// first and falls back to `<path>.prev` when the primary is torn,
/// truncated, or missing.

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "rng/random.hpp"
#include "system/particle_system.hpp"

namespace sops::system {

/// FNV-1a 64-bit over a byte range — the frame checksum.
[[nodiscard]] std::uint64_t snapshotChecksum(
    std::span<const std::uint8_t> bytes) noexcept;

/// Current frame format version.  v3: occupancy serializes a backend tag
/// (sparse / flat window / tiled directory, with the tiled grid's exact
/// allocated-tile set), and the sharded chain runner appends its
/// partner-id plane's mode and paged directory — the tiled deferral
/// predicates are functions of those directories, so a re-derived one
/// would change the trajectory.  v2 payloads (flat or sparse only; the
/// sharded runners' per-particle streams as bare 256-bit engine states
/// plus the adaptive epoch target) are still accepted: their occupancy
/// byte layout is a strict subset of v3's, and readers re-derive the id
/// plane, which is exact for the flat mode v2 runs used.  v1 payloads
/// stored full (seed, state) Random pairs and no target, so they must
/// fail loudly rather than be misread.
inline constexpr std::uint32_t kSnapshotVersion = 3;

/// Oldest frame version readSnapshotFile still accepts.
inline constexpr std::uint32_t kMinSnapshotVersion = 2;

/// Accumulates a snapshot payload as typed little-endian primitives.
class SnapshotWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  /// Length-prefixed (u64) byte string.
  void str(std::string_view v);
  void bytes(std::span<const std::uint8_t> v);

  [[nodiscard]] const std::vector<std::uint8_t>& payload() const noexcept {
    return payload_;
  }

 private:
  std::vector<std::uint8_t> payload_;
};

/// Bounds-checked reader over a snapshot payload.  Every short read throws
/// ContractViolation naming the field kind; finish() requires the payload
/// to be fully consumed (trailing bytes are corruption, not padding).
/// The reader is a *view*: the payload bytes must outlive it — never
/// construct one from a temporary (e.g. directly from the return value of
/// loadResumableSnapshot).
class SnapshotReader {
 public:
  /// `version` is the frame version the payload was read from (see
  /// SnapshotData); consumers branch on it for fields newer versions
  /// appended.  Defaults to current for payloads built in-process.
  explicit SnapshotReader(std::span<const std::uint8_t> payload,
                          std::uint32_t version = kSnapshotVersion) noexcept
      : payload_(payload), version_(version) {}

  /// Frame version of the payload under this reader.
  [[nodiscard]] std::uint32_t version() const noexcept { return version_; }

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<std::uint8_t> bytes();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return payload_.size() - pos_;
  }
  /// Throws unless the payload is fully consumed.
  void finish() const;

 private:
  void need(std::size_t count, const char* what) const;

  std::span<const std::uint8_t> payload_;
  std::size_t pos_ = 0;
  std::uint32_t version_ = kSnapshotVersion;
};

/// A verified snapshot payload together with the frame version it was
/// framed as — construct the SnapshotReader with both so version-gated
/// fields resolve correctly.
struct SnapshotData {
  std::uint32_t version = kSnapshotVersion;
  std::vector<std::uint8_t> payload;
};

/// Writes `payload` to `path` with the frame header, atomically (see file
/// comment for the tmp/fsync/rotate/rename discipline).  Throws
/// ContractViolation on any I/O failure.  `version` stamps the frame
/// header and must be in [kMinSnapshotVersion, kSnapshotVersion] — the
/// non-default values exist for tests that craft older frames; the writer
/// does not down-convert the payload bytes.
void writeSnapshotFile(const std::string& path,
                       std::span<const std::uint8_t> payload,
                       std::uint32_t version = kSnapshotVersion);

/// Reads and verifies one snapshot file: magic, version (any supported
/// one), length, checksum.  Throws ContractViolation (naming the path and
/// the failure) on a missing, torn, truncated, or corrupt file.
[[nodiscard]] SnapshotData readSnapshotFile(const std::string& path);

/// readSnapshotFile(path), falling back to `<path>.prev` when the primary
/// is unreadable or fails verification (the window between rotate and
/// rename, or a torn write).  Throws only when both fail, with both
/// errors in the message.
[[nodiscard]] SnapshotData loadResumableSnapshot(const std::string& path);

/// Serializes a ParticleSystem: positions plus a backend tag (0 sparse,
/// 1 flat window, 2 tiled) and the backend's exact geometry — the window
/// rectangle for flat, the sorted allocated-tile coordinate list for
/// tiled (the sharded runners' trajectories depend on both — see
/// ParticleSystem::restoreWindowGeometry / restoreTiledGeometry).  The
/// sparse and flat encodings are byte-identical to frame v2's.
void writeParticleSystem(SnapshotWriter& w, const ParticleSystem& sys);
[[nodiscard]] ParticleSystem readParticleSystem(SnapshotReader& r);

/// Serializes an rng::Random exactly: seed plus the 256-bit engine state.
void writeRandom(SnapshotWriter& w, const rng::Random& random);
[[nodiscard]] rng::Random readRandom(SnapshotReader& r);

/// Serializes a bare 256-bit engine state — the per-stream unit of the
/// SoA stream banks (rng/stream_bank.hpp), whose master seed lives in the
/// run spec rather than in every stream.
void writeEngineState(SnapshotWriter& w,
                      const std::array<std::uint64_t, 4>& state);
[[nodiscard]] std::array<std::uint64_t, 4> readEngineState(SnapshotReader& r);

}  // namespace sops::system

#endif  // SOPS_SYSTEM_SNAPSHOT_HPP
