#ifndef SOPS_SYSTEM_SERIALIZE_HPP
#define SOPS_SYSTEM_SERIALIZE_HPP

/// \file serialize.hpp
/// Plain-text (de)serialization of configurations: one "x,y" pair per
/// particle, space-separated.  Round-trips exactly; used by examples to
/// save/load configurations and by tests for fixtures.

#include <string>
#include <string_view>

#include "system/particle_system.hpp"

namespace sops::system {

[[nodiscard]] std::string toText(const ParticleSystem& sys);

/// Parses the format produced by toText — strictly.  Fractional
/// coordinates ("1.5,2"), missing commas, 32-bit overflow, and trailing
/// garbage after a pair ("3,4x", "3,4,5") all throw ContractViolation
/// naming the offending pair and byte offset, as do duplicate points;
/// nothing is silently dropped or truncated.
[[nodiscard]] ParticleSystem fromText(std::string_view text);

}  // namespace sops::system

#endif  // SOPS_SYSTEM_SERIALIZE_HPP
