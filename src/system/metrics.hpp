#ifndef SOPS_SYSTEM_METRICS_HPP
#define SOPS_SYSTEM_METRICS_HPP

/// \file metrics.hpp
/// Configuration measurements from paper §2.2–2.3: edges e(σ), triangles
/// t(σ), perimeter p(σ), holes, connectivity, and the extremal perimeter
/// values p_min(n), p_max(n).
///
/// Perimeter is computed in closed form as p = 3n − e − 3 + 3·holes for a
/// connected configuration.  For hole-free configurations this reduces to
/// Lemma 2.3 (e = 3n − p − 3); the hole term follows from the same
/// exterior-angle count applied to each hole boundary (each hole boundary
/// walk of length k contributes 2k − 6 dual edges instead of 2k + 6).  An
/// independent boundary-walk tracer lives in boundary.hpp and is used by the
/// test-suite to validate this formula on every enumerated configuration.

#include <cstdint>
#include <vector>

#include "system/particle_system.hpp"
#include "util/flat_hash.hpp"

namespace sops::system {

/// Number of lattice edges with both endpoints occupied (e(σ)).
[[nodiscard]] std::int64_t countEdges(const ParticleSystem& sys);

/// Number of triangular faces of G∆ with all three corners occupied (t(σ)).
[[nodiscard]] std::int64_t countTriangles(const ParticleSystem& sys);

/// True iff the configuration graph (occupied vertices, induced edges) is
/// connected.  The empty system counts as connected.
[[nodiscard]] bool isConnected(const ParticleSystem& sys);

/// Axis-aligned bounding box in axial coordinates.
struct BoundingBox {
  std::int32_t minX = 0;
  std::int32_t minY = 0;
  std::int32_t maxX = 0;
  std::int32_t maxY = 0;
};
[[nodiscard]] BoundingBox boundingBox(const ParticleSystem& sys);

/// Decomposition of the unoccupied complement (within a margin-1 window
/// around the configuration) into the exterior region and finite holes.
struct ComplementRegions {
  /// Number of holes (finite maximal connected unoccupied regions, §2.2).
  int holeCount = 0;
  /// Region id per unoccupied cell in the window: kExteriorRegion for the
  /// infinite region, 1..holeCount for holes.
  util::FlatMap64<std::int32_t> regionOf;
  BoundingBox window;
  static constexpr std::int32_t kExteriorRegion = 0;
};
[[nodiscard]] ComplementRegions analyzeComplement(const ParticleSystem& sys);

/// Number of holes of the configuration.
[[nodiscard]] int countHoles(const ParticleSystem& sys);

/// Perimeter p(σ) of a connected configuration (sum over all boundary
/// walks, cut edges counted twice — see §2.2).  Precondition: connected,
/// n ≥ 1.
[[nodiscard]] std::int64_t perimeter(const ParticleSystem& sys);

/// Perimeter given precomputed pieces (hot-ish paths that already know e/h).
[[nodiscard]] constexpr std::int64_t perimeterFromCounts(
    std::int64_t n, std::int64_t edges, std::int64_t holes) noexcept {
  return 3 * n - edges - 3 + 3 * holes;
}

/// Minimum possible perimeter of n particles: ⌈√(12n−3)⌉ − 3 (achieved by
/// hexagonal spirals; Harary–Harborth via the hex-lattice duality of Fig 9).
[[nodiscard]] std::int64_t pMin(std::int64_t n);

/// Maximum possible perimeter of a connected hole-free configuration:
/// 2n − 2 (spanning trees of G∆ with no induced triangles, §2.3).
[[nodiscard]] constexpr std::int64_t pMax(std::int64_t n) noexcept {
  return 2 * n - 2;
}

/// Graph diameter of the configuration (max hop distance between particles
/// through occupied vertices).  O(n²) — intended for small systems and
/// diagnostics only.
[[nodiscard]] int graphDiameter(const ParticleSystem& sys);

/// One-stop summary used by benches and examples.
struct ConfigSummary {
  std::int64_t particles = 0;
  std::int64_t edges = 0;
  std::int64_t triangles = 0;
  std::int64_t holes = 0;
  std::int64_t perimeter = 0;
  bool connected = false;
  /// p(σ) / p_min(n): the compression ratio α of Definition 2.2.
  double perimeterRatio = 0.0;
};
[[nodiscard]] ConfigSummary summarize(const ParticleSystem& sys);

}  // namespace sops::system

#endif  // SOPS_SYSTEM_METRICS_HPP
