#ifndef SOPS_SYSTEM_SHAPES_HPP
#define SOPS_SYSTEM_SHAPES_HPP

/// \file shapes.hpp
/// Generators for initial configurations used throughout the paper's
/// experiments: the line of Fig 2/Fig 10, the minimum-perimeter hexagonal
/// spiral (the p_min witness), rings (configurations with holes), and
/// random connected configurations for tests.

#include <cstdint>
#include <vector>

#include "rng/random.hpp"
#include "system/particle_system.hpp"

namespace sops::system {

/// n collinear particles (the starting configuration of Fig 2 and Fig 10).
[[nodiscard]] ParticleSystem lineConfiguration(std::int64_t n);

/// The first n cells of the hexagonal spiral around the origin.  Every
/// prefix of the spiral attains the minimum perimeter p_min(n)
/// (Harary–Harborth); tests assert this against metrics::pMin.
[[nodiscard]] ParticleSystem spiralConfiguration(std::int64_t n);

/// The cells of the spiral, in spiral order (exposed for the baseline
/// hexagon builder, which fills targets in this order).
[[nodiscard]] std::vector<TriPoint> spiralCells(std::int64_t n);

/// A hexagonal ring of the given radius >= 1 (6*radius particles enclosing
/// a hole), e.g. radius 1 is the minimal configuration with a hole.
[[nodiscard]] ParticleSystem ringConfiguration(std::int32_t radius);

/// Random connected configuration grown by repeatedly attaching a particle
/// next to a uniformly chosen existing one.  May contain holes.
[[nodiscard]] ParticleSystem randomConnected(std::int64_t n, rng::Random& rng);

/// Random connected configuration guaranteed hole-free (grown with a
/// hole-rejection test; O(n^2), intended for tests).
[[nodiscard]] ParticleSystem randomHoleFree(std::int64_t n, rng::Random& rng);

/// Random tree-like (dendritic) configuration: grows only at empty cells
/// with exactly one occupied neighbor, so the result has few induced
/// triangles and large perimeter.
[[nodiscard]] ParticleSystem randomDendrite(std::int64_t n, rng::Random& rng);

/// n per-particle class labels cycling 0..classes-1 — the canonical
/// maximally mixed start for the scenario models (separation colors,
/// alignment orientations) shared by tests, benches, and examples.
[[nodiscard]] std::vector<std::uint8_t> alternatingClasses(std::size_t n,
                                                           int classes);

/// A compact blob of n particles perforated by (approximately) the given
/// number of single-cell holes — the holed initial configurations of the
/// paper's §3.7 discussion ("we do not expect the presence of holes ... to
/// significantly delay compression").  Construction: take the spiral of
/// n + holes cells and delete interior cells that are pairwise
/// non-adjacent, each deletion opening one unit hole.  Returns a connected
/// configuration with exactly n particles; the achieved hole count (≤
/// requested) can be read back with countHoles().
[[nodiscard]] ParticleSystem perforatedBlob(std::int64_t n, std::int64_t holes,
                                            rng::Random& rng);

}  // namespace sops::system

#endif  // SOPS_SYSTEM_SHAPES_HPP
