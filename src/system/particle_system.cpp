#include "system/particle_system.hpp"

namespace sops::system {

namespace {
/// Base margin around the bounding box when (re)building the dense window
/// (BitGrid::rebuild adds span/4 proportional headroom on top).
constexpr std::int64_t kGridBaseMargin = 32;
/// Tile headroom allocated around a particle that escapes the interior of
/// a tiled grid: > kInteriorMargin + 1 so one ensureRegion() buys several
/// further moves in the same direction before the next directory touch.
constexpr std::int64_t kGridEnsureMargin = 8;
}  // namespace

void ParticleSystem::regrowGrid() {
  if (gridGaveUp_ || positions_.empty()) {
    grid_.disable();
    return;
  }
  // rebuild() promotes oversized bounding boxes to the tiled backend, so
  // it only fails (false) on an empty point set — excluded above.  The
  // sparse regime survives solely behind forceSparseForTest().
  const bool built = grid_.rebuild(positions_, kGridBaseMargin);
  SOPS_DASSERT(built);
  (void)built;
}

ParticleSystem::ParticleSystem(std::span<const TriPoint> points)
    : index_(points.size()) {
  positions_.reserve(points.size());
  for (const TriPoint p : points) {
    const bool fresh = index_.insert(
        lattice::pack(p), static_cast<std::int32_t>(positions_.size()));
    SOPS_REQUIRE(fresh, "duplicate particle position");
    positions_.push_back(p);
  }
  regrowGrid();
}

void ParticleSystem::suspendIndex() {
  SOPS_REQUIRE(grid_.enabled(),
               "index suspension requires the dense occupancy window");
  indexSuspended_ = true;
}

void ParticleSystem::restoreIndex() {
  if (!indexSuspended_) return;
  indexSuspended_ = false;
  index_.clear();
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    const bool fresh = index_.insert(lattice::pack(positions_[i]),
                                     static_cast<std::int32_t>(i));
    SOPS_DASSERT(fresh);
    (void)fresh;
  }
}

std::size_t ParticleSystem::add(TriPoint p) {
  SOPS_REQUIRE(!indexSuspended_, "add() while the id index is suspended");
  const bool fresh =
      index_.insert(lattice::pack(p),
                    static_cast<std::int32_t>(positions_.size()));
  SOPS_REQUIRE(fresh, "add() target already occupied");
  positions_.push_back(p);
  if (grid_.enabled() && grid_.coversInterior(p)) {
    grid_.set(p);
  } else if (grid_.tiled()) {
    // A tiled grid never rebuilds from scratch: grow the directory around
    // the new particle and set its bit.
    grid_.ensureRegion(p, kGridEnsureMargin);
    grid_.set(p);
  } else if (!gridGaveUp_) {
    regrowGrid();
  }
  return positions_.size() - 1;
}

void ParticleSystem::remove(std::size_t particle) {
  SOPS_REQUIRE(!indexSuspended_, "remove() while the id index is suspended");
  SOPS_REQUIRE(particle < positions_.size(), "remove(): bad particle id");
  const TriPoint p = positions_[particle];
  index_.erase(lattice::pack(p));
  if (grid_.enabled()) grid_.clear(p);
  const std::size_t last = positions_.size() - 1;
  if (particle != last) {
    positions_[particle] = positions_[last];
    index_.insertOrAssign(lattice::pack(positions_[particle]),
                          static_cast<std::int32_t>(particle));
  }
  positions_.pop_back();
}

void ParticleSystem::moveParticle(std::size_t particle, TriPoint to) {
  SOPS_REQUIRE(particle < positions_.size(), "moveParticle(): bad particle id");
  const TriPoint from = positions_[particle];
  if (from == to) return;
  SOPS_REQUIRE(!occupied(to), "moveParticle(): target occupied");
  if (!indexSuspended_) {
    index_.erase(lattice::pack(from));
    index_.insert(lattice::pack(to), static_cast<std::int32_t>(particle));
  }
  positions_[particle] = to;
  if (grid_.enabled()) {
    // Regrow as soon as a particle reaches the 2-cell interior margin, so
    // ring/target queries around any particle stay safely in-window for
    // occupiedNear()'s unchecked word load.
    if (grid_.coversInterior(to)) {
      grid_.clear(from);
      grid_.set(to);
    } else if (grid_.tiled()) {
      // A tiled grid only ever grows: allocating the few tiles around the
      // escape restores the interior invariant without re-deriving any
      // geometry, so shadow/id planes stay incrementally valid.  Never
      // reached from a sharded parallel phase — its deferral predicate
      // requires coversInteriorBy(pos, margin + 1).
      grid_.ensureRegion(to, kGridEnsureMargin);
      grid_.clear(from);
      grid_.set(to);
    } else {
      regrowGrid();  // positions_ already reflects the move
      // Sparse fallback ends a suspension immediately: without the dense
      // window, occupancy queries need the hash index again.
      if (indexSuspended_ && !grid_.enabled()) restoreIndex();
    }
  }
  SOPS_DASSERT(!grid_.enabled() || grid_.test(to));
  SOPS_DASSERT(!grid_.enabled() || !grid_.test(from));
}

void ParticleSystem::restoreWindowGeometry(bool dense, std::int64_t originX,
                                           std::int64_t originY,
                                           std::uint64_t width,
                                           std::uint64_t height) {
  SOPS_REQUIRE(!indexSuspended_,
               "restoreWindowGeometry() while the id index is suspended");
  if (dense) {
    grid_.rebuildExact(positions_, originX, originY, width, height);
    gridGaveUp_ = false;
  } else {
    gridGaveUp_ = true;
    grid_.disable();
  }
}

void ParticleSystem::restoreTiledGeometry(
    std::span<const std::uint64_t> tileKeys) {
  SOPS_REQUIRE(!indexSuspended_,
               "restoreTiledGeometry() while the id index is suspended");
  grid_.rebuildTiledExact(positions_, tileKeys);
  gridGaveUp_ = false;
}

void ParticleSystem::forceSparseForTest() {
  SOPS_REQUIRE(!indexSuspended_,
               "forceSparseForTest() while the id index is suspended");
  gridGaveUp_ = true;
  grid_.disable();
}

void ParticleSystem::forceTiledForTest() {
  SOPS_REQUIRE(!indexSuspended_,
               "forceTiledForTest() while the id index is suspended");
  SOPS_REQUIRE(!positions_.empty(), "forceTiledForTest() needs particles");
  gridGaveUp_ = false;
  grid_.rebuildTiled(positions_, kGridBaseMargin);
}

bool ParticleSystem::sameArrangement(const ParticleSystem& other) const {
  if (size() != other.size()) return false;
  for (const TriPoint p : positions_) {
    if (!other.occupied(p)) return false;
  }
  return true;
}

}  // namespace sops::system
