#include "system/particle_system.hpp"

namespace sops::system {

ParticleSystem::ParticleSystem(std::span<const TriPoint> points)
    : index_(points.size()) {
  positions_.reserve(points.size());
  for (const TriPoint p : points) {
    const bool fresh = index_.insert(lattice::pack(p),
                                     static_cast<std::int32_t>(positions_.size()));
    SOPS_REQUIRE(fresh, "duplicate particle position");
    positions_.push_back(p);
  }
}

std::size_t ParticleSystem::add(TriPoint p) {
  const bool fresh =
      index_.insert(lattice::pack(p), static_cast<std::int32_t>(positions_.size()));
  SOPS_REQUIRE(fresh, "add() target already occupied");
  positions_.push_back(p);
  return positions_.size() - 1;
}

void ParticleSystem::remove(std::size_t particle) {
  SOPS_REQUIRE(particle < positions_.size(), "remove(): bad particle id");
  const TriPoint p = positions_[particle];
  index_.erase(lattice::pack(p));
  const std::size_t last = positions_.size() - 1;
  if (particle != last) {
    positions_[particle] = positions_[last];
    index_.insertOrAssign(lattice::pack(positions_[particle]),
                          static_cast<std::int32_t>(particle));
  }
  positions_.pop_back();
}

void ParticleSystem::moveParticle(std::size_t particle, TriPoint to) {
  SOPS_REQUIRE(particle < positions_.size(), "moveParticle(): bad particle id");
  const TriPoint from = positions_[particle];
  if (from == to) return;
  SOPS_REQUIRE(!occupied(to), "moveParticle(): target occupied");
  index_.erase(lattice::pack(from));
  index_.insert(lattice::pack(to), static_cast<std::int32_t>(particle));
  positions_[particle] = to;
}

bool ParticleSystem::sameArrangement(const ParticleSystem& other) const {
  if (size() != other.size()) return false;
  for (const TriPoint p : positions_) {
    if (!other.occupied(p)) return false;
  }
  return true;
}

}  // namespace sops::system
