#ifndef SOPS_SYSTEM_BOUNDARY_HPP
#define SOPS_SYSTEM_BOUNDARY_HPP

/// \file boundary.hpp
/// Boundary-walk tracers, independent of the closed-form perimeter.
///
/// Two mechanisms (used to cross-validate metrics.hpp and each other):
///
///  1. traceExternalWalk(): walks the external boundary on configuration
///     vertices with a rotate-scan rule (the walk of §2.2: may repeat
///     vertices and traverses cut edges twice).
///
///  2. hexBoundaryCycles(): traces the boundary cycles of the union of dual
///     hexagons (Fig 9b).  For a boundary walk of length k the dual cycle
///     has length 2k + 6 when it encloses the configuration (external) and
///     2k − 6 when it encloses a hole — the exterior-angle count from the
///     proofs of Lemmas 2.3 and 4.3.

#include <cstdint>
#include <vector>

#include "system/particle_system.hpp"

namespace sops::system {

/// Length of the external boundary walk of a connected configuration.
/// n = 1 gives 0.  Precondition: nonempty, connected.
[[nodiscard]] std::int64_t traceExternalWalk(const ParticleSystem& sys);

struct HexBoundaryDecomposition {
  /// Length (number of hexagonal-lattice edges) of the unique external
  /// boundary cycle of the dual polygon.
  std::int64_t externalHexLength = 0;
  /// Lengths of the dual cycles around each hole.
  std::vector<std::int64_t> holeHexLengths;
};

/// Traces all boundary cycles of the dual-hexagon polygon of a connected
/// configuration.  Precondition: nonempty, connected.
[[nodiscard]] HexBoundaryDecomposition hexBoundaryCycles(
    const ParticleSystem& sys);

/// Perimeter obtained purely by tracing:
/// (externalHexLength − 6)/2 + Σ_holes (holeHexLength + 6)/2.
/// Used by tests to validate system::perimeter().
[[nodiscard]] std::int64_t perimeterTraced(const ParticleSystem& sys);

}  // namespace sops::system

#endif  // SOPS_SYSTEM_BOUNDARY_HPP
