#ifndef SOPS_SYSTEM_PARTICLE_SYSTEM_HPP
#define SOPS_SYSTEM_PARTICLE_SYSTEM_HPP

/// \file particle_system.hpp
/// A configuration of contracted particles on G∆ (paper §2.2).
///
/// This is the state type of the Markov chain M: n distinct occupied lattice
/// vertices.  It maintains a position vector (for uniform particle
/// selection) and a flat hash index (for O(1) occupancy queries).  Expanded
/// particles exist only in the amoebot layer (S7); the chain's states
/// consider contracted particles only, exactly as in the paper (§3.2,
/// footnote 2).

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "lattice/tri_point.hpp"
#include "util/assert.hpp"
#include "util/flat_hash.hpp"

namespace sops::system {

using lattice::Direction;
using lattice::TriPoint;

class ParticleSystem {
 public:
  ParticleSystem() = default;

  /// Builds a system from distinct lattice points.  Throws ContractViolation
  /// on duplicates.
  explicit ParticleSystem(std::span<const TriPoint> points);

  [[nodiscard]] std::size_t size() const noexcept { return positions_.size(); }
  [[nodiscard]] bool empty() const noexcept { return positions_.empty(); }

  [[nodiscard]] TriPoint position(std::size_t particle) const {
    SOPS_DASSERT(particle < positions_.size());
    return positions_[particle];
  }

  [[nodiscard]] const std::vector<TriPoint>& positions() const noexcept {
    return positions_;
  }

  [[nodiscard]] bool occupied(TriPoint p) const noexcept {
    return index_.contains(lattice::pack(p));
  }

  /// Particle id occupying p, if any.
  [[nodiscard]] std::optional<std::size_t> particleAt(TriPoint p) const noexcept {
    const std::int32_t* id = index_.find(lattice::pack(p));
    if (id == nullptr) return std::nullopt;
    return static_cast<std::size_t>(*id);
  }

  /// Adds a particle at an unoccupied vertex; returns its id.
  std::size_t add(TriPoint p);

  /// Removes the particle with the given id (swap-with-last, so ids of other
  /// particles may change: the last particle takes over the removed id).
  void remove(std::size_t particle);

  /// Moves a particle to an unoccupied vertex (need not be adjacent; the
  /// chain enforces adjacency itself).
  void moveParticle(std::size_t particle, TriPoint to);

  /// Number of occupied neighbors of vertex p (0..6).  p itself does not
  /// count even if occupied.
  [[nodiscard]] int neighborCount(TriPoint p) const noexcept {
    int count = 0;
    for (const Direction d : lattice::kAllDirections) {
      count += occupied(lattice::neighbor(p, d)) ? 1 : 0;
    }
    return count;
  }

  /// 6-bit occupancy mask of p's neighborhood; bit i is direction index i.
  [[nodiscard]] std::uint8_t neighborMask(TriPoint p) const noexcept {
    std::uint8_t mask = 0;
    for (const Direction d : lattice::kAllDirections) {
      if (occupied(lattice::neighbor(p, d))) {
        mask = static_cast<std::uint8_t>(mask | (1u << index(d)));
      }
    }
    return mask;
  }

  /// Structural equality as a *set* of occupied vertices (particle ids and
  /// ordering are irrelevant, matching the paper's notion of arrangement).
  [[nodiscard]] bool sameArrangement(const ParticleSystem& other) const;

 private:
  std::vector<TriPoint> positions_;
  util::FlatMap64<std::int32_t> index_;
};

}  // namespace sops::system

#endif  // SOPS_SYSTEM_PARTICLE_SYSTEM_HPP
