#ifndef SOPS_SYSTEM_PARTICLE_SYSTEM_HPP
#define SOPS_SYSTEM_PARTICLE_SYSTEM_HPP

/// \file particle_system.hpp
/// A configuration of contracted particles on G∆ (paper §2.2).
///
/// This is the state type of the Markov chain M: n distinct occupied lattice
/// vertices.  It maintains three synchronized views:
///
///   - a position vector (uniform particle selection, iteration),
///   - a dense bitboard window (BitGrid) answering occupied() with a single
///     word load — the hot path of every chain step (~9 queries per
///     proposed move),
///   - a flat hash index mapping cell → particle id, which serves
///     particleAt() and is the occupancy fallback when the configuration
///     is too spread out for a dense window (BitGrid::kMaxWords).
///
/// Expanded particles exist only in the amoebot layer (S7); the chain's
/// states consider contracted particles only, exactly as in the paper
/// (§3.2, footnote 2).

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "lattice/edge_ring.hpp"
#include "lattice/tri_point.hpp"
#include "system/bit_grid.hpp"
#include "util/assert.hpp"
#include "util/flat_hash.hpp"

namespace sops::system {

using lattice::Direction;
using lattice::TriPoint;

class ParticleSystem {
 public:
  ParticleSystem() = default;

  /// Builds a system from distinct lattice points.  Throws ContractViolation
  /// on duplicates.
  explicit ParticleSystem(std::span<const TriPoint> points);

  [[nodiscard]] std::size_t size() const noexcept { return positions_.size(); }
  [[nodiscard]] bool empty() const noexcept { return positions_.empty(); }

  [[nodiscard]] TriPoint position(std::size_t particle) const {
    SOPS_DASSERT(particle < positions_.size());
    return positions_[particle];
  }

  [[nodiscard]] const std::vector<TriPoint>& positions() const noexcept {
    return positions_;
  }

  [[nodiscard]] bool occupied(TriPoint p) const noexcept {
    // Dense fast path: one word load.  The grid invariantly covers every
    // particle, so an out-of-window cell is unoccupied by construction.
    if (grid_.enabled()) return grid_.test(p);
    return index_.contains(lattice::pack(p));
  }

  /// Occupancy via the hash index only, bypassing the bitboard.  Exposed
  /// for the reference kernels in tests/benches that measure or validate
  /// the dense fast path against the sparse implementation.
  [[nodiscard]] bool occupiedSparse(TriPoint p) const noexcept {
    return index_.contains(lattice::pack(p));
  }

  /// Occupancy of a cell within graph distance 2 of some particle — the
  /// target and ring cells of any proposed move qualify.  Every particle
  /// is kept ≥ BitGrid::kInteriorMargin cells inside the dense window
  /// (regrowth triggers on interior escape), so this skips the window
  /// bounds check: one word load on the hot path.  For arbitrary cells use
  /// occupied().
  [[nodiscard]] bool occupiedNear(TriPoint p) const noexcept {
    if (grid_.enabled()) return grid_.testUnchecked(p);
    return index_.contains(lattice::pack(p));
  }

  /// The dense occupancy grid: a flat window for small bounding boxes,
  /// the tiled backend for large ones (disabled only when forced sparse).
  [[nodiscard]] const BitGrid& grid() const noexcept { return grid_; }

  /// Which occupancy regime the system is running: "dense-flat" (one flat
  /// window), "dense-tiled" (tile directory), or "sparse" (hash index
  /// only — reachable only via forceSparseForTest() or a snapshot of such
  /// a run).  Surfaced through the sim facade so regime changes are loud.
  [[nodiscard]] const char* regimeName() const noexcept {
    if (!grid_.enabled()) return "sparse";
    return grid_.tiled() ? "dense-tiled" : "dense-flat";
  }

  /// Particle id occupying p, if any.  Invalid while the index is
  /// suspended (see suspendIndex()).
  [[nodiscard]] std::optional<std::size_t> particleAt(
      TriPoint p) const noexcept {
    SOPS_DASSERT(!indexSuspended_);
    const std::int32_t* id = index_.find(lattice::pack(p));
    if (id == nullptr) return std::nullopt;
    return static_cast<std::size_t>(*id);
  }

  /// Adds a particle at an unoccupied vertex; returns its id.
  std::size_t add(TriPoint p);

  /// Removes the particle with the given id (swap-with-last, so ids of other
  /// particles may change: the last particle takes over the removed id).
  void remove(std::size_t particle);

  /// Moves a particle to an unoccupied vertex (need not be adjacent; the
  /// chain enforces adjacency itself).
  void moveParticle(std::size_t particle, TriPoint to);

  /// Suspends maintenance of the cell → id hash index so that concurrent
  /// workers may moveParticle() *disjoint* particles whose reads and
  /// writes touch disjoint grid words (the sharded chain runner's stripe
  /// discipline): the open-addressing index is the one structure every
  /// move would otherwise share.  While suspended, occupancy is answered
  /// by the dense window alone and particleAt() must not be called.
  /// Requires an enabled dense window.  If a move during suspension
  /// forces the sparse fallback (window cap), the index is restored on
  /// the spot — from then on occupancy needs it — mirroring the amoebot
  /// system's id-index suspension.
  void suspendIndex();

  /// Rebuilds the hash index from the position vector and resumes normal
  /// maintenance.  Idempotent, including after a mid-suspension sparse
  /// fallback already restored it.
  void restoreIndex();

  [[nodiscard]] bool indexSuspended() const noexcept {
    return indexSuspended_;
  }

  /// Number of occupied neighbors of vertex p (0..6).  p itself does not
  /// count even if occupied.
  [[nodiscard]] int neighborCount(TriPoint p) const noexcept {
    int count = 0;
    for (const Direction d : lattice::kAllDirections) {
      count += occupied(lattice::neighbor(p, d)) ? 1 : 0;
    }
    return count;
  }

  /// 8-bit occupancy mask of the ring cells of the move (ℓ, d) — see
  /// lattice/edge_ring.hpp for the cell order (it matches core::ringCell).
  /// Precondition: ℓ is an occupied particle position, so the grid's
  /// interior-margin invariant makes the dense gather branch-free.
  [[nodiscard]] std::uint8_t ringMask(TriPoint l, Direction d) const noexcept {
    if (grid_.enabled()) {
      return grid_.ringMaskUnchecked(l, lattice::index(d));
    }
    std::uint8_t mask = 0;
    const auto& offsets = lattice::kEdgeRingOffsets[lattice::index(d)];
    for (int idx = 0; idx < lattice::kEdgeRingSize; ++idx) {
      if (index_.contains(lattice::pack(l + offsets[idx]))) {
        mask = static_cast<std::uint8_t>(mask | (1u << idx));
      }
    }
    return mask;
  }

  /// 6-bit occupancy mask of p's neighborhood; bit i is direction index i.
  [[nodiscard]] std::uint8_t neighborMask(TriPoint p) const noexcept {
    std::uint8_t mask = 0;
    for (const Direction d : lattice::kAllDirections) {
      if (occupied(lattice::neighbor(p, d))) {
        mask = static_cast<std::uint8_t>(mask | (1u << index(d)));
      }
    }
    return mask;
  }

  /// Structural equality as a *set* of occupied vertices (particle ids and
  /// ordering are irrelevant, matching the paper's notion of arrangement).
  [[nodiscard]] bool sameArrangement(const ParticleSystem& other) const;

  /// Snapshot-restore hook: forces the dense window to the exact geometry
  /// a snapshot recorded (the sharded runners' trajectories depend on it;
  /// regrowGrid()'s proportional margin would re-derive a different one),
  /// or pins the permanent sparse fallback when the snapshotted run had
  /// already given up on the dense window.  Must not be called while the
  /// index is suspended.
  void restoreWindowGeometry(bool dense, std::int64_t originX,
                             std::int64_t originY, std::uint64_t width,
                             std::uint64_t height);

  /// Snapshot-restore hook for the tiled backend: rebuilds the tile
  /// directory EXACTLY as a v3 snapshot recorded it (the sharded runners'
  /// deferral predicates are functions of the allocated-tile set).
  void restoreTiledGeometry(std::span<const std::uint64_t> tileKeys);

  /// Pins the sparse (hash-only) regime — the organic fallback no longer
  /// exists now that rebuild() promotes to tiled, but tests still need to
  /// exercise the sparse code paths.
  void forceSparseForTest();

  /// Forces the tiled backend on a system whose bounding box would
  /// otherwise fit a flat window, so tests can compare the two backends
  /// on small configurations.
  void forceTiledForTest();

 private:
  /// Rebuilds the dense grid from positions_: a flat window (with
  /// proportional margin so rebuilds stay rare as the configuration
  /// drifts) when the bounding box fits BitGrid::kMaxWords, the tiled
  /// backend beyond that.
  void regrowGrid();

  std::vector<TriPoint> positions_;
  util::FlatMap64<std::int32_t> index_;
  BitGrid grid_;
  bool gridGaveUp_ = false;
  bool indexSuspended_ = false;
};

}  // namespace sops::system

#endif  // SOPS_SYSTEM_PARTICLE_SYSTEM_HPP
