#include "system/snapshot.hpp"

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/assert.hpp"

#if defined(_WIN32)
#include <io.h>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

namespace sops::system {

namespace {

constexpr char kMagic[8] = {'S', 'O', 'P', 'S', 'S', 'N', 'A', 'P'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8;

void putLE(std::vector<std::uint8_t>& out, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

[[nodiscard]] std::uint64_t getLE(const std::uint8_t* p, int bytes) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

/// fsync the directory containing `path` so the rename itself is durable.
void syncParentDirectory(const std::string& path) {
#if !defined(_WIN32)
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

}  // namespace

std::uint64_t snapshotChecksum(std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis
  for (const std::uint8_t b : bytes) {
    hash ^= b;
    hash *= 0x100000001b3ULL;  // FNV prime
  }
  return hash;
}

void SnapshotWriter::u8(std::uint8_t v) { payload_.push_back(v); }
void SnapshotWriter::u32(std::uint32_t v) { putLE(payload_, v, 4); }
void SnapshotWriter::u64(std::uint64_t v) { putLE(payload_, v, 8); }
void SnapshotWriter::i64(std::int64_t v) {
  putLE(payload_, static_cast<std::uint64_t>(v), 8);
}
void SnapshotWriter::f64(double v) {
  putLE(payload_, std::bit_cast<std::uint64_t>(v), 8);
}
void SnapshotWriter::str(std::string_view v) {
  u64(v.size());
  payload_.insert(payload_.end(), v.begin(), v.end());
}
void SnapshotWriter::bytes(std::span<const std::uint8_t> v) {
  u64(v.size());
  payload_.insert(payload_.end(), v.begin(), v.end());
}

void SnapshotReader::need(std::size_t count, const char* what) const {
  SOPS_REQUIRE(payload_.size() - pos_ >= count,
               std::string("snapshot payload truncated reading ") + what);
}

std::uint8_t SnapshotReader::u8() {
  need(1, "u8");
  return payload_[pos_++];
}
std::uint32_t SnapshotReader::u32() {
  need(4, "u32");
  const auto v = static_cast<std::uint32_t>(getLE(payload_.data() + pos_, 4));
  pos_ += 4;
  return v;
}
std::uint64_t SnapshotReader::u64() {
  need(8, "u64");
  const std::uint64_t v = getLE(payload_.data() + pos_, 8);
  pos_ += 8;
  return v;
}
std::int64_t SnapshotReader::i64() {
  return static_cast<std::int64_t>(u64());
}
double SnapshotReader::f64() { return std::bit_cast<double>(u64()); }
std::string SnapshotReader::str() {
  const std::uint64_t size = u64();
  need(size, "string body");
  std::string v(reinterpret_cast<const char*>(payload_.data() + pos_),
                static_cast<std::size_t>(size));
  pos_ += static_cast<std::size_t>(size);
  return v;
}
std::vector<std::uint8_t> SnapshotReader::bytes() {
  const std::uint64_t size = u64();
  need(size, "byte-blob body");
  std::vector<std::uint8_t> v(payload_.begin() +
                              static_cast<std::ptrdiff_t>(pos_),
                              payload_.begin() +
                                  static_cast<std::ptrdiff_t>(pos_ + size));
  pos_ += static_cast<std::size_t>(size);
  return v;
}

void SnapshotReader::finish() const {
  SOPS_REQUIRE(pos_ == payload_.size(),
               "snapshot payload has trailing bytes — wrong format or "
               "corrupt file");
}

void writeSnapshotFile(const std::string& path,
                       std::span<const std::uint8_t> payload,
                       std::uint32_t version) {
  SOPS_REQUIRE(version >= kMinSnapshotVersion && version <= kSnapshotVersion,
               "snapshot: cannot write unsupported format version " +
                   std::to_string(version));
  std::vector<std::uint8_t> frame;
  frame.reserve(kHeaderBytes + payload.size());
  // Byte-wise on purpose: the const char* range-insert overload trips
  // gcc 12's -Wstringop-overflow analysis under sanitizer
  // instrumentation (false positive through the inlined memmove).
  for (const char byte : kMagic) {
    frame.push_back(static_cast<std::uint8_t>(byte));
  }
  putLE(frame, version, 4);
  putLE(frame, payload.size(), 8);
  putLE(frame, snapshotChecksum(payload), 8);
  frame.insert(frame.end(), payload.begin(), payload.end());

  const std::string tmpPath = path + ".tmp";
  std::FILE* file = std::fopen(tmpPath.c_str(), "wb");
  SOPS_REQUIRE(file != nullptr, "snapshot: cannot open " + tmpPath + ": " +
                                    std::strerror(errno));
  const std::size_t written =
      std::fwrite(frame.data(), 1, frame.size(), file);
  bool ok = written == frame.size() && std::fflush(file) == 0;
#if !defined(_WIN32)
  ok = ok && ::fsync(::fileno(file)) == 0;
#endif
  ok = std::fclose(file) == 0 && ok;
  SOPS_REQUIRE(ok, "snapshot: short write to " + tmpPath);

  // Keep the last durable snapshot as `.prev` until the new one has
  // replaced the primary — the crash-fallback loadResumableSnapshot uses.
  std::rename(path.c_str(), (path + ".prev").c_str());  // ok if absent
  SOPS_REQUIRE(std::rename(tmpPath.c_str(), path.c_str()) == 0,
               "snapshot: cannot rename " + tmpPath + " to " + path + ": " +
                   std::strerror(errno));
  syncParentDirectory(path);
}

SnapshotData readSnapshotFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  SOPS_REQUIRE(file != nullptr, "snapshot: cannot open " + path + ": " +
                                    std::strerror(errno));
  std::vector<std::uint8_t> frame;
  std::uint8_t chunk[1 << 16];
  for (;;) {
    const std::size_t got = std::fread(chunk, 1, sizeof chunk, file);
    frame.insert(frame.end(), chunk, chunk + got);
    if (got < sizeof chunk) break;
  }
  std::fclose(file);

  SOPS_REQUIRE(frame.size() >= kHeaderBytes,
               "snapshot: " + path + " truncated (no complete header)");
  SOPS_REQUIRE(std::memcmp(frame.data(), kMagic, 8) == 0,
               "snapshot: " + path + " has wrong magic — not a snapshot");
  const auto version = static_cast<std::uint32_t>(getLE(frame.data() + 8, 4));
  SOPS_REQUIRE(version >= kMinSnapshotVersion && version <= kSnapshotVersion,
               "snapshot: " + path + " has unsupported format version " +
                   std::to_string(version));
  const std::uint64_t length = getLE(frame.data() + 12, 8);
  const std::uint64_t checksum = getLE(frame.data() + 20, 8);
  SOPS_REQUIRE(frame.size() - kHeaderBytes == length,
               "snapshot: " + path + " truncated or padded (payload " +
                   std::to_string(frame.size() - kHeaderBytes) + " bytes, "
                   "header claims " + std::to_string(length) + ")");
  std::vector<std::uint8_t> payload(frame.begin() + kHeaderBytes, frame.end());
  SOPS_REQUIRE(snapshotChecksum(payload) == checksum,
               "snapshot: " + path + " failed its checksum — torn write or "
               "corruption; refusing to resume from it");
  return {version, std::move(payload)};
}

SnapshotData loadResumableSnapshot(const std::string& path) {
  std::string primaryError;
  try {
    return readSnapshotFile(path);
  } catch (const ContractViolation& error) {
    primaryError = error.what();
  }
  try {
    return readSnapshotFile(path + ".prev");
  } catch (const ContractViolation& error) {
    SOPS_REQUIRE(false, "snapshot: no resumable snapshot at " + path +
                            " (" + primaryError + "; fallback: " +
                            error.what() + ")");
  }
  return {};  // unreachable
}

void writeParticleSystem(SnapshotWriter& w, const ParticleSystem& sys) {
  SOPS_REQUIRE(!sys.indexSuspended(),
               "snapshot: cannot serialize a system with a suspended index");
  w.u64(sys.size());
  for (const TriPoint p : sys.positions()) {
    w.i64(p.x);
    w.i64(p.y);
  }
  const BitGrid& grid = sys.grid();
  if (grid.tiled()) {
    // Tag 2: the exact allocated-tile set, sorted by raw key so the byte
    // stream is a pure function of state (the directory's iteration order
    // is not).
    w.u8(2);
    const std::vector<std::uint64_t> keys = grid.sortedTileKeys();
    w.u64(keys.size());
    for (const std::uint64_t key : keys) {
      w.i64(BitGrid::tileXOfKey(key));
      w.i64(BitGrid::tileYOfKey(key));
    }
  } else {
    // Tags 0/1 keep frame v2's exact byte layout.
    w.u8(grid.enabled() ? 1 : 0);
    w.i64(grid.originX());
    w.i64(grid.originY());
    w.u64(grid.width());
    w.u64(grid.height());
  }
}

ParticleSystem readParticleSystem(SnapshotReader& r) {
  const std::uint64_t count = r.u64();
  std::vector<TriPoint> points;
  points.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::int64_t x = r.i64();
    const std::int64_t y = r.i64();
    points.push_back({static_cast<std::int32_t>(x),
                      static_cast<std::int32_t>(y)});
  }
  const std::uint8_t backend = r.u8();
  SOPS_REQUIRE(backend <= 2, "snapshot: bad occupancy backend tag");
  if (backend == 2) {
    const std::uint64_t tileCount = r.u64();
    std::vector<std::uint64_t> keys;
    keys.reserve(static_cast<std::size_t>(tileCount));
    for (std::uint64_t i = 0; i < tileCount; ++i) {
      const std::int64_t tx = r.i64();
      const std::int64_t ty = r.i64();
      keys.push_back(BitGrid::tileKey(static_cast<std::int32_t>(tx),
                                      static_cast<std::int32_t>(ty)));
    }
    ParticleSystem sys(points);
    sys.restoreTiledGeometry(keys);
    return sys;
  }
  const bool dense = backend != 0;
  const std::int64_t originX = r.i64();
  const std::int64_t originY = r.i64();
  const std::uint64_t width = r.u64();
  const std::uint64_t height = r.u64();
  ParticleSystem sys(points);
  sys.restoreWindowGeometry(dense, originX, originY, width, height);
  return sys;
}

void writeRandom(SnapshotWriter& w, const rng::Random& random) {
  w.u64(random.seed());
  for (const std::uint64_t word : random.engine().state()) w.u64(word);
}

rng::Random readRandom(SnapshotReader& r) {
  const std::uint64_t seed = r.u64();
  std::array<std::uint64_t, 4> state{};
  for (std::uint64_t& word : state) word = r.u64();
  return rng::Random::fromState(seed, state);
}

void writeEngineState(SnapshotWriter& w,
                      const std::array<std::uint64_t, 4>& state) {
  for (const std::uint64_t word : state) w.u64(word);
}

std::array<std::uint64_t, 4> readEngineState(SnapshotReader& r) {
  std::array<std::uint64_t, 4> state{};
  for (std::uint64_t& word : state) word = r.u64();
  return state;
}

}  // namespace sops::system
