#include "system/boundary.hpp"

#include <algorithm>
#include <array>

#include "lattice/direction.hpp"
#include "system/metrics.hpp"

namespace sops::system {

namespace {

using lattice::Direction;
using lattice::directionBetween;
using lattice::kAllDirections;
using lattice::neighbor;
using lattice::offset;
using lattice::pack;
using lattice::rotated;

/// Lexicographically (y, then x) minimal occupied vertex: its W, SW, and SE
/// neighbors are guaranteed unoccupied, so the exterior is adjacent.
TriPoint bottomLeftmost(const ParticleSystem& sys) {
  TriPoint best = sys.position(0);
  for (const TriPoint p : sys.positions()) {
    if (p.y < best.y || (p.y == best.y && p.x < best.x)) best = p;
  }
  return best;
}

/// A face of G∆ = a vertex of the dual hexagonal lattice.  Encoded into a
/// single uint64 by doubling the base x coordinate (valid for |x| < 2^30,
/// far beyond any reachable configuration).
struct Face {
  TriPoint base;
  bool up;  // up face {v, v+E, v+NE}; down face {v, v+E, v+SE}
};

std::uint64_t faceKey(Face f) {
  return pack(TriPoint{2 * f.base.x + (f.up ? 1 : 0), f.base.y});
}

/// The two faces of G∆ incident to the edge (u, u+d).  For any direction d,
/// these are the faces whose third corner is u+rotated(d,±1).
std::array<Face, 2> facesOfEdge(TriPoint u, Direction d) {
  const TriPoint w = neighbor(u, d);
  const TriPoint t1 = neighbor(u, rotated(d, 1));
  const TriPoint t2 = neighbor(u, rotated(d, -1));
  const auto identify = [](TriPoint a, TriPoint b, TriPoint c) -> Face {
    // The canonical base of a face is the corner seeing the other two at
    // (E, NE) for an up face or (E, SE) for a down face.
    const std::array<TriPoint, 3> corners = {a, b, c};
    for (const TriPoint q : corners) {
      const auto has = [&corners](TriPoint want) {
        return std::find(corners.begin(), corners.end(), want) != corners.end();
      };
      if (has(neighbor(q, Direction::East))) {
        if (has(neighbor(q, Direction::NorthEast))) return {q, true};
        if (has(neighbor(q, Direction::SouthEast))) return {q, false};
      }
    }
    SOPS_REQUIRE(false, "facesOfEdge: corners do not form a lattice face");
    return {};
  };
  return {identify(u, w, t1), identify(u, w, t2)};
}

}  // namespace

std::int64_t traceExternalWalk(const ParticleSystem& sys) {
  SOPS_REQUIRE(!sys.empty(), "traceExternalWalk of empty system");
  SOPS_REQUIRE(isConnected(sys), "traceExternalWalk requires connectivity");
  if (sys.size() == 1) return 0;

  const TriPoint start = bottomLeftmost(sys);
  const auto nextDirection = [&sys](TriPoint v, Direction back) -> Direction {
    for (int k = 1; k <= lattice::kNumDirections; ++k) {
      const Direction d = rotated(back, k);
      if (sys.occupied(neighbor(v, d))) return d;
    }
    SOPS_REQUIRE(false, "boundary walk stranded at an isolated vertex");
    return Direction::East;
  };

  // Virtual "previous" direction West: W/SW/SE of the bottom-leftmost
  // vertex are unoccupied, so the scan starts facing the exterior.
  const Direction firstDir = nextDirection(start, Direction::West);
  TriPoint v = neighbor(start, firstDir);
  Direction back = lattice::opposite(firstDir);
  std::int64_t steps = 1;
  while (true) {
    const Direction d = nextDirection(v, back);
    if (v == start && d == firstDir) break;  // walk state has closed
    v = neighbor(v, d);
    back = lattice::opposite(d);
    ++steps;
    SOPS_REQUIRE(steps <= 12 * static_cast<std::int64_t>(sys.size()) + 12,
                 "boundary walk failed to terminate");
  }
  return steps;
}

HexBoundaryDecomposition hexBoundaryCycles(const ParticleSystem& sys) {
  SOPS_REQUIRE(!sys.empty(), "hexBoundaryCycles of empty system");
  SOPS_REQUIRE(isConnected(sys), "hexBoundaryCycles requires connectivity");

  const ComplementRegions regions = analyzeComplement(sys);

  struct BoundaryEdge {
    std::uint64_t faceA;
    std::uint64_t faceB;
    std::int32_t region;
    bool visited = false;
  };
  std::vector<BoundaryEdge> edges;
  edges.reserve(sys.size() * 3);

  // Each face has either zero or exactly two incident boundary edges (the
  // three corners cannot be pairwise-distinct in a 2-state coloring), so
  // the boundary decomposes into disjoint simple cycles.
  util::FlatMap64<std::array<std::int32_t, 2>> edgesAtFace(sys.size() * 4);
  const auto registerFace = [&edgesAtFace](std::uint64_t face,
                                           std::int32_t edgeId) {
    if (auto* slot = edgesAtFace.find(face)) {
      SOPS_REQUIRE((*slot)[1] == -1, "face has more than two boundary edges");
      (*slot)[1] = edgeId;
    } else {
      edgesAtFace.insertOrAssign(face, {edgeId, -1});
    }
  };

  for (const TriPoint u : sys.positions()) {
    for (const Direction d : kAllDirections) {
      const TriPoint w = neighbor(u, d);
      if (sys.occupied(w)) continue;
      const std::int32_t* region = regions.regionOf.find(pack(w));
      SOPS_REQUIRE(region != nullptr, "unoccupied neighbor missing region id");
      const auto faces = facesOfEdge(u, d);
      const auto edgeId = static_cast<std::int32_t>(edges.size());
      edges.push_back({faceKey(faces[0]), faceKey(faces[1]), *region});
      registerFace(faceKey(faces[0]), edgeId);
      registerFace(faceKey(faces[1]), edgeId);
    }
  }

  HexBoundaryDecomposition result;
  bool sawExternal = false;
  for (std::size_t startEdge = 0; startEdge < edges.size(); ++startEdge) {
    if (edges[startEdge].visited) continue;
    const std::int32_t region = edges[startEdge].region;
    std::int64_t length = 0;
    std::int32_t current = static_cast<std::int32_t>(startEdge);
    std::uint64_t towardFace = edges[startEdge].faceB;
    while (true) {
      BoundaryEdge& e = edges[static_cast<std::size_t>(current)];
      SOPS_REQUIRE(!e.visited, "boundary cycle self-intersects");
      SOPS_REQUIRE(e.region == region, "boundary cycle borders two regions");
      e.visited = true;
      ++length;
      const auto* pair = edgesAtFace.find(towardFace);
      SOPS_REQUIRE(pair != nullptr && (*pair)[1] != -1,
                   "dangling boundary edge");
      const std::int32_t next =
          ((*pair)[0] == current) ? (*pair)[1] : (*pair)[0];
      if (next == static_cast<std::int32_t>(startEdge)) break;
      const BoundaryEdge& ne = edges[static_cast<std::size_t>(next)];
      towardFace = (ne.faceA == towardFace) ? ne.faceB : ne.faceA;
      current = next;
    }
    if (region == ComplementRegions::kExteriorRegion) {
      SOPS_REQUIRE(!sawExternal,
                   "connected configuration has two external cycles");
      sawExternal = true;
      result.externalHexLength = length;
    } else {
      result.holeHexLengths.push_back(length);
    }
  }
  SOPS_REQUIRE(sawExternal, "no external boundary found");
  SOPS_REQUIRE(result.holeHexLengths.size() ==
                   static_cast<std::size_t>(regions.holeCount),
               "hole cycle count mismatch");
  std::sort(result.holeHexLengths.begin(), result.holeHexLengths.end());
  return result;
}

std::int64_t perimeterTraced(const ParticleSystem& sys) {
  const HexBoundaryDecomposition decomposition = hexBoundaryCycles(sys);
  std::int64_t p = (decomposition.externalHexLength - 6) / 2;
  for (const std::int64_t hole : decomposition.holeHexLengths) {
    p += (hole + 6) / 2;
  }
  return p;
}

}  // namespace sops::system
