#include "system/metrics.hpp"

#include <cmath>
#include <deque>
#include <limits>

#include "lattice/direction.hpp"

namespace sops::system {

namespace {

using lattice::Direction;
using lattice::kAllDirections;
using lattice::neighbor;
using lattice::pack;

// Directions whose offsets cover each undirected edge exactly once (their
// opposites cover the other orientation).
constexpr Direction kPositiveDirs[3] = {Direction::East, Direction::NorthEast,
                                        Direction::SouthEast};

}  // namespace

std::int64_t countEdges(const ParticleSystem& sys) {
  std::int64_t edges = 0;
  for (const TriPoint p : sys.positions()) {
    for (const Direction d : kPositiveDirs) {
      edges += sys.occupied(neighbor(p, d)) ? 1 : 0;
    }
  }
  return edges;
}

std::int64_t countTriangles(const ParticleSystem& sys) {
  std::int64_t triangles = 0;
  for (const TriPoint p : sys.positions()) {
    const bool east = sys.occupied(neighbor(p, Direction::East));
    if (!east) continue;
    // Upward face {p, p+E, p+NE} and downward face {p, p+E, p+SE}: p is the
    // unique corner seeing the other two at (E, NE) resp. (E, SE), so each
    // face is counted exactly once.
    triangles += sys.occupied(neighbor(p, Direction::NorthEast)) ? 1 : 0;
    triangles += sys.occupied(neighbor(p, Direction::SouthEast)) ? 1 : 0;
  }
  return triangles;
}

bool isConnected(const ParticleSystem& sys) {
  if (sys.size() <= 1) return true;
  util::FlatSet64 seen(sys.size());
  std::deque<TriPoint> frontier;
  frontier.push_back(sys.position(0));
  seen.insert(pack(sys.position(0)));
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const TriPoint p = frontier.front();
    frontier.pop_front();
    for (const Direction d : kAllDirections) {
      const TriPoint q = neighbor(p, d);
      if (sys.occupied(q) && seen.insert(pack(q))) {
        ++reached;
        frontier.push_back(q);
      }
    }
  }
  return reached == sys.size();
}

BoundingBox boundingBox(const ParticleSystem& sys) {
  SOPS_REQUIRE(!sys.empty(), "boundingBox of empty system");
  BoundingBox box{std::numeric_limits<std::int32_t>::max(),
                  std::numeric_limits<std::int32_t>::max(),
                  std::numeric_limits<std::int32_t>::min(),
                  std::numeric_limits<std::int32_t>::min()};
  for (const TriPoint p : sys.positions()) {
    box.minX = std::min(box.minX, p.x);
    box.minY = std::min(box.minY, p.y);
    box.maxX = std::max(box.maxX, p.x);
    box.maxY = std::max(box.maxY, p.y);
  }
  return box;
}

ComplementRegions analyzeComplement(const ParticleSystem& sys) {
  SOPS_REQUIRE(!sys.empty(), "analyzeComplement of empty system");
  ComplementRegions result;
  const BoundingBox inner = boundingBox(sys);
  // Window expanded by one: its border ring is entirely unoccupied and
  // connected (axial rectangles are row/column connected), so the exterior
  // is exactly the component containing any border cell.
  const BoundingBox window{inner.minX - 1, inner.minY - 1, inner.maxX + 1,
                           inner.maxY + 1};
  result.window = window;

  const auto inWindow = [&window](TriPoint p) {
    return p.x >= window.minX && p.x <= window.maxX && p.y >= window.minY &&
           p.y <= window.maxY;
  };

  // Flood the exterior first, from a guaranteed-exterior corner.
  const auto flood = [&](TriPoint start, std::int32_t region) {
    std::deque<TriPoint> frontier;
    frontier.push_back(start);
    result.regionOf.insertOrAssign(pack(start), region);
    while (!frontier.empty()) {
      const TriPoint p = frontier.front();
      frontier.pop_front();
      for (const Direction d : kAllDirections) {
        const TriPoint q = neighbor(p, d);
        if (!inWindow(q) || sys.occupied(q)) continue;
        if (result.regionOf.contains(pack(q))) continue;
        result.regionOf.insertOrAssign(pack(q), region);
        frontier.push_back(q);
      }
    }
  };

  flood({window.minX, window.minY}, ComplementRegions::kExteriorRegion);

  // Remaining unflooded unoccupied cells are holes; label by component.
  std::int32_t nextRegion = 1;
  for (std::int32_t y = window.minY; y <= window.maxY; ++y) {
    for (std::int32_t x = window.minX; x <= window.maxX; ++x) {
      const TriPoint p{x, y};
      if (sys.occupied(p) || result.regionOf.contains(pack(p))) continue;
      flood(p, nextRegion);
      ++nextRegion;
    }
  }
  result.holeCount = nextRegion - 1;
  return result;
}

int countHoles(const ParticleSystem& sys) {
  return analyzeComplement(sys).holeCount;
}

std::int64_t perimeter(const ParticleSystem& sys) {
  SOPS_REQUIRE(!sys.empty(), "perimeter of empty system");
  SOPS_REQUIRE(isConnected(sys),
               "perimeter requires a connected configuration");
  const auto n = static_cast<std::int64_t>(sys.size());
  return perimeterFromCounts(n, countEdges(sys), countHoles(sys));
}

std::int64_t pMin(std::int64_t n) {
  SOPS_REQUIRE(n >= 1, "pMin requires n >= 1");
  // ceil(sqrt(12n-3)) computed exactly with an integer correction step.
  const double approx = std::sqrt(static_cast<double>(12 * n - 3));
  auto root = static_cast<std::int64_t>(approx);
  while (root * root < 12 * n - 3) ++root;
  while ((root - 1) * (root - 1) >= 12 * n - 3) --root;
  return root - 3;
}

int graphDiameter(const ParticleSystem& sys) {
  SOPS_REQUIRE(!sys.empty(), "graphDiameter of empty system");
  SOPS_REQUIRE(isConnected(sys),
               "graphDiameter requires connected configuration");
  int best = 0;
  for (const TriPoint source : sys.positions()) {
    util::FlatMap64<std::int32_t> dist(sys.size());
    std::deque<TriPoint> frontier;
    dist.insertOrAssign(pack(source), 0);
    frontier.push_back(source);
    while (!frontier.empty()) {
      const TriPoint p = frontier.front();
      frontier.pop_front();
      const std::int32_t dp = *dist.find(pack(p));
      best = std::max(best, dp);
      for (const Direction d : kAllDirections) {
        const TriPoint q = neighbor(p, d);
        if (sys.occupied(q) && !dist.contains(pack(q))) {
          dist.insertOrAssign(pack(q), dp + 1);
          frontier.push_back(q);
        }
      }
    }
  }
  return best;
}

ConfigSummary summarize(const ParticleSystem& sys) {
  ConfigSummary s;
  s.particles = static_cast<std::int64_t>(sys.size());
  if (sys.empty()) {
    s.connected = true;
    return s;
  }
  s.edges = countEdges(sys);
  s.triangles = countTriangles(sys);
  s.holes = countHoles(sys);
  s.connected = isConnected(sys);
  if (s.connected) {
    s.perimeter = perimeterFromCounts(s.particles, s.edges, s.holes);
    const std::int64_t minimum = pMin(s.particles);
    s.perimeterRatio = minimum > 0
                           ? static_cast<double>(s.perimeter) /
                                 static_cast<double>(minimum)
                           : (s.perimeter == 0 ? 1.0 : 0.0);
  }
  return s;
}

}  // namespace sops::system
