#include "system/canonical.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

namespace sops::system {

std::vector<TriPoint> canonicalPoints(std::vector<TriPoint> points) {
  SOPS_REQUIRE(!points.empty(), "canonicalPoints of empty set");
  std::int32_t minX = std::numeric_limits<std::int32_t>::max();
  std::int32_t minY = std::numeric_limits<std::int32_t>::max();
  for (const TriPoint p : points) {
    minX = std::min(minX, p.x);
    minY = std::min(minY, p.y);
  }
  for (TriPoint& p : points) {
    p.x -= minX;
    p.y -= minY;
  }
  std::sort(points.begin(), points.end(), [](TriPoint a, TriPoint b) {
    return a.y != b.y ? a.y < b.y : a.x < b.x;
  });
  return points;
}

std::vector<TriPoint> canonicalPoints(const ParticleSystem& sys) {
  return canonicalPoints(sys.positions());
}

std::string canonicalKeyFromPoints(std::vector<TriPoint> points) {
  const std::vector<TriPoint> canon = canonicalPoints(std::move(points));
  std::string key;
  key.resize(canon.size() * sizeof(std::uint64_t));
  char* out = key.data();
  for (const TriPoint p : canon) {
    const std::uint64_t packed = lattice::pack(p);
    std::memcpy(out, &packed, sizeof(packed));
    out += sizeof(packed);
  }
  return key;
}

std::string canonicalKey(const ParticleSystem& sys) {
  return canonicalKeyFromPoints(sys.positions());
}

}  // namespace sops::system
