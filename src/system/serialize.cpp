#include "system/serialize.hpp"

#include <charconv>
#include <string>
#include <vector>

namespace sops::system {

namespace {

[[nodiscard]] bool isSpaceChar(char c) {
  return c == ' ' || c == '\n' || c == '\t' || c == '\r';
}

/// A short quoted excerpt of the text at `pos`, for error messages.
[[nodiscard]] std::string excerptAt(std::string_view text, std::size_t pos) {
  constexpr std::size_t kExcerpt = 16;
  const std::string_view tail = text.substr(pos, kExcerpt);
  std::string out = "at offset " + std::to_string(pos) + ": \"";
  out.append(tail);
  if (pos + kExcerpt < text.size()) out += "...";
  out += '"';
  return out;
}

}  // namespace

std::string toText(const ParticleSystem& sys) {
  std::string out;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const TriPoint p = sys.position(i);
    if (i > 0) out += ' ';
    out += std::to_string(p.x);
    out += ',';
    out += std::to_string(p.y);
  }
  return out;
}

ParticleSystem fromText(std::string_view text) {
  std::vector<TriPoint> points;
  std::size_t i = 0;
  const auto skipSpace = [&] {
    while (i < text.size() && isSpaceChar(text[i])) ++i;
  };
  const auto parseInt = [&](const char* which) -> std::int32_t {
    std::int32_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data() + i, text.data() + text.size(), value);
    SOPS_REQUIRE(ec != std::errc::result_out_of_range,
                 std::string("fromText: ") + which + " coordinate of pair " +
                     std::to_string(points.size()) + " overflows 32 bits " +
                     excerptAt(text, i));
    SOPS_REQUIRE(ec == std::errc{},
                 std::string("fromText: expected integer ") + which +
                     " coordinate for pair " + std::to_string(points.size()) +
                     " " + excerptAt(text, i));
    i = static_cast<std::size_t>(ptr - text.data());
    // from_chars stops at the '.' of "1.5" having happily parsed "1" — a
    // fractional coordinate must be named as such, not surface as a
    // confusing "expected ','"/"trailing garbage" one character later.
    SOPS_REQUIRE(i >= text.size() || text[i] != '.',
                 std::string("fromText: ") + which + " coordinate of pair " +
                     std::to_string(points.size()) +
                     " is not an integer (fractional coordinates are not "
                     "representable) " + excerptAt(text, i));
    return value;
  };
  skipSpace();
  while (i < text.size()) {
    const std::int32_t x = parseInt("x");
    SOPS_REQUIRE(i < text.size() && text[i] == ',',
                 "fromText: expected ',' between the coordinates of pair " +
                     std::to_string(points.size()) + " " + excerptAt(text, i));
    ++i;
    const std::int32_t y = parseInt("y");
    // A pair must end at whitespace or end-of-text; "3,4x" silently
    // dropping the "x" (or worse, "3,4,5" dropping ",5") would corrupt a
    // configuration without a trace.
    SOPS_REQUIRE(i >= text.size() || isSpaceChar(text[i]),
                 "fromText: trailing garbage after pair " +
                     std::to_string(points.size()) + " " + excerptAt(text, i));
    points.push_back({x, y});
    skipSpace();
  }
  return ParticleSystem(points);
}

}  // namespace sops::system
