#include "system/serialize.hpp"

#include <charconv>
#include <vector>

namespace sops::system {

std::string toText(const ParticleSystem& sys) {
  std::string out;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const TriPoint p = sys.position(i);
    if (i > 0) out += ' ';
    out += std::to_string(p.x);
    out += ',';
    out += std::to_string(p.y);
  }
  return out;
}

ParticleSystem fromText(std::string_view text) {
  std::vector<TriPoint> points;
  std::size_t i = 0;
  const auto skipSpace = [&] {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\n' ||
                               text[i] == '\t' || text[i] == '\r')) {
      ++i;
    }
  };
  const auto parseInt = [&]() -> std::int32_t {
    std::int32_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data() + i, text.data() + text.size(), value);
    SOPS_REQUIRE(ec == std::errc{}, "fromText: expected integer");
    i = static_cast<std::size_t>(ptr - text.data());
    return value;
  };
  skipSpace();
  while (i < text.size()) {
    const std::int32_t x = parseInt();
    SOPS_REQUIRE(i < text.size() && text[i] == ',', "fromText: expected ','");
    ++i;
    const std::int32_t y = parseInt();
    points.push_back({x, y});
    skipSpace();
  }
  return ParticleSystem(points);
}

}  // namespace sops::system
