#include "system/bit_grid.hpp"

#include <algorithm>

namespace sops::system {

bool BitGrid::rebuild(std::span<const TriPoint> points,
                      std::int64_t baseMargin) {
  if (points.empty()) {
    disable();
    return false;
  }
  std::int64_t minX = points[0].x, maxX = points[0].x;
  std::int64_t minY = points[0].y, maxY = points[0].y;
  for (const TriPoint p : points) {
    minX = std::min<std::int64_t>(minX, p.x);
    maxX = std::max<std::int64_t>(maxX, p.x);
    minY = std::min<std::int64_t>(minY, p.y);
    maxY = std::max<std::int64_t>(maxY, p.y);
  }
  const std::int64_t margin =
      baseMargin + std::max(maxX - minX, maxY - minY) / 4;
  const std::uint64_t width =
      static_cast<std::uint64_t>(maxX - minX) + 1 + 2 * margin;
  const std::uint64_t height =
      static_cast<std::uint64_t>(maxY - minY) + 1 + 2 * margin;
  const std::uint64_t strideWords = (width + 63) / 64;
  // Overflow-safe area check against the dense-window cap.
  if (height != 0 && strideWords > kMaxWords / height) {
    disable();
    return false;
  }
  originX_ = minX - margin;
  originY_ = minY - margin;
  width_ = width;
  height_ = height;
  strideWords_ = strideWords;
  computeDeltas();
  words_.assign(static_cast<std::size_t>(strideWords * height), 0);
  for (const TriPoint p : points) set(p);
  return true;
}

void BitGrid::rebuildExact(std::span<const TriPoint> points,
                           std::int64_t originX, std::int64_t originY,
                           std::uint64_t width, std::uint64_t height) {
  SOPS_REQUIRE(width > 0 && height > 0, "rebuildExact: empty window");
  const std::uint64_t strideWords = (width + 63) / 64;
  SOPS_REQUIRE(strideWords <= kMaxWords / height,
               "rebuildExact: window exceeds the dense cap");
  originX_ = originX;
  originY_ = originY;
  width_ = width;
  height_ = height;
  strideWords_ = strideWords;
  computeDeltas();
  words_.assign(static_cast<std::size_t>(strideWords * height), 0);
  for (const TriPoint p : points) {
    SOPS_REQUIRE(coversInterior(p),
                 "rebuildExact: point violates the interior-margin invariant");
    set(p);
  }
}

void BitGrid::computeDeltas() noexcept {
  const auto strideBits = static_cast<std::int64_t>(strideWords_ * 64);
  for (int d = 0; d < lattice::kNumDirections; ++d) {
    for (int idx = 0; idx < lattice::kEdgeRingSize; ++idx) {
      const TriPoint off = lattice::kEdgeRingOffsets[d][idx];
      ringDeltas_[d][idx] = off.y * strideBits + off.x;
    }
    const TriPoint noff = lattice::offset(lattice::directionFromIndex(d));
    neighborDeltas_[d] = noff.y * strideBits + noff.x;
  }
}

void BitGrid::allocateLike(const BitGrid& other) {
  SOPS_REQUIRE(other.enabled(), "allocateLike: source grid not enabled");
  originX_ = other.originX_;
  originY_ = other.originY_;
  width_ = other.width_;
  height_ = other.height_;
  strideWords_ = other.strideWords_;
  computeDeltas();
  words_.assign(other.words_.size(), 0);
}

void BitGrid::disable() noexcept {
  words_.clear();
  words_.shrink_to_fit();
  originX_ = originY_ = 0;
  width_ = height_ = strideWords_ = 0;
}

}  // namespace sops::system
