#include "system/bit_grid.hpp"

#include <algorithm>
#include <string>

namespace sops::system {

bool BitGrid::rebuild(std::span<const TriPoint> points,
                      std::int64_t baseMargin) {
  if (points.empty()) {
    disable();
    return false;
  }
  std::int64_t minX = points[0].x, maxX = points[0].x;
  std::int64_t minY = points[0].y, maxY = points[0].y;
  for (const TriPoint p : points) {
    minX = std::min<std::int64_t>(minX, p.x);
    maxX = std::max<std::int64_t>(maxX, p.x);
    minY = std::min<std::int64_t>(minY, p.y);
    maxY = std::max<std::int64_t>(maxY, p.y);
  }
  const std::int64_t margin =
      baseMargin + std::max(maxX - minX, maxY - minY) / 4;
  const std::uint64_t width =
      static_cast<std::uint64_t>(maxX - minX) + 1 + 2 * margin;
  const std::uint64_t height =
      static_cast<std::uint64_t>(maxY - minY) + 1 + 2 * margin;
  const std::uint64_t strideWords = (width + 63) / 64;
  // Overflow-safe area check against the flat-window cap: too big for one
  // dense window means the configuration promotes to the tiled backend,
  // which allocates only the touched 32 KiB tiles.
  if (height != 0 && strideWords > kMaxWords / height) {
    rebuildTiled(points, std::max<std::int64_t>(baseMargin, kInteriorMargin));
    return true;
  }
  tiled_ = false;
  tiles_.clear();
  originX_ = minX - margin;
  originY_ = minY - margin;
  width_ = width;
  height_ = height;
  strideWords_ = strideWords;
  computeDeltas(static_cast<std::int64_t>(strideWords_ * 64));
  words_.assign(static_cast<std::size_t>(strideWords * height), 0);
  ++geometryVersion_;
  for (const TriPoint p : points) set(p);
  return true;
}

void BitGrid::rebuildTiled(std::span<const TriPoint> points,
                           std::int64_t margin) {
  SOPS_REQUIRE(!points.empty(), "rebuildTiled: no points");
  SOPS_REQUIRE(margin >= kInteriorMargin,
               "rebuildTiled: margin must cover the interior invariant");
  enterTiled();
  for (const TriPoint p : points) ensureRegion(p, margin);
  for (const TriPoint p : points) set(p);
}

void BitGrid::rebuildTiledExact(std::span<const TriPoint> points,
                                std::span<const std::uint64_t> tileKeys) {
  SOPS_REQUIRE(!tileKeys.empty(), "rebuildTiledExact: empty tile directory");
  enterTiled();
  for (const std::uint64_t key : tileKeys) {
    SOPS_REQUIRE(!tiles_.contains(key),
                 "rebuildTiledExact: duplicate tile key");
    ensureTile(tileXOfKey(key), tileYOfKey(key));
  }
  for (const TriPoint p : points) {
    SOPS_REQUIRE(coversInterior(p),
                 "rebuildTiledExact: point violates the interior invariant "
                 "under the given tile directory");
    set(p);
  }
}

void BitGrid::ensureRegion(TriPoint p, std::int64_t margin) {
  SOPS_REQUIRE(tiled_, "ensureRegion: tiled backend only");
  const auto x = static_cast<std::int64_t>(p.x);
  const auto y = static_cast<std::int64_t>(p.y);
  const std::int64_t tx0 = (x - margin) >> kTileShiftX;
  const std::int64_t tx1 = (x + margin) >> kTileShiftX;
  const std::int64_t ty0 = (y - margin) >> kTileShiftY;
  const std::int64_t ty1 = (y + margin) >> kTileShiftY;
  for (std::int64_t ty = ty0; ty <= ty1; ++ty) {
    for (std::int64_t tx = tx0; tx <= tx1; ++tx) {
      ensureTile(tx, ty);
    }
  }
}

void BitGrid::ensureTilesOf(const BitGrid& other) {
  SOPS_REQUIRE(tiled_ && other.tiled_, "ensureTilesOf: tiled backends only");
  other.tiles_.forEach([this](std::uint64_t key, std::uint32_t) {
    ensureTile(tileXOfKey(key), tileYOfKey(key));
  });
}

std::uint32_t BitGrid::ensureTile(std::int64_t tx, std::int64_t ty) {
  SOPS_DASSERT(tiled_);
  const std::uint64_t key = tileKey(tx, ty);
  if (const std::uint32_t* slot = tiles_.find(key)) return *slot;
  if (tiles_.size() >= maxTiles_) {
    throw ContractViolation(
        "BitGrid: tile directory reached the cap of " +
        std::to_string(maxTiles_) +
        " tiles (32 KiB each); this configuration is too spread out for one "
        "grid — raise BitGrid::kMaxTiles or split the run into smaller "
        "systems");
  }
  const auto slot = static_cast<std::uint32_t>(tiles_.size());
  tiles_.insert(key, slot);
  words_.resize(words_.size() + kTileWords, 0);
  if (slot == 0) {
    tileMinX_ = tileMaxX_ = tx;
    tileMinY_ = tileMaxY_ = ty;
  } else {
    tileMinX_ = std::min(tileMinX_, tx);
    tileMaxX_ = std::max(tileMaxX_, tx);
    tileMinY_ = std::min(tileMinY_, ty);
    tileMaxY_ = std::max(tileMaxY_, ty);
  }
  originX_ = tileMinX_ * kTileWidth;
  originY_ = tileMinY_ * kTileHeight;
  width_ = static_cast<std::uint64_t>(tileMaxX_ - tileMinX_ + 1) *
           static_cast<std::uint64_t>(kTileWidth);
  height_ = static_cast<std::uint64_t>(tileMaxY_ - tileMinY_ + 1) *
            static_cast<std::uint64_t>(kTileHeight);
  ++geometryVersion_;
  return slot;
}

void BitGrid::enterTiled() {
  words_.clear();
  tiles_.clear();
  tiled_ = true;
  originX_ = originY_ = 0;
  width_ = height_ = 0;
  strideWords_ = 0;
  computeDeltas(kTileWidth);
  ++geometryVersion_;
}

void BitGrid::rebuildExact(std::span<const TriPoint> points,
                           std::int64_t originX, std::int64_t originY,
                           std::uint64_t width, std::uint64_t height) {
  SOPS_REQUIRE(width > 0 && height > 0, "rebuildExact: empty window");
  const std::uint64_t strideWords = (width + 63) / 64;
  SOPS_REQUIRE(strideWords <= kMaxWords / height,
               "rebuildExact: window exceeds the dense cap");
  tiled_ = false;
  tiles_.clear();
  originX_ = originX;
  originY_ = originY;
  width_ = width;
  height_ = height;
  strideWords_ = strideWords;
  computeDeltas(static_cast<std::int64_t>(strideWords_ * 64));
  words_.assign(static_cast<std::size_t>(strideWords * height), 0);
  ++geometryVersion_;
  for (const TriPoint p : points) {
    SOPS_REQUIRE(coversInterior(p),
                 "rebuildExact: point violates the interior-margin invariant");
    set(p);
  }
}

void BitGrid::computeDeltas(std::int64_t strideBits) noexcept {
  for (int d = 0; d < lattice::kNumDirections; ++d) {
    for (int idx = 0; idx < lattice::kEdgeRingSize; ++idx) {
      const TriPoint off = lattice::kEdgeRingOffsets[d][idx];
      ringDeltas_[d][idx] = off.y * strideBits + off.x;
    }
    const TriPoint noff = lattice::offset(lattice::directionFromIndex(d));
    neighborDeltas_[d] = noff.y * strideBits + noff.x;
  }
}

void BitGrid::allocateLike(const BitGrid& other) {
  SOPS_REQUIRE(other.enabled(), "allocateLike: source grid not enabled");
  tiled_ = other.tiled_;
  tiles_ = other.tiles_;  // identical keys AND slots: word layouts align
  tileMinX_ = other.tileMinX_;
  tileMaxX_ = other.tileMaxX_;
  tileMinY_ = other.tileMinY_;
  tileMaxY_ = other.tileMaxY_;
  originX_ = other.originX_;
  originY_ = other.originY_;
  width_ = other.width_;
  height_ = other.height_;
  strideWords_ = other.strideWords_;
  computeDeltas(tiled_ ? kTileWidth
                       : static_cast<std::int64_t>(strideWords_ * 64));
  words_.assign(other.words_.size(), 0);
  ++geometryVersion_;
}

void BitGrid::disable() noexcept {
  words_.clear();
  words_.shrink_to_fit();
  tiles_.clear();
  tiled_ = false;
  originX_ = originY_ = 0;
  width_ = height_ = strideWords_ = 0;
  ++geometryVersion_;
}

std::vector<std::uint64_t> BitGrid::sortedTileKeys() const {
  std::vector<std::uint64_t> keys;
  keys.reserve(tiles_.size());
  tiles_.forEach(
      [&keys](std::uint64_t key, std::uint32_t) { keys.push_back(key); });
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace sops::system
