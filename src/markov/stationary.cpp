#include "markov/stationary.hpp"

#include <algorithm>
#include <cmath>

namespace sops::markov {

double totalVariation(std::span<const double> a, std::span<const double> b) {
  SOPS_REQUIRE(a.size() == b.size(), "totalVariation: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return 0.5 * sum;
}

std::vector<double> normalized(std::span<const double> weights) {
  double total = 0.0;
  for (const double w : weights) {
    SOPS_REQUIRE(w >= 0.0, "normalized: negative weight");
    total += w;
  }
  SOPS_REQUIRE(total > 0.0, "normalized: zero total weight");
  std::vector<double> out(weights.begin(), weights.end());
  for (double& w : out) w /= total;
  return out;
}

std::vector<double> powerIterate(const TransitionMatrix& matrix,
                                 std::vector<double> distribution,
                                 int maxIterations, double tolerance) {
  SOPS_REQUIRE(distribution.size() == matrix.states(), "powerIterate: size");
  for (int iteration = 0; iteration < maxIterations; ++iteration) {
    std::vector<double> next = matrix.applyRight(distribution);
    const double delta = totalVariation(next, distribution);
    distribution = std::move(next);
    if (delta <= tolerance) break;
  }
  return distribution;
}

BalanceAudit auditDetailedBalance(const TransitionMatrix& matrix,
                                  std::span<const double> weights,
                                  const std::vector<char>& subset,
                                  double tolerance) {
  SOPS_REQUIRE(weights.size() == matrix.states(), "auditDetailedBalance: size");
  SOPS_REQUIRE(subset.size() == matrix.states(), "auditDetailedBalance: size");
  BalanceAudit audit;
  for (std::size_t x = 0; x < matrix.states(); ++x) {
    if (!subset[x]) continue;
    for (std::size_t y = 0; y < matrix.states(); ++y) {
      if (x == y) continue;
      const double flowOut = weights[x] * matrix.at(x, y);
      if (!subset[y]) {
        // Leaving the closed subset would break stationarity outright.
        if (flowOut > 0.0) {
          audit.maxViolation = std::max(audit.maxViolation, flowOut);
        }
        continue;
      }
      const double flowBack = weights[y] * matrix.at(y, x);
      const double scale = std::max({1.0, flowOut, flowBack});
      audit.maxViolation =
          std::max(audit.maxViolation, std::fabs(flowOut - flowBack) / scale);
    }
  }
  audit.holds = audit.maxViolation <= tolerance;
  return audit;
}

int mixingTimeFrom(const TransitionMatrix& matrix, std::size_t start,
                   std::span<const double> pi, double epsilon, int maxT) {
  SOPS_REQUIRE(start < matrix.states(), "mixingTimeFrom: bad start");
  SOPS_REQUIRE(pi.size() == matrix.states(), "mixingTimeFrom: size");
  std::vector<double> distribution(matrix.states(), 0.0);
  distribution[start] = 1.0;
  for (int t = 0; t <= maxT; ++t) {
    if (totalVariation(distribution, pi) <= epsilon) return t;
    distribution = matrix.applyRight(distribution);
  }
  return -1;
}

}  // namespace sops::markov
