#ifndef SOPS_MARKOV_STATIONARY_HPP
#define SOPS_MARKOV_STATIONARY_HPP

/// \file stationary.hpp
/// Stationary-distribution and convergence utilities for exactly-solvable
/// chains: power iteration, total variation distance, detailed-balance
/// audits, and exact mixing-time measurement (§2.4, §3.6, §3.7).

#include <cstdint>
#include <span>
#include <vector>

#include "markov/transition_matrix.hpp"

namespace sops::markov {

/// Total variation distance ½·Σ|a_i − b_i|.
[[nodiscard]] double totalVariation(std::span<const double> a,
                                    std::span<const double> b);

/// Normalizes weights into a probability distribution.
[[nodiscard]] std::vector<double> normalized(std::span<const double> weights);

/// Iterates distribution ← distribution · M until successive iterates are
/// within `tolerance` in total variation (or maxIterations).  Returns the
/// final distribution.
[[nodiscard]] std::vector<double> powerIterate(const TransitionMatrix& matrix,
                                               std::vector<double> distribution,
                                               int maxIterations = 100000,
                                               double tolerance = 1e-13);

/// Result of a detailed-balance audit of π(x)M(x,y) = π(y)M(y,x).
struct BalanceAudit {
  bool holds = false;
  double maxViolation = 0.0;
};

/// Checks detailed balance with respect to (unnormalized) weights on the
/// states with subset[s] != 0; transitions leaving the subset must have
/// zero probability for the audit to pass.
[[nodiscard]] BalanceAudit auditDetailedBalance(const TransitionMatrix& matrix,
                                                std::span<const double> weights,
                                                const std::vector<char>& subset,
                                                double tolerance = 1e-9);

/// Exact mixing time from the given start state: the least t with
/// TV(M^t(start,·), pi) ≤ epsilon.  Returns -1 if not reached within maxT.
[[nodiscard]] int mixingTimeFrom(const TransitionMatrix& matrix,
                                 std::size_t start,
                                 std::span<const double> pi, double epsilon,
                                 int maxT = 1 << 22);

}  // namespace sops::markov

#endif  // SOPS_MARKOV_STATIONARY_HPP
