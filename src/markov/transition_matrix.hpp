#ifndef SOPS_MARKOV_TRANSITION_MATRIX_HPP
#define SOPS_MARKOV_TRANSITION_MATRIX_HPP

/// \file transition_matrix.hpp
/// Dense transition matrices for exactly-solvable chains.
///
/// Used to make the paper's Lemmas 3.1–3.13 executable for tiny particle
/// counts: we build M's transition matrix over all connected configurations
/// (enumeration/chain_matrix.hpp) and audit stochasticity, detailed
/// balance, irreducibility on Ω*, transience of holed states, and the
/// stationary distribution — exactly, not by sampling.

#include <cstddef>
#include <vector>

#include "util/assert.hpp"

namespace sops::markov {

class TransitionMatrix {
 public:
  explicit TransitionMatrix(std::size_t states)
      : states_(states), data_(states * states, 0.0) {
    SOPS_REQUIRE(states > 0, "TransitionMatrix needs at least one state");
  }

  [[nodiscard]] std::size_t states() const noexcept { return states_; }

  [[nodiscard]] double at(std::size_t from, std::size_t to) const {
    SOPS_DASSERT(from < states_ && to < states_);
    return data_[from * states_ + to];
  }

  void add(std::size_t from, std::size_t to, double probability) {
    SOPS_DASSERT(from < states_ && to < states_);
    data_[from * states_ + to] += probability;
  }

  void set(std::size_t from, std::size_t to, double probability) {
    SOPS_DASSERT(from < states_ && to < states_);
    data_[from * states_ + to] = probability;
  }

  /// Row sum (should be 1 for a stochastic matrix).
  [[nodiscard]] double rowSum(std::size_t from) const;

  /// Max |rowSum − 1| over all rows.
  [[nodiscard]] double maxRowDefect() const;

  /// distribution' = distribution · M (row-vector convention).
  [[nodiscard]] std::vector<double> applyRight(
      const std::vector<double>& distribution) const;

  /// States reachable from start via positive-probability transitions
  /// (including start itself).
  [[nodiscard]] std::vector<char> reachableFrom(std::size_t start) const;

  /// True iff every state in `subset` can reach every other state in
  /// `subset` using only positive transitions through `subset`.
  [[nodiscard]] bool stronglyConnectedWithin(
      const std::vector<char>& subset) const;

 private:
  std::size_t states_;
  std::vector<double> data_;
};

}  // namespace sops::markov

#endif  // SOPS_MARKOV_TRANSITION_MATRIX_HPP
