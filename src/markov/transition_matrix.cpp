#include "markov/transition_matrix.hpp"

#include <cmath>
#include <deque>

namespace sops::markov {

double TransitionMatrix::rowSum(std::size_t from) const {
  SOPS_REQUIRE(from < states_, "rowSum: bad state");
  double sum = 0.0;
  for (std::size_t to = 0; to < states_; ++to) sum += at(from, to);
  return sum;
}

double TransitionMatrix::maxRowDefect() const {
  double worst = 0.0;
  for (std::size_t from = 0; from < states_; ++from) {
    worst = std::max(worst, std::fabs(rowSum(from) - 1.0));
  }
  return worst;
}

std::vector<double> TransitionMatrix::applyRight(
    const std::vector<double>& distribution) const {
  SOPS_REQUIRE(distribution.size() == states_, "applyRight: size mismatch");
  std::vector<double> next(states_, 0.0);
  for (std::size_t from = 0; from < states_; ++from) {
    const double mass = distribution[from];
    if (mass == 0.0) continue;
    const double* row = data_.data() + from * states_;
    for (std::size_t to = 0; to < states_; ++to) {
      next[to] += mass * row[to];
    }
  }
  return next;
}

std::vector<char> TransitionMatrix::reachableFrom(std::size_t start) const {
  SOPS_REQUIRE(start < states_, "reachableFrom: bad state");
  std::vector<char> seen(states_, 0);
  std::deque<std::size_t> frontier{start};
  seen[start] = 1;
  while (!frontier.empty()) {
    const std::size_t from = frontier.front();
    frontier.pop_front();
    for (std::size_t to = 0; to < states_; ++to) {
      if (!seen[to] && at(from, to) > 0.0) {
        seen[to] = 1;
        frontier.push_back(to);
      }
    }
  }
  return seen;
}

bool TransitionMatrix::stronglyConnectedWithin(
    const std::vector<char>& subset) const {
  SOPS_REQUIRE(subset.size() == states_,
               "stronglyConnectedWithin: size mismatch");
  std::size_t anchor = states_;
  std::size_t members = 0;
  for (std::size_t s = 0; s < states_; ++s) {
    if (subset[s]) {
      if (anchor == states_) anchor = s;
      ++members;
    }
  }
  if (members <= 1) return true;

  // BFS forward and backward from the anchor, restricted to the subset.
  const auto bfs = [&](bool forward) {
    std::vector<char> seen(states_, 0);
    std::deque<std::size_t> frontier{anchor};
    seen[anchor] = 1;
    std::size_t reached = 1;
    while (!frontier.empty()) {
      const std::size_t s = frontier.front();
      frontier.pop_front();
      for (std::size_t t = 0; t < states_; ++t) {
        if (!subset[t] || seen[t]) continue;
        const double probability = forward ? at(s, t) : at(t, s);
        if (probability > 0.0) {
          seen[t] = 1;
          ++reached;
          frontier.push_back(t);
        }
      }
    }
    return reached;
  };
  return bfs(true) == members && bfs(false) == members;
}

}  // namespace sops::markov
