#ifndef SOPS_UTIL_ASSERT_HPP
#define SOPS_UTIL_ASSERT_HPP

/// \file assert.hpp
/// Contract-checking macros for the sops library.
///
/// SOPS_REQUIRE / SOPS_ENSURE throw sops::ContractViolation and are always
/// active; use them on public API boundaries and cold paths.  SOPS_DASSERT
/// compiles away under NDEBUG; use it in hot loops.

#include <stdexcept>
#include <string>

namespace sops {

/// Thrown when a precondition, postcondition, or invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what)
      : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contractFailure(const char* kind, const char* expr,
                                         const char* file, int line,
                                         const std::string& msg) {
  std::string full(kind);
  full += " failed: ";
  full += expr;
  full += " at ";
  full += file;
  full += ":";
  full += std::to_string(line);
  if (!msg.empty()) {
    full += " (";
    full += msg;
    full += ")";
  }
  throw ContractViolation(full);
}
}  // namespace detail

}  // namespace sops

#define SOPS_REQUIRE(cond, msg)                                               \
  do {                                                                        \
    if (!(cond))                                                              \
      ::sops::detail::contractFailure("precondition", #cond, __FILE__,        \
                                      __LINE__, (msg));                       \
  } while (false)

#define SOPS_ENSURE(cond, msg)                                                \
  do {                                                                        \
    if (!(cond))                                                              \
      ::sops::detail::contractFailure("postcondition", #cond, __FILE__,       \
                                      __LINE__, (msg));                       \
  } while (false)

#ifdef NDEBUG
#define SOPS_DASSERT(cond) ((void)0)
#else
#define SOPS_DASSERT(cond)                                                    \
  do {                                                                        \
    if (!(cond))                                                              \
      ::sops::detail::contractFailure("debug invariant", #cond, __FILE__,     \
                                      __LINE__, "");                          \
  } while (false)
#endif

#endif  // SOPS_UTIL_ASSERT_HPP
