#ifndef SOPS_UTIL_FLAT_HASH_HPP
#define SOPS_UTIL_FLAT_HASH_HPP

/// \file flat_hash.hpp
/// Open-addressing hash containers keyed by 64-bit integers.
///
/// Particle occupancy queries are the hottest operation in every chain step
/// (roughly ten lookups per proposed move), so the library uses a dedicated
/// flat table instead of std::unordered_map: linear probing, power-of-two
/// capacity, and backward-shift deletion (no tombstones, so long-running
/// chains never degrade).  Keys are produced by sops::lattice::pack().

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/mix.hpp"

namespace sops::util {

/// Open-addressing hash map from uint64 keys to small trivially-copyable
/// values.  Not a general-purpose map: no iterators are invalidation-safe
/// across mutation, and Value must be cheap to move.
template <typename Value>
class FlatMap64 {
 public:
  FlatMap64() { rehash(kMinCapacity); }

  explicit FlatMap64(std::size_t expectedSize) {
    std::size_t cap = kMinCapacity;
    while (cap * 7 < expectedSize * 10) cap <<= 1;  // keep load factor < 0.7
    rehash(cap);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Inserts key->value; returns false (and leaves the map unchanged) if the
  /// key was already present.
  bool insert(std::uint64_t key, Value value) {
    maybeGrow();
    std::size_t i = slotFor(key);
    while (full_[i]) {
      if (keys_[i] == key) return false;
      i = next(i);
    }
    full_[i] = 1;
    keys_[i] = key;
    values_[i] = std::move(value);
    ++size_;
    return true;
  }

  /// Inserts or overwrites.
  void insertOrAssign(std::uint64_t key, Value value) {
    maybeGrow();
    std::size_t i = slotFor(key);
    while (full_[i]) {
      if (keys_[i] == key) {
        values_[i] = std::move(value);
        return;
      }
      i = next(i);
    }
    full_[i] = 1;
    keys_[i] = key;
    values_[i] = std::move(value);
    ++size_;
  }

  [[nodiscard]] bool contains(std::uint64_t key) const noexcept {
    return findSlot(key) != kNotFound;
  }

  /// Returns a pointer to the stored value, or nullptr if absent.  The
  /// pointer is invalidated by any mutation of the map.
  [[nodiscard]] const Value* find(std::uint64_t key) const noexcept {
    const std::size_t i = findSlot(key);
    return i == kNotFound ? nullptr : &values_[i];
  }

  [[nodiscard]] Value* find(std::uint64_t key) noexcept {
    const std::size_t i = findSlot(key);
    return i == kNotFound ? nullptr : &values_[i];
  }

  /// Removes the key; returns whether it was present.  Uses backward-shift
  /// deletion so lookup chains stay short with no tombstones.
  bool erase(std::uint64_t key) {
    std::size_t i = findSlot(key);
    if (i == kNotFound) return false;
    std::size_t j = i;
    while (true) {
      j = next(j);
      if (!full_[j]) break;
      const std::size_t ideal = slotFor(keys_[j]);
      // Move the entry at j back into the hole at i only if doing so does
      // not skip past its ideal slot (standard circular-distance test).
      const std::size_t cap = keys_.size();
      const std::size_t distIdealToHole = (i + cap - ideal) & (cap - 1);
      const std::size_t distIdealToHere = (j + cap - ideal) & (cap - 1);
      if (distIdealToHole <= distIdealToHere) {
        keys_[i] = keys_[j];
        values_[i] = std::move(values_[j]);
        i = j;
      }
    }
    full_[i] = 0;
    --size_;
    return true;
  }

  void clear() {
    std::fill(full_.begin(), full_.end(), 0);
    size_ = 0;
  }

  /// Calls fn(key, value) for every entry, in unspecified order.
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (full_[i]) fn(keys_[i], values_[i]);
    }
  }

  void reserve(std::size_t expectedSize) {
    std::size_t cap = keys_.size();
    while (cap * 7 < expectedSize * 10) cap <<= 1;
    if (cap != keys_.size()) rehash(cap);
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;
  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);

  [[nodiscard]] std::size_t slotFor(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>(mix64(key)) & (keys_.size() - 1);
  }
  [[nodiscard]] std::size_t next(std::size_t i) const noexcept {
    return (i + 1) & (keys_.size() - 1);
  }

  [[nodiscard]] std::size_t findSlot(std::uint64_t key) const noexcept {
    std::size_t i = slotFor(key);
    while (full_[i]) {
      if (keys_[i] == key) return i;
      i = next(i);
    }
    return kNotFound;
  }

  void maybeGrow() {
    if ((size_ + 1) * 10 >= keys_.size() * 7) rehash(keys_.size() * 2);
  }

  void rehash(std::size_t newCapacity) {
    SOPS_DASSERT((newCapacity & (newCapacity - 1)) == 0);
    std::vector<std::uint64_t> oldKeys = std::move(keys_);
    std::vector<Value> oldValues = std::move(values_);
    std::vector<std::uint8_t> oldFull = std::move(full_);
    keys_.assign(newCapacity, 0);
    values_.assign(newCapacity, Value{});
    full_.assign(newCapacity, 0);
    size_ = 0;
    for (std::size_t i = 0; i < oldKeys.size(); ++i) {
      if (oldFull[i]) insert(oldKeys[i], std::move(oldValues[i]));
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<Value> values_;
  std::vector<std::uint8_t> full_;
  std::size_t size_ = 0;
};

/// Open-addressing hash set of uint64 keys; same design as FlatMap64.
class FlatSet64 {
 public:
  FlatSet64() = default;
  explicit FlatSet64(std::size_t expectedSize) : map_(expectedSize) {}

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] bool empty() const noexcept { return map_.empty(); }
  bool insert(std::uint64_t key) { return map_.insert(key, Unit{}); }
  [[nodiscard]] bool contains(std::uint64_t key) const noexcept {
    return map_.contains(key);
  }
  bool erase(std::uint64_t key) { return map_.erase(key); }
  void clear() { map_.clear(); }
  void reserve(std::size_t expectedSize) { map_.reserve(expectedSize); }

  template <typename Fn>
  void forEach(Fn&& fn) const {
    map_.forEach([&fn](std::uint64_t key, Unit) { fn(key); });
  }

 private:
  struct Unit {};
  FlatMap64<Unit> map_;
};

}  // namespace sops::util

#endif  // SOPS_UTIL_FLAT_HASH_HPP
