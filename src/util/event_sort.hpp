#ifndef SOPS_UTIL_EVENT_SORT_HPP
#define SOPS_UTIL_EVENT_SORT_HPP

/// \file event_sort.hpp
/// Two-level bucket sort for Poisson epoch schedules.
///
/// The sharded runners sort each epoch's events by firing time, and that
/// sort was the single largest line item in the single-thread
/// Poissonization premium — a comparison sort pays O(n log n) branchy
/// compares, and an LSD radix over the full 64-bit time pays 4–5 complete
/// passes over an event array that outgrows L2 at production epoch sizes.
///
/// This sort exploits what the runners know about their keys: every
/// firing time lies in the epoch window [begin, end), and the times are a
/// superposition of Poisson processes, i.e. uniform over the window.  So
/// a counting pass + a scatter pass distribute the events into time
/// buckets, and a tiny comparison sort inside each leaf bucket finishes
/// the job.  The distribution runs in two levels: level 1 is capped at
/// 256 buckets so the scatter keeps at most 256 write streams open
/// (one-level scatter into ~n/8 buckets touches that many random cache
/// lines and stalls on L2/TLB misses — measured as bad as the radix it
/// replaced), and level 2 redistributes each level-1 bucket — now small
/// enough to be cache-resident — down to ~8-element leaves.
///
/// Exactness: the time→bucket maps are clamped floor((t−base)·inv)
/// compositions of monotone operations, so they are monotone in t *even
/// under floating-point rounding* — elements in different buckets are
/// correctly ordered no matter where the bucket boundaries actually
/// landed.  Within a leaf the elements are sorted by the caller's
/// `operator<` (the runners' (time, particle) lexicographic order), so
/// the result is the exact total order the sequential sweep contract
/// requires — ties broken by particle id, not by input position.
/// Determinism: the bucket layout is a pure function of (begin, end, n)
/// and the event times, all of which are thread-count-invariant.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace sops::util {

/// Reusable buffers for sortEventsInWindow — hoist across calls to avoid
/// reallocating the scatter buffer and bucket offsets every epoch.
template <typename T>
struct EventSortScratch {
  std::vector<T> buf;
  std::vector<std::uint32_t> offsets;
  std::vector<std::uint32_t> subOffsets;
};

/// Below this size one std::sort call beats the bucket passes.
inline constexpr std::size_t kEventSortCutoff = 1024;
/// Level-1 bucket cap: the scatter pass keeps at most this many write
/// streams open, so its stores stay within the cache/TLB sweet spot.
inline constexpr std::size_t kEventSortMaxStreams = 256;
/// Level-1 buckets at or below this size skip the second distribution
/// and go straight to a comparison sort (they are cache-resident).
inline constexpr std::size_t kEventSortLeafMax = 64;

namespace detail {

/// Second-level distribution of one cache-resident bucket: scatters
/// `src[0, m)` into `dst[0, m)` through ~m/8 sub-buckets of the bucket's
/// own time sub-window, then comparison-sorts each leaf in place.
/// `base`/`width` need not match the level-1 boundaries exactly — the
/// clamped monotone map stays correct for any base (times below it land
/// in leaf 0), and a degenerate width (0/inf/nan map results) collapses
/// everything into leaf 0, which is then just one std::sort.
template <typename T, typename TimeFn>
void sortEventLeafBucket(T* src, T* dst, std::size_t m, double base,
                         double width, TimeFn timeOf,
                         std::vector<std::uint32_t>& offsets) {
  const std::size_t leaves = m / 8;
  const double invWidth = static_cast<double>(leaves) / width;
  const auto leafOf = [&](const T& e) {
    const double x = (timeOf(e) - base) * invWidth;
    return x > 0.0 ? std::min(static_cast<std::size_t>(x), leaves - 1)
                   : std::size_t{0};
  };

  offsets.assign(leaves + 1, 0);
  for (std::size_t i = 0; i < m; ++i) {
    ++offsets[leafOf(src[i]) + 1];
  }
  std::uint32_t running = 0;
  for (std::size_t b = 1; b <= leaves; ++b) {
    running += offsets[b];
    offsets[b] = running;
  }
  for (std::size_t i = 0; i < m; ++i) {
    dst[offsets[leafOf(src[i])]++] = src[i];
  }
  // offsets[b] is now the *end* of leaf b.
  std::size_t start = 0;
  for (std::size_t b = 0; b < leaves; ++b) {
    const std::size_t stop = offsets[b];
    if (stop - start > 1) {
      std::sort(dst + static_cast<std::ptrdiff_t>(start),
                dst + static_cast<std::ptrdiff_t>(stop));
    }
    start = stop;
  }
}

}  // namespace detail

/// Sorts `v` ascending by `T::operator<`, given that `timeOf(e)` is the
/// most-significant component of that order and lies in [begin, end) for
/// every element.  See the file comment for why this beats a general
/// sort on epoch schedules.
template <typename T, typename TimeFn>
void sortEventsInWindow(std::vector<T>& v, EventSortScratch<T>& scratch,
                        double begin, double end, TimeFn timeOf) {
  const std::size_t n = v.size();
  if (n < kEventSortCutoff) {
    std::sort(v.begin(), v.end());
    return;
  }
  SOPS_DASSERT(begin < end);
  const std::size_t buckets = std::min(n / 8, kEventSortMaxStreams);
  const double invWidth = static_cast<double>(buckets) / (end - begin);
  const auto bucketOf = [&](const T& e) {
    SOPS_DASSERT(timeOf(e) >= begin && timeOf(e) < end);
    // The clamp absorbs rounding at the window's upper edge.
    return std::min(
        static_cast<std::size_t>((timeOf(e) - begin) * invWidth),
        buckets - 1);
  };

  scratch.offsets.assign(buckets + 1, 0);
  for (const T& e : v) {
    ++scratch.offsets[bucketOf(e) + 1];
  }
  std::uint32_t running = 0;
  for (std::size_t b = 1; b <= buckets; ++b) {
    running += scratch.offsets[b];
    scratch.offsets[b] = running;
  }
  scratch.buf.resize(n);
  for (const T& e : v) {
    scratch.buf[scratch.offsets[bucketOf(e)]++] = e;
  }
  // offsets[b] is now the *end* of bucket b (and the start of b + 1).
  // Finish each bucket from scratch.buf back into v, so the sorted
  // result lands in v without a final copy.
  const double width = (end - begin) / static_cast<double>(buckets);
  std::size_t start = 0;
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t stop = scratch.offsets[b];
    const std::size_t m = stop - start;
    if (m > kEventSortLeafMax) {
      detail::sortEventLeafBucket(
          scratch.buf.data() + start, v.data() + start, m,
          begin + static_cast<double>(b) * width, width, timeOf,
          scratch.subOffsets);
    } else if (m > 0) {
      std::sort(scratch.buf.begin() + static_cast<std::ptrdiff_t>(start),
                scratch.buf.begin() + static_cast<std::ptrdiff_t>(stop));
      std::copy(scratch.buf.begin() + static_cast<std::ptrdiff_t>(start),
                scratch.buf.begin() + static_cast<std::ptrdiff_t>(stop),
                v.begin() + static_cast<std::ptrdiff_t>(start));
    }
    start = stop;
  }
}

}  // namespace sops::util

#endif  // SOPS_UTIL_EVENT_SORT_HPP
