#ifndef SOPS_UTIL_MIX_HPP
#define SOPS_UTIL_MIX_HPP

/// \file mix.hpp
/// The 64-bit avalanche finalizer, dependency-free so low-level layers
/// (the RNG stream derivation, the flat hash tables) can share one
/// definition without pulling each other in.

#include <cstdint>

namespace sops::util {

/// Bit-mixing finalizer from splitmix64; avalanches all input bits, which
/// matters because packed lattice coordinates differ only in low bits.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace sops::util

#endif  // SOPS_UTIL_MIX_HPP
