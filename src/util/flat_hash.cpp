// Intentionally (almost) empty: FlatMap64/FlatSet64 are header-only
// templates.  This translation unit pins the module into the sops archive
// and provides a home for future non-template helpers.
#include "util/flat_hash.hpp"

namespace sops::util {

// Compile-time smoke checks for the bit mixer used by the hash containers.
static_assert(mix64(0) != 0, "mix64 must not fix zero");
static_assert(mix64(1) != mix64(2), "mix64 must separate small keys");

}  // namespace sops::util
