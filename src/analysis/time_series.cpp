#include "analysis/time_series.hpp"

#include "util/assert.hpp"

namespace sops::analysis {

std::optional<std::uint64_t> TimeSeries::firstTimeAtOrBelow(
    double threshold) const {
  for (const TimePoint& point : points_) {
    if (point.value <= threshold) return point.time;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> TimeSeries::firstTimeAtOrAbove(
    double threshold) const {
  for (const TimePoint& point : points_) {
    if (point.value >= threshold) return point.time;
  }
  return std::nullopt;
}

double TimeSeries::meanAfter(std::uint64_t from) const {
  double sum = 0.0;
  std::size_t count = 0;
  for (const TimePoint& point : points_) {
    if (point.time >= from) {
      sum += point.value;
      ++count;
    }
  }
  SOPS_REQUIRE(count > 0, "meanAfter: no points in range");
  return sum / static_cast<double>(count);
}

}  // namespace sops::analysis
