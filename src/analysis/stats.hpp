#ifndef SOPS_ANALYSIS_STATS_HPP
#define SOPS_ANALYSIS_STATS_HPP

/// \file stats.hpp
/// Summary statistics for experiment harnesses: mean, variance, quantiles,
/// a streaming accumulator (Welford) for long runs, and the two
/// goodness-of-fit tests backing the local-vs-chain differential harness
/// (tests/local_vs_chain_test.cpp): Pearson chi-square against a known
/// discrete distribution and the two-sample Kolmogorov–Smirnov test.

#include <cstdint>
#include <span>
#include <vector>

namespace sops::analysis {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Full-pass summary of a sample (copies and sorts for the median).
[[nodiscard]] Summary summarize(std::span<const double> samples);

/// q-quantile (0 ≤ q ≤ 1) with linear interpolation.
[[nodiscard]] double quantile(std::span<const double> samples, double q);

/// Streaming mean/variance accumulator (Welford's algorithm): numerically
/// stable over millions of observations.
class Accumulator {
 public:
  void add(double value) noexcept {
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    if (count_ == 1 || value < min_) min_ = value;
    if (count_ == 1 || value > max_) max_ = value;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Upper regularized incomplete gamma function Q(a, x) = Γ(a, x)/Γ(a) for
/// a > 0, x ≥ 0, computed by the standard series (x < a + 1) / continued
/// fraction (x ≥ a + 1) split.  Q(k/2, x/2) is the chi-square survival
/// function with k degrees of freedom.
[[nodiscard]] double regularizedGammaQ(double a, double x);

/// Chi-square survival function: P(X ≥ statistic) for X ~ χ²(dof).
[[nodiscard]] double chiSquareSurvival(double statistic, int dof);

struct ChiSquareResult {
  double statistic = 0.0;
  int dof = 0;
  double pValue = 1.0;
  /// Number of low-expectation cells merged into the pooled cell (0 when
  /// every cell met minExpected).
  std::size_t pooledCells = 0;
};

/// Pearson chi-square goodness-of-fit of observed category counts against
/// expected probabilities (renormalized internally).  Cells whose expected
/// count falls below `minExpected` are pooled into a single cell first
/// (Cochran's rule); dof = effective cells − 1.  Requires at least two
/// effective cells and a positive total count.
[[nodiscard]] ChiSquareResult chiSquareGoodnessOfFit(
    std::span<const double> observedCounts,
    std::span<const double> expectedProbabilities, double minExpected = 5.0);

struct KsResult {
  double statistic = 0.0;  ///< D = sup |F̂_a − F̂_b|
  double pValue = 1.0;     ///< asymptotic Kolmogorov distribution
};

/// Two-sample Kolmogorov–Smirnov test (asymptotic p-value with the
/// Stephens small-sample correction).  Both samples must be non-empty.
[[nodiscard]] KsResult ksTwoSample(std::span<const double> a,
                                   std::span<const double> b);

}  // namespace sops::analysis

#endif  // SOPS_ANALYSIS_STATS_HPP
