#ifndef SOPS_ANALYSIS_STATS_HPP
#define SOPS_ANALYSIS_STATS_HPP

/// \file stats.hpp
/// Summary statistics for experiment harnesses: mean, variance, quantiles,
/// and a streaming accumulator (Welford) for long runs.

#include <cstdint>
#include <span>
#include <vector>

namespace sops::analysis {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Full-pass summary of a sample (copies and sorts for the median).
[[nodiscard]] Summary summarize(std::span<const double> samples);

/// q-quantile (0 ≤ q ≤ 1) with linear interpolation.
[[nodiscard]] double quantile(std::span<const double> samples, double q);

/// Streaming mean/variance accumulator (Welford's algorithm): numerically
/// stable over millions of observations.
class Accumulator {
 public:
  void add(double value) noexcept {
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    if (count_ == 1 || value < min_) min_ = value;
    if (count_ == 1 || value > max_) max_ = value;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace sops::analysis

#endif  // SOPS_ANALYSIS_STATS_HPP
