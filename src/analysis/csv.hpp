#ifndef SOPS_ANALYSIS_CSV_HPP
#define SOPS_ANALYSIS_CSV_HPP

/// \file csv.hpp
/// Minimal CSV writer for experiment outputs (benches write plot-ready
/// files next to their stdout tables).

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace sops::analysis {

class CsvWriter {
 public:
  /// Opens (truncates) the file and writes the header row.
  CsvWriter(const std::string& path,
            std::initializer_list<std::string_view> header);

  /// Same, for headers assembled at runtime (the sim:: observer sinks
  /// derive columns from each scenario's declared metrics).
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void writeRow(std::initializer_list<std::string_view> cells);
  void writeRow(const std::vector<std::string>& cells);

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

 private:
  std::ofstream out_;
  std::size_t columns_;
};

/// Formats a double compactly for CSV/tables.
[[nodiscard]] std::string formatDouble(double value, int precision = 6);

}  // namespace sops::analysis

#endif  // SOPS_ANALYSIS_CSV_HPP
