#include "analysis/convergence.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace sops::analysis {

std::vector<double> autocorrelation(std::span<const double> series,
                                    std::size_t maxLag) {
  SOPS_REQUIRE(series.size() >= 2, "autocorrelation: need >= 2 samples");
  SOPS_REQUIRE(maxLag < series.size(), "autocorrelation: maxLag too large");
  const std::size_t n = series.size();
  double mean = 0.0;
  for (const double x : series) mean += x;
  mean /= static_cast<double>(n);

  double variance = 0.0;
  for (const double x : series) variance += (x - mean) * (x - mean);
  variance /= static_cast<double>(n);

  std::vector<double> rho(maxLag + 1, 0.0);
  // Robust constant-series detection: rounding in the mean can leave a
  // variance of order ε² for an exactly-constant input.
  if (variance <= 1e-20 * (1.0 + mean * mean)) {
    rho[0] = 1.0;  // constant series: define ρ(0)=1, rest 0
    return rho;
  }
  for (std::size_t lag = 0; lag <= maxLag; ++lag) {
    double sum = 0.0;
    for (std::size_t i = 0; i + lag < n; ++i) {
      sum += (series[i] - mean) * (series[i + lag] - mean);
    }
    rho[lag] = sum / (static_cast<double>(n) * variance);
  }
  return rho;
}

double integratedAutocorrelationTime(std::span<const double> series,
                                     std::size_t maxLag) {
  if (maxLag == 0) maxLag = std::min<std::size_t>(series.size() / 4, 2048);
  const std::vector<double> rho = autocorrelation(series, maxLag);
  // Geyer initial positive sequence: sum pairs ρ(2k-1)+ρ(2k) while positive.
  double tau = 1.0;
  for (std::size_t k = 1; k + 1 <= maxLag; k += 2) {
    const double pairSum = rho[k] + rho[k + 1];
    if (pairSum <= 0.0) break;
    tau += 2.0 * pairSum;
  }
  return tau;
}

double effectiveSampleSize(std::span<const double> series) {
  return static_cast<double>(series.size()) /
         integratedAutocorrelationTime(series);
}

double gewekeZScore(std::span<const double> series, double earlyFraction,
                    double lateFraction) {
  SOPS_REQUIRE(earlyFraction > 0.0 && lateFraction > 0.0 &&
                   earlyFraction + lateFraction <= 1.0,
               "gewekeZScore: bad fractions");
  const std::size_t n = series.size();
  SOPS_REQUIRE(n >= 20, "gewekeZScore: need >= 20 samples");
  const auto earlyCount = static_cast<std::size_t>(earlyFraction * n);
  const auto lateCount = static_cast<std::size_t>(lateFraction * n);
  const std::span<const double> early = series.subspan(0, earlyCount);
  const std::span<const double> late = series.subspan(n - lateCount);

  const auto meanVar = [](std::span<const double> part) {
    double mean = 0.0;
    for (const double x : part) mean += x;
    mean /= static_cast<double>(part.size());
    double variance = 0.0;
    for (const double x : part) variance += (x - mean) * (x - mean);
    variance /= static_cast<double>(part.size());
    return std::pair<double, double>{mean, variance};
  };
  const auto [earlyMean, earlyVar] = meanVar(early);
  const auto [lateMean, lateVar] = meanVar(late);
  const double tauEarly = integratedAutocorrelationTime(early);
  const double tauLate = integratedAutocorrelationTime(late);
  const double se =
      std::sqrt(earlyVar * tauEarly / static_cast<double>(early.size()) +
                lateVar * tauLate / static_cast<double>(late.size()));
  if (se == 0.0) return 0.0;
  return (earlyMean - lateMean) / se;
}

}  // namespace sops::analysis
