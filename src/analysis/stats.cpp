#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace sops::analysis {

double quantile(std::span<const double> samples, double q) {
  SOPS_REQUIRE(!samples.empty(), "quantile of empty sample");
  SOPS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile: q in [0,1]");
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  const double fraction = position - static_cast<double>(lower);
  if (lower + 1 >= sorted.size()) return sorted.back();
  return sorted[lower] * (1.0 - fraction) + sorted[lower + 1] * fraction;
}

Summary summarize(std::span<const double> samples) {
  SOPS_REQUIRE(!samples.empty(), "summarize of empty sample");
  Summary s;
  s.count = samples.size();
  Accumulator acc;
  for (const double v : samples) acc.add(v);
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.median = quantile(samples, 0.5);
  return s;
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace sops::analysis
