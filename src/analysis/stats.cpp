#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace sops::analysis {

double quantile(std::span<const double> samples, double q) {
  SOPS_REQUIRE(!samples.empty(), "quantile of empty sample");
  SOPS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile: q in [0,1]");
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  const double fraction = position - static_cast<double>(lower);
  if (lower + 1 >= sorted.size()) return sorted.back();
  return sorted[lower] * (1.0 - fraction) + sorted[lower + 1] * fraction;
}

Summary summarize(std::span<const double> samples) {
  SOPS_REQUIRE(!samples.empty(), "summarize of empty sample");
  Summary s;
  s.count = samples.size();
  Accumulator acc;
  for (const double v : samples) acc.add(v);
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.median = quantile(samples, 0.5);
  return s;
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

namespace {

/// Series representation of the *lower* regularized incomplete gamma
/// P(a, x); converges fast for x < a + 1.
double gammaPSeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Modified Lentz continued fraction for Q(a, x); converges for x ≥ a + 1.
double gammaQContinuedFraction(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double regularizedGammaQ(double a, double x) {
  SOPS_REQUIRE(a > 0.0, "regularizedGammaQ: a must be positive");
  SOPS_REQUIRE(x >= 0.0, "regularizedGammaQ: x must be non-negative");
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gammaPSeries(a, x);
  return gammaQContinuedFraction(a, x);
}

double chiSquareSurvival(double statistic, int dof) {
  SOPS_REQUIRE(dof > 0, "chiSquareSurvival: dof must be positive");
  SOPS_REQUIRE(statistic >= 0.0, "chiSquareSurvival: statistic >= 0");
  return regularizedGammaQ(0.5 * static_cast<double>(dof), 0.5 * statistic);
}

ChiSquareResult chiSquareGoodnessOfFit(
    std::span<const double> observedCounts,
    std::span<const double> expectedProbabilities, double minExpected) {
  SOPS_REQUIRE(observedCounts.size() == expectedProbabilities.size(),
               "chiSquare: one expected probability per observed cell");
  SOPS_REQUIRE(observedCounts.size() >= 2, "chiSquare: need >= 2 cells");
  double total = 0.0;
  double probabilityMass = 0.0;
  for (std::size_t i = 0; i < observedCounts.size(); ++i) {
    SOPS_REQUIRE(observedCounts[i] >= 0.0, "chiSquare: negative count");
    SOPS_REQUIRE(expectedProbabilities[i] >= 0.0,
                 "chiSquare: negative probability");
    total += observedCounts[i];
    probabilityMass += expectedProbabilities[i];
  }
  SOPS_REQUIRE(total > 0.0, "chiSquare: empty sample");
  SOPS_REQUIRE(probabilityMass > 0.0, "chiSquare: zero probability mass");

  ChiSquareResult result;
  // Cells below the minimum expected count are merged into one pooled
  // cell so the χ² approximation stays valid in distribution tails.
  double pooledObserved = 0.0;
  double pooledExpected = 0.0;
  int effectiveCells = 0;
  for (std::size_t i = 0; i < observedCounts.size(); ++i) {
    const double expected =
        total * expectedProbabilities[i] / probabilityMass;
    if (expected < minExpected || expected == 0.0) {
      pooledObserved += observedCounts[i];
      pooledExpected += expected;
      ++result.pooledCells;
      continue;
    }
    const double diff = observedCounts[i] - expected;
    result.statistic += diff * diff / expected;
    ++effectiveCells;
  }
  // Observations in cells the hypothesis declares impossible (zero
  // expected mass, alone or pooled) are a categorical rejection — the
  // statistic is unbounded there, not ignorable.
  if (pooledExpected == 0.0 && pooledObserved > 0.0) {
    result.statistic = std::numeric_limits<double>::infinity();
    result.dof = std::max(effectiveCells - 1, 1);
    result.pValue = 0.0;
    return result;
  }
  if (pooledExpected > 0.0) {
    const double diff = pooledObserved - pooledExpected;
    result.statistic += diff * diff / pooledExpected;
    ++effectiveCells;
  }
  SOPS_REQUIRE(effectiveCells >= 2,
               "chiSquare: fewer than 2 effective cells after pooling");
  result.dof = effectiveCells - 1;
  result.pValue = chiSquareSurvival(result.statistic, result.dof);
  return result;
}

KsResult ksTwoSample(std::span<const double> a, std::span<const double> b) {
  SOPS_REQUIRE(!a.empty() && !b.empty(), "ksTwoSample: empty sample");
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  KsResult result;
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < sa.size() && ib < sb.size()) {
    const double value = std::min(sa[ia], sb[ib]);
    while (ia < sa.size() && sa[ia] <= value) ++ia;
    while (ib < sb.size() && sb[ib] <= value) ++ib;
    const double gap =
        std::abs(static_cast<double>(ia) / na - static_cast<double>(ib) / nb);
    if (gap > result.statistic) result.statistic = gap;
  }

  // Asymptotic Kolmogorov survival Q(λ) = 2 Σ (−1)^{k−1} e^{−2k²λ²} with
  // the Stephens effective-size correction.  As λ → 0 the alternating
  // series stops converging (every term → 1) while the true survival → 1,
  // so a truncated partial sum must not be trusted: if the terms have not
  // decayed within the budget, the distributions are statistically
  // indistinguishable and the p-value is 1.
  const double ne = na * nb / (na + nb);
  const double lambda =
      (std::sqrt(ne) + 0.12 + 0.11 / std::sqrt(ne)) * result.statistic;
  double sum = 0.0;
  double sign = 1.0;
  bool converged = false;
  for (int k = 1; k <= 100; ++k) {
    const double term =
        std::exp(-2.0 * static_cast<double>(k) * static_cast<double>(k) *
                 lambda * lambda);
    sum += sign * term;
    if (term < 1e-12) {
      converged = true;
      break;
    }
    sign = -sign;
  }
  result.pValue = converged ? std::clamp(2.0 * sum, 0.0, 1.0) : 1.0;
  return result;
}

}  // namespace sops::analysis
