#ifndef SOPS_ANALYSIS_CONVERGENCE_HPP
#define SOPS_ANALYSIS_CONVERGENCE_HPP

/// \file convergence.hpp
/// MCMC convergence diagnostics for chain observables (the perimeter trace,
/// edge counts, …): autocorrelation, integrated autocorrelation time,
/// effective sample size, and a Geweke-style equal-means z-score.  Used by
/// the experiment harnesses to justify "quasi-stationary" averages (§3.7
/// discusses why rigorous mixing bounds are open; these are the standard
/// empirical stand-ins).

#include <cstddef>
#include <span>
#include <vector>

namespace sops::analysis {

/// Sample autocorrelation ρ̂(lag) for lag = 0..maxLag (ρ̂(0) = 1).
[[nodiscard]] std::vector<double> autocorrelation(
    std::span<const double> series, std::size_t maxLag);

/// Integrated autocorrelation time τ = 1 + 2·Σρ̂(k), summed with Geyer's
/// initial-positive-sequence truncation (stops at the first non-positive
/// pair sum).  τ ≈ 1 for i.i.d. samples.
[[nodiscard]] double integratedAutocorrelationTime(
    std::span<const double> series, std::size_t maxLag = 0);

/// Effective sample size n/τ.
[[nodiscard]] double effectiveSampleSize(std::span<const double> series);

/// Geweke-style diagnostic: z-score comparing the mean of the first
/// `earlyFraction` of the series against the last `lateFraction`, using
/// τ-corrected standard errors.  |z| ≲ 2 is consistent with stationarity.
[[nodiscard]] double gewekeZScore(std::span<const double> series,
                                  double earlyFraction = 0.1,
                                  double lateFraction = 0.5);

}  // namespace sops::analysis

#endif  // SOPS_ANALYSIS_CONVERGENCE_HPP
