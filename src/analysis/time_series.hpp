#ifndef SOPS_ANALYSIS_TIME_SERIES_HPP
#define SOPS_ANALYSIS_TIME_SERIES_HPP

/// \file time_series.hpp
/// (iteration, value) traces recorded during chain runs, plus hitting-time
/// detection used by the scaling experiment (E7: iterations until
/// α-compression).

#include <cstdint>
#include <optional>
#include <vector>

namespace sops::analysis {

struct TimePoint {
  std::uint64_t time = 0;
  double value = 0.0;
};

class TimeSeries {
 public:
  void record(std::uint64_t time, double value) {
    points_.push_back({time, value});
  }

  [[nodiscard]] const std::vector<TimePoint>& points() const noexcept {
    return points_;
  }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }

  /// First recorded time at which value ≤ threshold, if any.
  [[nodiscard]] std::optional<std::uint64_t> firstTimeAtOrBelow(
      double threshold) const;

  /// First recorded time at which value ≥ threshold, if any.
  [[nodiscard]] std::optional<std::uint64_t> firstTimeAtOrAbove(
      double threshold) const;

  /// Mean of the values recorded at time ≥ from (quasi-stationary mean).
  [[nodiscard]] double meanAfter(std::uint64_t from) const;

 private:
  std::vector<TimePoint> points_;
};

}  // namespace sops::analysis

#endif  // SOPS_ANALYSIS_TIME_SERIES_HPP
