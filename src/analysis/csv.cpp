#include "analysis/csv.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace sops::analysis {

CsvWriter::CsvWriter(const std::string& path,
                     std::initializer_list<std::string_view> header)
    : out_(path), columns_(header.size()) {
  SOPS_REQUIRE(columns_ > 0, "CSV needs at least one column");
  bool first = true;
  for (const std::string_view cell : header) {
    if (!first) out_ << ',';
    out_ << cell;
    first = false;
  }
  out_ << '\n';
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  SOPS_REQUIRE(columns_ > 0, "CSV needs at least one column");
  bool first = true;
  for (const std::string& cell : header) {
    if (!first) out_ << ',';
    out_ << cell;
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::writeRow(std::initializer_list<std::string_view> cells) {
  SOPS_REQUIRE(cells.size() == columns_, "CSV row width mismatch");
  bool first = true;
  for (const std::string_view cell : cells) {
    if (!first) out_ << ',';
    out_ << cell;
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::writeRow(const std::vector<std::string>& cells) {
  SOPS_REQUIRE(cells.size() == columns_, "CSV row width mismatch");
  bool first = true;
  for (const std::string& cell : cells) {
    if (!first) out_ << ',';
    out_ << cell;
    first = false;
  }
  out_ << '\n';
}

std::string formatDouble(double value, int precision) {
  std::ostringstream out;
  out.precision(precision);
  out << value;
  return out.str();
}

}  // namespace sops::analysis
