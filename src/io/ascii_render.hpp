#ifndef SOPS_IO_ASCII_RENDER_HPP
#define SOPS_IO_ASCII_RENDER_HPP

/// \file ascii_render.hpp
/// Terminal rendering of configurations on G∆, used by the benches to print
/// Fig 2 / Fig 10-style snapshots.  Each lattice row is offset by half a
/// cell per +y step, matching the cartesian embedding.

#include <string>

#include "system/particle_system.hpp"

namespace sops::io {

struct AsciiOptions {
  char particle = 'o';
  char empty = '.';
  /// Draw the empty lattice positions inside the bounding box.
  bool showLattice = false;
};

/// Multi-line ASCII rendering (top row = max y).
[[nodiscard]] std::string renderAscii(const system::ParticleSystem& sys,
                                      const AsciiOptions& options = {});

}  // namespace sops::io

#endif  // SOPS_IO_ASCII_RENDER_HPP
