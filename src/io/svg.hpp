#ifndef SOPS_IO_SVG_HPP
#define SOPS_IO_SVG_HPP

/// \file svg.hpp
/// SVG rendering of configurations (particles as circles, induced edges as
/// segments), in the style of the paper's figures.  Examples write these
/// next to their stdout output.

#include <string>

#include "system/particle_system.hpp"

namespace sops::io {

struct SvgOptions {
  double scale = 24.0;        ///< pixels per lattice unit
  double particleRadius = 7.0;
  bool drawEdges = true;
  std::string particleFill = "#222222";
  std::string edgeStroke = "#999999";
};

/// Returns a complete SVG document for the configuration.
[[nodiscard]] std::string renderSvg(const system::ParticleSystem& sys,
                                    const SvgOptions& options = {});

/// Renders and writes to a file; returns false on IO failure.
bool writeSvg(const system::ParticleSystem& sys, const std::string& path,
              const SvgOptions& options = {});

}  // namespace sops::io

#endif  // SOPS_IO_SVG_HPP
