#include "io/ascii_render.hpp"

#include <algorithm>

#include "system/metrics.hpp"

namespace sops::io {

std::string renderAscii(const system::ParticleSystem& sys,
                        const AsciiOptions& options) {
  SOPS_REQUIRE(!sys.empty(), "renderAscii of empty system");
  const system::BoundingBox box = system::boundingBox(sys);

  // Column of (x, y) in half-cell units: 2x + y, normalized to the minimum
  // over the box (the smallest column in row y is at x = minX).
  const std::int64_t colMin = 2 * static_cast<std::int64_t>(box.minX) +
      box.minY;
  const std::int64_t colMax = 2 * static_cast<std::int64_t>(box.maxX) +
      box.maxY;
  const auto width = static_cast<std::size_t>(colMax - colMin + 1);

  std::string out;
  for (std::int32_t y = box.maxY; y >= box.minY; --y) {
    std::string row(width, ' ');
    for (std::int32_t x = box.minX; x <= box.maxX; ++x) {
      const auto col = static_cast<std::size_t>(
          2 * static_cast<std::int64_t>(x) + y - colMin);
      if (sys.occupied({x, y})) {
        row[col] = options.particle;
      } else if (options.showLattice) {
        row[col] = options.empty;
      }
    }
    // Trim trailing spaces for compact output.
    const std::size_t end = row.find_last_not_of(' ');
    out.append(row, 0, end == std::string::npos ? 0 : end + 1);
    out.push_back('\n');
  }
  return out;
}

}  // namespace sops::io
