#include "io/svg.hpp"

#include <fstream>
#include <sstream>

#include "lattice/direction.hpp"
#include "system/metrics.hpp"

namespace sops::io {

namespace {
using lattice::Direction;
using lattice::TriPoint;

struct Frame {
  double minX, minY, maxX, maxY;
};

Frame cartesianFrame(const system::ParticleSystem& sys) {
  Frame f{1e300, 1e300, -1e300, -1e300};
  for (const TriPoint p : sys.positions()) {
    const lattice::Cartesian c = lattice::toCartesian(p);
    f.minX = std::min(f.minX, c.x);
    f.minY = std::min(f.minY, c.y);
    f.maxX = std::max(f.maxX, c.x);
    f.maxY = std::max(f.maxY, c.y);
  }
  return f;
}
}  // namespace

std::string renderSvg(const system::ParticleSystem& sys,
                      const SvgOptions& options) {
  SOPS_REQUIRE(!sys.empty(), "renderSvg of empty system");
  const Frame frame = cartesianFrame(sys);
  const double margin = 1.0;
  const double scale = options.scale;
  const double width = (frame.maxX - frame.minX + 2 * margin) * scale;
  const double height = (frame.maxY - frame.minY + 2 * margin) * scale;

  // SVG's y axis points down; flip so the lattice's +y renders upward.
  const auto mapX = [&](double x) { return (x - frame.minX + margin) * scale; };
  const auto mapY = [&](double y) {
    return height - (y - frame.minY + margin) * scale;
  };

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
      << "\" height=\"" << height << "\">\n";

  if (options.drawEdges) {
    // Each undirected edge once, via the three "positive" directions.
    constexpr Direction kPositive[3] = {Direction::East, Direction::NorthEast,
                                        Direction::SouthEast};
    for (const TriPoint p : sys.positions()) {
      const lattice::Cartesian a = lattice::toCartesian(p);
      for (const Direction d : kPositive) {
        const TriPoint q = lattice::neighbor(p, d);
        if (!sys.occupied(q)) continue;
        const lattice::Cartesian b = lattice::toCartesian(q);
        svg << "  <line x1=\"" << mapX(a.x) << "\" y1=\"" << mapY(a.y)
            << "\" x2=\"" << mapX(b.x) << "\" y2=\"" << mapY(b.y)
            << "\" stroke=\"" << options.edgeStroke
            << "\" stroke-width=\"2\"/>\n";
      }
    }
  }
  for (const TriPoint p : sys.positions()) {
    const lattice::Cartesian c = lattice::toCartesian(p);
    svg << "  <circle cx=\"" << mapX(c.x) << "\" cy=\"" << mapY(c.y)
        << "\" r=\"" << options.particleRadius << "\" fill=\""
        << options.particleFill << "\"/>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

bool writeSvg(const system::ParticleSystem& sys, const std::string& path,
              const SvgOptions& options) {
  std::ofstream out(path);
  if (!out) return false;
  out << renderSvg(sys, options);
  return static_cast<bool>(out);
}

}  // namespace sops::io
