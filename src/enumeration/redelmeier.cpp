#include "enumeration/redelmeier.hpp"

#include "lattice/direction.hpp"
#include "util/assert.hpp"
#include "util/flat_hash.hpp"

namespace sops::enumeration {

namespace {

using lattice::Direction;
using lattice::kAllDirections;
using lattice::neighbor;
using lattice::pack;

/// Growth is restricted to the half-plane that makes the origin the
/// lexicographically (y, x)-smallest cell of every generated animal.
constexpr bool inHalfPlane(TriPoint p) noexcept {
  return p.y > 0 || (p.y == 0 && p.x >= 0);
}

class Enumerator {
 public:
  Enumerator(int n, const std::function<void(std::span<const TriPoint>)>* visit)
      : n_(n), visit_(visit), counts_(static_cast<std::size_t>(n), 0) {
    occupied_.reserve(64);
    reached_.reserve(256);
  }

  std::vector<std::uint64_t> run() {
    const TriPoint origin{0, 0};
    reached_.insert(pack(origin));
    std::vector<TriPoint> untried{origin};
    extend(untried);
    return counts_;
  }

 private:
  /// One recursion level of Redelmeier's algorithm.  `untried` is owned by
  /// this level; cells it pops stay marked in `reached_` so that sibling
  /// branches never regenerate the same animal.  Marks are released by the
  /// level that created them (the caller, via `added` bookkeeping).
  void extend(std::vector<TriPoint>& untried) {
    while (!untried.empty()) {
      const TriPoint cell = untried.back();
      untried.pop_back();

      cells_.push_back(cell);
      occupied_.insert(pack(cell));
      ++counts_[cells_.size() - 1];
      if (visit_ != nullptr && static_cast<int>(cells_.size()) == n_) {
        (*visit_)(cells_);
      }

      if (static_cast<int>(cells_.size()) < n_) {
        std::vector<TriPoint> next = untried;
        std::vector<TriPoint> added;
        for (const Direction d : kAllDirections) {
          const TriPoint q = neighbor(cell, d);
          if (!inHalfPlane(q)) continue;
          if (reached_.contains(pack(q))) continue;
          reached_.insert(pack(q));
          next.push_back(q);
          added.push_back(q);
        }
        extend(next);
        for (const TriPoint q : added) reached_.erase(pack(q));
      }

      occupied_.erase(pack(cell));
      cells_.pop_back();
      // `cell` stays in reached_: its subtree enumerated every animal that
      // contains it, so siblings must avoid it.
    }
  }

  int n_;
  const std::function<void(std::span<const TriPoint>)>* visit_;
  std::vector<std::uint64_t> counts_;
  std::vector<TriPoint> cells_;
  util::FlatSet64 occupied_;
  util::FlatSet64 reached_;
};

}  // namespace

std::vector<std::uint64_t> redelmeierCounts(int n) {
  SOPS_REQUIRE(n >= 1 && n <= 16, "redelmeierCounts: n in [1,16]");
  Enumerator enumerator(n, nullptr);
  return enumerator.run();
}

void redelmeierEnumerate(
    int n, const std::function<void(std::span<const TriPoint>)>& visit) {
  SOPS_REQUIRE(n >= 1 && n <= 16, "redelmeierEnumerate: n in [1,16]");
  Enumerator enumerator(n, &visit);
  (void)enumerator.run();
}

std::vector<std::vector<TriPoint>> staircasePaths(int n) {
  SOPS_REQUIRE(n >= 1 && n <= 24, "staircasePaths: n in [1,24]");
  std::vector<std::vector<TriPoint>> paths;
  paths.reserve(std::size_t{1} << (n - 1));
  std::vector<TriPoint> current{TriPoint{0, 0}};
  const std::function<void()> build = [&] {
    if (static_cast<int>(current.size()) == n) {
      paths.push_back(current);
      return;
    }
    for (const Direction step : {Direction::East, Direction::NorthEast}) {
      current.push_back(neighbor(current.back(), step));
      build();
      current.pop_back();
    }
  };
  build();
  return paths;
}

}  // namespace sops::enumeration
