#ifndef SOPS_ENUMERATION_CHAIN_MATRIX_HPP
#define SOPS_ENUMERATION_CHAIN_MATRIX_HPP

/// \file chain_matrix.hpp
/// The exact transition matrix of the paper's Markov chain M over all
/// connected configurations of n particles (up to translation), built from
/// the very same move kernel the simulator executes
/// (core::evaluateMove / core::acceptanceProbability).
///
/// This makes the paper's structural lemmas checkable exactly for tiny n:
///  * rows are stochastic;
///  * Ω* (hole-free states) is closed (Lemma 3.2) and strongly connected
///    (Lemma 3.10), with reversible transitions (Lemma 3.9);
///  * holed states are transient and reach Ω* (Lemma 3.8);
///  * detailed balance holds with weights λ^{e(σ)} and the stationary
///    distribution is λ^{e(σ)}/Z (Lemma 3.13).

#include <string>
#include <unordered_map>
#include <vector>

#include "core/compression_chain.hpp"
#include "enumeration/config_enum.hpp"
#include "markov/transition_matrix.hpp"

namespace sops::enumeration {

struct ChainModel {
  std::vector<EnumeratedConfig> states;  ///< all connected configs of size n
  std::vector<char> holeFree;            ///< indicator of Ω* membership
  markov::TransitionMatrix matrix;       ///< exact one-step kernel of M
  std::unordered_map<std::string, std::size_t> indexOfKey;

  [[nodiscard]] std::size_t stateCount() const noexcept {
    return states.size();
  }

  /// λ^{e(σ)} weights aligned with states (zero outside Ω* callers decide).
  [[nodiscard]] std::vector<double> edgeWeights(double lambda) const;
};

/// Builds the exact model for n particles under the given chain options.
/// Intended for n ≤ 6 (the matrix is dense: states² doubles).
[[nodiscard]] ChainModel buildChainModel(int n,
                                         const core::ChainOptions& options);

}  // namespace sops::enumeration

#endif  // SOPS_ENUMERATION_CHAIN_MATRIX_HPP
