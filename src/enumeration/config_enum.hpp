#ifndef SOPS_ENUMERATION_CONFIG_ENUM_HPP
#define SOPS_ENUMERATION_CONFIG_ENUM_HPP

/// \file config_enum.hpp
/// Exact enumeration of connected particle configurations up to translation
/// (the paper's state space Ω and its hole-free restriction Ω*, §3.5).
///
/// By the hex-lattice duality (Fig 9a), connected configurations correspond
/// to fixed polyhexes, and hole-free configurations to benzenoids — the
/// objects Jensen enumerated to h = 50 for the paper's Lemma 5.5.  Laptop
/// budgets reach n ≈ 10 here, which suffices for every exact experiment
/// (E4, E5, E15 in DESIGN.md).

#include <cstdint>
#include <vector>

#include "lattice/tri_point.hpp"

namespace sops::enumeration {

using lattice::TriPoint;

struct EnumeratedConfig {
  /// Canonical (translation-normalized, sorted) point list.
  std::vector<TriPoint> points;
  std::int64_t edges = 0;
  std::int64_t triangles = 0;
  std::int64_t perimeter = 0;
  int holes = 0;
  [[nodiscard]] bool holeFree() const noexcept { return holes == 0; }
};

/// All connected configurations of n particles up to translation, with
/// metrics.  Deterministic order (sorted by canonical key).
[[nodiscard]] std::vector<EnumeratedConfig> enumerateConnected(int n);

/// Count-only variants (avoid storing configs for larger n).
struct ConfigCounts {
  std::uint64_t all = 0;       ///< connected configurations
  std::uint64_t holeFree = 0;  ///< connected configurations with no holes
};
[[nodiscard]] ConfigCounts countConnected(int n);

/// Independent brute-force enumeration for cross-validation (tests only):
/// enumerates subsets of the n×n canonical window directly.  Exponential;
/// intended for n ≤ 6.
[[nodiscard]] ConfigCounts countConnectedBruteForce(int n);

/// The paper's Lemma 5.5 constant: the number of benzenoids with 50 cells
/// (Jensen 2009), as a decimal string, and the derived expansion threshold
/// (2·N50)^{1/100} ≈ 2.17 used in Theorem 5.7.
[[nodiscard]] const char* jensenN50Decimal() noexcept;
[[nodiscard]] double expansionThresholdFromN50() noexcept;

}  // namespace sops::enumeration

#endif  // SOPS_ENUMERATION_CONFIG_ENUM_HPP
