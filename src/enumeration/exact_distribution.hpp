#ifndef SOPS_ENUMERATION_EXACT_DISTRIBUTION_HPP
#define SOPS_ENUMERATION_EXACT_DISTRIBUTION_HPP

/// \file exact_distribution.hpp
/// The exact stationary distribution π(σ) = λ^{e(σ)}/Z over Ω* for small n
/// (Lemma 3.13 / Corollary 3.14), computed by full enumeration.
///
/// This powers experiments E5/E6: exact compression probabilities
/// P_π(p ≥ α·p_min) and expansion probabilities P_π(p ≤ β·p_max) as
/// functions of λ, against which chain samples are validated.

#include <cstdint>
#include <map>
#include <vector>

#include "enumeration/config_enum.hpp"

namespace sops::enumeration {

class ExactEnsemble {
 public:
  /// Builds the ensemble of hole-free connected configurations of n
  /// particles (the support Ω* of π).
  explicit ExactEnsemble(int n);

  [[nodiscard]] int particles() const noexcept { return n_; }
  [[nodiscard]] const std::vector<EnumeratedConfig>& configs() const noexcept {
    return configs_;
  }

  /// Partition function Z(λ) = Σ_{σ∈Ω*} λ^{e(σ)}.
  [[nodiscard]] double partitionFunction(double lambda) const;

  /// Stationary probabilities aligned with configs().
  [[nodiscard]] std::vector<double> stationary(double lambda) const;

  /// P_π(p(σ) ≥ threshold): non-compression probability (Theorem 4.5 uses
  /// threshold = α·p_min).
  [[nodiscard]] double probPerimeterAtLeast(double lambda,
                                            double threshold) const;

  /// P_π(p(σ) ≤ threshold): non-expansion probability (Theorem 5.7 uses
  /// threshold = β·p_max).
  [[nodiscard]] double probPerimeterAtMost(double lambda,
                                           double threshold) const;

  [[nodiscard]] double expectedPerimeter(double lambda) const;
  [[nodiscard]] double expectedEdges(double lambda) const;

  /// Exact perimeter histogram under π.
  [[nodiscard]] std::map<std::int64_t, double> perimeterDistribution(
      double lambda) const;

  /// Number of configurations with each perimeter (c_k of §4.1).
  [[nodiscard]] std::map<std::int64_t, std::uint64_t> perimeterCounts() const;

  [[nodiscard]] std::int64_t minPerimeter() const noexcept {
    return minPerimeter_;
  }
  [[nodiscard]] std::int64_t maxPerimeter() const noexcept {
    return maxPerimeter_;
  }

 private:
  int n_;
  std::vector<EnumeratedConfig> configs_;
  std::int64_t minPerimeter_ = 0;
  std::int64_t maxPerimeter_ = 0;
};

}  // namespace sops::enumeration

#endif  // SOPS_ENUMERATION_EXACT_DISTRIBUTION_HPP
