#include "enumeration/chain_matrix.hpp"

#include <cmath>

#include "lattice/direction.hpp"
#include "system/canonical.hpp"
#include "system/particle_system.hpp"

namespace sops::enumeration {

std::vector<double> ChainModel::edgeWeights(double lambda) const {
  std::vector<double> weights;
  weights.reserve(states.size());
  for (const EnumeratedConfig& state : states) {
    weights.push_back(std::pow(lambda, static_cast<double>(state.edges)));
  }
  return weights;
}

ChainModel buildChainModel(int n, const core::ChainOptions& options) {
  SOPS_REQUIRE(n >= 1, "buildChainModel: n >= 1");
  std::vector<EnumeratedConfig> states = enumerateConnected(n);

  std::unordered_map<std::string, std::size_t> indexOfKey;
  indexOfKey.reserve(states.size() * 2);
  for (std::size_t i = 0; i < states.size(); ++i) {
    indexOfKey.emplace(system::canonicalKeyFromPoints(states[i].points), i);
  }

  ChainModel model{std::move(states),
                   {},
                   markov::TransitionMatrix(indexOfKey.size()),
                   std::move(indexOfKey)};
  model.holeFree.reserve(model.states.size());
  for (const EnumeratedConfig& state : model.states) {
    model.holeFree.push_back(state.holeFree() ? 1 : 0);
  }

  const double proposalProbability = 1.0 / (6.0 * static_cast<double>(n));
  std::vector<lattice::TriPoint> scratch;
  for (std::size_t from = 0; from < model.states.size(); ++from) {
    const system::ParticleSystem sys(model.states[from].points);
    double stay = 1.0;
    for (std::size_t particle = 0; particle < sys.size(); ++particle) {
      for (const lattice::Direction d : lattice::kAllDirections) {
        const core::MoveEvaluation eval =
            core::evaluateMove(sys, sys.position(particle), d);
        const double accept = core::acceptanceProbability(eval, options);
        if (accept <= 0.0) continue;
        scratch = sys.positions();
        scratch[particle] = lattice::neighbor(sys.position(particle), d);
        const auto it =
            model.indexOfKey.find(system::canonicalKeyFromPoints(scratch));
        SOPS_REQUIRE(it != model.indexOfKey.end(),
                     "valid move left the enumerated state space");
        model.matrix.add(from, it->second, accept * proposalProbability);
        stay -= accept * proposalProbability;
      }
    }
    SOPS_REQUIRE(stay > -1e-12, "negative self-loop probability");
    model.matrix.add(from, from, stay < 0.0 ? 0.0 : stay);
  }
  return model;
}

}  // namespace sops::enumeration
