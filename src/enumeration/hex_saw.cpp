#include "enumeration/hex_saw.hpp"

#include <cmath>

#include "lattice/tri_point.hpp"
#include "util/assert.hpp"
#include "util/flat_hash.hpp"

namespace sops::enumeration {

namespace {

using lattice::TriPoint;

/// Vertices of the hexagonal lattice = faces of G∆: an "up" face
/// {v, v+E, v+NE} or a "down" face {v, v+E, v+SE}, keyed by (v, type).
struct HexVertex {
  TriPoint base;
  bool up;
};

std::uint64_t key(HexVertex v) {
  return lattice::pack(TriPoint{2 * v.base.x + (v.up ? 1 : 0), v.base.y});
}

/// The three neighbors of a hexagonal-lattice vertex.  An up face at v is
/// edge-adjacent to the down faces at v, v+(0,1), and v+(-1,1); a down face
/// at v to the up faces at v, v+(0,-1), and v+(1,-1).
void neighborsOf(HexVertex v, HexVertex out[3]) {
  if (v.up) {
    out[0] = {v.base, false};
    out[1] = {{v.base.x, v.base.y + 1}, false};
    out[2] = {{v.base.x - 1, v.base.y + 1}, false};
  } else {
    out[0] = {v.base, true};
    out[1] = {{v.base.x, v.base.y - 1}, true};
    out[2] = {{v.base.x + 1, v.base.y - 1}, true};
  }
}

void dfs(HexVertex v, int depth, int maxLength, util::FlatSet64& visited,
         std::vector<std::uint64_t>& counts) {
  if (depth == maxLength) return;
  HexVertex nbrs[3];
  neighborsOf(v, nbrs);
  for (const HexVertex next : nbrs) {
    const std::uint64_t k = key(next);
    if (visited.contains(k)) continue;
    ++counts[static_cast<std::size_t>(depth)];
    visited.insert(k);
    dfs(next, depth + 1, maxLength, visited, counts);
    visited.erase(k);
  }
}

}  // namespace

std::vector<std::uint64_t> hexSawCounts(int maxLength) {
  SOPS_REQUIRE(maxLength >= 1 && maxLength <= 30, "hexSawCounts: 1..30");
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(maxLength), 0);
  util::FlatSet64 visited(1024);
  const HexVertex origin{{0, 0}, true};
  visited.insert(key(origin));
  dfs(origin, 0, maxLength, visited, counts);
  return counts;
}

double connectiveConstantEstimate(const std::vector<std::uint64_t>& counts) {
  SOPS_REQUIRE(!counts.empty(), "connectiveConstantEstimate: empty counts");
  const double l = static_cast<double>(counts.size());
  return std::pow(static_cast<double>(counts.back()), 1.0 / l);
}

double hexConnectiveConstant() noexcept {
  return std::sqrt(2.0 + std::sqrt(2.0));
}

}  // namespace sops::enumeration
