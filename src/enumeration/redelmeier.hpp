#ifndef SOPS_ENUMERATION_REDELMEIER_HPP
#define SOPS_ENUMERATION_REDELMEIER_HPP

/// \file redelmeier.hpp
/// Redelmeier-style enumeration of connected configurations up to
/// translation — an *independent* second method (no canonical-form dedup,
/// O(n) memory) used to cross-validate config_enum.hpp and to reach larger
/// n in count-only experiments.
///
/// The classic algorithm for lattice animals, adapted to vertex animals on
/// G∆ (≡ fixed polyhexes): restrict growth to the half-plane
/// {y > 0} ∪ {y = 0, x ≥ 0} so that every animal is generated exactly once,
/// rooted at its lexicographically (y, then x) smallest vertex.
///
/// Also provides the staircase paths of Lemma 5.1: the 2^{n-1} maximum-
/// perimeter tree configurations built from "right" / "up-right" steps.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "lattice/tri_point.hpp"

namespace sops::enumeration {

using lattice::TriPoint;

/// counts[k-1] = number of connected configurations with k particles, up to
/// translation, for k = 1..n.  Must agree with countConnected(k).all.
[[nodiscard]] std::vector<std::uint64_t> redelmeierCounts(int n);

/// Calls visit(cells) for every connected configuration of exactly n
/// particles (cells are rooted at the half-plane origin, not canonical).
void redelmeierEnumerate(int n,
                         const std::function<void(std::span<const TriPoint>)>&
                             visit);

/// Lemma 5.1's witnesses: all 2^{n-1} staircase paths (steps East or
/// NorthEast from the origin).  Every one is a tree configuration with the
/// maximum perimeter 2n−2; tests make the lemma's count argument exact.
[[nodiscard]] std::vector<std::vector<TriPoint>> staircasePaths(int n);

}  // namespace sops::enumeration

#endif  // SOPS_ENUMERATION_REDELMEIER_HPP
