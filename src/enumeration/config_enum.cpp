#include "enumeration/config_enum.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "lattice/direction.hpp"
#include "system/canonical.hpp"
#include "system/metrics.hpp"
#include "system/particle_system.hpp"

namespace sops::enumeration {

namespace {

using lattice::Direction;
using lattice::kAllDirections;
using lattice::neighbor;
using system::ParticleSystem;

/// Grows all canonical configs of size n from those of size n-1 by
/// attaching one particle at any empty adjacent cell.  Every connected
/// config of size n contains a connected sub-config of size n-1 obtainable
/// by deleting a non-cut leaf of a spanning tree, so this reaches
/// everything.
std::vector<std::string> grow(const std::vector<std::string>& previousKeys) {
  std::unordered_set<std::string> next;
  std::vector<TriPoint> points;
  for (const std::string& key : previousKeys) {
    points.clear();
    points.reserve(key.size() / sizeof(std::uint64_t) + 1);
    for (std::size_t off = 0; off < key.size(); off += sizeof(std::uint64_t)) {
      std::uint64_t packed = 0;
      std::memcpy(&packed, key.data() + off, sizeof(packed));
      points.push_back(lattice::unpack(packed));
    }
    const std::size_t base = points.size();
    std::unordered_set<std::uint64_t> occupied;
    occupied.reserve(base * 2);
    for (const TriPoint p : points) occupied.insert(lattice::pack(p));
    std::unordered_set<std::uint64_t> tried;
    for (std::size_t i = 0; i < base; ++i) {
      for (const Direction d : kAllDirections) {
        const TriPoint q = neighbor(points[i], d);
        if (occupied.contains(lattice::pack(q))) continue;
        if (!tried.insert(lattice::pack(q)).second) continue;
        points.push_back(q);
        next.insert(system::canonicalKeyFromPoints(points));
        points.pop_back();
      }
    }
  }
  std::vector<std::string> out(next.begin(), next.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> enumerateKeys(int n) {
  SOPS_REQUIRE(n >= 1, "enumerateKeys: n >= 1");
  std::vector<std::string> keys = {
      system::canonicalKeyFromPoints({TriPoint{0, 0}})};
  for (int size = 2; size <= n; ++size) keys = grow(keys);
  return keys;
}

std::vector<TriPoint> pointsFromKey(const std::string& key) {
  std::vector<TriPoint> points;
  points.reserve(key.size() / sizeof(std::uint64_t));
  for (std::size_t off = 0; off < key.size(); off += sizeof(std::uint64_t)) {
    std::uint64_t packed = 0;
    std::memcpy(&packed, key.data() + off, sizeof(packed));
    points.push_back(lattice::unpack(packed));
  }
  return points;
}

EnumeratedConfig describe(std::vector<TriPoint> points) {
  EnumeratedConfig config;
  const ParticleSystem sys(points);
  config.edges = system::countEdges(sys);
  config.triangles = system::countTriangles(sys);
  config.holes = system::countHoles(sys);
  config.perimeter = system::perimeterFromCounts(
      static_cast<std::int64_t>(points.size()), config.edges, config.holes);
  config.points = std::move(points);
  return config;
}

}  // namespace

std::vector<EnumeratedConfig> enumerateConnected(int n) {
  const std::vector<std::string> keys = enumerateKeys(n);
  std::vector<EnumeratedConfig> configs;
  configs.reserve(keys.size());
  for (const std::string& key : keys) {
    configs.push_back(describe(pointsFromKey(key)));
  }
  return configs;
}

ConfigCounts countConnected(int n) {
  ConfigCounts counts;
  for (const std::string& key : enumerateKeys(n)) {
    ++counts.all;
    const ParticleSystem sys(pointsFromKey(key));
    if (system::countHoles(sys) == 0) ++counts.holeFree;
  }
  return counts;
}

ConfigCounts countConnectedBruteForce(int n) {
  SOPS_REQUIRE(n >= 1 && n <= 7, "brute force supports n in [1,7]");
  // Canonical configs have min x = min y = 0 and fit inside an n×n window.
  std::vector<TriPoint> window;
  for (std::int32_t y = 0; y < n; ++y) {
    for (std::int32_t x = 0; x < n; ++x) window.push_back({x, y});
  }
  ConfigCounts counts;
  std::vector<TriPoint> chosen;
  const auto consider = [&] {
    bool hasX0 = false;
    bool hasY0 = false;
    for (const TriPoint p : chosen) {
      hasX0 |= p.x == 0;
      hasY0 |= p.y == 0;
    }
    if (!hasX0 || !hasY0) return;  // not canonical: a translate was counted
    const ParticleSystem sys(chosen);
    if (!system::isConnected(sys)) return;
    ++counts.all;
    if (system::countHoles(sys) == 0) ++counts.holeFree;
  };
  // Recursive subset choice.
  const std::function<void(std::size_t, int)> recurse =
      [&](std::size_t index, int remaining) {
        if (remaining == 0) {
          consider();
          return;
        }
        if (index + static_cast<std::size_t>(remaining) > window.size()) return;
        chosen.push_back(window[index]);
        recurse(index + 1, remaining - 1);
        chosen.pop_back();
        recurse(index + 1, remaining);
      };
  recurse(0, n);
  return counts;
}

const char* jensenN50Decimal() noexcept {
  return "2430068453031180290203185942420933";
}

double expansionThresholdFromN50() noexcept {
  // (2·N50)^{1/100} computed via logarithms; N50 ≈ 2.430068453e33.
  const double log10N50 = std::log10(2.430068453031180290203185942420933) +
      33.0;
  const double log10TwoN50 = std::log10(2.0) + log10N50;
  return std::pow(10.0, log10TwoN50 / 100.0);
}

}  // namespace sops::enumeration
