#ifndef SOPS_ENUMERATION_HEX_SAW_HPP
#define SOPS_ENUMERATION_HEX_SAW_HPP

/// \file hex_saw.hpp
/// Exact counts of self-avoiding walks on the hexagonal (honeycomb) lattice
/// — the dual of G∆ — from a fixed vertex (Definition 4.1, Fig 8).
///
/// Duminil-Copin & Smirnov (Theorem 4.2) proved the connective constant is
/// μ_hex = √(2+√2) ≈ 1.84776; the compression threshold of Theorem 4.5 is
/// μ_hex² = 2+√2.  bench_saw reports N_l and the estimates N_l^{1/l}.

#include <cstdint>
#include <vector>

namespace sops::enumeration {

/// counts[l-1] = number of self-avoiding walks of length l (edges) starting
/// at a fixed vertex of the hexagonal lattice, for l = 1..maxLength.
/// Exhaustive DFS; practical for maxLength ≲ 26.
[[nodiscard]] std::vector<std::uint64_t> hexSawCounts(int maxLength);

/// μ estimate from the last count: counts.back()^{1/maxLength}.
[[nodiscard]] double connectiveConstantEstimate(
    const std::vector<std::uint64_t>& counts);

/// The proven connective constant √(2+√2).
[[nodiscard]] double hexConnectiveConstant() noexcept;

}  // namespace sops::enumeration

#endif  // SOPS_ENUMERATION_HEX_SAW_HPP
