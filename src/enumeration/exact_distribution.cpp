#include "enumeration/exact_distribution.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace sops::enumeration {

ExactEnsemble::ExactEnsemble(int n) : n_(n) {
  SOPS_REQUIRE(n >= 1, "ExactEnsemble: n >= 1");
  for (EnumeratedConfig& config : enumerateConnected(n)) {
    if (config.holeFree()) configs_.push_back(std::move(config));
  }
  SOPS_ENSURE(!configs_.empty(), "Ω* must be nonempty");
  minPerimeter_ = configs_.front().perimeter;
  maxPerimeter_ = configs_.front().perimeter;
  for (const EnumeratedConfig& config : configs_) {
    minPerimeter_ = std::min(minPerimeter_, config.perimeter);
    maxPerimeter_ = std::max(maxPerimeter_, config.perimeter);
  }
}

double ExactEnsemble::partitionFunction(double lambda) const {
  SOPS_REQUIRE(lambda > 0.0, "lambda must be positive");
  double z = 0.0;
  for (const EnumeratedConfig& config : configs_) {
    z += std::pow(lambda, static_cast<double>(config.edges));
  }
  return z;
}

std::vector<double> ExactEnsemble::stationary(double lambda) const {
  const double z = partitionFunction(lambda);
  std::vector<double> pi;
  pi.reserve(configs_.size());
  for (const EnumeratedConfig& config : configs_) {
    pi.push_back(std::pow(lambda, static_cast<double>(config.edges)) / z);
  }
  return pi;
}

double ExactEnsemble::probPerimeterAtLeast(double lambda,
                                           double threshold) const {
  const std::vector<double> pi = stationary(lambda);
  double probability = 0.0;
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    if (static_cast<double>(configs_[i].perimeter) >= threshold) {
      probability += pi[i];
    }
  }
  return probability;
}

double ExactEnsemble::probPerimeterAtMost(double lambda,
                                          double threshold) const {
  const std::vector<double> pi = stationary(lambda);
  double probability = 0.0;
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    if (static_cast<double>(configs_[i].perimeter) <= threshold) {
      probability += pi[i];
    }
  }
  return probability;
}

double ExactEnsemble::expectedPerimeter(double lambda) const {
  const std::vector<double> pi = stationary(lambda);
  double expectation = 0.0;
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    expectation += pi[i] * static_cast<double>(configs_[i].perimeter);
  }
  return expectation;
}

double ExactEnsemble::expectedEdges(double lambda) const {
  const std::vector<double> pi = stationary(lambda);
  double expectation = 0.0;
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    expectation += pi[i] * static_cast<double>(configs_[i].edges);
  }
  return expectation;
}

std::map<std::int64_t, double> ExactEnsemble::perimeterDistribution(
    double lambda) const {
  const std::vector<double> pi = stationary(lambda);
  std::map<std::int64_t, double> histogram;
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    histogram[configs_[i].perimeter] += pi[i];
  }
  return histogram;
}

std::map<std::int64_t, std::uint64_t> ExactEnsemble::perimeterCounts() const {
  std::map<std::int64_t, std::uint64_t> counts;
  for (const EnumeratedConfig& config : configs_) ++counts[config.perimeter];
  return counts;
}

}  // namespace sops::enumeration
