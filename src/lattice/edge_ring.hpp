#ifndef SOPS_LATTICE_EDGE_RING_HPP
#define SOPS_LATTICE_EDGE_RING_HPP

/// \file edge_ring.hpp
/// The 8-cell ring around a lattice edge (ℓ, ℓ+d) — pure G∆ geometry.
///
/// For a move from ℓ in direction d, the union neighborhood
/// N(ℓ ∪ ℓ') \ {ℓ, ℓ'} is exactly eight cells forming an 8-cycle around
/// the edge; see core/properties.hpp for the index convention (idx 0 and 4
/// are the common neighbors of ℓ and ℓ').  This header provides the ring
/// cells as precomputed per-direction offsets relative to ℓ, so occupancy
/// backends (system/bit_grid) can turn ring gathers into pointer
/// arithmetic without depending on the chain layer.

#include <array>

#include "lattice/direction.hpp"
#include "lattice/tri_point.hpp"

namespace sops::lattice {

inline constexpr int kEdgeRingSize = 8;

/// kEdgeRingOffsets[index(d)][idx] is ring cell idx of the move (ℓ, d),
/// relative to ℓ.  Same index convention as core::ringCell; the test suite
/// asserts the two agree for every direction and index.
inline constexpr auto kEdgeRingOffsets = [] {
  std::array<std::array<TriPoint, kEdgeRingSize>, kNumDirections> table{};
  for (int di = 0; di < kNumDirections; ++di) {
    const Direction d = directionFromIndex(di);
    const TriPoint lPrime = offset(d);
    table[di][0] = offset(rotated(d, 1));
    table[di][1] = offset(rotated(d, 2));
    table[di][2] = offset(rotated(d, 3));
    table[di][3] = offset(rotated(d, 4));
    table[di][4] = offset(rotated(d, 5));
    table[di][5] = lPrime + offset(rotated(d, 5));
    table[di][6] = lPrime + offset(d);
    table[di][7] = lPrime + offset(rotated(d, 1));
  }
  return table;
}();

}  // namespace sops::lattice

#endif  // SOPS_LATTICE_EDGE_RING_HPP
