#ifndef SOPS_LATTICE_DIRECTION_HPP
#define SOPS_LATTICE_DIRECTION_HPP

/// \file direction.hpp
/// The six lattice directions of the triangular lattice G∆ (paper §2.1,
/// Fig 1a), ordered counterclockwise so that rotating by 60° is "+1 mod 6".

#include <array>
#include <cstdint>
#include <string_view>

namespace sops::lattice {

/// A direction along an edge of G∆.  The numeric values are load-bearing:
/// successive values are 60° counterclockwise apart.
enum class Direction : std::uint8_t {
  East = 0,
  NorthEast = 1,
  NorthWest = 2,
  West = 3,
  SouthWest = 4,
  SouthEast = 5,
};

inline constexpr int kNumDirections = 6;

/// All six directions in counterclockwise order, for range-for loops.
inline constexpr std::array<Direction, kNumDirections> kAllDirections = {
    Direction::East,      Direction::NorthEast, Direction::NorthWest,
    Direction::West,      Direction::SouthWest, Direction::SouthEast,
};

[[nodiscard]] constexpr int index(Direction d) noexcept {
  return static_cast<int>(d);
}

[[nodiscard]] constexpr Direction directionFromIndex(int i) noexcept {
  return static_cast<Direction>(((i % kNumDirections) + kNumDirections) %
                                kNumDirections);
}

/// Rotates d counterclockwise by k * 60 degrees (k may be negative).
[[nodiscard]] constexpr Direction rotated(Direction d, int k) noexcept {
  return directionFromIndex(index(d) + k);
}

[[nodiscard]] constexpr Direction opposite(Direction d) noexcept {
  return rotated(d, 3);
}

[[nodiscard]] constexpr std::string_view name(Direction d) noexcept {
  constexpr std::array<std::string_view, kNumDirections> kNames = {
      "E", "NE", "NW", "W", "SW", "SE"};
  return kNames[static_cast<std::size_t>(index(d))];
}

}  // namespace sops::lattice

#endif  // SOPS_LATTICE_DIRECTION_HPP
