#ifndef SOPS_LATTICE_TRI_POINT_HPP
#define SOPS_LATTICE_TRI_POINT_HPP

/// \file tri_point.hpp
/// Vertices of the triangular lattice G∆ in axial coordinates.
///
/// A vertex is stored as (x, y) where the cartesian embedding is
///   (x + y/2,  y·√3/2),
/// i.e. the x axis runs east and each +y step moves up-and-right by 60°.
/// Under this convention the six neighbor offsets, counterclockwise from
/// East, are (1,0), (0,1), (-1,1), (-1,0), (0,-1), (1,-1) — and rotating a
/// direction by 60° CCW maps offset (x,y) to (-y, x+y).

#include <compare>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <utility>

#include "lattice/direction.hpp"

namespace sops::lattice {

struct TriPoint {
  std::int32_t x = 0;
  std::int32_t y = 0;

  friend constexpr bool operator==(TriPoint, TriPoint) = default;
  friend constexpr auto operator<=>(TriPoint, TriPoint) = default;

  constexpr TriPoint& operator+=(TriPoint o) noexcept {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr TriPoint& operator-=(TriPoint o) noexcept {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  friend constexpr TriPoint operator+(TriPoint a, TriPoint b) noexcept {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr TriPoint operator-(TriPoint a, TriPoint b) noexcept {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr TriPoint operator-(TriPoint a) noexcept {
    return {-a.x, -a.y};
  }
};

// Snapshot payloads serialize positions as the two axial coordinates in
// field order; an added member or a widened coordinate must show up here
// as a deliberate layout change, not as silent snapshot drift.
static_assert(std::is_trivially_copyable_v<TriPoint> &&
              sizeof(TriPoint) == 2 * sizeof(std::int32_t));

/// Offset of one lattice step in direction d.
[[nodiscard]] constexpr TriPoint offset(Direction d) noexcept {
  constexpr TriPoint kOffsets[kNumDirections] = {
      {1, 0}, {0, 1}, {-1, 1}, {-1, 0}, {0, -1}, {1, -1}};
  return kOffsets[index(d)];
}

/// The lattice vertex one step from p in direction d.
[[nodiscard]] constexpr TriPoint neighbor(TriPoint p, Direction d) noexcept {
  return p + offset(d);
}

/// Rotates an offset vector by 60° counterclockwise about the origin.
[[nodiscard]] constexpr TriPoint rotated60(TriPoint v) noexcept {
  return {-v.y, v.x + v.y};
}

/// True iff a and b are joined by a lattice edge.
[[nodiscard]] constexpr bool areAdjacent(TriPoint a, TriPoint b) noexcept {
  const TriPoint d = b - a;
  return (d.x == 1 && d.y == 0) || (d.x == 0 && d.y == 1) ||
         (d.x == -1 && d.y == 1) || (d.x == -1 && d.y == 0) ||
         (d.x == 0 && d.y == -1) || (d.x == 1 && d.y == -1);
}

/// Direction from a to b if they are adjacent, nullopt otherwise.
[[nodiscard]] constexpr std::optional<Direction> directionBetween(
    TriPoint a, TriPoint b) noexcept {
  const TriPoint d = b - a;
  for (const Direction dir : kAllDirections) {
    if (offset(dir) == d) return dir;
  }
  return std::nullopt;
}

/// Graph (hop) distance between two lattice vertices.  On the triangular
/// lattice in axial coordinates this is the hex-grid distance
/// max(|dx|, |dy|, |dx+dy|).
[[nodiscard]] constexpr int latticeDistance(TriPoint a, TriPoint b) noexcept {
  const std::int64_t dx = static_cast<std::int64_t>(b.x) - a.x;
  const std::int64_t dy = static_cast<std::int64_t>(b.y) - a.y;
  const std::int64_t s = dx + dy;
  const std::int64_t ax = dx < 0 ? -dx : dx;
  const std::int64_t ay = dy < 0 ? -dy : dy;
  const std::int64_t as = s < 0 ? -s : s;
  std::int64_t m = ax > ay ? ax : ay;
  if (as > m) m = as;
  return static_cast<int>(m);
}

/// Packs a point into a 64-bit key for hashing (lossless for int32 coords).
[[nodiscard]] constexpr std::uint64_t pack(TriPoint p) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.x)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.y));
}

[[nodiscard]] constexpr TriPoint unpack(std::uint64_t key) noexcept {
  return {static_cast<std::int32_t>(static_cast<std::uint32_t>(key >> 32)),
          static_cast<std::int32_t>(static_cast<std::uint32_t>(key))};
}

/// Cartesian embedding (unit edge length); used by the SVG renderer and for
/// geometric diagnostics.
struct Cartesian {
  double x;
  double y;
};

[[nodiscard]] Cartesian toCartesian(TriPoint p) noexcept;

}  // namespace sops::lattice

#endif  // SOPS_LATTICE_TRI_POINT_HPP
