#include "lattice/direction.hpp"

namespace sops::lattice {

// Compile-time checks of the rotation conventions the move validator
// depends on (core/properties.cpp documents why).
static_assert(rotated(Direction::East, 1) == Direction::NorthEast);
static_assert(rotated(Direction::East, -1) == Direction::SouthEast);
static_assert(opposite(Direction::NorthWest) == Direction::SouthEast);
static_assert(directionFromIndex(-1) == Direction::SouthEast);

}  // namespace sops::lattice
