#include "lattice/tri_point.hpp"

#include <cmath>

namespace sops::lattice {

Cartesian toCartesian(TriPoint p) noexcept {
  static const double kRoot3Over2 = std::sqrt(3.0) / 2.0;
  return {static_cast<double>(p.x) + 0.5 * static_cast<double>(p.y),
          kRoot3Over2 * static_cast<double>(p.y)};
}

// The direction table and the rotation convention must agree: rotating the
// offset of direction d by 60° CCW must give the offset of d+1.
static_assert(rotated60(offset(Direction::East)) ==
              offset(Direction::NorthEast));
static_assert(rotated60(offset(Direction::NorthEast)) ==
              offset(Direction::NorthWest));
static_assert(rotated60(offset(Direction::NorthWest)) ==
              offset(Direction::West));
static_assert(rotated60(offset(Direction::West)) ==
              offset(Direction::SouthWest));
static_assert(rotated60(offset(Direction::SouthWest)) ==
              offset(Direction::SouthEast));
static_assert(rotated60(offset(Direction::SouthEast)) ==
              offset(Direction::East));
static_assert(offset(opposite(Direction::East)) == -offset(Direction::East));
static_assert(pack(unpack(0x12345678deadbeefULL)) == 0x12345678deadbeefULL);

}  // namespace sops::lattice
