#include "extensions/separation.hpp"

#include "core/draw_guard.hpp"
#include "core/move_table.hpp"
#include "core/properties.hpp"
#include "lattice/direction.hpp"
#include "system/metrics.hpp"

namespace sops::extensions {

namespace {
using lattice::Direction;
using lattice::kAllDirections;
using lattice::neighbor;
using lattice::TriPoint;
}  // namespace

double separationMovementThreshold(const SeparationOptions& options,
                                   int edgeDelta, int homDelta) {
  return core::lambdaPower(options.lambda, edgeDelta) *
         core::lambdaPower(options.gamma, homDelta);
}

double separationSwapThreshold(const SeparationOptions& options, int homDelta) {
  return core::lambdaPower(options.gamma, homDelta);
}

SeparationChain::SeparationChain(system::ParticleSystem initial,
                                 std::vector<std::uint8_t> colors,
                                 SeparationOptions options, std::uint64_t seed)
    : system_(std::move(initial)),
      colors_(std::move(colors)),
      options_(options),
      rng_(seed) {
  SOPS_REQUIRE(options_.lambda > 0.0 && options_.gamma > 0.0,
               "biases must be positive");
  SOPS_REQUIRE(colors_.size() == system_.size(), "one color per particle");
  for (const std::uint8_t c : colors_) {
    SOPS_REQUIRE(c <= 1, "colors are 0 or 1");
  }
  // Both step kinds draw the particle with a 32-bit uniform; the count is
  // conserved, so the construction-time guard covers every step.
  particleCount32_ = core::checkedParticleDrawBound(system_.size());
  SOPS_REQUIRE(system::isConnected(system_), "must start connected");
}

int SeparationChain::sameColorNeighbors(TriPoint cell, std::uint8_t c,
                                        TriPoint exclude) const {
  int count = 0;
  for (const Direction d : kAllDirections) {
    const TriPoint q = neighbor(cell, d);
    if (q == exclude) continue;
    const auto id = system_.particleAt(q);
    if (id.has_value() && colors_[*id] == c) ++count;
  }
  return count;
}

void SeparationChain::movementStep() {
  const auto particle = static_cast<std::size_t>(rng_.below(particleCount32_));
  const Direction d =
      lattice::directionFromIndex(static_cast<int>(rng_.below(6)));
  const TriPoint l = system_.position(particle);
  const core::MoveEvaluation eval = core::evaluateMove(system_, l, d);
  if (eval.targetOccupied || !eval.gapOk || !eval.propertyOk) return;

  const TriPoint target = neighbor(l, d);
  const std::uint8_t myColor = colors_[particle];
  const int homBefore = sameColorNeighbors(l, myColor, target);
  const int homAfter = sameColorNeighbors(target, myColor, l);
  const double threshold = separationMovementThreshold(
      options_, eval.eAfter - eval.eBefore, homAfter - homBefore);
  if (threshold >= 1.0 || rng_.uniform() < threshold) {
    system_.moveParticle(particle, target);
    ++stats_.movesAccepted;
  }
}

void SeparationChain::swapStep() {
  const auto particle = static_cast<std::size_t>(rng_.below(particleCount32_));
  const Direction d =
      lattice::directionFromIndex(static_cast<int>(rng_.below(6)));
  const TriPoint p = system_.position(particle);
  const TriPoint q = neighbor(p, d);
  const auto other = system_.particleAt(q);
  if (!other.has_value()) return;
  const std::uint8_t colorP = colors_[particle];
  const std::uint8_t colorQ = colors_[*other];
  if (colorP == colorQ) return;

  // Δhom from exchanging the two colors; the p—q edge stays heterochromatic.
  const int before =
      sameColorNeighbors(p, colorP, q) + sameColorNeighbors(q, colorQ, p);
  const int after =
      sameColorNeighbors(p, colorQ, q) + sameColorNeighbors(q, colorP, p);
  const double threshold = separationSwapThreshold(options_, after - before);
  if (threshold >= 1.0 || rng_.uniform() < threshold) {
    colors_[particle] = colorQ;
    colors_[*other] = colorP;
    ++stats_.swapsAccepted;
  }
}

void SeparationChain::step() {
  ++stats_.steps;
  if (options_.enableSwaps && rng_.bernoulli(0.5)) {
    swapStep();
  } else {
    movementStep();
  }
}

void SeparationChain::run(std::uint64_t iterations) {
  for (std::uint64_t i = 0; i < iterations; ++i) step();
}

std::int64_t SeparationChain::homogeneousEdges() const {
  constexpr Direction kPositive[3] = {Direction::East, Direction::NorthEast,
                                      Direction::SouthEast};
  std::int64_t hom = 0;
  for (std::size_t id = 0; id < system_.size(); ++id) {
    const TriPoint p = system_.position(id);
    for (const Direction d : kPositive) {
      const auto other = system_.particleAt(neighbor(p, d));
      if (other.has_value() && colors_[*other] == colors_[id]) ++hom;
    }
  }
  return hom;
}

std::size_t SeparationChain::colorOneCount() const {
  std::size_t count = 0;
  for (const std::uint8_t c : colors_) count += c;
  return count;
}

}  // namespace sops::extensions
