#ifndef SOPS_EXTENSIONS_SEPARATION_HPP
#define SOPS_EXTENSIONS_SEPARATION_HPP

/// \file separation.hpp
/// Heterogeneous (two-color) extension of the compression chain, à la the
/// separation work the paper's conclusion points to ([9], Cannon, Daymude,
/// Gokmen, Randall, Richa 2018).
///
/// The Hamiltonian gains a homogeneity term: w(σ) = λ^{e(σ)} · γ^{hom(σ)},
/// where hom(σ) counts monochromatic induced edges.  The chain mixes two
/// reversible move kinds: the movement moves of M (with the same Property
/// 1/2 and gap conditions, so all connectivity/hole invariants carry over)
/// accepted with min(1, λ^{Δe}·γ^{Δhom}), and color swaps across a
/// heterogeneous edge accepted with min(1, γ^{Δhom}).  γ > 1 favors
/// segregation of colors; γ < 1 favors integration.  Exact details differ
/// from [9] (documented substitution; the qualitative phase behavior is
/// what bench_separation reproduces).
///
/// This class is the *reference* implementation: every neighbor-color
/// count goes through the hash index (particleAt) and no state beyond the
/// color vector is cached.  The production path is the identical kernel on
/// the bitboard engine — core::SeparationEngine
/// (core/scenario_models.hpp), draw-for-draw equal to this chain by
/// tests/biased_engine_test.cpp and ≥3× faster (BENCH_perf.json).

#include <cstdint>
#include <vector>

#include "core/compression_chain.hpp"
#include "rng/random.hpp"
#include "system/particle_system.hpp"

namespace sops::extensions {

struct SeparationOptions {
  double lambda = 4.0;  ///< compression bias (edges)
  double gamma = 4.0;   ///< homogeneity bias (monochromatic edges)
  bool enableSwaps = true;
};

enum class SeparationMoveKind : std::uint8_t { Movement, Swap };

/// The movement-move Metropolis threshold λ^{Δe}·γ^{Δhom}, computed from
/// the shared core::lambdaPower so it cannot drift from the compression
/// chain's per-mask decision table (at γ = 1 it *is* the chain's threshold,
/// pinned by Separation.MovementThresholdMatchesCompressionChainAtGammaOne).
[[nodiscard]] double separationMovementThreshold(
    const SeparationOptions& options, int edgeDelta, int homDelta);

/// The swap-move threshold γ^{Δhom}, same single-source λ^δ helper.
[[nodiscard]] double separationSwapThreshold(const SeparationOptions& options,
                                             int homDelta);

struct SeparationStats {
  std::uint64_t steps = 0;
  std::uint64_t movesAccepted = 0;
  std::uint64_t swapsAccepted = 0;
};

class SeparationChain {
 public:
  /// colors[i] ∈ {0, 1} for particle i of `initial` (must be connected).
  SeparationChain(system::ParticleSystem initial,
                  std::vector<std::uint8_t> colors, SeparationOptions options,
                  std::uint64_t seed);

  /// One step: a fair coin picks movement vs swap (when swaps enabled).
  void step();
  void run(std::uint64_t iterations);

  [[nodiscard]] const system::ParticleSystem& system() const noexcept {
    return system_;
  }
  [[nodiscard]] const std::vector<std::uint8_t>& colors() const noexcept {
    return colors_;
  }
  [[nodiscard]] const SeparationStats& stats() const noexcept { return stats_; }

  /// Number of monochromatic induced edges hom(σ) (exact recount).
  [[nodiscard]] std::int64_t homogeneousEdges() const;

  /// Number of particles of color 1 (conserved; asserted in tests).
  [[nodiscard]] std::size_t colorOneCount() const;

 private:
  void movementStep();
  void swapStep();

  /// Same-color neighbor count of `cell` for color `c`, excluding `exclude`.
  [[nodiscard]] int sameColorNeighbors(lattice::TriPoint cell, std::uint8_t c,
                                       lattice::TriPoint exclude) const;

  system::ParticleSystem system_;
  std::vector<std::uint8_t> colors_;
  SeparationOptions options_;
  rng::Random rng_;
  SeparationStats stats_;
  std::uint32_t particleCount32_ = 0;
};

}  // namespace sops::extensions

#endif  // SOPS_EXTENSIONS_SEPARATION_HPP
