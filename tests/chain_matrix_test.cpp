// The paper's structural lemmas made executable (E15): exact transition
// matrices of M for tiny n, audited for stochasticity, detailed balance
// (Lemma 3.13), reversibility (Lemma 3.9), ergodicity on Ω* (Lemma 3.10,
// Corollary 3.11), and transience of holed states (Lemmas 3.2, 3.8, 3.12).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "enumeration/chain_matrix.hpp"
#include "markov/stationary.hpp"

namespace sops::enumeration {
namespace {

core::ChainOptions paperOptions(double lambda) {
  core::ChainOptions options;
  options.lambda = lambda;
  return options;
}

TEST(ChainMatrix, RowsAreStochastic) {
  for (int n = 2; n <= 5; ++n) {
    const ChainModel model = buildChainModel(n, paperOptions(4.0));
    EXPECT_LT(model.matrix.maxRowDefect(), 1e-12) << "n=" << n;
  }
}

TEST(ChainMatrix, DetailedBalanceWithEdgeWeights) {
  // Lemma 3.13: π ∝ λ^{e} satisfies detailed balance on Ω*.
  for (int n = 3; n <= 5; ++n) {
    for (const double lambda : {0.8, 1.0, 2.0, 4.0}) {
      const ChainModel model = buildChainModel(n, paperOptions(lambda));
      const std::vector<double> weights = model.edgeWeights(lambda);
      const markov::BalanceAudit audit =
          markov::auditDetailedBalance(model.matrix, weights, model.holeFree);
      EXPECT_TRUE(audit.holds)
          << "n=" << n << " lambda=" << lambda
          << " violation=" << audit.maxViolation;
    }
  }
}

TEST(ChainMatrix, ReversibilityOnHoleFreeStates) {
  // Lemma 3.9: M(σ,τ) > 0 ⟺ M(τ,σ) > 0 within Ω*.
  const ChainModel model = buildChainModel(5, paperOptions(4.0));
  const std::size_t states = model.stateCount();
  for (std::size_t x = 0; x < states; ++x) {
    for (std::size_t y = 0; y < states; ++y) {
      if (x == y || !model.holeFree[x] || !model.holeFree[y]) continue;
      EXPECT_EQ(model.matrix.at(x, y) > 0.0, model.matrix.at(y, x) > 0.0)
          << x << "->" << y;
    }
  }
}

TEST(ChainMatrix, IrreducibleOnHoleFreeStates) {
  // Lemma 3.10: Ω* is one communicating class.
  for (int n = 2; n <= 5; ++n) {
    const ChainModel model = buildChainModel(n, paperOptions(3.0));
    EXPECT_TRUE(model.matrix.stronglyConnectedWithin(model.holeFree))
        << "n=" << n;
  }
}

TEST(ChainMatrix, AperiodicOnHoleFreeStates) {
  // Corollary 3.11's argument: every state has a self-loop (n > 1).
  const ChainModel model = buildChainModel(4, paperOptions(4.0));
  for (std::size_t s = 0; s < model.stateCount(); ++s) {
    EXPECT_GT(model.matrix.at(s, s), 0.0) << "state " << s;
  }
}

TEST(ChainMatrix, StationaryMatchesLambdaWeights) {
  // Power iteration from a point mass converges to λ^{e}/Z exactly.
  for (const double lambda : {1.0, 2.0, 4.0}) {
    const ChainModel model = buildChainModel(4, paperOptions(lambda));
    const std::vector<double> pi =
        markov::normalized(model.edgeWeights(lambda));
    std::vector<double> start(model.stateCount(), 0.0);
    start[0] = 1.0;
    const std::vector<double> reached =
        markov::powerIterate(model.matrix, start, 200000, 1e-15);
    EXPECT_LT(markov::totalVariation(reached, pi), 1e-8) << lambda;
  }
}

class HoledStateTest : public ::testing::Test {
 protected:
  static constexpr int kParticles = 6;  // the ring appears at n=6
  void SetUp() override {
    model_ = std::make_unique<ChainModel>(
        buildChainModel(kParticles, paperOptions(4.0)));
    for (std::size_t s = 0; s < model_->stateCount(); ++s) {
      if (!model_->holeFree[s]) holed_.push_back(s);
    }
  }
  std::unique_ptr<ChainModel> model_;
  std::vector<std::size_t> holed_;
};

TEST_F(HoledStateTest, ExactlyOneHoledStateAtSix) {
  EXPECT_EQ(holed_.size(), 1u);  // the hexagon ring
  EXPECT_EQ(model_->stateCount(), 814u);
}

TEST_F(HoledStateTest, HoleFreeIsClosed) {
  // Lemma 3.2: no transition from Ω* into a holed state.
  for (std::size_t x = 0; x < model_->stateCount(); ++x) {
    if (!model_->holeFree[x]) continue;
    for (const std::size_t h : holed_) {
      EXPECT_EQ(model_->matrix.at(x, h), 0.0) << "state " << x;
    }
  }
}

TEST_F(HoledStateTest, HoledStatesReachHoleFree) {
  // Lemma 3.8: from the ring there is a positive-probability path to Ω*.
  for (const std::size_t h : holed_) {
    const std::vector<char> reachable = model_->matrix.reachableFrom(h);
    bool reachesHoleFree = false;
    for (std::size_t s = 0; s < model_->stateCount(); ++s) {
      if (reachable[s] && model_->holeFree[s]) reachesHoleFree = true;
    }
    EXPECT_TRUE(reachesHoleFree);
  }
}

TEST_F(HoledStateTest, HoledMassDrainsGeometrically) {
  // Lemma 3.12: the holed state is transient — starting *in* it, its mass
  // decays geometrically (no flow ever returns from Ω*).
  std::vector<double> mass(model_->stateCount(), 0.0);
  mass[holed_.front()] = 1.0;
  for (int t = 0; t < 400; ++t) mass = model_->matrix.applyRight(mass);
  EXPECT_LT(mass[holed_.front()], 1e-10);
  double total = 0.0;
  for (const double m : mass) total += m;
  EXPECT_NEAR(total, 1.0, 1e-9);  // mass conserved, just relocated into Ω*
}

TEST(ChainMatrixMixing, MixingTimeGrowsWithLambdaContrast) {
  // Exact tiny-n mixing times (§3.7 discussion): stronger bias → the line
  // start is farther from stationarity, and mixing takes longer.
  const ChainModel mild = buildChainModel(4, paperOptions(1.5));
  const ChainModel strong = buildChainModel(4, paperOptions(8.0));
  const auto mixAt = [](const ChainModel& model, double lambda) {
    const std::vector<double> pi =
        markov::normalized(model.edgeWeights(lambda));
    return markov::mixingTimeFrom(model.matrix, 0, pi, 0.25, 1 << 20);
  };
  const int mildT = mixAt(mild, 1.5);
  const int strongT = mixAt(strong, 8.0);
  ASSERT_GE(mildT, 0);
  ASSERT_GE(strongT, 0);
  EXPECT_GT(strongT, 0);
}

TEST(ChainMatrixGreedy, GreedyKernelIsStillStochastic) {
  core::ChainOptions options = paperOptions(4.0);
  options.greedy = true;
  const ChainModel model = buildChainModel(4, options);
  EXPECT_LT(model.matrix.maxRowDefect(), 1e-12);
}

TEST(ChainMatrixAblation, DisablingPropertiesBreaksClosureOrConnectivity) {
  // Without condition (2) the kernel permits disconnecting moves, so valid
  // moves lead outside the connected state space.  buildChainModel REQUIREs
  // closure, so construction must fail.
  core::ChainOptions options = paperOptions(4.0);
  options.enforceProperties = false;
  EXPECT_THROW(buildChainModel(4, options), ContractViolation);
}

}  // namespace
}  // namespace sops::enumeration
