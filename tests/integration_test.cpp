// Cross-module integration tests: miniature versions of the paper's
// headline experiments (Fig 2, Fig 10), sampled-vs-exact stationary checks,
// and the rule ablations of E13 (each chain rule is load-bearing).
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "core/compression_chain.hpp"
#include "enumeration/exact_distribution.hpp"
#include "io/ascii_render.hpp"
#include "markov/stationary.hpp"
#include "system/canonical.hpp"
#include "system/metrics.hpp"
#include "system/shapes.hpp"

namespace sops {
namespace {

using core::ChainOptions;
using core::CompressionChain;

ChainOptions withLambda(double lambda) {
  ChainOptions options;
  options.lambda = lambda;
  return options;
}

TEST(Integration, MiniFig2CompressionAtLambdaFour) {
  // Fig 2 scaled down: a 30-particle line at λ=4 compresses to a small
  // constant times p_min well within the budget.
  CompressionChain chain(system::lineConfiguration(30), withLambda(4.0), 2016);
  chain.run(600000);
  const auto summary = system::summarize(chain.system());
  EXPECT_TRUE(summary.connected);
  EXPECT_EQ(summary.holes, 0);
  EXPECT_LT(summary.perimeterRatio, 2.0);
}

TEST(Integration, MiniFig10NoCompressionAtLambdaTwo) {
  // Fig 10 scaled down: λ=2 stays expanded — perimeter remains a constant
  // fraction of p_max (Theorem 5.7 regime).
  CompressionChain chain(system::lineConfiguration(30), withLambda(2.0), 2016);
  chain.run(600000);
  const auto p = system::perimeter(chain.system());
  EXPECT_GT(static_cast<double>(p),
            0.5 * static_cast<double>(system::pMax(30)));
}

TEST(Integration, ChainSamplesExactStationaryDistribution) {
  // E5: long-run samples of M on n=4 match π = λ^e/Z in total variation.
  const int n = 4;
  const double lambda = 3.0;
  const enumeration::ExactEnsemble ensemble(n);
  std::unordered_map<std::string, std::size_t> indexOf;
  for (std::size_t i = 0; i < ensemble.configs().size(); ++i) {
    indexOf.emplace(
        system::canonicalKeyFromPoints(ensemble.configs()[i].points), i);
  }
  const std::vector<double> exact = ensemble.stationary(lambda);

  CompressionChain chain(system::lineConfiguration(n), withLambda(lambda), 99);
  chain.run(20000);  // burn-in
  std::vector<double> empirical(exact.size(), 0.0);
  const int samples = 150000;
  for (int s = 0; s < samples; ++s) {
    chain.run(25);
    const auto it = indexOf.find(system::canonicalKey(chain.system()));
    ASSERT_NE(it, indexOf.end()) << "chain left Ω*";
    empirical[it->second] += 1.0 / samples;
  }
  EXPECT_LT(markov::totalVariation(empirical, exact), 0.05);
}

TEST(Integration, AblationNoGapConditionCreatesHoles) {
  // E13: dropping condition (1) (e ≠ 5) lets holes form from a hole-free
  // start — the rule is what Lemma 3.2 rests on.
  ChainOptions options = withLambda(4.0);
  options.enforceGapCondition = false;
  CompressionChain chain(system::lineConfiguration(30), options, 5);
  bool sawHole = false;
  for (int burst = 0; burst < 300 && !sawHole; ++burst) {
    chain.run(1000);
    sawHole = system::countHoles(chain.system()) > 0;
  }
  EXPECT_TRUE(sawHole) << "gap-condition ablation never produced a hole";
}

TEST(Integration, AblationNoPropertiesDisconnects) {
  // E13: dropping condition (2) lets the system disconnect (Lemma 3.1's
  // guarantee disappears).
  ChainOptions options = withLambda(1.5);
  options.enforceProperties = false;
  CompressionChain chain(system::lineConfiguration(30), options, 5);
  bool sawDisconnect = false;
  for (int burst = 0; burst < 300 && !sawDisconnect; ++burst) {
    chain.run(1000);
    sawDisconnect = !system::isConnected(chain.system());
  }
  EXPECT_TRUE(sawDisconnect) << "property ablation never disconnected";
}

TEST(Integration, FullRulesNeverDisconnectNorHole) {
  // Control for the two ablations above, same seeds and budgets.
  CompressionChain chain(system::lineConfiguration(30), withLambda(4.0), 5);
  for (int burst = 0; burst < 300; ++burst) {
    chain.run(1000);
    ASSERT_TRUE(system::isConnected(chain.system()));
    ASSERT_EQ(system::countHoles(chain.system()), 0);
  }
}

TEST(Integration, P1OnlyAblationShrinksTheValidMoveSet) {
  // Fig 3's theme: with Property 2 disallowed, the valid-move set of every
  // configuration is a (sometimes strict) subset of the full rule's.
  ChainOptions full = withLambda(4.0);
  ChainOptions p1Only = withLambda(4.0);
  p1Only.allowProperty2 = false;
  CompressionChain chain(system::lineConfiguration(25), full, 77);
  std::uint64_t fullMoves = 0;
  std::uint64_t p1Moves = 0;
  for (int burst = 0; burst < 100; ++burst) {
    chain.run(2000);
    const auto& sys = chain.system();
    for (std::size_t i = 0; i < sys.size(); ++i) {
      for (const lattice::Direction d : lattice::kAllDirections) {
        const core::MoveEvaluation eval =
            core::evaluateMove(sys, sys.position(i), d);
        const bool validFull = core::acceptanceProbability(eval, full) > 0.0;
        const bool validP1 = core::acceptanceProbability(eval, p1Only) > 0.0;
        ASSERT_LE(validP1,
                  validFull);  // subset, configuration by configuration
        fullMoves += validFull ? 1 : 0;
        p1Moves += validP1 ? 1 : 0;
      }
    }
  }
  EXPECT_LT(p1Moves, fullMoves);  // strictly smaller overall
}

TEST(Integration, RenderPipelineProducesSnapshot) {
  CompressionChain chain(system::lineConfiguration(40), withLambda(4.0), 11);
  chain.run(200000);
  const std::string art = io::renderAscii(chain.system());
  // The snapshot contains exactly n particle glyphs.
  EXPECT_EQ(static_cast<int>(std::count(art.begin(), art.end(), 'o')), 40);
  // Compressed: the bounding box is far narrower than the initial line.
  EXPECT_LT(art.size(), 1200u);
}

TEST(Integration, PerimeterSeriesDecreasesUnderCompression) {
  CompressionChain chain(system::lineConfiguration(40), withLambda(4.0), 13);
  std::vector<double> ratios;
  chain.runWithCheckpoints(400000, 40000, [&](std::uint64_t) {
    ratios.push_back(system::summarize(chain.system()).perimeterRatio);
  });
  ASSERT_EQ(ratios.size(), 10u);
  // Monotone-ish decrease: final much below initial, and the minimum is at
  // the tail half.
  EXPECT_LT(ratios.back(), ratios.front() * 0.6);
}

}  // namespace
}  // namespace sops
