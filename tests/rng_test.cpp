// Tests for the deterministic RNG substrate (S2).
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "rng/random.hpp"
#include "rng/xoshiro.hpp"

namespace sops::rng {
namespace {

TEST(Xoshiro, DeterministicFromSeed) {
  Xoshiro256PlusPlus a(7);
  Xoshiro256PlusPlus b(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256PlusPlus a(7);
  Xoshiro256PlusPlus b(8);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro, JumpDecorrelates) {
  Xoshiro256PlusPlus a(7);
  Xoshiro256PlusPlus b(7);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Random, BelowIsInRange) {
  Random rng(1);
  for (std::uint32_t bound : {1u, 2u, 3u, 6u, 7u, 100u, 12345u}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Random, BelowIsApproximatelyUniform) {
  // Chi-square test over 6 buckets (the chain's direction draw).
  Random rng(42);
  std::array<int, 6> counts{};
  const int samples = 600000;
  for (int i = 0; i < samples; ++i) ++counts[rng.below(6)];
  const double expected = samples / 6.0;
  double chi2 = 0.0;
  for (const int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  // 5 degrees of freedom: P(chi2 > 20.5) < 0.001.
  EXPECT_LT(chi2, 20.5);
}

TEST(Random, BetweenIsInclusive) {
  Random rng(3);
  bool sawLo = false;
  bool sawHi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    sawLo |= v == -2;
    sawHi |= v == 2;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Random, UniformIsInUnitInterval) {
  Random rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Random, UniformMeanIsHalf) {
  Random rng(5);
  double sum = 0.0;
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / samples, 0.5, 0.005);
}

TEST(Random, ExponentialHasRequestedMean) {
  Random rng(6);
  for (const double rate : {0.5, 1.0, 4.0}) {
    double sum = 0.0;
    const int samples = 200000;
    for (int i = 0; i < samples; ++i) sum += rng.exponential(rate);
    EXPECT_NEAR(sum / samples, 1.0 / rate, 0.02 / rate);
  }
}

TEST(Random, ExponentialIsPositive) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.exponential(1.0), 0.0);
  }
}

TEST(Random, BernoulliFrequency) {
  Random rng(8);
  int hits = 0;
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / samples, 0.3, 0.005);
}

TEST(Random, ForkedStreamsAreIndependent) {
  Random base(77);
  Random a = base.fork(1);
  Random b = base.fork(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.bits() == b.bits()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Random, ForkIsDeterministic) {
  Random base(77);
  Random a = base.fork(9);
  Random b = Random(77).fork(9);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.bits(), b.bits());
  }
}

TEST(Random, ShufflePreservesElements) {
  Random rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Random, ShuffleIsNotIdentityUsually) {
  Random rng(12);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);
}

}  // namespace
}  // namespace sops::rng
