// Tests for the deterministic RNG substrate (S2).
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "rng/random.hpp"
#include "rng/stream_bank.hpp"
#include "rng/xoshiro.hpp"
#include "util/assert.hpp"

namespace sops::rng {
namespace {

TEST(Xoshiro, DeterministicFromSeed) {
  Xoshiro256PlusPlus a(7);
  Xoshiro256PlusPlus b(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256PlusPlus a(7);
  Xoshiro256PlusPlus b(8);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro, JumpDecorrelates) {
  Xoshiro256PlusPlus a(7);
  Xoshiro256PlusPlus b(7);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Random, BelowIsInRange) {
  Random rng(1);
  for (std::uint32_t bound : {1u, 2u, 3u, 6u, 7u, 100u, 12345u}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Random, BelowIsApproximatelyUniform) {
  // Chi-square test over 6 buckets (the chain's direction draw).
  Random rng(42);
  std::array<int, 6> counts{};
  const int samples = 600000;
  for (int i = 0; i < samples; ++i) ++counts[rng.below(6)];
  const double expected = samples / 6.0;
  double chi2 = 0.0;
  for (const int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  // 5 degrees of freedom: P(chi2 > 20.5) < 0.001.
  EXPECT_LT(chi2, 20.5);
}

TEST(Random, BetweenIsInclusive) {
  Random rng(3);
  bool sawLo = false;
  bool sawHi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    sawLo |= v == -2;
    sawHi |= v == 2;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Random, UniformIsInUnitInterval) {
  Random rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Random, UniformMeanIsHalf) {
  Random rng(5);
  double sum = 0.0;
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / samples, 0.5, 0.005);
}

TEST(Random, ExponentialHasRequestedMean) {
  Random rng(6);
  for (const double rate : {0.5, 1.0, 4.0}) {
    double sum = 0.0;
    const int samples = 200000;
    for (int i = 0; i < samples; ++i) sum += rng.exponential(rate);
    EXPECT_NEAR(sum / samples, 1.0 / rate, 0.02 / rate);
  }
}

TEST(Random, ExponentialIsPositive) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.exponential(1.0), 0.0);
  }
}

TEST(Random, BernoulliFrequency) {
  Random rng(8);
  int hits = 0;
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / samples, 0.3, 0.005);
}

TEST(Random, ForkedStreamsAreIndependent) {
  Random base(77);
  Random a = base.fork(1);
  Random b = base.fork(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.bits() == b.bits()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Random, ForkIsDeterministic) {
  Random base(77);
  Random a = base.fork(9);
  Random b = Random(77).fork(9);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.bits(), b.bits());
  }
}

TEST(Random, ShufflePreservesElements) {
  Random rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Random, ShuffleIsNotIdentityUsually) {
  Random rng(12);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);
}

// --- SoA stream banks --------------------------------------------------
// The banks must be bit-equivalent to the AoS discipline they replaced:
// a StreamBank stream is particleStream(seed, i, lane) draw-for-draw, and
// PoissonClockBank::fillEpoch emits exactly the waiting times the old
// per-event loop drew.  This is what lets the sharded runners keep every
// pre-existing golden trajectory after the SoA/batched rewrite.

TEST(StreamBank, MatchesParticleStreamDrawForDraw) {
  constexpr std::uint64_t kSeed = 4242;
  constexpr std::uint64_t kLane = 2;
  constexpr std::size_t kCount = 17;
  StreamBank bank(kSeed, kCount, kLane);
  std::vector<Random> reference;
  for (std::size_t i = 0; i < kCount; ++i) {
    reference.push_back(particleStream(kSeed, i, kLane));
  }
  // Interleaved access across many short Use sessions: the store/reload
  // round-trip through the packed state must be lossless.
  Random order(5);
  for (int round = 0; round < 500; ++round) {
    const std::size_t i = order.below(static_cast<std::uint32_t>(kCount));
    StreamBank::Use use = bank.use(i);
    switch (order.below(4)) {
      case 0:
        ASSERT_EQ(use.rng().bits(), reference[i].bits());
        break;
      case 1:
        ASSERT_EQ(use.rng().uniform(), reference[i].uniform());
        break;
      case 2:
        ASSERT_EQ(use.rng().below(1000), reference[i].below(1000));
        break;
      default:
        ASSERT_EQ(use.rng().exponential(1.5), reference[i].exponential(1.5));
        break;
    }
  }
}

TEST(PoissonClockBank, FillEpochMatchesPerEventLoop) {
  constexpr std::uint64_t kSeed = 99;
  constexpr std::uint64_t kLane = 1;
  constexpr std::size_t kCount = 9;
  const std::vector<double> rates{0.25, 1.0, 1.0, 3.5, 2.0,
                                  1.0,  0.5, 4.0, 1.0};
  PoissonClockBank bank(kSeed, kCount, kLane, rates);
  EXPECT_DOUBLE_EQ(bank.totalRate(), 14.25);

  // Reference: the old AoS loop — one Random per particle, first firing
  // drawn at construction, then one scattered exponential per event.
  std::vector<Random> streams;
  std::vector<double> next;
  for (std::size_t i = 0; i < kCount; ++i) {
    streams.push_back(particleStream(kSeed, i, kLane));
    next.push_back(streams.back().exponential(rates[i]));
    ASSERT_EQ(bank.nextTime(i), next.back()) << "initial draw, particle " << i;
  }

  PoissonClockBank::EpochDraws draws;
  double now = 0.0;
  const double epochLength = 48.0 / bank.totalRate();
  for (int epoch = 0; epoch < 50; ++epoch) {
    const double epochEnd = now + epochLength;
    bank.fillEpoch(epochEnd, draws);
    for (std::size_t i = 0; i < kCount; ++i) {
      std::uint64_t k = draws.offsets[i];
      while (next[i] < epochEnd) {
        ASSERT_LT(k, draws.offsets[i + 1]);
        ASSERT_EQ(draws.times[k], next[i]) << "epoch " << epoch;
        ++k;
        next[i] += streams[i].exponential(rates[i]);
      }
      ASSERT_EQ(k, draws.offsets[i + 1]) << "extra draws, particle " << i;
      ASSERT_EQ(bank.nextTime(i), next[i]);
    }
    now = epochEnd;
  }
}

TEST(PoissonClockBank, UniformDefaultEqualsExplicitOnes) {
  PoissonClockBank a(7, 5, 1);
  PoissonClockBank b(7, 5, 1, std::vector<double>(5, 1.0));
  EXPECT_EQ(a.totalRate(), b.totalRate());
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(a.nextTime(i), b.nextTime(i));
    EXPECT_EQ(a.state(i), b.state(i));
  }
}

TEST(PoissonClockBank, RejectsBadRates) {
  EXPECT_THROW(PoissonClockBank(1, 3, 1, {1.0, 0.0, 1.0}),
               sops::ContractViolation);
  EXPECT_THROW(PoissonClockBank(1, 3, 1, {1.0, -2.0, 1.0}),
               sops::ContractViolation);
  EXPECT_THROW(PoissonClockBank(1, 3, 1, {1.0, 1.0}),
               sops::ContractViolation);
}

}  // namespace
}  // namespace sops::rng
