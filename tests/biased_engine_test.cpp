// The weight-model engine's correctness contract:
//
//  1. the compression scenario is *draw-for-draw identical* to the frozen
//     CompressionChain (golden trajectory — the engine is a no-op refactor
//     for the paper's chain M);
//  2. the separation scenario (color bit planes + power tables) is
//     draw-for-draw identical to the fixed extensions::SeparationChain,
//     whose sparse sameColorNeighbors counts independently re-derive every
//     Δhom — on the dense bitboard path AND on the sparse hash fallback;
//  3. at γ = 1 with swaps disabled, the separation scenario degenerates to
//     the compression chain exactly (the threshold-unification pin);
//  4. the alignment scenario preserves the movement invariants and
//     produces the ferromagnetic phase behavior;
//  5. scenario ensembles are deterministic and thread-count independent
//     (this test is also the TSan CI job's target);
//  6. the shared 32-bit particle-draw guard rejects truncating counts
//     (regression for the SeparationChain size_t→uint32 draw bug).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/biased_chain_engine.hpp"
#include "core/compression_chain.hpp"
#include "core/draw_guard.hpp"
#include "core/scenario_ensemble.hpp"
#include "core/scenario_models.hpp"
#include "extensions/separation.hpp"
#include "system/metrics.hpp"
#include "system/shapes.hpp"

namespace sops::core {
namespace {

using lattice::TriPoint;
using system::ParticleSystem;

std::vector<std::uint8_t> alternatingColors(std::size_t n) {
  return system::alternatingClasses(n, 2);
}

std::vector<std::uint8_t> cyclingOrientations(std::size_t n) {
  return system::alternatingClasses(n, 6);
}

SeparationModel::Options separationOptions(double lambda, double gamma) {
  SeparationModel::Options o;
  o.lambda = lambda;
  o.gamma = gamma;
  return o;
}

// -- 6. draw-bound guard ----------------------------------------------------

TEST(DrawGuard, AcceptsDrawableCountsAndRejectsTruncatingOnes) {
  EXPECT_EQ(checkedParticleDrawBound(1), 1u);
  EXPECT_EQ(checkedParticleDrawBound(0xFFFFFFFFull), 0xFFFFFFFFu);
  EXPECT_THROW((void)checkedParticleDrawBound(0), ContractViolation);
  // 2^32 truncates to 0, 2^32 + 5 to 5: both must throw instead.
  EXPECT_THROW((void)checkedParticleDrawBound(1ull << 32), ContractViolation);
  EXPECT_THROW((void)checkedParticleDrawBound((1ull << 32) + 5),
               ContractViolation);
}

// -- 1. compression golden trajectory ---------------------------------------

void expectCompressionGolden(const ParticleSystem& start, ChainOptions options,
                             std::uint64_t seed, std::uint64_t steps) {
  CompressionEngine engine(start, CompressionModel(options), seed);
  CompressionChain chain(start, options, seed);
  for (std::uint64_t i = 0; i < steps; ++i) {
    const EngineStepResult result = engine.step();
    const StepOutcome expected = chain.step();
    ASSERT_FALSE(result.wasAux);
    ASSERT_EQ(result.movement, expected) << "diverged at step " << i;
  }
  EXPECT_TRUE(engine.system().sameArrangement(chain.system()));
  EXPECT_EQ(engine.edges(), chain.edges());
  const ChainStats& es = engine.stats().movement;
  const ChainStats& cs = chain.stats();
  EXPECT_EQ(es.steps, cs.steps);
  EXPECT_EQ(es.accepted, cs.accepted);
  EXPECT_EQ(es.targetOccupied, cs.targetOccupied);
  EXPECT_EQ(es.rejectedGap, cs.rejectedGap);
  EXPECT_EQ(es.rejectedProperty, cs.rejectedProperty);
  EXPECT_EQ(es.rejectedFilter, cs.rejectedFilter);
}

TEST(EngineGolden, CompressionMatchesChainAcrossRegimes) {
  ChainOptions compress;
  compress.lambda = 4.0;
  expectCompressionGolden(system::lineConfiguration(60), compress, 1603, 20000);
  ChainOptions expand;
  expand.lambda = 2.0;
  expectCompressionGolden(system::lineConfiguration(60), expand, 77, 20000);
  ChainOptions disperse;
  disperse.lambda = 0.5;
  expectCompressionGolden(system::spiralConfiguration(64), disperse, 13, 15000);
}

TEST(EngineGolden, CompressionMatchesChainWithAblationSwitches) {
  ChainOptions p1Only;
  p1Only.lambda = 3.0;
  p1Only.allowProperty2 = false;
  expectCompressionGolden(system::lineConfiguration(40), p1Only, 31, 10000);
  ChainOptions noGap;
  noGap.lambda = 3.0;
  noGap.enforceGapCondition = false;
  expectCompressionGolden(system::lineConfiguration(40), noGap, 37, 10000);
  ChainOptions greedy;
  greedy.lambda = 4.0;
  greedy.greedy = true;
  expectCompressionGolden(system::lineConfiguration(40), greedy, 5, 10000);
}

// -- 2. separation golden vs the reference chain ----------------------------

void expectSeparationGolden(const ParticleSystem& start,
                            std::vector<std::uint8_t> colors,
                            SeparationModel::Options options,
                            std::uint64_t seed, std::uint64_t steps) {
  SeparationEngine engine(start, SeparationModel(options, colors), seed);
  extensions::SeparationOptions refOptions;
  refOptions.lambda = options.lambda;
  refOptions.gamma = options.gamma;
  refOptions.enableSwaps = options.enableSwaps;
  extensions::SeparationChain reference(start, std::move(colors), refOptions,
                                        seed);
  engine.run(steps);
  reference.run(steps);
  EXPECT_TRUE(engine.system().sameArrangement(reference.system()));
  EXPECT_EQ(engine.model().colors(), reference.colors());
  EXPECT_EQ(engine.stats().steps, reference.stats().steps);
  EXPECT_EQ(engine.stats().movement.accepted, reference.stats().movesAccepted);
  EXPECT_EQ(engine.stats().auxAccepted, reference.stats().swapsAccepted);
  EXPECT_EQ(engine.model().homogeneousEdges(engine.system()),
            reference.homogeneousEdges());
  EXPECT_EQ(engine.edges(), system::countEdges(engine.system()));
}

TEST(EngineGolden, SeparationMatchesReferenceChainDensePath) {
  expectSeparationGolden(system::lineConfiguration(40), alternatingColors(40),
                         separationOptions(4.0, 4.0), 7, 200000);
  expectSeparationGolden(system::spiralConfiguration(48), alternatingColors(48),
                         separationOptions(4.0, 0.25), 11, 200000);
  expectSeparationGolden(system::lineConfiguration(30), alternatingColors(30),
                         separationOptions(2.0, 6.0), 23, 200000);
}

TEST(EngineGolden, SeparationMatchesReferenceChainWithoutSwaps) {
  SeparationModel::Options noSwaps = separationOptions(3.0, 3.0);
  noSwaps.enableSwaps = false;
  expectSeparationGolden(system::lineConfiguration(24), alternatingColors(24),
                         noSwaps, 31, 100000);
}

TEST(EngineGolden, SeparationMatchesReferenceChainOnTiledWindow) {
  // A 20000-particle line exceeds the flat window cap (with proportional
  // margin), so ParticleSystem promotes to the tiled backend — the dense
  // plane-backed kernel must match the reference chain there too.
  const ParticleSystem start = system::lineConfiguration(20000);
  ASSERT_TRUE(start.grid().enabled());
  ASSERT_TRUE(start.grid().tiled());
  expectSeparationGolden(start, alternatingColors(20000),
                         separationOptions(4.0, 4.0), 41, 30000);
}

TEST(EngineGolden, SeparationMatchesReferenceChainOnSparseFallback) {
  // The sparse regime survives only behind forceSparseForTest(): every
  // query goes through the hash index and the model's plane-free fallback
  // is what executes.  It must stay golden too.
  ParticleSystem start = system::lineConfiguration(20000);
  start.forceSparseForTest();
  ASSERT_FALSE(start.grid().enabled());
  expectSeparationGolden(start, alternatingColors(20000),
                         separationOptions(4.0, 4.0), 41, 30000);
}

// -- 3. γ = 1 degenerates to the compression chain --------------------------

TEST(EngineGolden, SeparationAtGammaOneMatchesCompressionChain) {
  // With γ = 1 every γ-power is exactly 1.0, and with swaps disabled the
  // draw stream is the chain's: the two kernels must produce the identical
  // trajectory.  This pins the threshold unification (shared lambdaPower).
  SeparationModel::Options options = separationOptions(4.0, 1.0);
  options.enableSwaps = false;
  const ParticleSystem start = system::lineConfiguration(50);
  SeparationEngine engine(start, SeparationModel(options,
                                                 alternatingColors(50)),
                          1603);
  ChainOptions chainOptions;
  chainOptions.lambda = 4.0;
  CompressionChain chain(start, chainOptions, 1603);
  for (int i = 0; i < 50000; ++i) {
    const EngineStepResult result = engine.step();
    ASSERT_EQ(result.movement, chain.step()) << "diverged at step " << i;
  }
  EXPECT_TRUE(engine.system().sameArrangement(chain.system()));
  EXPECT_EQ(engine.edges(), chain.edges());
}

TEST(Separation, MovementThresholdMatchesCompressionChainAtGammaOne) {
  // Analytic form of the same pin: for every reachable Δe the separation
  // movement threshold at γ = 1 equals the chain's Metropolis ratio from
  // the one shared lambdaPower, bit for bit.
  extensions::SeparationOptions options;
  options.lambda = 3.7;
  options.gamma = 1.0;
  for (int edgeDelta = -5; edgeDelta <= 5; ++edgeDelta) {
    for (int homDelta = -5; homDelta <= 5; ++homDelta) {
      EXPECT_EQ(
          extensions::separationMovementThreshold(options, edgeDelta, homDelta),
          lambdaPower(options.lambda, edgeDelta));
    }
  }
  EXPECT_EQ(extensions::separationSwapThreshold(options, 7), 1.0);
}

// -- invariants of the two new scenarios ------------------------------------

TEST(SeparationEngine, PreservesInvariantsAndSegregates) {
  const ParticleSystem start = system::lineConfiguration(40);
  SeparationEngine segregate(
      start, SeparationModel(separationOptions(4.0, 6.0),
                             alternatingColors(40)),
      3);
  SeparationEngine integrate(
      start,
      SeparationModel(separationOptions(4.0, 1.0 / 6.0), alternatingColors(40)),
      3);
  segregate.run(2000000);
  integrate.run(2000000);
  EXPECT_EQ(segregate.model().colorOneCount(), 20u);
  EXPECT_EQ(integrate.model().colorOneCount(), 20u);
  EXPECT_TRUE(system::isConnected(segregate.system()));
  EXPECT_EQ(system::countHoles(segregate.system()), 0);
  const double homSeg =
      static_cast<double>(
          segregate.model().homogeneousEdges(segregate.system())) /
      static_cast<double>(system::countEdges(segregate.system()));
  const double homInt =
      static_cast<double>(
          integrate.model().homogeneousEdges(integrate.system())) /
      static_cast<double>(system::countEdges(integrate.system()));
  EXPECT_GT(homSeg, homInt + 0.2);
}

TEST(AlignmentEngine, PreservesInvariantsAndAligns) {
  const ParticleSystem start = system::lineConfiguration(40);
  AlignmentModel::Options ferro;
  ferro.lambda = 4.0;
  ferro.kappa = 6.0;
  AlignmentModel::Options para;
  para.lambda = 4.0;
  para.kappa = 1.0 / 6.0;
  AlignmentEngine aligned(start, AlignmentModel(ferro, cyclingOrientations(40)),
                          5);
  AlignmentEngine disordered(start,
                             AlignmentModel(para, cyclingOrientations(40)), 5);
  aligned.run(2000000);
  disordered.run(2000000);
  EXPECT_TRUE(system::isConnected(aligned.system()));
  EXPECT_EQ(system::countHoles(aligned.system()), 0);
  EXPECT_EQ(aligned.system().size(), 40u);
  EXPECT_GT(aligned.stats().auxAccepted, 0u);
  const double aliFerro =
      static_cast<double>(aligned.model().alignedEdges(aligned.system())) /
      static_cast<double>(system::countEdges(aligned.system()));
  const double aliPara =
      static_cast<double>(
          disordered.model().alignedEdges(disordered.system())) /
      static_cast<double>(system::countEdges(disordered.system()));
  // κ = 6 should drive most edges to a common orientation; κ < 1 keeps the
  // system near the 1/6 random-agreement baseline.
  EXPECT_GT(aliFerro, aliPara + 0.3);
  EXPECT_LT(aliPara, 0.4);
}

TEST(AlignmentEngine, CompressesUnderLargeLambda) {
  AlignmentModel::Options options;
  options.lambda = 4.0;
  options.kappa = 2.0;
  AlignmentEngine engine(system::lineConfiguration(40),
                         AlignmentModel(options, cyclingOrientations(40)), 9);
  const std::int64_t initial = system::perimeter(engine.system());
  engine.run(2500000);
  EXPECT_LT(system::perimeter(engine.system()), (2 * initial) / 3);
  EXPECT_EQ(engine.edges(), system::countEdges(engine.system()));
}

// -- 5. scenario ensembles (the TSan job's primary target) ------------------

std::vector<ScenarioReplicaSpec<SeparationModel>> separationGrid(
    int replicas, std::uint64_t iterations) {
  std::vector<ScenarioReplicaSpec<SeparationModel>> specs;
  for (int r = 0; r < replicas; ++r) {
    ScenarioReplicaSpec<SeparationModel> spec;
    spec.label = "seed=" + std::to_string(r + 1);
    spec.iterations = iterations;
    spec.checkpointEvery = iterations / 4;
    const auto seed = static_cast<std::uint64_t>(r + 1);
    const double gamma = r % 2 == 0 ? 4.0 : 0.5;
    spec.makeEngine = [seed, gamma] {
      return SeparationEngine(
          system::lineConfiguration(30),
          SeparationModel(separationOptions(4.0, gamma), alternatingColors(30)),
          seed);
    };
    spec.observable = [](const SeparationEngine& engine) {
      return static_cast<double>(
          engine.model().homogeneousEdges(engine.system()));
    };
    spec.finish = [](const SeparationEngine& engine,
                     std::vector<std::pair<std::string, double>>& metrics) {
      metrics.emplace_back(
          "perimeter",
          static_cast<double>(system::perimeter(engine.system())));
    };
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST(ScenarioEnsemble, DeterministicAndThreadCountIndependent) {
  const auto specs = separationGrid(8, 40000);
  const auto one = runScenarioEnsemble<SeparationModel>(specs, 1);
  const auto four = runScenarioEnsemble<SeparationModel>(specs, 4);
  ASSERT_EQ(one.size(), 8u);
  ASSERT_EQ(four.size(), 8u);
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].index, i);
    EXPECT_EQ(one[i].label, four[i].label);
    EXPECT_EQ(one[i].edges, four[i].edges);
    EXPECT_EQ(one[i].stats.movement.accepted, four[i].stats.movement.accepted);
    EXPECT_EQ(one[i].stats.auxAccepted, four[i].stats.auxAccepted);
    ASSERT_EQ(one[i].samples.size(), four[i].samples.size());
    for (std::size_t s = 0; s < one[i].samples.size(); ++s) {
      EXPECT_EQ(one[i].samples[s].value, four[i].samples[s].value);
    }
    ASSERT_EQ(one[i].metrics.size(), 1u);
    EXPECT_EQ(one[i].metrics[0].second, four[i].metrics[0].second);
  }
}

TEST(ScenarioEnsemble, CompressionReplicaMatchesDirectEngineRun) {
  ScenarioReplicaSpec<CompressionModel> spec;
  spec.iterations = 30000;
  ChainOptions options;
  options.lambda = 4.0;
  spec.makeEngine = [options] {
    return CompressionEngine(system::lineConfiguration(40),
                             CompressionModel(options), 99);
  };
  const auto results = runScenarioEnsemble<CompressionModel>(
      std::span<const ScenarioReplicaSpec<CompressionModel>>(&spec, 1), 2);
  CompressionEngine direct(system::lineConfiguration(40),
                           CompressionModel(options), 99);
  direct.run(30000);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].edges, direct.edges());
  EXPECT_EQ(results[0].stats.movement.accepted,
            direct.stats().movement.accepted);
}

TEST(ScenarioEnsemble, AlignmentGridRuns) {
  std::vector<ScenarioReplicaSpec<AlignmentModel>> specs;
  for (const double kappa : {0.5, 4.0}) {
    ScenarioReplicaSpec<AlignmentModel> spec;
    spec.iterations = 40000;
    spec.makeEngine = [kappa] {
      AlignmentModel::Options options;
      options.lambda = 4.0;
      options.kappa = kappa;
      return AlignmentEngine(system::lineConfiguration(24),
                             AlignmentModel(options, cyclingOrientations(24)),
                             17);
    };
    spec.finish = [](const AlignmentEngine& engine,
                     std::vector<std::pair<std::string, double>>& metrics) {
      metrics.emplace_back(
          "aligned",
          static_cast<double>(engine.model().alignedEdges(engine.system())));
    };
    specs.push_back(std::move(spec));
  }
  const auto results = runScenarioEnsemble<AlignmentModel>(specs, 2);
  ASSERT_EQ(results.size(), 2u);
  // κ = 4 replica ends more aligned than the κ = 0.5 one.
  EXPECT_GT(results[1].metrics[0].second, results[0].metrics[0].second);
}

}  // namespace
}  // namespace sops::core
