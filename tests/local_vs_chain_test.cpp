// Differential verification harness: Algorithm A (local, asynchronous,
// message-free) against the Markov chain M it claims to emulate (§3.2).
//
// For small n the exact stationary distribution π(σ) = λ^{e(σ)}/Z is
// available by full enumeration (enumeration/exact_distribution), so A's
// empirical distribution over its *quiescent* configurations (all
// particles contracted — the states of M, §3.2 footnote 2) can be tested
// against π with a chi-square goodness of fit.  §3.2 also argues π is
// invariant under heterogeneous Poisson clock rates; the harness re-runs
// the same test with skewed rates, and through the sharded concurrent
// runner, whose epoch/halo schedule is yet another legal asynchronous
// execution.
//
// Pre-registered test design (chosen before looking at any outcomes, and
// documented here so the thresholds are not tunable after the fact):
//   - burn-in: 50,000 activations;
//   - sampling: one instant every 48 activations, keeping only quiescent
//     instants (quiescent sampling is the faithful projection; raw
//     time-averages carry a known ~0.05 TV congestion bias, measured in
//     bench_local_algorithm);
//   - sample size: 150,000 instants for n = 4 (44 states), 200,000 for
//     n = 5 (186 states); expected cells below 5 are pooled (Cochran);
//   - acceptance: chi-square p > 0.01.
// The stride keeps successive samples ≈ 12 expected activations per
// particle apart (n=4), past the small systems' mixing time, so the
// chi-square iid approximation is sound; the fixed seeds below make the
// tests reproducible rather than flaky.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "amoebot/local_compression.hpp"
#include "amoebot/parallel_scheduler.hpp"
#include "amoebot/scheduler.hpp"
#include "analysis/stats.hpp"
#include "core/compression_chain.hpp"
#include "enumeration/exact_distribution.hpp"
#include "system/canonical.hpp"
#include "system/metrics.hpp"
#include "system/shapes.hpp"

namespace sops::amoebot {
namespace {

using system::ParticleSystem;

constexpr int kBurnIn = 50000;
constexpr int kStride = 48;
constexpr double kAcceptP = 0.01;

/// Canonical-key -> state-index map over the enumerated support Ω*.
std::unordered_map<std::string, std::size_t> stateIndex(
    const enumeration::ExactEnsemble& ensemble) {
  std::unordered_map<std::string, std::size_t> indexOf;
  for (std::size_t i = 0; i < ensemble.configs().size(); ++i) {
    indexOf.emplace(
        system::canonicalKeyFromPoints(ensemble.configs()[i].points), i);
  }
  return indexOf;
}

/// Runs A under a PoissonScheduler and histograms its quiescent
/// configurations over Ω*.  Returns observed counts aligned with
/// ensemble.configs().
std::vector<double> sampleQuiescent(const enumeration::ExactEnsemble& ensemble,
                                    double lambda, std::vector<double> rates,
                                    int instants, std::uint64_t seed) {
  const auto indexOf = stateIndex(ensemble);
  rng::Random rng(seed);
  AmoebotSystem sys(system::lineConfiguration(ensemble.particles()), rng);
  const LocalCompressionAlgorithm algo({lambda});
  PoissonScheduler scheduler(sys.size(), rng::Random(seed + 1),
                             std::move(rates));
  rng::Random coin(seed + 2);
  for (int i = 0; i < kBurnIn; ++i) {
    algo.activate(sys, scheduler.next().particle, coin);
  }
  std::vector<double> counts(ensemble.configs().size(), 0.0);
  for (int s = 0; s < instants; ++s) {
    for (int i = 0; i < kStride; ++i) {
      algo.activate(sys, scheduler.next().particle, coin);
    }
    if (sys.expandedCount() != 0) continue;  // quiescent instants only
    const auto it = indexOf.find(system::canonicalKey(sys.tailConfiguration()));
    if (it == indexOf.end()) {
      ADD_FAILURE() << "A left the support of pi";
      break;
    }
    counts[it->second] += 1.0;
  }
  return counts;
}

void expectMatchesPi(const enumeration::ExactEnsemble& ensemble, double lambda,
                     const std::vector<double>& counts) {
  const std::vector<double> exact = ensemble.stationary(lambda);
  double total = 0.0;
  for (const double c : counts) total += c;
  ASSERT_GT(total, 1000.0) << "not enough quiescent samples";
  const analysis::ChiSquareResult gof =
      analysis::chiSquareGoodnessOfFit(counts, exact);
  EXPECT_GT(gof.pValue, kAcceptP)
      << "chi2 = " << gof.statistic << ", dof = " << gof.dof
      << ", samples = " << total;
}

TEST(LocalVsChain, QuiescentDistributionMatchesPiN4) {
  const enumeration::ExactEnsemble ensemble(4);
  ASSERT_EQ(ensemble.configs().size(), 44u);
  const double lambda = 2.0;
  expectMatchesPi(ensemble, lambda,
                  sampleQuiescent(ensemble, lambda, {}, 150000, 19));
}

TEST(LocalVsChain, QuiescentDistributionMatchesPiN5) {
  const enumeration::ExactEnsemble ensemble(5);
  const double lambda = 2.0;
  expectMatchesPi(ensemble, lambda,
                  sampleQuiescent(ensemble, lambda, {}, 200000, 29));
}

TEST(LocalVsChain, HeterogeneousRatesLeavePiUnchanged) {
  // §3.2's theorem-level claim: per-particle Poisson rates a_P scale each
  // particle's activation frequency but not the stationary distribution.
  const enumeration::ExactEnsemble ensemble(4);
  const double lambda = 2.0;
  expectMatchesPi(
      ensemble, lambda,
      sampleQuiescent(ensemble, lambda, {0.5, 1.0, 2.0, 4.0}, 150000, 37));
}

TEST(LocalVsChain, ShardedRunnerSamplesPi) {
  // The sharded runner's epoch/halo schedule is another admissible
  // asynchronous execution: its quiescent configurations must sample the
  // same π.  Epochs are sized to the harness stride so each runAtLeast()
  // burst is one sampling interval.
  const enumeration::ExactEnsemble ensemble(4);
  const double lambda = 2.0;
  const auto indexOf = stateIndex(ensemble);
  rng::Random rng(41);
  AmoebotSystem sys(system::lineConfiguration(ensemble.particles()), rng);
  const LocalCompressionAlgorithm algo({lambda});
  ShardedOptions options;
  options.targetEventsPerEpoch = kStride;
  ShardedPoissonRunner runner(sys, algo, 43, options);
  runner.runAtLeast(kBurnIn);
  std::vector<double> counts(ensemble.configs().size(), 0.0);
  for (int s = 0; s < 120000; ++s) {
    runner.runAtLeast(kStride);
    if (sys.expandedCount() != 0) continue;
    const auto it = indexOf.find(system::canonicalKey(sys.tailConfiguration()));
    ASSERT_NE(it, indexOf.end());
    counts[it->second] += 1.0;
  }
  expectMatchesPi(ensemble, lambda, counts);
}

TEST(LocalVsChain, PerimeterDistributionMatchesChainKS) {
  // Beyond enumerable sizes: at n = 12 the exact π is out of reach of the
  // chi-square harness, but A and M must still agree on observables.
  // Two-sample KS between M's perimeter samples and A's quiescent
  // perimeter samples (strides of 1000 steps/activations so samples
  // decorrelate; ties make the KS p-value conservative).  Probed across
  // seeds before fixing this one: p ∈ [0.22, 0.99].
  const std::int64_t n = 12;
  const double lambda = 4.0;
  constexpr int kSamples = 1500;
  constexpr int kSampleStride = 1000;

  core::ChainOptions chainOptions;
  chainOptions.lambda = lambda;
  core::CompressionChain chain(system::lineConfiguration(n), chainOptions, 247);
  chain.run(100000);  // burn-in
  std::vector<double> chainPerimeters;
  chainPerimeters.reserve(kSamples);
  for (int s = 0; s < kSamples; ++s) {
    chain.run(kSampleStride);
    chainPerimeters.push_back(
        static_cast<double>(system::perimeter(chain.system())));
  }

  rng::Random rng(253);
  AmoebotSystem sys(system::lineConfiguration(n), rng);
  const LocalCompressionAlgorithm algo({lambda});
  PoissonScheduler scheduler(sys.size(), rng::Random(259));
  rng::Random coin(261);
  for (int i = 0; i < 100000; ++i) {
    algo.activate(sys, scheduler.next().particle, coin);
  }
  std::vector<double> localPerimeters;
  localPerimeters.reserve(kSamples);
  while (localPerimeters.size() < static_cast<std::size_t>(kSamples)) {
    for (int i = 0; i < kSampleStride; ++i) {
      algo.activate(sys, scheduler.next().particle, coin);
    }
    if (sys.expandedCount() != 0) continue;
    localPerimeters.push_back(
        static_cast<double>(system::perimeter(sys.tailConfiguration())));
  }

  const analysis::KsResult ks =
      analysis::ksTwoSample(chainPerimeters, localPerimeters);
  EXPECT_GT(ks.pValue, 0.001) << "D = " << ks.statistic;
}

}  // namespace
}  // namespace sops::amoebot
