// Cross-validation of the three perimeter mechanisms (S4): closed form
// p = 3n − e − 3 + 3h, the dual-hexagon cycle tracer, and the vertex-walk
// tracer.  Exercises Lemma 2.3 and the 2k+6 duality of Lemma 4.3 / Fig 9b.
#include <gtest/gtest.h>

#include <vector>

#include "enumeration/config_enum.hpp"
#include "rng/random.hpp"
#include "system/boundary.hpp"
#include "system/metrics.hpp"
#include "system/particle_system.hpp"
#include "system/shapes.hpp"

namespace sops::system {
namespace {

using lattice::TriPoint;

TEST(Boundary, SingleParticle) {
  const ParticleSystem sys(std::vector<TriPoint>{{0, 0}});
  EXPECT_EQ(traceExternalWalk(sys), 0);
  const HexBoundaryDecomposition d = hexBoundaryCycles(sys);
  EXPECT_EQ(d.externalHexLength, 6);  // a single hexagon
  EXPECT_TRUE(d.holeHexLengths.empty());
  EXPECT_EQ(perimeterTraced(sys), 0);
}

TEST(Boundary, PairCutEdgeCountedTwice) {
  const ParticleSystem sys(std::vector<TriPoint>{{0, 0}, {1, 0}});
  EXPECT_EQ(traceExternalWalk(sys), 2);
  const HexBoundaryDecomposition d = hexBoundaryCycles(sys);
  EXPECT_EQ(d.externalHexLength, 10);  // 2*2+6
  EXPECT_EQ(perimeterTraced(sys), 2);
}

TEST(Boundary, Triangle) {
  const ParticleSystem sys(std::vector<TriPoint>{{0, 0}, {1, 0}, {0, 1}});
  EXPECT_EQ(traceExternalWalk(sys), 3);
  EXPECT_EQ(hexBoundaryCycles(sys).externalHexLength, 12);  // 2*3+6
  EXPECT_EQ(perimeterTraced(sys), 3);
}

TEST(Boundary, LineWalksBothSides) {
  const ParticleSystem sys = lineConfiguration(6);
  EXPECT_EQ(traceExternalWalk(sys), 10);  // 2n-2
  EXPECT_EQ(perimeterTraced(sys), 10);
}

TEST(Boundary, HexagonRingHasHoleCycle) {
  const ParticleSystem sys = ringConfiguration(1);
  const HexBoundaryDecomposition d = hexBoundaryCycles(sys);
  EXPECT_EQ(d.externalHexLength, 2 * 6 + 6);
  ASSERT_EQ(d.holeHexLengths.size(), 1u);
  EXPECT_EQ(d.holeHexLengths[0], 2 * 6 - 6);  // hole walk of length 6
  EXPECT_EQ(perimeterTraced(sys), 12);
  EXPECT_EQ(perimeter(sys), 12);
}

TEST(Boundary, RingRadiusTwo) {
  const ParticleSystem sys = ringConfiguration(2);
  EXPECT_EQ(perimeterTraced(sys), perimeter(sys));
  const HexBoundaryDecomposition d = hexBoundaryCycles(sys);
  ASSERT_EQ(d.holeHexLengths.size(), 1u);
  // Hole region: 7 cells (hexagon of radius 1), its boundary walk has
  // length 12, so the dual hole cycle has 2*12-6 = 18 edges.
  EXPECT_EQ(d.holeHexLengths[0], 18);
}

TEST(Boundary, ExternalWalkMatchesDualEverywhereSmall) {
  // Exhaustive: every connected configuration with up to 7 particles.
  for (int n = 1; n <= 7; ++n) {
    for (const enumeration::EnumeratedConfig& config :
         enumeration::enumerateConnected(n)) {
      const ParticleSystem sys(config.points);
      const HexBoundaryDecomposition d = hexBoundaryCycles(sys);
      const std::int64_t external = traceExternalWalk(sys);
      ASSERT_EQ(d.externalHexLength, 2 * external + 6)
          << "n=" << n << " config mismatch";
      ASSERT_EQ(perimeterTraced(sys), config.perimeter) << "n=" << n;
    }
  }
}

TEST(Boundary, TracedMatchesClosedFormOnRandomConfigs) {
  rng::Random rng(424242);
  for (int trial = 0; trial < 50; ++trial) {
    const std::int64_t n = 2 + static_cast<std::int64_t>(rng.below(80));
    const ParticleSystem sys = randomConnected(n, rng);
    ASSERT_EQ(perimeterTraced(sys), perimeter(sys)) << "trial " << trial;
  }
}

TEST(Boundary, TracedMatchesClosedFormOnDendrites) {
  rng::Random rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const ParticleSystem sys = randomDendrite(40, rng);
    ASSERT_EQ(perimeterTraced(sys), perimeter(sys));
  }
}

TEST(Boundary, SpiralPerimetersMatch) {
  for (std::int64_t n = 1; n <= 120; ++n) {
    const ParticleSystem sys = spiralConfiguration(n);
    ASSERT_EQ(perimeterTraced(sys), perimeter(sys)) << n;
  }
}

TEST(Boundary, MultiHoleConfiguration) {
  // Two radius-1 rings sharing one particle: two holes.
  std::vector<TriPoint> cells;
  const ParticleSystem ringA = ringConfiguration(1);
  for (const TriPoint p : ringA.positions()) cells.push_back(p);
  // Second ring centered at (3,0): shares cell (1,0)? ring around (3,0)
  // occupies distance-1 cells of (3,0): (4,0),(3,1),(2,1),(2,0),(3,-1),(4,-1).
  const TriPoint shift{3, 0};
  for (const TriPoint p : ringA.positions()) {
    const TriPoint q = p + shift;
    bool duplicate = false;
    for (const TriPoint existing : cells) duplicate |= existing == q;
    if (!duplicate) cells.push_back(q);
  }
  const ParticleSystem sys(cells);
  ASSERT_TRUE(isConnected(sys));
  EXPECT_EQ(countHoles(sys), 2);
  EXPECT_EQ(perimeterTraced(sys), perimeter(sys));
}

}  // namespace
}  // namespace sops::system
