// Golden-trajectory equivalence for Algorithm A: the optimized amoebot
// layer (bit-plane occupancy, N* ring gathers, per-λ decision table) must
// be *draw-for-draw identical* to the frozen seed kernel in
// amoebot/reference_local_kernel.hpp — same ActivationResult per
// activation, same RNG consumption, same tails/heads/flags — under every
// scheduler, with and without faults, on the dense fast path and on the
// sparse fallback.  This is what keeps the stationary-distribution and
// differential tests meaningful after hot-path rewrites: the optimization
// is required to be a no-op on the trajectory.
//
// The file also pins the sharded runner's determinism contract: the
// trajectory is a pure function of the seed — independent of the worker
// thread count — and the halo/deferral machinery actually executes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "amoebot/faults.hpp"
#include "amoebot/local_compression.hpp"
#include "amoebot/parallel_scheduler.hpp"
#include "amoebot/reference_local_kernel.hpp"
#include "amoebot/scheduler.hpp"
#include "system/metrics.hpp"
#include "system/shapes.hpp"

namespace sops::amoebot {
namespace {

using lattice::TriPoint;
using reference::ReferenceAmoebotSystem;
using reference::ReferenceLocalKernel;
using system::ParticleSystem;

void expectSameState(const AmoebotSystem& fast,
                     const ReferenceAmoebotSystem& ref) {
  ASSERT_EQ(fast.size(), ref.size());
  EXPECT_EQ(fast.expandedCount(), ref.expandedCount());
  for (std::size_t id = 0; id < fast.size(); ++id) {
    const Particle& a = fast.particle(id);
    const Particle& b = ref.particle(id);
    ASSERT_EQ(a.tail, b.tail) << "particle " << id;
    ASSERT_EQ(a.head, b.head) << "particle " << id;
    ASSERT_EQ(a.expanded, b.expanded) << "particle " << id;
    ASSERT_EQ(a.flag, b.flag) << "particle " << id;
    ASSERT_EQ(a.orientationOffset, b.orientationOffset) << "particle " << id;
    ASSERT_EQ(a.mirrored, b.mirrored) << "particle " << id;
  }
}

enum class SchedulerKind { Sequential, RoundRobin, Poisson };

void expectGoldenTrajectory(const ParticleSystem& start, double lambda,
                            SchedulerKind kind, std::uint64_t steps,
                            const FaultPlan& faults = {},
                            bool forceSparse = false) {
  // Identically seeded construction draws on both sides.
  rng::Random ctorFast(101);
  rng::Random ctorRef(101);
  AmoebotSystem fast(start, ctorFast);
  ReferenceAmoebotSystem ref(start, ctorRef);
  if (forceSparse) {
    fast.forceSparseForTest();
    ASSERT_FALSE(fast.fastPathEnabled());
  }
  applyFaults(fast, faults);
  for (const std::size_t id : faults.crashed) ref.markCrashed(id);
  for (const std::size_t id : faults.byzantine) ref.markByzantine(id);

  const LocalCompressionAlgorithm algo({lambda});
  const ReferenceLocalKernel refAlgo({lambda});
  rng::Random coinFast(103);
  rng::Random coinRef(103);

  // One activation stream per side, identically seeded, so any divergence
  // in RNG consumption shows up as a divergence in the stream itself.
  SequentialScheduler seqFast(start.size(), rng::Random(105));
  SequentialScheduler seqRef(start.size(), rng::Random(105));
  RoundRobinScheduler rrFast(start.size(), rng::Random(105));
  RoundRobinScheduler rrRef(start.size(), rng::Random(105));
  PoissonScheduler poiFast(start.size(), rng::Random(105));
  PoissonScheduler poiRef(start.size(), rng::Random(105));

  for (std::uint64_t i = 0; i < steps; ++i) {
    std::size_t idFast = 0;
    std::size_t idRef = 0;
    switch (kind) {
      case SchedulerKind::Sequential:
        idFast = seqFast.next();
        idRef = seqRef.next();
        break;
      case SchedulerKind::RoundRobin:
        idFast = rrFast.next();
        idRef = rrRef.next();
        break;
      case SchedulerKind::Poisson: {
        const Activation a = poiFast.next();
        const Activation b = poiRef.next();
        ASSERT_EQ(a.particle, b.particle) << "scheduler diverged at " << i;
        ASSERT_EQ(a.time, b.time) << "scheduler diverged at " << i;
        idFast = a.particle;
        idRef = b.particle;
        break;
      }
    }
    ASSERT_EQ(idFast, idRef);
    const ActivationResult fastResult = algo.activate(fast, idFast, coinFast);
    const ActivationResult refResult = refAlgo.activate(ref, idRef, coinRef);
    ASSERT_EQ(fastResult, refResult) << "activation " << i;
  }
  expectSameState(fast, ref);
  // The coins must have been consumed in lockstep too.
  EXPECT_EQ(coinFast.bits(), coinRef.bits());
}

TEST(LocalGolden, SequentialSchedulerLineCompression) {
  expectGoldenTrajectory(system::lineConfiguration(40), 4.0,
                         SchedulerKind::Sequential, 300000);
}

TEST(LocalGolden, SequentialSchedulerExpansionRegime) {
  expectGoldenTrajectory(system::spiralConfiguration(48), 0.5,
                         SchedulerKind::Sequential, 200000);
}

TEST(LocalGolden, RoundRobinScheduler) {
  expectGoldenTrajectory(system::lineConfiguration(40), 4.0,
                         SchedulerKind::RoundRobin, 300000);
}

TEST(LocalGolden, PoissonScheduler) {
  expectGoldenTrajectory(system::lineConfiguration(40), 4.0,
                         SchedulerKind::Poisson, 300000);
}

TEST(LocalGolden, PoissonSchedulerSpiralNearCritical) {
  expectGoldenTrajectory(system::spiralConfiguration(60), 2.0,
                         SchedulerKind::Poisson, 200000);
}

TEST(LocalGolden, WithCrashAndByzantineFaults) {
  FaultPlan plan;
  plan.crashed = {3, 11, 17};
  plan.byzantine = {5, 23};
  expectGoldenTrajectory(system::lineConfiguration(30), 4.0,
                         SchedulerKind::Poisson, 200000, plan);
}

TEST(LocalGolden, TiledWindowMatchesReference) {
  // A configuration too spread out for one flat window (the far singleton
  // keeps the bounding box over the 32 MiB flat cap) promotes the bit
  // planes to the tiled backend: the dense path must stay golden there.
  std::vector<TriPoint> points;
  for (std::int32_t i = 0; i < 20; ++i) points.push_back({i, 0});
  points.push_back({60000, 20000});
  const ParticleSystem start(points);
  {
    rng::Random probe(1);
    AmoebotSystem sys(start, probe);
    ASSERT_TRUE(sys.fastPathEnabled()) << "expected tiled promotion";
    ASSERT_TRUE(sys.occupancyGrid().tiled());
  }
  expectGoldenTrajectory(start, 4.0, SchedulerKind::Sequential, 150000);
}

TEST(LocalGolden, SparseFallbackMatchesReference) {
  // The sparse regime survives only behind forceSparseForTest() (the hash
  // index serves every query): the fallback path must stay golden too.
  expectGoldenTrajectory(system::lineConfiguration(30), 4.0,
                         SchedulerKind::Sequential, 150000, {},
                         /*forceSparse=*/true);
}

// --- sharded runner determinism ---------------------------------------

struct ShardedOutcome {
  std::vector<TriPoint> tails;
  std::vector<bool> flags;
  std::uint64_t activations = 0;
  std::uint64_t sweepActivations = 0;
  double now = 0.0;
};

ShardedOutcome runSharded(unsigned threads, std::uint64_t seed,
                          std::uint64_t minActivations) {
  rng::Random ctor(7);
  AmoebotSystem sys(system::lineConfiguration(400), ctor);
  const LocalCompressionAlgorithm algo({4.0});
  ShardedOptions options;
  options.threads = threads;
  ShardedPoissonRunner runner(sys, algo, seed, options);
  runner.runAtLeast(minActivations);
  ShardedOutcome out;
  for (std::size_t id = 0; id < sys.size(); ++id) {
    out.tails.push_back(sys.particle(id).tail);
    out.flags.push_back(sys.particle(id).flag);
  }
  out.activations = runner.activations();
  out.sweepActivations = runner.sweepActivations();
  out.now = runner.now();
  return out;
}

TEST(ShardedRunner, TrajectoryIndependentOfThreadCount) {
  const ShardedOutcome one = runSharded(1, 2016, 250000);
  const ShardedOutcome three = runSharded(3, 2016, 250000);
  const ShardedOutcome eight = runSharded(8, 2016, 250000);
  EXPECT_EQ(one.tails, three.tails);
  EXPECT_EQ(one.flags, three.flags);
  EXPECT_EQ(one.activations, three.activations);
  EXPECT_EQ(one.sweepActivations, three.sweepActivations);
  EXPECT_EQ(one.now, three.now);
  EXPECT_EQ(one.tails, eight.tails);
  EXPECT_EQ(one.activations, eight.activations);
  // The line spans several 64-column stripes, so both execution paths must
  // actually have run.
  EXPECT_GT(one.sweepActivations, 0u);
  EXPECT_LT(one.sweepActivations, one.activations);
}

TEST(ShardedRunner, RepeatableForSeedAndSensitiveToIt) {
  const ShardedOutcome a = runSharded(2, 99, 120000);
  const ShardedOutcome b = runSharded(2, 99, 120000);
  const ShardedOutcome c = runSharded(2, 100, 120000);
  EXPECT_EQ(a.tails, b.tails);
  EXPECT_EQ(a.activations, b.activations);
  EXPECT_NE(a.tails, c.tails);
}

TEST(ShardedRunner, PreservesInvariantsAndCompresses) {
  rng::Random ctor(11);
  AmoebotSystem sys(system::lineConfiguration(100), ctor);
  const LocalCompressionAlgorithm algo({4.0});
  ShardedPoissonRunner runner(sys, algo, 13);
  const std::int64_t initial = system::perimeter(sys.tailConfiguration());
  std::int64_t best = initial;
  for (int burst = 0; burst < 12; ++burst) {
    runner.runAtLeast(500000);
    const ParticleSystem tails = sys.tailConfiguration();
    ASSERT_TRUE(system::isConnected(tails)) << "burst " << burst;
    best = std::min(best, system::perimeter(tails));
  }
  // At equilibrium the perimeter fluctuates by ±15-20 around its mean at
  // this size, so pin compression by the best burst boundary (strict
  // bound) and the endpoint (loose bound) rather than one knife-edge
  // sample of the stationary distribution.
  EXPECT_LT(best, (3 * initial) / 5);
  EXPECT_LT(system::perimeter(sys.tailConfiguration()), (2 * initial) / 3);
  // Between bursts the id index is restored: cell views are consistent.
  std::size_t expanded = 0;
  for (std::size_t id = 0; id < sys.size(); ++id) {
    const Particle& p = sys.particle(id);
    if (p.expanded) ++expanded;
    const AmoebotSystem::CellView view = sys.at(p.tail);
    ASSERT_EQ(view.particle, static_cast<std::int32_t>(id));
  }
  EXPECT_EQ(expanded, sys.expandedCount());
}

TEST(ShardedRunner, HeterogeneousRatesRunAndStayDeterministic) {
  const auto run = [](unsigned threads) {
    rng::Random ctor(21);
    AmoebotSystem sys(system::lineConfiguration(200), ctor);
    const LocalCompressionAlgorithm algo({4.0});
    ShardedOptions options;
    options.threads = threads;
    options.rates.assign(sys.size(), 1.0);
    for (std::size_t i = 0; i < options.rates.size(); ++i) {
      options.rates[i] = 0.5 + static_cast<double>(i % 7);
    }
    ShardedPoissonRunner runner(sys, algo, 23, options);
    runner.runAtLeast(150000);
    std::vector<TriPoint> tails;
    for (std::size_t id = 0; id < sys.size(); ++id) {
      tails.push_back(sys.particle(id).tail);
    }
    return tails;
  };
  EXPECT_EQ(run(1), run(4));
}

}  // namespace
}  // namespace sops::amoebot
