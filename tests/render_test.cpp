// Tests for the IO substrate (S10): ASCII rendering, SVG output.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/ascii_render.hpp"
#include "io/svg.hpp"
#include "system/particle_system.hpp"
#include "system/shapes.hpp"

namespace sops::io {
namespace {

using lattice::TriPoint;
using system::ParticleSystem;

TEST(AsciiRender, HorizontalLine) {
  const std::string art = renderAscii(system::lineConfiguration(3));
  EXPECT_EQ(art, "o o o\n");
}

TEST(AsciiRender, TriangleOffsetsUpperRow) {
  const ParticleSystem sys(std::vector<TriPoint>{{0, 0}, {1, 0}, {0, 1}});
  // Row y=1 is shifted half a cell (one character) right.
  EXPECT_EQ(renderAscii(sys), " o\no o\n");
}

TEST(AsciiRender, LatticeDotsWhenRequested) {
  const ParticleSystem sys(std::vector<TriPoint>{{0, 0}, {2, 0}});
  AsciiOptions options;
  options.showLattice = true;
  EXPECT_EQ(renderAscii(sys, options), "o . o\n");
}

TEST(AsciiRender, SingleParticle) {
  const ParticleSystem sys(std::vector<TriPoint>{{5, -7}});
  EXPECT_EQ(renderAscii(sys), "o\n");
}

TEST(AsciiRender, NegativeCoordinatesNormalized) {
  const ParticleSystem sys(std::vector<TriPoint>{{-3, -1}, {-2, -1}});
  EXPECT_EQ(renderAscii(sys), "o o\n");
}

TEST(Svg, ContainsAllParticlesAndEdges) {
  const ParticleSystem sys = system::spiralConfiguration(7);
  const std::string svg = renderSvg(sys);
  std::size_t circles = 0;
  std::size_t position = 0;
  while ((position = svg.find("<circle", position)) != std::string::npos) {
    ++circles;
    position += 7;
  }
  EXPECT_EQ(circles, 7u);
  std::size_t lines = 0;
  position = 0;
  while ((position = svg.find("<line", position)) != std::string::npos) {
    ++lines;
    position += 5;
  }
  EXPECT_EQ(lines, 12u);  // e(spiral(7)) = 12
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Svg, EdgeDrawingCanBeDisabled) {
  SvgOptions options;
  options.drawEdges = false;
  const std::string svg = renderSvg(system::spiralConfiguration(7), options);
  EXPECT_EQ(svg.find("<line"), std::string::npos);
}

TEST(Svg, WritesFile) {
  const std::string path = "/tmp/sops_render_test.svg";
  ASSERT_TRUE(writeSvg(system::lineConfiguration(4), path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("<svg"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sops::io
