// Tests for the flat hash containers and assertion macros (S3).
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "rng/random.hpp"
#include "util/assert.hpp"
#include "util/flat_hash.hpp"

namespace sops::util {
namespace {

TEST(Assert, RequireThrowsContractViolation) {
  EXPECT_THROW(SOPS_REQUIRE(false, "boom"), sops::ContractViolation);
  EXPECT_NO_THROW(SOPS_REQUIRE(true, "fine"));
}

TEST(Assert, MessageContainsContext) {
  try {
    SOPS_REQUIRE(1 == 2, "custom context");
    FAIL() << "should have thrown";
  } catch (const sops::ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom context"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(FlatMap, InsertFindBasics) {
  FlatMap64<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_TRUE(map.insert(42, 7));
  EXPECT_FALSE(map.insert(42, 8));  // duplicate rejected
  EXPECT_EQ(map.size(), 1u);
  ASSERT_NE(map.find(42), nullptr);
  EXPECT_EQ(*map.find(42), 7);
  EXPECT_EQ(map.find(43), nullptr);
}

TEST(FlatMap, InsertOrAssignOverwrites) {
  FlatMap64<int> map;
  map.insertOrAssign(1, 10);
  map.insertOrAssign(1, 20);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.find(1), 20);
}

TEST(FlatMap, EraseRemoves) {
  FlatMap64<int> map;
  map.insert(5, 50);
  EXPECT_TRUE(map.erase(5));
  EXPECT_FALSE(map.erase(5));
  EXPECT_FALSE(map.contains(5));
  EXPECT_EQ(map.size(), 0u);
}

TEST(FlatMap, GrowsPastInitialCapacity) {
  FlatMap64<std::uint64_t> map;
  for (std::uint64_t k = 0; k < 10000; ++k) {
    ASSERT_TRUE(map.insert(k * 2654435761ULL, k));
  }
  EXPECT_EQ(map.size(), 10000u);
  for (std::uint64_t k = 0; k < 10000; ++k) {
    ASSERT_NE(map.find(k * 2654435761ULL), nullptr);
    EXPECT_EQ(*map.find(k * 2654435761ULL), k);
  }
}

TEST(FlatMap, ZeroAndMaxKeysAreOrdinary) {
  FlatMap64<int> map;
  EXPECT_TRUE(map.insert(0, 1));
  EXPECT_TRUE(map.insert(~std::uint64_t{0}, 2));
  EXPECT_EQ(*map.find(0), 1);
  EXPECT_EQ(*map.find(~std::uint64_t{0}), 2);
  EXPECT_TRUE(map.erase(0));
  EXPECT_TRUE(map.contains(~std::uint64_t{0}));
}

TEST(FlatMap, ChurnMatchesReferenceImplementation) {
  // Randomized insert/erase/lookup churn, checked against
  // std::unordered_map.  Backward-shift deletion is the risky part; this
  // drives long probe chains through repeated collisions.
  FlatMap64<int> map;
  std::unordered_map<std::uint64_t, int> reference;
  rng::Random rng(12345);
  for (int op = 0; op < 200000; ++op) {
    const std::uint64_t key = rng.below(512);  // dense keyspace → collisions
    const int action = static_cast<int>(rng.below(3));
    if (action == 0) {
      const int value = static_cast<int>(rng.below(1000));
      map.insertOrAssign(key, value);
      reference[key] = value;
    } else if (action == 1) {
      EXPECT_EQ(map.erase(key), reference.erase(key) > 0);
    } else {
      const int* found = map.find(key);
      const auto it = reference.find(key);
      ASSERT_EQ(found != nullptr, it != reference.end());
      if (found != nullptr) {
        EXPECT_EQ(*found, it->second);
      }
    }
    ASSERT_EQ(map.size(), reference.size());
  }
}

TEST(FlatMap, ForEachVisitsEverything) {
  FlatMap64<int> map;
  for (int k = 1; k <= 100; ++k) map.insert(static_cast<std::uint64_t>(k), k * k);
  std::uint64_t keySum = 0;
  long valueSum = 0;
  map.forEach([&](std::uint64_t key, int value) {
    keySum += key;
    valueSum += value;
  });
  EXPECT_EQ(keySum, 5050u);
  EXPECT_EQ(valueSum, 338350);
}

TEST(FlatMap, ReserveDoesNotLoseEntries) {
  FlatMap64<int> map;
  for (int k = 0; k < 50; ++k) map.insert(static_cast<std::uint64_t>(k), k);
  map.reserve(100000);
  for (int k = 0; k < 50; ++k) {
    ASSERT_NE(map.find(static_cast<std::uint64_t>(k)), nullptr);
    EXPECT_EQ(*map.find(static_cast<std::uint64_t>(k)), k);
  }
}

TEST(FlatSet, Basics) {
  FlatSet64 set;
  EXPECT_TRUE(set.insert(9));
  EXPECT_FALSE(set.insert(9));
  EXPECT_TRUE(set.contains(9));
  EXPECT_TRUE(set.erase(9));
  EXPECT_FALSE(set.contains(9));
  EXPECT_TRUE(set.empty());
}

TEST(FlatSet, ChurnMatchesReference) {
  FlatSet64 set;
  std::unordered_set<std::uint64_t> reference;
  rng::Random rng(999);
  for (int op = 0; op < 100000; ++op) {
    const std::uint64_t key = rng.below(256);
    if (rng.bernoulli(0.5)) {
      EXPECT_EQ(set.insert(key), reference.insert(key).second);
    } else {
      EXPECT_EQ(set.erase(key), reference.erase(key) > 0);
    }
    ASSERT_EQ(set.size(), reference.size());
  }
}

TEST(Mix64, SeparatesDenseKeys) {
  std::unordered_set<std::uint64_t> lowBits;
  for (std::uint64_t k = 0; k < 4096; ++k) {
    lowBits.insert(mix64(k) & 0xFFF);
  }
  // A good mixer spreads 4096 consecutive keys over most of 4096 buckets.
  EXPECT_GT(lowBits.size(), 2400u);
}

}  // namespace
}  // namespace sops::util
