// Tests for the flat hash containers and assertion macros (S3).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rng/random.hpp"
#include "util/assert.hpp"
#include "util/flat_hash.hpp"
#include "util/event_sort.hpp"

namespace sops::util {
namespace {

TEST(Assert, RequireThrowsContractViolation) {
  EXPECT_THROW(SOPS_REQUIRE(false, "boom"), sops::ContractViolation);
  EXPECT_NO_THROW(SOPS_REQUIRE(true, "fine"));
}

TEST(Assert, MessageContainsContext) {
  try {
    SOPS_REQUIRE(1 == 2, "custom context");
    FAIL() << "should have thrown";
  } catch (const sops::ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom context"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(FlatMap, InsertFindBasics) {
  FlatMap64<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_TRUE(map.insert(42, 7));
  EXPECT_FALSE(map.insert(42, 8));  // duplicate rejected
  EXPECT_EQ(map.size(), 1u);
  ASSERT_NE(map.find(42), nullptr);
  EXPECT_EQ(*map.find(42), 7);
  EXPECT_EQ(map.find(43), nullptr);
}

TEST(FlatMap, InsertOrAssignOverwrites) {
  FlatMap64<int> map;
  map.insertOrAssign(1, 10);
  map.insertOrAssign(1, 20);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.find(1), 20);
}

TEST(FlatMap, EraseRemoves) {
  FlatMap64<int> map;
  map.insert(5, 50);
  EXPECT_TRUE(map.erase(5));
  EXPECT_FALSE(map.erase(5));
  EXPECT_FALSE(map.contains(5));
  EXPECT_EQ(map.size(), 0u);
}

TEST(FlatMap, GrowsPastInitialCapacity) {
  FlatMap64<std::uint64_t> map;
  for (std::uint64_t k = 0; k < 10000; ++k) {
    ASSERT_TRUE(map.insert(k * 2654435761ULL, k));
  }
  EXPECT_EQ(map.size(), 10000u);
  for (std::uint64_t k = 0; k < 10000; ++k) {
    ASSERT_NE(map.find(k * 2654435761ULL), nullptr);
    EXPECT_EQ(*map.find(k * 2654435761ULL), k);
  }
}

TEST(FlatMap, ZeroAndMaxKeysAreOrdinary) {
  FlatMap64<int> map;
  EXPECT_TRUE(map.insert(0, 1));
  EXPECT_TRUE(map.insert(~std::uint64_t{0}, 2));
  EXPECT_EQ(*map.find(0), 1);
  EXPECT_EQ(*map.find(~std::uint64_t{0}), 2);
  EXPECT_TRUE(map.erase(0));
  EXPECT_TRUE(map.contains(~std::uint64_t{0}));
}

TEST(FlatMap, ChurnMatchesReferenceImplementation) {
  // Randomized insert/erase/lookup churn, checked against
  // std::unordered_map.  Backward-shift deletion is the risky part; this
  // drives long probe chains through repeated collisions.
  FlatMap64<int> map;
  std::unordered_map<std::uint64_t, int> reference;
  rng::Random rng(12345);
  for (int op = 0; op < 200000; ++op) {
    const std::uint64_t key = rng.below(512);  // dense keyspace → collisions
    const int action = static_cast<int>(rng.below(3));
    if (action == 0) {
      const int value = static_cast<int>(rng.below(1000));
      map.insertOrAssign(key, value);
      reference[key] = value;
    } else if (action == 1) {
      EXPECT_EQ(map.erase(key), reference.erase(key) > 0);
    } else {
      const int* found = map.find(key);
      const auto it = reference.find(key);
      ASSERT_EQ(found != nullptr, it != reference.end());
      if (found != nullptr) {
        EXPECT_EQ(*found, it->second);
      }
    }
    ASSERT_EQ(map.size(), reference.size());
  }
}

TEST(FlatMap, ForEachVisitsEverything) {
  FlatMap64<int> map;
  for (int k = 1; k <= 100; ++k) {
    map.insert(static_cast<std::uint64_t>(k), k * k);
  }
  std::uint64_t keySum = 0;
  long valueSum = 0;
  map.forEach([&](std::uint64_t key, int value) {
    keySum += key;
    valueSum += value;
  });
  EXPECT_EQ(keySum, 5050u);
  EXPECT_EQ(valueSum, 338350);
}

TEST(FlatMap, ReserveDoesNotLoseEntries) {
  FlatMap64<int> map;
  for (int k = 0; k < 50; ++k) map.insert(static_cast<std::uint64_t>(k), k);
  map.reserve(100000);
  for (int k = 0; k < 50; ++k) {
    ASSERT_NE(map.find(static_cast<std::uint64_t>(k)), nullptr);
    EXPECT_EQ(*map.find(static_cast<std::uint64_t>(k)), k);
  }
}

TEST(FlatSet, Basics) {
  FlatSet64 set;
  EXPECT_TRUE(set.insert(9));
  EXPECT_FALSE(set.insert(9));
  EXPECT_TRUE(set.contains(9));
  EXPECT_TRUE(set.erase(9));
  EXPECT_FALSE(set.contains(9));
  EXPECT_TRUE(set.empty());
}

TEST(FlatSet, ChurnMatchesReference) {
  FlatSet64 set;
  std::unordered_set<std::uint64_t> reference;
  rng::Random rng(999);
  for (int op = 0; op < 100000; ++op) {
    const std::uint64_t key = rng.below(256);
    if (rng.bernoulli(0.5)) {
      EXPECT_EQ(set.insert(key), reference.insert(key).second);
    } else {
      EXPECT_EQ(set.erase(key), reference.erase(key) > 0);
    }
    ASSERT_EQ(set.size(), reference.size());
  }
}

TEST(Mix64, SeparatesDenseKeys) {
  std::unordered_set<std::uint64_t> lowBits;
  for (std::uint64_t k = 0; k < 4096; ++k) {
    lowBits.insert(mix64(k) & 0xFFF);
  }
  // A good mixer spreads 4096 consecutive keys over most of 4096 buckets.
  EXPECT_GT(lowBits.size(), 2400u);
}

// --- epoch event sort --------------------------------------------------
// The sharded runners' event sort (util/event_sort.hpp): a time-bucketed
// sort that must reproduce the exact order of the element comparator,
// given only that every time lies inside the declared window.  Pinned
// against std::sort with the same comparator on every time shape an
// epoch can produce — uniform (the Poisson case), clustered into one
// bucket, window-edge values, heavy exact ties.

struct Timed {
  double time;
  std::uint32_t particle;

  friend bool operator<(const Timed& a, const Timed& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.particle < b.particle;
  }
};

void expectMatchesStdSort(std::vector<Timed> v, double lo, double hi) {
  EventSortScratch<Timed> scratch;
  std::vector<Timed> expected = v;
  std::sort(expected.begin(), expected.end());
  sortEventsInWindow(v, scratch, lo, hi,
                     [](const Timed& e) { return e.time; });
  ASSERT_EQ(v.size(), expected.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_EQ(v[i].time, expected[i].time) << "index " << i;
    ASSERT_EQ(v[i].particle, expected[i].particle) << "index " << i;
  }
}

TEST(EventSort, MatchesStdSortOnUniformTimes) {
  rng::Random r(31);
  const double lo = 1000.0;
  const double hi = 1003.5;
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{3}, std::size_t{100},
                              kEventSortCutoff - 1, kEventSortCutoff,
                              std::size_t{50000}}) {
    std::vector<Timed> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      v.push_back({lo + (hi - lo) * r.uniform(),
                   static_cast<std::uint32_t>(i)});
    }
    expectMatchesStdSort(std::move(v), lo, hi);
  }
}

TEST(EventSort, ExactTieOrderByComparatorNotInputPosition) {
  // Duplicate times across different particles, inserted in descending
  // particle order: the result must follow the comparator's particle
  // tie-break, which is what the sweep's (time, particle) contract needs.
  rng::Random r(37);
  std::vector<Timed> v;
  for (std::size_t i = 0; i < 20000; ++i) {
    const double t = 5.0 + static_cast<double>(r.below(64)) / 16.0;
    v.push_back({t, static_cast<std::uint32_t>(20000 - i)});
  }
  expectMatchesStdSort(std::move(v), 5.0, 9.0);
}

TEST(EventSort, ClusteredTimesCollapseIntoFewBuckets) {
  // All events inside a sliver of the window (one bucket does all the
  // work) plus values exactly at the window's lower edge and just below
  // its upper edge.
  rng::Random r(41);
  const double lo = 0.0;
  const double hi = 1.0;
  std::vector<Timed> v;
  for (std::size_t i = 0; i < 30000; ++i) {
    v.push_back({0.25 + 1e-9 * r.uniform(), static_cast<std::uint32_t>(i)});
  }
  v.push_back({lo, 7});
  v.push_back({std::nextafter(hi, 0.0), 9});
  expectMatchesStdSort(std::move(v), lo, hi);
}

TEST(EventSort, NarrowWindowHighMagnitudeTimes) {
  // Late-trajectory epochs: times are large (say ~1e6) and the window is
  // narrow, so bucketing runs on the *difference* — precision must hold.
  rng::Random r(43);
  const double lo = 1.0e6;
  const double hi = 1.0e6 + 1.0 / 512.0;
  std::vector<Timed> v;
  for (std::size_t i = 0; i < 20000; ++i) {
    v.push_back({lo + (hi - lo) * r.uniform(), static_cast<std::uint32_t>(i)});
    if (i % 7 == 0) v.push_back(v.back());  // exact duplicates survive too
  }
  expectMatchesStdSort(std::move(v), lo, hi);
}

}  // namespace
}  // namespace sops::util
