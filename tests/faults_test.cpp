// Dedicated fault-model coverage for §3.3 (amoebot/faults): crash faults
// (a particle abruptly stops acting forever) and Byzantine stationary
// adversaries (particles that expand away and refuse to contract).  The
// paper argues the stochastic algorithm tolerates both because honest
// particles simply compress around the fixed points; these tests pin the
// claims the argument rests on — faulty particles really are inert /
// stuck, connectivity of the tail configuration is preserved along the
// run, and the honest remainder still compresses.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "amoebot/faults.hpp"
#include "amoebot/local_compression.hpp"
#include "amoebot/scheduler.hpp"
#include "system/metrics.hpp"
#include "system/shapes.hpp"

namespace sops::amoebot {
namespace {

using lattice::TriPoint;
using system::ParticleSystem;

TEST(Faults, RandomByzantinePlanSizesAndDistinctness) {
  rng::Random rng(1);
  const FaultPlan plan = randomByzantine(80, 0.25, rng);
  EXPECT_EQ(plan.byzantine.size(), 20u);
  EXPECT_TRUE(plan.crashed.empty());
  const std::set<std::size_t> distinct(plan.byzantine.begin(),
                                       plan.byzantine.end());
  EXPECT_EQ(distinct.size(), 20u);
  for (const std::size_t id : plan.byzantine) EXPECT_LT(id, 80u);
}

TEST(Faults, ZeroAndFullFractionsAreExact) {
  rng::Random rng(2);
  EXPECT_TRUE(randomCrashes(50, 0.0, rng).crashed.empty());
  EXPECT_EQ(randomCrashes(50, 1.0, rng).crashed.size(), 50u);
  EXPECT_THROW(randomCrashes(50, 1.5, rng), ContractViolation);
}

TEST(Faults, ByzantineExpandsAndHoldsForever) {
  // The adversary's whole strategy: grab a second cell and never give it
  // back.  Once expanded it must stay expanded through any number of
  // activations, permanently occupying two cells.
  rng::Random rng(3);
  AmoebotSystem sys(system::lineConfiguration(8), rng);
  sys.markByzantine(0);
  const LocalCompressionAlgorithm algo({4.0});
  rng::Random coin(4);
  // Particle 0 sits at the line's end with free cells: it must expand on
  // its first activation.
  ASSERT_EQ(algo.activate(sys, 0, coin), ActivationResult::Expanded);
  ASSERT_TRUE(sys.particle(0).expanded);
  const TriPoint heldTail = sys.particle(0).tail;
  const TriPoint heldHead = sys.particle(0).head;
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(algo.activate(sys, 0, coin), ActivationResult::Idle);
  }
  EXPECT_TRUE(sys.particle(0).expanded);
  EXPECT_EQ(sys.particle(0).tail, heldTail);
  EXPECT_EQ(sys.particle(0).head, heldHead);
  EXPECT_TRUE(sys.occupied(heldTail));
  EXPECT_TRUE(sys.occupied(heldHead));
}

TEST(Faults, HonestNeighborsRespectByzantineExpansion) {
  // Step 3 of Algorithm A: a particle adjacent to the (permanently)
  // expanded Byzantine particle may never expand — the adversary cannot
  // trick an honest neighbor into a concurrent-move violation.
  rng::Random rng(5);
  AmoebotSystem sys(system::lineConfiguration(3), rng);
  sys.markByzantine(0);
  const LocalCompressionAlgorithm algo({4.0});
  rng::Random coin(6);
  ASSERT_EQ(algo.activate(sys, 0, coin), ActivationResult::Expanded);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(algo.activate(sys, 1, coin), ActivationResult::Idle);
  }
  EXPECT_FALSE(sys.particle(1).expanded);
}

TEST(Faults, ConnectivityPreservedUnderCrashes) {
  // Lemma 3.1 survives crash faults: along a long Poisson run with 20%
  // of particles crashed, the tail configuration never disconnects and
  // never forms a hole it cannot remove.
  rng::Random rng(7);
  AmoebotSystem sys(system::lineConfiguration(25), rng);
  rng::Random faultRng(8);
  const FaultPlan plan = randomCrashes(sys.size(), 0.2, faultRng);
  applyFaults(sys, plan);
  const std::vector<TriPoint> pinned = [&] {
    std::vector<TriPoint> tails;
    for (const std::size_t id : plan.crashed) {
      tails.push_back(sys.particle(id).tail);
    }
    return tails;
  }();
  const LocalCompressionAlgorithm algo({4.0});
  PoissonScheduler scheduler(sys.size(), rng::Random(9));
  rng::Random coin(10);
  for (int burst = 0; burst < 60; ++burst) {
    for (int i = 0; i < 20000; ++i) {
      algo.activate(sys, scheduler.next().particle, coin);
    }
    ASSERT_TRUE(system::isConnected(sys.tailConfiguration()))
        << "burst " << burst;
  }
  // Crashed particles never moved.
  for (std::size_t k = 0; k < plan.crashed.size(); ++k) {
    EXPECT_EQ(sys.particle(plan.crashed[k]).tail, pinned[k]);
    EXPECT_FALSE(sys.particle(plan.crashed[k]).expanded);
  }
}

TEST(Faults, CompressionProceedsAroundByzantines) {
  // §3.3: with a few Byzantine particles expanding away and holding, the
  // honest particles still compress the aggregate well below its initial
  // perimeter, and the tail configuration stays connected.
  rng::Random rng(11);
  AmoebotSystem sys(system::lineConfiguration(30), rng);
  FaultPlan plan;
  plan.byzantine = {7, 22};
  applyFaults(sys, plan);
  const LocalCompressionAlgorithm algo({4.0});
  PoissonScheduler scheduler(sys.size(), rng::Random(12));
  rng::Random coin(13);
  const std::int64_t initial = system::perimeter(sys.tailConfiguration());
  for (int i = 0; i < 2000000; ++i) {
    algo.activate(sys, scheduler.next().particle, coin);
  }
  const ParticleSystem tails = sys.tailConfiguration();
  EXPECT_TRUE(system::isConnected(tails));
  // Each Byzantine particle permanently pins two cells and keeps poking
  // the boundary, so the reachable compression is well above λ=4's
  // fault-free equilibrium; a clear drop below the initial perimeter is
  // the meaningful claim (measured equilibrium ≈ 46–51 of 58 across
  // seeds; bench_fault_tolerance quantifies the full tradeoff).
  EXPECT_LT(system::perimeter(tails), (9 * initial) / 10);
}

TEST(Faults, MixedCrashAndByzantineFaults) {
  rng::Random rng(14);
  AmoebotSystem sys(system::lineConfiguration(36), rng);
  rng::Random faultRng(15);
  FaultPlan plan = randomCrashes(sys.size(), 0.1, faultRng);
  plan.byzantine = {1, 18};
  applyFaults(sys, plan);
  const LocalCompressionAlgorithm algo({4.0});
  PoissonScheduler scheduler(sys.size(), rng::Random(16));
  rng::Random coin(17);
  const std::int64_t initial = system::perimeter(sys.tailConfiguration());
  for (int burst = 0; burst < 20; ++burst) {
    for (int i = 0; i < 100000; ++i) {
      algo.activate(sys, scheduler.next().particle, coin);
    }
    ASSERT_TRUE(system::isConnected(sys.tailConfiguration()))
        << "burst " << burst;
  }
  EXPECT_LT(system::perimeter(sys.tailConfiguration()), initial);
}

}  // namespace
}  // namespace sops::amoebot
