// Tests for the generic Markov-chain analysis tools (S5) on hand-built
// chains with known answers.
#include <gtest/gtest.h>

#include <vector>

#include "markov/stationary.hpp"
#include "markov/transition_matrix.hpp"

namespace sops::markov {
namespace {

/// Two-state chain: stays with prob 1-a / 1-b, flips with a / b.
/// Stationary distribution is (b, a)/(a+b).
TransitionMatrix twoState(double a, double b) {
  TransitionMatrix m(2);
  m.set(0, 0, 1 - a);
  m.set(0, 1, a);
  m.set(1, 0, b);
  m.set(1, 1, 1 - b);
  return m;
}

TEST(TransitionMatrix, RowSums) {
  const TransitionMatrix m = twoState(0.3, 0.1);
  EXPECT_NEAR(m.rowSum(0), 1.0, 1e-15);
  EXPECT_NEAR(m.rowSum(1), 1.0, 1e-15);
  EXPECT_NEAR(m.maxRowDefect(), 0.0, 1e-15);
}

TEST(TransitionMatrix, ApplyRight) {
  const TransitionMatrix m = twoState(0.5, 0.5);
  const std::vector<double> start{1.0, 0.0};
  const std::vector<double> next = m.applyRight(start);
  EXPECT_NEAR(next[0], 0.5, 1e-15);
  EXPECT_NEAR(next[1], 0.5, 1e-15);
}

TEST(TransitionMatrix, Reachability) {
  TransitionMatrix m(3);
  m.set(0, 1, 1.0);
  m.set(1, 1, 1.0);
  m.set(2, 2, 1.0);
  const std::vector<char> fromZero = m.reachableFrom(0);
  EXPECT_TRUE(fromZero[0]);
  EXPECT_TRUE(fromZero[1]);
  EXPECT_FALSE(fromZero[2]);
}

TEST(TransitionMatrix, StronglyConnectedWithin) {
  TransitionMatrix m(3);
  // 0 <-> 1 cycle; 2 absorbs.
  m.set(0, 1, 1.0);
  m.set(1, 0, 0.5);
  m.set(1, 2, 0.5);
  m.set(2, 2, 1.0);
  EXPECT_TRUE(m.stronglyConnectedWithin({1, 1, 0}));
  EXPECT_FALSE(m.stronglyConnectedWithin({1, 1, 1}));
  EXPECT_TRUE(m.stronglyConnectedWithin({0, 0, 1}));
}

TEST(Stationary, TotalVariationBasics) {
  const std::vector<double> a{0.5, 0.5};
  const std::vector<double> b{1.0, 0.0};
  EXPECT_NEAR(totalVariation(a, a), 0.0, 1e-15);
  EXPECT_NEAR(totalVariation(a, b), 0.5, 1e-15);
}

TEST(Stationary, NormalizedSumsToOne) {
  const std::vector<double> w{1.0, 3.0, 4.0};
  const std::vector<double> p = normalized(w);
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-15);
  EXPECT_NEAR(p[2], 0.5, 1e-15);
}

TEST(Stationary, PowerIterationFindsStationary) {
  const double a = 0.3;
  const double b = 0.1;
  const TransitionMatrix m = twoState(a, b);
  const std::vector<double> pi =
      powerIterate(m, {1.0, 0.0}, 100000, 1e-15);
  EXPECT_NEAR(pi[0], b / (a + b), 1e-10);
  EXPECT_NEAR(pi[1], a / (a + b), 1e-10);
}

TEST(Stationary, DetailedBalanceAuditAcceptsReversibleChain) {
  // The two-state chain is reversible w.r.t. weights (b, a).
  const TransitionMatrix m = twoState(0.3, 0.1);
  const std::vector<double> weights{0.1, 0.3};
  const BalanceAudit audit = auditDetailedBalance(m, weights, {1, 1});
  EXPECT_TRUE(audit.holds) << audit.maxViolation;
}

TEST(Stationary, DetailedBalanceAuditRejectsIrreversibleChain) {
  // Directed 3-cycle: stationary uniform but not reversible.
  TransitionMatrix m(3);
  m.set(0, 1, 1.0);
  m.set(1, 2, 1.0);
  m.set(2, 0, 1.0);
  const std::vector<double> weights{1.0, 1.0, 1.0};
  const BalanceAudit audit = auditDetailedBalance(m, weights, {1, 1, 1});
  EXPECT_FALSE(audit.holds);
}

TEST(Stationary, DetailedBalanceAuditFlagsLeaks) {
  // Mass escaping the allegedly-closed subset must be reported.
  TransitionMatrix m(2);
  m.set(0, 0, 0.9);
  m.set(0, 1, 0.1);
  m.set(1, 1, 1.0);
  const std::vector<double> weights{1.0, 0.0};
  const BalanceAudit audit = auditDetailedBalance(m, weights, {1, 0});
  EXPECT_FALSE(audit.holds);
}

TEST(Stationary, MixingTimeDecreasesWithFasterChains) {
  const TransitionMatrix slow = twoState(0.01, 0.01);
  const TransitionMatrix fast = twoState(0.4, 0.4);
  const std::vector<double> pi{0.5, 0.5};
  const int slowT = mixingTimeFrom(slow, 0, pi, 0.25);
  const int fastT = mixingTimeFrom(fast, 0, pi, 0.25);
  ASSERT_GE(slowT, 0);
  ASSERT_GE(fastT, 0);
  EXPECT_GT(slowT, fastT);
}

TEST(Stationary, MixingTimeZeroWhenStartingAtStationary) {
  const TransitionMatrix m = twoState(0.2, 0.2);
  std::vector<double> pi{0.5, 0.5};
  EXPECT_EQ(mixingTimeFrom(m, 0, pi, 0.51), 0);
}

}  // namespace
}  // namespace sops::markov
