// Tests for the Redelmeier enumerator (independent of the canonical-form
// grower) and the Lemma 5.1 staircase-path witnesses.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "enumeration/config_enum.hpp"
#include "enumeration/redelmeier.hpp"
#include "system/canonical.hpp"
#include "system/metrics.hpp"
#include "system/particle_system.hpp"

namespace sops::enumeration {
namespace {

TEST(Redelmeier, CountsMatchKnownSequence) {
  const std::vector<std::uint64_t> counts = redelmeierCounts(9);
  const std::uint64_t expected[] = {1,    3,    11,    44,   186,
                                    814, 3652, 16689, 77359};
  ASSERT_EQ(counts.size(), 9u);
  for (std::size_t k = 0; k < counts.size(); ++k) {
    EXPECT_EQ(counts[k], expected[k]) << "k=" << k + 1;
  }
}

TEST(Redelmeier, AgreesWithCanonicalGrower) {
  // Two completely independent enumeration strategies must coincide.
  const std::vector<std::uint64_t> counts = redelmeierCounts(8);
  for (int n = 1; n <= 8; ++n) {
    EXPECT_EQ(counts[static_cast<std::size_t>(n - 1)], countConnected(n).all)
        << "n=" << n;
  }
}

TEST(Redelmeier, EnumeratesDistinctConnectedAnimals) {
  for (int n = 1; n <= 6; ++n) {
    std::set<std::string> seen;
    redelmeierEnumerate(n, [&](std::span<const TriPoint> cells) {
      ASSERT_EQ(cells.size(), static_cast<std::size_t>(n));
      const system::ParticleSystem sys(
          std::vector<TriPoint>(cells.begin(), cells.end()));
      ASSERT_TRUE(system::isConnected(sys));
      ASSERT_TRUE(seen.insert(system::canonicalKey(sys)).second)
          << "duplicate animal at n=" << n;
    });
    EXPECT_EQ(seen.size(), countConnected(n).all);
  }
}

TEST(Redelmeier, HoleFreeClassificationMatches) {
  for (int n = 5; n <= 7; ++n) {
    std::uint64_t holeFree = 0;
    redelmeierEnumerate(n, [&](std::span<const TriPoint> cells) {
      const system::ParticleSystem sys(
          std::vector<TriPoint>(cells.begin(), cells.end()));
      if (system::countHoles(sys) == 0) ++holeFree;
    });
    EXPECT_EQ(holeFree, countConnected(n).holeFree) << "n=" << n;
  }
}

TEST(StaircasePaths, CountIsTwoToTheNMinusOne) {
  for (int n = 1; n <= 12; ++n) {
    EXPECT_EQ(staircasePaths(n).size(), std::size_t{1} << (n - 1)) << n;
  }
}

TEST(StaircasePaths, AllDistinctUpToTranslation) {
  for (int n = 2; n <= 10; ++n) {
    std::set<std::string> seen;
    for (const auto& path : staircasePaths(n)) {
      EXPECT_TRUE(seen.insert(system::canonicalKeyFromPoints(path)).second);
    }
    EXPECT_EQ(seen.size(), std::size_t{1} << (n - 1));
  }
}

TEST(StaircasePaths, AllAreMaximumPerimeterTrees) {
  // The substance of Lemma 5.1: each staircase path is a connected,
  // hole-free configuration with e = n−1 (a tree) and p = p_max = 2n−2.
  for (int n = 2; n <= 10; ++n) {
    for (const auto& path : staircasePaths(n)) {
      const system::ParticleSystem sys(path);
      ASSERT_TRUE(system::isConnected(sys));
      ASSERT_EQ(system::countHoles(sys), 0);
      ASSERT_EQ(system::countEdges(sys), n - 1);
      ASSERT_EQ(system::countTriangles(sys), 0);
      ASSERT_EQ(system::perimeter(sys), system::pMax(n));
    }
  }
}

TEST(StaircasePaths, LowerBoundsTreeCountExactly) {
  // c_{2n-2} ≥ 2^{n-1}, verified against the exact tree count.
  for (int n = 2; n <= 8; ++n) {
    std::uint64_t trees = 0;
    for (const EnumeratedConfig& config : enumerateConnected(n)) {
      if (config.holeFree() && config.perimeter == system::pMax(n)) ++trees;
    }
    EXPECT_GE(trees, std::uint64_t{1} << (n - 1)) << "n=" << n;
  }
}

TEST(Redelmeier, RejectsOutOfRange) {
  EXPECT_THROW(redelmeierCounts(0), ContractViolation);
  EXPECT_THROW(redelmeierCounts(17), ContractViolation);
  EXPECT_THROW(staircasePaths(0), ContractViolation);
}

}  // namespace
}  // namespace sops::enumeration
