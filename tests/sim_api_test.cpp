// The scenario facade's correctness contract:
//
//  1. ParamMap/ParamSchema: strict key=value and flat-JSON parsing, typed
//     getters that reject malformed values, unknown-key validation (the
//     fix for the old argv parsers' silent ignore), toText round-trip;
//  2. RunSpec: parse → validate → round-trip identity, reserved-key range
//     checks, schema validation against the registry;
//  3. Registry: the four built-ins resolve; unknown names throw with the
//     registered names in the message;
//  4. Observer pipeline: sampled metrics equal independent system/metrics
//     recomputation at every checkpoint; CSV sink shape; MemorySink
//     replay fidelity;
//  5. Facade ↔ direct-engine golden identity for all three chain
//     scenarios (same final arrangement, edges, and metrics — the facade
//     is a re-layering, not a new sampler), including the replica seed
//     derivation; amoebot runs are thread-count independent;
//  6. Runner dispatch: multi-replica runs are deterministic and
//     thread-count independent; StopWhen ends replicas early.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenario_models.hpp"
#include "sim/registry.hpp"
#include "sim/runner.hpp"
#include "system/metrics.hpp"
#include "system/shapes.hpp"

namespace sops::sim {
namespace {

// -- 1. params --------------------------------------------------------------

TEST(SimParams, ParsesKeyValuesQuotesAndComments) {
  const ParamMap map = parseKeyValues(
      "alpha=1.5 name=\"two words\"\n# a comment line\nn=100");
  EXPECT_EQ(map.size(), 3u);
  EXPECT_DOUBLE_EQ(map.getDouble("alpha", 0.0), 1.5);
  EXPECT_EQ(map.getString("name", ""), "two words");
  EXPECT_EQ(map.getInt("n", 0), 100);
  EXPECT_EQ(map.getInt("missing", 42), 42);
}

TEST(SimParams, RejectsMalformedTokensAndValues) {
  EXPECT_THROW((void)parseKeyValues("flag"), ContractViolation);
  EXPECT_THROW((void)parseKeyValues("--help"), ContractViolation);
  EXPECT_THROW((void)parseKeyValues("=value"), ContractViolation);
  const ParamMap map = parseKeyValues("n=abc b=maybe");
  EXPECT_THROW((void)map.getInt("n", 0), ContractViolation);
  EXPECT_THROW((void)map.getBool("b", false), ContractViolation);
}

TEST(SimParams, BooleansAcceptCommonSpellings) {
  const ParamMap map = parseKeyValues("a=true b=0 c=YES d=off");
  EXPECT_TRUE(map.getBool("a", false));
  EXPECT_FALSE(map.getBool("b", true));
  EXPECT_TRUE(map.getBool("c", false));
  EXPECT_FALSE(map.getBool("d", true));
}

TEST(SimParams, FlatJsonMatchesKeyValueForm) {
  const ParamMap kv = parseKeyValues("scenario=separation n=40 gamma=2.5");
  const ParamMap json = parseSpecText(
      R"({"scenario": "separation", "n": 40, "gamma": 2.5})");
  EXPECT_EQ(json.getString("scenario", ""), kv.getString("scenario", ""));
  EXPECT_EQ(json.getInt("n", 0), kv.getInt("n", 0));
  EXPECT_DOUBLE_EQ(json.getDouble("gamma", 0.0), kv.getDouble("gamma", 0.0));
}

TEST(SimParams, JsonRejectsNestingAndTrailingGarbage) {
  EXPECT_THROW((void)parseJsonObject(R"({"a": {"b": 1}})"), ContractViolation);
  EXPECT_THROW((void)parseJsonObject(R"({"a": [1]})"), ContractViolation);
  EXPECT_THROW((void)parseJsonObject(R"({"a": 1} x)"), ContractViolation);
  EXPECT_THROW((void)parseJsonObject(R"({"a": null})"), ContractViolation);
}

TEST(SimParams, ToTextRoundTrips) {
  ParamMap map;
  map.set("scenario", "compression");
  map.set("label", "two words");
  map.set("n", "64");
  const ParamMap reparsed = parseKeyValues(map.toText());
  EXPECT_EQ(reparsed.entries(), map.entries());
}

TEST(SimParams, ParseArgsHonorsShellArgumentBoundaries) {
  // One shell-quoted argv element may carry spaces — even `k=v`-looking
  // text — without being re-split (the parser must not re-tokenize).
  const char* argv[] = {"prog", "csv=my file.csv", "label=run a=1"};
  const ParamMap map = parseArgs(3, argv);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.getString("csv", ""), "my file.csv");
  EXPECT_EQ(map.getString("label", ""), "run a=1");
  EXPECT_FALSE(map.contains("a"));
  const char* bad[] = {"prog", "--help"};
  EXPECT_THROW((void)parseArgs(2, bad), ContractViolation);
}

TEST(SimParams, ToTextRoundTripsAwkwardValues) {
  ParamMap map;
  map.set("tab", "a\tb");
  map.set("quote", "say \"hi\"");
  map.set("backslash", "a\\b");
  map.set("mixed", "a b \"c\\d\"");
  map.set("hash", "#notacomment");
  map.set("empty", "");
  const ParamMap reparsed = parseKeyValues(map.toText());
  EXPECT_EQ(reparsed.entries(), map.entries());
}

TEST(SimParams, UnquotedValuesStopAtInlineComments) {
  // The parser's mirror of toText() quoting any value containing '#': an
  // *unquoted* value ends at the comment marker instead of swallowing it.
  const ParamMap map = parseKeyValues("steps=100 mode=fast#quick");
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.getInt("steps", 0), 100);
  EXPECT_EQ(map.getString("mode", ""), "fast");
  // The comment still runs to end of line only.
  const ParamMap lines = parseKeyValues("a=1#rest of line b=ignored\nc=3");
  EXPECT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines.getInt("a", 0), 1);
  EXPECT_EQ(lines.getInt("c", 0), 3);
  // Round trip: a value that *contains* '#' is quoted by toText, so
  // re-parsing cannot invent a comment.
  ParamMap hash;
  hash.set("mode", "fast#quick");
  const std::string text = hash.toText();
  EXPECT_NE(text.find('"'), std::string::npos);
  EXPECT_EQ(parseKeyValues(text).entries(), hash.entries());
}

TEST(SimParams, ValidateAgainstSchemaNamesOffendingKey) {
  ParamSchema schema;
  schema.add("lambda", ParamType::Double, "4.0", "bias");
  const ParamMap unknown = parseKeyValues("lambda=4 bogus=1");
  try {
    unknown.validateAgainst(schema, "test");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("lambda"), std::string::npos);
  }
  const ParamMap badType = parseKeyValues("lambda=fast");
  EXPECT_THROW(badType.validateAgainst(schema, "test"), ContractViolation);
}

TEST(SimParams, MergeLayersAndOptionallyRejectsNewKeys) {
  ParamMap defaults = parseKeyValues("n=80 lambda=4.0");
  defaults.merge(parseKeyValues("lambda=2.0"));
  EXPECT_DOUBLE_EQ(defaults.getDouble("lambda", 0.0), 2.0);
  EXPECT_THROW(defaults.merge(parseKeyValues("extra=1"), true),
               ContractViolation);
  defaults.merge(parseKeyValues("extra=1"));
  EXPECT_TRUE(defaults.contains("extra"));
  defaults.erase("extra");
  EXPECT_FALSE(defaults.contains("extra"));
}

// -- 2. run spec ------------------------------------------------------------

TEST(SimRunSpec, ParsesValidatesAndRoundTrips) {
  const RunSpec spec = RunSpec::parse(
      "scenario=separation shape=spiral n=48 steps=5000 checkpoint=1000 "
      "seed=9 replicas=3 seed-stride=11 threads=2 gamma=2.0 swaps=false");
  EXPECT_EQ(spec.scenario, "separation");
  EXPECT_EQ(spec.shape, "spiral");
  EXPECT_EQ(spec.n, 48);
  EXPECT_EQ(spec.steps, 5000u);
  EXPECT_EQ(spec.checkpointEvery, 1000u);
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_EQ(spec.replicas, 3u);
  EXPECT_EQ(spec.replicaSeed(2), 9u + 22u);
  EXPECT_EQ(spec.threads, 2u);
  EXPECT_DOUBLE_EQ(spec.params.getDouble("gamma", 0.0), 2.0);
  spec.validate();

  const RunSpec reparsed = RunSpec::parse(spec.toText());
  EXPECT_EQ(reparsed.toText(), spec.toText());
  EXPECT_EQ(reparsed.scenario, spec.scenario);
  EXPECT_EQ(reparsed.params.entries(), spec.params.entries());
}

TEST(SimRunSpec, JsonSpecIsEquivalent) {
  const RunSpec kv = RunSpec::parse("scenario=compression n=30 steps=100");
  const RunSpec json = RunSpec::parse(
      R"({"scenario": "compression", "n": 30, "steps": 100})");
  EXPECT_EQ(json.toText(), kv.toText());
}

TEST(SimRunSpec, RejectsBadReservedValues) {
  EXPECT_THROW((void)RunSpec::parse("steps=10"),
               ContractViolation);  // no scenario
  EXPECT_THROW((void)RunSpec::parse("scenario=compression shape=cube"),
               ContractViolation);
  EXPECT_THROW((void)RunSpec::parse("scenario=compression n=0"),
               ContractViolation);
  EXPECT_THROW((void)RunSpec::parse("scenario=compression replicas=0"),
               ContractViolation);
  EXPECT_THROW((void)RunSpec::parse("scenario=compression steps=-5"),
               ContractViolation);
  EXPECT_THROW((void)RunSpec::parse("scenario=compression n=ten"),
               ContractViolation);
  // threads: sign errors and typo'd huge counts (spawned as asked, not
  // clamped to cores) are rejected; the documented cap is 1024.
  EXPECT_THROW((void)RunSpec::parse("scenario=compression threads=-1"),
               ContractViolation);
  EXPECT_THROW((void)RunSpec::parse("scenario=compression threads=4096"),
               ContractViolation);
  EXPECT_EQ(RunSpec::parse("scenario=compression threads=1024").threads,
            1024u);
  // Programmatically built specs skip parse-time checks; validate() (the
  // gate sim::run trusts) must enforce the same invariants.
  RunSpec programmatic = RunSpec::parse("scenario=compression");
  programmatic.threads = 100000;
  EXPECT_THROW(programmatic.validate(), ContractViolation);
  programmatic.threads = 2;
  programmatic.replicas = 0;
  EXPECT_THROW(programmatic.validate(), ContractViolation);
}

TEST(SimRunSpec, ValidateRejectsUnknownScenarioParams) {
  const RunSpec spec = RunSpec::parse("scenario=compression omega=3");
  EXPECT_THROW(spec.validate(), ContractViolation);
  const RunSpec badType = RunSpec::parse("scenario=compression lambda=hot");
  EXPECT_THROW(badType.validate(), ContractViolation);
}

TEST(SimRunSpec, MakeInitialBuildsDeclaredShapes) {
  RunSpec spec = RunSpec::parse("scenario=compression n=30 shape=line");
  EXPECT_EQ(spec.makeInitial(1).size(), 30u);
  spec.shape = "spiral";
  EXPECT_EQ(spec.makeInitial(1).size(), 30u);
  spec.shape = "ring";
  spec.n = 3;
  EXPECT_EQ(spec.makeInitial(1).size(), 18u);  // 6 * radius particles
  spec.shape = "random";
  spec.n = 25;
  const auto a = spec.makeInitial(7);
  const auto b = spec.makeInitial(7);
  const auto c = spec.makeInitial(8);
  EXPECT_EQ(a.size(), 25u);
  EXPECT_TRUE(a.sameArrangement(b));  // same shape seed → same start
  EXPECT_TRUE(system::isConnected(c));
}

// -- 3. registry ------------------------------------------------------------

TEST(SimRegistry, BuiltinsAreRegisteredWithSchemas) {
  Registry& registry = Registry::instance();
  for (const char* name :
       {"compression", "separation", "alignment", "amoebot"}) {
    const Scenario* scenario = registry.find(name);
    ASSERT_NE(scenario, nullptr) << name;
    EXPECT_EQ(scenario->name(), name);
    EXPECT_FALSE(scenario->schema().params().empty());
    EXPECT_FALSE(scenario->metricNames().empty());
    EXPECT_NE(scenario->schema().find("lambda"), nullptr);
  }
  EXPECT_GE(registry.all().size(), 4u);
}

TEST(SimRegistry, UnknownScenarioThrowsWithKnownNames) {
  try {
    (void)Registry::instance().get("teleportation");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("teleportation"), std::string::npos);
    EXPECT_NE(what.find("compression"), std::string::npos);
    EXPECT_NE(what.find("separation"), std::string::npos);
  }
  EXPECT_EQ(Registry::instance().find("teleportation"), nullptr);
}

// -- 4. observers -----------------------------------------------------------

TEST(SimObserver, SamplesMatchIndependentMetricsRecomputation) {
  const RunSpec spec = RunSpec::parse(
      "scenario=compression n=40 steps=20000 checkpoint=5000 seed=77");
  MemorySink sink;
  (void)run(spec, sink);

  // Replay the identical trajectory directly and recompute every sampled
  // metric from system/metrics at the same checkpoints.
  core::ChainOptions options;  // facade default lambda=4.0
  core::CompressionEngine engine(system::lineConfiguration(40),
                                 core::CompressionModel(options), 77);
  const auto& samples = sink.samples();
  ASSERT_EQ(samples.size(), 5u);  // iteration 0 + 4 checkpoints
  const double pMin = static_cast<double>(system::pMin(40));
  for (const MemorySink::StoredSample& sample : samples) {
    engine.run(sample.iteration - engine.stats().steps);
    ASSERT_EQ(sample.values.size(), 5u);
    EXPECT_EQ(sample.values[0], static_cast<double>(engine.edges()));
    const auto perimeter =
        static_cast<double>(system::perimeter(engine.system()));
    EXPECT_EQ(sample.values[1], perimeter);
    EXPECT_EQ(sample.values[2], perimeter / pMin);
    EXPECT_EQ(sample.values[3], engine.stats().movement.acceptanceRate());
    EXPECT_EQ(sample.values[4],
              static_cast<double>(system::countHoles(engine.system())));
    EXPECT_EQ(engine.edges(), system::countEdges(engine.system()));
  }
}

TEST(SimObserver, CsvSinkWritesHeaderAndOneRowPerSample) {
  const std::string path = ::testing::TempDir() + "sim_api_csv_sink.csv";
  const RunSpec spec = RunSpec::parse(
      "scenario=separation n=24 steps=4000 checkpoint=1000 replicas=2 "
      "csv=" + path);
  MemorySink sink;
  (void)run(spec, sink);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "replica,iteration,edges,perimeter,alpha,hom_fraction");
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, sink.samples().size());
  EXPECT_EQ(rows, 2u * 5u);  // 2 replicas × (iteration 0 + 4 checkpoints)
  std::remove(path.c_str());
}

TEST(SimObserver, MemorySinkReplayPreservesEveryEvent) {
  const RunSpec spec = RunSpec::parse(
      "scenario=compression n=20 steps=2000 checkpoint=1000 snapshots=true");
  MemorySink original;
  (void)run(spec, original);
  ASSERT_FALSE(original.samples().empty());
  ASSERT_FALSE(original.snapshots().empty());
  ASSERT_EQ(original.summaries().size(), 1u);

  MemorySink copy;
  original.replayInto(copy, /*withRunBoundaries=*/true);
  ASSERT_EQ(copy.samples().size(), original.samples().size());
  for (std::size_t i = 0; i < copy.samples().size(); ++i) {
    EXPECT_EQ(copy.samples()[i].iteration, original.samples()[i].iteration);
    EXPECT_EQ(copy.samples()[i].values, original.samples()[i].values);
  }
  ASSERT_EQ(copy.snapshots().size(), original.snapshots().size());
  for (std::size_t i = 0; i < copy.snapshots().size(); ++i) {
    EXPECT_TRUE(copy.snapshots()[i].system.sameArrangement(
        original.snapshots()[i].system));
  }
  EXPECT_TRUE(copy.summaries()[0].system.sameArrangement(
      original.summaries()[0].system));
  EXPECT_EQ(copy.summaries()[0].summary.finalMetrics,
            original.summaries()[0].summary.finalMetrics);
}

/// A scenario that declares one set of metric columns but emits whatever
/// it was constructed with — the deliberately lying scenario behind the
/// JSONL sink's regression tests.  Registered once per process under its
/// given unique name.
class FixedMetricsScenario : public Scenario {
 public:
  FixedMetricsScenario(std::string name, std::vector<std::string> declared,
                       std::vector<double> emitted)
      : name_(std::move(name)), declared_(std::move(declared)),
        emitted_(std::move(emitted)) {}

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::string description() const override {
    return "test scenario with fixed metric emissions";
  }
  [[nodiscard]] ParamSchema schema() const override { return {}; }
  [[nodiscard]] std::vector<std::string> metricNames() const override {
    return declared_;
  }
  [[nodiscard]] std::unique_ptr<ScenarioRun> start(
      const RunSpec&, std::uint64_t, unsigned) const override {
    class Run : public ScenarioRun {
     public:
      explicit Run(std::vector<double> emitted)
          : emitted_(std::move(emitted)) {}
      void advance(std::uint64_t steps) override { done_ += steps; }
      [[nodiscard]] std::uint64_t stepsDone() const override { return done_; }
      void sampleMetrics(std::vector<double>& out) const override {
        out.insert(out.end(), emitted_.begin(), emitted_.end());
      }
      [[nodiscard]] system::ParticleSystem snapshot() const override {
        return system::lineConfiguration(1);
      }

     private:
      std::vector<double> emitted_;
      std::uint64_t done_ = 0;
    };
    return std::make_unique<Run>(emitted_);
  }

 private:
  std::string name_;
  std::vector<std::string> declared_;
  std::vector<double> emitted_;
};

void registerOnce(std::unique_ptr<Scenario> scenario) {
  if (Registry::instance().find(scenario->name()) == nullptr) {
    Registry::instance().add(std::move(scenario));
  }
}

TEST(SimObserver, JsonlSinkRejectsMetricCountMismatch) {
  // src/sim/observer.cpp once indexed metricNames_[i] for every emitted
  // value with no bounds guard: a sample wider than the declared metric
  // row walked off the vector.  The sink-level guard must hold for
  // direct users too (sim::run additionally rejects lying scenarios
  // before any sink sees them — SimRunner.RunnerRejectsLyingScenario).
  const std::string path = ::testing::TempDir() + "lying_sink.jsonl";
  JsonlSink sink(path);
  RunHeader header;
  header.metricNames = {"m"};
  sink.onRunBegin(header);
  const std::vector<double> tooWide = {1.0, 2.0};
  EXPECT_THROW(sink.onSample(Sample{0, 0, tooWide}), ContractViolation);
  std::remove(path.c_str());
}

TEST(SimRunner, RunnerRejectsLyingScenario) {
  // The runner enforces the declared metric count once for every
  // consumer (sinks, StopWhen, reports): a scenario emitting more values
  // than its metricNames() declares is a scenario bug and fails loudly
  // even with no sink attached.
  registerOnce(std::make_unique<FixedMetricsScenario>(
      "test-lying-metrics", std::vector<std::string>{"m"},
      std::vector<double>{1.0, 2.0}));
  const RunSpec spec = RunSpec::parse("scenario=test-lying-metrics steps=1");
  Observer none;
  EXPECT_THROW((void)run(spec, none), ContractViolation);
}

TEST(SimObserver, JsonlSinkEmitsNullForNonFiniteMetrics) {
  // nan/inf are not JSON: a non-finite metric value must land as null so
  // every emitted line stays loadable by a strict parser.
  registerOnce(std::make_unique<FixedMetricsScenario>(
      "test-nonfinite-metrics", std::vector<std::string>{"good", "bad", "inf"},
      std::vector<double>{1.5, std::numeric_limits<double>::quiet_NaN(),
                          std::numeric_limits<double>::infinity()}));
  RunSpec spec = RunSpec::parse("scenario=test-nonfinite-metrics steps=1");
  const std::string path = ::testing::TempDir() + "nonfinite_metrics.jsonl";
  spec.jsonlPath = path;
  Observer none;
  (void)run(spec, none);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string contents = buffer.str();
  std::remove(path.c_str());
  EXPECT_NE(contents.find("\"good\":1.5"), std::string::npos) << contents;
  EXPECT_NE(contents.find("\"bad\":null"), std::string::npos) << contents;
  EXPECT_NE(contents.find("\"inf\":null"), std::string::npos) << contents;
  EXPECT_EQ(contents.find("nan"), std::string::npos) << contents;
  EXPECT_EQ(contents.find(":inf"), std::string::npos) << contents;
}

// -- 5. facade ↔ direct-engine golden identity ------------------------------

TEST(SimGolden, CompressionFacadeMatchesDirectEngine) {
  const RunSpec spec = RunSpec::parse(
      "scenario=compression n=60 steps=150000 seed=1603 lambda=4.0");
  MemorySink sink;
  const RunReport report = run(spec, sink);

  core::ChainOptions options;
  options.lambda = 4.0;
  core::CompressionEngine direct(system::lineConfiguration(60),
                                 core::CompressionModel(options), 1603);
  direct.run(150000);
  ASSERT_EQ(sink.summaries().size(), 1u);
  EXPECT_TRUE(
      sink.summaries()[0].system.sameArrangement(direct.system()));
  EXPECT_EQ(report.finalMetric(0, "edges"),
            static_cast<double>(direct.edges()));
  EXPECT_EQ(report.finalMetric(0, "acceptance"),
            direct.stats().movement.acceptanceRate());
  EXPECT_EQ(report.replicas[0].steps, 150000u);
}

TEST(SimGolden, SeparationFacadeMatchesDirectEngine) {
  const RunSpec spec = RunSpec::parse(
      "scenario=separation n=40 steps=150000 seed=7 lambda=4.0 gamma=4.0");
  MemorySink sink;
  const RunReport report = run(spec, sink);

  core::SeparationModel::Options options;  // lambda = gamma = 4.0
  core::SeparationEngine direct(
      system::lineConfiguration(40),
      core::SeparationModel(options, system::alternatingClasses(40, 2)), 7);
  direct.run(150000);
  EXPECT_TRUE(
      sink.summaries()[0].system.sameArrangement(direct.system()));
  EXPECT_EQ(report.finalMetric(0, "edges"),
            static_cast<double>(direct.edges()));
  EXPECT_EQ(
      report.finalMetric(0, "hom_fraction"),
      static_cast<double>(direct.model().homogeneousEdges(direct.system())) /
          static_cast<double>(system::countEdges(direct.system())));
}

TEST(SimGolden, AlignmentFacadeMatchesDirectEngine) {
  const RunSpec spec = RunSpec::parse(
      "scenario=alignment n=40 steps=150000 seed=11 kappa=6.0");
  MemorySink sink;
  const RunReport report = run(spec, sink);

  core::AlignmentModel::Options options;
  options.kappa = 6.0;
  core::AlignmentEngine direct(
      system::lineConfiguration(40),
      core::AlignmentModel(options, system::alternatingClasses(40, 6)), 11);
  direct.run(150000);
  EXPECT_TRUE(
      sink.summaries()[0].system.sameArrangement(direct.system()));
  EXPECT_EQ(
      report.finalMetric(0, "aligned_fraction"),
      static_cast<double>(direct.model().alignedEdges(direct.system())) /
          static_cast<double>(system::countEdges(direct.system())));
}

TEST(SimGolden, ReplicaSeedsMatchDirectEngineRuns) {
  const RunSpec spec = RunSpec::parse(
      "scenario=compression n=30 steps=40000 seed=100 seed-stride=13 "
      "replicas=3 threads=2");
  const RunReport report = run(spec);
  ASSERT_EQ(report.replicas.size(), 3u);
  for (std::size_t r = 0; r < 3; ++r) {
    core::ChainOptions options;
    core::CompressionEngine direct(system::lineConfiguration(30),
                                   core::CompressionModel(options),
                                   100 + 13 * r);
    direct.run(40000);
    EXPECT_EQ(report.replicas[r].seed, 100u + 13u * r);
    EXPECT_EQ(report.finalMetric(r, "edges"),
              static_cast<double>(direct.edges()));
  }
}

// -- 6. runner dispatch ------------------------------------------------------

TEST(SimRunner, MultiReplicaRunsAreThreadCountIndependent) {
  const char* text =
      "scenario=separation n=30 steps=30000 checkpoint=10000 replicas=4 "
      "gamma=2.0 seed=5";
  RunSpec one = RunSpec::parse(text);
  one.threads = 1;
  RunSpec four = RunSpec::parse(text);
  four.threads = 4;
  MemorySink sinkOne;
  MemorySink sinkFour;
  const RunReport a = run(one, sinkOne);
  const RunReport b = run(four, sinkFour);
  ASSERT_EQ(sinkOne.samples().size(), sinkFour.samples().size());
  for (std::size_t i = 0; i < sinkOne.samples().size(); ++i) {
    EXPECT_EQ(sinkOne.samples()[i].replica, sinkFour.samples()[i].replica);
    EXPECT_EQ(sinkOne.samples()[i].iteration,
              sinkFour.samples()[i].iteration);
    EXPECT_EQ(sinkOne.samples()[i].values, sinkFour.samples()[i].values);
  }
  for (std::size_t r = 0; r < a.replicas.size(); ++r) {
    EXPECT_EQ(a.replicas[r].finalMetrics, b.replicas[r].finalMetrics);
  }
}

TEST(SimRunner, AmoebotFacadeIsThreadCountIndependentAndRuns) {
  const char* text = "scenario=amoebot n=40 steps=60000 seed=3";
  RunSpec one = RunSpec::parse(text);
  one.threads = 1;
  RunSpec three = RunSpec::parse(text);
  three.threads = 3;
  MemorySink sinkOne;
  MemorySink sinkThree;
  const RunReport a = run(one, sinkOne);
  const RunReport b = run(three, sinkThree);
  EXPECT_GE(a.replicas[0].steps, 60000u);
  EXPECT_EQ(a.replicas[0].steps, b.replicas[0].steps);
  EXPECT_EQ(a.replicas[0].finalMetrics[0], b.replicas[0].finalMetrics[0]);
  EXPECT_TRUE(sinkOne.summaries()[0].system.sameArrangement(
      sinkThree.summaries()[0].system));
  EXPECT_TRUE(system::isConnected(sinkOne.summaries()[0].system));
}

TEST(SimRunner, ChainFacadeShardedIsThreadCountIndependent) {
  // threads > 1 on a single-replica chain spec routes through
  // core::ShardedChainRunner; its trajectory is a pure function of the
  // seed, so any two thread counts > 1 must produce identical sample
  // streams and final configurations.  (threads ≤ 1 stays on the
  // sequential engine — pinned draw-for-draw by the SimGolden tests.)
  const char* text =
      "scenario=separation n=100 steps=40000 checkpoint=20000 seed=11 "
      "gamma=2.0";
  RunSpec two = RunSpec::parse(text);
  two.threads = 2;
  RunSpec seven = RunSpec::parse(text);
  seven.threads = 7;
  MemorySink sinkTwo;
  MemorySink sinkSeven;
  const RunReport a = run(two, sinkTwo);
  const RunReport b = run(seven, sinkSeven);
  EXPECT_GE(a.replicas[0].steps, 40000u);  // epochs round the step count up
  EXPECT_EQ(a.replicas[0].steps, b.replicas[0].steps);
  EXPECT_EQ(a.replicas[0].finalMetrics, b.replicas[0].finalMetrics);
  ASSERT_EQ(sinkTwo.samples().size(), sinkSeven.samples().size());
  for (std::size_t i = 0; i < sinkTwo.samples().size(); ++i) {
    EXPECT_EQ(sinkTwo.samples()[i].iteration, sinkSeven.samples()[i].iteration);
    EXPECT_EQ(sinkTwo.samples()[i].values, sinkSeven.samples()[i].values);
  }
  EXPECT_TRUE(sinkTwo.summaries()[0].system.sameArrangement(
      sinkSeven.summaries()[0].system));
  EXPECT_TRUE(system::isConnected(sinkTwo.summaries()[0].system));
}

TEST(SimRunner, StopWhenSharedAcrossWorkers) {
  // The documented StopWhen contract (sim/runner.hpp): ONE predicate,
  // invoked concurrently and unsynchronized from every ensemble worker.
  // Synchronized captured state (an atomic) is the supported shape for
  // anything beyond a pure function of the sample; this test runs under
  // TSan in CI (suite SimRunner is in the tsan filter), so an
  // unsynchronized-capture regression in the runner itself would be a
  // reported race, not silent corruption.
  RunSpec spec = RunSpec::parse(
      "scenario=compression n=20 steps=40000 checkpoint=5000 replicas=6 "
      "seed=2");
  spec.threads = 3;
  std::atomic<std::uint64_t> calls{0};
  Observer none;
  const RunReport report =
      run(spec, none, [&calls](const Sample& sample) {
        calls.fetch_add(1, std::memory_order_relaxed);
        return sample.iteration >= 20000;  // pure per-replica decision
      });
  ASSERT_EQ(report.replicas.size(), 6u);
  for (const ReplicaSummary& replica : report.replicas) {
    EXPECT_EQ(replica.steps, 20000u);  // each replica stopped independently
  }
  // Samples at 0, 5k, 10k, 15k, 20k per replica — all of them observed.
  EXPECT_EQ(calls.load(), 6u * 5u);
}

TEST(SimRunner, RejectsEpochEventsBeyondMemoryCap) {
  // The sharded runners materialize one epoch's event schedule in
  // memory, so a steps-sized value mis-keyed into epoch-events must be
  // rejected before any allocation happens.
  const RunSpec spec = RunSpec::parse(
      "scenario=compression n=30 steps=10 threads=2 "
      "epoch-events=10000000000");
  Observer none;
  EXPECT_THROW((void)run(spec, none), ContractViolation);
}

TEST(SimRunner, StopWhenEndsReplicasEarly) {
  const RunSpec spec = RunSpec::parse(
      "scenario=compression n=30 steps=10000000 checkpoint=10000 seed=1603");
  Observer none;
  // alpha is column 2 of the compression metrics.
  const RunReport report =
      run(spec, none,
          [](const Sample& sample) { return sample.values[2] <= 2.0; });
  EXPECT_LT(report.replicas[0].steps, 10000000u);
  EXPECT_LE(report.finalMetric(0, "alpha"), 2.0);
}

}  // namespace
}  // namespace sops::sim
