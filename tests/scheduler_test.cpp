// Tests for the asynchronous schedulers (S7): Poisson clocks, sequential
// uniform activation, round-robin, and round tracking (§2.1, §3.2).
#include <gtest/gtest.h>

#include <vector>

#include "amoebot/scheduler.hpp"

namespace sops::amoebot {
namespace {

TEST(PoissonScheduler, TimesAreStrictlyIncreasing) {
  PoissonScheduler scheduler(5, rng::Random(1));
  double last = -1.0;
  for (int i = 0; i < 1000; ++i) {
    const Activation a = scheduler.next();
    EXPECT_GT(a.time, last);
    last = a.time;
    EXPECT_LT(a.particle, 5u);
  }
}

TEST(PoissonScheduler, UniformRatesActivateUniformly) {
  const std::size_t particles = 10;
  PoissonScheduler scheduler(particles, rng::Random(2));
  std::vector<int> counts(particles, 0);
  const int total = 100000;
  for (int i = 0; i < total; ++i) ++counts[scheduler.next().particle];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), total / 10.0, 600.0);
  }
}

TEST(PoissonScheduler, HeterogeneousRatesBiasActivations) {
  // Paper §3.2: per-particle Poisson rates are allowed; a particle with
  // rate 3 activates about 3x as often as a rate-1 particle.
  PoissonScheduler scheduler(2, rng::Random(3), {1.0, 3.0});
  std::vector<int> counts(2, 0);
  for (int i = 0; i < 40000; ++i) ++counts[scheduler.next().particle];
  const double ratio = static_cast<double>(counts[1]) / counts[0];
  EXPECT_NEAR(ratio, 3.0, 0.3);
}

TEST(PoissonScheduler, InterActivationGapsAreExponential) {
  PoissonScheduler scheduler(1, rng::Random(4));
  double previous = 0.0;
  double sum = 0.0;
  double sumSquares = 0.0;
  const int samples = 50000;
  for (int i = 0; i < samples; ++i) {
    const Activation a = scheduler.next();
    const double gap = a.time - previous;
    previous = a.time;
    sum += gap;
    sumSquares += gap * gap;
  }
  const double mean = sum / samples;
  const double variance = sumSquares / samples - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.02);      // Exp(1) mean
  EXPECT_NEAR(variance, 1.0, 0.05);  // Exp(1) variance
}

TEST(PoissonScheduler, DeterministicPerSeed) {
  // The activation sequence (times and particles) must be a pure function
  // of the seed and rates — never of priority-queue internals.
  PoissonScheduler a(50, rng::Random(42));
  PoissonScheduler b(50, rng::Random(42));
  for (int i = 0; i < 20000; ++i) {
    const Activation x = a.next();
    const Activation y = b.next();
    ASSERT_EQ(x.particle, y.particle) << "diverged at " << i;
    ASSERT_EQ(x.time, y.time) << "diverged at " << i;
  }
}

TEST(PoissonScheduler, DeterministicPerSeedWithHeterogeneousRates) {
  std::vector<double> rates(30);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    rates[i] = 0.25 + static_cast<double>(i % 5);
  }
  PoissonScheduler a(30, rng::Random(7), rates);
  PoissonScheduler b(30, rng::Random(7), rates);
  for (int i = 0; i < 20000; ++i) {
    const Activation x = a.next();
    const Activation y = b.next();
    ASSERT_EQ(x.particle, y.particle) << "diverged at " << i;
    ASSERT_EQ(x.time, y.time) << "diverged at " << i;
  }
}

TEST(PoissonScheduler, SimultaneousTicksPopInParticleIdOrder) {
  // Tie-breaking audit: exponential clocks make ties measure-zero, but
  // the ordering contract must not lean on that (or on heap internals).
  // Through the initial-times seam, five particles all due at t = 1 must
  // activate in id order regardless of how the heap was populated.
  PoissonScheduler scheduler({1.0, 1.0, 1.0, 1.0, 1.0}, rng::Random(3));
  for (std::size_t expected = 0; expected < 5; ++expected) {
    const Activation a = scheduler.next();
    EXPECT_EQ(a.particle, expected);
    EXPECT_EQ(a.time, 1.0);
  }
}

TEST(PoissonScheduler, SeamTimesPopInTimeThenIdOrder) {
  // Mixed distinct and tied times: (0.5, id 3), then the t = 2 pair in id
  // order, then id 1.  Vanishing rates push every rescheduled tick far
  // past the seeded ones, so the first four pops are exactly the seam.
  PoissonScheduler scheduler({2.0, 4.0, 2.0, 0.5}, rng::Random(5),
                             {1e-9, 1e-9, 1e-9, 1e-9});
  EXPECT_EQ(scheduler.next().particle, 3u);
  EXPECT_EQ(scheduler.next().particle, 0u);
  EXPECT_EQ(scheduler.next().particle, 2u);
  EXPECT_EQ(scheduler.next().particle, 1u);
  // The queue keeps refilling from the clocks with nondecreasing times.
  double last = 0.0;
  for (int i = 0; i < 100; ++i) {
    const Activation a = scheduler.next();
    EXPECT_GE(a.time, last);
    last = a.time;
  }
}

TEST(PoissonScheduler, RejectsBadRates) {
  EXPECT_THROW(PoissonScheduler(2, rng::Random(5), {1.0}), ContractViolation);
  EXPECT_THROW(PoissonScheduler(2, rng::Random(5), {1.0, 0.0}),
               ContractViolation);
}

TEST(SequentialScheduler, UniformSelection) {
  SequentialScheduler scheduler(6, rng::Random(6));
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 60000; ++i) ++counts[scheduler.next()];
  for (const int c : counts) EXPECT_NEAR(static_cast<double>(c), 10000.0,
                                         500.0);
}

TEST(RoundRobinScheduler, EveryParticleOncePerRound) {
  RoundRobinScheduler scheduler(7, rng::Random(7));
  for (int round = 0; round < 20; ++round) {
    std::vector<int> counts(7, 0);
    for (int i = 0; i < 7; ++i) ++counts[scheduler.next()];
    for (const int c : counts) EXPECT_EQ(c, 1);
  }
  EXPECT_EQ(scheduler.roundsCompleted(), 20u);
}

TEST(RoundTracker, CompletesWhenAllSeen) {
  RoundTracker tracker(3);
  tracker.recordActivation(0);
  tracker.recordActivation(0);
  tracker.recordActivation(1);
  EXPECT_EQ(tracker.rounds(), 0u);
  tracker.recordActivation(2);
  EXPECT_EQ(tracker.rounds(), 1u);
  tracker.recordActivation(1);
  tracker.recordActivation(0);
  tracker.recordActivation(2);
  EXPECT_EQ(tracker.rounds(), 2u);
}

TEST(RoundTracker, PoissonRoundsAreCoupnCollectorish) {
  // With uniform clocks, one round takes ≈ n·H(n) activations in
  // expectation (coupon collector): for n=20 that is about 72.
  const std::size_t n = 20;
  PoissonScheduler scheduler(n, rng::Random(8));
  RoundTracker tracker(n);
  std::uint64_t activations = 0;
  while (tracker.rounds() < 200) {
    tracker.recordActivation(scheduler.next().particle);
    ++activations;
  }
  const double perRound = static_cast<double>(activations) / 200.0;
  EXPECT_GT(perRound, 50.0);
  EXPECT_LT(perRound, 100.0);
}

}  // namespace
}  // namespace sops::amoebot
