// Exhaustive validation of the 256-entry precomputed move table against
// both the reference predicates (properties.hpp) and an independent
// brute-force implementation of ring connectivity, plus the λ-power /
// acceptance-probability consistency the decision tables rely on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "core/compression_chain.hpp"
#include "core/move_table.hpp"
#include "core/properties.hpp"

namespace sops::core {
namespace {

int popcount8(std::uint8_t v) {
  int count = 0;
  for (int i = 0; i < 8; ++i) count += (v >> i) & 1;
  return count;
}

/// Independent Property 1: S nonempty and every set bit reaches a common
/// neighbor (idx 0 or 4) walking the 8-cycle through set bits — literal
/// graph search on the ring, sharing no code with property1Holds.
bool bruteForceProperty1(std::uint8_t mask) {
  if ((mask & kCommonMask) == 0) return false;
  for (int start = 0; start < 8; ++start) {
    if (((mask >> start) & 1u) == 0) continue;
    // BFS along the cycle restricted to set bits.
    bool visited[8] = {};
    int stack[8];
    int top = 0;
    stack[top++] = start;
    visited[start] = true;
    bool reachesCommon = false;
    while (top > 0) {
      const int i = stack[--top];
      if (i == 0 || i == 4) reachesCommon = true;
      for (const int j : {(i + 1) % 8, (i + 7) % 8}) {
        if (!visited[j] && ((mask >> j) & 1u)) {
          visited[j] = true;
          stack[top++] = j;
        }
      }
    }
    if (!reachesCommon) return false;
  }
  return true;
}

/// Independent Property 2: S empty, both open 3-paths {1,2,3} and {5,6,7}
/// nonempty and internally connected (set bits contiguous on the path).
bool bruteForceProperty2(std::uint8_t mask) {
  if ((mask & kCommonMask) != 0) return false;
  const auto sideConnected = [&](int a, int b, int c) {
    const bool ba = (mask >> a) & 1u, bb = (mask >> b) & 1u,
               bc = (mask >> c) & 1u;
    if (!ba && !bb && !bc) return false;  // empty side
    return !(ba && bc && !bb);            // only {a,c} w/o middle disconnects
  };
  return sideConnected(1, 2, 3) && sideConnected(5, 6, 7);
}

TEST(MoveTable, NeighborCountsMatchPopcountsForAllMasks) {
  for (int m = 0; m < 256; ++m) {
    const auto mask = static_cast<std::uint8_t>(m);
    const MoveTableEntry& entry = moveTableEntry(mask);
    EXPECT_EQ(entry.eBefore, popcount8(mask & kBeforeMask)) << "mask " << m;
    EXPECT_EQ(entry.eAfter, popcount8(mask & kAfterMask)) << "mask " << m;
    EXPECT_EQ(entry.delta, entry.eAfter - entry.eBefore) << "mask " << m;
  }
}

TEST(MoveTable, FlagsMatchReferencePredicatesForAllMasks) {
  for (int m = 0; m < 256; ++m) {
    const auto mask = static_cast<std::uint8_t>(m);
    const MoveTableEntry& entry = moveTableEntry(mask);
    EXPECT_EQ((entry.flags & kMoveGapOk) != 0, neighborsBefore(mask) != 5)
        << "mask " << m;
    EXPECT_EQ((entry.flags & kMoveProperty1) != 0, property1Holds(mask))
        << "mask " << m;
    EXPECT_EQ((entry.flags & kMoveProperty2) != 0, property2Holds(mask))
        << "mask " << m;
    EXPECT_EQ((entry.flags & kMoveStructOk) != 0, moveStructurallyValid(mask))
        << "mask " << m;
  }
}

TEST(MoveTable, FlagsMatchBruteForceRingSearchForAllMasks) {
  for (int m = 0; m < 256; ++m) {
    const auto mask = static_cast<std::uint8_t>(m);
    const MoveTableEntry& entry = moveTableEntry(mask);
    EXPECT_EQ((entry.flags & kMoveProperty1) != 0, bruteForceProperty1(mask))
        << "mask " << m;
    EXPECT_EQ((entry.flags & kMoveProperty2) != 0, bruteForceProperty2(mask))
        << "mask " << m;
  }
}

TEST(MoveTable, PropertiesAreMutuallyExclusive) {
  // P1 needs S ≠ ∅, P2 needs S = ∅ — no mask can satisfy both.
  for (int m = 0; m < 256; ++m) {
    const MoveTableEntry& entry = moveTableEntry(static_cast<std::uint8_t>(m));
    EXPECT_FALSE((entry.flags & kMoveProperty1) &&
                 (entry.flags & kMoveProperty2))
        << "mask " << m;
  }
}

TEST(RingOffsets, MatchRingCellForAllDirectionsAndAnchors) {
  // The precomputed hot-path offset table must agree with the geometric
  // ringCell source of truth at arbitrary anchors.
  for (const lattice::TriPoint l :
       {lattice::TriPoint{0, 0}, lattice::TriPoint{17, -4},
        lattice::TriPoint{-1000, 1000}}) {
    for (const auto d : lattice::kAllDirections) {
      for (int idx = 0; idx < kRingSize; ++idx) {
        EXPECT_EQ(l + kRingOffsets[lattice::index(d)][idx], ringCell(l, d, idx))
            << "dir " << lattice::index(d) << " idx " << idx;
      }
    }
  }
}

TEST(MoveTable, LambdaPowerMatchesStdPowForAllDeltas) {
  for (const double lambda : {0.5, 1.0, 2.0, 4.0, 6.823}) {
    for (int delta = -5; delta <= 5; ++delta) {
      EXPECT_EQ(lambdaPower(lambda, delta),
                std::pow(lambda, static_cast<double>(delta)))
          << "lambda " << lambda << " delta " << delta;
    }
  }
}

TEST(MoveTable, AcceptanceProbabilityConsistentWithTableForAllMasks) {
  // acceptanceProbability (the kernel the exact transition-matrix builder
  // uses) must agree bit-for-bit with min(1, λ^δ) from the shared
  // lambdaPower — for every mask and a grid of λ values.
  for (const double lambda : {0.5, 1.0, 2.0, 4.0}) {
    ChainOptions options;
    options.lambda = lambda;
    for (int m = 0; m < 256; ++m) {
      const auto mask = static_cast<std::uint8_t>(m);
      const MoveTableEntry& entry = moveTableEntry(mask);
      MoveEvaluation eval;
      eval.mask = mask;
      eval.eBefore = entry.eBefore;
      eval.eAfter = entry.eAfter;
      eval.gapOk = (entry.flags & kMoveGapOk) != 0;
      eval.property1 = (entry.flags & kMoveProperty1) != 0;
      eval.property2 = (entry.flags & kMoveProperty2) != 0;
      eval.propertyOk = eval.property1 || eval.property2;
      const double p = acceptanceProbability(eval, options);
      if (!eval.gapOk || !eval.propertyOk) {
        EXPECT_EQ(p, 0.0) << "mask " << m;
      } else {
        const double expected =
            std::min(1.0, lambdaPower(lambda, entry.delta));
        EXPECT_EQ(p, expected) << "mask " << m << " lambda " << lambda;
      }
    }
  }
}

}  // namespace
}  // namespace sops::core
