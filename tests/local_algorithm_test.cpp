// Tests for Algorithm A (S7): step semantics, the flag protocol, fault
// behavior, the paper's invariants under asynchronous execution, and
// distributional equivalence with M on a tiny system (§3.2, E11).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <unordered_map>

#include "amoebot/faults.hpp"
#include "amoebot/local_compression.hpp"
#include "amoebot/scheduler.hpp"
#include "enumeration/exact_distribution.hpp"
#include "markov/stationary.hpp"
#include "system/canonical.hpp"
#include "system/metrics.hpp"
#include "system/shapes.hpp"

namespace sops::amoebot {
namespace {

using lattice::Direction;
using lattice::TriPoint;

TEST(LocalAlgorithm, ContractedActivationExpandsIntoFreeCell) {
  rng::Random rng(1);
  AmoebotSystem sys(system::lineConfiguration(2), rng);
  const LocalCompressionAlgorithm algo({4.0});
  rng::Random coin(2);
  // Keep activating particle 0 until it expands (free ports exist).
  bool expanded = false;
  for (int i = 0; i < 100 && !expanded; ++i) {
    expanded = algo.activate(sys, 0, coin) == ActivationResult::Expanded;
  }
  EXPECT_TRUE(expanded);
  EXPECT_TRUE(sys.particle(0).expanded);
  // With no other expanded particles around, the flag must be set.
  EXPECT_TRUE(sys.particle(0).flag);
}

TEST(LocalAlgorithm, ExpandedActivationAlwaysContracts) {
  rng::Random rng(3);
  AmoebotSystem sys(system::lineConfiguration(3), rng);
  const LocalCompressionAlgorithm algo({4.0});
  rng::Random coin(4);
  for (int i = 0; i < 200; ++i) {
    const ActivationResult result = algo.activate(sys, 1, coin);
    if (result == ActivationResult::Expanded) {
      const ActivationResult second = algo.activate(sys, 1, coin);
      EXPECT_TRUE(second == ActivationResult::MovedToHead ||
                  second == ActivationResult::ContractedBack);
      EXPECT_FALSE(sys.particle(1).expanded);
    }
  }
}

TEST(LocalAlgorithm, NeighborOfExpandedParticleDoesNotExpand) {
  rng::Random rng(5);
  AmoebotSystem sys(system::lineConfiguration(2), rng);
  const LocalCompressionAlgorithm algo({4.0});
  sys.expand(0, Direction::NorthEast);
  rng::Random coin(6);
  // Particle 1 is adjacent to expanded particle 0: step 3 forbids expanding.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(algo.activate(sys, 1, coin), ActivationResult::Idle);
  }
}

TEST(LocalAlgorithm, FlagFalseForcesContractBack) {
  rng::Random rng(7);
  AmoebotSystem sys(system::lineConfiguration(3), rng);
  const LocalCompressionAlgorithm algo({1000.0});  // accepts any move
  sys.expand(0, Direction::NorthEast);
  sys.setFlag(0, false);  // simulate a concurrent expansion nearby
  rng::Random coin(8);
  EXPECT_EQ(algo.activate(sys, 0, coin), ActivationResult::ContractedBack);
  EXPECT_EQ(sys.particle(0).tail, (TriPoint{0, 0}));
}

TEST(LocalAlgorithm, CrashedParticlesNeverAct) {
  rng::Random rng(9);
  AmoebotSystem sys(system::lineConfiguration(3), rng);
  sys.markCrashed(1);
  const LocalCompressionAlgorithm algo({4.0});
  rng::Random coin(10);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(algo.activate(sys, 1, coin), ActivationResult::Idle);
  }
  EXPECT_EQ(sys.particle(1).tail, (TriPoint{1, 0}));
}

TEST(LocalAlgorithm, ByzantineExpandsAndRefusesToContract) {
  rng::Random rng(11);
  AmoebotSystem sys(system::lineConfiguration(3), rng);
  sys.markByzantine(0);
  const LocalCompressionAlgorithm algo({4.0});
  rng::Random coin(12);
  EXPECT_EQ(algo.activate(sys, 0, coin), ActivationResult::Expanded);
  EXPECT_TRUE(sys.particle(0).expanded);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(algo.activate(sys, 0, coin), ActivationResult::Idle);
    EXPECT_TRUE(sys.particle(0).expanded);
  }
}

TEST(LocalAlgorithm, TailConfigurationInvariantsUnderPoissonExecution) {
  // The paper's invariants, asserted along an asynchronous run: the tail
  // configuration stays connected (Lemma 3.1) and, once hole-free, stays
  // hole-free (Lemma 3.2).
  rng::Random rng(13);
  AmoebotSystem sys(system::lineConfiguration(20), rng);
  const LocalCompressionAlgorithm algo({4.0});
  PoissonScheduler scheduler(sys.size(), rng::Random(14));
  rng::Random coin(15);
  for (int burst = 0; burst < 150; ++burst) {
    for (int i = 0; i < 1000; ++i) {
      algo.activate(sys, scheduler.next().particle, coin);
    }
    const system::ParticleSystem tails = sys.tailConfiguration();
    ASSERT_TRUE(system::isConnected(tails)) << "burst " << burst;
    ASSERT_EQ(system::countHoles(tails), 0) << "burst " << burst;
  }
}

TEST(LocalAlgorithm, CompressesLikeM) {
  // Behavioral equivalence in the large: A at λ=4 compresses a 40-particle
  // line well below half its initial perimeter.
  rng::Random rng(16);
  AmoebotSystem sys(system::lineConfiguration(40), rng);
  const LocalCompressionAlgorithm algo({4.0});
  PoissonScheduler scheduler(sys.size(), rng::Random(17));
  rng::Random coin(18);
  const std::int64_t initial = system::perimeter(sys.tailConfiguration());
  for (int i = 0; i < 2500000; ++i) {
    algo.activate(sys, scheduler.next().particle, coin);
  }
  const std::int64_t finalPerimeter =
      system::perimeter(sys.tailConfiguration());
  EXPECT_LT(finalPerimeter, initial / 2);
}

TEST(LocalAlgorithm, StationaryDistributionMatchesExactPi) {
  // E11: empirical distribution of A's *quiescent* configurations (all
  // particles contracted — the states of M, §3.2 footnote 2) vs the exact
  // π(σ) = λ^{e(σ)}/Z on n=4 (44 states), in total variation.  Raw
  // time-averages over all instants carry a small (~0.06 TV) bias because
  // expansion attempts correlate with perimeter; quiescent sampling is the
  // faithful projection (measured explicitly in bench_local_algorithm).
  const int n = 4;
  const double lambda = 2.0;
  const enumeration::ExactEnsemble ensemble(n);
  std::unordered_map<std::string, std::size_t> indexOf;
  for (std::size_t i = 0; i < ensemble.configs().size(); ++i) {
    indexOf.emplace(
        system::canonicalKeyFromPoints(ensemble.configs()[i].points), i);
  }
  const std::vector<double> exact = ensemble.stationary(lambda);

  rng::Random rng(19);
  AmoebotSystem sys(system::lineConfiguration(n), rng);
  const LocalCompressionAlgorithm algo({lambda});
  PoissonScheduler scheduler(sys.size(), rng::Random(20));
  rng::Random coin(21);
  for (int i = 0; i < 20000; ++i) {  // burn-in
    algo.activate(sys, scheduler.next().particle, coin);
  }
  std::vector<double> empirical(exact.size(), 0.0);
  int samples = 0;
  const int strides = 250000;
  for (int s = 0; s < strides; ++s) {
    for (int i = 0; i < 40; ++i) {  // stride between samples
      algo.activate(sys, scheduler.next().particle, coin);
    }
    if (sys.expandedCount() != 0) continue;  // quiescent instants only
    const auto it = indexOf.find(system::canonicalKey(sys.tailConfiguration()));
    ASSERT_NE(it, indexOf.end());
    empirical[it->second] += 1.0;
    ++samples;
  }
  ASSERT_GT(samples, 20000);
  for (double& p : empirical) p /= samples;
  const double tv = markov::totalVariation(empirical, exact);
  EXPECT_LT(tv, 0.04) << "A's quiescent configurations do not sample π";
}

TEST(Faults, RandomCrashPlanSizes) {
  rng::Random rng(22);
  const FaultPlan plan = randomCrashes(100, 0.2, rng);
  EXPECT_EQ(plan.crashed.size(), 20u);
  EXPECT_TRUE(plan.byzantine.empty());
  std::set<std::size_t> distinct(plan.crashed.begin(), plan.crashed.end());
  EXPECT_EQ(distinct.size(), 20u);
}

TEST(Faults, ApplyMarksParticles) {
  rng::Random rng(23);
  AmoebotSystem sys(system::lineConfiguration(10), rng);
  FaultPlan plan;
  plan.crashed = {1, 3};
  plan.byzantine = {5};
  applyFaults(sys, plan);
  EXPECT_TRUE(sys.particle(1).crashed);
  EXPECT_TRUE(sys.particle(3).crashed);
  EXPECT_TRUE(sys.particle(5).byzantine);
  EXPECT_FALSE(sys.particle(0).crashed);
}

TEST(Faults, CompressionProceedsAroundCrashes) {
  // §3.3: with 10% crashed particles, the healthy rest still compresses.
  rng::Random rng(24);
  AmoebotSystem sys(system::lineConfiguration(30), rng);
  rng::Random faultRng(25);
  applyFaults(sys, randomCrashes(sys.size(), 0.1, faultRng));
  const LocalCompressionAlgorithm algo({4.0});
  PoissonScheduler scheduler(sys.size(), rng::Random(26));
  rng::Random coin(27);
  const std::int64_t initial = system::perimeter(sys.tailConfiguration());
  for (int i = 0; i < 2000000; ++i) {
    algo.activate(sys, scheduler.next().particle, coin);
  }
  // Crashed particles pin their (spread-out) line positions, so the
  // reachable compression is bounded by the crash geometry; a clear drop
  // below the initial perimeter is the meaningful check here, and
  // bench_fault_tolerance quantifies the full tradeoff.
  const system::ParticleSystem tails = sys.tailConfiguration();
  EXPECT_TRUE(system::isConnected(tails));
  EXPECT_LT(system::perimeter(tails),
            (3 * initial) / 4);
}

}  // namespace
}  // namespace sops::amoebot
