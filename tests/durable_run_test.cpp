// Durable runs: crash-consistent checkpoint/resume, cooperative
// cancellation, and deadlines.
//
//  1. Primitives: xoshiro/Random state round-trip; SnapshotWriter/Reader
//     typed round-trip with bounds-checked failure modes; the framed file
//     format (atomic write, checksum rejection of torn/truncated files,
//     .prev fallback);
//  2. Golden kill-and-resume: for every scenario × execution regime, a
//     run snapshotted at a checkpoint and resumed in a fresh process
//     state equals the uninterrupted run — same final arrangement, same
//     metrics, same exact step count;
//  3. Cancellation: a tripped token stops the run at the next safe point
//     with a resumable snapshot; deadline-ms arms the same machinery;
//     multi-replica cancellation skips unclaimed replicas and reports
//     honestly;
//  4. Satellites: sink-path preflight, the MemorySink buffering cap, the
//     strict text-configuration parser, and the amoebot crash-fraction
//     fault path through the facade.
//
// Suite names all start with DurableRun so CI's TSan job can filter them
// with one anchor (they re-run full trajectories and would dominate its
// wall clock; the plain jobs run them all).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "rng/random.hpp"
#include "sim/registry.hpp"
#include "sim/runner.hpp"
#include "system/metrics.hpp"
#include "system/serialize.hpp"
#include "system/snapshot.hpp"
#include "util/assert.hpp"

namespace sops {
namespace {

[[nodiscard]] std::string tempPath(const std::string& name) {
  return ::testing::TempDir() + "sops_durable_" + name;
}

// -- 1. primitives ----------------------------------------------------------

TEST(DurableRunRng, XoshiroStateRoundTripContinuesIdentically) {
  rng::Random a(1603);
  for (int i = 0; i < 100; ++i) (void)a.uniform();
  const rng::Random b = rng::Random::fromState(a.seed(), a.engine().state());
  EXPECT_EQ(b.seed(), a.seed());
  rng::Random c = a;  // reference continuation
  rng::Random d = b;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(c.bits(), d.bits());
  }
}

TEST(DurableRunPayload, WriterReaderRoundTripAllTypes) {
  system::SnapshotWriter w;
  w.u8(200);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(3.25);
  w.str("hello snapshot");
  const std::vector<std::uint8_t> blob = {1, 2, 3, 255};
  w.bytes(blob);

  system::SnapshotReader r(w.payload());
  EXPECT_EQ(r.u8(), 200);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 3.25);
  EXPECT_EQ(r.str(), "hello snapshot");
  EXPECT_EQ(r.bytes(), blob);
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_NO_THROW(r.finish());
}

TEST(DurableRunPayload, ShortReadsAndTrailingBytesThrow) {
  system::SnapshotWriter w;
  w.u32(7);
  {
    system::SnapshotReader r(w.payload());
    EXPECT_THROW((void)r.u64(), ContractViolation);  // 4 bytes can't give 8
  }
  {
    system::SnapshotReader r(w.payload());
    (void)r.u8();
    EXPECT_THROW(r.finish(), ContractViolation);  // trailing bytes
  }
  system::SnapshotWriter bad;
  bad.u64(1000);  // claims a 1000-byte string follows
  system::SnapshotReader r(bad.payload());
  EXPECT_THROW((void)r.str(), ContractViolation);
}

TEST(DurableRunFile, RoundTripsAndVerifiesChecksum) {
  const std::string path = tempPath("frame.snap");
  system::SnapshotWriter w;
  w.str("payload under test");
  w.u64(99);
  system::writeSnapshotFile(path, w.payload());

  const system::SnapshotData snapshot = system::readSnapshotFile(path);
  EXPECT_EQ(snapshot.version, system::kSnapshotVersion);
  system::SnapshotReader r(snapshot.payload, snapshot.version);
  EXPECT_EQ(r.str(), "payload under test");
  EXPECT_EQ(r.u64(), 99u);
  r.finish();

  // Flip one payload byte: the checksum must reject it, loudly.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(30);  // inside the payload (header is 28 bytes)
    char c = 0;
    f.seekg(30);
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x40);
    f.seekp(30);
    f.write(&c, 1);
  }
  try {
    (void)system::readSnapshotFile(path);
    FAIL() << "corrupt snapshot was accepted";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
}

TEST(DurableRunFile, TruncationAndWrongMagicThrow) {
  const std::string path = tempPath("trunc.snap");
  system::SnapshotWriter w;
  w.str("0123456789abcdef0123456789abcdef");
  system::writeSnapshotFile(path, w.payload());

  // Truncate mid-payload: a torn write must not parse.
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "SOPSSNAP truncated";
  }
  EXPECT_THROW((void)system::readSnapshotFile(path), ContractViolation);

  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "NOTASNAP" << std::string(40, '\0');
  }
  EXPECT_THROW((void)system::readSnapshotFile(path), ContractViolation);

  EXPECT_THROW((void)system::readSnapshotFile(tempPath("missing.snap")),
               ContractViolation);
}

TEST(DurableRunFile, TornPrimaryFallsBackToPrev) {
  const std::string path = tempPath("rotate.snap");
  system::SnapshotWriter first;
  first.u64(1);
  system::writeSnapshotFile(path, first.payload());
  system::SnapshotWriter second;
  second.u64(2);
  system::writeSnapshotFile(path, second.payload());  // rotates 1 → .prev

  // Primary intact: the newer state wins.  (The payload must outlive the
  // reader — SnapshotReader is a view, not an owner.)
  {
    const system::SnapshotData snapshot = system::loadResumableSnapshot(path);
    system::SnapshotReader r(snapshot.payload, snapshot.version);
    EXPECT_EQ(r.u64(), 2u);
  }
  // Tear the primary: the fallback must surface the previous durable
  // snapshot instead of failing the resume.
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "torn";
  }
  {
    const system::SnapshotData snapshot = system::loadResumableSnapshot(path);
    system::SnapshotReader r(snapshot.payload, snapshot.version);
    EXPECT_EQ(r.u64(), 1u);
  }
  // Both torn: loud failure naming both.
  std::remove((path + ".prev").c_str());
  EXPECT_THROW((void)system::loadResumableSnapshot(path), ContractViolation);
}

// -- 2. golden kill-and-resume ----------------------------------------------

struct FinalState {
  std::vector<double> metrics;
  std::string arrangement;
  std::uint64_t steps = 0;
  bool cancelled = false;
};

/// Captures the final configuration (the part RunReport doesn't keep).
class FinalArrangementCapture : public sim::Observer {
 public:
  void onReplicaEnd(const sim::ReplicaSummary& summary) override {
    if (summary.replica == 0 && summary.finalSystem != nullptr) {
      arrangement = system::toText(*summary.finalSystem);
    }
  }
  std::string arrangement;
};

[[nodiscard]] FinalState runToEnd(const sim::RunSpec& spec,
                                  const sim::StopWhen& stopWhen = nullptr,
                                  core::CancelToken* token = nullptr) {
  FinalArrangementCapture capture;
  const sim::RunReport report = sim::run(spec, capture, stopWhen, token);
  FinalState out;
  out.metrics = report.replicas.at(0).finalMetrics;
  out.arrangement = capture.arrangement;
  out.steps = report.replicas.at(0).steps;
  out.cancelled = report.cancelled;
  return out;
}

[[nodiscard]] sim::RunSpec baseSpec(const std::string& scenario,
                                    unsigned threads) {
  sim::RunSpec spec;
  spec.scenario = scenario;
  spec.shape = "line";
  spec.n = 48;
  spec.steps = 30000;
  spec.checkpointEvery = 6000;
  spec.seed = 1603;
  spec.threads = threads;
  return spec;
}

/// The golden contract: run uninterrupted; run the same spec "killed"
/// after two checkpoints with a snapshot-file; resume in a fresh run.
/// Final arrangement, metrics, and exact step count must all agree.
void expectKillResumeIdentical(const sim::RunSpec& base,
                               const std::string& tag,
                               unsigned resumeThreads) {
  const FinalState uninterrupted = runToEnd(base);
  ASSERT_GT(uninterrupted.steps, 0u);

  const std::string snap = tempPath(tag + ".snap");
  sim::RunSpec partial = base;
  partial.steps = base.checkpointEvery * 2;  // die after two checkpoints
  partial.snapshotPath = snap;
  const FinalState atKill = runToEnd(partial);
  ASSERT_GE(atKill.steps, partial.steps);
  ASSERT_LT(atKill.steps, base.steps);

  sim::RunSpec resumed = base;
  resumed.resumePath = snap;
  resumed.threads = resumeThreads;
  const FinalState r = runToEnd(resumed);

  EXPECT_EQ(r.steps, uninterrupted.steps) << tag;
  EXPECT_EQ(r.arrangement, uninterrupted.arrangement) << tag;
  EXPECT_EQ(r.metrics, uninterrupted.metrics) << tag;
}

TEST(DurableRunGolden, CompressionSequentialKillResume) {
  const sim::RunSpec spec = baseSpec("compression", 1);
  expectKillResumeIdentical(spec, "comp_seq", 1);
}

TEST(DurableRunGolden, CompressionShardedKillResume) {
  const sim::RunSpec spec = baseSpec("compression", 2);
  expectKillResumeIdentical(spec, "comp_sharded", 2);
}

TEST(DurableRunGolden, CompressionShardedResumeAtDifferentThreadCount) {
  // The sharded trajectory is a pure function of the seed for every
  // thread count > 1 — so is a resumed tail started at a different count.
  const sim::RunSpec spec = baseSpec("compression", 2);
  expectKillResumeIdentical(spec, "comp_sharded_hw", 4);
}

TEST(DurableRunGolden, SeparationSequentialKillResume) {
  // Color swaps exercise SeparationModel's aux-plane serialization.
  sim::RunSpec spec = baseSpec("separation", 1);
  spec.params.set("gamma", "4.0");
  expectKillResumeIdentical(spec, "sep_seq", 1);
}

TEST(DurableRunGolden, SeparationShardedKillResume) {
  sim::RunSpec spec = baseSpec("separation", 2);
  spec.params.set("gamma", "4.0");
  expectKillResumeIdentical(spec, "sep_sharded", 2);
}

TEST(DurableRunGolden, AlignmentSequentialKillResume) {
  sim::RunSpec spec = baseSpec("alignment", 1);
  spec.params.set("kappa", "4.0");
  expectKillResumeIdentical(spec, "ali_seq", 1);
}

TEST(DurableRunGolden, AlignmentShardedKillResume) {
  sim::RunSpec spec = baseSpec("alignment", 2);
  spec.params.set("kappa", "4.0");
  expectKillResumeIdentical(spec, "ali_sharded", 2);
}

TEST(DurableRunGolden, AmoebotKillResume) {
  const sim::RunSpec spec = baseSpec("amoebot", 2);
  expectKillResumeIdentical(spec, "amoebot", 2);
}

TEST(DurableRunGolden, AmoebotWithCrashFaultsKillResume) {
  // Crashed-particle flags must survive the snapshot, or the resumed run
  // would wake the crashed particles and diverge.
  sim::RunSpec spec = baseSpec("amoebot", 2);
  spec.params.set("crash-fraction", "0.2");
  expectKillResumeIdentical(spec, "amoebot_crash", 2);
}

TEST(DurableRunGolden, ResumeRejectsMismatchedSpec) {
  sim::RunSpec spec = baseSpec("compression", 1);
  spec.steps = 12000;
  const std::string snap = tempPath("mismatch.snap");
  spec.snapshotPath = snap;
  (void)runToEnd(spec);

  // Different scenario parameter: a snapshot from λ=4 must not seed a
  // λ=2 run.
  sim::RunSpec other = baseSpec("compression", 1);
  other.resumePath = snap;
  other.params.set("lambda", "2.0");
  try {
    (void)runToEnd(other);
    FAIL() << "mismatched spec resumed";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("incompatible"), std::string::npos);
  }

  // Different execution regime (sequential snapshot, sharded resume).
  sim::RunSpec regime = baseSpec("compression", 2);
  regime.resumePath = snap;
  EXPECT_THROW((void)runToEnd(regime), ContractViolation);

  // Different seed.
  sim::RunSpec reseeded = baseSpec("compression", 1);
  reseeded.resumePath = snap;
  reseeded.seed = 7;
  EXPECT_THROW((void)runToEnd(reseeded), ContractViolation);
}

TEST(DurableRunGolden, SnapshotRequiresSingleReplica) {
  sim::RunSpec spec = baseSpec("compression", 1);
  spec.replicas = 2;
  spec.snapshotPath = tempPath("multi.snap");
  EXPECT_THROW((void)sim::run(spec), ContractViolation);
  spec.snapshotPath.clear();
  spec.resumePath = tempPath("multi.snap");
  EXPECT_THROW((void)sim::run(spec), ContractViolation);
}

// -- 3. cancellation --------------------------------------------------------

TEST(DurableRunCancel, TokenCancelLeavesResumableSnapshotMatchingGolden) {
  sim::RunSpec base = baseSpec("compression", 1);
  const FinalState uninterrupted = runToEnd(base);

  // Trip the token from the checkpoint-2 sample: the runner must finish
  // the sample, write the snapshot, and stop — reporting cancelled.
  const std::string snap = tempPath("cancel.snap");
  sim::RunSpec interrupted = base;
  interrupted.snapshotPath = snap;
  core::CancelToken token;
  const sim::StopWhen trip = [&](const sim::Sample& s) {
    if (s.iteration >= 2 * base.checkpointEvery) token.requestCancel();
    return false;
  };
  const FinalState partial = runToEnd(interrupted, trip, &token);
  EXPECT_TRUE(partial.cancelled);
  EXPECT_LT(partial.steps, base.steps);

  sim::RunSpec resumed = base;
  resumed.resumePath = snap;
  const FinalState r = runToEnd(resumed);
  EXPECT_FALSE(r.cancelled);
  EXPECT_EQ(r.steps, uninterrupted.steps);
  EXPECT_EQ(r.arrangement, uninterrupted.arrangement);
  EXPECT_EQ(r.metrics, uninterrupted.metrics);
}

TEST(DurableRunCancel, DeadlineCancelsAndResumeCompletesIdentically) {
  sim::RunSpec base = baseSpec("compression", 1);
  base.steps = 40000000;  // far more work than 1 ms allows
  base.checkpointEvery = 500000;
  const std::string snap = tempPath("deadline.snap");

  sim::RunSpec limited = base;
  limited.snapshotPath = snap;
  limited.deadlineMs = 1;
  const FinalState partial = runToEnd(limited);
  EXPECT_TRUE(partial.cancelled);
  EXPECT_LT(partial.steps, base.steps);

  // Resume with a deadline of its own — chained deadline slices must
  // still land on the uninterrupted trajectory, so instead of running
  // the 40M-step reference we check exact agreement at the next common
  // checkpoint via a second, longer slice.
  sim::RunSpec second = base;
  second.resumePath = snap;
  second.snapshotPath = snap;
  second.steps = partial.steps + base.checkpointEvery;
  const FinalState continued = runToEnd(second);
  EXPECT_FALSE(continued.cancelled);
  EXPECT_EQ(continued.steps, partial.steps + base.checkpointEvery);

  // Reference: one uninterrupted run to the same step count.
  sim::RunSpec reference = base;
  reference.steps = continued.steps;
  const FinalState ref = runToEnd(reference);
  EXPECT_EQ(continued.steps, ref.steps);
  EXPECT_EQ(continued.arrangement, ref.arrangement);
  EXPECT_EQ(continued.metrics, ref.metrics);
}

TEST(DurableRunCancel, MultiReplicaCancelSkipsUnstartedReplicas) {
  // threads=1 claims replicas inline in order, so the cut is exact:
  // replica 0 completes, replica 1 is interrupted at its first
  // checkpoint, replicas 2 and 3 are never started.
  sim::RunSpec spec = baseSpec("compression", 1);
  spec.replicas = 4;
  spec.threads = 1;
  core::CancelToken token;
  const sim::StopWhen trip = [&](const sim::Sample& s) {
    if (s.replica == 1 && s.iteration > 0) token.requestCancel();
    return false;
  };
  sim::Observer none;
  const sim::RunReport report = sim::run(spec, none, trip, &token);

  EXPECT_TRUE(report.cancelled);
  ASSERT_EQ(report.replicas.size(), 4u);
  EXPECT_EQ(report.replicas[0].steps, spec.steps);
  EXPECT_GT(report.replicas[1].steps, 0u);
  EXPECT_LT(report.replicas[1].steps, spec.steps);
  for (std::size_t r = 2; r < 4; ++r) {
    EXPECT_EQ(report.replicas[r].steps, 0u);
    EXPECT_EQ(report.replicas[r].seed, spec.replicaSeed(r));
    EXPECT_NE(report.replicas[r].label.find("cancelled before start"),
              std::string::npos);
    EXPECT_THROW((void)report.finalMetric(r, "edges"), ContractViolation);
  }
  EXPECT_NO_THROW((void)report.finalMetric(0, "edges"));
}

// -- 4. satellites ----------------------------------------------------------

TEST(DurableRunPreflight, UnwritableSinkPathFailsBeforeAnyCompute) {
  for (const char* key : {"csv", "jsonl", "svg", "snapshot"}) {
    sim::RunSpec spec = baseSpec("compression", 1);
    spec.steps = 1000000000;  // would take minutes if preflight ran late
    const std::string bad = "/nonexistent-sops-dir/out." + std::string(key);
    if (std::string(key) == "csv") spec.csvPath = bad;
    if (std::string(key) == "jsonl") spec.jsonlPath = bad;
    if (std::string(key) == "svg") spec.svgPath = bad;
    if (std::string(key) == "snapshot") spec.snapshotPath = bad;
    try {
      (void)sim::run(spec);
      FAIL() << key << " sink path was not preflighted";
    } catch (const ContractViolation& e) {
      EXPECT_NE(std::string(e.what()).find("not writable"), std::string::npos)
          << key;
    }
  }
}

TEST(DurableRunBuffer, MemorySinkCapFailsLoudlyNamingTheCap) {
  sim::MemorySink sink(3);
  const std::vector<double> values = {1.0};
  sink.onSample(sim::Sample{0, 0, values});
  sink.onSample(sim::Sample{0, 1, values});
  sink.onSample(sim::Sample{0, 2, values});
  try {
    sink.onSample(sim::Sample{0, 3, values});
    FAIL() << "cap not enforced";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("cap of 3"), std::string::npos);
  }
  // Unbounded by default: the test seam stays frictionless.
  sim::MemorySink unbounded;
  for (int i = 0; i < 100; ++i) {
    unbounded.onSample(sim::Sample{0, static_cast<std::uint64_t>(i), values});
  }
  EXPECT_EQ(unbounded.samples().size(), 100u);
}

TEST(DurableRunSerialize, StrictTextParsingNamesTheDefect) {
  const auto expectError = [](std::string_view text, const char* needle) {
    try {
      (void)system::fromText(text);
      FAIL() << "accepted: " << text;
    } catch (const ContractViolation& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << text << " → " << e.what();
    }
  };
  expectError("1.5,2", "not an integer");
  expectError("0,0 1,2.5", "not an integer");
  expectError("1 2", "expected ','");
  expectError("3,4x", "trailing garbage");
  expectError("0,0 3,4,5", "trailing garbage");
  expectError("99999999999,0", "overflows");
  expectError("a,b", "expected integer");
  expectError("3,", "expected integer");

  // The happy path still round-trips exactly, whitespace-insensitively.
  const system::ParticleSystem sys = system::fromText("0,0\n 1,0\t2,0");
  EXPECT_EQ(sys.size(), 3u);
  EXPECT_EQ(system::fromText(system::toText(sys)).size(), 3u);
}

TEST(DurableRunFaults, AmoebotCrashFractionRunsDeterministicallyViaFacade) {
  sim::RunSpec spec = baseSpec("amoebot", 2);
  spec.steps = 12000;
  spec.params.set("crash-fraction", "0.25");
  const FinalState a = runToEnd(spec);
  const FinalState b = runToEnd(spec);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.arrangement, b.arrangement);
  EXPECT_EQ(a.metrics, b.metrics);

  // Faults change the trajectory: the fault-free run differs.
  sim::RunSpec clean = spec;
  clean.params.erase("crash-fraction");
  const FinalState c = runToEnd(clean);
  EXPECT_NE(a.arrangement, c.arrangement);

  sim::RunSpec invalid = spec;
  invalid.params.set("crash-fraction", "1.5");
  EXPECT_THROW((void)sim::run(invalid), ContractViolation);
}

TEST(DurableRunFaults, AmoebotCompressesAroundCrashedParticles) {
  // §3.3 through the facade: with a fifth of the particles pinned where
  // they stand, the survivors still lower the perimeter (slowly — every
  // pinned cell of the initial line is held forever) and the aggregate
  // stays connected.
  sim::RunSpec spec = baseSpec("amoebot", 2);
  spec.steps = 1000000;
  spec.checkpointEvery = 500000;
  spec.params.set("crash-fraction", "0.2");
  FinalArrangementCapture capture;
  std::vector<double> initial;
  const sim::StopWhen recordStart = [&](const sim::Sample& s) {
    if (s.iteration == 0) initial = {s.values.begin(), s.values.end()};
    return false;
  };
  const sim::RunReport report = sim::run(spec, capture, recordStart);
  ASSERT_FALSE(initial.empty());
  const std::size_t perimeterIdx = [&] {
    const auto& names = report.metricNames;
    return static_cast<std::size_t>(
        std::find(names.begin(), names.end(), "perimeter") - names.begin());
  }();
  EXPECT_LT(report.finalMetric(0, "perimeter"), initial[perimeterIdx]);
  const system::ParticleSystem tails = system::fromText(capture.arrangement);
  EXPECT_EQ(tails.size(), spec.n);
  EXPECT_TRUE(system::isConnected(tails));
}

}  // namespace
}  // namespace sops
