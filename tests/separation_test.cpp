// Tests for the two-color separation extension (S12, E16).
#include <gtest/gtest.h>

#include <vector>

#include "extensions/separation.hpp"
#include "system/metrics.hpp"
#include "system/shapes.hpp"

namespace sops::extensions {
namespace {

std::vector<std::uint8_t> alternatingColors(std::size_t n) {
  std::vector<std::uint8_t> colors(n);
  for (std::size_t i = 0; i < n; ++i) {
    colors[i] = static_cast<std::uint8_t>(i % 2);
  }
  return colors;
}

SeparationOptions options(double lambda, double gamma) {
  SeparationOptions o;
  o.lambda = lambda;
  o.gamma = gamma;
  return o;
}

TEST(Separation, RejectsBadInputs) {
  const auto sys = system::lineConfiguration(4);
  EXPECT_THROW(SeparationChain(sys, {0, 1, 0}, options(4, 4), 1),
               ContractViolation);  // wrong color count
  EXPECT_THROW(SeparationChain(sys, {0, 1, 2, 0}, options(4, 4), 1),
               ContractViolation);  // invalid color
  EXPECT_THROW(SeparationChain(sys, alternatingColors(4), options(0, 4), 1),
               ContractViolation);  // bad lambda
}

TEST(Separation, RejectsEmptySystemAtConstruction) {
  // Regression for the size_t→uint32 particle-draw truncation: both step
  // kinds draw via the shared 32-bit bound (core::checkedParticleDrawBound,
  // unit-tested for the ≥2³² truncation cases), which also rejects the
  // empty system that previously deferred UB to the first step().
  EXPECT_THROW(SeparationChain(system::ParticleSystem(), {}, options(4, 4), 1),
               ContractViolation);
}

TEST(Separation, ColorCountsConserved) {
  SeparationChain chain(system::lineConfiguration(20), alternatingColors(20),
                        options(4.0, 4.0), 7);
  const std::size_t before = chain.colorOneCount();
  chain.run(200000);
  EXPECT_EQ(chain.colorOneCount(), before);
  EXPECT_EQ(chain.system().size(), 20u);
}

TEST(Separation, ConnectivityAndHoleInvariants) {
  SeparationChain chain(system::lineConfiguration(24), alternatingColors(24),
                        options(4.0, 4.0), 11);
  for (int burst = 0; burst < 50; ++burst) {
    chain.run(2000);
    ASSERT_TRUE(system::isConnected(chain.system()));
    ASSERT_EQ(system::countHoles(chain.system()), 0);
  }
}

TEST(Separation, HomogeneousEdgeCounterMatchesDefinition) {
  // Hand-checkable: line of 4 with colors 0,0,1,1 has hom edges (0-1),(2-3).
  SeparationChain chain(system::lineConfiguration(4), {0, 0, 1, 1},
                        options(4.0, 4.0), 1);
  EXPECT_EQ(chain.homogeneousEdges(), 2);
}

TEST(Separation, HighGammaSegregatesColors) {
  // After the same budget from the same start, γ=6 must produce clearly
  // more monochromatic edges than γ=1/6 (integration).
  const auto start = system::lineConfiguration(40);
  SeparationChain segregate(start, alternatingColors(40), options(4.0, 6.0), 3);
  SeparationChain integrate(start, alternatingColors(40),
                            options(4.0, 1.0 / 6.0), 3);
  segregate.run(2000000);
  integrate.run(2000000);
  const double homSeg =
      static_cast<double>(segregate.homogeneousEdges()) /
      static_cast<double>(system::countEdges(segregate.system()));
  const double homInt =
      static_cast<double>(integrate.homogeneousEdges()) /
      static_cast<double>(system::countEdges(integrate.system()));
  EXPECT_GT(homSeg, homInt + 0.2);
}

TEST(Separation, CompressionStillHappensWithLargeLambda) {
  SeparationChain chain(system::lineConfiguration(40), alternatingColors(40),
                        options(4.0, 2.0), 5);
  const std::int64_t initial = system::perimeter(chain.system());
  chain.run(2500000);
  EXPECT_LT(system::perimeter(chain.system()), (2 * initial) / 3);
}

TEST(Separation, SwapStatsAccumulate) {
  SeparationChain chain(system::lineConfiguration(20), alternatingColors(20),
                        options(2.0, 3.0), 13);
  chain.run(100000);
  EXPECT_EQ(chain.stats().steps, 100000u);
  EXPECT_GT(chain.stats().swapsAccepted, 0u);
  EXPECT_GT(chain.stats().movesAccepted, 0u);
}

TEST(Separation, SwapsCanBeDisabled) {
  SeparationOptions noSwaps = options(3.0, 3.0);
  noSwaps.enableSwaps = false;
  SeparationChain chain(system::lineConfiguration(12), alternatingColors(12),
                        noSwaps, 17);
  chain.run(50000);
  EXPECT_EQ(chain.stats().swapsAccepted, 0u);
}

}  // namespace
}  // namespace sops::extensions
