// Tests for the triangular-lattice geometry substrate (S1).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "lattice/direction.hpp"
#include "lattice/tri_point.hpp"

namespace sops::lattice {
namespace {

TEST(Direction, IndexRoundTrip) {
  for (int i = 0; i < kNumDirections; ++i) {
    EXPECT_EQ(index(directionFromIndex(i)), i);
  }
}

TEST(Direction, NegativeIndexWraps) {
  EXPECT_EQ(directionFromIndex(-1), Direction::SouthEast);
  EXPECT_EQ(directionFromIndex(-6), Direction::East);
  EXPECT_EQ(directionFromIndex(7), Direction::NorthEast);
  EXPECT_EQ(directionFromIndex(12), Direction::East);
}

TEST(Direction, OppositeIsInvolution) {
  for (const Direction d : kAllDirections) {
    EXPECT_EQ(opposite(opposite(d)), d);
    EXPECT_NE(opposite(d), d);
  }
}

TEST(Direction, RotationIsCyclic) {
  for (const Direction d : kAllDirections) {
    EXPECT_EQ(rotated(d, 6), d);
    EXPECT_EQ(rotated(d, -6), d);
    EXPECT_EQ(rotated(rotated(d, 2), -2), d);
  }
}

TEST(Direction, NamesAreDistinct) {
  std::set<std::string_view> names;
  for (const Direction d : kAllDirections) names.insert(name(d));
  EXPECT_EQ(names.size(), 6u);
}

TEST(TriPoint, OffsetsSumToZero) {
  TriPoint total{0, 0};
  for (const Direction d : kAllDirections) total += offset(d);
  EXPECT_EQ(total, (TriPoint{0, 0}));
}

TEST(TriPoint, OppositeOffsetsCancel) {
  for (const Direction d : kAllDirections) {
    EXPECT_EQ(offset(d) + offset(opposite(d)), (TriPoint{0, 0}));
  }
}

TEST(TriPoint, SixDistinctNeighbors) {
  const TriPoint p{3, -7};
  std::set<std::pair<int, int>> seen;
  for (const Direction d : kAllDirections) {
    const TriPoint q = neighbor(p, d);
    seen.insert({q.x, q.y});
    EXPECT_TRUE(areAdjacent(p, q));
    EXPECT_TRUE(areAdjacent(q, p));
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(TriPoint, NotAdjacentToSelfOrFar) {
  const TriPoint p{0, 0};
  EXPECT_FALSE(areAdjacent(p, p));
  EXPECT_FALSE(areAdjacent(p, {2, 0}));
  EXPECT_FALSE(areAdjacent(p, {1, 1}));   // distance 2
  EXPECT_FALSE(areAdjacent(p, {-1, -1})); // distance 2
  EXPECT_TRUE(areAdjacent(p, {1, -1}));   // SE neighbor
}

TEST(TriPoint, DirectionBetweenMatchesOffsets) {
  const TriPoint p{5, 9};
  for (const Direction d : kAllDirections) {
    const auto found = directionBetween(p, neighbor(p, d));
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, d);
  }
  EXPECT_FALSE(directionBetween(p, p).has_value());
  EXPECT_FALSE(directionBetween(p, {p.x + 2, p.y}).has_value());
}

TEST(TriPoint, Rotated60IsOrderSix) {
  const TriPoint v{3, -1};
  TriPoint w = v;
  for (int i = 0; i < 6; ++i) w = rotated60(w);
  EXPECT_EQ(w, v);
}

TEST(TriPoint, LatticeDistanceBasics) {
  EXPECT_EQ(latticeDistance({0, 0}, {0, 0}), 0);
  for (const Direction d : kAllDirections) {
    EXPECT_EQ(latticeDistance({0, 0}, offset(d)), 1);
  }
  EXPECT_EQ(latticeDistance({0, 0}, {3, 0}), 3);
  EXPECT_EQ(latticeDistance({0, 0}, {1, 1}), 2);
  EXPECT_EQ(latticeDistance({0, 0}, {-2, 5}), 5);
  EXPECT_EQ(latticeDistance({0, 0}, {3, -1}), 3);
  EXPECT_EQ(latticeDistance({0, 0}, {3, -5}), 5);
}

TEST(TriPoint, LatticeDistanceIsAMetric) {
  const TriPoint points[] = {{0, 0}, {3, -2}, {-1, 4}, {7, 7}, {-5, -5}};
  for (const TriPoint a : points) {
    for (const TriPoint b : points) {
      EXPECT_EQ(latticeDistance(a, b), latticeDistance(b, a));
      for (const TriPoint c : points) {
        EXPECT_LE(latticeDistance(a, c),
                  latticeDistance(a, b) + latticeDistance(b, c));
      }
    }
  }
}

TEST(TriPoint, PackUnpackRoundTripIncludingNegatives) {
  const TriPoint samples[] = {
      {0, 0}, {1, -1}, {-1, 1}, {123456, -654321}, {-2147483647, 2147483647}};
  for (const TriPoint p : samples) {
    EXPECT_EQ(unpack(pack(p)), p);
  }
}

TEST(TriPoint, PackIsInjectiveOnNeighborhood) {
  std::set<std::uint64_t> keys;
  for (int x = -4; x <= 4; ++x) {
    for (int y = -4; y <= 4; ++y) {
      keys.insert(pack({x, y}));
    }
  }
  EXPECT_EQ(keys.size(), 81u);
}

TEST(TriPoint, CartesianEmbeddingHasUnitEdges) {
  const TriPoint p{2, 3};
  const Cartesian cp = toCartesian(p);
  for (const Direction d : kAllDirections) {
    const Cartesian cq = toCartesian(neighbor(p, d));
    const double dist = std::hypot(cq.x - cp.x, cq.y - cp.y);
    EXPECT_NEAR(dist, 1.0, 1e-12);
  }
}

TEST(TriPoint, CommonNeighborsOfAdjacentPair) {
  // The two common neighbors of ℓ and ℓ+d are ℓ+rot(d,1) and ℓ+rot(d,-1).
  const TriPoint l{0, 0};
  for (const Direction d : kAllDirections) {
    const TriPoint lp = neighbor(l, d);
    int common = 0;
    for (const Direction a : kAllDirections) {
      const TriPoint q = neighbor(l, a);
      if (areAdjacent(q, lp)) {
        ++common;
        EXPECT_TRUE(q == neighbor(l, rotated(d, 1)) ||
                    q == neighbor(l, rotated(d, -1)));
      }
    }
    EXPECT_EQ(common, 2);
  }
}

}  // namespace
}  // namespace sops::lattice
