// Exact-distribution check for the separation chain at tiny n: the
// stationary distribution of the {movement, swap} mixture over
// (configuration × 2-coloring) states is w(σ) = λ^{e(σ)} γ^{hom(σ)} / Z,
// because both move kinds are symmetric-proposal Metropolis kernels for
// the same w.  Both states and colorings are enumerable at n = 4 (44
// hole-free configurations × C(4,2) colorings = 264 states), so empirical
// state frequencies can be tested against w exactly — this catches any
// detailed-balance bug in the swap move (a wrong Δhom, a missing
// heterochromatic-edge exclusion) on the reference chain and on the
// engine's bit-plane path alike.
//
// Pre-registered design (fixed before looking at outcomes):
//   - burn-in 30,000 steps; one sample every 32 steps; 120,000 samples;
//   - expected cells below 5 pooled (Cochran, the stats.hpp default);
//   - acceptance: chi-square p > 0.01; fixed seeds, so not flaky.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/stats.hpp"
#include "core/scenario_models.hpp"
#include "core/sharded_chain_runner.hpp"
#include "enumeration/exact_distribution.hpp"
#include "extensions/separation.hpp"
#include "system/shapes.hpp"

namespace sops::extensions {
namespace {

using lattice::TriPoint;

constexpr int kParticles = 4;
constexpr int kBurnIn = 30000;
constexpr int kStride = 32;
constexpr int kSamples = 120000;
constexpr double kLambda = 1.5;
constexpr double kGamma = 2.5;
constexpr double kAcceptP = 0.01;

/// Translation-canonical key of a colored configuration: shift min x and
/// min y to zero, sort cells by (y, x), pack (x, y, color) bytes.
std::string coloredKey(std::vector<TriPoint> points,
                       const std::vector<std::uint8_t>& colorOf) {
  struct Cell {
    TriPoint p;
    std::uint8_t color;
  };
  std::vector<Cell> cells(points.size());
  std::int32_t minX = points[0].x;
  std::int32_t minY = points[0].y;
  for (const TriPoint p : points) {
    minX = std::min(minX, p.x);
    minY = std::min(minY, p.y);
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    cells[i] = {TriPoint{points[i].x - minX, points[i].y - minY}, colorOf[i]};
  }
  std::sort(cells.begin(), cells.end(), [](const Cell& a, const Cell& b) {
    return a.p.y != b.p.y ? a.p.y < b.p.y : a.p.x < b.p.x;
  });
  std::string key;
  key.reserve(cells.size() * 9);
  for (const Cell& cell : cells) {
    char buffer[9];
    std::memcpy(buffer, &cell.p.x, 4);
    std::memcpy(buffer + 4, &cell.p.y, 4);
    buffer[8] = static_cast<char>(cell.color);
    key.append(buffer, 9);
  }
  return key;
}

/// hom(σ) of an explicit colored point set (independent brute force).
std::int64_t homOf(const std::vector<TriPoint>& points,
                   const std::vector<std::uint8_t>& colorOf) {
  std::int64_t hom = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      bool adjacent = false;
      for (const lattice::Direction d : lattice::kAllDirections) {
        if (lattice::neighbor(points[i], d) == points[j]) adjacent = true;
      }
      if (adjacent && colorOf[i] == colorOf[j]) ++hom;
    }
  }
  return hom;
}

struct ExactColoredEnsemble {
  std::unordered_map<std::string, std::size_t> indexOf;
  std::vector<double> probabilities;  // normalized w
};

/// Enumerates hole-free configurations × k-one colorings with their exact
/// stationary probabilities under w = λ^e γ^hom.
ExactColoredEnsemble buildExactEnsemble(int n, int ones) {
  const enumeration::ExactEnsemble configs(n);
  ExactColoredEnsemble out;
  std::vector<double> weights;
  for (const enumeration::EnumeratedConfig& config : configs.configs()) {
    for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
      if (std::popcount(mask) != ones) continue;
      std::vector<std::uint8_t> colorOf(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        colorOf[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>((mask >> i) & 1u);
      }
      const double weight =
          core::lambdaPower(kLambda, static_cast<int>(config.edges)) *
          core::lambdaPower(kGamma,
                            static_cast<int>(homOf(config.points, colorOf)));
      out.indexOf.emplace(coloredKey(config.points, colorOf), weights.size());
      weights.push_back(weight);
    }
  }
  double total = 0.0;
  for (const double w : weights) total += w;
  out.probabilities.resize(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    out.probabilities[i] = weights[i] / total;
  }
  return out;
}

void expectMatchesExact(const ExactColoredEnsemble& exact,
                        const std::vector<double>& counts) {
  double total = 0.0;
  for (const double c : counts) total += c;
  ASSERT_GT(total, 1000.0);
  const analysis::ChiSquareResult gof =
      analysis::chiSquareGoodnessOfFit(counts, exact.probabilities);
  EXPECT_GT(gof.pValue, kAcceptP)
      << "chi2 = " << gof.statistic << ", dof = " << gof.dof
      << ", samples = " << total;
}

template <typename StepFn, typename KeyFn>
std::vector<double> sampleFrequencies(const ExactColoredEnsemble& exact,
                                      StepFn&& step, KeyFn&& key) {
  for (int i = 0; i < kBurnIn; ++i) step();
  std::vector<double> counts(exact.probabilities.size(), 0.0);
  for (int s = 0; s < kSamples; ++s) {
    for (int i = 0; i < kStride; ++i) step();
    const auto it = exact.indexOf.find(key());
    if (it == exact.indexOf.end()) {
      ADD_FAILURE() << "chain left the enumerated support";
      break;
    }
    counts[it->second] += 1.0;
  }
  return counts;
}

std::vector<std::uint8_t> twoOnesColors() { return {0, 1, 0, 1}; }

TEST(SeparationExact, ReferenceChainMatchesWeightDistribution) {
  const ExactColoredEnsemble exact = buildExactEnsemble(kParticles, 2);
  ASSERT_EQ(exact.probabilities.size(), 44u * 6u);
  SeparationOptions options;
  options.lambda = kLambda;
  options.gamma = kGamma;
  SeparationChain chain(system::lineConfiguration(kParticles), twoOnesColors(),
                        options, 2027);
  const std::vector<double> counts = sampleFrequencies(
      exact, [&] { chain.step(); },
      [&] {
        return coloredKey(chain.system().positions(), chain.colors());
      });
  expectMatchesExact(exact, counts);
}

TEST(SeparationExact, EngineMatchesWeightDistribution) {
  const ExactColoredEnsemble exact = buildExactEnsemble(kParticles, 2);
  core::SeparationModel::Options options;
  options.lambda = kLambda;
  options.gamma = kGamma;
  core::SeparationEngine engine(
      system::lineConfiguration(kParticles),
      core::SeparationModel(options, twoOnesColors()), 911);
  const std::vector<double> counts = sampleFrequencies(
      exact, [&] { engine.step(); },
      [&] {
        return coloredKey(engine.system().positions(), engine.model().colors());
      });
  expectMatchesExact(exact, counts);
}

TEST(SeparationExact, ShardedRunnerMatchesWeightDistribution) {
  // The Poissonized stripe/halo schedule (core/sharded_chain_runner.hpp)
  // must sample the same w = λ^e γ^hom over (configuration × coloring)
  // states: the pair-move halo rules — the swap is the stress case the
  // radius-3 interaction declaration exists for — may not bias which
  // swaps execute.  Same pre-registered design as the tests above; the
  // runner's epoch is sized to the sampling stride.
  const ExactColoredEnsemble exact = buildExactEnsemble(kParticles, 2);
  core::SeparationModel::Options options;
  options.lambda = kLambda;
  options.gamma = kGamma;
  core::ShardedChainOptions sharded;
  sharded.targetEventsPerEpoch = kStride;
  core::ShardedChainRunner<core::SeparationModel> runner(
      system::lineConfiguration(kParticles),
      core::SeparationModel(options, twoOnesColors()), 1117, sharded);
  runner.runAtLeast(kBurnIn);
  std::vector<double> counts(exact.probabilities.size(), 0.0);
  for (int s = 0; s < kSamples; ++s) {
    runner.runAtLeast(kStride);
    const auto it = exact.indexOf.find(
        coloredKey(runner.system().positions(), runner.model().colors()));
    ASSERT_NE(it, exact.indexOf.end())
        << "sharded runner left the enumerated support";
    counts[it->second] += 1.0;
  }
  expectMatchesExact(exact, counts);
}

}  // namespace
}  // namespace sops::extensions
