// Tests for the amoebot substrate (S7): expand/contract mechanics, head and
// tail occupancy, the N* oracle, flags, and private orientations (§2.1).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "amoebot/amoebot_system.hpp"
#include "system/shapes.hpp"

namespace sops::amoebot {
namespace {

using lattice::Direction;
using lattice::TriPoint;

AmoebotSystem makeSystem(const std::vector<TriPoint>& points,
                         std::uint64_t seed = 1) {
  rng::Random rng(seed);
  return AmoebotSystem(system::ParticleSystem(points), rng);
}

TEST(AmoebotSystem, InitialStateIsContracted) {
  const AmoebotSystem sys = makeSystem({{0, 0}, {1, 0}});
  EXPECT_EQ(sys.size(), 2u);
  EXPECT_EQ(sys.expandedCount(), 0u);
  for (std::size_t id = 0; id < sys.size(); ++id) {
    EXPECT_FALSE(sys.particle(id).expanded);
    EXPECT_EQ(sys.particle(id).head, sys.particle(id).tail);
  }
}

TEST(AmoebotSystem, CellViewsTrackHeadsAndTails) {
  AmoebotSystem sys = makeSystem({{0, 0}, {1, 0}});
  sys.expand(0, Direction::NorthEast);
  const auto headView = sys.at({0, 1});
  EXPECT_EQ(headView.particle, 0);
  EXPECT_TRUE(headView.isHead);
  const auto tailView = sys.at({0, 0});
  EXPECT_EQ(tailView.particle, 0);
  EXPECT_FALSE(tailView.isHead);
  EXPECT_TRUE(sys.occupied({0, 1}));
  EXPECT_EQ(sys.expandedCount(), 1u);
}

TEST(AmoebotSystem, ExpandIntoOccupiedThrows) {
  AmoebotSystem sys = makeSystem({{0, 0}, {1, 0}});
  EXPECT_THROW(sys.expand(0, Direction::East), ContractViolation);
}

TEST(AmoebotSystem, DoubleExpandThrows) {
  AmoebotSystem sys = makeSystem({{0, 0}, {1, 0}});
  sys.expand(0, Direction::NorthEast);
  EXPECT_THROW(sys.expand(0, Direction::NorthWest), ContractViolation);
}

TEST(AmoebotSystem, ContractToHeadCompletesMove) {
  AmoebotSystem sys = makeSystem({{0, 0}, {1, 0}});
  sys.expand(0, Direction::NorthEast);
  sys.contractToHead(0);
  EXPECT_FALSE(sys.particle(0).expanded);
  EXPECT_EQ(sys.particle(0).tail, (TriPoint{0, 1}));
  EXPECT_FALSE(sys.occupied({0, 0}));
  EXPECT_TRUE(sys.occupied({0, 1}));
  EXPECT_FALSE(sys.at({0, 1}).isHead);  // now an ordinary contracted cell
  EXPECT_EQ(sys.expandedCount(), 0u);
}

TEST(AmoebotSystem, ContractBackAbortsMove) {
  AmoebotSystem sys = makeSystem({{0, 0}, {1, 0}});
  sys.expand(0, Direction::NorthEast);
  sys.contractBack(0);
  EXPECT_FALSE(sys.particle(0).expanded);
  EXPECT_EQ(sys.particle(0).tail, (TriPoint{0, 0}));
  EXPECT_TRUE(sys.occupied({0, 0}));
  EXPECT_FALSE(sys.occupied({0, 1}));
}

TEST(AmoebotSystem, ContractWhenContractedThrows) {
  AmoebotSystem sys = makeSystem({{0, 0}, {1, 0}});
  EXPECT_THROW(sys.contractToHead(0), ContractViolation);
  EXPECT_THROW(sys.contractBack(0), ContractViolation);
}

TEST(AmoebotSystem, ExpandedParticleAdjacentDetection) {
  AmoebotSystem sys = makeSystem({{0, 0}, {1, 0}, {3, 0}});
  EXPECT_FALSE(sys.expandedParticleAdjacent({1, 0}, 1));
  sys.expand(0, Direction::NorthEast);  // particle 0 occupies (0,0)+(0,1)
  // (1,0) is adjacent to both cells of particle 0.
  EXPECT_TRUE(sys.expandedParticleAdjacent({1, 0}, 1));
  // (3,0) is adjacent to (2,0),(4,0)... none of particle 0's cells.
  EXPECT_FALSE(sys.expandedParticleAdjacent({3, 0}, 2));
  // Self is excluded.
  EXPECT_FALSE(sys.expandedParticleAdjacent({0, 0}, 0));
}

TEST(AmoebotSystem, NStarOracleIgnoresHeads) {
  AmoebotSystem sys = makeSystem({{0, 0}, {2, 0}});
  sys.expand(0, Direction::East);  // head at (1,0), adjacent to (2,0)
  // From particle 1's perspective, the head at (1,0) is not a neighbor
  // under N* (step 9 of Algorithm A)...
  EXPECT_FALSE(sys.occupiedExcludingHeads({1, 0}, 1));
  // ...but the tail at (0,0) would be.
  EXPECT_TRUE(sys.occupiedExcludingHeads({0, 0}, 1));
  // A particle's own cells never count.
  EXPECT_FALSE(sys.occupiedExcludingHeads({1, 0}, 0));
  // Contracted particles count normally.
  EXPECT_TRUE(sys.occupiedExcludingHeads({2, 0}, 0));
}

TEST(AmoebotSystem, GlobalDirectionIsBijectivePerParticle) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const AmoebotSystem sys = makeSystem({{0, 0}, {5, 5}}, seed);
    for (std::size_t id = 0; id < sys.size(); ++id) {
      std::set<int> images;
      for (int port = 0; port < 6; ++port) {
        images.insert(index(sys.globalDirection(id, port)));
      }
      EXPECT_EQ(images.size(), 6u) << "seed " << seed;
    }
  }
}

TEST(AmoebotSystem, OrientationsVaryAcrossParticles) {
  rng::Random rng(99);
  const AmoebotSystem sys(system::lineConfiguration(30), rng);
  std::set<std::pair<int, bool>> orientations;
  for (std::size_t id = 0; id < sys.size(); ++id) {
    orientations.insert(
        {sys.particle(id).orientationOffset, sys.particle(id).mirrored});
  }
  EXPECT_GT(orientations.size(), 3u);  // no shared compass
}

TEST(AmoebotSystem, TailConfigurationProjectsExpandedParticles) {
  AmoebotSystem sys = makeSystem({{0, 0}, {1, 0}});
  sys.expand(0, Direction::NorthEast);
  const system::ParticleSystem tails = sys.tailConfiguration();
  EXPECT_EQ(tails.size(), 2u);
  EXPECT_TRUE(tails.occupied({0, 0}));  // expanded particle counted at tail
  EXPECT_TRUE(tails.occupied({1, 0}));
  EXPECT_FALSE(tails.occupied({0, 1}));
}

TEST(AmoebotSystem, FlagStorage) {
  AmoebotSystem sys = makeSystem({{0, 0}, {1, 0}});
  EXPECT_FALSE(sys.particle(0).flag);
  sys.setFlag(0, true);
  EXPECT_TRUE(sys.particle(0).flag);
  sys.setFlag(0, false);
  EXPECT_FALSE(sys.particle(0).flag);
}

}  // namespace
}  // namespace sops::amoebot
