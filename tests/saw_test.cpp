// Tests for the hexagonal-lattice self-avoiding walk counter (S8) backing
// Theorem 4.2 / Fig 8: μ_hex = √(2+√2).
#include <gtest/gtest.h>

#include <cmath>

#include "enumeration/hex_saw.hpp"
#include "util/assert.hpp"

namespace sops::enumeration {
namespace {

TEST(HexSaw, FirstTermsExact) {
  // l=1..6: 3, 6, 12, 24, 48, 90.  The first shortfall from 3·2^{l-1}
  // appears at l = 6, where the 6 closed hexagon walks are excluded.
  const std::vector<std::uint64_t> counts = hexSawCounts(6);
  ASSERT_EQ(counts.size(), 6u);
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 6u);
  EXPECT_EQ(counts[2], 12u);
  EXPECT_EQ(counts[3], 24u);
  EXPECT_EQ(counts[4], 48u);
  EXPECT_EQ(counts[5], 90u);
}

TEST(HexSaw, PrefixConsistency) {
  // Longer enumerations must reproduce shorter ones exactly.
  const std::vector<std::uint64_t> short8 = hexSawCounts(8);
  const std::vector<std::uint64_t> long12 = hexSawCounts(12);
  for (std::size_t l = 0; l < short8.size(); ++l) {
    EXPECT_EQ(short8[l], long12[l]);
  }
}

TEST(HexSaw, GrowthIsSubmultiplicative) {
  // N_{a+b} ≤ N_a · N_b (Fekete property defining the connective constant).
  const std::vector<std::uint64_t> counts = hexSawCounts(14);
  for (std::size_t a = 1; a + 2 <= counts.size(); ++a) {
    for (std::size_t b = 1; a + b <= counts.size(); ++b) {
      EXPECT_LE(counts[a + b - 1], counts[a - 1] * counts[b - 1])
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(HexSaw, CountsBoundedByConnectiveGrowth) {
  // N_l ≥ μ^l for every l (standard supermultiplicative lower bound on the
  // hexagonal lattice via bridge decompositions holds numerically here).
  const double mu = hexConnectiveConstant();
  const std::vector<std::uint64_t> counts = hexSawCounts(16);
  for (std::size_t l = 1; l <= counts.size(); ++l) {
    EXPECT_GE(static_cast<double>(counts[l - 1]), std::pow(mu, l) * 0.999)
        << "l=" << l;
  }
}

TEST(HexSaw, RootEstimateApproachesTheorem42Value) {
  const double mu = hexConnectiveConstant();
  EXPECT_NEAR(mu, 1.847759, 1e-6);  // √(2+√2)
  EXPECT_NEAR(mu * mu, 2.0 + std::sqrt(2.0), 1e-12);  // compression threshold
  const std::vector<std::uint64_t> counts = hexSawCounts(18);
  const double estimate = connectiveConstantEstimate(counts);
  EXPECT_GT(estimate, mu);        // finite-l estimates approach from above
  EXPECT_LT(estimate, mu * 1.08);  // and are already close at l=18
}

TEST(HexSaw, RootEstimatesDecreaseTowardMu) {
  const std::vector<std::uint64_t> counts = hexSawCounts(18);
  double previous = 1e300;
  for (std::size_t l = 4; l <= counts.size(); l += 2) {
    const double estimate =
        std::pow(static_cast<double>(counts[l - 1]), 1.0 /
                 static_cast<double>(l));
    EXPECT_LT(estimate, previous) << "l=" << l;
    previous = estimate;
  }
}

TEST(HexSaw, RejectsOutOfRangeLength) {
  EXPECT_THROW(hexSawCounts(0), ContractViolation);
  EXPECT_THROW(hexSawCounts(31), ContractViolation);
}

}  // namespace
}  // namespace sops::enumeration
