// Tests for the dense bitboard occupancy window (system/bit_grid) and its
// integration into ParticleSystem: the bitboard and the sparse hash index
// must answer occupancy identically along whole chain trajectories, across
// window regrowth, and in the degraded (too-sparse-for-dense) fallback.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/compression_chain.hpp"
#include "rng/random.hpp"
#include "system/bit_grid.hpp"
#include "system/metrics.hpp"
#include "system/particle_system.hpp"
#include "system/shapes.hpp"

namespace sops::system {
namespace {

using lattice::TriPoint;

TEST(BitGrid, SetTestClearRoundTrip) {
  BitGrid grid;
  const std::vector<TriPoint> points{{0, 0}, {3, -2}, {-5, 7}};
  ASSERT_TRUE(grid.rebuild(points, 4));
  EXPECT_TRUE(grid.enabled());
  for (const TriPoint p : points) EXPECT_TRUE(grid.test(p));
  EXPECT_FALSE(grid.test({1, 1}));
  grid.clear({3, -2});
  EXPECT_FALSE(grid.test({3, -2}));
  grid.set({3, -2});
  EXPECT_TRUE(grid.test({3, -2}));
}

TEST(BitGrid, OutOfWindowCellsReadUnoccupied) {
  BitGrid grid;
  ASSERT_TRUE(grid.rebuild(std::vector<TriPoint>{{0, 0}}, 2));
  EXPECT_FALSE(grid.test({100, 0}));
  EXPECT_FALSE(grid.test({-100, 0}));
  EXPECT_FALSE(grid.test({0, 100}));
  // Coordinates that would overflow naive 32-bit window arithmetic.
  EXPECT_FALSE(grid.test({INT32_MAX, INT32_MIN}));
  EXPECT_FALSE(grid.test({INT32_MIN, INT32_MAX}));
}

TEST(BitGrid, RebuildCapPromotesToTiled) {
  BitGrid grid;
  // Bounding box ~2^30 × 2^30 cells: far over kMaxWords for a flat
  // window, so rebuild allocates tiles around the occupied cells instead
  // of giving up.
  const std::vector<TriPoint> sparse{{0, 0}, {1 << 30, 1 << 30}};
  EXPECT_TRUE(grid.rebuild(sparse, 0));
  EXPECT_TRUE(grid.enabled());
  EXPECT_TRUE(grid.tiled());
  EXPECT_TRUE(grid.test({0, 0}));
  EXPECT_TRUE(grid.test({1 << 30, 1 << 30}));
  EXPECT_FALSE(grid.test({5, 5}));
  EXPECT_FALSE(grid.test({(1 << 30) + 1, 1 << 30}));
}

TEST(BitGrid, EmptyRebuildDisables) {
  BitGrid grid;
  EXPECT_FALSE(grid.rebuild(std::vector<TriPoint>{}, 4));
  EXPECT_FALSE(grid.enabled());
}

TEST(ParticleSystemGrid, DenseAndSparseAgreeOnConstruction) {
  const ParticleSystem sys = spiralConfiguration(64);
  EXPECT_TRUE(sys.grid().enabled());
  for (const TriPoint p : sys.positions()) {
    EXPECT_TRUE(sys.occupied(p));
    EXPECT_TRUE(sys.occupiedSparse(p));
    for (const auto d : lattice::kAllDirections) {
      const TriPoint q = lattice::neighbor(p, d);
      EXPECT_EQ(sys.occupied(q), sys.occupiedSparse(q));
    }
  }
}

TEST(ParticleSystemGrid, MovesKeepViewsInSync) {
  ParticleSystem sys = lineConfiguration(10);
  sys.moveParticle(0, {0, 5});
  EXPECT_TRUE(sys.occupied({0, 5}));
  EXPECT_FALSE(sys.occupied({0, 0}));
  EXPECT_EQ(sys.occupied({0, 5}), sys.occupiedSparse({0, 5}));
  EXPECT_EQ(sys.occupied({0, 0}), sys.occupiedSparse({0, 0}));
}

TEST(ParticleSystemGrid, AddRemoveKeepViewsInSync) {
  ParticleSystem sys;
  const std::size_t a = sys.add({0, 0});
  EXPECT_TRUE(sys.occupied({0, 0}));
  sys.add({1, 0});
  sys.remove(a);  // swap-with-last: particle 0 becomes the one at (1,0)
  EXPECT_FALSE(sys.occupied({0, 0}));
  EXPECT_TRUE(sys.occupied({1, 0}));
  EXPECT_EQ(sys.size(), 1u);
  EXPECT_EQ(sys.particleAt({1, 0}), std::optional<std::size_t>{0});
}

TEST(ParticleSystemGrid, RegrowthOnEscapeKeepsAnswersExact) {
  ParticleSystem sys = lineConfiguration(5);
  // March a particle far outside the initial window, forcing regrowth.
  TriPoint p = sys.position(0);
  for (int i = 0; i < 500; ++i) {
    const TriPoint next{p.x, p.y + 1};
    sys.moveParticle(0, next);
    p = next;
    ASSERT_TRUE(sys.occupied(p));
    ASSERT_EQ(sys.occupied(p), sys.occupiedSparse(p));
  }
  EXPECT_TRUE(sys.grid().enabled());
  EXPECT_TRUE(sys.grid().covers(p));
}

TEST(ParticleSystemGrid, HugeBoundingBoxPromotesToTiled) {
  const std::vector<TriPoint> far{{0, 0}, {1 << 28, 0}};
  const ParticleSystem sys(far);
  EXPECT_TRUE(sys.grid().enabled());
  EXPECT_TRUE(sys.grid().tiled());
  EXPECT_STREQ(sys.regimeName(), "dense-tiled");
  EXPECT_TRUE(sys.occupied({0, 0}));
  EXPECT_TRUE(sys.occupied({1 << 28, 0}));
  EXPECT_FALSE(sys.occupied({5, 5}));
  EXPECT_EQ(sys.particleAt({1 << 28, 0}), std::optional<std::size_t>{1});
}

TEST(ParticleSystemGrid, NeighborQueriesMatchSparseAlongTrajectory) {
  // Drive a real chain and cross-check the two occupancy views (and the
  // derived neighborMask/neighborCount) at every particle periodically.
  core::ChainOptions options;
  options.lambda = 4.0;
  core::CompressionChain chain(lineConfiguration(30), options, 1603);
  for (int burst = 0; burst < 20; ++burst) {
    chain.run(2500);
    const ParticleSystem& sys = chain.system();
    for (const TriPoint p : sys.positions()) {
      ASSERT_EQ(sys.occupied(p), sys.occupiedSparse(p));
      std::uint8_t sparseMask = 0;
      for (const auto d : lattice::kAllDirections) {
        if (sys.occupiedSparse(lattice::neighbor(p, d))) {
          sparseMask = static_cast<std::uint8_t>(
              sparseMask | (1u << lattice::index(d)));
        }
      }
      ASSERT_EQ(sys.neighborMask(p), sparseMask);
    }
  }
}

}  // namespace
}  // namespace sops::system
