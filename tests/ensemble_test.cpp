// Tests for the replica ensemble runner (core/ensemble): spec-order
// results, per-seed determinism independent of thread count, checkpoint
// sampling, early stopping, error propagation, and the λ×seed grid builder.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/ensemble.hpp"
#include "system/metrics.hpp"
#include "system/shapes.hpp"

namespace sops::core {
namespace {

ReplicaSpec basicSpec(double lambda, std::uint64_t seed,
                      std::uint64_t iterations) {
  ReplicaSpec spec;
  spec.label = "lambda=" + std::to_string(lambda);
  spec.options.lambda = lambda;
  spec.seed = seed;
  spec.iterations = iterations;
  spec.makeInitial = [] { return system::lineConfiguration(20); };
  return spec;
}

TEST(Ensemble, ResultsComeBackInSpecOrderWithLabels) {
  std::vector<ReplicaSpec> specs;
  specs.push_back(basicSpec(4.0, 1, 1000));
  specs.push_back(basicSpec(2.0, 2, 1000));
  specs.push_back(basicSpec(1.0, 3, 1000));
  const auto results = runEnsemble(specs);
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, i);
    EXPECT_EQ(results[i].label, specs[i].label);
    EXPECT_EQ(results[i].seed, specs[i].seed);
    EXPECT_EQ(results[i].lambda, specs[i].options.lambda);
    EXPECT_EQ(results[i].iterationsRun, 1000u);
    EXPECT_EQ(results[i].stats.steps, 1000u);
  }
}

TEST(Ensemble, DeterministicAcrossThreadCounts) {
  std::vector<ReplicaSpec> specs;
  for (std::uint64_t s = 1; s <= 6; ++s) {
    specs.push_back(basicSpec(4.0, s, 20000));
  }
  EnsembleOptions serial;
  serial.threads = 1;
  EnsembleOptions parallel4;
  parallel4.threads = 4;
  EnsembleOptions parallel8;
  parallel8.threads = 8;
  const auto a = runEnsemble(specs, serial);
  const auto b = runEnsemble(specs, parallel4);
  const auto c = runEnsemble(specs, parallel8);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), c.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].edges, b[i].edges) << "replica " << i;
    EXPECT_EQ(a[i].edges, c[i].edges) << "replica " << i;
    EXPECT_EQ(a[i].stats.accepted, b[i].stats.accepted) << "replica " << i;
    EXPECT_EQ(a[i].stats.accepted, c[i].stats.accepted) << "replica " << i;
    EXPECT_TRUE(a[i].finalSystem.sameArrangement(b[i].finalSystem))
        << "replica " << i;
    EXPECT_TRUE(a[i].finalSystem.sameArrangement(c[i].finalSystem))
        << "replica " << i;
  }
}

TEST(Ensemble, MatchesStandaloneChainExactly) {
  // A replica is the same object as a directly driven CompressionChain.
  auto spec = basicSpec(4.0, 99, 20000);
  const auto results = runEnsemble(std::vector<ReplicaSpec>{spec});
  CompressionChain direct(system::lineConfiguration(20), spec.options, 99);
  direct.run(20000);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].finalSystem.sameArrangement(direct.system()));
  EXPECT_EQ(results[0].edges, direct.edges());
  EXPECT_EQ(results[0].stats.accepted, direct.stats().accepted);
}

TEST(Ensemble, ChecksampledObservableAndFinalStats) {
  auto spec = basicSpec(4.0, 7, 5000);
  spec.checkpointEvery = 1000;
  spec.observable = [](const CompressionChain& chain) {
    return static_cast<double>(chain.edges());
  };
  const auto results = runEnsemble(std::vector<ReplicaSpec>{spec});
  ASSERT_EQ(results.size(), 1u);
  const auto& samples = results[0].samples;
  ASSERT_EQ(samples.size(), 5u);
  for (std::size_t k = 0; k < samples.size(); ++k) {
    EXPECT_EQ(samples[k].iteration, (k + 1) * 1000);
  }
  EXPECT_EQ(samples.back().value, static_cast<double>(results[0].edges));
}

TEST(Ensemble, StopWhenEndsReplicaEarly) {
  auto spec = basicSpec(4.0, 11, 1000000);
  spec.checkpointEvery = 500;
  spec.stopWhen = [](const CompressionChain&, std::uint64_t done) {
    return done >= 2000;
  };
  const auto results = runEnsemble(std::vector<ReplicaSpec>{spec});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].stoppedEarly);
  EXPECT_EQ(results[0].iterationsRun, 2000u);
}

TEST(Ensemble, DropsFinalSystemsWhenAsked) {
  EnsembleOptions options;
  options.keepFinalSystems = false;
  const auto results =
      runEnsemble(std::vector<ReplicaSpec>{basicSpec(4.0, 1, 100)}, options);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].finalSystem.empty());
  EXPECT_EQ(results[0].stats.steps, 100u);
}

TEST(Ensemble, OnReplicaDoneFiresOncePerReplica) {
  std::vector<ReplicaSpec> specs;
  for (std::uint64_t s = 1; s <= 5; ++s) {
    specs.push_back(basicSpec(3.0, s, 500));
  }
  std::atomic<int> calls{0};
  EnsembleOptions options;
  options.threads = 3;
  options.onReplicaDone = [&calls](const ReplicaResult&) { ++calls; };
  const auto results = runEnsemble(specs, options);
  EXPECT_EQ(results.size(), 5u);
  EXPECT_EQ(calls.load(), 5);
}

TEST(Ensemble, MissingFactoryThrows) {
  ReplicaSpec broken;
  broken.iterations = 10;
  EXPECT_THROW(
      (void)runEnsemble(std::vector<ReplicaSpec>{broken}),
      ContractViolation);
}

TEST(Ensemble, ReplicaErrorPropagates) {
  // Disconnected start: the chain constructor throws on the worker thread;
  // runEnsemble must surface it on the caller.
  ReplicaSpec broken = basicSpec(4.0, 1, 10);
  broken.makeInitial = [] {
    return system::ParticleSystem(
        std::vector<lattice::TriPoint>{{0, 0}, {7, 7}});
  };
  EnsembleOptions options;
  options.threads = 2;
  EXPECT_THROW(
      (void)runEnsemble(std::vector<ReplicaSpec>{broken, basicSpec(4.0, 2, 10)},
                        options),
      ContractViolation);
}

TEST(Ensemble, LambdaSeedGridBuildsCrossProductLambdaMajor) {
  const std::vector<double> lambdas = {2.0, 4.0, 6.0};
  const std::vector<std::uint64_t> seeds = {10, 20};
  const auto specs = lambdaSeedGrid(
      [] { return system::lineConfiguration(10); }, ChainOptions{}, lambdas,
      seeds, 123, 45);
  ASSERT_EQ(specs.size(), 6u);
  for (std::size_t i = 0; i < lambdas.size(); ++i) {
    for (std::size_t s = 0; s < seeds.size(); ++s) {
      const ReplicaSpec& spec = specs[i * seeds.size() + s];
      EXPECT_EQ(spec.options.lambda, lambdas[i]);
      EXPECT_EQ(spec.seed, seeds[s]);
      EXPECT_EQ(spec.iterations, 123u);
      EXPECT_EQ(spec.checkpointEvery, 45u);
      EXPECT_NE(spec.makeInitial, nullptr);
    }
  }
}

}  // namespace
}  // namespace sops::core
