// Golden-trajectory equivalence: the optimized chain (bitboard occupancy +
// precomputed move/decision tables) must be *step-for-step identical* to an
// independent re-implementation of the seed kernel — same RNG draw order,
// same outcome classification, same arrangement, same incrementally
// maintained edge count — for fixed seeds over long runs.  This is what
// keeps the stationary-distribution tests meaningful after hot-path
// rewrites: the optimization is required to be a no-op on the trajectory.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "core/compression_chain.hpp"
#include "core/properties.hpp"
#include "core/reference_kernel.hpp"
#include "rng/random.hpp"
#include "system/metrics.hpp"
#include "system/shapes.hpp"

namespace sops::core {
namespace {

using lattice::Direction;
using lattice::TriPoint;
using system::ParticleSystem;

// The reference side is core::ReferenceKernel (core/reference_kernel.hpp):
// the frozen seed implementation, shared with bench_perf's before/after
// measurements so the benchmarked baseline is exactly the certified one.

void expectIdenticalTrajectory(const ParticleSystem& start,
                               ChainOptions options, std::uint64_t seed,
                               std::uint64_t steps) {
  CompressionChain fast(start, options, seed);
  ReferenceKernel reference(start, options, seed);
  for (std::uint64_t i = 0; i < steps; ++i) {
    const StepOutcome a = fast.step();
    const StepOutcome b = reference.step();
    ASSERT_EQ(a, b) << "outcome diverged at step " << i;
  }
  EXPECT_TRUE(fast.system().sameArrangement(reference.system()));
  EXPECT_EQ(fast.edges(), reference.edges());
  EXPECT_EQ(fast.edges(), system::countEdges(fast.system()));
  const ChainStats& fs = fast.stats();
  const ChainStats& rs = reference.stats();
  EXPECT_EQ(fs.steps, rs.steps);
  EXPECT_EQ(fs.accepted, rs.accepted);
  EXPECT_EQ(fs.targetOccupied, rs.targetOccupied);
  EXPECT_EQ(fs.rejectedGap, rs.rejectedGap);
  EXPECT_EQ(fs.rejectedProperty, rs.rejectedProperty);
  EXPECT_EQ(fs.rejectedFilter, rs.rejectedFilter);
}

ChainOptions withLambda(double lambda) {
  ChainOptions options;
  options.lambda = lambda;
  return options;
}

TEST(GoldenTrajectory, LineStartCompressionRegime) {
  expectIdenticalTrajectory(system::lineConfiguration(60), withLambda(4.0),
                            1603, 20000);
}

TEST(GoldenTrajectory, LineStartExpansionRegime) {
  expectIdenticalTrajectory(system::lineConfiguration(60), withLambda(2.0),
                            77, 20000);
}

TEST(GoldenTrajectory, SpiralStart) {
  // The hexagonal spiral is the p_min witness — a maximally dense start.
  expectIdenticalTrajectory(system::spiralConfiguration(64), withLambda(4.0),
                            9001, 15000);
}

TEST(GoldenTrajectory, SpiralStartDispersal) {
  expectIdenticalTrajectory(system::spiralConfiguration(64), withLambda(0.5),
                            13, 15000);
}

TEST(GoldenTrajectory, HexagonRingStartWithHole) {
  // Hexagon-boundary start: exercises hole elimination (Lemma 3.8).
  expectIdenticalTrajectory(system::ringConfiguration(4), withLambda(4.0),
                            23, 15000);
}

TEST(GoldenTrajectory, GreedyMode) {
  ChainOptions options = withLambda(4.0);
  options.greedy = true;
  expectIdenticalTrajectory(system::lineConfiguration(40), options, 5, 10000);
}

TEST(GoldenTrajectory, AblationSwitches) {
  ChainOptions options = withLambda(3.0);
  options.allowProperty2 = false;
  expectIdenticalTrajectory(system::lineConfiguration(40), options, 31, 10000);

  ChainOptions noGap = withLambda(3.0);
  noGap.enforceGapCondition = false;
  expectIdenticalTrajectory(system::lineConfiguration(40), noGap, 37, 10000);

  ChainOptions unconstrained = withLambda(3.0);
  unconstrained.enforceProperties = false;
  unconstrained.enforceGapCondition = false;
  expectIdenticalTrajectory(system::spiralConfiguration(40), unconstrained, 41,
                            10000);
}

TEST(GoldenTrajectory, RandomHoleFreeStart) {
  rng::Random rng(99);
  const ParticleSystem start = system::randomHoleFree(50, rng);
  expectIdenticalTrajectory(start, withLambda(4.0), 311, 15000);
}

TEST(GoldenTrajectory, ApplyProposalMatchesReferenceSemantics) {
  // q < λ^{e'-e} must be evaluated with the exact same threshold the
  // reference kernel uses, including the q-at-threshold boundary.
  const std::vector<TriPoint> triangle{{0, 0}, {1, 0}, {0, 1}};
  CompressionChain chain(ParticleSystem(triangle), withLambda(4.0), 1);
  // Moving the top particle East loses one neighbor: threshold 1/4.
  EXPECT_EQ(chain.applyProposal(2, Direction::East, 0.2499999),
            StepOutcome::Accepted);
  CompressionChain chain2(ParticleSystem(triangle), withLambda(4.0), 1);
  EXPECT_EQ(chain2.applyProposal(2, Direction::East, 0.25),
            StepOutcome::RejectedFilter);
}

}  // namespace
}  // namespace sops::core
