// Tests for the MCMC convergence diagnostics (S9) and the perforated-blob
// generator backing the §3.7 hole experiment.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/convergence.hpp"
#include "core/compression_chain.hpp"
#include "rng/random.hpp"
#include "system/metrics.hpp"
#include "system/shapes.hpp"

namespace sops::analysis {
namespace {

std::vector<double> iidNormalish(std::size_t n, std::uint64_t seed) {
  rng::Random rng(seed);
  std::vector<double> xs(n);
  for (double& x : xs) {
    // sum of 4 uniforms: light-tailed, mean 2, var 1/3
    x = rng.uniform() + rng.uniform() + rng.uniform() + rng.uniform();
  }
  return xs;
}

/// AR(1) series with coefficient phi: τ = (1+phi)/(1-phi).
std::vector<double> ar1(std::size_t n, double phi, std::uint64_t seed) {
  rng::Random rng(seed);
  std::vector<double> xs(n);
  double state = 0.0;
  for (double& x : xs) {
    state = phi * state + (rng.uniform() - 0.5);
    x = state;
  }
  return xs;
}

TEST(Autocorrelation, LagZeroIsOne) {
  const auto xs = iidNormalish(1000, 1);
  const auto rho = autocorrelation(xs, 10);
  EXPECT_NEAR(rho[0], 1.0, 1e-12);
}

TEST(Autocorrelation, IidIsNearZeroBeyondLagZero) {
  const auto xs = iidNormalish(20000, 2);
  const auto rho = autocorrelation(xs, 5);
  for (std::size_t lag = 1; lag <= 5; ++lag) {
    EXPECT_LT(std::fabs(rho[lag]), 0.03) << lag;
  }
}

TEST(Autocorrelation, Ar1DecaysGeometrically) {
  const double phi = 0.8;
  const auto xs = ar1(100000, phi, 3);
  const auto rho = autocorrelation(xs, 4);
  for (std::size_t lag = 1; lag <= 4; ++lag) {
    EXPECT_NEAR(rho[lag], std::pow(phi, lag), 0.05) << lag;
  }
}

TEST(Autocorrelation, ConstantSeriesIsDefined) {
  const std::vector<double> xs(100, 3.14);
  const auto rho = autocorrelation(xs, 3);
  EXPECT_NEAR(rho[0], 1.0, 1e-12);
  EXPECT_NEAR(rho[1], 0.0, 1e-12);
}

TEST(IntegratedTau, NearOneForIid) {
  const auto xs = iidNormalish(50000, 4);
  EXPECT_NEAR(integratedAutocorrelationTime(xs), 1.0, 0.15);
}

TEST(IntegratedTau, MatchesAr1Theory) {
  const double phi = 0.6;
  const auto xs = ar1(200000, phi, 5);
  const double expected = (1 + phi) / (1 - phi);  // = 4
  EXPECT_NEAR(integratedAutocorrelationTime(xs), expected, 0.5);
}

TEST(EffectiveSampleSize, ShrinksWithCorrelation) {
  const auto iid = iidNormalish(20000, 6);
  const auto sticky = ar1(20000, 0.9, 7);
  EXPECT_GT(effectiveSampleSize(iid), effectiveSampleSize(sticky) * 3);
}

TEST(Geweke, StationarySeriesPasses) {
  const auto xs = ar1(50000, 0.5, 8);
  EXPECT_LT(std::fabs(gewekeZScore(xs)), 3.0);
}

TEST(Geweke, TrendingSeriesFails) {
  std::vector<double> xs(5000);
  rng::Random rng(9);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<double>(i) * 0.01 + rng.uniform();
  }
  EXPECT_GT(std::fabs(gewekeZScore(xs)), 5.0);
}

TEST(Geweke, RejectsBadFractions) {
  const auto xs = iidNormalish(1000, 10);
  EXPECT_THROW((void)gewekeZScore(xs, 0.7, 0.7), ContractViolation);
}

TEST(ChainDiagnostics, PerimeterTraceReachesQuasiStationarity) {
  // End-to-end: at λ=4, n=30, the perimeter trace after burn-in passes the
  // Geweke diagnostic and has a finite autocorrelation time.
  core::ChainOptions options;
  options.lambda = 4.0;
  core::CompressionChain chain(system::lineConfiguration(30), options, 17);
  chain.run(600000);  // burn-in past the compression transient
  std::vector<double> trace;
  for (int i = 0; i < 4000; ++i) {
    chain.run(250);
    trace.push_back(static_cast<double>(chain.perimeterIfHoleFree()));
  }
  EXPECT_LT(std::fabs(gewekeZScore(trace)), 3.5);
  EXPECT_GT(effectiveSampleSize(trace), 50.0);
}

}  // namespace
}  // namespace sops::analysis

namespace sops::system {
namespace {

TEST(PerforatedBlob, HasRequestedSizeAndHoles) {
  rng::Random rng(11);
  const ParticleSystem sys = perforatedBlob(100, 8, rng);
  EXPECT_EQ(sys.size(), 100u);
  EXPECT_TRUE(isConnected(sys));
  EXPECT_EQ(countHoles(sys), 8);
}

TEST(PerforatedBlob, ZeroHolesIsJustABlob) {
  rng::Random rng(12);
  const ParticleSystem sys = perforatedBlob(50, 0, rng);
  EXPECT_EQ(sys.size(), 50u);
  EXPECT_EQ(countHoles(sys), 0);
}

TEST(PerforatedBlob, PerimeterIdentityWithHoles) {
  rng::Random rng(13);
  const ParticleSystem sys = perforatedBlob(120, 10, rng);
  const auto n = static_cast<std::int64_t>(sys.size());
  EXPECT_EQ(perimeter(sys),
            3 * n - countEdges(sys) - 3 + 3 * countHoles(sys));
}

}  // namespace
}  // namespace sops::system
