// The sharded chain runner's two contracts (core/sharded_chain_runner.hpp):
//
//  1. Determinism: the trajectory is a pure function of the seed —
//     independent of the stripe-phase thread count — for all three weight
//     models, including configurations that straddle many 64-column
//     stripe boundaries.  These tests run under TSan in CI (suite
//     ShardedChain is in the tsan job's filter), so the exclusive-word
//     discipline is also checked for data races, not just outcomes.
//
//  2. Distribution: the Poissonized, stripe-reordered schedule must
//     sample the same stationary distribution as the sequential chain.
//     At enumerable sizes the exact π is available; beyond them the
//     sequential engine is the reference.
//
// Pre-registered design for the distributional tests (fixed before
// looking at outcomes, matching tests/local_vs_chain_test.cpp):
//   - burn-in 50,000 events; one sample every 48 events;
//     150,000 samples at n = 4 (44 states), 200,000 at n = 5 (186);
//   - expected cells below 5 pooled (Cochran, the stats.hpp default);
//   - acceptance: chi-square p > 0.01; two-sample KS p > 0.001;
//   - fixed seeds, so the tests are reproducible rather than flaky.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "analysis/stats.hpp"
#include "core/epoch_control.hpp"
#include "core/scenario_models.hpp"
#include "core/sharded_chain_runner.hpp"
#include "enumeration/exact_distribution.hpp"
#include "system/canonical.hpp"
#include "system/metrics.hpp"
#include "system/shapes.hpp"

namespace sops::core {
namespace {

using system::ParticleSystem;

// --- determinism across thread counts --------------------------------------

/// Everything one run can disagree on: per-id positions (stronger than
/// arrangement equality), the tracked edge count, the full outcome tally,
/// and how much of the schedule ran on the sweep.
struct RunSignature {
  std::vector<TriPoint> positions;
  std::int64_t edges = 0;
  std::uint64_t steps = 0;
  std::uint64_t accepted = 0;
  std::uint64_t auxAccepted = 0;
  std::uint64_t sweepEvents = 0;

  bool operator==(const RunSignature& other) const {
    return positions == other.positions && edges == other.edges &&
           steps == other.steps && accepted == other.accepted &&
           auxAccepted == other.auxAccepted &&
           sweepEvents == other.sweepEvents;
  }
};

template <typename Model>
RunSignature signatureOf(const ShardedChainRunner<Model>& runner) {
  RunSignature sig;
  sig.positions = runner.system().positions();
  sig.edges = runner.edges();
  sig.steps = runner.stats().steps;
  sig.accepted = runner.stats().movement.accepted;
  sig.auxAccepted = runner.stats().auxAccepted;
  sig.sweepEvents = runner.sweepEvents();
  return sig;
}

/// Runs `runner` in three bursts (crossing several epoch barriers and
/// index suspend/restore cycles) and checks the bookkeeping invariants
/// every run must keep exactly: tracked e(σ) vs a full recount, and
/// connectivity (every executed event is a legal move of the model).
template <typename Model>
RunSignature runAndCheck(ShardedChainRunner<Model>& runner,
                         std::uint64_t events) {
  for (int burst = 0; burst < 3; ++burst) runner.runAtLeast(events / 3);
  EXPECT_EQ(runner.edges(), system::countEdges(runner.system()));
  EXPECT_TRUE(system::isConnected(runner.system()));
  return signatureOf(runner);
}

/// The thread counts the contract quantifies over: inline, small pool, a
/// count coprime to any stripe structure, and whatever this host has.
std::vector<unsigned> contractThreadCounts() {
  return {1u, 2u, 7u, std::max(1u, std::thread::hardware_concurrency())};
}

TEST(ShardedChain, CompressionTrajectoryIndependentOfThreadCount) {
  // n = 300 line: the window spans ≥ 5 stripes, so the start straddles
  // several stripe boundaries and halo bands stay busy all run.
  ChainOptions options;
  options.lambda = 4.0;
  std::vector<RunSignature> signatures;
  for (const unsigned threads : contractThreadCounts()) {
    ShardedChainOptions sharded;
    sharded.threads = threads;
    ShardedChainRunner<CompressionModel> runner(
        system::lineConfiguration(300), CompressionModel(options), 9001,
        sharded);
    signatures.push_back(runAndCheck(runner, 120000));
    EXPECT_GT(signatures.back().sweepEvents, 0u);
    EXPECT_LT(signatures.back().sweepEvents, signatures.back().steps);
  }
  for (std::size_t i = 1; i < signatures.size(); ++i) {
    EXPECT_TRUE(signatures[i] == signatures[0]) << "thread count #" << i;
  }
}

TEST(ShardedChain, SeparationTrajectoryIndependentOfThreadCount) {
  SeparationModel::Options options;
  options.lambda = 4.0;
  options.gamma = 4.0;
  std::vector<RunSignature> signatures;
  std::vector<std::vector<std::uint8_t>> colorings;
  for (const unsigned threads : contractThreadCounts()) {
    ShardedChainOptions sharded;
    sharded.threads = threads;
    ShardedChainRunner<SeparationModel> runner(
        system::lineConfiguration(300),
        SeparationModel(options, system::alternatingClasses(300, 2)), 9007,
        sharded);
    signatures.push_back(runAndCheck(runner, 120000));
    colorings.push_back(runner.model().colors());
    EXPECT_GT(runner.stats().auxAccepted, 0u);  // swaps actually exercised
  }
  for (std::size_t i = 1; i < signatures.size(); ++i) {
    EXPECT_TRUE(signatures[i] == signatures[0]) << "thread count #" << i;
    EXPECT_EQ(colorings[i], colorings[0]) << "thread count #" << i;
  }
}

TEST(ShardedChain, AlignmentTrajectoryIndependentOfThreadCount) {
  AlignmentModel::Options options;
  options.lambda = 4.0;
  options.kappa = 4.0;
  std::vector<RunSignature> signatures;
  std::vector<std::vector<std::uint8_t>> orientations;
  for (const unsigned threads : contractThreadCounts()) {
    ShardedChainOptions sharded;
    sharded.threads = threads;
    ShardedChainRunner<AlignmentModel> runner(
        system::lineConfiguration(300),
        AlignmentModel(options, system::alternatingClasses(300, 6)), 9011,
        sharded);
    signatures.push_back(runAndCheck(runner, 120000));
    orientations.push_back(runner.model().orientations());
    EXPECT_GT(runner.stats().auxAccepted, 0u);  // rotations exercised
  }
  for (std::size_t i = 1; i < signatures.size(); ++i) {
    EXPECT_TRUE(signatures[i] == signatures[0]) << "thread count #" << i;
    EXPECT_EQ(orientations[i], orientations[0]) << "thread count #" << i;
  }
}

TEST(ShardedChain, IdPlaneOverflowRunsStripedOnPagedPlane) {
  // Between ParticleIdPlane::kMaxCells (2^24 cells) and BitGrid's flat cap
  // (2^28 bits) lies a regime where the window is dense but the u32 id
  // mirror is too large to allocate flat: the plane switches to its paged
  // backend and the epochs keep running striped — stripe workers resolve
  // swap partners from the pages, and only halo / page-frontier events
  // fall to the sequential sweep.  A 10k line's window (proportional
  // margins make it ~15062 × 5063 ≈ 76M cells but only ~1.2M words) sits
  // squarely in that regime.
  const std::size_t n = 10000;
  SeparationModel::Options options;
  options.lambda = 4.0;
  options.gamma = 4.0;
  ShardedChainOptions sharded;
  sharded.threads = 2;
  ShardedChainRunner<SeparationModel> runner(
      system::lineConfiguration(static_cast<std::int64_t>(n)),
      SeparationModel(options, system::alternatingClasses(n, 2)), 9017,
      sharded);
  ASSERT_GT(runner.system().grid().width() * runner.system().grid().height(),
            ParticleIdPlane::kMaxCells);
  ASSERT_TRUE(runner.system().grid().enabled());
  const std::uint64_t executed = runner.runAtLeast(50000);
  // The bulk of the events ran on the parallel stripe phase: the paged id
  // plane removed the old everything-on-the-sweep cliff.
  EXPECT_LT(runner.sweepEvents(), executed);
  EXPECT_EQ(runner.stats().steps, executed);
  EXPECT_GT(runner.stats().auxAccepted, 0u);  // swaps resolved partners
  EXPECT_FALSE(runner.system().indexSuspended());
  EXPECT_EQ(runner.edges(), system::countEdges(runner.system()));
}

TEST(ShardedChain, ThreadInvariantAcrossEpochConfigurations) {
  // The contract quantifies over the epoch machinery too: several fixed
  // targets (small epochs, derived-scale epochs, big epochs), the
  // adaptive controller (the default), and heterogeneous clock rates must
  // each give a trajectory — and an adaptive-target history — that is a
  // pure function of the seed.  The final epoch target is part of the
  // signature: the controller's decisions are made from deferred/total
  // counts, which are themselves thread-invariant.
  struct Config {
    std::uint64_t target;  // 0 = adaptive
    bool ramped;           // heterogeneous rates?
  };
  const std::size_t n = 300;
  std::vector<double> ramp(n);
  for (std::size_t i = 0; i < n; ++i) {
    ramp[i] = 1.0 + 3.0 * static_cast<double>(i) / static_cast<double>(n - 1);
  }
  for (const Config config :
       {Config{96, false}, Config{2048, false}, Config{16384, false},
        Config{0, false}, Config{0, true}}) {
    std::vector<RunSignature> signatures;
    std::vector<std::uint64_t> targets;
    for (const unsigned threads : {1u, 3u, std::max(
             1u, std::thread::hardware_concurrency())}) {
      ChainOptions options;
      options.lambda = 4.0;
      ShardedChainOptions sharded;
      sharded.threads = threads;
      sharded.targetEventsPerEpoch = config.target;
      if (config.ramped) sharded.rates = ramp;
      ShardedChainRunner<CompressionModel> runner(
          system::lineConfiguration(static_cast<std::int64_t>(n)),
          CompressionModel(options), 9019, sharded);
      signatures.push_back(runAndCheck(runner, 90000));
      targets.push_back(runner.epochTarget());
    }
    for (std::size_t i = 1; i < signatures.size(); ++i) {
      EXPECT_TRUE(signatures[i] == signatures[0])
          << "target " << config.target << " ramped " << config.ramped
          << " thread count #" << i;
      EXPECT_EQ(targets[i], targets[0])
          << "target " << config.target << " ramped " << config.ramped;
    }
    if (config.target != 0) {
      EXPECT_EQ(targets[0], config.target);
    }
  }
}

TEST(ShardedChain, DerivedEpochTargetClampedToCap) {
  // Regression: the derived default target (2n) used to bypass the 2^28
  // guard that explicit targets got, so a hypothetical 2^27-particle
  // system would have produced epochs above the cap (and with it an
  // event-buffer footprint the sort/merge machinery never budgets for).
  // The derivation is a pure function, so the regression pins it
  // directly, plus the floor and the midrange.
  EXPECT_EQ(derivedEpochTarget(1), 1024u);
  EXPECT_EQ(derivedEpochTarget(512), 1024u);
  EXPECT_EQ(derivedEpochTarget(10000), 20000u);
  EXPECT_EQ(derivedEpochTarget(std::uint64_t{1} << 27), kMaxEventsPerEpoch);
  EXPECT_EQ(derivedEpochTarget((std::uint64_t{1} << 27) + 12345),
            kMaxEventsPerEpoch);
  EXPECT_EQ(derivedEpochTarget(std::uint64_t{1} << 40), kMaxEventsPerEpoch);

  // The adaptive controller inherits the cap: from any particle count its
  // upper bound never exceeds 2^28, so no sequence of doublings can
  // escape it.
  AdaptiveEpochController huge(std::uint64_t{1} << 40);
  EXPECT_EQ(huge.target(), kMaxEventsPerEpoch);
  for (int i = 0; i < 80; ++i) huge.update(0, 1000);  // always "double"
  EXPECT_EQ(huge.target(), kMaxEventsPerEpoch);

  AdaptiveEpochController small(300);
  EXPECT_EQ(small.target(), 1024u);
  for (int i = 0; i < 80; ++i) small.update(1000, 1000);  // always "halve"
  EXPECT_EQ(small.target(), 1024u);  // floor holds
  for (int i = 0; i < 80; ++i) small.update(0, 1000);  // always "double"
  EXPECT_EQ(small.target(), 4800u);  // ceiling: min(16n, cap)
}

TEST(ShardedChain, CompactShapeTrajectoryIndependentOfThreadCount) {
  // A spiral sits inside one or two stripes with the action at the
  // window's interior — the complementary stripe geometry to the line.
  ChainOptions options;
  options.lambda = 4.0;
  std::vector<RunSignature> signatures;
  for (const unsigned threads : contractThreadCounts()) {
    ShardedChainOptions sharded;
    sharded.threads = threads;
    ShardedChainRunner<CompressionModel> runner(
        system::spiralConfiguration(500), CompressionModel(options), 9013,
        sharded);
    signatures.push_back(runAndCheck(runner, 90000));
  }
  for (std::size_t i = 1; i < signatures.size(); ++i) {
    EXPECT_TRUE(signatures[i] == signatures[0]) << "thread count #" << i;
  }
}

}  // namespace
}  // namespace sops::core

// --- distributional validation ---------------------------------------------
// Heavier chains live in their own suite so the TSan job (which runs the
// ShardedChain determinism tests above under a ~10x slowdown) does not
// also pay for millions of distribution-sampling events.

namespace sops::core {
namespace {

constexpr int kBurnIn = 50000;
constexpr int kStride = 48;
constexpr double kAcceptP = 0.01;

/// Chi-square of the sharded compression runner's visited configurations
/// against the exact π(σ) = λ^e/Z over Ω*.  Epochs are sized to the
/// sampling stride so each runAtLeast() burst is one sampling interval.
void expectShardedCompressionMatchesPi(int n, int instants, std::uint64_t seed,
                                       std::vector<double> rates = {}) {
  const enumeration::ExactEnsemble ensemble(n);
  const double lambda = 2.0;
  std::unordered_map<std::string, std::size_t> indexOf;
  for (std::size_t i = 0; i < ensemble.configs().size(); ++i) {
    indexOf.emplace(
        system::canonicalKeyFromPoints(ensemble.configs()[i].points), i);
  }
  ChainOptions options;
  options.lambda = lambda;
  ShardedChainOptions sharded;
  sharded.targetEventsPerEpoch = kStride;
  sharded.rates = std::move(rates);
  ShardedChainRunner<CompressionModel> runner(
      system::lineConfiguration(n), CompressionModel(options), seed, sharded);
  runner.runAtLeast(kBurnIn);
  std::vector<double> counts(ensemble.configs().size(), 0.0);
  for (int s = 0; s < instants; ++s) {
    runner.runAtLeast(kStride);
    const auto it = indexOf.find(system::canonicalKey(runner.system()));
    ASSERT_NE(it, indexOf.end()) << "sharded runner left the support of pi";
    counts[it->second] += 1.0;
  }
  const std::vector<double> exact = ensemble.stationary(lambda);
  double total = 0.0;
  for (const double c : counts) total += c;
  ASSERT_GT(total, 1000.0);
  const analysis::ChiSquareResult gof =
      analysis::chiSquareGoodnessOfFit(counts, exact);
  EXPECT_GT(gof.pValue, kAcceptP)
      << "chi2 = " << gof.statistic << ", dof = " << gof.dof
      << ", samples = " << total;
}

TEST(ShardedChainDistribution, CompressionMatchesExactPiN4) {
  expectShardedCompressionMatchesPi(4, 150000, 1201);
}

TEST(ShardedChainDistribution, CompressionMatchesExactPiN5) {
  expectShardedCompressionMatchesPi(5, 200000, 1301);
}

// Heterogeneous clock rates leave π unchanged: the jump chain picks
// particle i with probability r_i / Σr, but a move σ→τ and its reverse
// τ→σ are proposals of the *same* particle (the one that moves), so the
// selection bias cancels pairwise and the Metropolis filter min(1, λ^Δe)
// still balances π(σ) ∝ λ^{e(σ)}.  Only the *clock* on each transition
// changes, not the stationary law — so the expected chi-square counts are
// the plain exact π, same as the uniform chain.

TEST(ShardedChainDistribution, HeterogeneousRatesMatchExactPiN4) {
  expectShardedCompressionMatchesPi(4, 150000, 1401, {0.5, 2.0, 1.25, 3.0});
}

TEST(ShardedChainDistribution, HeterogeneousRatesMatchExactPiN5) {
  expectShardedCompressionMatchesPi(5, 200000, 1501,
                                    {1.0, 4.0, 0.25, 2.0, 1.5});
}

TEST(ShardedChainDistribution, PerimeterMatchesSequentialEngineKS) {
  // Beyond enumerable sizes: at n = 10⁴ the sharded runner and the
  // sequential engine must agree on observables.  Each side runs R
  // independent replicas from the same line start for a matched number
  // of events (the sequential replica re-runs the sharded one's exact
  // executed count, absorbing epoch rounding), and the two final-
  // perimeter samples are compared by two-sample KS.  Replicas are
  // independent, so the KS iid assumption is sound.
  const std::int64_t n = 10000;
  const double lambda = 4.0;
  constexpr int kReplicas = 24;
  constexpr std::uint64_t kEvents = 150000;

  std::vector<double> shardedPerimeters;
  std::vector<double> enginePerimeters;
  for (int r = 0; r < kReplicas; ++r) {
    ChainOptions options;
    options.lambda = lambda;
    ShardedChainRunner<CompressionModel> runner(
        system::lineConfiguration(n), CompressionModel(options),
        5000 + static_cast<std::uint64_t>(r) * 13);
    runner.runAtLeast(kEvents);
    shardedPerimeters.push_back(
        static_cast<double>(system::perimeter(runner.system())));

    CompressionEngine engine(system::lineConfiguration(n),
                             CompressionModel(options),
                             9000 + static_cast<std::uint64_t>(r) * 17);
    engine.run(runner.stats().steps);
    enginePerimeters.push_back(
        static_cast<double>(system::perimeter(engine.system())));
  }
  const analysis::KsResult ks =
      analysis::ksTwoSample(shardedPerimeters, enginePerimeters);
  EXPECT_GT(ks.pValue, 0.001) << "D = " << ks.statistic;
}

}  // namespace
}  // namespace sops::core
