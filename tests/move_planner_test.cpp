// Tests for the move planner (S6): executable witnesses of the paper's
// ergodicity results — Lemma 3.7 (everything reaches the line), Lemma 3.8
// (holed states reach Ω*), Lemma 3.10 (Ω* irreducible), and reversibility.
#include <gtest/gtest.h>

#include "core/move_planner.hpp"
#include "rng/random.hpp"
#include "system/canonical.hpp"
#include "system/metrics.hpp"
#include "system/shapes.hpp"

namespace sops::core {
namespace {

using system::ParticleSystem;

TEST(MovePlanner, TrivialPlanWhenAlreadyAtTarget) {
  const ParticleSystem line = system::lineConfiguration(5);
  const auto plan = planToLine(line);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->moves.empty());
}

TEST(MovePlanner, TargetMayBeATranslate) {
  ParticleSystem source = system::lineConfiguration(4);
  std::vector<lattice::TriPoint> shifted;
  for (const auto p : source.positions()) {
    shifted.push_back(p + lattice::TriPoint{100, -50});
  }
  const auto plan = planMoves(source, ParticleSystem(shifted));
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->moves.empty());  // same configuration class
}

TEST(MovePlanner, SpiralToLineWitnessesLemma37) {
  // Lemma 3.7: a valid move sequence from the most compressed configuration
  // to the line (the other extreme).
  const ParticleSystem spiral = system::spiralConfiguration(7);
  const auto plan = planToLine(spiral);
  ASSERT_TRUE(plan.has_value());
  EXPECT_FALSE(plan->moves.empty());
  const ParticleSystem final = replayPlan(spiral,
                                          *plan);  // validates each move
  EXPECT_EQ(system::canonicalKey(final),
            system::canonicalKey(system::lineConfiguration(7)));
}

TEST(MovePlanner, RingToLineWitnessesLemma38) {
  // Lemma 3.8: the holed ring reaches Ω* (and then the line) via valid
  // moves; along the replay, connectivity is never lost (Lemma 3.1).
  const ParticleSystem ring = system::ringConfiguration(1);
  ASSERT_EQ(system::countHoles(ring), 1);
  const auto plan = planToLine(ring);
  ASSERT_TRUE(plan.has_value());

  // Replay step by step, asserting connectivity throughout.
  ParticleSystem sys = ring;
  for (const PlannedMove& move : plan->moves) {
    MovePlan single;
    single.moves = {move};
    sys = replayPlan(sys, single);
    ASSERT_TRUE(system::isConnected(sys));
  }
  EXPECT_EQ(system::canonicalKey(sys),
            system::canonicalKey(system::lineConfiguration(6)));
  EXPECT_EQ(system::countHoles(sys), 0);
}

TEST(MovePlanner, RandomPairsAreMutuallyReachable) {
  // Lemma 3.10 sampled: arbitrary hole-free pairs connect both ways.
  rng::Random rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    const std::int64_t n = 5 + static_cast<std::int64_t>(rng.below(3));
    const ParticleSystem a = system::randomHoleFree(n, rng);
    const ParticleSystem b = system::randomHoleFree(n, rng);
    const auto forward = planMoves(a, b);
    const auto backward = planMoves(b, a);
    ASSERT_TRUE(forward.has_value()) << "trial " << trial;
    ASSERT_TRUE(backward.has_value()) << "trial " << trial;
    EXPECT_EQ(system::canonicalKey(replayPlan(a, *forward)),
              system::canonicalKey(b));
    EXPECT_EQ(system::canonicalKey(replayPlan(b, *backward)),
              system::canonicalKey(a));
  }
}

TEST(MovePlanner, P1OnlyKernelStillPlansAtSmallSizes) {
  // P1-only irreducibility holds for n ≤ 9 (bench_fig3); the planner under
  // the ablated kernel must still find routes at small n.
  ChainOptions p1Only;
  p1Only.allowProperty2 = false;
  const ParticleSystem spiral = system::spiralConfiguration(6);
  const auto plan = planToLine(spiral, p1Only);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(system::canonicalKey(replayPlan(spiral, *plan, p1Only)),
            system::canonicalKey(system::lineConfiguration(6)));
}

TEST(MovePlanner, StateLimitIsHonored) {
  const ParticleSystem spiral = system::spiralConfiguration(8);
  const auto plan = planToLine(spiral, ChainOptions{}, /*stateLimit=*/10);
  EXPECT_FALSE(plan.has_value());
}

TEST(MovePlanner, PlansAreShortestInStateGraph) {
  // BFS optimality spot check: a single Property-1 slide away.
  const std::vector<lattice::TriPoint> triangle{{0, 0}, {1, 0}, {0, 1}};
  const std::vector<lattice::TriPoint> bent{{0, 0}, {1, 0}, {1, 1}};
  const auto plan =
      planMoves(ParticleSystem(triangle), ParticleSystem(bent));
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->moves.size(), 1u);
}

TEST(MovePlanner, RejectsMismatchedSizes) {
  EXPECT_THROW(
      (void)planMoves(system::lineConfiguration(4),
                      system::lineConfiguration(5)),
      ContractViolation);
}

TEST(MovePlanner, ReplayRejectsCorruptedPlans) {
  const ParticleSystem line = system::lineConfiguration(4);
  MovePlan bogus;
  bogus.moves = {{{0, 0}, {0, 1}}};  // moving an interior-ish particle up...
  // (0,0) is the line's end; moving it NE is actually valid.  Corrupt it:
  bogus.moves = {{{1, 0}, {1, 1}}};  // disconnects the line: must throw
  EXPECT_THROW((void)replayPlan(line, bogus), ContractViolation);
  MovePlan unoccupied;
  unoccupied.moves = {{{9, 9}, {9, 10}}};
  EXPECT_THROW((void)replayPlan(line, unoccupied), ContractViolation);
}

}  // namespace
}  // namespace sops::core
