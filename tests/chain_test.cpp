// Tests for the Markov chain M (S6): kernel correctness on hand-built
// configurations, determinism, and the paper's invariants (Lemmas 3.1, 3.2,
// 3.9) asserted along real trajectories.
#include <gtest/gtest.h>

#include <vector>

#include "core/compression_chain.hpp"
#include "rng/random.hpp"
#include "system/metrics.hpp"
#include "system/shapes.hpp"

namespace sops::core {
namespace {

using lattice::Direction;
using lattice::TriPoint;
using system::ParticleSystem;

ChainOptions withLambda(double lambda) {
  ChainOptions options;
  options.lambda = lambda;
  return options;
}

TEST(ChainConstruction, RejectsDisconnectedStart) {
  const ParticleSystem sys(std::vector<TriPoint>{{0, 0}, {5, 5}});
  EXPECT_THROW(CompressionChain(sys, withLambda(4.0), 1), ContractViolation);
}

TEST(ChainConstruction, RejectsNonPositiveLambda) {
  const ParticleSystem sys = system::lineConfiguration(4);
  EXPECT_THROW(CompressionChain(sys, withLambda(0.0), 1), ContractViolation);
  EXPECT_THROW(CompressionChain(sys, withLambda(-1.0), 1), ContractViolation);
}

TEST(ChainStep, DeterministicGivenSeed) {
  CompressionChain a(system::lineConfiguration(20), withLambda(4.0), 99);
  CompressionChain b(system::lineConfiguration(20), withLambda(4.0), 99);
  a.run(20000);
  b.run(20000);
  EXPECT_TRUE(a.system().sameArrangement(b.system()));
  EXPECT_EQ(a.stats().accepted, b.stats().accepted);
}

TEST(ChainStep, DifferentSeedsDiverge) {
  CompressionChain a(system::lineConfiguration(20), withLambda(4.0), 1);
  CompressionChain b(system::lineConfiguration(20), withLambda(4.0), 2);
  a.run(20000);
  b.run(20000);
  EXPECT_FALSE(a.system().sameArrangement(b.system()));
}

TEST(ChainStep, ParticleCountConserved) {
  CompressionChain chain(system::lineConfiguration(15), withLambda(3.0), 5);
  chain.run(50000);
  EXPECT_EQ(chain.system().size(), 15u);
}

TEST(ChainStep, OutcomeCountsAddUp) {
  CompressionChain chain(system::lineConfiguration(15), withLambda(4.0), 5);
  chain.run(10000);
  const ChainStats& s = chain.stats();
  EXPECT_EQ(s.steps, 10000u);
  EXPECT_EQ(s.accepted + s.targetOccupied + s.rejectedGap + s.rejectedProperty +
                s.rejectedFilter,
            s.steps);
}

TEST(ApplyProposal, GapRejection) {
  // Particle 0 at the center with 5 neighbors; the only empty neighbor is
  // East.  Condition (1) must reject regardless of q.
  std::vector<TriPoint> points{{0, 0}};
  for (const Direction d : lattice::kAllDirections) {
    if (d != Direction::East) points.push_back(lattice::neighbor({0, 0}, d));
  }
  CompressionChain chain(ParticleSystem(points), withLambda(4.0), 1);
  EXPECT_EQ(chain.applyProposal(0, Direction::East, 0.0),
            StepOutcome::RejectedGap);
}

TEST(ApplyProposal, MetropolisFilterThreshold) {
  // Triangle: moving the top particle East drops one neighbor (Δe = -1),
  // so with λ=4 acceptance needs q < 1/4.
  const std::vector<TriPoint> triangle{{0, 0}, {1, 0}, {0, 1}};
  {
    CompressionChain chain(ParticleSystem(triangle), withLambda(4.0), 1);
    EXPECT_EQ(chain.applyProposal(2, Direction::East, 0.2),
              StepOutcome::Accepted);
    EXPECT_TRUE(chain.system().occupied({1, 1}));
  }
  {
    CompressionChain chain(ParticleSystem(triangle), withLambda(4.0), 1);
    EXPECT_EQ(chain.applyProposal(2, Direction::East, 0.26),
              StepOutcome::RejectedFilter);
    EXPECT_TRUE(chain.system().occupied({0, 1}));
  }
}

TEST(ApplyProposal, UphillMovesAlwaysAccepted) {
  // λ>1: gaining neighbors accepts with probability 1 (threshold ≥ 1).
  // Four in a row with one below: move the lone bottom particle to tuck in.
  const std::vector<TriPoint> points{{0, 0}, {1, 0}, {2, 0}, {0, -1}};
  CompressionChain chain(ParticleSystem(points), withLambda(4.0), 1);
  // (0,-1) moving East to (1,-1): e=1 (only (0,0)) becomes e'=2
  // ((0,0) and (1,0)), so the threshold λ^{+1} ≥ 1 accepts any q.
  EXPECT_EQ(chain.applyProposal(3, Direction::East, 0.999999),
            StepOutcome::Accepted);
}

TEST(ApplyProposal, TargetOccupied) {
  CompressionChain chain(system::lineConfiguration(3), withLambda(4.0), 1);
  EXPECT_EQ(chain.applyProposal(0, Direction::East, 0.0),
            StepOutcome::TargetOccupied);
}

TEST(ApplyProposal, PropertyRejectionOnWouldBeDisconnection) {
  // Middle of a line of 3 moving up would disconnect the ends.
  CompressionChain chain(system::lineConfiguration(3), withLambda(4.0), 1);
  EXPECT_EQ(chain.applyProposal(1, Direction::NorthEast, 0.0),
            StepOutcome::RejectedProperty);
}

TEST(ChainInvariants, ConnectivityPreservedFromHoledStart) {
  // Lemma 3.1: connectivity is invariant, even while holes exist.
  rng::Random rng(7);
  const ParticleSystem start = system::randomConnected(40, rng);
  CompressionChain chain(start, withLambda(4.0), 13);
  for (int burst = 0; burst < 100; ++burst) {
    chain.run(2000);
    ASSERT_TRUE(system::isConnected(chain.system())) << "burst " << burst;
  }
}

TEST(ChainInvariants, HoleFreeIsAbsorbing) {
  // Lemma 3.2: once hole-free, always hole-free.
  CompressionChain chain(system::lineConfiguration(30), withLambda(4.0), 17);
  for (int burst = 0; burst < 200; ++burst) {
    chain.run(1000);
    ASSERT_EQ(system::countHoles(chain.system()), 0) << "burst " << burst;
  }
}

TEST(ChainInvariants, HolesEventuallyEliminated) {
  // Lemma 3.8 (behavioral): from a ring (one hole), the chain reaches Ω*.
  CompressionChain chain(system::ringConfiguration(2), withLambda(4.0), 23);
  bool holeFree = false;
  for (int burst = 0; burst < 500 && !holeFree; ++burst) {
    chain.run(500);
    holeFree = system::countHoles(chain.system()) == 0;
  }
  EXPECT_TRUE(holeFree) << "ring hole did not close in 250k iterations";
}

TEST(ChainInvariants, AcceptedMovesAreReversible) {
  // Lemma 3.9: on Ω*, every executed move's reverse is a valid proposal.
  CompressionChain chain(system::lineConfiguration(20), withLambda(4.0), 31);
  std::uint64_t checkedMoves = 0;
  for (std::uint64_t step = 0; step < 50000; ++step) {
    if (chain.step() != StepOutcome::Accepted) continue;
    ++checkedMoves;
    const auto& move = chain.lastMove();
    ASSERT_TRUE(move.has_value());
    const auto back = lattice::directionBetween(move->to, move->from);
    ASSERT_TRUE(back.has_value());
    const MoveEvaluation reverse =
        evaluateMove(chain.system(), move->to, *back);
    ASSERT_FALSE(reverse.targetOccupied);
    ASSERT_TRUE(reverse.gapOk);
    ASSERT_TRUE(reverse.propertyOk);
  }
  EXPECT_GT(checkedMoves, 1000u);
}

TEST(ChainBehavior, CompressesAtLambdaFour) {
  // Fig 2 in miniature: n=50 from a line at λ=4 must visibly compress.
  CompressionChain chain(system::lineConfiguration(50), withLambda(4.0), 41);
  const auto initial = system::perimeter(chain.system());
  chain.run(1500000);
  const auto finalPerimeter = system::perimeter(chain.system());
  EXPECT_LT(finalPerimeter, initial / 2);
  EXPECT_LT(static_cast<double>(finalPerimeter),
            2.2 * static_cast<double>(system::pMin(50)));
}

TEST(ChainBehavior, StaysExpandedAtLambdaOne) {
  // λ=1 (unbiased) keeps the perimeter near the maximum (Theorem 5.7
  // regime, in miniature).
  CompressionChain chain(system::lineConfiguration(50), withLambda(1.0), 43);
  chain.run(1500000);
  const auto p = system::perimeter(chain.system());
  EXPECT_GT(static_cast<double>(p), 0.55 *
            static_cast<double>(system::pMax(50)));
}

TEST(ChainBehavior, GreedyOptionOnlyMovesWeaklyUphill) {
  ChainOptions options = withLambda(4.0);
  options.greedy = true;
  CompressionChain chain(system::lineConfiguration(20), options, 47);
  std::int64_t previousEdges = system::countEdges(chain.system());
  for (int burst = 0; burst < 50; ++burst) {
    chain.run(1000);
    const std::int64_t edges = system::countEdges(chain.system());
    ASSERT_GE(edges, previousEdges) << "greedy chain lost edges";
    previousEdges = edges;
  }
}

TEST(ChainBehavior, RunWithCheckpointsCoversAllIterations) {
  CompressionChain chain(system::lineConfiguration(10), withLambda(2.0), 3);
  std::vector<std::uint64_t> seen;
  chain.runWithCheckpoints(
      2500, 1000, [&seen](std::uint64_t done) { seen.push_back(done); });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1000, 2000, 2500}));
  EXPECT_EQ(chain.iterations(), 2500u);
}

TEST(ChainBehavior, LambdaBelowOneDisperses) {
  // λ < 1 disfavors neighbors: a compact spiral should lose edges.
  CompressionChain chain(system::spiralConfiguration(30), withLambda(0.5), 53);
  const std::int64_t before = system::countEdges(chain.system());
  chain.run(500000);
  EXPECT_LT(system::countEdges(chain.system()), before);
}

}  // namespace
}  // namespace sops::core
