// Exhaustive validation of the Property 1 / Property 2 bitmask evaluators
// (S6) against straight-from-the-paper geometric reference implementations,
// for all 256 ring masks × 6 move directions.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/properties.hpp"
#include "lattice/direction.hpp"
#include "system/particle_system.hpp"

namespace sops::core {
namespace {

using lattice::Direction;
using lattice::kAllDirections;
using lattice::neighbor;
using lattice::TriPoint;
using system::ParticleSystem;

/// Builds the particle set encoded by `mask` around the move (l, d); the
/// moving particle itself sits at l.
std::vector<TriPoint> configFromMask(TriPoint l, Direction d,
                                     std::uint8_t mask) {
  std::vector<TriPoint> points{l};
  for (int idx = 0; idx < kRingSize; ++idx) {
    if ((mask >> idx) & 1u) points.push_back(ringCell(l, d, idx));
  }
  return points;
}

/// Geometric N(ℓ ∪ ℓ') = (N(ℓ) ∪ N(ℓ')) \ {ℓ, ℓ'}, straight from §3.1.
std::vector<TriPoint> unionNeighborhood(TriPoint l, TriPoint lPrime) {
  std::set<std::pair<int, int>> seen;
  std::vector<TriPoint> cells;
  for (const TriPoint base : {l, lPrime}) {
    for (const Direction a : kAllDirections) {
      const TriPoint q = neighbor(base, a);
      if (q == l || q == lPrime) continue;
      if (seen.insert({q.x, q.y}).second) cells.push_back(q);
    }
  }
  return cells;
}

/// Reference Property 1: |S| ∈ {1,2} and every particle of N(ℓ∪ℓ') reaches
/// a particle of S by a path inside N(ℓ∪ℓ') — implemented as literal BFS
/// over occupied cells with real lattice adjacency.
bool referenceProperty1(const ParticleSystem& sys, TriPoint l,
                        TriPoint lPrime) {
  std::vector<TriPoint> common;
  for (const Direction a : kAllDirections) {
    const TriPoint q = neighbor(l, a);
    if (lattice::areAdjacent(q, lPrime) && sys.occupied(q)) common.push_back(q);
  }
  if (common.empty()) return false;

  std::vector<TriPoint> occupiedCells;
  for (const TriPoint q : unionNeighborhood(l, lPrime)) {
    if (sys.occupied(q)) occupiedCells.push_back(q);
  }
  // BFS from S within the occupied union-neighborhood cells.
  std::set<std::pair<int, int>> reached;
  std::vector<TriPoint> frontier = common;
  for (const TriPoint s : common) reached.insert({s.x, s.y});
  while (!frontier.empty()) {
    const TriPoint p = frontier.back();
    frontier.pop_back();
    for (const TriPoint q : occupiedCells) {
      if (lattice::areAdjacent(p, q) && reached.insert({q.x, q.y}).second) {
        frontier.push_back(q);
      }
    }
  }
  for (const TriPoint q : occupiedCells) {
    if (!reached.contains({q.x, q.y})) return false;
  }
  return true;
}

/// Reference Property 2: |S| = 0, each of N(ℓ)\{ℓ'} and N(ℓ')\{ℓ} is
/// nonempty and internally connected — literal BFS again.
bool referenceProperty2(const ParticleSystem& sys, TriPoint l,
                        TriPoint lPrime) {
  for (const Direction a : kAllDirections) {
    const TriPoint q = neighbor(l, a);
    if (lattice::areAdjacent(q, lPrime) && sys.occupied(q)) return false;
  }
  const auto sideConnected = [&sys](TriPoint base, TriPoint excluded) {
    std::vector<TriPoint> cells;
    for (const Direction a : kAllDirections) {
      const TriPoint q = neighbor(base, a);
      if (q == excluded) continue;
      if (sys.occupied(q)) cells.push_back(q);
    }
    if (cells.empty()) return false;
    std::set<std::pair<int, int>> reached{{cells[0].x, cells[0].y}};
    std::vector<TriPoint> frontier{cells[0]};
    while (!frontier.empty()) {
      const TriPoint p = frontier.back();
      frontier.pop_back();
      for (const TriPoint q : cells) {
        if (lattice::areAdjacent(p, q) && reached.insert({q.x, q.y}).second) {
          frontier.push_back(q);
        }
      }
    }
    return reached.size() == cells.size();
  };
  return sideConnected(l, lPrime) && sideConnected(lPrime, l);
}

TEST(RingGeometry, RingCellsAreExactlyTheUnionNeighborhood) {
  const TriPoint l{0, 0};
  for (const Direction d : kAllDirections) {
    const TriPoint lPrime = neighbor(l, d);
    std::set<std::pair<int, int>> fromRing;
    for (int idx = 0; idx < kRingSize; ++idx) {
      const TriPoint c = ringCell(l, d, idx);
      EXPECT_TRUE(fromRing.insert({c.x, c.y}).second) << "duplicate ring cell";
    }
    std::set<std::pair<int, int>> fromGeometry;
    for (const TriPoint c : unionNeighborhood(l, lPrime)) {
      fromGeometry.insert({c.x, c.y});
    }
    EXPECT_EQ(fromRing, fromGeometry) << "direction " << index(d);
  }
}

TEST(RingGeometry, ConsecutiveRingCellsAreAdjacentAndNoChords) {
  const TriPoint l{0, 0};
  for (const Direction d : kAllDirections) {
    for (int i = 0; i < kRingSize; ++i) {
      for (int j = i + 1; j < kRingSize; ++j) {
        const bool adjacent =
            lattice::areAdjacent(ringCell(l, d, i), ringCell(l, d, j));
        const bool consecutive = (j - i == 1) || (i == 0 && j == kRingSize - 1);
        EXPECT_EQ(adjacent, consecutive)
            << "d=" << index(d) << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST(RingGeometry, CommonNeighborsAreIndicesZeroAndFour) {
  const TriPoint l{2, -3};
  for (const Direction d : kAllDirections) {
    const TriPoint lPrime = neighbor(l, d);
    for (int idx = 0; idx < kRingSize; ++idx) {
      const TriPoint c = ringCell(l, d, idx);
      const bool commonNeighbor =
          lattice::areAdjacent(c, l) && lattice::areAdjacent(c, lPrime);
      EXPECT_EQ(commonNeighbor, idx == 0 || idx == 4) << idx;
    }
  }
}

TEST(RingGeometry, BeforeAfterMasksMatchGeometry) {
  const TriPoint l{0, 0};
  for (const Direction d : kAllDirections) {
    const TriPoint lPrime = neighbor(l, d);
    for (int idx = 0; idx < kRingSize; ++idx) {
      const TriPoint c = ringCell(l, d, idx);
      EXPECT_EQ(lattice::areAdjacent(c, l), (kBeforeMask >> idx) & 1u) << idx;
      EXPECT_EQ(lattice::areAdjacent(c, lPrime), (kAfterMask >> idx) & 1u)
          << idx;
    }
  }
}

TEST(Properties, ExhaustiveAgreementWithGeometricReference) {
  // All 256 occupancy patterns, all 6 directions: the O(1) bitmask
  // evaluators must agree exactly with the paper-literal BFS versions.
  const TriPoint l{0, 0};
  for (const Direction d : kAllDirections) {
    const TriPoint lPrime = neighbor(l, d);
    for (int mask = 0; mask < 256; ++mask) {
      const auto m = static_cast<std::uint8_t>(mask);
      const ParticleSystem sys(configFromMask(l, d, m));
      ASSERT_EQ(property1Holds(m), referenceProperty1(sys, l, lPrime))
          << "P1 mask=" << mask << " d=" << index(d);
      ASSERT_EQ(property2Holds(m), referenceProperty2(sys, l, lPrime))
          << "P2 mask=" << mask << " d=" << index(d);
    }
  }
}

TEST(Properties, MutuallyExclusive) {
  // S nonempty (P1) and S empty (P2) cannot both hold.
  for (int mask = 0; mask < 256; ++mask) {
    const auto m = static_cast<std::uint8_t>(mask);
    EXPECT_FALSE(property1Holds(m) && property2Holds(m)) << mask;
  }
}

TEST(Properties, NeighborCountsMatchBruteForce) {
  const TriPoint l{0, 0};
  for (const Direction d : kAllDirections) {
    const TriPoint lPrime = neighbor(l, d);
    for (int mask = 0; mask < 256; ++mask) {
      const auto m = static_cast<std::uint8_t>(mask);
      const ParticleSystem sys(configFromMask(l, d, m));
      int e = 0;
      int ePrime = 0;
      for (const Direction a : kAllDirections) {
        const TriPoint q = neighbor(l, a);
        if (q != lPrime && sys.occupied(q)) ++e;
        const TriPoint r = neighbor(lPrime, a);
        if (r != l && sys.occupied(r)) ++ePrime;
      }
      ASSERT_EQ(neighborsBefore(m), e) << mask;
      ASSERT_EQ(neighborsAfter(m), ePrime) << mask;
    }
  }
}

TEST(Properties, PaperExamples) {
  // Empty neighborhood: no property can hold (isolated pair would detach).
  EXPECT_FALSE(property1Holds(0));
  EXPECT_FALSE(property2Holds(0));
  // Only one common neighbor occupied: P1 holds (|S|=1, nothing else).
  EXPECT_TRUE(property1Holds(0b0000'0001));
  EXPECT_TRUE(property1Holds(0b0001'0000));
  // Full ring: single arc through both common neighbors.
  EXPECT_TRUE(property1Holds(0xFF));
  // Two arcs, one not touching a common neighbor: P1 fails.
  EXPECT_FALSE(property1Holds(0b0000'0101));  // idx 0 and idx 2 isolated
  // Property 2 canonical case: one particle on each side, S empty.
  EXPECT_TRUE(property2Holds(0b0100'0100));  // idx 2 and idx 6
  // Property 2 fails when one side is empty...
  EXPECT_FALSE(property2Holds(0b0000'0100));
  // ...or disconnected ({1,3} pattern).
  EXPECT_FALSE(property2Holds(0b0100'1010));
}

TEST(Properties, RingMaskOracleMatchesSystemOverload) {
  const TriPoint l{0, 0};
  for (const Direction d : kAllDirections) {
    for (int mask = 0; mask < 256; mask += 7) {
      const auto m = static_cast<std::uint8_t>(mask);
      const ParticleSystem sys(configFromMask(l, d, m));
      EXPECT_EQ(ringMask(sys, l, d), m);
      const std::uint8_t viaOracle =
          ringMask(l, d, [&sys](TriPoint p) { return sys.occupied(p); });
      EXPECT_EQ(viaOracle, m);
    }
  }
}

TEST(EvaluateMove, TargetOccupiedShortCircuits) {
  const ParticleSystem sys(std::vector<TriPoint>{{0, 0}, {1, 0}});
  const MoveEvaluation eval = evaluateMove(sys, {0, 0}, Direction::East);
  EXPECT_TRUE(eval.targetOccupied);
}

TEST(EvaluateMove, GapConditionDetectsFiveNeighbors) {
  // Center with 5 neighbors; moving to the 6th cell must trip e=5.
  std::vector<TriPoint> points{{0, 0}};
  for (const Direction d : kAllDirections) {
    if (d != Direction::East) points.push_back(neighbor({0, 0}, d));
  }
  const ParticleSystem sys(points);
  const MoveEvaluation eval = evaluateMove(sys, {0, 0}, Direction::East);
  EXPECT_FALSE(eval.targetOccupied);
  EXPECT_EQ(eval.eBefore, 5);
  EXPECT_FALSE(eval.gapOk);
}

TEST(EvaluateMove, CountsForTriangleMove) {
  // Triangle (0,0),(1,0),(0,1): moving (0,1) east keeps contact via P1 and
  // drops one neighbor (e=2 → e'=1).
  const ParticleSystem sys(std::vector<TriPoint>{{0, 0}, {1, 0}, {0, 1}});
  const MoveEvaluation eval = evaluateMove(sys, {0, 1}, Direction::East);
  EXPECT_FALSE(eval.targetOccupied);
  EXPECT_EQ(eval.eBefore, 2);
  EXPECT_EQ(eval.eAfter, 1);
  EXPECT_TRUE(eval.gapOk);
  EXPECT_TRUE(eval.propertyOk);
}

}  // namespace
}  // namespace sops::core
