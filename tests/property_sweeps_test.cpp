// Parameterized property sweeps (TEST_P): the paper's invariants and
// identities checked across grids of λ, n, seeds, and shapes — not just at
// single hand-picked points.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/compression_chain.hpp"
#include "enumeration/chain_matrix.hpp"
#include "enumeration/exact_distribution.hpp"
#include "markov/stationary.hpp"
#include "system/boundary.hpp"
#include "system/metrics.hpp"
#include "system/shapes.hpp"

namespace sops {
namespace {

// ---------------------------------------------------------------------
// Sweep 1: chain invariants across (λ, seed), including λ < 1.
// ---------------------------------------------------------------------
class ChainInvariantSweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(ChainInvariantSweep, ConnectivityHoleFreedomAndEdgeTracking) {
  const auto [lambda, seed] = GetParam();
  core::ChainOptions options;
  options.lambda = lambda;
  core::CompressionChain chain(system::lineConfiguration(24), options, seed);
  for (int burst = 0; burst < 30; ++burst) {
    chain.run(2000);
    ASSERT_TRUE(system::isConnected(chain.system()));
    ASSERT_EQ(system::countHoles(chain.system()), 0);
    // Incremental edge tracking must agree with a full recount (Lemma 2.3
    // then gives the perimeter for free).
    ASSERT_EQ(chain.edges(), system::countEdges(chain.system()));
    ASSERT_EQ(chain.perimeterIfHoleFree(), system::perimeter(chain.system()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    LambdaSeedGrid, ChainInvariantSweep,
    ::testing::Combine(::testing::Values(0.5, 1.0, 2.0, 2.17, 3.42, 4.0, 8.0),
                       ::testing::Values(1ULL, 7ULL, 1603ULL)));

// ---------------------------------------------------------------------
// Sweep 2: detailed balance and irreducibility of the exact kernel across λ
// (Lemmas 3.9/3.10/3.13 must hold for every positive bias, not just λ>1).
// ---------------------------------------------------------------------
class KernelLambdaSweep : public ::testing::TestWithParam<double> {};

TEST_P(KernelLambdaSweep, ExactKernelAuditsAtEveryLambda) {
  const double lambda = GetParam();
  core::ChainOptions options;
  options.lambda = lambda;
  const enumeration::ChainModel model = enumeration::buildChainModel(4,
      options);
  EXPECT_LT(model.matrix.maxRowDefect(), 1e-12);
  const markov::BalanceAudit audit = markov::auditDetailedBalance(
      model.matrix, model.edgeWeights(lambda), model.holeFree);
  EXPECT_TRUE(audit.holds) << "lambda=" << lambda
                           << " violation=" << audit.maxViolation;
  EXPECT_TRUE(model.matrix.stronglyConnectedWithin(model.holeFree));
}

INSTANTIATE_TEST_SUITE_P(LambdaGrid, KernelLambdaSweep,
                         ::testing::Values(0.25, 0.5, 1.0, 1.5, 2.0, 2.17, 3.0,
                                           3.42, 4.0, 6.0, 10.0));

// ---------------------------------------------------------------------
// Sweep 3: perimeter identities and tracer agreement across shapes & sizes.
// ---------------------------------------------------------------------
struct ShapeCase {
  const char* name;
  system::ParticleSystem (*make)(std::int64_t);
  bool holeFree;
};

system::ParticleSystem makeLine(std::int64_t n) {
  return system::lineConfiguration(n);
}
system::ParticleSystem makeSpiral(std::int64_t n) {
  return system::spiralConfiguration(n);
}
system::ParticleSystem makeDendrite(std::int64_t n) {
  rng::Random rng(static_cast<std::uint64_t>(n) * 31 + 5);
  return system::randomDendrite(n, rng);
}
system::ParticleSystem makeBlob(std::int64_t n) {
  rng::Random rng(static_cast<std::uint64_t>(n) * 17 + 3);
  return system::randomConnected(n, rng);
}

class ShapeMetricsSweep
    : public ::testing::TestWithParam<std::tuple<int, std::int64_t>> {
 public:
  static const ShapeCase kShapes[4];
};

const ShapeCase ShapeMetricsSweep::kShapes[4] = {
    {"line", &makeLine, true},
    {"spiral", &makeSpiral, true},
    {"dendrite", &makeDendrite, true},
    {"blob", &makeBlob, false},
};

TEST_P(ShapeMetricsSweep, IdentitiesAndTracersAgree) {
  const auto [shapeIndex, n] = GetParam();
  const ShapeCase& shape = kShapes[shapeIndex];
  const system::ParticleSystem sys = shape.make(n);
  ASSERT_TRUE(system::isConnected(sys)) << shape.name;

  const std::int64_t e = system::countEdges(sys);
  const std::int64_t t = system::countTriangles(sys);
  const std::int64_t h = system::countHoles(sys);
  const std::int64_t p = system::perimeter(sys);

  // Generalized Lemma 2.3 and the independent tracer.
  EXPECT_EQ(p, 3 * n - e - 3 + 3 * h) << shape.name;
  EXPECT_EQ(system::perimeterTraced(sys), p) << shape.name;
  if (h == 0) {
    EXPECT_EQ(t, 2 * n - p - 2) << shape.name;  // Lemma 2.4
    EXPECT_GE(p, system::pMin(n));
    EXPECT_LE(p, system::pMax(n));
  }
  if (shape.holeFree) {
    EXPECT_EQ(h, 0) << shape.name;
  }

  // Lemma 2.1: p ≥ √n.
  EXPECT_GE(static_cast<double>(p) + 1e-9, std::sqrt(static_cast<double>(n)));

  // Fig 9 duality: external dual cycle has 2·(external walk) + 6 edges.
  const system::HexBoundaryDecomposition hex = system::hexBoundaryCycles(sys);
  EXPECT_EQ(hex.externalHexLength, 2 * system::traceExternalWalk(sys) + 6);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSizeGrid, ShapeMetricsSweep,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values<std::int64_t>(2, 3, 7, 19, 37, 64,
                                                       111, 200)));

// ---------------------------------------------------------------------
// Sweep 4: Theorem 4.5's monotonicity at every small n — exact.
// ---------------------------------------------------------------------
class EnsembleSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(EnsembleSizeSweep, CompressionProbabilityMonotoneInLambda) {
  const int n = GetParam();
  const enumeration::ExactEnsemble ensemble(n);
  const double threshold = 1.5 * static_cast<double>(system::pMin(n));
  double previous = 1.1;
  for (const double lambda : {0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 9.0}) {
    const double probability = ensemble.probPerimeterAtLeast(lambda, threshold);
    EXPECT_LE(probability, previous + 1e-12) << "n=" << n << " λ=" << lambda;
    previous = probability;
  }
}

TEST_P(EnsembleSizeSweep, ExpectedEdgesMonotoneIncreasingInLambda) {
  const int n = GetParam();
  const enumeration::ExactEnsemble ensemble(n);
  // At n=2 every configuration has exactly one edge, so E[e] is constant;
  // for larger n the expectation must strictly increase with λ.
  const bool strict = ensemble.minPerimeter() != ensemble.maxPerimeter();
  double previous = -1.0;
  for (const double lambda : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double edges = ensemble.expectedEdges(lambda);
    if (strict && previous >= 0.0) {
      EXPECT_GT(edges, previous) << "n=" << n;
    } else {
      EXPECT_GE(edges, previous) << "n=" << n;
    }
    previous = edges;
  }
}

TEST_P(EnsembleSizeSweep, StationaryIsAProbabilityDistribution) {
  const int n = GetParam();
  const enumeration::ExactEnsemble ensemble(n);
  for (const double lambda : {0.5, 2.0, 5.0}) {
    double total = 0.0;
    for (const double p : ensemble.stationary(lambda)) {
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallSizes, EnsembleSizeSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 7));

// ---------------------------------------------------------------------
// Sweep 5: pMin formula vs spiral across a dense size range.
// ---------------------------------------------------------------------
class PMinSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(PMinSweep, SpiralAttainsFormula) {
  const std::int64_t n = GetParam();
  EXPECT_EQ(system::perimeter(system::spiralConfiguration(n)), system::pMin(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PMinSweep,
                         ::testing::Values<std::int64_t>(1, 2, 3, 4, 5, 6, 7, 8,
                                                         19, 20, 37, 38, 61, 91,
                                                         127, 169, 217, 271,
                                                             331,
                                                         397, 1000, 1001,
                                                             2500));

}  // namespace
}  // namespace sops
