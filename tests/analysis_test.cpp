// Tests for the analysis substrate (S9): summary statistics, streaming
// accumulator, time series, and CSV output.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "analysis/csv.hpp"
#include "analysis/stats.hpp"
#include "analysis/time_series.hpp"
#include "util/assert.hpp"

namespace sops::analysis {
namespace {

TEST(Stats, SummaryOfKnownSample) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_NEAR(s.mean, 3.0, 1e-12);
  EXPECT_NEAR(s.median, 3.0, 1e-12);
  EXPECT_NEAR(s.min, 1.0, 1e-12);
  EXPECT_NEAR(s.max, 5.0, 1e-12);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);  // sample stddev
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_NEAR(quantile(xs, 0.0), 0.0, 1e-12);
  EXPECT_NEAR(quantile(xs, 0.25), 2.5, 1e-12);
  EXPECT_NEAR(quantile(xs, 1.0), 10.0, 1e-12);
}

TEST(Stats, QuantileUnsortedInput) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_NEAR(quantile(xs, 0.5), 3.0, 1e-12);
}

TEST(Stats, EmptySampleThrows) {
  const std::vector<double> empty;
  EXPECT_THROW((void)summarize(empty), ContractViolation);
  EXPECT_THROW((void)quantile(empty, 0.5), ContractViolation);
}

TEST(Stats, AccumulatorMatchesBatchSummary) {
  std::vector<double> xs;
  Accumulator acc;
  double value = 0.1;
  for (int i = 0; i < 1000; ++i) {
    value = value * 1.01 + 0.37;
    xs.push_back(value);
    acc.add(value);
  }
  const Summary s = summarize(xs);
  EXPECT_EQ(acc.count(), 1000u);
  EXPECT_NEAR(acc.mean(), s.mean, 1e-9);
  EXPECT_NEAR(acc.stddev(), s.stddev, 1e-9);
  EXPECT_NEAR(acc.min(), s.min, 1e-12);
  EXPECT_NEAR(acc.max(), s.max, 1e-12);
}

TEST(Stats, AccumulatorSingleValue) {
  Accumulator acc;
  acc.add(42.0);
  EXPECT_NEAR(acc.mean(), 42.0, 1e-12);
  EXPECT_NEAR(acc.variance(), 0.0, 1e-12);
}

TEST(TimeSeries, HittingTimes) {
  TimeSeries series;
  series.record(0, 10.0);
  series.record(100, 7.0);
  series.record(200, 4.0);
  series.record(300, 6.0);
  EXPECT_EQ(series.firstTimeAtOrBelow(7.0), std::optional<std::uint64_t>(100));
  EXPECT_EQ(series.firstTimeAtOrBelow(4.0), std::optional<std::uint64_t>(200));
  EXPECT_EQ(series.firstTimeAtOrBelow(1.0), std::nullopt);
  EXPECT_EQ(series.firstTimeAtOrAbove(10.0), std::optional<std::uint64_t>(0));
}

TEST(TimeSeries, MeanAfter) {
  TimeSeries series;
  for (std::uint64_t t = 0; t < 10; ++t) {
    series.record(t * 10, static_cast<double>(t));
  }
  EXPECT_NEAR(series.meanAfter(50), 7.0, 1e-12);  // mean of 5..9
  EXPECT_THROW((void)series.meanAfter(1000), ContractViolation);
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "/tmp/sops_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.writeRow({"1", "2"});
    csv.writeRow(std::vector<std::string>{"x", "y"});
    EXPECT_TRUE(csv.ok());
  }
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "a,b\n1,2\nx,y\n");
  std::remove(path.c_str());
}

TEST(Csv, RowWidthMismatchThrows) {
  const std::string path = "/tmp/sops_csv_test2.csv";
  CsvWriter csv(path, {"a", "b", "c"});
  EXPECT_THROW(csv.writeRow({"only", "two"}), ContractViolation);
  std::remove(path.c_str());
}

TEST(Csv, FormatDouble) {
  EXPECT_EQ(formatDouble(1.5), "1.5");
  EXPECT_EQ(formatDouble(0.125, 3), "0.125");
}

}  // namespace
}  // namespace sops::analysis
