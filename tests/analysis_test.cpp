// Tests for the analysis substrate (S9): summary statistics, streaming
// accumulator, time series, and CSV output.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "analysis/csv.hpp"
#include "analysis/stats.hpp"
#include "analysis/time_series.hpp"
#include "rng/random.hpp"
#include "util/assert.hpp"

namespace sops::analysis {
namespace {

TEST(Stats, SummaryOfKnownSample) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_NEAR(s.mean, 3.0, 1e-12);
  EXPECT_NEAR(s.median, 3.0, 1e-12);
  EXPECT_NEAR(s.min, 1.0, 1e-12);
  EXPECT_NEAR(s.max, 5.0, 1e-12);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);  // sample stddev
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_NEAR(quantile(xs, 0.0), 0.0, 1e-12);
  EXPECT_NEAR(quantile(xs, 0.25), 2.5, 1e-12);
  EXPECT_NEAR(quantile(xs, 1.0), 10.0, 1e-12);
}

TEST(Stats, QuantileUnsortedInput) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_NEAR(quantile(xs, 0.5), 3.0, 1e-12);
}

TEST(Stats, EmptySampleThrows) {
  const std::vector<double> empty;
  EXPECT_THROW((void)summarize(empty), ContractViolation);
  EXPECT_THROW((void)quantile(empty, 0.5), ContractViolation);
}

TEST(Stats, AccumulatorMatchesBatchSummary) {
  std::vector<double> xs;
  Accumulator acc;
  double value = 0.1;
  for (int i = 0; i < 1000; ++i) {
    value = value * 1.01 + 0.37;
    xs.push_back(value);
    acc.add(value);
  }
  const Summary s = summarize(xs);
  EXPECT_EQ(acc.count(), 1000u);
  EXPECT_NEAR(acc.mean(), s.mean, 1e-9);
  EXPECT_NEAR(acc.stddev(), s.stddev, 1e-9);
  EXPECT_NEAR(acc.min(), s.min, 1e-12);
  EXPECT_NEAR(acc.max(), s.max, 1e-12);
}

TEST(Stats, AccumulatorSingleValue) {
  Accumulator acc;
  acc.add(42.0);
  EXPECT_NEAR(acc.mean(), 42.0, 1e-12);
  EXPECT_NEAR(acc.variance(), 0.0, 1e-12);
}

// --- goodness-of-fit helpers (these back tests/local_vs_chain_test.cpp) --

TEST(GammaQ, KnownValues) {
  // Q(1, x) = e^{-x} (chi-square with 2 dof), Q(1/2, x) = erfc(sqrt(x))
  // (chi-square with 1 dof).
  EXPECT_NEAR(regularizedGammaQ(1.0, 1.0), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(regularizedGammaQ(1.0, 5.0), std::exp(-5.0), 1e-12);
  EXPECT_NEAR(regularizedGammaQ(0.5, 0.5), std::erfc(std::sqrt(0.5)), 1e-12);
  EXPECT_NEAR(regularizedGammaQ(0.5, 8.0), std::erfc(std::sqrt(8.0)), 1e-12);
  EXPECT_NEAR(regularizedGammaQ(3.0, 0.0), 1.0, 1e-15);
  // Median of chi-square(2) is 2 ln 2.
  EXPECT_NEAR(chiSquareSurvival(2.0 * std::log(2.0), 2), 0.5, 1e-12);
  EXPECT_THROW((void)regularizedGammaQ(0.0, 1.0), ContractViolation);
  EXPECT_THROW((void)regularizedGammaQ(1.0, -1.0), ContractViolation);
}

TEST(ChiSquare, ExactMatchScoresZero) {
  const std::vector<double> observed{25.0, 25.0, 25.0, 25.0};
  const std::vector<double> expected{0.25, 0.25, 0.25, 0.25};
  const ChiSquareResult r = chiSquareGoodnessOfFit(observed, expected);
  EXPECT_NEAR(r.statistic, 0.0, 1e-12);
  EXPECT_EQ(r.dof, 3);
  EXPECT_NEAR(r.pValue, 1.0, 1e-12);
  EXPECT_EQ(r.pooledCells, 0u);
}

TEST(ChiSquare, KnownStatisticAndPValue) {
  // Classic fair-die example: counts {16,18,16,14,12,24} over 100 rolls,
  // chi2 = sum (o-e)^2/e with e = 100/6.
  const std::vector<double> observed{16, 18, 16, 14, 12, 24};
  const std::vector<double> expected(6, 1.0 / 6.0);
  const ChiSquareResult r = chiSquareGoodnessOfFit(observed, expected);
  double stat = 0.0;
  for (const double o : observed) {
    const double e = 100.0 / 6.0;
    stat += (o - e) * (o - e) / e;
  }
  EXPECT_NEAR(r.statistic, stat, 1e-12);
  EXPECT_EQ(r.dof, 5);
  EXPECT_NEAR(r.pValue, chiSquareSurvival(stat, 5), 1e-15);
  EXPECT_GT(r.pValue, 0.05);  // a fair die should not be rejected
}

TEST(ChiSquare, UniformSamplesAcceptedBiasedRejected) {
  rng::Random rng(1);
  std::vector<double> counts(10, 0.0);
  for (int i = 0; i < 100000; ++i) counts[rng.below(10)] += 1.0;
  const std::vector<double> uniform(10, 0.1);
  EXPECT_GT(chiSquareGoodnessOfFit(counts, uniform).pValue, 0.01);

  // Severely biased sample against the uniform hypothesis.
  std::vector<double> biased(10, 0.0);
  for (int i = 0; i < 100000; ++i) biased[rng.below(5)] += 1.0;
  EXPECT_LT(chiSquareGoodnessOfFit(biased, uniform).pValue, 1e-10);
}

TEST(ChiSquare, PoolsLowExpectationCells) {
  // Cells with expected count < 5 (the last three here) merge into one.
  const std::vector<double> observed{50.0, 44.0, 3.0, 2.0, 1.0};
  const std::vector<double> expected{0.5, 0.44, 0.03, 0.02, 0.01};
  const ChiSquareResult r = chiSquareGoodnessOfFit(observed, expected);
  EXPECT_EQ(r.pooledCells, 3u);
  EXPECT_EQ(r.dof, 2);  // two big cells + one pooled cell - 1
  EXPECT_GT(r.pValue, 0.5);
}

TEST(ChiSquare, RejectsDegenerateInput) {
  const std::vector<double> one{10.0};
  const std::vector<double> pOne{1.0};
  EXPECT_THROW((void)chiSquareGoodnessOfFit(one, pOne), ContractViolation);
  const std::vector<double> zeros{0.0, 0.0};
  const std::vector<double> half{0.5, 0.5};
  EXPECT_THROW((void)chiSquareGoodnessOfFit(zeros, half), ContractViolation);
}

TEST(ChiSquare, ObservationsInZeroProbabilityCellsReject) {
  // Structural zeros: data in a cell the hypothesis gives zero mass is a
  // categorical rejection, not ignorable pooling residue.
  const std::vector<double> observed{50.0, 50.0, 10.0};
  const std::vector<double> expected{0.5, 0.5, 0.0};
  const ChiSquareResult r = chiSquareGoodnessOfFit(observed, expected);
  EXPECT_EQ(r.pValue, 0.0);
  EXPECT_TRUE(std::isinf(r.statistic));
  // An *empty* zero-probability cell carries no evidence either way.
  const std::vector<double> emptyZero{50.0, 50.0, 0.0};
  EXPECT_GT(chiSquareGoodnessOfFit(emptyZero, expected).pValue, 0.9);
}

TEST(KsTwoSample, IdenticalSamplesScoreOne) {
  // D = 0 drives the alternating Kolmogorov series outside its
  // convergence range; the p-value must saturate at 1, not collapse to 0.
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  const KsResult same = ksTwoSample(v, v);
  EXPECT_EQ(same.statistic, 0.0);
  EXPECT_EQ(same.pValue, 1.0);
}

TEST(KsTwoSample, KnownSmallCaseStatistics) {
  // Fully separated samples: D = 1.  Interleaved: D = 1/2.
  const std::vector<double> low{1.0, 2.0};
  const std::vector<double> high{3.0, 4.0};
  EXPECT_NEAR(ksTwoSample(low, high).statistic, 1.0, 1e-12);
  const std::vector<double> a{1.0, 3.0};
  const std::vector<double> b{2.0, 4.0};
  EXPECT_NEAR(ksTwoSample(a, b).statistic, 0.5, 1e-12);
  EXPECT_THROW((void)ksTwoSample({}, a), ContractViolation);
}

TEST(KsTwoSample, SameDistributionAcceptedShiftRejected) {
  rng::Random rng(2);
  std::vector<double> a(4000);
  std::vector<double> b(4000);
  std::vector<double> shifted(4000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.uniform();
    b[i] = rng.uniform();
    shifted[i] = rng.uniform() + 0.08;
  }
  EXPECT_GT(ksTwoSample(a, b).pValue, 0.01);
  EXPECT_LT(ksTwoSample(a, shifted).pValue, 1e-6);
  // D for the shifted pair approaches the shift itself.
  EXPECT_NEAR(ksTwoSample(a, shifted).statistic, 0.08, 0.03);
}

TEST(TimeSeries, HittingTimes) {
  TimeSeries series;
  series.record(0, 10.0);
  series.record(100, 7.0);
  series.record(200, 4.0);
  series.record(300, 6.0);
  EXPECT_EQ(series.firstTimeAtOrBelow(7.0), std::optional<std::uint64_t>(100));
  EXPECT_EQ(series.firstTimeAtOrBelow(4.0), std::optional<std::uint64_t>(200));
  EXPECT_EQ(series.firstTimeAtOrBelow(1.0), std::nullopt);
  EXPECT_EQ(series.firstTimeAtOrAbove(10.0), std::optional<std::uint64_t>(0));
}

TEST(TimeSeries, MeanAfter) {
  TimeSeries series;
  for (std::uint64_t t = 0; t < 10; ++t) {
    series.record(t * 10, static_cast<double>(t));
  }
  EXPECT_NEAR(series.meanAfter(50), 7.0, 1e-12);  // mean of 5..9
  EXPECT_THROW((void)series.meanAfter(1000), ContractViolation);
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "/tmp/sops_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.writeRow({"1", "2"});
    csv.writeRow(std::vector<std::string>{"x", "y"});
    EXPECT_TRUE(csv.ok());
  }
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "a,b\n1,2\nx,y\n");
  std::remove(path.c_str());
}

TEST(Csv, RowWidthMismatchThrows) {
  const std::string path = "/tmp/sops_csv_test2.csv";
  CsvWriter csv(path, {"a", "b", "c"});
  EXPECT_THROW(csv.writeRow({"only", "two"}), ContractViolation);
  std::remove(path.c_str());
}

TEST(Csv, FormatDouble) {
  EXPECT_EQ(formatDouble(1.5), "1.5");
  EXPECT_EQ(formatDouble(0.125, 3), "0.125");
}

}  // namespace
}  // namespace sops::analysis
