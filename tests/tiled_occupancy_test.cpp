// The tiled occupancy layer's contract, end to end:
//
//  1. BitGrid's tiled backend answers set/test/clear/mask queries exactly
//     like the flat window — including across tile seams, where the
//     constant-stride gather gives way to the per-cell path;
//  2. the flat-window coversInteriorBy arithmetic cannot wrap on windows
//     narrower than the two interior bands (regression);
//  3. the tile and id-page directory caps fail loudly, with the cap and
//     the fix in the message (instance-overridable so the tests do not
//     allocate gigabytes);
//  4. ParticleIdPlane picks Flat below kMaxCells and Paged above (and on
//     every tiled grid), keeps ids exact across page-seam moves, and
//     reports coversNear honestly — the sharded runner's deferral signal;
//  5. the backends are trajectory-invisible: a sequential engine run is
//     bit-identical flat vs forced-tiled, and the sharded runners stay
//     thread-count invariant on organically tiled windows (the sizes that
//     used to fall off the dense path entirely);
//  6. snapshots: v2 frames still load, tiled directories round-trip
//     byte-identically, and a (crafted) v2 sharded payload without the v3
//     id-plane trailer resumes the identical trajectory.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "amoebot/amoebot_system.hpp"
#include "amoebot/local_compression.hpp"
#include "amoebot/parallel_scheduler.hpp"
#include "core/biased_chain_engine.hpp"
#include "core/id_plane.hpp"
#include "core/scenario_models.hpp"
#include "core/sharded_chain_runner.hpp"
#include "system/bit_grid.hpp"
#include "system/metrics.hpp"
#include "system/shapes.hpp"
#include "system/snapshot.hpp"

namespace sops {
namespace {

using core::ParticleIdPlane;
using core::SeparationModel;
using lattice::TriPoint;
using system::BitGrid;
using system::ParticleSystem;

// -- 1. tiled BitGrid vs the per-cell reference ------------------------------

TEST(TiledBitGrid, SetTestClearAcrossTileSeams) {
  BitGrid grid;
  // A cluster straddling the corner where tiles (0,0), (1,0), (0,1), (1,1)
  // meet: every set/test/clear crosses at least one seam.
  std::vector<TriPoint> points;
  for (std::int32_t x = 1022; x <= 1026; ++x) {
    for (std::int32_t y = 254; y <= 258; ++y) points.push_back({x, y});
  }
  grid.rebuildTiled(points, BitGrid::kInteriorMargin);
  EXPECT_TRUE(grid.enabled());
  EXPECT_TRUE(grid.tiled());
  for (const TriPoint p : points) EXPECT_TRUE(grid.test(p));
  EXPECT_FALSE(grid.test({1030, 256}));
  grid.clear({1024, 256});
  EXPECT_FALSE(grid.test({1024, 256}));
  grid.set({1024, 256});
  EXPECT_TRUE(grid.test({1024, 256}));
  // Cells in unallocated tiles read unoccupied; clearing one is a no-op in
  // release builds (the bit is already clear by construction).
  EXPECT_FALSE(grid.test({500000, 500000}));
}

TEST(TiledBitGrid, MasksMatchPerCellReferenceAcrossSeams) {
  BitGrid grid;
  // Deterministic ragged occupancy around the 4-tile corner (1024, 256).
  std::vector<TriPoint> points;
  for (std::int32_t x = 1016; x <= 1032; ++x) {
    for (std::int32_t y = 248; y <= 264; ++y) {
      if (((x * 7 + y * 13) % 3) == 0) points.push_back({x, y});
    }
  }
  grid.rebuildTiled(points, BitGrid::kInteriorMargin + 1);
  for (const TriPoint p : points) {
    ASSERT_TRUE(grid.coversInterior(p));
    std::uint32_t refNeighbors = 0;
    for (int idx = 0; idx < lattice::kNumDirections; ++idx) {
      const TriPoint q =
          p + lattice::offset(lattice::directionFromIndex(idx));
      if (grid.test(q)) refNeighbors |= 1u << idx;
    }
    ASSERT_EQ(grid.neighborMaskUnchecked(p),
              static_cast<std::uint8_t>(refNeighbors))
        << "at (" << p.x << "," << p.y << ")";
    for (int dir = 0; dir < lattice::kNumDirections; ++dir) {
      std::uint32_t refRing = 0;
      const auto& offsets = lattice::kEdgeRingOffsets[dir];
      for (int idx = 0; idx < lattice::kEdgeRingSize; ++idx) {
        if (grid.test(p + offsets[idx])) refRing |= 1u << idx;
      }
      ASSERT_EQ(grid.ringMaskUnchecked(p, dir),
                static_cast<std::uint8_t>(refRing))
          << "at (" << p.x << "," << p.y << ") dir " << dir;
    }
  }
}

TEST(TiledBitGrid, CoversInteriorByProbesTheTileDirectory) {
  BitGrid grid;
  grid.rebuildTiled(std::vector<TriPoint>{{5, 5}}, 2);
  // Only tile (0, 0) is allocated.
  EXPECT_TRUE(grid.coversInteriorBy({5, 5}, 2));
  EXPECT_TRUE(grid.coversInteriorBy({100, 100}, 2));
  // A box reaching into the unallocated tile (1, 0) fails.
  EXPECT_FALSE(grid.coversInteriorBy({1022, 5}, 2));
  // ...until the region is grown.
  grid.ensureRegion({1022, 5}, 2);
  EXPECT_TRUE(grid.coversInteriorBy({1022, 5}, 2));
  EXPECT_FALSE(grid.coversInteriorBy({-1, 5}, 2));  // tile (-1, 0) missing
}

// -- 2. flat coversInteriorBy wrap regression --------------------------------

TEST(BitGridRegression, TinyWindowHasNoInterior) {
  BitGrid grid;
  // A 1x1 window: 2*depth exceeds both extents, so there is no interior at
  // any depth > 0.  The unsigned subtraction used to wrap here and report
  // interior cells in a window that cannot contain any.
  ASSERT_TRUE(grid.rebuild(std::vector<TriPoint>{{0, 0}}, 0));
  ASSERT_FALSE(grid.tiled());
  EXPECT_EQ(grid.width(), 1u);
  EXPECT_TRUE(grid.coversInteriorBy({0, 0}, 0));
  EXPECT_FALSE(grid.coversInteriorBy({0, 0}, 1));
  EXPECT_FALSE(grid.coversInteriorBy({0, 0}, 2));
  // Window exactly as wide as the two depth bands: still no interior.
  BitGrid four;
  ASSERT_TRUE(four.rebuild(std::vector<TriPoint>{{0, 0}, {3, 3}}, 0));
  ASSERT_EQ(four.width(), 4u);
  EXPECT_FALSE(four.coversInteriorBy({1, 1}, 2));
  EXPECT_TRUE(four.coversInteriorBy({1, 1}, 1));
}

// -- 3. named caps -----------------------------------------------------------

TEST(TiledBitGrid, TileCapThrowsWithCapAndFixInMessage) {
  BitGrid grid;
  grid.rebuildTiled(std::vector<TriPoint>{{500, 100}}, 2);
  ASSERT_EQ(grid.tileCount(), 1u);
  grid.setMaxTilesForTest(1);
  try {
    grid.ensureRegion({500000, 500000}, 2);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("tile directory reached the cap"),
              std::string::npos)
        << message;
    EXPECT_NE(message.find("1"), std::string::npos) << message;
  }
}

TEST(IdPlane, PageCapThrowsWithCapAndFixInMessage) {
  ParticleSystem sys = system::lineConfiguration(10);
  sys.forceTiledForTest();
  ParticleIdPlane plane;
  plane.setMaxPagesForTest(2);
  try {
    (void)plane.sync(sys);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("page directory reached the cap"),
              std::string::npos)
        << message;
  }
}

// -- promotion boundary at the flat cap --------------------------------------

TEST(TiledBitGrid, RebuildPromotesOnlyPastTheFlatCap) {
  BitGrid small;
  ASSERT_TRUE(small.rebuild(std::vector<TriPoint>{{0, 0}, {8000, 8000}}, 2));
  EXPECT_FALSE(small.tiled());  // derived window fits kMaxWords
  BitGrid big;
  ASSERT_TRUE(big.rebuild(std::vector<TriPoint>{{0, 0}, {20000, 20000}}, 2));
  EXPECT_TRUE(big.tiled());
  EXPECT_TRUE(big.test({20000, 20000}));
}

TEST(TiledBitGrid, RebuildExactAcceptsTheCapAndRejectsOnePastIt) {
  // 16384x16384 cells = 256 words * 16384 rows = kMaxWords exactly.
  BitGrid atCap;
  atCap.rebuildExact(std::vector<TriPoint>{{8000, 8000}}, 0, 0, 16384, 16384);
  EXPECT_TRUE(atCap.enabled());
  EXPECT_FALSE(atCap.tiled());
  EXPECT_EQ(atCap.wordCount(), BitGrid::kMaxWords);
  // One more word column overflows the cap: exact restore refuses (the
  // tiled directory is serialized separately; see rebuildTiledExact).
  BitGrid overCap;
  EXPECT_THROW(overCap.rebuildExact(std::vector<TriPoint>{{8000, 8000}}, 0, 0,
                                    16448, 16384),
               ContractViolation);
}

// -- 4. id plane: flat/paged selection, moves, coversNear --------------------

TEST(IdPlane, FlatAtKMaxCellsPagedOnePast) {
  // Exactly kMaxCells (4096 * 4096): the flat mirror still applies.
  ParticleSystem atCap = system::lineConfiguration(10);
  atCap.restoreWindowGeometry(true, -2048, -2048, 4096, 4096);
  ParticleIdPlane flat;
  ASSERT_TRUE(flat.sync(atCap));
  EXPECT_EQ(flat.mode(), ParticleIdPlane::Mode::Flat);
  EXPECT_TRUE(flat.tracksMoves(atCap.grid()));
  // One cell-row past the cap: the plane goes paged, allocating only the
  // pages around the particles instead of a >64 MiB mirror.
  ParticleSystem pastCap = system::lineConfiguration(10);
  pastCap.restoreWindowGeometry(true, -2050, -2050, 4100, 4100);
  ParticleIdPlane paged;
  ASSERT_TRUE(paged.sync(pastCap));
  EXPECT_EQ(paged.mode(), ParticleIdPlane::Mode::Paged);
  EXPECT_TRUE(paged.tracksMoves(pastCap.grid()));
  EXPECT_LT(paged.pageCount() * ParticleIdPlane::kPageCells,
            std::uint64_t{4100} * 4100);
  for (std::size_t i = 0; i < pastCap.size(); ++i) {
    EXPECT_EQ(paged.idAtUnchecked(pastCap.position(i)),
              static_cast<std::uint32_t>(i));
    EXPECT_TRUE(paged.coversNear(pastCap.position(i), 1));
  }
}

TEST(IdPlane, PagedMoveAllocatesFreshPagesAndKeepsIdsExact) {
  ParticleSystem sys = system::lineConfiguration(10);
  sys.forceTiledForTest();
  ParticleIdPlane plane;
  ASSERT_TRUE(plane.sync(sys));
  ASSERT_EQ(plane.mode(), ParticleIdPlane::Mode::Paged);
  const std::size_t before = plane.pageCount();
  // (0, 200) lies on a page the margin-4 build never touched: move() must
  // allocate around the target and keep the id readable there.
  EXPECT_FALSE(plane.coversNear({0, 200}, 1));
  plane.move({0, 0}, {0, 200}, 0);
  EXPECT_GT(plane.pageCount(), before);
  EXPECT_EQ(plane.idAtUnchecked({0, 200}), 0u);
  EXPECT_TRUE(plane.coversNear({0, 200}, 1));
  // A same-page move stays cheap and exact.
  plane.move({1, 0}, {2, 1}, 1);
  EXPECT_EQ(plane.idAtUnchecked({2, 1}), 1u);
  EXPECT_FALSE(plane.coversNear({100000, 100000}, 1));
}

// -- 5. backends are trajectory-invisible ------------------------------------

TEST(TiledTrajectory, SequentialSeparationBitIdenticalFlatVsTiled) {
  SeparationModel::Options options;
  options.lambda = 4.0;
  options.gamma = 4.0;
  ParticleSystem flatStart = system::lineConfiguration(40);
  ParticleSystem tiledStart = system::lineConfiguration(40);
  tiledStart.forceTiledForTest();
  ASSERT_FALSE(flatStart.grid().tiled());
  ASSERT_TRUE(tiledStart.grid().tiled());
  core::SeparationEngine flat(
      flatStart, SeparationModel(options, system::alternatingClasses(40, 2)),
      1603);
  core::SeparationEngine tiled(
      tiledStart, SeparationModel(options, system::alternatingClasses(40, 2)),
      1603);
  flat.run(100000);
  tiled.run(100000);
  EXPECT_TRUE(flat.system().sameArrangement(tiled.system()));
  EXPECT_EQ(flat.model().colors(), tiled.model().colors());
  EXPECT_EQ(flat.stats().movement.accepted, tiled.stats().movement.accepted);
  EXPECT_EQ(flat.stats().auxAccepted, tiled.stats().auxAccepted);
  EXPECT_EQ(flat.edges(), tiled.edges());
}

/// Everything two sharded runs can disagree on.
struct ShardedSignature {
  std::vector<TriPoint> positions;
  std::vector<std::uint8_t> colors;
  std::int64_t edges = 0;
  std::uint64_t steps = 0;
  std::uint64_t accepted = 0;
  std::uint64_t auxAccepted = 0;
  std::uint64_t sweepEvents = 0;

  bool operator==(const ShardedSignature& other) const {
    return positions == other.positions && colors == other.colors &&
           edges == other.edges && steps == other.steps &&
           accepted == other.accepted && auxAccepted == other.auxAccepted &&
           sweepEvents == other.sweepEvents;
  }
};

ShardedSignature signatureOf(
    const core::ShardedChainRunner<SeparationModel>& runner) {
  ShardedSignature sig;
  sig.positions = runner.system().positions();
  sig.colors = runner.model().colors();
  sig.edges = runner.edges();
  sig.steps = runner.stats().steps;
  sig.accepted = runner.stats().movement.accepted;
  sig.auxAccepted = runner.stats().auxAccepted;
  sig.sweepEvents = runner.sweepEvents();
  return sig;
}

TEST(TiledTrajectory, ShardedTiledIndependentOfThreadCount) {
  // A 20000-particle line's derived window exceeds the flat cap, so the
  // runner executes on the tiled grid with the paged id plane — the size
  // class that used to run every epoch on the sequential sweep.
  SeparationModel::Options options;
  options.lambda = 4.0;
  options.gamma = 4.0;
  std::vector<ShardedSignature> signatures;
  for (const unsigned threads : {1u, 2u, 7u}) {
    core::ShardedChainOptions sharded;
    sharded.threads = threads;
    core::ShardedChainRunner<SeparationModel> runner(
        system::lineConfiguration(20000),
        SeparationModel(options, system::alternatingClasses(20000, 2)), 4099,
        sharded);
    ASSERT_TRUE(runner.system().grid().tiled());
    runner.runAtLeast(60000);
    EXPECT_LT(runner.sweepEvents(), runner.stats().steps);  // striped ran
    EXPECT_EQ(runner.edges(), system::countEdges(runner.system()));
    signatures.push_back(signatureOf(runner));
  }
  for (std::size_t i = 1; i < signatures.size(); ++i) {
    EXPECT_TRUE(signatures[i] == signatures[0]) << "thread count #" << i;
  }
}

TEST(TiledTrajectory, Line300kRunsDenseTiledStriped) {
  // The headline size from the window-caps roadmap item: 300k particles in
  // a line used to be sparse (flat window far over the cap), running every
  // event sequentially.  It must now run dense-tiled and striped.
  SeparationModel::Options options;
  options.lambda = 4.0;
  options.gamma = 4.0;
  core::ShardedChainOptions sharded;
  sharded.threads = 4;
  sharded.targetEventsPerEpoch = 20000;  // keep the smoke cheap
  core::ShardedChainRunner<SeparationModel> runner(
      system::lineConfiguration(300000),
      SeparationModel(options, system::alternatingClasses(300000, 2)), 7013,
      sharded);
  ASSERT_STREQ(runner.system().regimeName(), "dense-tiled");
  const std::uint64_t executed = runner.runAtLeast(20000);
  EXPECT_GT(executed, 0u);
  EXPECT_LT(runner.sweepEvents(), executed);
  EXPECT_FALSE(runner.system().indexSuspended());
}

TEST(TiledTrajectory, AmoebotShardedTiledIndependentOfThreadCount) {
  // The 20-line + far-singleton configuration promotes the amoebot planes
  // to the tiled backend; the sharded Poisson runner must stay a pure
  // function of the seed there too.
  std::vector<TriPoint> points;
  for (std::int32_t i = 0; i < 20; ++i) points.push_back({i, 0});
  points.push_back({60000, 20000});
  const ParticleSystem start(points);
  struct Outcome {
    std::vector<TriPoint> tails;
    std::uint64_t activations = 0;
    std::uint64_t sweepActivations = 0;
    double now = 0.0;
  };
  std::vector<Outcome> outcomes;
  for (const unsigned threads : {1u, 2u, 7u}) {
    rng::Random ctor(7);
    amoebot::AmoebotSystem sys(start, ctor);
    ASSERT_TRUE(sys.fastPathEnabled());
    ASSERT_TRUE(sys.occupancyGrid().tiled());
    const amoebot::LocalCompressionAlgorithm algo({4.0});
    amoebot::ShardedOptions options;
    options.threads = threads;
    amoebot::ShardedPoissonRunner runner(sys, algo, 991, options);
    runner.runAtLeast(40000);
    Outcome outcome;
    for (std::size_t id = 0; id < sys.size(); ++id) {
      outcome.tails.push_back(sys.particle(id).tail);
    }
    outcome.activations = runner.activations();
    outcome.sweepActivations = runner.sweepActivations();
    outcome.now = runner.now();
    outcomes.push_back(std::move(outcome));
  }
  for (std::size_t i = 1; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].tails, outcomes[0].tails) << "thread count #" << i;
    EXPECT_EQ(outcomes[i].activations, outcomes[0].activations);
    EXPECT_EQ(outcomes[i].sweepActivations, outcomes[0].sweepActivations);
    EXPECT_EQ(outcomes[i].now, outcomes[0].now);
  }
}

// -- 6. snapshots ------------------------------------------------------------

std::string tempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  std::string base = dir != nullptr ? dir : "/tmp";
  if (!base.empty() && base.back() != '/') base += '/';
  return base + "sops_tiled_" + name;
}

TEST(TiledSnapshot, V2FramesStillLoadAndOutOfRangeVersionsAreRejected) {
  const std::string path = tempPath("v2.snap");
  system::SnapshotWriter w;
  w.str("legacy payload");
  w.u64(7);
  system::writeSnapshotFile(path, w.payload(), 2);
  const system::SnapshotData data = system::readSnapshotFile(path);
  EXPECT_EQ(data.version, 2u);
  system::SnapshotReader r(data.payload, data.version);
  EXPECT_EQ(r.str(), "legacy payload");
  EXPECT_EQ(r.u64(), 7u);
  r.finish();
  EXPECT_THROW(system::writeSnapshotFile(path, w.payload(), 1),
               ContractViolation);
  EXPECT_THROW(
      system::writeSnapshotFile(path, w.payload(),
                                system::kSnapshotVersion + 1),
      ContractViolation);
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());
}

TEST(TiledSnapshot, TiledParticleSystemRoundTripsByteIdentical) {
  ParticleSystem sys = system::lineConfiguration(30);
  sys.forceTiledForTest();
  ASSERT_TRUE(sys.grid().tiled());
  system::SnapshotWriter first;
  system::writeParticleSystem(first, sys);
  system::SnapshotReader r(first.payload());
  const ParticleSystem restored = system::readParticleSystem(r);
  r.finish();
  EXPECT_TRUE(restored.sameArrangement(sys));
  ASSERT_TRUE(restored.grid().tiled());
  EXPECT_EQ(restored.grid().sortedTileKeys(), sys.grid().sortedTileKeys());
  system::SnapshotWriter second;
  system::writeParticleSystem(second, restored);
  EXPECT_EQ(first.payload(), second.payload());
}

TEST(TiledSnapshot, FlatParticleSystemBytesParseUnderAV2Reader) {
  // The flat/sparse encodings are v2's exact byte layout, so today's
  // writer output for a flat system must parse under a version-2 reader.
  const ParticleSystem sys = system::lineConfiguration(25);
  ASSERT_FALSE(sys.grid().tiled());
  system::SnapshotWriter w;
  system::writeParticleSystem(w, sys);
  system::SnapshotReader r(w.payload(), 2);
  const ParticleSystem restored = system::readParticleSystem(r);
  r.finish();
  EXPECT_TRUE(restored.sameArrangement(sys));
  EXPECT_EQ(restored.grid().originX(), sys.grid().originX());
  EXPECT_EQ(restored.grid().width(), sys.grid().width());
}

TEST(TiledSnapshot, ShardedV2PayloadWithoutIdTrailerResumesExactly) {
  // A genuine v2 sharded-separation payload is today's payload minus the
  // one-byte id-plane trailer (flat-mode runs serialize only the Inactive
  // tag).  Restoring it through a version-2 reader must re-derive the
  // plane and continue the identical trajectory.
  SeparationModel::Options options;
  options.lambda = 4.0;
  options.gamma = 4.0;
  core::ShardedChainOptions sharded;
  sharded.threads = 2;
  const auto makeRunner = [&] {
    return core::ShardedChainRunner<SeparationModel>(
        system::lineConfiguration(60),
        SeparationModel(options, system::alternatingClasses(60, 2)), 2741,
        sharded);
  };
  core::ShardedChainRunner<SeparationModel> original = makeRunner();
  original.runAtLeast(20000);
  system::SnapshotWriter w;
  original.saveState(w);
  std::vector<std::uint8_t> v2Payload = w.payload();
  ASSERT_FALSE(v2Payload.empty());
  ASSERT_EQ(v2Payload.back(), 0u);  // the Inactive id-plane tag
  v2Payload.pop_back();
  core::ShardedChainRunner<SeparationModel> resumed = makeRunner();
  system::SnapshotReader r(v2Payload, 2);
  resumed.restoreState(r);
  r.finish();
  original.runAtLeast(20000);
  resumed.runAtLeast(20000);
  EXPECT_TRUE(signatureOf(resumed) == signatureOf(original));
}

TEST(TiledSnapshot, ShardedTiledSaveRestoreContinuesExactly) {
  // v3 proper: a tiled sharded run serializes its tile and page
  // directories verbatim; the resumed runner must continue bit-identically
  // (the deferral predicates are functions of those directories).
  SeparationModel::Options options;
  options.lambda = 4.0;
  options.gamma = 4.0;
  core::ShardedChainOptions sharded;
  sharded.threads = 2;
  const auto makeRunner = [&] {
    return core::ShardedChainRunner<SeparationModel>(
        system::lineConfiguration(20000),
        SeparationModel(options, system::alternatingClasses(20000, 2)), 5303,
        sharded);
  };
  core::ShardedChainRunner<SeparationModel> original = makeRunner();
  original.runAtLeast(30000);
  ASSERT_TRUE(original.system().grid().tiled());
  system::SnapshotWriter w;
  original.saveState(w);
  core::ShardedChainRunner<SeparationModel> resumed = makeRunner();
  system::SnapshotReader r(w.payload());
  resumed.restoreState(r);
  r.finish();
  original.runAtLeast(30000);
  resumed.runAtLeast(30000);
  EXPECT_TRUE(signatureOf(resumed) == signatureOf(original));
}

}  // namespace
}  // namespace sops
