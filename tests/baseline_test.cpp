// Tests for the baselines (S11): the leader-driven hexagon builder reaches
// the exact minimum perimeter; greedy/unbiased chains behave as expected.
#include <gtest/gtest.h>

#include "baseline/hexagon_builder.hpp"
#include "core/compression_chain.hpp"
#include "rng/random.hpp"
#include "system/metrics.hpp"
#include "system/shapes.hpp"

namespace sops::baseline {
namespace {

TEST(HexagonBuilder, LineBecomesPerfectHexagon) {
  for (const std::int64_t n : {5, 12, 20, 50}) {
    const HexagonBuildResult result =
        buildHexagon(system::lineConfiguration(n));
    EXPECT_EQ(result.finalSystem.size(), static_cast<std::size_t>(n));
    EXPECT_TRUE(system::isConnected(result.finalSystem));
    EXPECT_EQ(system::countHoles(result.finalSystem), 0);
    EXPECT_EQ(system::perimeter(result.finalSystem), system::pMin(n))
        << "n=" << n;
  }
}

TEST(HexagonBuilder, RandomStartsAlsoReachPMin) {
  rng::Random rng(5150);
  for (int trial = 0; trial < 10; ++trial) {
    const auto n = static_cast<std::int64_t>(10 + rng.below(40));
    const HexagonBuildResult result =
        buildHexagon(system::randomConnected(n, rng));
    EXPECT_EQ(system::perimeter(result.finalSystem), system::pMin(n));
  }
}

TEST(HexagonBuilder, SpiralStartNeedsNoMoves) {
  // A spiral anchored anywhere is already the target up to the seed choice;
  // starting *at* the builder's own output must be a fixed point.
  const HexagonBuildResult once = buildHexagon(system::lineConfiguration(19));
  const HexagonBuildResult twice = buildHexagon(once.finalSystem);
  EXPECT_EQ(twice.relocations, 0u);
  EXPECT_EQ(twice.unitMoves, 0u);
}

TEST(HexagonBuilder, MoveCostGrowsSuperlinearly) {
  // Relocating Θ(n) particles over Θ(√n)–Θ(n) distances: unit moves for a
  // line start grow clearly faster than n.
  const std::uint64_t moves20 =
      buildHexagon(system::lineConfiguration(20)).unitMoves;
  const std::uint64_t moves80 =
      buildHexagon(system::lineConfiguration(80)).unitMoves;
  EXPECT_GT(moves80, 4 * moves20);
}

TEST(HexagonBuilder, RelocationsNeverExceedParticleCount) {
  for (const std::int64_t n : {7, 23, 40}) {
    const HexagonBuildResult result =
        buildHexagon(system::lineConfiguration(n));
    EXPECT_LE(result.relocations, static_cast<std::uint64_t>(n));
  }
}

TEST(GreedyBaseline, GetsStuckAboveStationaryCompression) {
  // Zero-temperature dynamics lock into local minima: long-run perimeter
  // stays above what the Metropolis chain reaches with the same budget.
  core::ChainOptions greedyOptions;
  greedyOptions.lambda = 4.0;
  greedyOptions.greedy = true;
  core::CompressionChain greedy(system::lineConfiguration(60), greedyOptions,
                                9);
  core::ChainOptions metropolisOptions;
  metropolisOptions.lambda = 4.0;
  core::CompressionChain metropolis(system::lineConfiguration(60),
                                    metropolisOptions, 9);
  greedy.run(2000000);
  metropolis.run(2000000);
  EXPECT_GE(system::perimeter(greedy.system()),
            system::perimeter(metropolis.system()));
}

}  // namespace
}  // namespace sops::baseline
